package fcatch_test

import (
	"testing"

	"fcatch"
)

// The composite observation scenarios mirror the PR 8 campaign shapes that
// reach failures no single fault can (EXPERIMENTS.md): MR1's
// crash+recovery-crash (crash a task blocked in an RPC wait, restart it,
// crash the fresh incarnation inside its recovery) and HB1's crash+drop
// (crash the master, then drop a message its restarted incarnation sends
// during recovery). Both observations are tolerated — MR1's AM reschedules
// when the incarnation stays down, HB1's timeout monitor force-completes the
// dropped assignment — which is exactly what core.Observe requires; the
// harm surfaces when TriggerCompound perturbs the recovery policy.
var compositeScenarios = map[string]string{
	"MR1": "site=sim/rpc.go:client-wait,occ=1,when=before,restart=40;delay=48",
	"HB1": "site=apps/hbase/master096.go:202,occ=1,when=before,restart=150;" +
		"site=apps/hbase/master096.go:240,occ=1,when=before,action=kernel-drop",
}

// TestCompoundDetectionOnCompositeScenarios: on a composite observation the
// detection pass derives one hazard window per fault, pairs them (the second
// fault fires inside the first window's recovery), and the compound report's
// two window anchors replay to a real failure under a perturbed recovery
// policy.
func TestCompoundDetectionOnCompositeScenarios(t *testing.T) {
	for _, wl := range []string{"MR1", "HB1"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			w := fcatch.MustWorkload(wl)
			opts := fcatch.DefaultOptions()
			sc, err := fcatch.ParseScenario(compositeScenarios[wl])
			if err != nil {
				t.Fatal(err)
			}
			opts.Scenario = sc
			res, err := fcatch.Detect(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Windows) < 2 {
				t.Fatalf("windows = %d, want >= 2 (one per fault firing)", len(res.Windows))
			}
			if len(res.Compound) == 0 {
				t.Fatal("no compound reports on a composite scenario")
			}
			c := res.Compound[0]
			if c.Outer.Victim == "" || c.Inner.Victim == "" {
				t.Fatalf("compound anchors missing victims: %s", c)
			}
			if !c.Outer.Contains(c.Inner.OpenStep) {
				t.Fatalf("inner fault @%d not inside outer window [%d..%d]",
					c.Inner.OpenStep, c.Outer.OpenStep, c.Outer.CloseStep)
			}
			// The report's two window anchors must reproduce the failure.
			out := fcatch.TriggerCompound(w, res, c)
			if out.Class == fcatch.Benign {
				t.Fatalf("compound replay benign: %s (%s)", out.FailureKind, out.Detail)
			}
			if out.FailureKind == "" {
				t.Fatalf("compound replay produced no failure: %+v", out)
			}
			if out.Variant == "" || out.Variant == "as-observed" {
				t.Fatalf("verdict variant %q: the observation is tolerated by "+
					"construction, so the failure must come from a perturbed policy", out.Variant)
			}
			if len(out.Scenario) != 2 {
				t.Fatalf("compound scenario has %d events, want 2 (one per window anchor)", len(out.Scenario))
			}
			// Reports anchored in later windows carry their window in the key,
			// so they never dedup against window-0 findings.
			for _, r := range res.Reports {
				if r.WindowID < 0 || r.WindowID >= len(res.Windows) {
					t.Fatalf("report window %d out of range (%d windows)", r.WindowID, len(res.Windows))
				}
			}
		})
	}
}

// TestCompoundZeroOnSingleFault: a classic single-fault observation lowers
// to exactly one hazard window and never produces compound reports.
func TestCompoundZeroOnSingleFault(t *testing.T) {
	for _, wl := range []string{"MR1", "HB1"} {
		res, err := fcatch.Detect(fcatch.MustWorkload(wl), fcatch.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Windows) != 1 {
			t.Fatalf("%s: windows = %d, want exactly 1", wl, len(res.Windows))
		}
		if len(res.Compound) != 0 {
			t.Fatalf("%s: single-fault observation produced %d compound reports", wl, len(res.Compound))
		}
		for _, r := range res.Reports {
			if r.WindowID != 0 {
				t.Fatalf("%s: single-fault report in window %d", wl, r.WindowID)
			}
		}
	}
}
