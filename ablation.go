package fcatch

import (
	"fmt"
	"strings"

	"fcatch/internal/detect"
	"fcatch/internal/parallel"
)

// PruningAblationRow compares report counts with all analyses on against
// each analysis disabled — quantifying the Section 8.4 claim that without
// the fault-tolerance analyses, false positives grow ~5× (crash-regular)
// and ~40× (crash-recovery).
type PruningAblationRow struct {
	Workload string
	// Reports with every analysis enabled (the production setting).
	Full int
	// Reports with timeout pruning off / dependence pruning off / impact
	// estimation off / everything off.
	NoTimeout, NoDependence, NoImpact, NoneAtAll int
}

// PruningAblation runs detection on every workload under each pruning
// configuration. All workload×configuration passes fan out together across
// opts.Parallelism workers; each count lands in its own row field, so the
// table is deterministic at any setting.
func PruningAblation(opts Options) ([]PruningAblationRow, error) {
	configs := []struct {
		name string
		d    detect.Options
	}{
		{"full", detect.Options{}},
		{"no-timeout", detect.Options{DisableTimeoutPruning: true}},
		{"no-dependence", detect.Options{DisableDependencePruning: true}},
		{"no-impact", detect.Options{DisableImpactPruning: true}},
		{"none", detect.Options{DisableTimeoutPruning: true, DisableDependencePruning: true, DisableImpactPruning: true}},
	}
	ws := Workloads()
	counts, err := parallel.MapErr(opts.Parallelism, len(ws)*len(configs), func(i int) (int, error) {
		w, cfg := ws[i/len(configs)], configs[i%len(configs)]
		o := opts
		o.Detect = cfg.d
		res, err := Detect(w, o)
		if err != nil {
			return 0, fmt.Errorf("fcatch: pruning ablation %s/%s: %w", w.Name(), cfg.name, err)
		}
		return len(res.Reports), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PruningAblationRow, len(ws))
	for wi, w := range ws {
		row := &rows[wi]
		row.Workload = w.Name()
		for ci, cfg := range configs {
			n := counts[wi*len(configs)+ci]
			switch cfg.name {
			case "full":
				row.Full = n
			case "no-timeout":
				row.NoTimeout = n
			case "no-dependence":
				row.NoDependence = n
			case "no-impact":
				row.NoImpact = n
			case "none":
				row.NoneAtAll = n
			}
		}
	}
	return rows, nil
}

// RenderPruningAblation renders the ablation as a table.
func RenderPruningAblation(rows []PruningAblationRow) string {
	var out [][]string
	totals := PruningAblationRow{Workload: "Total"}
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, fmt.Sprint(r.Full), fmt.Sprint(r.NoTimeout),
			fmt.Sprint(r.NoDependence), fmt.Sprint(r.NoImpact), fmt.Sprint(r.NoneAtAll),
		})
		totals.Full += r.Full
		totals.NoTimeout += r.NoTimeout
		totals.NoDependence += r.NoDependence
		totals.NoImpact += r.NoImpact
		totals.NoneAtAll += r.NoneAtAll
	}
	out = append(out, []string{
		totals.Workload, fmt.Sprint(totals.Full), fmt.Sprint(totals.NoTimeout),
		fmt.Sprint(totals.NoDependence), fmt.Sprint(totals.NoImpact), fmt.Sprint(totals.NoneAtAll),
	})
	var b strings.Builder
	b.WriteString("Pruning-analysis ablation (Section 8.4): reports per configuration.\n")
	b.WriteString(renderTable([]string{"", "full", "no-timeout", "no-dependence", "no-impact", "none"}, out))
	if totals.Full > 0 {
		fmt.Fprintf(&b, "growth without any pruning: %.1fx\n", float64(totals.NoneAtAll)/float64(totals.Full))
	}
	return b.String()
}
