// Package fcatch is a from-scratch reproduction of "FCatch: Automatically
// Detecting Time-of-fault Bugs in Cloud Systems" (ASPLOS 2018).
//
// FCatch predicts time-of-fault (TOF) bugs — failures that manifest only
// when a node crashes or a message drops at a special moment — by observing
// *correct* executions of a distributed system:
//
//	obs, _ := fcatch.Detect(fcatch.MustWorkload("MR1"), fcatch.DefaultOptions())
//	for _, report := range obs.Reports {
//	    fmt.Println(report)
//	}
//	outcomes := fcatch.Trigger(fcatch.MustWorkload("MR1"), obs)
//
// The package bundles deterministic miniature reproductions of the paper's
// four target systems (MapReduce, HBase, Cassandra, ZooKeeper) running on a
// cooperative cluster simulator, the two TOF bug detectors (crash-regular
// and crash-recovery), the fault-tolerance pruning analyses, the automated
// bug-triggering module, and the random fault-injection baseline. See
// DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-reproduction comparison of every table.
package fcatch

import (
	"fmt"
	"io"

	"fcatch/internal/apps/cassandra"
	"fcatch/internal/apps/hbase"
	"fcatch/internal/apps/mapreduce"
	"fcatch/internal/apps/toy"
	"fcatch/internal/apps/zookeeper"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/inject"
	"fcatch/internal/obs"
	"fcatch/internal/trace"
)

// Re-exported core types, so downstream users only import this package.
type (
	// Workload is a benchmark system + driver (a Table 1 row).
	Workload = core.Workload
	// Options parameterizes a detection pass.
	Options = core.Options
	// Result is one full detection pass (observation + reports).
	Result = core.Result
	// Report is one predicted TOF bug.
	Report = detect.Report
	// TriggerOutcome is the verdict of replaying one report's fault.
	TriggerOutcome = inject.Outcome
	// RandomResult summarizes a random fault-injection campaign.
	RandomResult = inject.RandomResult
	// Phase selects where the observation crash lands.
	Phase = core.Phase
	// Window is one hazard window of an observation: the interval a fault
	// opened, who it hit, and who recovers inside it. Result.Windows lists
	// them; Report.WindowID anchors each crash-recovery report in one.
	Window = detect.Window
	// WindowKind distinguishes crash-recovery from drop-induced windows.
	WindowKind = detect.WindowKind
	// CompoundReport pairs two hazard windows of a multi-fault observation:
	// the inner window's fault fired inside the outer window's recovery.
	CompoundReport = detect.CompoundReport
	// CompoundOutcome is the verdict of replaying a compound report's two
	// window anchors as a fresh scenario.
	CompoundOutcome = inject.CompoundOutcome
	// Metrics is a named registry of atomic counters, bounded histograms and
	// monotonic phase spans. Attach one via Options.Metrics (or the
	// campaign/dist equivalents) to observe where the pipeline spends its
	// budget; a nil Metrics is the free no-op default. Metrics are strictly
	// observe-only: every other output is byte-identical with or without one.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Metrics registry, the
	// unit `-metrics out.json` serializes.
	MetricsSnapshot = obs.Snapshot
	// Decision is one candidate's pruning verdict, recorded when
	// Options.Detect.Explain is set: the first §4 rule that discarded it, or
	// "kept".
	Decision = detect.Decision
)

// Hazard-window kinds.
const (
	WindowCrashRecovery = detect.WindowCrashRecovery
	WindowDropInduced   = detect.WindowDropInduced
)

// Observation-crash phases (Section 8.1.2 sensitivity study).
const (
	PhaseBegin  = core.PhaseBegin
	PhaseMiddle = core.PhaseMiddle
	PhaseEnd    = core.PhaseEnd
)

// Trigger classifications.
const (
	TrueBug  = inject.TrueBug
	Expected = inject.Expected
	Benign   = inject.Benign
)

// BugType aliases the detector's bug-type enum.
type BugType = detect.BugType

// The two TOF bug classes of Section 2.
const (
	CrashRegularBug  = detect.CrashRegular
	CrashRecoveryBug = detect.CrashRecovery
)

// DefaultOptions is the paper's evaluation setting: selective tracing, crash
// near the beginning of the execution.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewMetrics returns an empty live metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// Pruning-rule names for Decision.Rule.
const (
	RuleKept        = detect.RuleKept
	RuleWaitTimeout = detect.RuleWaitTimeout
	RuleLoopTimeout = detect.RuleLoopTimeout
	RuleSanityCheck = detect.RuleSanityCheck
	RuleReset       = detect.RuleReset
	RuleImpact      = detect.RuleImpact
)

// PruneRuleNames lists every Decision.Rule value in kill-table display order.
func PruneRuleNames() []string { return detect.RuleNames() }

// KillTable tallies explain decisions by rule.
func KillTable(decisions []Decision) map[string]int { return detect.KillTable(decisions) }

// ExplainDecisions collects a detection result's per-candidate decision
// trail, crash-regular first: one entry per candidate either detector judged.
// Empty unless the pass ran with Options.Detect.Explain.
func ExplainDecisions(res *Result) []Decision {
	var out []Decision
	if res.Regular != nil {
		out = append(out, res.Regular.Decisions...)
	}
	if res.Recovery != nil {
		out = append(out, res.Recovery.Decisions...)
	}
	return out
}

// Workloads returns the six benchmark workloads of Table 1, in table order.
func Workloads() []Workload {
	return []Workload{
		cassandra.New(),
		hbase.NewHB1(),
		hbase.NewHB2(),
		mapreduce.NewMR1(),
		mapreduce.NewMR2(),
		zookeeper.New(),
	}
}

// ByName returns the workload with the given benchmark name ("CA1&2", "HB1",
// "HB2", "MR1", "MR2", "ZK") or the tutorial workload "TOY".
func ByName(name string) (Workload, error) {
	if name == "TOY" {
		return toy.New(), nil
	}
	for _, w := range Workloads() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("fcatch: unknown workload %q", name)
}

// MustWorkload is ByName, panicking on unknown names (for examples/tests).
func MustWorkload(name string) Workload {
	w, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Detect runs the full FCatch pipeline (Figure 2) on a workload: observe a
// fault-free run and a checkpoint-paired correct faulty run, analyze both
// traces with the crash-regular and crash-recovery detectors, prune, and
// return the deduplicated reports.
func Detect(w Workload, opts Options) (*Result, error) {
	return core.Detect(w, opts)
}

// Trigger replays every report's fault (Section 5) and classifies each as a
// true bug, an expected/handled reaction, or benign. It replays with the
// observation's seed so trigger points land on the reported operations, and
// fans the replays across res.Options.Parallelism workers (outcomes stay in
// report order).
func Trigger(w Workload, res *Result) []*TriggerOutcome {
	tg := inject.NewTriggerer(w, res.Options.Seed)
	tg.Parallelism = res.Options.Parallelism
	return tg.TriggerAll(res.Reports)
}

// TriggerScenario rebuilds the fault scenario that replays one report from
// its window anchors: the events that re-open every earlier hazard window,
// then the report's own trigger event. FormatScenario renders the result as
// a `-scenario` string.
func TriggerScenario(rep *Report, windows []Window) []FaultSpec {
	return inject.TriggerScenario(rep, windows)
}

// CompoundScenario lowers a compound report's two window anchors back to the
// scenario events that re-open them, in order. FormatScenario renders the
// result as a `-scenario` string.
func CompoundScenario(rep *CompoundReport) []FaultSpec {
	return []FaultSpec{inject.WindowEvent(&rep.Outer), inject.WindowEvent(&rep.Inner)}
}

// TriggerCompound replays a compound report: both window anchors are lowered
// back to scenario events and injected in order, confirming (or refuting)
// that the inner fault landing inside the outer window reproduces the
// composite failure under some recovery policy.
func TriggerCompound(w Workload, res *Result, rep *CompoundReport) *CompoundOutcome {
	return inject.NewTriggerer(w, res.Options.Seed).TriggerCompound(rep)
}

// RandomInjection runs the Section 8.3 baseline: `runs` executions with a
// node crash at a uniformly random step each, fanned across every core.
func RandomInjection(w Workload, runs int, seed int64) (*RandomResult, error) {
	return inject.RandomCampaign(w, runs, seed)
}

// RandomInjectionP is RandomInjection with an explicit parallelism bound
// (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting.
func RandomInjectionP(w Workload, runs int, seed int64, parallelism int) (*RandomResult, error) {
	return inject.RandomCampaignP(w, runs, seed, parallelism)
}

// RandomInjectionObserved is RandomInjectionP with an observe-only metrics
// registry threaded into the underlying campaign engine (nil = cheap no-op;
// the counts are identical either way).
func RandomInjectionObserved(w Workload, runs int, seed int64, parallelism int, m *Metrics) (*RandomResult, error) {
	return inject.RandomCampaignObserved(w, runs, seed, parallelism, m)
}

// Trace is one observation run's interned record stream. Record fields that
// name things (PID, Site, Res, ...) are symbols into the trace's table —
// resolve them with the Trace's Str/Lookup/Format methods.
type Trace = trace.Trace

// Trace-format identification for the versioned on-disk encoding.
const (
	// TraceFormatMagic is the 4-byte tag leading every trace file written
	// in the current binary format.
	TraceFormatMagic = trace.FormatMagic
	// TraceFormatVersion is the format generation the magic encodes.
	TraceFormatVersion = trace.FormatVersion
)

// SaveTrace writes a trace to path in the current binary format.
func SaveTrace(t *Trace, path string) error { return t.Save(path) }

// LoadTrace reads a trace from path, sniffing the format: current binary
// traces, previous-generation binary traces and pre-versioning gob traces all
// load. It is a thin drain over OpenTrace — callers that can process records
// in bounded windows should prefer the streaming form.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// DecodeTrace is LoadTrace over an arbitrary reader.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }

// TraceSource is a pull-based stream of trace records: repeated Next calls
// yield bounded record windows (io.EOF at end of stream), Trace gives the
// stream's symbol tables and metadata, and Close releases the underlying
// file. Sources feed the streaming analysis path (incremental indexing,
// coverage folds) without materializing the full record slice.
type TraceSource = trace.Source

// OpenTrace opens a saved trace for streaming, sniffing the format like
// LoadTrace. Current-format traces decode incrementally — peak memory is
// O(window), not O(trace) — while older formats are materialized and then
// windowed, so every format serves the same Source interface.
func OpenTrace(path string) (TraceSource, error) { return trace.Open(path) }

// StreamTrace is OpenTrace over an arbitrary reader. The reader must remain
// valid until the source is closed; closing the source does not close the
// reader.
func StreamTrace(r io.Reader) (TraceSource, error) { return trace.NewSource(r) }

// ReportGroup is a correlated set of crash-recovery reports (the Section 2.3
// multi-resource extension).
type ReportGroup = detect.ReportGroup

// CorrelateRecovery groups a detection result's crash-recovery reports by
// the recovery activation that consumes them: one group = one recovery
// decision reading several of the crash node's leftovers, i.e. a single
// fault window touching multiple resources. This implements the extension
// the paper's Section 2.3 leaves as future work.
func CorrelateRecovery(res *Result) []ReportGroup {
	return detect.CorrelateRecovery(res.Observation.Faulty, res.Reports)
}
