package fcatch_test

import (
	"testing"

	"fcatch"
	"fcatch/internal/detect"
	"fcatch/internal/inject"
)

func mkOutcome(typ detect.BugType, ops, resClass string, class inject.Classification) *inject.Outcome {
	return &inject.Outcome{
		Class:  class,
		Report: &detect.Report{Type: typ, OpsDesc: ops, ResClass: resClass},
	}
}

func TestMatchSpecResolvesHB5VsHB6(t *testing.T) {
	// HB6's resource-class hint is a prefix of HB5's; the catalog order must
	// route each report to the right entry.
	hb5 := mkOutcome(detect.CrashRecovery, "Delete vs Read", "zk:/hbase/replication/rs###/log#", inject.TrueBug)
	hb6 := mkOutcome(detect.CrashRecovery, "Delete vs Read", "zk:/hbase/replication/rs###", inject.TrueBug)
	if s := fcatch.MatchSpec("HB2", hb5); s == nil || s.ID != "HB5" {
		t.Fatalf("log-znode report matched %v, want HB5", s)
	}
	if s := fcatch.MatchSpec("HB2", hb6); s == nil || s.ID != "HB6" {
		t.Fatalf("queue-dir report matched %v, want HB6", s)
	}
}

func TestMatchSpecOpenMeansRead(t *testing.T) {
	// Table 2 says "Delete vs Open"; the detector reports storage reads.
	out := mkOutcome(detect.CrashRecovery, "Delete vs Read", "gfs:/staging/job#/job.xml", inject.TrueBug)
	if s := fcatch.MatchSpec("MR2", out); s == nil || s.ID != "MR2" {
		t.Fatalf("job.xml report matched %v, want MR2", s)
	}
}

func TestMatchSpecScopedToWorkload(t *testing.T) {
	// MR3's signature must only match from the MR workloads.
	out := mkOutcome(detect.CrashRegular, "Signal vs Wait", "cv:rpc-reply", inject.TrueBug)
	if s := fcatch.MatchSpec("MR1", out); s == nil || s.ID != "MR3" {
		t.Fatalf("MR1 rpc-reply matched %v, want MR3", s)
	}
	if s := fcatch.MatchSpec("CA1&2", out); s != nil {
		t.Fatalf("CA rpc-reply matched %v, want none", s)
	}
}

func TestMatchSpecIgnoresNonTrueBugs(t *testing.T) {
	out := mkOutcome(detect.CrashRegular, "Signal vs Wait", "cv:rpc-reply", inject.Benign)
	if s := fcatch.MatchSpec("MR1", out); s != nil {
		t.Fatalf("benign outcome matched %v", s)
	}
}

func TestMatchReportIgnoresVerdict(t *testing.T) {
	r := &detect.Report{Type: detect.CrashRegular, OpsDesc: "Signal vs Wait", ResClass: "cv:rpc-reply"}
	if s := fcatch.MatchReport("MR2", r); s == nil || s.ID != "MR3" {
		t.Fatalf("MatchReport = %v, want MR3", s)
	}
}

func TestEveryCatalogEntryHasDetails(t *testing.T) {
	for _, s := range fcatch.Catalog {
		if fcatch.Details(s.ID) == "" {
			t.Errorf("no narrative for %s", s.ID)
		}
		if len(s.Workloads) == 0 || s.Symptom == "" || s.ResHint == "" {
			t.Errorf("incomplete catalog entry: %+v", s)
		}
	}
}
