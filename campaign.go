package fcatch

import (
	"fmt"
	"strings"
	"time"

	"fcatch/internal/campaign"
)

// Re-exported campaign types, so downstream users only import this package.
type (
	// CampaignConfig parameterizes a fault-injection campaign.
	CampaignConfig = campaign.Config
	// CampaignResult summarizes a finished campaign.
	CampaignResult = campaign.Result
	// CampaignCorpus is the persistent per-run record of a campaign.
	CampaignCorpus = campaign.Corpus
	// CampaignPlan is one candidate injection (step crash or site point).
	CampaignPlan = campaign.Plan
	// CampaignDiff compares two campaigns' findings.
	CampaignDiff = campaign.Diff
	// CampaignProgress is the point-in-time view handed to
	// CampaignConfig.Progress after every committed batch.
	CampaignProgress = campaign.Progress
	// CampaignManifest is the machine-readable end-of-run record a campaign
	// writes with -metrics.
	CampaignManifest = campaign.Manifest
)

// Campaign strategy names.
const (
	StrategyRandom     = campaign.StrategyRandom
	StrategyExhaustive = campaign.StrategyExhaustive
	StrategyCoverage   = campaign.StrategyCoverage
)

// Composite-scenario enumerator names (CampaignConfig.Scenarios).
const (
	ScenarioRecoveryCrash = campaign.ScenarioRecoveryCrash
	ScenarioCrashDrop     = campaign.ScenarioCrashDrop
)

// CampaignScenarioNames lists every composite-scenario enumerator.
func CampaignScenarioNames() []string { return campaign.ScenarioNames() }

// Campaign runs a fault-injection campaign over the workload's fault space
// with the configured search strategy. Identical (workload, seed, budget,
// strategy) inputs produce an identical corpus at any Parallelism.
func Campaign(w Workload, cfg CampaignConfig) (*CampaignResult, error) {
	return campaign.Run(w, cfg)
}

// ResumeCampaign continues a campaign from a saved corpus: the cached prefix
// is replayed from the corpus (no re-simulation), and the campaign runs live
// up to cfg.Budget.
func ResumeCampaign(w Workload, cfg CampaignConfig, prior *CampaignCorpus) (*CampaignResult, error) {
	return campaign.Resume(w, cfg, prior)
}

// NewCampaignManifest assembles the end-of-run manifest for a finished
// campaign: identity, totals, throughput, and the metrics snapshot.
func NewCampaignManifest(res *CampaignResult, budget int, elapsed time.Duration, reg *Metrics) CampaignManifest {
	return campaign.NewManifest(res, budget, elapsed, reg)
}

// LoadCampaignCorpus reads a corpus saved with CampaignCorpus.Save.
func LoadCampaignCorpus(path string) (*CampaignCorpus, error) {
	return campaign.LoadCorpus(path)
}

// DiffCampaigns compares the distinct failure symptoms two campaigns found.
func DiffCampaigns(a, b *CampaignCorpus) CampaignDiff {
	return campaign.DiffCorpora(a, b)
}

// StrategyCell is one strategy's outcome on one workload in the comparison.
type StrategyCell struct {
	Strategy string
	// Runs actually executed (site strategies stop when the space runs out).
	Runs        int
	FailureRuns int
	// Distinct is the number of distinct (non-expected) failure signatures.
	Distinct int
}

// StrategyRow is one workload's row of the strategy-comparison experiment.
type StrategyRow struct {
	Workload string
	Cells    []StrategyCell
	// FCatchBugs / FCatchRuns summarize FCatch-directed triggering on the
	// same workload: reports confirmed as true bugs, and the executions
	// spent (two observation runs plus every trigger replay).
	FCatchBugs int
	FCatchRuns int
}

// CompareStrategies runs the extended Section 8.3 experiment: every campaign
// strategy at the same run budget on each workload, next to FCatch-directed
// triggering. Workloads are processed sequentially (each campaign already
// fans its runs across parallelism workers).
func CompareStrategies(targets []Workload, budget int, seed int64, parallelism int) ([]StrategyRow, error) {
	rows := make([]StrategyRow, 0, len(targets))
	for _, w := range targets {
		row := StrategyRow{Workload: w.Name()}
		for _, strat := range campaign.StrategyNames() {
			res, err := Campaign(w, CampaignConfig{
				Strategy: strat, Seed: seed, Budget: budget, Parallelism: parallelism,
			})
			if err != nil {
				return nil, fmt.Errorf("campaign %s on %s: %w", strat, w.Name(), err)
			}
			row.Cells = append(row.Cells, StrategyCell{
				Strategy:    strat,
				Runs:        res.Runs,
				FailureRuns: res.FailureRuns,
				Distinct:    res.UniqueFailures(),
			})
		}

		opts := DefaultOptions()
		opts.Seed = seed
		opts.Parallelism = parallelism
		det, err := Detect(w, opts)
		if err != nil {
			return nil, fmt.Errorf("detect on %s: %w", w.Name(), err)
		}
		row.FCatchRuns = 2 // the observation pair
		for _, o := range Trigger(w, det) {
			row.FCatchRuns += len(o.ByAction)
			if o.Class == TrueBug {
				row.FCatchBugs++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderStrategyComparison renders the strategy-comparison table: distinct
// failure signatures (and failed/total runs) per strategy at one budget,
// against FCatch-directed triggering's true bugs per execution spent.
func RenderStrategyComparison(rows []StrategyRow, budget int) string {
	header := []string{"Workload"}
	if len(rows) > 0 {
		for _, c := range rows[0].Cells {
			header = append(header, c.Strategy)
		}
	}
	header = append(header, "fcatch-directed")
	var out [][]string
	for _, r := range rows {
		cells := []string{r.Workload}
		for _, c := range r.Cells {
			cells = append(cells, fmt.Sprintf("%d (%d/%d)", c.Distinct, c.FailureRuns, c.Runs))
		}
		cells = append(cells, fmt.Sprintf("%d bugs (%d runs)", r.FCatchBugs, r.FCatchRuns))
		out = append(out, cells)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Distinct failures found per strategy at a budget of %d runs\n", budget)
	b.WriteString("(cells: distinct signatures (failed runs / runs executed); site strategies\nstop early when the enumerated fault space is exhausted).\n")
	b.WriteString(renderTable(header, out))
	return b.String()
}

// RenderCampaign renders one campaign result in the RenderRandom style.
func RenderCampaign(res *CampaignResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign %s on %s (seed %d): %d/%d runs failed, %d distinct failure(s), %d novel behavior(s)",
		res.Strategy, res.Workload, res.Seed, res.FailureRuns, res.Runs, res.UniqueFailures(), res.NovelBehaviors)
	if res.SpacePoints > 0 {
		fmt.Fprintf(&b, ", fault space %d point(s)", res.SpacePoints)
	}
	b.WriteByte('\n')
	for _, sig := range res.Signatures() {
		fmt.Fprintf(&b, "  %3dx %s\n", res.Failures[sig], sig)
	}
	return b.String()
}
