package fcatch

import (
	"strings"

	"fcatch/internal/detect"
	"fcatch/internal/inject"
)

// BugCategory says how a catalogued bug relates to the paper's benchmarks.
type BugCategory int

const (
	// Benchmark bugs come from the TaxDC suite (the "Old" column of Table 3).
	Benchmark BugCategory = iota
	// NonBenchmark bugs are the additional severe bugs FCatch found (the
	// "New" column).
	NonBenchmark
)

// BugSpec is one catalogued TOF bug (a Table 2 row): a static signature that
// matches detector reports plus the paper's metadata.
type BugSpec struct {
	ID        string
	Workloads []string // workloads whose detection reports this bug
	Type      detect.BugType
	Ops       string // Table 2 "Operations" column
	ResHint   string // substring of the report's resource class
	ResKind   string // H / ZK / GF / LF
	Symptom   string
	Category  BugCategory
}

// Catalog lists every true TOF bug planted in the mini systems, mirroring
// Table 2 of the paper.
var Catalog = []BugSpec{
	// Benchmark crash-regular bugs.
	{"CA1", []string{"CA1&2"}, detect.CrashRegular, "Signal vs Wait", "cv:snapshots-done", "H", "AE hangs @ Snapshot", Benchmark},
	{"CA2", []string{"CA1&2"}, detect.CrashRegular, "Signal vs Wait", "cv:trees-done", "H", "AE hangs @ Mtree compare", Benchmark},
	{"HB1", []string{"HB1"}, detect.CrashRegular, "Write vs Loop", "rit#.meta", "H", "HMaster hangs @ MetaOpen (Fig.6)", Benchmark},
	// Benchmark crash-recovery bugs.
	{"HB2", []string{"HB2"}, detect.CrashRecovery, "Create vs Create", "splitlog", "ZK", "Data loss as Get lock fail", Benchmark},
	{"MR1", []string{"MR1"}, detect.CrashRecovery, "Write vs Read", "task#.commit", "H", "Task recovery hangs (Fig. 1)", Benchmark},
	{"MR2", []string{"MR2"}, detect.CrashRecovery, "Delete vs Open", "job.xml", "GF", "AM restart fails as Dir. deleted", Benchmark},
	{"MR2b", []string{"MR2"}, detect.CrashRecovery, "Delete vs Open", "split-#", "GF", "AM restart fails as Dir. deleted (2nd way)", Benchmark},
	{"ZK", []string{"ZK"}, detect.CrashRecovery, "Write vs Read", "currentEpoch", "LF", "Restart fails", Benchmark},
	// Non-benchmark crash-regular bugs.
	{"CA3", []string{"CA1&2"}, detect.CrashRegular, "Write vs Loop", "pendingStreams", "H", "AE hangs @ Mtree repair", NonBenchmark},
	{"HB3", []string{"HB2"}, detect.CrashRegular, "Signal vs Wait", "cv:root-assigned", "H", "HMaster hangs @ ROOT open", NonBenchmark},
	{"HB4", []string{"HB2"}, detect.CrashRegular, "Write vs Loop", "rootLoc", "H", "HMaster hangs @ ROOT open", NonBenchmark},
	{"MR3", []string{"MR1", "MR2"}, detect.CrashRegular, "Signal vs Wait", "cv:rpc-reply", "H", "Hangs @ Any RPC call", NonBenchmark},
	// Non-benchmark crash-recovery bugs.
	{"HB5", []string{"HB2"}, detect.CrashRecovery, "Delete vs Read", "replication/rs###/log#", "ZK", "Data loss as HLog skipped", NonBenchmark},
	{"HB6", []string{"HB2"}, detect.CrashRecovery, "Delete vs Read", "replication/rs###", "ZK", "Data loss as HLog dir. skipped", NonBenchmark},
	{"MR4", []string{"MR1"}, detect.CrashRecovery, "Write vs Read", "task#.state", "H", "Task recovery killed", NonBenchmark},
	{"MR5", []string{"MR2"}, detect.CrashRecovery, "Create vs Exists", "COMMIT_STARTED", "GF", "AM restart fails as Flag-file exists", NonBenchmark},
}

// opsMatch compares a report's operation pair against a catalog signature
// ("Open" in the paper's terminology is a read of storage).
func opsMatch(spec, got string) bool {
	norm := strings.ReplaceAll(spec, "Open", "Read")
	return norm == got
}

// MatchSpec finds the catalog entry a classified report corresponds to
// (nil if the report is not a catalogued true bug).
func MatchSpec(workload string, out *inject.Outcome) *BugSpec {
	if out.Class != inject.TrueBug {
		return nil
	}
	r := out.Report
	for i := range Catalog {
		s := &Catalog[i]
		if s.Type != r.Type || !opsMatch(s.Ops, r.OpsDesc) {
			continue
		}
		if !strings.Contains(r.ResClass, s.ResHint) {
			continue
		}
		for _, w := range s.Workloads {
			if w == workload {
				return s
			}
		}
	}
	return nil
}

// Spec returns the catalog entry with the given ID (nil if unknown).
func Spec(id string) *BugSpec {
	for i := range Catalog {
		if Catalog[i].ID == id {
			return &Catalog[i]
		}
	}
	return nil
}

// HB6 must not swallow HB5 (its hint is a prefix): MatchSpec is ordered so
// the more specific hint comes first in Catalog; keep it that way.
var _ = func() struct{} {
	for i, s := range Catalog {
		for j := i + 1; j < len(Catalog); j++ {
			if strings.Contains(Catalog[j].ResHint, s.ResHint) && s.Type == Catalog[j].Type && opsMatch(s.Ops, Catalog[j].Ops) {
				panic("fcatch: catalog order: " + s.ID + " would shadow " + Catalog[j].ID)
			}
		}
	}
	return struct{}{}
}()
