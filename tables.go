package fcatch

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/inject"
	"fcatch/internal/parallel"
	"fcatch/internal/sim"
)

// EvalRun is one full evaluation pass: detection and triggering over every
// workload. It is the data source for Tables 2, 3, 4 and 5.
type EvalRun struct {
	Opts     Options
	Order    []string
	Results  map[string]*Result
	Outcomes map[string][]*TriggerOutcome
}

// RunEvaluation reproduces the paper's end-to-end evaluation: for each of
// the six workloads, observe the correct-run pair, detect, and trigger every
// report. Pass MeasureBaseline to also collect the Table 4 timings.
//
// The per-workload passes fan out across opts.Parallelism workers (0 =
// GOMAXPROCS); each pass runs in its own simulated cluster, and results are
// collected in Table 1 order, so every table and report list is byte-
// identical to the sequential run.
func RunEvaluation(opts Options) (*EvalRun, error) {
	ws := Workloads()
	type pass struct {
		res  *Result
		outs []*TriggerOutcome
	}
	passes, err := parallel.MapErr(opts.Parallelism, len(ws), func(i int) (pass, error) {
		w := ws[i]
		res, err := Detect(w, opts)
		if err != nil {
			return pass{}, fmt.Errorf("fcatch: %s: %w", w.Name(), err)
		}
		return pass{res: res, outs: Trigger(w, res)}, nil
	})
	if err != nil {
		return nil, err
	}
	e := &EvalRun{
		Opts:     opts,
		Results:  make(map[string]*Result),
		Outcomes: make(map[string][]*TriggerOutcome),
	}
	for i, w := range ws {
		e.Order = append(e.Order, w.Name())
		e.Results[w.Name()] = passes[i].res
		e.Outcomes[w.Name()] = passes[i].outs
	}
	return e, nil
}

// MatchReport finds the catalog entry a report's static signature matches,
// regardless of its trigger verdict (used by the sensitivity study).
func MatchReport(workload string, r *Report) *BugSpec {
	for i := range Catalog {
		s := &Catalog[i]
		if s.Type != r.Type || !opsMatch(s.Ops, r.OpsDesc) {
			continue
		}
		if !strings.Contains(r.ResClass, s.ResHint) {
			continue
		}
		for _, w := range s.Workloads {
			if w == workload {
				return s
			}
		}
	}
	return nil
}

// --- Table 1: the benchmark suite. ---

// Table1Row is one benchmark workload (Table 1 of the paper).
type Table1Row struct {
	App      string
	Version  string
	Workload string
	Bench    string
	Bugs     string
}

// Table1 lists the six workloads.
func Table1() []Table1Row {
	return []Table1Row{
		{"CA", "1.1.12", "Startup + AntiEntropy (AE)", "CA1&2", "CA1, CA2"},
		{"HB", "0.96.0", "Startup + HMasterRestart", "HB1", "HB1"},
		{"HB", "0.90.1", "Startup", "HB2", "HB2"},
		{"MR", "0.23.1", "Startup + WordCount(WC)", "MR1", "MR1"},
		{"MR", "2.1.1", "Startup + WordCount(WC)", "MR2", "MR2"},
		{"ZK", "3.4.5", "Startup", "ZK", "ZK"},
	}
}

// --- Table 2: the TOF bugs found. ---

// Table2Row is one confirmed bug (Table 2 of the paper).
type Table2Row struct {
	ID        string
	Ops       string
	Res       string
	Symptom   string
	Category  BugCategory
	Confirmed bool // triggering produced a real failure
}

// Table2 lists every catalogued bug with whether this evaluation confirmed
// it (bugs reported by several workloads — MR3 — appear once).
func (e *EvalRun) Table2() []Table2Row {
	confirmed := map[string]bool{}
	for wl, outs := range e.Outcomes {
		for _, out := range outs {
			if s := MatchSpec(wl, out); s != nil {
				confirmed[s.ID] = true
			}
		}
	}
	rows := make([]Table2Row, 0, len(Catalog))
	for _, s := range Catalog {
		rows = append(rows, Table2Row{
			ID: s.ID, Ops: s.Ops, Res: s.ResKind, Symptom: s.Symptom,
			Category: s.Category, Confirmed: confirmed[s.ID],
		})
	}
	return rows
}

// --- Table 3: detection results per workload. ---

// Table3Row is one workload's report classification counts (Table 3).
type Table3Row struct {
	Workload string
	// Crash-regular: benchmark bugs, new bugs, exception-FPs, benign-FPs.
	RegOld, RegNew, RegExp, RegFalse int
	// Crash-recovery, same columns.
	RecOld, RecNew, RecExp, RecFalse int
}

// Total sums the row.
func (r Table3Row) Total() int {
	return r.RegOld + r.RegNew + r.RegExp + r.RegFalse + r.RecOld + r.RecNew + r.RecExp + r.RecFalse
}

// Table3 classifies every report by its trigger verdict and catalog match.
func (e *EvalRun) Table3() []Table3Row {
	var rows []Table3Row
	for _, wl := range e.Order {
		row := Table3Row{Workload: wl}
		for _, out := range e.Outcomes[wl] {
			reg := out.Report.Type == detect.CrashRegular
			switch out.Class {
			case inject.TrueBug:
				spec := MatchSpec(wl, out)
				old := spec != nil && spec.Category == Benchmark
				switch {
				case reg && old:
					row.RegOld++
				case reg:
					row.RegNew++
				case old:
					row.RecOld++
				default:
					row.RecNew++
				}
			case inject.Expected:
				if reg {
					row.RegExp++
				} else {
					row.RecExp++
				}
			default:
				if reg {
					row.RegFalse++
				} else {
					row.RecFalse++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3Totals sums the rows, counting each true bug once even when several
// workloads report it (the paper's "*: same bug" footnote: MR3 appears in
// both MR rows but counts once in the total).
func (e *EvalRun) Table3Totals() Table3Row {
	t := Table3Row{Workload: "Total"}
	seen := map[string]bool{}
	for _, wl := range e.Order {
		for _, out := range e.Outcomes[wl] {
			reg := out.Report.Type == detect.CrashRegular
			switch out.Class {
			case inject.TrueBug:
				spec := MatchSpec(wl, out)
				if spec != nil {
					if seen[spec.ID] {
						continue
					}
					seen[spec.ID] = true
				}
				old := spec != nil && spec.Category == Benchmark
				switch {
				case reg && old:
					t.RegOld++
				case reg:
					t.RegNew++
				case old:
					t.RecOld++
				default:
					t.RecNew++
				}
			case inject.Expected:
				if reg {
					t.RegExp++
				} else {
					t.RecExp++
				}
			default:
				if reg {
					t.RegFalse++
				} else {
					t.RecFalse++
				}
			}
		}
	}
	return t
}

// --- Table 4: performance. ---

// Table4Row is one workload's timing breakdown (Table 4). Durations are
// wall-clock for this reproduction's simulator-scale runs.
type Table4Row struct {
	Workload string
	Timings  core.Timings
}

// Table4 returns the timing rows (meaningful when the evaluation ran with
// MeasureBaseline).
func (e *EvalRun) Table4() []Table4Row {
	var rows []Table4Row
	for _, wl := range e.Order {
		rows = append(rows, Table4Row{Workload: wl, Timings: e.Results[wl].Observation.Timings})
	}
	return rows
}

// --- Table 5: pruning power. ---

// Table5Row is one workload's pruned-candidate counts (Table 5).
type Table5Row struct {
	Workload    string
	LoopTimeout int
	WaitTimeout int
	Dependence  int
	Impact      int
}

// Table5 reports what each fault-tolerance analysis eliminated.
func (e *EvalRun) Table5() []Table5Row {
	var rows []Table5Row
	for _, wl := range e.Order {
		res := e.Results[wl]
		rows = append(rows, Table5Row{
			Workload:    wl,
			LoopTimeout: res.Regular.Pruned.LoopTimeout,
			WaitTimeout: res.Regular.Pruned.WaitTimeout,
			Dependence:  res.Recovery.Pruned.Dependence,
			Impact:      res.Recovery.Pruned.Impact,
		})
	}
	return rows
}

// --- Hazard windows: the per-fault breakdown of one detection result. ---

// WindowRow is one hazard window of a detection result, with the number of
// crash-recovery reports anchored in it. Crash-regular reports are not
// counted: their hazard window is hypothetical (the fault that would expose
// them never fired in the observation).
type WindowRow struct {
	Window   string // "w0", "w1", ... (Report.WindowID anchors into these)
	Kind     string // "crash-recovery" or "drop-induced"
	Victim   string
	Open     int64
	Close    int64
	Recovery string // the victim's restarted incarnation, "" if none
	Reports  int
}

// WindowsTable breaks a detection result down per hazard window. A classic
// single-fault observation yields exactly one row; composite scenarios yield
// one row per fault that hit something.
func WindowsTable(res *Result) []WindowRow {
	counts := map[int]int{}
	for _, r := range res.Reports {
		if r.Type == detect.CrashRecovery {
			counts[r.WindowID]++
		}
	}
	rows := make([]WindowRow, 0, len(res.Windows))
	for i := range res.Windows {
		w := &res.Windows[i]
		rows = append(rows, WindowRow{
			Window: fmt.Sprintf("w%d", w.ID), Kind: w.Kind.String(),
			Victim: w.Victim, Open: w.OpenStep, Close: w.CloseStep,
			Recovery: w.Incarnation, Reports: counts[w.ID],
		})
	}
	return rows
}

// --- Section 8.1.2: crash-point sensitivity. ---

// SensitivityResult compares which catalogued bugs each crash phase's
// detection pass reports.
type SensitivityResult struct {
	// BugsByPhase maps phase name to the sorted catalogued bug IDs whose
	// signature appeared in that phase's reports.
	BugsByPhase map[string][]string
}

// Sensitivity runs detection with the observation crash at the beginning,
// middle and end of the execution (Section 8.1.2). All phase×workload
// detection passes fan out together; the per-phase bug sets are unions, so
// collection order cannot change them.
func Sensitivity(seed int64) (*SensitivityResult, error) {
	phases := []Phase{PhaseBegin, PhaseMiddle, PhaseEnd}
	ws := Workloads()
	ids, err := parallel.MapErr(0, len(phases)*len(ws), func(i int) ([]string, error) {
		phase, w := phases[i/len(ws)], ws[i%len(ws)]
		opts := core.Options{Seed: seed, Phase: phase, Tracing: sim.TraceSelective}
		res, err := Detect(w, opts)
		if err != nil {
			return nil, fmt.Errorf("fcatch: sensitivity %s/%s: %w", w.Name(), phase, err)
		}
		var found []string
		for _, r := range res.Reports {
			if s := MatchReport(w.Name(), r); s != nil {
				found = append(found, s.ID)
			}
		}
		return found, nil
	})
	if err != nil {
		return nil, err
	}
	out := &SensitivityResult{BugsByPhase: map[string][]string{}}
	for pi, phase := range phases {
		found := map[string]bool{}
		for wi := range ws {
			for _, id := range ids[pi*len(ws)+wi] {
				found[id] = true
			}
		}
		sorted := make([]string, 0, len(found))
		for id := range found {
			sorted = append(sorted, id)
		}
		sort.Strings(sorted)
		out.BugsByPhase[phase.String()] = sorted
	}
	return out, nil
}

// --- Section 8.2: exhaustive-tracing ablation. ---

// AblationRow compares selective tracing against tracing every heap access
// for one workload's fault-free run.
type AblationRow struct {
	Workload        string
	SelectiveSteps  int64
	ExhaustiveSteps int64
	SelectiveTime   time.Duration
	ExhaustiveTime  time.Duration
	SelectiveOK     bool
	ExhaustiveOK    bool
	ExhaustiveNote  string
}

// AblationTraceAll runs every workload fault-free under both tracing modes,
// fanning the workloads across cores (rows come back in Table 1 order).
func AblationTraceAll(seed int64) []AblationRow {
	ws := Workloads()
	return parallel.Map(0, len(ws), func(i int) AblationRow {
		w := ws[i]
		row := AblationRow{Workload: w.Name()}
		for _, mode := range []sim.TracingMode{sim.TraceSelective, sim.TraceExhaustive} {
			cost := int64(1)
			if mode == sim.TraceExhaustive {
				// Tracing every heap access costs far more than the
				// selective tracer's per-record bookkeeping (Section 8.2).
				cost = 6
			}
			cfg := sim.Config{Seed: seed, Tracing: mode, TraceTickCost: cost}
			w.Tune(&cfg)
			c := sim.NewCluster(cfg)
			w.Configure(c)
			out := c.Run()
			err := w.Check(c, out)
			if mode == sim.TraceSelective {
				row.SelectiveSteps = out.Steps
				row.SelectiveTime = out.Elapsed
				row.SelectiveOK = err == nil
			} else {
				row.ExhaustiveSteps = out.Steps
				row.ExhaustiveTime = out.Elapsed
				row.ExhaustiveOK = err == nil
				if err != nil {
					row.ExhaustiveNote = err.Error()
				}
			}
		}
		return row
	})
}

// --- Section 8.4: the fault-type trigger matrix. ---

// TriggerMatrixRow records which fault kinds trigger one confirmed bug.
type TriggerMatrixRow struct {
	Bug        string
	NodeCrash  bool
	KernelDrop bool
	AppDrop    bool
}

// TriggerMatrix reproduces the Section 8.4 observations (crash-regular bugs
// are tried with all three fault types; crash-recovery bugs with crashes).
func (e *EvalRun) TriggerMatrix() []TriggerMatrixRow {
	seen := map[string]bool{}
	var rows []TriggerMatrixRow
	for _, wl := range e.Order {
		for _, out := range e.Outcomes[wl] {
			s := MatchSpec(wl, out)
			if s == nil || seen[s.ID] {
				continue
			}
			seen[s.ID] = true
			rows = append(rows, TriggerMatrixRow{
				Bug:        s.ID,
				NodeCrash:  out.ByAction[ActionNodeCrash],
				KernelDrop: out.ByAction[ActionKernelDrop],
				AppDrop:    out.ByAction[ActionAppDrop],
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Bug < rows[j].Bug })
	return rows
}
