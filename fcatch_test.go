package fcatch_test

import (
	"strings"
	"testing"

	"fcatch"
	"fcatch/internal/detect"
)

// evalOnce caches the full evaluation across tests in this package (it runs
// detection + triggering on all six workloads).
var evalCache *fcatch.EvalRun

func eval(t *testing.T) *fcatch.EvalRun {
	t.Helper()
	if evalCache == nil {
		e, err := fcatch.RunEvaluation(fcatch.DefaultOptions())
		if err != nil {
			t.Fatalf("RunEvaluation: %v", err)
		}
		evalCache = e
	}
	return evalCache
}

func TestWorkloadRegistry(t *testing.T) {
	ws := fcatch.Workloads()
	if len(ws) != 6 {
		t.Fatalf("workloads = %d, want 6 (Table 1)", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Name()] = true
		got, err := fcatch.ByName(w.Name())
		if err != nil || got.Name() != w.Name() {
			t.Errorf("ByName(%s) = %v, %v", w.Name(), got, err)
		}
	}
	for _, want := range []string{"CA1&2", "HB1", "HB2", "MR1", "MR2", "ZK"} {
		if !names[want] {
			t.Errorf("workload %s missing", want)
		}
	}
	if _, err := fcatch.ByName("nope"); err == nil {
		t.Error("ByName should reject unknown names")
	}
	if w := fcatch.MustWorkload("TOY"); w.Name() != "TOY" {
		t.Error("tutorial workload missing")
	}
}

func TestCatalogIsComplete(t *testing.T) {
	if len(fcatch.Catalog) != 16 {
		t.Fatalf("catalog has %d bugs, want 16 (Table 2)", len(fcatch.Catalog))
	}
	bench, non := 0, 0
	for _, s := range fcatch.Catalog {
		if s.Category == fcatch.Benchmark {
			bench++
		} else {
			non++
		}
		if fcatch.Spec(s.ID) == nil {
			t.Errorf("Spec(%s) lookup failed", s.ID)
		}
	}
	// 7 benchmark bugs, with MR2 counted twice (two ways) = 8 rows.
	if bench != 8 || non != 8 {
		t.Fatalf("catalog split = %d benchmark + %d new, want 8 + 8", bench, non)
	}
}

func TestAllSixteenBugsConfirmed(t *testing.T) {
	e := eval(t)
	for _, row := range e.Table2() {
		if !row.Confirmed {
			t.Errorf("bug %s was not confirmed by triggering", row.ID)
		}
	}
}

// TestTable3MatchesPaperExactRows pins the rows that reproduce the paper
// digit-for-digit; rows with known deltas are checked in shape.
func TestTable3MatchesPaper(t *testing.T) {
	e := eval(t)
	rows := map[string]fcatch.Table3Row{}
	for _, r := range e.Table3() {
		rows[r.Workload] = r
	}

	type want struct {
		regOld, regNew, regExp, regFalse int
		recOld, recNew, recExp           int
	}
	paper := map[string]want{
		"CA1&2": {2, 1, 0, 0, 0, 0, 0},
		"HB1":   {1, 0, 0, 3, 0, 0, 4},
		"HB2":   {0, 2, 2, 0, 1, 2, 0},
		"MR1":   {0, 1, 0, 0, 1, 1, 0},
		"MR2":   {0, 1, 0, 0, 2, 1, 0},
		"ZK":    {0, 0, 0, 0, 1, 0, 0},
	}
	for wl, w := range paper {
		r, ok := rows[wl]
		if !ok {
			t.Fatalf("no row for %s", wl)
		}
		got := want{r.RegOld, r.RegNew, r.RegExp, r.RegFalse, r.RecOld, r.RecNew, r.RecExp}
		if got != w {
			t.Errorf("%s row = %+v, want %+v (paper Table 3)", wl, got, w)
		}
	}

	// Totals (the benign column runs slightly higher than the paper's; the
	// true-bug and Exp columns must be exact).
	total := e.Table3Totals()
	if total.RegOld != 3 || total.RegNew != 4 || total.RegExp != 2 || total.RegFalse != 3 {
		t.Errorf("crash-regular totals = %+v, want 3/4/2/3", total)
	}
	if total.RecOld != 5 || total.RecNew != 4 || total.RecExp != 4 {
		t.Errorf("crash-recovery totals = %+v, want 5/4/4", total)
	}
	if total.RecFalse < 6 || total.RecFalse > 12 {
		t.Errorf("crash-recovery benign FPs = %d, want near the paper's 6", total.RecFalse)
	}
}

func TestTable5TimeoutColumnsMatchPaper(t *testing.T) {
	e := eval(t)
	paper := map[string][2]int{ // {LoopTimeout, WaitTimeout}
		"CA1&2": {0, 1}, "HB1": {3, 7}, "HB2": {0, 2},
		"MR1": {0, 1}, "MR2": {0, 2}, "ZK": {2, 2},
	}
	for _, r := range e.Table5() {
		w := paper[r.Workload]
		if r.LoopTimeout != w[0] || r.WaitTimeout != w[1] {
			t.Errorf("%s timeouts = %d/%d, want %d/%d", r.Workload, r.LoopTimeout, r.WaitTimeout, w[0], w[1])
		}
		// Dependence and impact analyses must dominate (the paper's point:
		// without them FPs grow ~5x / ~40x).
		if r.Dependence+r.Impact <= r.LoopTimeout+r.WaitTimeout {
			t.Errorf("%s: dependence+impact (%d) should dominate timeout pruning (%d)",
				r.Workload, r.Dependence+r.Impact, r.LoopTimeout+r.WaitTimeout)
		}
	}
}

func TestTriggerMatrixMatchesSection84(t *testing.T) {
	e := eval(t)
	matrix := map[string]fcatch.TriggerMatrixRow{}
	for _, r := range e.TriggerMatrix() {
		matrix[r.Bug] = r
	}
	// HB1 triggers only by node crash (message drops are resent / go
	// through ZooKeeper).
	if r := matrix["HB1"]; !r.NodeCrash || r.KernelDrop || r.AppDrop {
		t.Errorf("HB1 matrix = %+v, want node-crash only", r)
	}
	// Two of the three CA crash-regular bugs trigger by drops, not crashes.
	for _, id := range []string{"CA1", "CA2"} {
		if r := matrix[id]; r.NodeCrash || !r.KernelDrop {
			t.Errorf("%s matrix = %+v, want drop-only", id, r)
		}
	}
	if r := matrix["CA3"]; !r.NodeCrash {
		t.Errorf("CA3 matrix = %+v, want node crash to work too", r)
	}
	// HB3/HB4 trigger by both kinds.
	for _, id := range []string{"HB3", "HB4"} {
		if r := matrix[id]; !r.NodeCrash || !r.KernelDrop {
			t.Errorf("%s matrix = %+v, want both crash and kernel drop", id, r)
		}
	}
	// MR3 is always triggerable by dropping the RPC reply; whether a callee
	// crash also hangs the caller depends on which call instance the report
	// picked (the platform may relaunch the callee).
	if r := matrix["MR3"]; !r.KernelDrop {
		t.Errorf("MR3 matrix = %+v, want kernel-drop", r)
	}
}

func TestTable4PerformanceShape(t *testing.T) {
	opts := fcatch.DefaultOptions()
	opts.MeasureBaseline = true
	res, err := fcatch.Detect(fcatch.MustWorkload("MR1"), opts)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Observation.Timings
	if tm.BaselineFaultFree <= 0 || tm.TracingFaultFree <= 0 {
		t.Fatalf("timings not measured: %+v", tm)
	}
	if tm.Overall() <= tm.BaselineFaultFree {
		t.Errorf("tracing+analysis (%v) should cost more than one baseline run (%v)",
			tm.Overall(), tm.BaselineFaultFree)
	}
	if tm.Slowdown() <= 1 {
		t.Errorf("slowdown = %.2f, want > 1", tm.Slowdown())
	}
}

func TestSensitivityMatchesSection812(t *testing.T) {
	s, err := fcatch.Sensitivity(1)
	if err != nil {
		t.Fatal(err)
	}
	begin := s.BugsByPhase["begin"]
	end := s.BugsByPhase["end"]
	if len(begin) != 16 {
		t.Fatalf("begin phase found %d bugs, want all 16: %v", len(begin), begin)
	}
	if len(end) >= len(begin) {
		t.Fatalf("end phase should miss reports (found %d)", len(end))
	}
	// Everything the end phase finds, the begin phase finds too.
	set := map[string]bool{}
	for _, id := range begin {
		set[id] = true
	}
	for _, id := range end {
		if !set[id] {
			t.Errorf("end phase found %s that begin missed", id)
		}
	}
}

func TestAblationMatchesSection82(t *testing.T) {
	rows := fcatch.AblationTraceAll(1)
	for _, r := range rows {
		if !r.SelectiveOK {
			t.Errorf("%s: selective tracing must be survivable", r.Workload)
		}
		if r.ExhaustiveSteps <= r.SelectiveSteps {
			t.Errorf("%s: exhaustive tracing should inflate the run (%d vs %d steps)",
				r.Workload, r.ExhaustiveSteps, r.SelectiveSteps)
		}
		if r.Workload == "CA1&2" && r.ExhaustiveOK {
			t.Error("CA must fail under exhaustive tracing (gossip neighbours declared dead)")
		}
	}
}

func TestRendersAreNonEmpty(t *testing.T) {
	e := eval(t)
	for name, s := range map[string]string{
		"table1": fcatch.RenderTable1(),
		"table2": e.RenderTable2(),
		"table3": e.RenderTable3(),
		"table4": e.RenderTable4(),
		"table5": e.RenderTable5(),
		"matrix": e.RenderTriggerMatrix(),
	} {
		if len(strings.Split(s, "\n")) < 4 {
			t.Errorf("render %s is suspiciously short:\n%s", name, s)
		}
	}
}

func TestMatchSpecRequiresTrueBug(t *testing.T) {
	e := eval(t)
	for wl, outs := range e.Outcomes {
		for _, out := range outs {
			spec := fcatch.MatchSpec(wl, out)
			if out.Class != fcatch.TrueBug && spec != nil {
				t.Errorf("%s: non-true-bug matched catalog entry %s", wl, spec.ID)
			}
			if out.Class == fcatch.TrueBug && spec == nil {
				t.Errorf("%s: confirmed true bug has no catalog entry: %s", wl, out.Report)
			}
		}
	}
}

func TestReportsCarryTriggerableCoordinates(t *testing.T) {
	e := eval(t)
	for wl, res := range e.Results {
		for _, r := range res.Reports {
			if r.W.Site == "" || r.R.Site == "" {
				t.Errorf("%s: report without sites: %s", wl, r)
			}
			if r.W.Occurrence < 1 {
				t.Errorf("%s: W occurrence %d", wl, r.W.Occurrence)
			}
			if r.Type == detect.CrashRegular && r.WPrime == nil {
				t.Errorf("%s: crash-regular report without W': %s", wl, r)
			}
			if r.Type == detect.CrashRecovery && r.CrashTargetRole == "" {
				t.Errorf("%s: crash-recovery report without a crash target: %s", wl, r)
			}
		}
	}
}
