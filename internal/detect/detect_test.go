package detect

import (
	"testing"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

func TestNormalizeRes(t *testing.T) {
	cases := map[string]string{
		"heap:am#1:Task2.commit":           "heap:Task#.commit",
		"heap:server#12:Obj34.field":       "heap:Obj#.field",
		"cv:hmaster#1:rs-report-a/3":       "cv:rs-report-a",
		"cv:worker#2:rpc-reply/17":         "cv:rpc-reply",
		"gfs:/staging/job1/split-2":        "gfs:/staging/job#/split-#",
		"zk:/hbase/replication/rs0#1/log1": "zk:/hbase/replication/rs###/log#",
		"lfs:m-zk0:/zk/data/currentEpoch":  "lfs:/zk/data/currentEpoch",
	}
	for in, want := range cases {
		if got := normalizeRes(in); got != want {
			t.Errorf("normalizeRes(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDedupKeepsFirstPerKey(t *testing.T) {
	a := &Report{Type: CrashRegular, W: OpSummary{Site: "w"}, R: OpSummary{Site: "r"}, ResClass: "cv:x"}
	b := &Report{Type: CrashRegular, W: OpSummary{Site: "w"}, R: OpSummary{Site: "r"}, ResClass: "cv:x", Workload: "other"}
	c := &Report{Type: CrashRecovery, W: OpSummary{Site: "w"}, R: OpSummary{Site: "r"}, ResClass: "cv:x"}
	got := Dedup([]*Report{a, b, c})
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("Dedup = %v", got)
	}
}

// --- Crash-regular detector on synthetic traces. ---

// regularTrace builds: node B waits on a CV; node B's handler (caused by a
// message from node A) signals it.
func regularTrace(timedWait bool) *trace.Trace {
	tr := trace.New()
	aStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("a#1"), Thread: 1, Causor: trace.NoOp})
	bStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("b#1"), Thread: 2, Causor: trace.NoOp})
	var flags uint32
	if timedWait {
		flags = trace.FlagTimedWait
	}
	tr.Append(trace.Record{Kind: trace.KWait, PID: tr.Intern("b#1"), Thread: 2, Frame: bStart,
		Res: tr.Intern("cv:b#1:ready/5"), Aux: tr.Intern("ready"), Flags: flags, Site: tr.Intern("b.go:10"), TS: 10})
	send := tr.Append(trace.Record{Kind: trace.KMsgSend, PID: tr.Intern("a#1"), Thread: 1, Frame: aStart,
		Target: tr.Intern("b#1"), Aux: tr.Intern("go"), Site: tr.Intern("a.go:5"), TS: 12})
	hBegin := tr.Append(trace.Record{Kind: trace.KHandlerBegin, PID: tr.Intern("b#1"), Thread: 3, Frame: bStart, Causor: send})
	tr.Append(trace.Record{Kind: trace.KSignal, PID: tr.Intern("b#1"), Thread: 3, Frame: hBegin,
		Res: tr.Intern("cv:b#1:ready/5"), Aux: tr.Intern("ready"), Site: tr.Intern("b.go:20"), TS: 15})
	return tr
}

func TestDetectRegularSignalWait(t *testing.T) {
	res := DetectRegular(hb.New(regularTrace(false)), "wl")
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(res.Reports))
	}
	r := res.Reports[0]
	if r.OpsDesc != "Signal vs Wait" || r.ResClass != "cv:ready" {
		t.Fatalf("report = %s", r)
	}
	if r.WPrime == nil || r.WPrime.Site != "a.go:5" || r.WPrime.PID != "a#1" {
		t.Fatalf("W' = %+v, want the remote send", r.WPrime)
	}
	if res.Pruned.WaitTimeout != 0 {
		t.Fatalf("pruned = %+v", res.Pruned)
	}
}

func TestDetectRegularPrunesTimedWaits(t *testing.T) {
	res := DetectRegular(hb.New(regularTrace(true)), "wl")
	if len(res.Reports) != 0 || res.Pruned.WaitTimeout != 1 {
		t.Fatalf("timed wait not pruned: reports=%d pruned=%+v", len(res.Reports), res.Pruned)
	}
}

func TestDetectRegularIgnoresLocalSignals(t *testing.T) {
	// The signal comes from a plain local thread: no fault can remove it.
	tr := trace.New()
	bStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("b#1"), Thread: 1, Causor: trace.NoOp})
	tr.Append(trace.Record{Kind: trace.KWait, PID: tr.Intern("b#1"), Thread: 1, Frame: bStart,
		Res: tr.Intern("cv:b#1:x/1"), Site: tr.Intern("b.go:1"), TS: 5})
	spawn := tr.Append(trace.Record{Kind: trace.KThreadCreate, PID: tr.Intern("b#1"), Thread: 1, Frame: bStart})
	tStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("b#1"), Thread: 2, Causor: spawn})
	tr.Append(trace.Record{Kind: trace.KSignal, PID: tr.Intern("b#1"), Thread: 2, Frame: tStart,
		Res: tr.Intern("cv:b#1:x/1"), Site: tr.Intern("b.go:2"), TS: 9})
	res := DetectRegular(hb.New(tr), "wl")
	if len(res.Reports) != 0 {
		t.Fatalf("local signal reported: %v", res.Reports[0])
	}
}

func TestDetectRegularWaitNeedsLaterSignal(t *testing.T) {
	// Signal strictly before the wait: the pairing rule finds nothing.
	tr := trace.New()
	aStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("a#1"), Thread: 1, Causor: trace.NoOp})
	bStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("b#1"), Thread: 2, Causor: trace.NoOp})
	send := tr.Append(trace.Record{Kind: trace.KMsgSend, PID: tr.Intern("a#1"), Thread: 1, Frame: aStart, Target: tr.Intern("b#1"), Site: tr.Intern("a.go:1"), TS: 2})
	hBegin := tr.Append(trace.Record{Kind: trace.KHandlerBegin, PID: tr.Intern("b#1"), Thread: 3, Frame: bStart, Causor: send})
	tr.Append(trace.Record{Kind: trace.KSignal, PID: tr.Intern("b#1"), Thread: 3, Frame: hBegin, Res: tr.Intern("cv:b#1:x/1"), Site: tr.Intern("b.go:2"), TS: 3})
	tr.Append(trace.Record{Kind: trace.KWait, PID: tr.Intern("b#1"), Thread: 2, Frame: bStart, Res: tr.Intern("cv:b#1:x/1"), Site: tr.Intern("b.go:1"), TS: 8})
	res := DetectRegular(hb.New(tr), "wl")
	if len(res.Reports) != 0 {
		t.Fatalf("signal-before-wait wrongly paired: %v", res.Reports[0])
	}
}

// loopTrace builds a custom-loop-signal scenario: a handler (caused by a
// remote message) writes the flag a sync loop's final read consumes.
func loopTrace(timeInExit bool) *trace.Trace {
	tr := trace.New()
	aStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("a#1"), Thread: 1, Causor: trace.NoOp})
	bStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("b#1"), Thread: 2, Causor: trace.NoOp})
	tr.Append(trace.Record{Kind: trace.KLoopEnter, PID: tr.Intern("b#1"), Thread: 2, Frame: bStart, Aux: tr.Intern("poll")})
	send := tr.Append(trace.Record{Kind: trace.KMsgSend, PID: tr.Intern("a#1"), Thread: 1, Frame: aStart, Target: tr.Intern("b#1"), Site: tr.Intern("a.go:9"), TS: 4})
	hBegin := tr.Append(trace.Record{Kind: trace.KHandlerBegin, PID: tr.Intern("b#1"), Thread: 3, Frame: bStart, Causor: send})
	w := tr.Append(trace.Record{Kind: trace.KHeapWrite, PID: tr.Intern("b#1"), Thread: 3, Frame: hBegin,
		Res: tr.Intern("heap:b#1:o.flag"), Site: tr.Intern("b.go:30"), TS: 6})
	read := tr.Append(trace.Record{Kind: trace.KLoopRead, PID: tr.Intern("b#1"), Thread: 2, Frame: bStart,
		Res: tr.Intern("heap:b#1:o.flag"), Src: w, Site: tr.Intern("b.go:40"), TS: 8})
	taints := []trace.OpID{read}
	if timeInExit {
		tm := tr.Append(trace.Record{Kind: trace.KTimeRead, PID: tr.Intern("b#1"), Thread: 2, Frame: bStart, TS: 9})
		taints = append(taints, tm)
	}
	tr.Append(trace.Record{Kind: trace.KLoopExit, PID: tr.Intern("b#1"), Thread: 2, Frame: bStart,
		Aux: tr.Intern("poll"), Taint: taints, TS: 10})
	return tr
}

func TestDetectRegularLoopSignal(t *testing.T) {
	res := DetectRegular(hb.New(loopTrace(false)), "wl")
	if len(res.Reports) != 1 || res.Reports[0].OpsDesc != "Write vs Loop" {
		t.Fatalf("reports = %v", res.Reports)
	}
	if res.Reports[0].WPrime.Site != "a.go:9" {
		t.Fatalf("W' = %+v", res.Reports[0].WPrime)
	}
}

func TestDetectRegularPrunesTimeBoundedLoops(t *testing.T) {
	res := DetectRegular(hb.New(loopTrace(true)), "wl")
	if len(res.Reports) != 0 || res.Pruned.LoopTimeout != 1 {
		t.Fatalf("time-bounded loop not pruned: %+v", res.Pruned)
	}
}

// --- Crash-recovery detector on synthetic checkpoint pairs. ---

// recoveryPair builds a fault-free trace where the crash node writes a
// znode, and a faulty trace where a recovery process reads it and the value
// reaches a message send (impact).
func recoveryPair(withReset, withSanity, withImpact bool) (ff, fy *trace.Trace) {
	ff = trace.New()
	ffStart := ff.Append(trace.Record{Kind: trace.KThreadStart, PID: ff.Intern("crash#1"), Thread: 1, Causor: trace.NoOp})
	ff.Append(trace.Record{Kind: trace.KKVUpdate, PID: ff.Intern("crash#1"), Thread: 1, Frame: ffStart,
		Res: ff.Intern("zk:/state"), Aux: ff.Intern("set"), Site: ff.Intern("c.go:5"), TS: 3})
	ff.PIDs = []string{"crash#1"}

	fy = trace.New()
	fy.CrashedPID = "crash#1"
	fy.CrashStep = 10
	fyStart := fy.Append(trace.Record{Kind: trace.KThreadStart, PID: fy.Intern("crash#1"), Thread: 1, Causor: trace.NoOp})
	_ = fyStart
	recStart := fy.Append(trace.Record{Kind: trace.KThreadStart, PID: fy.Intern("rec#2"), Thread: 2, Causor: trace.NoOp})
	if withReset {
		fy.Append(trace.Record{Kind: trace.KKVUpdate, PID: fy.Intern("rec#2"), Thread: 2, Frame: recStart,
			Res: fy.Intern("zk:/state"), Aux: fy.Intern("set"), Site: fy.Intern("r.go:3"), TS: 12})
	}
	var sanityID trace.OpID
	if withSanity {
		sanityID = fy.Append(trace.Record{Kind: trace.KStExists, PID: fy.Intern("rec#2"), Thread: 2, Frame: recStart,
			Res: fy.Intern("zk:/state"), Site: fy.Intern("r.go:5"), TS: 13})
	}
	readRec := trace.Record{Kind: trace.KStRead, PID: fy.Intern("rec#2"), Thread: 2, Frame: recStart,
		Res: fy.Intern("zk:/state"), Site: fy.Intern("r.go:10"), TS: 14}
	if withSanity {
		readRec.Ctl = []trace.OpID{sanityID}
	}
	read := fy.Append(readRec)
	if withImpact {
		fy.Append(trace.Record{Kind: trace.KMsgSend, PID: fy.Intern("rec#2"), Thread: 2, Frame: recStart,
			Target: fy.Intern("other#1"), Taint: []trace.OpID{read}, Site: fy.Intern("r.go:12"), TS: 16})
	}
	fy.PIDs = []string{"crash#1", "rec#2"}
	return ff, fy
}

func TestDetectRecoveryFindsConflictingPair(t *testing.T) {
	ff, fy := recoveryPair(false, false, true)
	res := DetectRecovery(hb.New(ff), hb.New(fy), "wl")
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d (%+v)", len(res.Reports), res.Pruned)
	}
	r := res.Reports[0]
	if r.Type != CrashRecovery || r.W.Site != "c.go:5" || r.R.Site != "r.go:10" {
		t.Fatalf("report = %s", r)
	}
	if r.WInFaultyRun {
		t.Fatal("W only exists in the fault-free run; trigger must be crash-after")
	}
	if len(res.RecoveryPIDs) != 1 || res.RecoveryPIDs[0] != "rec#2" {
		t.Fatalf("recovery pids = %v", res.RecoveryPIDs)
	}
}

func TestDetectRecoveryResetPruning(t *testing.T) {
	ff, fy := recoveryPair(true, false, true)
	res := DetectRecovery(hb.New(ff), hb.New(fy), "wl")
	if len(res.Reports) != 0 || res.Pruned.Dependence == 0 {
		t.Fatalf("reset-protected read not pruned: %d reports, %+v", len(res.Reports), res.Pruned)
	}
}

func TestDetectRecoverySanityCheckPruning(t *testing.T) {
	ff, fy := recoveryPair(false, true, true)
	res := DetectRecovery(hb.New(ff), hb.New(fy), "wl")
	// The guarded read (R2) is pruned; the sanity check itself (R1, the
	// exists probe) still pairs and has no impact — pruned by impact.
	for _, r := range res.Reports {
		if r.R.Site == "r.go:10" {
			t.Fatalf("sanity-checked read still reported: %s", r)
		}
	}
	if res.Pruned.Dependence == 0 {
		t.Fatalf("no dependence pruning recorded: %+v", res.Pruned)
	}
}

func TestDetectRecoveryImpactPruning(t *testing.T) {
	ff, fy := recoveryPair(false, false, false)
	res := DetectRecovery(hb.New(ff), hb.New(fy), "wl")
	if len(res.Reports) != 0 || res.Pruned.Impact == 0 {
		t.Fatalf("impact-free read not pruned: %d reports, %+v", len(res.Reports), res.Pruned)
	}
}

func TestDetectRecoveryIgnoresCrashNodeHeap(t *testing.T) {
	ff := trace.New()
	s := ff.Append(trace.Record{Kind: trace.KThreadStart, PID: ff.Intern("crash#1"), Thread: 1, Causor: trace.NoOp})
	ff.Append(trace.Record{Kind: trace.KHeapWrite, PID: ff.Intern("crash#1"), Thread: 1, Frame: s,
		Res: ff.Intern("heap:crash#1:o.f"), Site: ff.Intern("c.go:1"), TS: 2})
	ff.PIDs = []string{"crash#1"}

	fy := trace.New()
	fy.CrashedPID = "crash#1"
	fy.CrashStep = 5
	fy.Append(trace.Record{Kind: trace.KThreadStart, PID: fy.Intern("crash#1"), Thread: 1, Causor: trace.NoOp})
	rs := fy.Append(trace.Record{Kind: trace.KThreadStart, PID: fy.Intern("rec#2"), Thread: 2, Causor: trace.NoOp})
	read := fy.Append(trace.Record{Kind: trace.KHeapRead, PID: fy.Intern("rec#2"), Thread: 2, Frame: rs,
		Res: fy.Intern("heap:crash#1:o.f"), Site: fy.Intern("r.go:1"), TS: 7})
	fy.Append(trace.Record{Kind: trace.KMsgSend, PID: fy.Intern("rec#2"), Thread: 2, Frame: rs,
		Target: fy.Intern("x#1"), Taint: []trace.OpID{read}, TS: 8})
	fy.PIDs = []string{"crash#1", "rec#2"}

	res := DetectRecovery(hb.New(ff), hb.New(fy), "wl")
	if len(res.Reports) != 0 {
		t.Fatalf("heap on the crashed node must be ignored (it is wiped): %v", res.Reports[0])
	}
}

func TestDetectRecoveryNoCrashNoReports(t *testing.T) {
	ff, _ := recoveryPair(false, false, true)
	res := DetectRecovery(hb.New(ff), hb.New(ff), "wl")
	if len(res.Reports) != 0 {
		t.Fatal("fault-free pair produced crash-recovery reports")
	}
}

func TestSiteIndexSkipsCrashRecords(t *testing.T) {
	tr := trace.New()
	s := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("p#1"), Thread: 1, Causor: trace.NoOp})
	tr.Append(trace.Record{Kind: trace.KCrash, PID: tr.Intern("system"), Site: tr.Intern("x.go:1")})
	op := tr.Append(trace.Record{Kind: trace.KHeapWrite, PID: tr.Intern("p#1"), Thread: 1, Frame: s, Res: tr.Intern("heap:p#1:o.f"), Site: tr.Intern("x.go:1")})
	ix := trace.BuildIndex(tr)
	if got := occurrence(ix, tr.At(op)); got != 1 {
		t.Fatalf("occurrence = %d, want 1 (crash bookkeeping must not count)", got)
	}
}
