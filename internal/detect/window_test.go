package detect

import (
	"testing"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// windowedTrace builds a rolling-crash trace: am#1 crashes at 100, its
// incarnation am#2 restarts at 120 and crashes at 150, am#3 restarts at 160
// and runs a recovery read at 200 (the trace end).
func windowedTrace() *trace.Trace {
	tr := trace.New()
	s := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("am#1"), Thread: 1, Causor: trace.NoOp, TS: 1})
	tr.Append(trace.Record{Kind: trace.KCrash, PID: tr.Intern("system"), Aux: tr.Intern("am#1"), TS: 100})
	tr.Append(trace.Record{Kind: trace.KRestart, PID: tr.Intern("system"), Aux: tr.Intern("am#2"), TS: 120})
	rs := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("am#2"), Thread: 2, Causor: trace.NoOp, TS: 121})
	tr.Append(trace.Record{Kind: trace.KStRead, PID: tr.Intern("am#2"), Thread: 2, Frame: rs,
		Res: tr.Intern("zk:/job"), Site: tr.Intern("rec.go:4"), TS: 130})
	tr.Append(trace.Record{Kind: trace.KCrash, PID: tr.Intern("system"), Aux: tr.Intern("am#2"), TS: 150})
	tr.Append(trace.Record{Kind: trace.KRestart, PID: tr.Intern("system"), Aux: tr.Intern("am#3"), TS: 160})
	rs3 := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("am#3"), Thread: 3, Causor: trace.NoOp, TS: 161})
	tr.Append(trace.Record{Kind: trace.KStRead, PID: tr.Intern("am#3"), Thread: 3, Frame: rs3,
		Res: tr.Intern("zk:/job"), Site: tr.Intern("rec.go:4"), TS: 200})
	_ = s
	tr.CrashedPID, tr.CrashStep = "am#1", 100
	return tr
}

// TestWindowContains: the open edge is exclusive (the fault's own step is
// not "inside" its window), the close edge inclusive (a fault killing the
// window's recovery node fires exactly at CloseStep).
func TestWindowContains(t *testing.T) {
	w := Window{OpenStep: 100, CloseStep: 150}
	for step, want := range map[int64]bool{99: false, 100: false, 101: true, 150: true, 151: false} {
		if got := w.Contains(step); got != want {
			t.Errorf("Contains(%d) = %v, want %v", step, got, want)
		}
	}
}

// TestDeriveWindows: firings lower to windows in order; the crash window of
// a victim whose incarnation also crashed closes at that second crash (the
// rolling-crash shape); drop firings open drop-induced windows spanning to
// the trace end; firings that hit nothing open no window.
func TestDeriveWindows(t *testing.T) {
	ty := windowedTrace()
	firings := []FaultFiring{
		{Index: 0, Action: "node-crash", Step: 100, Victim: "am#1"},
		{Index: 1, Action: "node-crash", Step: 150, Victim: "am#2"},
		{Index: 2, Action: "kernel-drop", Step: 170, Site: "a.go:5", Occurrence: 1, When: "before", Victim: "rs#1"},
		{Index: 3, Action: "node-crash", Step: 180, Victim: ""}, // missed
	}
	wins := DeriveWindows(ty, firings)
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3", len(wins))
	}
	w0 := wins[0]
	if w0.ID != 0 || w0.Kind != WindowCrashRecovery || w0.Victim != "am#1" ||
		w0.Incarnation != "am#2" || w0.OpenStep != 100 || w0.CloseStep != 150 {
		t.Fatalf("w0 = %s (inc %q)", &w0, w0.Incarnation)
	}
	w1 := wins[1]
	if w1.Victim != "am#2" || w1.Incarnation != "am#3" || w1.CloseStep != 200 {
		t.Fatalf("w1 = %s (inc %q): am#3 never crashed, so the window runs to trace end", &w1, w1.Incarnation)
	}
	w2 := wins[2]
	if w2.Kind != WindowDropInduced || w2.Victim != "rs#1" || w2.OpenSite != "a.go:5" ||
		w2.OpenOcc != 1 || w2.OpenWhen != "before" || w2.CloseStep != 200 {
		t.Fatalf("w2 = %s (site %q occ %d when %q)", &w2, w2.OpenSite, w2.OpenOcc, w2.OpenWhen)
	}
	if w2.FaultIndex != 2 {
		t.Fatalf("w2 fault index = %d, want 2 (the missed firing keeps scenario indices)", w2.FaultIndex)
	}
}

// TestResolveWindowsLadder: explicit windows win over firings, firings over
// the legacy victim surfaces, and the bare-trace fallback synthesizes the
// classic single crash window.
func TestResolveWindowsLadder(t *testing.T) {
	ty := windowedTrace()

	explicit := []Window{{ID: 0, Victim: "custom", OpenStep: 7, CloseStep: 9}}
	got := resolveWindows(ty, &Options{Windows: explicit, Firings: []FaultFiring{{Victim: "am#1", Step: 100}}})
	if len(got) != 1 || got[0].Victim != "custom" {
		t.Fatalf("explicit windows ignored: %v", got)
	}

	got = resolveWindows(ty, &Options{Firings: []FaultFiring{{Action: "node-crash", Step: 100, Victim: "am#1"}}})
	if len(got) != 1 || got[0].Victim != "am#1" || got[0].CloseStep != 150 {
		t.Fatalf("firing lowering = %v", got)
	}

	got = resolveWindows(ty, &Options{CrashedPIDs: []string{"am#1", "am#2"}})
	if len(got) != 2 || got[0].OpenStep != 100 || got[1].OpenStep != 150 {
		t.Fatalf("crashed-PID lowering = %v", got)
	}

	// Legacy single-crash synthesis: exactly one window, opened at the
	// trace's recorded crash step, action node-crash.
	got = resolveWindows(ty, &Options{})
	if len(got) != 1 || got[0].Victim != "am#1" || got[0].OpenStep != 100 || got[0].Action != "node-crash" {
		t.Fatalf("legacy lowering = %v", got)
	}

	empty := trace.New()
	if got = resolveWindows(empty, &Options{}); got != nil {
		t.Fatalf("no crash, no windows; got %v", got)
	}
}

func TestNextIncarnation(t *testing.T) {
	cases := map[string]string{"am#1": "am#2", "rs#9": "rs#10", "system": "", "am#x": ""}
	for in, want := range cases {
		if got := nextIncarnation(in); got != want {
			t.Errorf("nextIncarnation(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDetectCompoundPairsContainedWindows: the second crash fired at the
// first window's close step (inside, close edge inclusive) → one compound
// report naming both anchors and the orphaned recovery read. A later window
// opened after the first closed pairs with the second window only.
func TestDetectCompoundPairsContainedWindows(t *testing.T) {
	ty := windowedTrace()
	gy := hb.New(ty)
	wins := DeriveWindows(ty, []FaultFiring{
		{Index: 0, Action: "node-crash", Step: 100, Victim: "am#1"},
		{Index: 1, Action: "node-crash", Step: 150, Victim: "am#2"},
	})
	reps := DetectCompound(gy, wins, "wl")
	if len(reps) != 1 {
		t.Fatalf("compound reports = %d, want 1", len(reps))
	}
	c := reps[0]
	if c.Outer.ID != 0 || c.Inner.ID != 1 || c.Workload != "wl" {
		t.Fatalf("pairing = outer w%d inner w%d", c.Outer.ID, c.Inner.ID)
	}
	// The orphaned evidence is am#2's recovery read at 130 — the last
	// resource op of the outer recovery before the inner fault.
	if c.Orphaned.Op == 0 || c.Orphaned.Site != "rec.go:4" || c.Orphaned.PID != "am#2" {
		t.Fatalf("orphaned = %+v", c.Orphaned)
	}
	if c.Key() == "" || c.String() == "" {
		t.Fatal("empty key/render")
	}
}

// TestDetectCompoundDisjointWindows: a fault that fires after the first
// window already closed is not a compound finding.
func TestDetectCompoundDisjointWindows(t *testing.T) {
	ty := windowedTrace()
	gy := hb.New(ty)
	wins := []Window{
		{ID: 0, Kind: WindowCrashRecovery, Victim: "am#1", OpenStep: 100, CloseStep: 140},
		{ID: 1, Kind: WindowCrashRecovery, Victim: "rs#1", OpenStep: 170, CloseStep: 200},
	}
	if reps := DetectCompound(gy, wins, "wl"); len(reps) != 0 {
		t.Fatalf("disjoint windows produced %d compound reports", len(reps))
	}
	// Single-window observations never produce compound reports.
	if reps := DetectCompound(gy, wins[:1], "wl"); reps != nil {
		t.Fatalf("single window produced %v", reps)
	}
	// Drop windows open no recovery: a fault inside one is not compound.
	drop := []Window{
		{ID: 0, Kind: WindowDropInduced, Victim: "rs#1", OpenStep: 100, CloseStep: 200},
		{ID: 1, Kind: WindowCrashRecovery, Victim: "am#1", OpenStep: 150, CloseStep: 200},
	}
	if reps := DetectCompound(gy, drop, "wl"); len(reps) != 0 {
		t.Fatalf("drop outer window produced %d compound reports", len(reps))
	}
}
