// Package detect implements FCatch's TOF-bug prediction: the crash-regular
// detector (Section 4.2) and the crash-recovery detector (Section 4.3),
// including the fault-tolerance pruning analyses and impact estimation whose
// effect Table 5 measures.
package detect

import (
	"fmt"
	"strings"

	"fcatch/internal/obs"
	"fcatch/internal/trace"
)

// BugType distinguishes the two TOF bug classes of Section 2.
type BugType int

const (
	// CrashRegular bugs: a regular node blocks forever because the causal
	// source of a signal/loop-enabling write disappeared (Figure 3).
	CrashRegular BugType = iota
	// CrashRecovery bugs: a recovery node consumes shared-resource content
	// the crashing node left in an unexpected state (Figure 4).
	CrashRecovery
)

func (b BugType) String() string {
	if b == CrashRegular {
		return "crash-regular"
	}
	return "crash-recovery"
}

// OpSummary captures one operation of a report.
type OpSummary struct {
	Op   trace.OpID
	Kind trace.Kind
	Site string
	PID  string
	Aux  string
	TS   int64
	// Occurrence is the 1-based index of this op among traced ops at the
	// same site, used to aim trigger points.
	Occurrence int
}

// summarize resolves a record's Syms through its owning trace: reports carry
// plain strings so they survive the trace they came from.
func summarize(t *trace.Trace, r *trace.Record, occ int) OpSummary {
	return OpSummary{
		Op: r.ID, Kind: r.Kind,
		Site: t.Str(r.Site), PID: t.Str(r.PID), Aux: t.Str(r.Aux),
		TS: r.TS, Occurrence: occ,
	}
}

// Report is one predicted TOF bug.
type Report struct {
	Type     BugType
	OpsDesc  string // "Signal vs Wait", "Write vs Loop", "Create vs Create", ...
	Resource string // concrete resource instance
	ResClass string // instance-normalized class (dedup key component)

	W      OpSummary  // the write/signal whose timing is hazardous
	R      OpSummary  // the read/wait/loop that mishandles it
	WPrime *OpSummary // crash-regular only: remote causal source of W

	// Crash-recovery trigger timing (Section 5): if W was observed in the
	// correct faulty run (before the crash), crash right before W; if W only
	// appeared in the fault-free run, crash right after it.
	WInFaultyRun bool

	// CrashTargetPID is the process whose crash (or whose message's drop)
	// triggers the bug: W′'s process for crash-regular, W's for
	// crash-recovery.
	CrashTargetPID string
	// CrashTargetRole is the role of that process (so trigger runs can
	// restart it, exercising recovery).
	CrashTargetRole string

	// WindowID / FaultIndex anchor the report to the hazard window whose
	// recovery it describes: WindowID is the window's position in the
	// observation, FaultIndex the scenario event that opened it. Both are 0
	// for single-fault observations (the 1-window special case) and for
	// crash-regular reports, whose hazard is hypothetical.
	WindowID   int
	FaultIndex int

	Workload string
}

// Key is the deduplication identity: two reports with the same key describe
// the same bug even if observed on different resource instances or runs
// (Section 8.1.1's "same bug" star in Table 3).
func (r *Report) Key() string {
	w := r.W.Site
	if r.WPrime != nil && r.Type == CrashRegular {
		// The signal site plus the waiting site identify the hazard.
		w = r.W.Site
	}
	k := fmt.Sprintf("%s|%s|%s|%s", r.Type, w, r.R.Site, r.ResClass)
	if r.WindowID > 0 {
		// Reports from later hazard windows are distinct findings even on
		// the same sites: a rolling-crash hazard is not its single-crash
		// shadow. Window 0 keeps the historical key so single-fault dedup
		// (and every existing golden) is unchanged.
		k += "|w" + itoa(int64(r.WindowID))
	}
	return k
}

// String renders a one-line summary.
func (r *Report) String() string {
	s := fmt.Sprintf("[%s] %s on %s: W=%s@%s R=%s@%s",
		r.Type, r.OpsDesc, r.ResClass, r.W.Kind, r.W.Site, r.R.Kind, r.R.Site)
	if r.WPrime != nil {
		s += fmt.Sprintf(" W'=%s@%s(%s)", r.WPrime.Kind, r.WPrime.Site, r.WPrime.PID)
	}
	return s
}

// Options toggles the fault-tolerance pruning analyses, for the ablation
// the paper quantifies in Section 8.4: "Without them, the number of false
// positives will increase by about 5X for crash-regular bugs and about 40X
// for crash-recovery bugs." All analyses are on by default.
type Options struct {
	// DisableTimeoutPruning keeps timed waits and deadline-bounded loops as
	// candidates (Section 4.2.2).
	DisableTimeoutPruning bool
	// DisableDependencePruning keeps sanity-checked and reset-protected
	// recovery reads (Section 4.3.2).
	DisableDependencePruning bool
	// DisableImpactPruning keeps reads with no failure-prone impact
	// (Section 4.3.3).
	DisableImpactPruning bool
	// CrashedPIDs are the scenario's injected crash victims, in injection
	// order — the legacy fault surface, still honoured when no firings or
	// windows are supplied; empty falls back to the trace's first recorded
	// crash (the single-fault behaviour).
	CrashedPIDs []string
	// Firings are the scenario's actual fault firings (victim, step,
	// anchor per event). When set, hazard windows are derived from them.
	Firings []FaultFiring
	// Windows, when non-empty, are the observation's hazard windows,
	// derived once by the caller (core.Detect) and shared by both
	// detectors and the cross-window pairing pass.
	Windows []Window
	// Explain records one Decision per candidate the detectors judge,
	// naming the pruning rule that discarded it (or "kept"). Reports are
	// byte-identical with Explain on or off.
	Explain bool
	// Metrics, when non-nil, receives per-rule pruning counters and
	// per-window phase spans. Strictly observe-only: metrics never change
	// detection results. nil (the default) is a cheap no-op.
	Metrics *obs.Registry
}

// PruneCounters tallies how many candidates each fault-tolerance analysis
// eliminated — the per-workload rows of Table 5. Loop/Wait timeout counts
// are deduplicated candidate groups; Dependence and Impact counts are raw
// conflicting pairs (those analyses run before deduplication).
type PruneCounters struct {
	LoopTimeout int
	WaitTimeout int
	Dependence  int
	Impact      int
}

// Add accumulates counters.
func (p *PruneCounters) Add(o PruneCounters) {
	p.LoopTimeout += o.LoopTimeout
	p.WaitTimeout += o.WaitTimeout
	p.Dependence += o.Dependence
	p.Impact += o.Impact
}

// normalizeRes maps a concrete resource ID to its class: process IDs and
// numeric instance suffixes are collapsed, so "cv:regionserver#2:open/17"
// and "cv:regionserver#1:open/9" both become "cv:open".
func normalizeRes(res string) string {
	parts := strings.SplitN(res, ":", 3)
	switch {
	case len(parts) == 3 && (parts[0] == "heap" || parts[0] == "cv" || parts[0] == "lfs"):
		// Drop the process/machine component.
		res = parts[0] + ":" + parts[2]
	}
	// Collapse digit runs and instance suffixes.
	var b strings.Builder
	inDigits := false
	for _, c := range res {
		if c >= '0' && c <= '9' {
			if !inDigits {
				b.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteRune(c)
	}
	s := b.String()
	s = strings.ReplaceAll(s, "/#", "")
	return s
}

// Dedup collapses reports with equal keys, keeping the earliest observation.
func Dedup(reports []*Report) []*Report {
	seen := make(map[string]*Report)
	var order []string
	for _, r := range reports {
		k := r.Key()
		if _, ok := seen[k]; !ok {
			seen[k] = r
			order = append(order, k)
		}
	}
	out := make([]*Report, 0, len(order))
	for _, k := range order {
		out = append(out, seen[k])
	}
	return out
}
