package detect

import (
	"fmt"
	"math/rand"
	"testing"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// genRegularTrace builds a random single-run trace of signals and waits on a
// handful of condition variables, with each signal either local (same-node
// thread) or remote-caused (inside a handler spawned by another node's
// send), and waits randomly timed.
func genRegularTrace(seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New()
	aStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("a#1"), Thread: 1, Causor: trace.NoOp})
	bStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("b#1"), Thread: 2, Causor: trace.NoOp})
	localStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("b#1"), Thread: 3, Causor: trace.NoOp})

	nCVs := 1 + rng.Intn(4)
	ts := int64(10)
	nextThread := 4
	for i := 0; i < 10+rng.Intn(25); i++ {
		cv := fmt.Sprintf("cv:b#1:c%d/%d", rng.Intn(nCVs), rng.Intn(nCVs))
		ts += int64(1 + rng.Intn(5))
		switch rng.Intn(3) {
		case 0: // wait on node b's main, possibly timed
			var flags uint32
			if rng.Intn(2) == 0 {
				flags = trace.FlagTimedWait
			}
			tr.Append(trace.Record{Kind: trace.KWait, PID: tr.Intern("b#1"), Thread: 2, Frame: bStart,
				Res: tr.Intern(cv), Flags: flags, TS: ts, Site: tr.Intern(fmt.Sprintf("w%d.go:1", rng.Intn(6)))})
		case 1: // remote-caused signal: a#1 sends, handler on b signals
			send := tr.Append(trace.Record{Kind: trace.KMsgSend, PID: tr.Intern("a#1"), Thread: 1, Frame: aStart,
				Target: tr.Intern("b#1"), TS: ts, Site: tr.Intern(fmt.Sprintf("s%d.go:1", rng.Intn(6)))})
			h := tr.Append(trace.Record{Kind: trace.KHandlerBegin, PID: tr.Intern("b#1"), Thread: nextThread,
				Frame: bStart, Causor: send})
			tr.Append(trace.Record{Kind: trace.KSignal, PID: tr.Intern("b#1"), Thread: nextThread, Frame: h,
				Res: tr.Intern(cv), TS: ts + 1, Site: tr.Intern(fmt.Sprintf("g%d.go:1", rng.Intn(6)))})
			nextThread++
		case 2: // purely local signal
			tr.Append(trace.Record{Kind: trace.KSignal, PID: tr.Intern("b#1"), Thread: 3, Frame: localStart,
				Res: tr.Intern(cv), TS: ts, Site: tr.Intern(fmt.Sprintf("l%d.go:1", rng.Intn(6)))})
		}
	}
	return tr
}

// TestRegularDetectorInvariants checks, across many random traces, the
// structural guarantees of every crash-regular report.
func TestRegularDetectorInvariants(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		tr := genRegularTrace(seed)
		g := hb.New(tr)
		res := DetectRegular(g, "fuzz")
		for _, r := range res.Reports {
			w, rd := tr.At(r.W.Op), tr.At(r.R.Op)
			if w == nil || rd == nil {
				t.Fatalf("seed %d: report references missing ops: %s", seed, r)
			}
			if w.Kind != trace.KSignal || rd.Kind != trace.KWait {
				t.Fatalf("seed %d: wrong op kinds: %s", seed, r)
			}
			if w.ID <= rd.ID {
				t.Fatalf("seed %d: paired signal does not follow the wait: %s", seed, r)
			}
			if w.Thread == rd.Thread {
				t.Fatalf("seed %d: same-thread pair reported: %s", seed, r)
			}
			if rd.HasFlag(trace.FlagTimedWait) {
				t.Fatalf("seed %d: timed wait reported: %s", seed, r)
			}
			if w.Res != rd.Res {
				t.Fatalf("seed %d: cross-resource pair: %s", seed, r)
			}
			if r.WPrime == nil {
				t.Fatalf("seed %d: no W': %s", seed, r)
			}
			wp := tr.At(r.WPrime.Op)
			if wp == nil || wp.PID == w.PID {
				t.Fatalf("seed %d: W' not on a different node: %s", seed, r)
			}
			// W' must be a causal ancestor of W.
			found := false
			for _, anc := range g.BackwardChain(w.ID) {
				if anc == wp.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d: W' is not an ancestor of W: %s", seed, r)
			}
		}
		// Purely local signals must never produce reports.
		for _, r := range res.Reports {
			w := tr.At(r.W.Op)
			if w.Thread == 3 {
				t.Fatalf("seed %d: local-thread signal reported: %s", seed, r)
			}
		}
	}
}

// TestRegularDetectorDeterministicOnRandomTraces: detection output is a
// pure function of the trace.
func TestRegularDetectorDeterministicOnRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		tr := genRegularTrace(seed)
		a := DetectRegular(hb.New(tr), "fuzz")
		b := DetectRegular(hb.New(tr), "fuzz")
		if len(a.Reports) != len(b.Reports) || a.Pruned != b.Pruned {
			t.Fatalf("seed %d: nondeterministic detection", seed)
		}
		for i := range a.Reports {
			if a.Reports[i].Key() != b.Reports[i].Key() {
				t.Fatalf("seed %d: report order/content differs", seed)
			}
		}
	}
}

// TestRegularDetectorPruningOnlyRemoves: with pruning disabled, the report
// set is a superset (monotonicity on arbitrary traces).
func TestRegularDetectorPruningOnlyRemoves(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		tr := genRegularTrace(seed)
		pruned := DetectRegular(hb.New(tr), "fuzz")
		unpruned := DetectRegularOpts(hb.New(tr), "fuzz", Options{DisableTimeoutPruning: true})
		keys := map[string]bool{}
		for _, r := range unpruned.Reports {
			keys[r.Key()] = true
		}
		for _, r := range pruned.Reports {
			if !keys[r.Key()] {
				t.Fatalf("seed %d: pruning added report %s", seed, r)
			}
		}
		if len(unpruned.Reports) < len(pruned.Reports) {
			t.Fatalf("seed %d: pruning-off lost reports", seed)
		}
	}
}
