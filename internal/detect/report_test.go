package detect

import (
	"strings"
	"testing"

	"fcatch/internal/trace"
)

func TestReportString(t *testing.T) {
	wp := OpSummary{Op: 3, Kind: trace.KMsgSend, Site: "a.go:1", PID: "a#1"}
	r := &Report{
		Type: CrashRegular, OpsDesc: "Signal vs Wait", ResClass: "cv:x",
		W:      OpSummary{Kind: trace.KSignal, Site: "b.go:2"},
		R:      OpSummary{Kind: trace.KWait, Site: "b.go:3"},
		WPrime: &wp,
	}
	s := r.String()
	for _, want := range []string{"crash-regular", "Signal vs Wait", "cv:x", "signal@b.go:2", "wait@b.go:3", "W'=msg-send@a.go:1(a#1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestBugTypeString(t *testing.T) {
	if CrashRegular.String() != "crash-regular" || CrashRecovery.String() != "crash-recovery" {
		t.Fatal("bug type names wrong")
	}
}

func TestOpsDescNames(t *testing.T) {
	tr := trace.New()
	mk := func(k trace.Kind, aux string) *trace.Record { return &trace.Record{Kind: k, Aux: tr.Intern(aux)} }
	cases := []struct {
		w, r *trace.Record
		want string
	}{
		{mk(trace.KHeapWrite, ""), mk(trace.KHeapRead, ""), "Write vs Read"},
		{mk(trace.KStDelete, ""), mk(trace.KStRead, ""), "Delete vs Read"},
		{mk(trace.KKVUpdate, "create"), mk(trace.KKVUpdate, "create"), "Create vs Create"},
		{mk(trace.KKVUpdate, "delete"), mk(trace.KStExists, ""), "Delete vs Exists"},
		{mk(trace.KKVUpdate, "set"), mk(trace.KStList, ""), "Write vs List"},
		{mk(trace.KStCreate, ""), mk(trace.KLoopRead, ""), "Create vs Loop"},
		{mk(trace.KStRename, ""), mk(trace.KStRead, ""), "Rename vs Read"},
	}
	for _, c := range cases {
		if got := opsDesc(tr, c.w, tr, c.r); got != c.want {
			t.Errorf("opsDesc = %q, want %q", got, c.want)
		}
	}
}

func TestPruneCountersAdd(t *testing.T) {
	a := PruneCounters{LoopTimeout: 1, WaitTimeout: 2, Dependence: 3, Impact: 4}
	a.Add(PruneCounters{LoopTimeout: 10, WaitTimeout: 20, Dependence: 30, Impact: 40})
	if a != (PruneCounters{11, 22, 33, 44}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestCorrelateSingletonFallback(t *testing.T) {
	// A report whose read op cannot be resolved still lands in a group.
	ty := trace.New()
	reps := []*Report{{
		Type: CrashRecovery,
		R:    OpSummary{Op: 999, Site: "ghost.go:1"},
		W:    OpSummary{TS: 5},
	}}
	groups := CorrelateRecovery(ty, reps)
	if len(groups) != 1 || len(groups[0].Reports) != 1 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].WindowStart != 5 || groups[0].WindowEnd != 5 {
		t.Fatalf("window = [%d,%d]", groups[0].WindowStart, groups[0].WindowEnd)
	}
}

func TestCorrelateSkipsCrashRegular(t *testing.T) {
	ty := trace.New()
	groups := CorrelateRecovery(ty, []*Report{{Type: CrashRegular}})
	if len(groups) != 0 {
		t.Fatal("crash-regular reports must not be grouped")
	}
}

func TestNormalizeResIdempotent(t *testing.T) {
	for _, s := range []string{
		"heap:am#1:Task2.commit", "cv:x#9:name/3", "gfs:/a/b-17", "zk:/x/y",
	} {
		once := normalizeRes(s)
		if twice := normalizeRes(once); twice != once {
			t.Errorf("normalizeRes not idempotent on %q: %q -> %q", s, once, twice)
		}
	}
}
