package detect

import (
	"testing"

	"fcatch/internal/trace"
)

// correlateTrace builds two recovery activations on one trace: activation A
// ("splitWorker") runs two recovery reads, activation B ("queueAdopter")
// runs one. Returned op IDs index the three reads in trace order.
func correlateTrace() (ty *trace.Trace, reads [3]trace.OpID) {
	ty = trace.New()
	actA := ty.Append(trace.Record{Kind: trace.KThreadStart, PID: ty.Intern("m#1"), Thread: 1,
		Aux: ty.Intern("splitWorker"), Causor: trace.NoOp})
	reads[0] = ty.Append(trace.Record{Kind: trace.KStRead, PID: ty.Intern("m#1"), Thread: 1, Frame: actA,
		Res: ty.Intern("zk:/lock"), Site: ty.Intern("split.go:10"), TS: 20})
	reads[1] = ty.Append(trace.Record{Kind: trace.KStRead, PID: ty.Intern("m#1"), Thread: 1, Frame: actA,
		Res: ty.Intern("gfs:/wal"), Site: ty.Intern("split.go:22"), TS: 25})
	actB := ty.Append(trace.Record{Kind: trace.KThreadStart, PID: ty.Intern("m#1"), Thread: 2,
		Aux: ty.Intern("queueAdopter"), Causor: trace.NoOp})
	reads[2] = ty.Append(trace.Record{Kind: trace.KStRead, PID: ty.Intern("m#1"), Thread: 2, Frame: actB,
		Res: ty.Intern("zk:/queue"), Site: ty.Intern("adopt.go:7"), TS: 30})
	return ty, reads
}

func recReport(op trace.OpID, site string, wTS int64, windowID int) *Report {
	return &Report{
		Type:     CrashRecovery,
		W:        OpSummary{Site: "w.go:1", TS: wTS},
		R:        OpSummary{Op: op, Site: site},
		ResClass: "st:" + site,
		WindowID: windowID,
	}
}

// TestCorrelateGroupsByActivationFrame: reads under one activation frame
// co-group; reads under another frame form their own group, in trace order.
func TestCorrelateGroupsByActivationFrame(t *testing.T) {
	ty, reads := correlateTrace()
	rs := []*Report{
		recReport(reads[0], "split.go:10", 5, 0),
		recReport(reads[1], "split.go:22", 9, 0),
		recReport(reads[2], "adopt.go:7", 7, 0),
	}
	groups := CorrelateRecovery(ty, rs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if g := groups[0]; g.Frame != "splitWorker" || len(g.Reports) != 2 {
		t.Fatalf("group 0 = %q with %d reports, want splitWorker with 2", g.Frame, len(g.Reports))
	}
	if g := groups[1]; g.Frame != "queueAdopter" || len(g.Reports) != 1 {
		t.Fatalf("group 1 = %q with %d reports, want queueAdopter with 1", g.Frame, len(g.Reports))
	}
	// The group window spans the earliest and latest W among its members.
	if groups[0].WindowStart != 5 || groups[0].WindowEnd != 9 {
		t.Fatalf("group 0 window = [%d, %d], want [5, 9]", groups[0].WindowStart, groups[0].WindowEnd)
	}
}

// TestCorrelateStableUnderInputOrder: feeding the same reports in any order
// yields the same groups (same frames, same in-group report order).
func TestCorrelateStableUnderInputOrder(t *testing.T) {
	ty, reads := correlateTrace()
	base := []*Report{
		recReport(reads[0], "split.go:10", 5, 0),
		recReport(reads[1], "split.go:22", 9, 0),
		recReport(reads[2], "adopt.go:7", 7, 0),
	}
	want := CorrelateRecovery(ty, base)
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	for _, p := range perms {
		shuffled := []*Report{base[p[0]], base[p[1]], base[p[2]]}
		got := CorrelateRecovery(ty, shuffled)
		if len(got) != len(want) {
			t.Fatalf("perm %v: %d groups, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i].Frame != want[i].Frame || len(got[i].Reports) != len(want[i].Reports) {
				t.Fatalf("perm %v: group %d = %q/%d, want %q/%d",
					p, i, got[i].Frame, len(got[i].Reports), want[i].Frame, len(want[i].Reports))
			}
			for j := range got[i].Reports {
				if got[i].Reports[j].R.Op != want[i].Reports[j].R.Op {
					t.Fatalf("perm %v: group %d report %d out of order", p, i, j)
				}
			}
		}
	}
}

// TestCorrelateNeverMergesAcrossWindows: two reports reading under the SAME
// activation frame but anchored in different hazard windows must not share a
// group — an activation frame is one window's recovery, and the grouping key
// carries the window.
func TestCorrelateNeverMergesAcrossWindows(t *testing.T) {
	ty, reads := correlateTrace()
	rs := []*Report{
		recReport(reads[0], "split.go:10", 5, 0),
		recReport(reads[1], "split.go:22", 9, 1),
	}
	groups := CorrelateRecovery(ty, rs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (same frame, different windows)", len(groups))
	}
	if groups[0].WindowID != 0 || groups[1].WindowID != 1 {
		t.Fatalf("group window IDs = %d, %d, want 0, 1", groups[0].WindowID, groups[1].WindowID)
	}
	// Window 0 keeps the historical frame label; both groups resolve the
	// same activation.
	if groups[0].Frame != "splitWorker" {
		t.Fatalf("window-0 frame = %q, want splitWorker", groups[0].Frame)
	}
}

// TestCorrelateWindowBoundaryOrdering: when a window-suffixed key ties with
// the unsuffixed key on activation order, the key string breaks the tie, so
// group order is deterministic and window 0 sorts first.
func TestCorrelateWindowBoundaryOrdering(t *testing.T) {
	ty, reads := correlateTrace()
	rs := []*Report{
		recReport(reads[0], "split.go:10", 5, 1),
		recReport(reads[1], "split.go:22", 9, 0),
	}
	g1 := CorrelateRecovery(ty, rs)
	g2 := CorrelateRecovery(ty, []*Report{rs[1], rs[0]})
	if len(g1) != 2 || len(g2) != 2 {
		t.Fatalf("groups = %d/%d, want 2/2", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i].WindowID != g2[i].WindowID {
			t.Fatalf("group order depends on input order: %d vs %d at %d",
				g1[i].WindowID, g2[i].WindowID, i)
		}
	}
	if g1[0].WindowID != 0 {
		t.Fatalf("first group window = %d, want 0 (unsuffixed key sorts first)", g1[0].WindowID)
	}
}

// TestCorrelateFallbackKeySingleton: a report whose read op cannot be
// resolved in the trace falls back to a site-keyed singleton group.
func TestCorrelateFallbackKeySingleton(t *testing.T) {
	ty, reads := correlateTrace()
	rs := []*Report{
		recReport(reads[0], "split.go:10", 5, 0),
		recReport(trace.OpID(9999), "ghost.go:1", 7, 0),
	}
	groups := CorrelateRecovery(ty, rs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	found := false
	for _, g := range groups {
		if len(g.Reports) == 1 && g.Reports[0].R.Site == "ghost.go:1" {
			found = true
		}
	}
	if !found {
		t.Fatal("unresolvable report did not land in a singleton group")
	}
}
