package detect

import (
	"strings"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// RecoveryResult is the crash-recovery detector's output on one
// checkpoint-paired run pair.
type RecoveryResult struct {
	Reports []*Report
	Pruned  PruneCounters
	// RecoveryPIDs are the processes identified as recovery nodes.
	RecoveryPIDs []string
}

// isConsumer reports whether a record consumes shared-resource content for
// conflict purposes: read-like ops, plus creates (which consume the prior
// existence state — the HB2 Create-vs-Create pattern). createSym is the
// owning trace's Sym for "create".
func isConsumer(r *trace.Record, createSym trace.Sym) bool {
	if r.Kind.IsReadLike() {
		return true
	}
	return r.Kind == trace.KStCreate || (r.Kind == trace.KKVUpdate && r.Aux == createSym && r.Aux != trace.NoSym)
}

// Per-Sym resource classification, computed once per trace so the pair loops
// never touch strings.
const (
	resSkip       uint8 = 1 << iota // cv: instances and the crashed node's heap
	resPersistent                   // gfs:/lfs:/zk: — survives a process crash
	resHeap                         // heap: of any process
)

// classifyRes walks a trace's symbol table once and returns the dense per-Sym
// classification slice. Every victim's heap dies with its node, so
// multi-crash scenarios skip all of them.
func classifyRes(t *trace.Trace, victims []string) []uint8 {
	out := make([]uint8, t.NumSyms())
	heaps := make([]string, len(victims))
	for i, pid := range victims {
		heaps[i] = "heap:" + pid + ":"
	}
	for y := 1; y < t.NumSyms(); y++ {
		s := t.Str(trace.Sym(y))
		switch {
		case strings.HasPrefix(s, "cv:"):
			out[y] = resSkip
		case strings.HasPrefix(s, "heap:"):
			out[y] = resHeap
			for _, h := range heaps {
				if strings.HasPrefix(s, h) {
					out[y] |= resSkip // heap content dies with the node
					break
				}
			}
		case strings.HasPrefix(s, "gfs:") || strings.HasPrefix(s, "lfs:") || strings.HasPrefix(s, "zk:"):
			out[y] = resPersistent
		}
	}
	return out
}

// isImpactSink matches the failure-prone impact sinks of Section 4.3.3:
// locally an exception throw, a fatal log, an event creation, or a service
// start; globally an RPC invocation/return or a message send (RPC returns
// are reply message sends here).
func isImpactSink(k trace.Kind) bool {
	switch k {
	case trace.KThrow, trace.KLogFatal, trace.KEventEnq, trace.KServiceStart,
		trace.KRPCCall, trace.KMsgSend:
		return true
	}
	return false
}

// DetectRecovery predicts crash-recovery TOF bugs from a checkpoint-paired
// fault-free trace and correct faulty trace (Section 4.3). Both runs share
// an identical prefix up to the faulty run's crash step, so resource IDs
// coincide across them and no ID translation is needed.
func DetectRecovery(gf, gy *hb.Graph, workload string) *RecoveryResult {
	return DetectRecoveryOpts(gf, gy, workload, Options{})
}

// DetectRecoveryOpts is DetectRecovery with the pruning analyses toggleable.
func DetectRecoveryOpts(gf, gy *hb.Graph, workload string, opts Options) *RecoveryResult {
	res := &RecoveryResult{}
	tf, ty := gf.Ix.T, gy.Ix.T
	crashed := ty.CrashedPID
	if crashed == "" {
		return res
	}
	crashedRole := roleOf(crashed)
	ixF, ixY := gf.Ix, gy.Ix

	// The scenario tells us every injected victim; the trace's first
	// recorded crash remains the recovery anchor and the fallback when no
	// scenario information is supplied.
	victims := opts.CrashedPIDs
	if len(victims) == 0 {
		victims = []string{crashed}
	}

	// Symbols are trace-local: classify each trace's resources once, and
	// translate faulty-run Syms to fault-free Syms where the pair loops
	// compare across traces.
	classY := classifyRes(ty, victims)
	classF := classifyRes(tf, victims)
	mYF := ty.SymMapTo(tf)
	createY, _ := ty.Lookup("create")

	// --- Step 1: recovery operations in the faulty run (Section 4.3.1).
	// Recovery nodes are processes that exist in the faulty trace but not in
	// the fault-free trace; registered recovery handlers add more roots.
	recPIDs := make([]bool, ty.NumSyms())
	for _, pid := range ty.PIDs {
		if !tf.HasPID(pid) && pid != "system" {
			if y, ok := ty.Lookup(pid); ok {
				recPIDs[y] = true
			}
			res.RecoveryPIDs = append(res.RecoveryPIDs, pid)
		}
	}
	var seeds []trace.OpID
	for i := range ty.Records {
		r := &ty.Records[i]
		if r.Kind == trace.KThreadStart && recPIDs[r.PID] {
			seeds = append(seeds, r.ID)
		}
		if r.Kind == trace.KHandlerBegin && r.HasFlag(trace.FlagRecoveryRoot) {
			seeds = append(seeds, r.ID)
		}
	}
	recOps := gy.ForwardClosureDense(seeds)

	var recReads []*trace.Record // consumers among recovery ops
	// earliestRecWrite is the first successful recovery write per resource —
	// all reset (data-dependence) pruning needs, replacing the per-pair scan
	// over every recovery write.
	earliestRecWrite := make([]trace.OpID, ty.NumSyms())
	for i := range ty.Records {
		r := &ty.Records[i]
		if !recOps[r.ID] {
			continue
		}
		if r.Res == trace.NoSym || classY[r.Res]&resSkip != 0 {
			continue
		}
		if isConsumer(r, createY) {
			recReads = append(recReads, r)
		}
		if r.Kind.IsWriteLike() && !r.HasFlag(trace.FlagFailed) {
			if cur := earliestRecWrite[r.Res]; cur == trace.NoOp || r.ID < cur {
				earliestRecWrite[r.Res] = r.ID
			}
		}
	}
	// recReads is in ID order already: the loop above walks the trace.

	// --- Step 2: crash operations, from the fault-free trace — what the
	// crashing node did and *could have done* had it lived longer. Each
	// write's site/PID are translated to faulty-run Syms once here, so the
	// pair loop compares integers.
	type crashWrite struct {
		r             *trace.Record
		siteY, pidY   trace.Sym // w.Site/w.PID in ty's table
		siteOK, pidOK bool      // false: the string never appears in ty
	}
	crashWrites := make([][]crashWrite, tf.NumSyms()) // indexed by tf res Sym
	addCrashWrite := func(r *trace.Record) {
		if r.Res == trace.NoSym || classF[r.Res]&resSkip != 0 || r.HasFlag(trace.FlagFailed) {
			return
		}
		w := crashWrite{r: r}
		w.siteY, w.siteOK = ty.Lookup(tf.Str(r.Site))
		w.pidY, w.pidOK = ty.Lookup(tf.Str(r.PID))
		crashWrites[r.Res] = append(crashWrites[r.Res], w)
	}
	crashedSymF, crashedInF := tf.Lookup(crashed)
	remote := gf.ForwardClosureDense(gf.EscapingSeeds(crashed))
	for i := range tf.Records {
		r := &tf.Records[i]
		if !r.Kind.IsWriteLike() {
			continue
		}
		cls := uint8(0)
		if r.Res != trace.NoSym {
			cls = classF[r.Res]
		}
		if crashedInF && r.PID == crashedSymF && cls&resPersistent != 0 {
			addCrashWrite(r)
			continue
		}
		if remote[r.ID] && cls&(resPersistent|resHeap) != 0 {
			addCrashWrite(r)
		}
	}

	// --- Step 3: conflicting pairs by resource ID.
	type pair struct {
		w *crashWrite
		r *trace.Record
	}
	var pairs []pair
	for _, r := range recReads {
		fres := mYF[r.Res]
		if fres == trace.NoSym {
			continue // resource never appears in the fault-free run
		}
		ws := crashWrites[fres]
		for i := range ws {
			w := &ws[i]
			if w.siteOK && w.pidOK && w.siteY == r.Site && w.pidY == r.PID {
				continue // same static op from the same process: no conflict
			}
			pairs = append(pairs, pair{w: w, r: r})
		}
	}

	// --- Step 4a: control-dependence sanity-check pruning (Figure 8).
	// If recovery read R2 control-depends on recovery read R1 and both touch
	// the same resource, R1 is the sanity check protecting R2.
	inCandidates := map[trace.OpID]bool{}
	byRes := map[trace.Sym][]*trace.Record{}
	for _, p := range pairs {
		if !inCandidates[p.r.ID] {
			inCandidates[p.r.ID] = true
			byRes[p.r.Res] = append(byRes[p.r.Res], p.r)
		}
	}
	sanityChecked := map[trace.OpID]bool{}
	for _, rs := range byRes {
		for _, r2 := range rs {
			for _, r1 := range rs {
				if r1.ID == r2.ID {
					continue
				}
				if containsOp(r2.Ctl, r1.ID) {
					sanityChecked[r2.ID] = true
				}
			}
		}
	}

	// --- Step 4b: data-dependence (reset) pruning. A recovery write to the
	// same resource before R means recovery replaced the left-over content.
	resetProtected := func(r *trace.Record) bool {
		w := earliestRecWrite[r.Res]
		return w != trace.NoOp && w < r.ID
	}

	// --- Step 4c: impact estimation. R must reach a failure-prone sink
	// through data or control dependence. One pass over the faulty trace
	// inverts the sinks' Taint/Ctl sets into "op reaches a later sink", so
	// each read's check is an O(1) probe instead of an O(|trace|) scan.
	// OpIDs are dense, so the set is a flat slice.
	impacted := make([]bool, len(ty.Records)+1)
	mark := func(dep, sink trace.OpID) {
		if dep >= 1 && int(dep) < len(impacted) && dep < sink {
			impacted[dep] = true
		}
	}
	for i := range ty.Records {
		s := &ty.Records[i]
		if !isImpactSink(s.Kind) {
			continue
		}
		for _, dep := range s.Taint {
			mark(dep, s.ID)
		}
		for _, dep := range s.Ctl {
			mark(dep, s.ID)
		}
	}

	var reports []*Report
	for _, p := range pairs {
		if sanityChecked[p.r.ID] || resetProtected(p.r) {
			res.Pruned.Dependence++
			if !opts.DisableDependencePruning {
				continue
			}
		}
		if !impacted[p.r.ID] {
			res.Pruned.Impact++
			if !opts.DisableImpactPruning {
				continue
			}
		}

		// Trigger timing (Section 5): if W already executed before the crash
		// in the faulty run, inject the crash right before it; if it only
		// appears in the fault-free continuation, inject right after it.
		occF := occurrence(ixF, p.w.r)
		var faultySite []trace.OpID
		if p.w.siteOK {
			faultySite = ixY.SiteIDs(p.w.siteY)
		}
		inFaulty := len(faultySite) >= occF
		if inFaulty {
			// Confirm the occurrence in the faulty run predates the crash
			// (it must, by prefix equality, but stay defensive).
			id := faultySite[occF-1]
			if rec := ty.At(id); rec == nil || rec.TS > ty.CrashStep {
				inFaulty = false
			}
		}

		resStr := ty.Str(p.r.Res)
		reports = append(reports, &Report{
			Type:            CrashRecovery,
			OpsDesc:         opsDesc(tf, p.w.r, ty, p.r),
			Resource:        resStr,
			ResClass:        normalizeRes(resStr),
			W:               summarize(tf, p.w.r, occF),
			R:               summarize(ty, p.r, occurrence(ixY, p.r)),
			WInFaultyRun:    inFaulty,
			CrashTargetPID:  crashed,
			CrashTargetRole: crashedRole,
			Workload:        workload,
		})
	}
	res.Reports = Dedup(reports)
	return res
}

func containsOp(set []trace.OpID, id trace.OpID) bool {
	for _, x := range set {
		if x == id {
			return true
		}
	}
	return false
}

// opsDesc renders the Table 2 "Operations" column for a pair; each record's
// Syms resolve through its own trace.
func opsDesc(tw *trace.Trace, w *trace.Record, tr *trace.Trace, r *trace.Record) string {
	return opName(tw, w) + " vs " + opName(tr, r)
}

func opName(t *trace.Trace, r *trace.Record) string {
	switch r.Kind {
	case trace.KHeapWrite:
		return "Write"
	case trace.KHeapRead, trace.KStRead:
		return "Read"
	case trace.KLoopRead:
		return "Loop"
	case trace.KStCreate:
		return "Create"
	case trace.KStDelete:
		return "Delete"
	case trace.KStWrite:
		return "Write"
	case trace.KStRename:
		return "Rename"
	case trace.KStExists:
		return "Exists"
	case trace.KStList:
		return "List"
	case trace.KSignal:
		return "Signal"
	case trace.KWait:
		return "Wait"
	case trace.KKVUpdate:
		switch t.Str(r.Aux) {
		case "create":
			return "Create"
		case "delete":
			return "Delete"
		default:
			return "Write"
		}
	}
	return r.Kind.String()
}
