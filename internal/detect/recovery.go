package detect

import (
	"strings"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// RecoveryResult is the crash-recovery detector's output on one
// checkpoint-paired run pair.
type RecoveryResult struct {
	Reports []*Report
	Pruned  PruneCounters
	// RecoveryPIDs are the processes identified as recovery nodes.
	RecoveryPIDs []string
}

// isConsumer reports whether a record consumes shared-resource content for
// conflict purposes: read-like ops, plus creates (which consume the prior
// existence state — the HB2 Create-vs-Create pattern).
func isConsumer(r *trace.Record) bool {
	if r.Kind.IsReadLike() {
		return true
	}
	return r.Kind == trace.KStCreate || (r.Kind == trace.KKVUpdate && r.Aux == "create")
}

// isPersistentRes reports whether the resource survives a process crash.
func isPersistentRes(res string) bool {
	return strings.HasPrefix(res, "gfs:") || strings.HasPrefix(res, "lfs:") || strings.HasPrefix(res, "zk:")
}

// isImpactSink matches the failure-prone impact sinks of Section 4.3.3:
// locally an exception throw, a fatal log, an event creation, or a service
// start; globally an RPC invocation/return or a message send (RPC returns
// are reply message sends here).
func isImpactSink(k trace.Kind) bool {
	switch k {
	case trace.KThrow, trace.KLogFatal, trace.KEventEnq, trace.KServiceStart,
		trace.KRPCCall, trace.KMsgSend:
		return true
	}
	return false
}

// DetectRecovery predicts crash-recovery TOF bugs from a checkpoint-paired
// fault-free trace and correct faulty trace (Section 4.3). Both runs share
// an identical prefix up to the faulty run's crash step, so resource IDs
// coincide across them and no ID translation is needed.
func DetectRecovery(gf, gy *hb.Graph, workload string) *RecoveryResult {
	return DetectRecoveryOpts(gf, gy, workload, Options{})
}

// DetectRecoveryOpts is DetectRecovery with the pruning analyses toggleable.
func DetectRecoveryOpts(gf, gy *hb.Graph, workload string, opts Options) *RecoveryResult {
	res := &RecoveryResult{}
	tf, ty := gf.Ix.T, gy.Ix.T
	crashed := ty.CrashedPID
	if crashed == "" {
		return res
	}
	crashedRole := roleOf(crashed)
	ixF, ixY := gf.Ix, gy.Ix

	// --- Step 1: recovery operations in the faulty run (Section 4.3.1).
	// Recovery nodes are processes that exist in the faulty trace but not in
	// the fault-free trace; registered recovery handlers add more roots.
	recPIDs := map[string]bool{}
	for _, pid := range ty.PIDs {
		if !tf.HasPID(pid) && pid != "system" {
			recPIDs[pid] = true
			res.RecoveryPIDs = append(res.RecoveryPIDs, pid)
		}
	}
	var seeds []trace.OpID
	for i := range ty.Records {
		r := &ty.Records[i]
		if r.Kind == trace.KThreadStart && recPIDs[r.PID] {
			seeds = append(seeds, r.ID)
		}
		if r.Kind == trace.KHandlerBegin && r.HasFlag(trace.FlagRecoveryRoot) {
			seeds = append(seeds, r.ID)
		}
	}
	recOps := gy.ForwardClosureDense(seeds)

	var recReads []*trace.Record // consumers among recovery ops
	// earliestRecWrite is the first successful recovery write per resource —
	// all reset (data-dependence) pruning needs, replacing the per-pair scan
	// over every recovery write.
	earliestRecWrite := map[string]trace.OpID{}
	for i := range ty.Records {
		r := &ty.Records[i]
		if !recOps[r.ID] {
			continue
		}
		if r.Res == "" || strings.HasPrefix(r.Res, "cv:") {
			continue
		}
		// Heap content of the crashed process is wiped; ignore it.
		if strings.HasPrefix(r.Res, "heap:"+crashed+":") {
			continue
		}
		if isConsumer(r) {
			recReads = append(recReads, r)
		}
		if r.Kind.IsWriteLike() && !r.HasFlag(trace.FlagFailed) {
			if cur, ok := earliestRecWrite[r.Res]; !ok || r.ID < cur {
				earliestRecWrite[r.Res] = r.ID
			}
		}
	}
	// recReads is in ID order already: the loop above walks the trace.

	// --- Step 2: crash operations, from the fault-free trace — what the
	// crashing node did and *could have done* had it lived longer.
	crashWrites := map[string][]*trace.Record{} // resource -> writes
	addCrashWrite := func(r *trace.Record) {
		if r.Res == "" || strings.HasPrefix(r.Res, "cv:") || r.HasFlag(trace.FlagFailed) {
			return
		}
		if strings.HasPrefix(r.Res, "heap:"+crashed+":") {
			return // dies with the node
		}
		crashWrites[r.Res] = append(crashWrites[r.Res], r)
	}
	remote := gf.ForwardClosureDense(gf.EscapingSeeds(crashed))
	for i := range tf.Records {
		r := &tf.Records[i]
		if !r.Kind.IsWriteLike() {
			continue
		}
		if r.PID == crashed && isPersistentRes(r.Res) {
			addCrashWrite(r)
			continue
		}
		if remote[r.ID] && (isPersistentRes(r.Res) || strings.HasPrefix(r.Res, "heap:")) {
			addCrashWrite(r)
		}
	}

	// --- Step 3: conflicting pairs by resource ID.
	type pair struct {
		w, r *trace.Record
	}
	var pairs []pair
	for _, r := range recReads {
		for _, w := range crashWrites[r.Res] {
			if w.Site == r.Site && w.PID == r.PID {
				continue // same static op from the same process: no conflict
			}
			pairs = append(pairs, pair{w: w, r: r})
		}
	}

	// --- Step 4a: control-dependence sanity-check pruning (Figure 8).
	// If recovery read R2 control-depends on recovery read R1 and both touch
	// the same resource, R1 is the sanity check protecting R2.
	inCandidates := map[trace.OpID]bool{}
	byRes := map[string][]*trace.Record{}
	for _, p := range pairs {
		if !inCandidates[p.r.ID] {
			inCandidates[p.r.ID] = true
			byRes[p.r.Res] = append(byRes[p.r.Res], p.r)
		}
	}
	sanityChecked := map[trace.OpID]bool{}
	for _, rs := range byRes {
		for _, r2 := range rs {
			for _, r1 := range rs {
				if r1.ID == r2.ID {
					continue
				}
				if containsOp(r2.Ctl, r1.ID) {
					sanityChecked[r2.ID] = true
				}
			}
		}
	}

	// --- Step 4b: data-dependence (reset) pruning. A recovery write to the
	// same resource before R means recovery replaced the left-over content.
	resetProtected := func(r *trace.Record) bool {
		w, ok := earliestRecWrite[r.Res]
		return ok && w < r.ID
	}

	// --- Step 4c: impact estimation. R must reach a failure-prone sink
	// through data or control dependence. One pass over the faulty trace
	// inverts the sinks' Taint/Ctl sets into "op reaches a later sink", so
	// each read's check is an O(1) probe instead of an O(|trace|) scan.
	// OpIDs are dense, so the set is a flat slice.
	impacted := make([]bool, len(ty.Records)+1)
	mark := func(dep, sink trace.OpID) {
		if dep >= 1 && int(dep) < len(impacted) && dep < sink {
			impacted[dep] = true
		}
	}
	for i := range ty.Records {
		s := &ty.Records[i]
		if !isImpactSink(s.Kind) {
			continue
		}
		for _, dep := range s.Taint {
			mark(dep, s.ID)
		}
		for _, dep := range s.Ctl {
			mark(dep, s.ID)
		}
	}

	var reports []*Report
	for _, p := range pairs {
		if sanityChecked[p.r.ID] || resetProtected(p.r) {
			res.Pruned.Dependence++
			if !opts.DisableDependencePruning {
				continue
			}
		}
		if !impacted[p.r.ID] {
			res.Pruned.Impact++
			if !opts.DisableImpactPruning {
				continue
			}
		}

		// Trigger timing (Section 5): if W already executed before the crash
		// in the faulty run, inject the crash right before it; if it only
		// appears in the fault-free continuation, inject right after it.
		occF := occurrence(ixF, p.w)
		inFaulty := len(ixY.BySite[p.w.Site]) >= occF
		if inFaulty {
			// Confirm the occurrence in the faulty run predates the crash
			// (it must, by prefix equality, but stay defensive).
			id := ixY.BySite[p.w.Site][occF-1]
			if rec := ty.At(id); rec == nil || rec.TS > ty.CrashStep {
				inFaulty = false
			}
		}

		reports = append(reports, &Report{
			Type:            CrashRecovery,
			OpsDesc:         opsDesc(p.w, p.r),
			Resource:        p.r.Res,
			ResClass:        normalizeRes(p.r.Res),
			W:               summarize(p.w, occF),
			R:               summarize(p.r, occurrence(ixY, p.r)),
			WInFaultyRun:    inFaulty,
			CrashTargetPID:  crashed,
			CrashTargetRole: crashedRole,
			Workload:        workload,
		})
	}
	res.Reports = Dedup(reports)
	return res
}

func containsOp(set []trace.OpID, id trace.OpID) bool {
	for _, x := range set {
		if x == id {
			return true
		}
	}
	return false
}

// opsDesc renders the Table 2 "Operations" column for a pair.
func opsDesc(w, r *trace.Record) string {
	return opName(w) + " vs " + opName(r)
}

func opName(r *trace.Record) string {
	switch r.Kind {
	case trace.KHeapWrite:
		return "Write"
	case trace.KHeapRead, trace.KStRead:
		return "Read"
	case trace.KLoopRead:
		return "Loop"
	case trace.KStCreate:
		return "Create"
	case trace.KStDelete:
		return "Delete"
	case trace.KStWrite:
		return "Write"
	case trace.KStRename:
		return "Rename"
	case trace.KStExists:
		return "Exists"
	case trace.KStList:
		return "List"
	case trace.KSignal:
		return "Signal"
	case trace.KWait:
		return "Wait"
	case trace.KKVUpdate:
		switch r.Aux {
		case "create":
			return "Create"
		case "delete":
			return "Delete"
		default:
			return "Write"
		}
	}
	return r.Kind.String()
}
