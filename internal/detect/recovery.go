package detect

import (
	"strings"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// RecoveryResult is the crash-recovery detector's output on one
// checkpoint-paired run pair.
type RecoveryResult struct {
	Reports []*Report
	Pruned  PruneCounters
	// RecoveryPIDs are the processes identified as recovery nodes.
	RecoveryPIDs []string
	// Windows are the hazard windows the pass analyzed, in firing order
	// (including drop-induced windows, which open no recovery of their own).
	Windows []Window
	// Decisions is the per-candidate verdict trail, one entry per raw
	// conflicting pair (pre-dedup); nil unless Options.Explain.
	Decisions []Decision
}

// isConsumer reports whether a record consumes shared-resource content for
// conflict purposes: read-like ops, plus creates (which consume the prior
// existence state — the HB2 Create-vs-Create pattern). createSym is the
// owning trace's Sym for "create".
func isConsumer(r *trace.Record, createSym trace.Sym) bool {
	if r.Kind.IsReadLike() {
		return true
	}
	return r.Kind == trace.KStCreate || (r.Kind == trace.KKVUpdate && r.Aux == createSym && r.Aux != trace.NoSym)
}

// Per-Sym resource classification, computed once per trace so the pair loops
// never touch strings.
const (
	resSkip       uint8 = 1 << iota // cv: instances and the crashed node's heap
	resPersistent                   // gfs:/lfs:/zk: — survives a process crash
	resHeap                         // heap: of any process
)

// classifyRes walks a trace's symbol table once and returns the dense per-Sym
// classification slice. A victim's heap dies with its node, so the victim
// list is "everyone dead by the window under analysis" — window k's
// classification skips the heaps of windows 0..k's victims, not of victims
// whose crash is still in the future.
func classifyRes(t *trace.Trace, victims []string) []uint8 {
	out := make([]uint8, t.NumSyms())
	heaps := make([]string, len(victims))
	for i, pid := range victims {
		heaps[i] = "heap:" + pid + ":"
	}
	for y := 1; y < t.NumSyms(); y++ {
		s := t.Str(trace.Sym(y))
		switch {
		case strings.HasPrefix(s, "cv:"):
			out[y] = resSkip
		case strings.HasPrefix(s, "heap:"):
			out[y] = resHeap
			for _, h := range heaps {
				if strings.HasPrefix(s, h) {
					out[y] |= resSkip // heap content dies with the node
					break
				}
			}
		case strings.HasPrefix(s, "gfs:") || strings.HasPrefix(s, "lfs:") || strings.HasPrefix(s, "zk:"):
			out[y] = resPersistent
		}
	}
	return out
}

// isImpactSink matches the failure-prone impact sinks of Section 4.3.3:
// locally an exception throw, a fatal log, an event creation, or a service
// start; globally an RPC invocation/return or a message send (RPC returns
// are reply message sends here).
func isImpactSink(k trace.Kind) bool {
	switch k {
	case trace.KThrow, trace.KLogFatal, trace.KEventEnq, trace.KServiceStart,
		trace.KRPCCall, trace.KMsgSend:
		return true
	}
	return false
}

// DetectRecovery predicts crash-recovery TOF bugs from a checkpoint-paired
// fault-free trace and correct faulty trace (Section 4.3). Both runs share
// an identical prefix up to the faulty run's crash step, so resource IDs
// coincide across them and no ID translation is needed.
func DetectRecovery(gf, gy *hb.Graph, workload string) *RecoveryResult {
	return DetectRecoveryOpts(gf, gy, workload, Options{})
}

// crashWrite is one candidate W: a write the fault orphaned. Window 0's
// writes come from the fault-free trace (what the crashing node did and
// *could have done* had it lived longer); an incarnation window's writes come
// from the faulty trace itself (what its victim actually did before dying —
// the incarnation never existed in the fault-free run). Site/PID are
// pre-translated to faulty-run Syms so the pair loop compares integers.
type crashWrite struct {
	r             *trace.Record
	t             *trace.Trace // owning trace (tf or ty)
	siteY, pidY   trace.Sym    // w.Site/w.PID in ty's table
	siteOK, pidOK bool         // false: the string never appears in ty
	inFaulty      bool         // sourced from the faulty run itself
}

// DetectRecoveryOpts is DetectRecovery with the pruning analyses toggleable.
//
// The pass is organized around the observation's hazard windows: each
// crash-recovery window gets its own resource classification (a heap dies at
// its window's open step, not globally), its own recovery-node set, its own
// crash-write source and its own dependence-prune context. A single-fault
// observation lowers to exactly one window, on which the per-window pass is
// the old single-crash analysis unchanged.
func DetectRecoveryOpts(gf, gy *hb.Graph, workload string, opts Options) *RecoveryResult {
	res := &RecoveryResult{}
	tf, ty := gf.Ix.T, gy.Ix.T
	res.Windows = resolveWindows(ty, &opts)
	// Only crash windows open a recovery to analyze; drop-induced windows
	// still participate in report anchoring and compound pairing.
	var wins []*Window
	for i := range res.Windows {
		if res.Windows[i].Kind == WindowCrashRecovery && res.Windows[i].Victim != "" {
			wins = append(wins, &res.Windows[i])
		}
	}
	if len(wins) == 0 {
		return res
	}
	ixF, ixY := gf.Ix, gy.Ix
	mFY := tf.SymMapTo(ty)
	createY, _ := ty.Lookup("create")

	// --- Step 1: recovery nodes (Section 4.3.1) — processes that exist in
	// the faulty trace but not in the fault-free trace — attributed to the
	// latest window already open at their first traced op (window 0 when they
	// precede every window: a single-fault observation keeps its whole set).
	firstTS := make([]int64, ty.NumSyms())
	seenPID := make([]bool, ty.NumSyms())
	for i := range ty.Records {
		r := &ty.Records[i]
		if !seenPID[r.PID] {
			seenPID[r.PID] = true
			firstTS[r.PID] = r.TS
		}
	}
	winAt := func(step int64) int {
		w := 0
		for k := range wins {
			if wins[k].OpenStep <= step {
				w = k
			}
		}
		return w
	}
	recPIDs := make([]bool, ty.NumSyms())
	pidWin := make([]int, ty.NumSyms())
	for _, pid := range ty.PIDs {
		if !tf.HasPID(pid) && pid != "system" {
			if y, ok := ty.Lookup(pid); ok {
				recPIDs[y] = true
				pidWin[y] = winAt(firstTS[y])
			}
			res.RecoveryPIDs = append(res.RecoveryPIDs, pid)
		}
	}
	// Seeds per window: thread starts of that window's recovery processes,
	// plus registered recovery handlers attributed by their own step.
	seedsByWin := make([][]trace.OpID, len(wins))
	for i := range ty.Records {
		r := &ty.Records[i]
		if r.Kind == trace.KThreadStart && recPIDs[r.PID] {
			w := pidWin[r.PID]
			seedsByWin[w] = append(seedsByWin[w], r.ID)
		}
		if r.Kind == trace.KHandlerBegin && r.HasFlag(trace.FlagRecoveryRoot) {
			w := winAt(r.TS)
			seedsByWin[w] = append(seedsByWin[w], r.ID)
		}
	}

	// --- Impact estimation (Section 4.3.3), shared by every window: one pass
	// over the faulty trace inverts the sinks' Taint/Ctl sets into "op
	// reaches a later sink", so each read's check is an O(1) probe.
	impacted := make([]bool, len(ty.Records)+1)
	mark := func(dep, sink trace.OpID) {
		if dep >= 1 && int(dep) < len(impacted) && dep < sink {
			impacted[dep] = true
		}
	}
	for i := range ty.Records {
		s := &ty.Records[i]
		if !isImpactSink(s.Kind) {
			continue
		}
		for _, dep := range s.Taint {
			mark(dep, s.ID)
		}
		for _, dep := range s.Ctl {
			mark(dep, s.ID)
		}
	}

	var reports []*Report
	// vicsThrough accumulates the victims dead by each window's open step —
	// the window's heap-death set for classifyRes.
	var vicsThrough []string
	cells := ruleCells(opts.Metrics)
	for wi, win := range wins {
		endWin := opts.Metrics.Span("detect/recovery/window")
		vicsThrough = append(vicsThrough, win.Victim)
		classY := classifyRes(ty, vicsThrough)

		// Recovery operations of this window: forward closure of its seeds.
		recOps := gy.ForwardClosureDense(seedsByWin[wi])
		var recReads []*trace.Record // consumers among recovery ops, ID order
		// earliestRecWrite is the first successful recovery write per
		// resource — all reset (data-dependence) pruning needs.
		earliestRecWrite := make([]trace.OpID, ty.NumSyms())
		for i := range ty.Records {
			r := &ty.Records[i]
			if !recOps[r.ID] {
				continue
			}
			if r.Res == trace.NoSym || classY[r.Res]&resSkip != 0 {
				continue
			}
			if isConsumer(r, createY) {
				recReads = append(recReads, r)
			}
			if r.Kind.IsWriteLike() && !r.HasFlag(trace.FlagFailed) {
				if cur := earliestRecWrite[r.Res]; cur == trace.NoOp || r.ID < cur {
					earliestRecWrite[r.Res] = r.ID
				}
			}
		}

		// --- Step 2: this window's crash operations, keyed by faulty-run
		// resource Sym so the pair loop needs no per-read translation.
		crashWrites := make([][]crashWrite, ty.NumSyms())
		if tf.HasPID(win.Victim) {
			// The victim ran in the fault-free run: its writes there are what
			// it did and could have done had it lived longer.
			classF := classifyRes(tf, vicsThrough)
			addF := func(r *trace.Record) {
				if r.Res == trace.NoSym || classF[r.Res]&resSkip != 0 || r.HasFlag(trace.FlagFailed) {
					return
				}
				resY := mFY[r.Res]
				if resY == trace.NoSym {
					return // the resource never appears in the faulty run
				}
				w := crashWrite{r: r, t: tf}
				w.siteY, w.siteOK = ty.Lookup(tf.Str(r.Site))
				w.pidY, w.pidOK = ty.Lookup(tf.Str(r.PID))
				crashWrites[resY] = append(crashWrites[resY], w)
			}
			crashedSymF, crashedInF := tf.Lookup(win.Victim)
			remote := gf.ForwardClosureDense(gf.EscapingSeeds(win.Victim))
			for i := range tf.Records {
				r := &tf.Records[i]
				if !r.Kind.IsWriteLike() {
					continue
				}
				cls := uint8(0)
				if r.Res != trace.NoSym {
					cls = classF[r.Res]
				}
				if crashedInF && r.PID == crashedSymF && cls&resPersistent != 0 {
					addF(r)
					continue
				}
				if remote[r.ID] && cls&(resPersistent|resHeap) != 0 {
					addF(r)
				}
			}
		} else {
			// An incarnation victim (a restarted process killed by a later
			// fault) never existed in the fault-free run: the state its crash
			// orphaned is what it actually wrote in the faulty run before the
			// window opened.
			symY, inY := ty.Lookup(win.Victim)
			remoteY := gy.ForwardClosureDense(gy.EscapingSeeds(win.Victim))
			for i := range ty.Records {
				r := &ty.Records[i]
				if r.TS > win.OpenStep || !r.Kind.IsWriteLike() {
					continue
				}
				if r.Res == trace.NoSym || r.HasFlag(trace.FlagFailed) {
					continue
				}
				cls := classY[r.Res]
				if cls&resSkip != 0 {
					continue
				}
				own := inY && r.PID == symY && cls&resPersistent != 0
				rem := remoteY[r.ID] && cls&(resPersistent|resHeap) != 0
				if !own && !rem {
					continue
				}
				crashWrites[r.Res] = append(crashWrites[r.Res], crashWrite{
					r: r, t: ty, siteY: r.Site, pidY: r.PID,
					siteOK: true, pidOK: true, inFaulty: true,
				})
			}
		}

		// --- Step 3: conflicting pairs by resource ID.
		type pair struct {
			w *crashWrite
			r *trace.Record
		}
		var pairs []pair
		for _, r := range recReads {
			ws := crashWrites[r.Res]
			for i := range ws {
				w := &ws[i]
				if w.siteOK && w.pidOK && w.siteY == r.Site && w.pidY == r.PID {
					continue // same static op from the same process: no conflict
				}
				pairs = append(pairs, pair{w: w, r: r})
			}
		}

		// --- Step 4a: control-dependence sanity-check pruning (Figure 8).
		// If recovery read R2 control-depends on recovery read R1 and both
		// touch the same resource, R1 is the sanity check protecting R2.
		inCandidates := map[trace.OpID]bool{}
		byRes := map[trace.Sym][]*trace.Record{}
		for _, p := range pairs {
			if !inCandidates[p.r.ID] {
				inCandidates[p.r.ID] = true
				byRes[p.r.Res] = append(byRes[p.r.Res], p.r)
			}
		}
		sanityChecked := map[trace.OpID]bool{}
		for _, rs := range byRes {
			for _, r2 := range rs {
				for _, r1 := range rs {
					if r1.ID == r2.ID {
						continue
					}
					if containsOp(r2.Ctl, r1.ID) {
						sanityChecked[r2.ID] = true
					}
				}
			}
		}

		// --- Step 4b: data-dependence (reset) pruning. A recovery write to
		// the same resource before R means recovery replaced the content.
		resetProtected := func(r *trace.Record) bool {
			w := earliestRecWrite[r.Res]
			return w != trace.NoOp && w < r.ID
		}

		// decide records p's verdict (explain trail + per-rule counter) and
		// reports whether the rule killed it. Called exactly once per pair,
		// with the first rule that actually discarded it or RuleKept.
		decide := func(p pair, rule string) bool {
			if opts.Explain {
				res.Decisions = append(res.Decisions, Decision{
					Detector:  CrashRecovery.String(),
					Window:    win.ID,
					Candidate: recoveryCandidate(p.w.t, p.w.r, ty, p.r),
					Rule:      rule,
				})
			}
			cells[rule].Inc()
			return rule != RuleKept
		}
		for _, p := range pairs {
			if sanityChecked[p.r.ID] || resetProtected(p.r) {
				res.Pruned.Dependence++
				if !opts.DisableDependencePruning {
					rule := RuleReset
					if sanityChecked[p.r.ID] {
						rule = RuleSanityCheck
					}
					decide(p, rule)
					continue
				}
			}
			if !impacted[p.r.ID] {
				res.Pruned.Impact++
				if !opts.DisableImpactPruning {
					decide(p, RuleImpact)
					continue
				}
			}
			decide(p, RuleKept)

			// Trigger timing (Section 5): if W already executed before this
			// window opened in the faulty run, inject the fault right before
			// it; if it only appears in the fault-free continuation, inject
			// right after it.
			var wSum OpSummary
			inFaulty := p.w.inFaulty // ty-sourced writes executed pre-window by construction
			if inFaulty {
				wSum = summarize(ty, p.w.r, occurrence(ixY, p.w.r))
			} else {
				occF := occurrence(ixF, p.w.r)
				var faultySite []trace.OpID
				if p.w.siteOK {
					faultySite = ixY.SiteIDs(p.w.siteY)
				}
				inFaulty = len(faultySite) >= occF
				if inFaulty {
					// Confirm the occurrence in the faulty run predates the
					// window (it must, by prefix equality, but stay defensive).
					id := faultySite[occF-1]
					if rec := ty.At(id); rec == nil || rec.TS > win.OpenStep {
						inFaulty = false
					}
				}
				wSum = summarize(tf, p.w.r, occF)
			}

			resStr := ty.Str(p.r.Res)
			reports = append(reports, &Report{
				Type:            CrashRecovery,
				OpsDesc:         opsDesc(p.w.t, p.w.r, ty, p.r),
				Resource:        resStr,
				ResClass:        normalizeRes(resStr),
				W:               wSum,
				R:               summarize(ty, p.r, occurrence(ixY, p.r)),
				WInFaultyRun:    inFaulty,
				CrashTargetPID:  win.Victim,
				CrashTargetRole: roleOf(win.Victim),
				WindowID:        win.ID,
				FaultIndex:      win.FaultIndex,
				Workload:        workload,
			})
		}
		endWin()
	}
	res.Reports = Dedup(reports)
	return res
}

func containsOp(set []trace.OpID, id trace.OpID) bool {
	for _, x := range set {
		if x == id {
			return true
		}
	}
	return false
}

// opsDesc renders the Table 2 "Operations" column for a pair; each record's
// Syms resolve through its own trace.
func opsDesc(tw *trace.Trace, w *trace.Record, tr *trace.Trace, r *trace.Record) string {
	return opName(tw, w) + " vs " + opName(tr, r)
}

func opName(t *trace.Trace, r *trace.Record) string {
	switch r.Kind {
	case trace.KHeapWrite:
		return "Write"
	case trace.KHeapRead, trace.KStRead:
		return "Read"
	case trace.KLoopRead:
		return "Loop"
	case trace.KStCreate:
		return "Create"
	case trace.KStDelete:
		return "Delete"
	case trace.KStWrite:
		return "Write"
	case trace.KStRename:
		return "Rename"
	case trace.KStExists:
		return "Exists"
	case trace.KStList:
		return "List"
	case trace.KSignal:
		return "Signal"
	case trace.KWait:
		return "Wait"
	case trace.KKVUpdate:
		switch t.Str(r.Aux) {
		case "create":
			return "Create"
		case "delete":
			return "Delete"
		default:
			return "Write"
		}
	}
	return r.Kind.String()
}
