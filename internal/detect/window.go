package detect

import (
	"fmt"
	"strconv"
	"strings"

	"fcatch/internal/trace"
)

// The hazard-window model. A fault does not just name victims: it opens a
// window in time during which the system's recovery races against whatever
// the fault interrupted. Every detection pass derives the observation's
// windows once — from the scenario's actual fault firings — and the
// detectors, the cross-window pairing pass and the report grouping all
// reason per window. A classic single-crash observation lowers to exactly
// one window, and on that case the per-window analyses reduce to the old
// single-crash globals.

// FaultFiring mirrors sim.FaultFiring in the detect layer (detect stays
// independent of the simulator): one scenario event that actually fired,
// with its victim, step and anchor.
type FaultFiring struct {
	Index  int
	Action string
	Step   int64
	// Site/Occurrence/When are the firing's replayable anchor for
	// site-anchored events (empty/zero for step-anchored ones).
	Site       string
	Occurrence int
	When       string
	Victim     string
}

// WindowKind distinguishes how a hazard window was opened.
type WindowKind int

const (
	// WindowCrashRecovery: a node crash opened the window; it spans the
	// victim's recovery.
	WindowCrashRecovery WindowKind = iota
	// WindowDropInduced: a message drop opened the window; the sender's
	// peers race against the message that never arrives.
	WindowDropInduced
)

func (k WindowKind) String() string {
	if k == WindowDropInduced {
		return "drop-induced"
	}
	return "crash-recovery"
}

// Window is one hazard window of an observation, first-class: the interval
// a fault opened, who it hit, and who recovers inside it.
type Window struct {
	// ID is the window's 0-based position in the observation (firing order).
	ID int
	// FaultIndex is the index of the scenario event that opened the window.
	FaultIndex int
	Kind       WindowKind
	// Victim is the crashed process (crash-recovery) or the sender whose
	// message was dropped (drop-induced).
	Victim string
	// Incarnation is the victim's restarted replacement — the window's
	// recovery node. Empty when the victim never came back (pinned down,
	// drop-induced, or the run ended first).
	Incarnation string
	// RestartStep is the step the incarnation came up at (0 when the victim
	// never restarted). A rebuilt scenario event forces the same restart, so
	// replaying the window reproduces its recovery even when the workload's
	// default policy would leave the victim down.
	RestartStep int64
	// Action is the fault action that opened the window, in the scenario
	// vocabulary ("node-crash", "kernel-drop", "app-drop") — kept so a
	// window anchor can be lowered back to a scenario event.
	Action string
	// OpenStep is the logical-clock step at which the fault fired. OpenSite,
	// with OpenOcc and OpenWhen, is the replayable site anchor for
	// site-anchored events ("" otherwise).
	OpenStep int64
	OpenSite string
	OpenOcc  int
	OpenWhen string
	// CloseStep bounds the window: the step at which the window's own
	// recovery node died (recovery aborted — the rolling-crash shape), or
	// the end of the trace while recovery was still in flight.
	CloseStep int64
}

// Contains reports whether a step falls inside the window: strictly after
// the open, at or before the close. A fault that kills the window's own
// recovery node fires exactly at CloseStep, so the close edge is inclusive.
func (w *Window) Contains(step int64) bool {
	return step > w.OpenStep && step <= w.CloseStep
}

// Role is the victim's role, incarnation suffix stripped ("am#2" → "am") —
// the name scenario events target, so a rebuilt event aims at whatever
// incarnation is current when it fires.
func (w *Window) Role() string { return roleOf(w.Victim) }

// String renders a compact one-line summary ("w0[crash-recovery] am#1@142..390 rec=am#2").
func (w *Window) String() string {
	s := fmt.Sprintf("w%d[%s] %s@%d..%d", w.ID, w.Kind, w.Victim, w.OpenStep, w.CloseStep)
	if w.Incarnation != "" {
		s += " rec=" + w.Incarnation
	}
	return s
}

// DeriveWindows lowers the faulty run's fault firings to hazard windows, in
// firing order. Firings that hit nothing (empty victim) open no window. A
// one-firing scenario — the classic observation crash — lowers to exactly
// one window spanning from the crash to the end of the trace.
func DeriveWindows(ty *trace.Trace, firings []FaultFiring) []Window {
	if len(firings) == 0 {
		return nil
	}
	end := traceEnd(ty)
	crashAt, restarted := crashBookkeeping(ty)
	var out []Window
	for _, f := range firings {
		if f.Victim == "" {
			continue
		}
		w := Window{
			ID: len(out), FaultIndex: f.Index,
			Victim: f.Victim, Action: f.Action,
			OpenStep: f.Step, OpenSite: f.Site,
			OpenOcc: f.Occurrence, OpenWhen: f.When,
			CloseStep: end,
		}
		if f.Action == "kernel-drop" || f.Action == "app-drop" {
			w.Kind = WindowDropInduced
		} else {
			w.Kind = WindowCrashRecovery
			closeCrashWindow(&w, crashAt, restarted)
		}
		out = append(out, w)
	}
	return out
}

// closeCrashWindow resolves a crash window's recovery incarnation, restart
// step and close step from the trace's crash/restart bookkeeping.
func closeCrashWindow(w *Window, crashAt, restartAt map[string]int64) {
	inc := nextIncarnation(w.Victim)
	if inc == "" {
		return
	}
	ts, ok := restartAt[inc]
	if !ok {
		return
	}
	w.Incarnation, w.RestartStep = inc, ts
	if ts, ok := crashAt[inc]; ok {
		w.CloseStep = ts
	}
}

// crashBookkeeping scans the trace once for crash and restart records: the
// first crash step and the first restart step per PID.
func crashBookkeeping(ty *trace.Trace) (crashAt, restartAt map[string]int64) {
	crashAt = map[string]int64{}
	restartAt = map[string]int64{}
	for i := range ty.Records {
		r := &ty.Records[i]
		switch r.Kind {
		case trace.KCrash:
			pid := ty.Str(r.Aux)
			if _, ok := crashAt[pid]; !ok {
				crashAt[pid] = r.TS
			}
		case trace.KRestart:
			pid := ty.Str(r.Aux)
			if _, ok := restartAt[pid]; !ok {
				restartAt[pid] = r.TS
			}
		}
	}
	return crashAt, restartAt
}

// nextIncarnation names the victim's restarted replacement: "am#1" → "am#2".
// Empty when the PID carries no incarnation suffix.
func nextIncarnation(pid string) string {
	i := strings.LastIndexByte(pid, '#')
	if i < 0 {
		return ""
	}
	n, err := strconv.Atoi(pid[i+1:])
	if err != nil {
		return ""
	}
	return pid[:i+1] + strconv.Itoa(n+1)
}

// traceEnd is the last recorded step of the trace.
func traceEnd(t *trace.Trace) int64 {
	if n := len(t.Records); n > 0 {
		return t.Records[n-1].TS
	}
	return t.CrashStep
}

// ObservationWindows derives an observation's hazard windows through the
// same lowering ladder the detectors use internally — callers that need the
// windows once (core.Detect shares them across both detectors and the
// compound pairing pass) derive them here and pass them via Options.Windows.
func ObservationWindows(ty *trace.Trace, opts Options) []Window {
	return resolveWindows(ty, &opts)
}

// resolveWindows is the lowering ladder every detector entry point shares:
// explicit windows win, then windows derived from fault firings, then the
// legacy surface — the scenario's victim list, or the trace's first recorded
// crash. The legacy paths exist so direct detector calls (tests, saved
// traces) behave exactly as before the window model.
func resolveWindows(ty *trace.Trace, opts *Options) []Window {
	if len(opts.Windows) > 0 {
		return opts.Windows
	}
	if len(opts.Firings) > 0 {
		return DeriveWindows(ty, opts.Firings)
	}
	victims := opts.CrashedPIDs
	if len(victims) == 0 {
		if ty.CrashedPID == "" {
			return nil
		}
		victims = []string{ty.CrashedPID}
	}
	end := traceEnd(ty)
	var crashAt, restartAt map[string]int64
	if len(victims) > 1 {
		crashAt, restartAt = crashBookkeeping(ty)
	}
	var out []Window
	for _, pid := range victims {
		if pid == "" {
			continue
		}
		w := Window{
			ID: len(out), FaultIndex: len(out),
			Kind: WindowCrashRecovery, Victim: pid,
			Action:   "node-crash", // the legacy surface only carries crashes
			OpenStep: ty.CrashStep, CloseStep: end,
		}
		if ts, ok := crashAt[pid]; ok {
			w.OpenStep = ts
		}
		if crashAt != nil {
			closeCrashWindow(&w, crashAt, restartAt)
		}
		out = append(out, w)
	}
	return out
}
