package detect

import (
	"fmt"
	"strings"

	"fcatch/internal/obs"
	"fcatch/internal/trace"
)

// Explain mode gives every candidate the detectors judge exactly one verdict:
// the first §4 pruning rule that discarded it in the actual control flow, or
// "kept" if it survived. The decision units are what the detectors iterate —
// deduplicated signal/wait and write/loop groups for crash-regular (§4.2.2
// prunes per group), raw conflicting pairs for crash-recovery (§4.3.2/4.3.3
// prune before deduplication) — so per-rule kill counts always sum to the
// candidate count:
//
//	len(Decisions) == count(kept) + Σ count(rule killed)
//
// A "kept" crash-recovery decision is pre-dedup: several kept pairs may
// collapse into one report.

// Rule names for Decision.Rule, in pipeline order.
const (
	// RuleKept marks a candidate that survived every pruning analysis.
	RuleKept = "kept"
	// RuleWaitTimeout is §4.2.2 timeout pruning of a timed signal/wait group.
	RuleWaitTimeout = "wait-timeout"
	// RuleLoopTimeout is §4.2.2 timeout pruning of a deadline-bounded loop group.
	RuleLoopTimeout = "loop-timeout"
	// RuleSanityCheck is §4.3.2 control-dependence pruning: a recovery read
	// guarded the candidate read.
	RuleSanityCheck = "sanity-check"
	// RuleReset is §4.3.2 data-dependence pruning: recovery rewrote the
	// resource before the candidate read.
	RuleReset = "reset"
	// RuleImpact is §4.3.3 impact pruning: the read reaches no failure-prone
	// sink.
	RuleImpact = "impact"
)

// RuleNames lists every Decision.Rule value in kill-table display order.
func RuleNames() []string {
	return []string{RuleWaitTimeout, RuleLoopTimeout, RuleSanityCheck, RuleReset, RuleImpact, RuleKept}
}

// Decision is one candidate's verdict, recorded when Options.Explain is set.
type Decision struct {
	Detector  string `json:"detector"` // "crash-regular" or "crash-recovery"
	Window    int    `json:"window"`   // hazard window ID (0 for crash-regular)
	Candidate string `json:"candidate"`
	Rule      string `json:"rule"`
}

// discardRuleCells is the rule-cell map for un-instrumented passes: every
// rule resolves to the nil registry's shared discard counter, built once so
// the common no-metrics detector pass allocates nothing for attribution.
var discardRuleCells = ruleCellsFor(nil)

// ruleCells resolves the per-rule kill counters once per detector pass, so
// the per-candidate cost is one map hit and one atomic add — no name
// concatenation on the detection hot path.
func ruleCells(reg *obs.Registry) map[string]*obs.Counter {
	if reg == nil {
		return discardRuleCells
	}
	return ruleCellsFor(reg)
}

func ruleCellsFor(reg *obs.Registry) map[string]*obs.Counter {
	names := RuleNames()
	cells := make(map[string]*obs.Counter, len(names))
	for _, rule := range names {
		cells[rule] = reg.Counter("detect/rule/" + rule)
	}
	return cells
}

// KillTable tallies decisions by rule.
func KillTable(decisions []Decision) map[string]int {
	out := make(map[string]int, len(RuleNames()))
	for _, d := range decisions {
		out[d.Rule]++
	}
	return out
}

// regularCandidate renders a crash-regular group's identity for a decision
// trail: Report.String without the bug-type tag the Decision.Detector field
// already carries.
func regularCandidate(rep *Report) string {
	s := rep.String()
	if i := strings.Index(s, "] "); i >= 0 {
		return s[i+2:]
	}
	return s
}

// recoveryCandidate renders a crash-recovery pair's identity for a decision
// trail, mirroring Report.String without constructing a Report.
func recoveryCandidate(tw *trace.Trace, w *trace.Record, tr *trace.Trace, r *trace.Record) string {
	return fmt.Sprintf("%s on %s: W=%s@%s R=%s@%s",
		opsDesc(tw, w, tr, r), normalizeRes(tr.Str(r.Res)),
		w.Kind, tw.Str(w.Site), r.Kind, tr.Str(r.Site))
}
