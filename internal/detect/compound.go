package detect

import (
	"fmt"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// Cross-window pairing: the hazard-window analysis applied recursively. A
// composite scenario's later fault is interesting precisely when it lands
// *inside* the hazard window an earlier fault opened — the second fault
// orphans recovery work already in flight, the failure shape single-fault
// detection cannot describe. DetectCompound walks the observation's windows
// and reports every such containment, anchored on both windows.

// CompoundReport is one cross-window finding: window Inner's fault fired
// while window Outer's recovery was still in flight.
type CompoundReport struct {
	// Outer is the window whose recovery the later fault interrupted; Inner
	// is the window that fault opened.
	Outer Window
	Inner Window
	// Orphaned is the last recovery operation of the outer window observed
	// at or before the inner fault — the work the second fault cut short.
	// Zero-valued (Op == 0) when the outer recovery had not reached any
	// traced op yet.
	Orphaned OpSummary
	Workload string
}

// Key is the deduplication identity: the pair of window anchors.
func (c *CompoundReport) Key() string {
	return fmt.Sprintf("compound|w%d:%s@%d|w%d:%s@%d",
		c.Outer.ID, c.Outer.Victim, c.Outer.OpenStep,
		c.Inner.ID, c.Inner.Victim, c.Inner.OpenStep)
}

// String renders a one-line summary.
func (c *CompoundReport) String() string {
	s := fmt.Sprintf("[compound] %s fault@%d inside %s recovery window [%d..%d] of %s",
		c.Inner.Kind, c.Inner.OpenStep, c.Outer.Kind, c.Outer.OpenStep, c.Outer.CloseStep, c.Outer.Victim)
	if c.Orphaned.Op != 0 {
		s += fmt.Sprintf(" orphans %s@%s(%s)", c.Orphaned.Kind, c.Orphaned.Site, c.Orphaned.PID)
	}
	return s
}

// DetectCompound pairs an observation's hazard windows: for every
// crash-recovery window k, every later window whose fault fired inside k is
// reported, with the last of k's recovery operations the inner fault orphaned
// as evidence. Single-window observations (every single-fault run) produce
// nothing.
func DetectCompound(gy *hb.Graph, windows []Window, workload string) []*CompoundReport {
	if len(windows) < 2 {
		return nil
	}
	ty := gy.Ix.T
	var out []*CompoundReport
	for k := range windows {
		outer := &windows[k]
		if outer.Kind != WindowCrashRecovery || outer.Victim == "" {
			continue // only crash windows open a recovery to interrupt
		}
		for j := k + 1; j < len(windows); j++ {
			inner := &windows[j]
			if !outer.Contains(inner.OpenStep) {
				continue
			}
			rep := &CompoundReport{Outer: *outer, Inner: *inner, Workload: workload}
			if orphaned := lastRecoveryOp(ty, outer, inner.OpenStep); orphaned != nil {
				rep.Orphaned = summarize(ty, orphaned, occurrence(gy.Ix, orphaned))
			}
			out = append(out, rep)
		}
	}
	return out
}

// lastRecoveryOp finds the last operation of the outer window's recovery —
// its victim's restarted incarnation, or any process born inside the window —
// at or before the inner fault's step. Resource-touching ops are preferred
// over bookkeeping (thread starts, exits): they are the ops a conflicting
// pair would name.
func lastRecoveryOp(ty *trace.Trace, outer *Window, innerStep int64) *trace.Record {
	born := map[trace.Sym]bool{}
	if outer.Incarnation != "" {
		if y, ok := ty.Lookup(outer.Incarnation); ok {
			born[y] = true
		}
	}
	firstSeen := map[trace.Sym]int64{}
	var best, bestRes *trace.Record
	for i := range ty.Records {
		r := &ty.Records[i]
		if r.TS > innerStep {
			break // records are in clock order
		}
		if _, ok := firstSeen[r.PID]; !ok {
			firstSeen[r.PID] = r.TS
			if r.TS > outer.OpenStep {
				born[r.PID] = true // process born inside the window
			}
		}
		if r.TS <= outer.OpenStep || !born[r.PID] {
			continue
		}
		switch r.Kind {
		case trace.KCrash, trace.KRestart, trace.KThreadExit:
			continue
		}
		best = r
		if r.Res != trace.NoSym {
			bestRes = r
		}
	}
	if bestRes != nil {
		return bestRes
	}
	return best
}
