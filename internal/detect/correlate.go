package detect

import (
	"sort"

	"fcatch/internal/trace"
)

// The paper's Section 2.3 scopes FCatch to single-resource interactions and
// points at multi-variable bug detection as the way to "extend FCatch to
// tackle these bugs". CorrelateRecovery is that extension in its simplest
// useful form: crash-recovery reports whose recovery reads execute under the
// same activation (the same recovery handler or recovery thread) describe
// one recovery decision consuming several of the crash node's leftovers, so
// a single fault hits them together. Grouping them gives developers one
// multi-resource finding instead of N seemingly independent reports.

// ReportGroup is a set of crash-recovery reports whose reads share one
// recovery activation.
type ReportGroup struct {
	// Frame labels the shared recovery activation (handler label or thread
	// name of the frame the reads ran under).
	Frame string
	// Reports, ordered by the reads' trace order.
	Reports []*Report
	// Window spans the earliest W and the latest W among the group: one
	// crash anywhere inside hits at least one member.
	WindowStart, WindowEnd int64
	// WindowID is the hazard window the group's reports belong to (reports
	// from different hazard windows never share a group: an activation frame
	// is one window's recovery, and the grouping key carries the window).
	WindowID int
}

// CorrelateRecovery groups crash-recovery reports by the activation frame of
// their recovery read, using the faulty-run trace the reports came from.
// Reports whose frame cannot be resolved (or groups of one) are returned as
// singleton groups.
func CorrelateRecovery(ty *trace.Trace, reports []*Report) []ReportGroup {
	type keyed struct {
		key   string
		order trace.OpID
	}
	frames := map[string][]*Report{}
	orders := map[string]trace.OpID{}
	label := func(r *Report) keyed {
		// Reports from later hazard windows get a window-suffixed key, so a
		// fallback key (unresolvable frame) never merges findings across
		// windows. Window 0 keeps the historical key byte-identical.
		suffix := ""
		if r.WindowID > 0 {
			suffix = "|w" + itoa(int64(r.WindowID))
		}
		rec := ty.At(r.R.Op)
		if rec == nil {
			return keyed{key: "?" + r.R.Site + suffix, order: r.R.Op}
		}
		act := ty.At(rec.Frame)
		if act == nil {
			return keyed{key: "?" + r.R.Site + suffix, order: rec.ID}
		}
		return keyed{key: ty.Str(act.Aux) + "#" + itoa(int64(act.ID)) + suffix, order: act.ID}
	}
	for _, r := range reports {
		if r.Type != CrashRecovery {
			continue
		}
		k := label(r)
		frames[k.key] = append(frames[k.key], r)
		if cur, ok := orders[k.key]; !ok || k.order < cur {
			orders[k.key] = k.order
		}
	}

	keys := make([]string, 0, len(frames))
	for k := range frames {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		// The window suffix can split one activation across keys with the
		// same order (an op reachable from two windows' recoveries): break
		// the tie on the key so the grouping stays deterministic.
		if orders[keys[i]] != orders[keys[j]] {
			return orders[keys[i]] < orders[keys[j]]
		}
		return keys[i] < keys[j]
	})

	var groups []ReportGroup
	for _, k := range keys {
		rs := frames[k]
		sort.Slice(rs, func(i, j int) bool { return rs[i].R.Op < rs[j].R.Op })
		g := ReportGroup{Frame: trimFrameKey(k), Reports: rs, WindowID: rs[0].WindowID}
		for _, r := range rs {
			if g.WindowStart == 0 || r.W.TS < g.WindowStart {
				g.WindowStart = r.W.TS
			}
			if r.W.TS > g.WindowEnd {
				g.WindowEnd = r.W.TS
			}
		}
		groups = append(groups, g)
	}
	return groups
}

func trimFrameKey(k string) string {
	for i := len(k) - 1; i >= 0; i-- {
		if k[i] == '#' {
			return k[:i]
		}
	}
	return k
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
