package detect

import (
	"sort"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// RegularResult is the crash-regular detector's output on one correct run.
type RegularResult struct {
	Reports []*Report
	Pruned  PruneCounters
	// Decisions is the per-candidate verdict trail, one entry per
	// deduplicated candidate group; nil unless Options.Explain.
	Decisions []Decision
}

// occurrence numbers a record within its site's list (Index.BySite), the
// numbering the fault injector uses at run time. Site lists are in trace
// order (ascending OpID), so the lookup is a binary search instead of the
// old linear scan per candidate. Records the index skipped (fault
// bookkeeping, empty sites) keep the old scan's semantics: occurrence 1.
func occurrence(ix *trace.Index, r *trace.Record) int {
	ids := ix.SiteIDs(r.Site)
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= r.ID })
	if i < len(ids) && ids[i] == r.ID {
		return i + 1
	}
	return 1
}

// DetectRegular predicts crash-regular TOF bugs from one fault-free trace
// (Section 4.2): it pairs blocking operations (standard signal/wait and
// custom loop-signals), keeps pairs whose W causally comes from another
// node, and prunes pairs protected by timeout mechanisms.
func DetectRegular(g *hb.Graph, workload string) *RegularResult {
	return DetectRegularOpts(g, workload, Options{})
}

// DetectRegularOpts is DetectRegular with the pruning analyses toggleable.
func DetectRegularOpts(g *hb.Graph, workload string, opts Options) *RegularResult {
	t := g.Ix.T
	ix := g.Ix
	res := &RegularResult{}

	type group struct {
		reports []*Report
		timed   bool // any instance protected by a timeout
	}
	groups := make(map[string]*group)
	var order []string
	addCandidate := func(rep *Report, timed bool) {
		k := rep.Key()
		grp, ok := groups[k]
		if !ok {
			grp = &group{}
			groups[k] = grp
			order = append(order, k)
		}
		grp.reports = append(grp.reports, rep)
		grp.timed = grp.timed || timed
	}

	// --- Standard condition-variable signal/wait pairs (Section 4.2.1). ---
	// Resolve cv resources to strings and sort them: the symbol table is in
	// interning order, and the old map-keyed code sorted strings, so sorting
	// here keeps report order byte-identical.
	type cvRes struct {
		str string
		sym trace.Sym
	}
	var cvResIDs []cvRes
	for y := 1; y < t.NumSyms(); y++ {
		if len(g.Ix.ResIDs(trace.Sym(y))) == 0 {
			continue
		}
		s := t.Str(trace.Sym(y))
		if len(s) >= 3 && s[:3] == "cv:" {
			cvResIDs = append(cvResIDs, cvRes{str: s, sym: trace.Sym(y)})
		}
	}
	sort.Slice(cvResIDs, func(i, j int) bool { return cvResIDs[i].str < cvResIDs[j].str })
	for _, cv := range cvResIDs {
		resID := cv.str
		var waits, signals []*trace.Record
		for _, id := range g.Ix.ResIDs(cv.sym) {
			r := t.At(id)
			switch r.Kind {
			case trace.KWait:
				waits = append(waits, r)
			case trace.KSignal:
				signals = append(signals, r)
			}
		}
		for _, w := range waits {
			var sig *trace.Record
			for _, s := range signals {
				if s.ID > w.ID {
					sig = s
					break
				}
			}
			if sig == nil || sig.Thread == w.Thread {
				continue
			}
			wp := g.CrossNodeAncestor(sig.ID)
			if wp == nil {
				continue // the signal is purely local; no fault can remove it
			}
			wps := summarize(t, wp, occurrence(ix, wp))
			rep := &Report{
				Type:            CrashRegular,
				OpsDesc:         "Signal vs Wait",
				Resource:        resID,
				ResClass:        normalizeRes(resID),
				W:               summarize(t, sig, occurrence(ix, sig)),
				R:               summarize(t, w, occurrence(ix, w)),
				WPrime:          &wps,
				CrashTargetPID:  wps.PID,
				CrashTargetRole: roleOf(wps.PID),
				Workload:        workload,
			}
			addCandidate(rep, w.HasFlag(trace.FlagTimedWait))
		}
	}

	// --- Custom while-loop signals (Section 4.2.1, Figure 6). ---
	for _, exitID := range g.Ix.ByKind[trace.KLoopExit] {
		exit := t.At(exitID)
		timeBased := false
		var exitReads []*trace.Record
		for _, taintID := range exit.Taint {
			tr := t.At(taintID)
			if tr == nil {
				continue
			}
			switch tr.Kind {
			case trace.KTimeRead:
				timeBased = true
			case trace.KLoopRead:
				if tr.Thread == exit.Thread {
					exitReads = append(exitReads, tr)
				}
			}
		}
		for _, r := range exitReads {
			w := t.At(r.Src)
			if w == nil || !w.Kind.IsWriteLike() {
				continue
			}
			if w.Thread == r.Thread && w.Frame == r.Frame {
				continue // same thread/handler: not a custom signal
			}
			wp := g.CrossNodeAncestor(w.ID)
			if wp == nil {
				continue
			}
			wps := summarize(t, wp, occurrence(ix, wp))
			resStr := t.Str(r.Res)
			rep := &Report{
				Type:            CrashRegular,
				OpsDesc:         "Write vs Loop",
				Resource:        resStr,
				ResClass:        normalizeRes(resStr),
				W:               summarize(t, w, occurrence(ix, w)),
				R:               summarize(t, r, occurrence(ix, r)),
				WPrime:          &wps,
				CrashTargetPID:  wps.PID,
				CrashTargetRole: roleOf(wps.PID),
				Workload:        workload,
			}
			addCandidate(rep, timeBased)
		}
	}

	// --- Timeout pruning (Section 4.2.2), per deduplicated candidate. ---
	sort.Strings(order)
	cells := ruleCells(opts.Metrics)
	for _, k := range order {
		grp := groups[k]
		rep := grp.reports[0]
		rule := RuleKept
		if grp.timed {
			if rep.OpsDesc == "Signal vs Wait" {
				res.Pruned.WaitTimeout++
				if !opts.DisableTimeoutPruning {
					rule = RuleWaitTimeout
				}
			} else {
				res.Pruned.LoopTimeout++
				if !opts.DisableTimeoutPruning {
					rule = RuleLoopTimeout
				}
			}
		}
		if opts.Explain {
			res.Decisions = append(res.Decisions, Decision{
				Detector:  CrashRegular.String(),
				Candidate: regularCandidate(rep),
				Rule:      rule,
			})
		}
		cells[rule].Inc()
		if rule != RuleKept {
			continue
		}
		res.Reports = append(res.Reports, rep)
	}
	return res
}

// roleOf strips the incarnation suffix from a PID ("hmaster#2" → "hmaster").
func roleOf(pid string) string {
	for i := 0; i < len(pid); i++ {
		if pid[i] == '#' {
			return pid[:i]
		}
	}
	return pid
}
