// Package parallel provides the bounded fan-out primitive used across the
// FCatch pipeline: evaluation runs the six Table 1 workloads concurrently,
// the triggering module replays reports concurrently, and the random
// fault-injection baseline fans its campaign runs across cores. Every unit of
// work builds its own sim.Cluster, so isolation is structural; determinism is
// preserved because each index writes into its own pre-allocated result slot
// and callers consume the slots in index order — the schedule never leaks
// into the output.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Parallelism knob: values <= 0 mean "use every core"
// (GOMAXPROCS), anything else is taken literally.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` goroutines.
// It is ForEachCtx with a background context: every unit runs.
func ForEach(workers, n int, fn func(i int)) {
	_ = ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx runs fn(i) for i in [0, n) on at most `workers` goroutines
// (after Resolve). With one worker — or one unit of work — it runs inline on
// the caller's goroutine, making the sequential path literally the same code
// path the parity tests compare against. Work is handed out by an atomic
// cursor, so workers stay busy regardless of per-item skew. A panic in fn is
// re-raised on the caller after all workers drain.
//
// Cancelling ctx stops new units from starting: units already in flight run
// to completion (a sim.Cluster run cannot be interrupted mid-step), unstarted
// indices are skipped, and the context's error is returned. A nil return
// means every unit ran. This is the hook that lets a distributed
// coordinator's drain — or a lease expiry — stop in-flight local work at the
// next unit boundary instead of burning the rest of the batch.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(i)
		}
		return nil
	}
	var (
		cursor    atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
		panicked  atomic.Bool
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() {
					panicVal = r
					panicked.Store(true)
				})
			}
		}()
		fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return ctx.Err()
}

// Map runs fn over [0, n) with ForEach's scheduling and returns the results
// in index order — the deterministic-collection contract in one call.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out, _ := MapCtx(context.Background(), workers, n, fn)
	return out
}

// MapCtx is Map with cancellation: on a cancelled context the returned error
// is non-nil and the result slice is partial (unstarted slots hold zero
// values), so callers must discard it rather than merge it.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out, err
}

// MapErr is Map for fallible work. Every unit still runs (workers do not
// short-circuit — aborting mid-campaign would make partial results depend on
// scheduling); the returned error is the lowest-index failure, so the error a
// caller sees is the same one the sequential loop would have hit first.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapErrCtx(context.Background(), workers, n, fn)
}

// MapErrCtx is MapErr with cancellation. A context error takes precedence
// over per-unit errors: it means the batch was abandoned, not that a unit
// failed.
func MapErrCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if err := ForEachCtx(ctx, workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	}); err != nil {
		return out, err
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
