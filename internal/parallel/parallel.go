// Package parallel provides the bounded fan-out primitive used across the
// FCatch pipeline: evaluation runs the six Table 1 workloads concurrently,
// the triggering module replays reports concurrently, and the random
// fault-injection baseline fans its campaign runs across cores. Every unit of
// work builds its own sim.Cluster, so isolation is structural; determinism is
// preserved because each index writes into its own pre-allocated result slot
// and callers consume the slots in index order — the schedule never leaks
// into the output.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Parallelism knob: values <= 0 mean "use every core"
// (GOMAXPROCS), anything else is taken literally.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` goroutines
// (after Resolve). With one worker — or one unit of work — it runs inline on
// the caller's goroutine, making the sequential path literally the same code
// path the parity tests compare against. Work is handed out by an atomic
// cursor, so workers stay busy regardless of per-item skew. A panic in fn is
// re-raised on the caller after all workers drain.
func ForEach(workers, n int, fn func(i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		cursor    atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
		panicked  atomic.Bool
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() {
					panicVal = r
					panicked.Store(true)
				})
			}
		}()
		fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Map runs fn over [0, n) with ForEach's scheduling and returns the results
// in index order — the deterministic-collection contract in one call.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible work. Every unit still runs (workers do not
// short-circuit — aborting mid-campaign would make partial results depend on
// scheduling); the returned error is the lowest-index failure, so the error a
// caller sees is the same one the sequential loop would have hit first.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
