package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var counts [n]atomic.Int32
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran with n=0")
	}
}

func TestMapIsOrderDeterministic(t *testing.T) {
	want := Map(1, 100, func(i int) int { return i * i })
	for _, workers := range []int{2, 7, 16} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	// Errors at 30 and 10: the sequential path would hit 10 first; the
	// parallel path must report the same one regardless of schedule.
	for _, workers := range []int{1, 4} {
		_, err := MapErr(workers, 50, func(i int) (int, error) {
			if i == 30 || i == 10 {
				return 0, fmt.Errorf("fail at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail at 10" {
			t.Fatalf("workers=%d: err = %v, want fail at 10", workers, err)
		}
	}
}

func TestMapErrRunsEverything(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	_, err := MapErr(4, 40, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 40 {
		t.Fatalf("ran %d/40 units despite early error", ran.Load())
	}
}

func TestForEachCtxCancelStopsNewUnits(t *testing.T) {
	// Cancel from inside unit 5: in-flight units finish, unstarted units are
	// skipped, and the context error is surfaced. With one worker the order
	// is sequential, so exactly 6 units (0..5) must have run.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForEachCtx(ctx, workers, 10_000, func(i int) {
			ran.Add(1)
			if i == 5 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 10_000 {
			t.Fatalf("workers=%d: cancellation did not stop the batch (%d units ran)", workers, n)
		}
		if workers == 1 && ran.Load() != 6 {
			t.Fatalf("sequential cancel: %d units ran, want 6", ran.Load())
		}
		cancel()
	}
}

func TestForEachCtxUncancelledMatchesForEach(t *testing.T) {
	const n = 137
	var counts [n]atomic.Int32
	if err := ForEachCtx(context.Background(), 3, n, func(i int) { counts[i].Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestMapCtxPartialOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any unit starts
	out, err := MapCtx(ctx, 2, 8, func(i int) int { return i + 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("slot %d = %d; no unit should have run", i, v)
		}
	}
}

func TestMapErrCtxContextErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	_, err := MapErrCtx(ctx, 1, 10, func(i int) (int, error) {
		if i == 2 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the context error to take precedence", err)
	}
	cancel()
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
			}()
			ForEach(workers, 10, func(i int) {
				if i == 3 {
					panic("kaboom")
				}
			})
		}()
	}
}
