package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var counts [n]atomic.Int32
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran with n=0")
	}
}

func TestMapIsOrderDeterministic(t *testing.T) {
	want := Map(1, 100, func(i int) int { return i * i })
	for _, workers := range []int{2, 7, 16} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	// Errors at 30 and 10: the sequential path would hit 10 first; the
	// parallel path must report the same one regardless of schedule.
	for _, workers := range []int{1, 4} {
		_, err := MapErr(workers, 50, func(i int) (int, error) {
			if i == 30 || i == 10 {
				return 0, fmt.Errorf("fail at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail at 10" {
			t.Fatalf("workers=%d: err = %v, want fail at 10", workers, err)
		}
	}
}

func TestMapErrRunsEverything(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	_, err := MapErr(4, 40, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 40 {
		t.Fatalf("ran %d/40 units despite early error", ran.Load())
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
			}()
			ForEach(workers, 10, func(i int) {
				if i == 3 {
					panic("kaboom")
				}
			})
		}()
	}
}
