// Package cliflag centralizes flag definitions shared by the fcatch
// command-line tools, so their semantics and help text cannot drift apart.
package cliflag

import "flag"

// Parallelism registers the shared -parallelism flag on fs. The contract is
// the same in every tool: 0 = GOMAXPROCS, 1 = sequential, and results are
// byte-identical at any setting — parallelism is purely a throughput knob.
// what names the unit of concurrency for the tool's help text ("runs",
// "injection runs", ...).
func Parallelism(fs *flag.FlagSet, what string) *int {
	return fs.Int("parallelism", 0,
		"concurrent "+what+" (0 = GOMAXPROCS, 1 = sequential; results identical at any setting)")
}
