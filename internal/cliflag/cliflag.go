// Package cliflag centralizes flag definitions shared by the fcatch
// command-line tools, so their semantics and help text cannot drift apart.
package cliflag

import (
	"flag"
	"fmt"
	"os"

	"fcatch/internal/obs"
)

// Parallelism registers the shared -parallelism flag on fs. The contract is
// the same in every tool: 0 = GOMAXPROCS, 1 = sequential, and results are
// byte-identical at any setting — parallelism is purely a throughput knob.
// what names the unit of concurrency for the tool's help text ("runs",
// "injection runs", ...).
func Parallelism(fs *flag.FlagSet, what string) *int {
	return fs.Int("parallelism", 0,
		"concurrent "+what+" (0 = GOMAXPROCS, 1 = sequential; results identical at any setting)")
}

// Metrics registers the shared -metrics flag on fs: a path to write a JSON
// metrics snapshot to when the tool exits ("" = off). The contract is the
// same in every tool: metrics are observe-only, so all other outputs are
// byte-identical whether the flag is set or not.
func Metrics(fs *flag.FlagSet) *string {
	return fs.String("metrics", "",
		"write a JSON metrics snapshot to this file on exit (observe-only; other outputs are unchanged)")
}

// NewRegistry returns a live registry when a -metrics path (or another
// consumer, per extra) demands one, and the nil no-op registry otherwise.
func NewRegistry(path string, extra bool) *obs.Registry {
	if path == "" && !extra {
		return nil
	}
	return obs.New()
}

// WriteMetrics writes reg's snapshot to path as indented JSON. A no-op when
// path is empty; "-" writes to stdout.
func WriteMetrics(path string, reg *obs.Registry) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("writing metrics: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	return nil
}
