// Package inject implements FCatch's bug-triggering module (Section 5) and
// the random fault-injection baseline it is compared against (Section 8.3).
package inject

import (
	"fmt"
	"strings"

	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/parallel"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// Classification is the verdict triggering gives a report.
type Classification int

const (
	// TrueBug: injecting the fault at the reported moment causes a real
	// failure (hang, fatal error, job/system failure, data loss).
	TrueBug Classification = iota
	// Expected: the fault causes a visible but acceptable reaction — a
	// well-handled exception or behaviour the system intends (the "Exp."
	// false-positive column of Table 3).
	Expected
	// Benign: nothing observable goes wrong (the "False" column).
	Benign
)

func (c Classification) String() string {
	switch c {
	case TrueBug:
		return "true-bug"
	case Expected:
		return "expected"
	}
	return "benign"
}

// Outcome is the result of triggering one report.
type Outcome struct {
	Report *detect.Report
	Class  Classification
	// ByAction records, per fault type tried (node-crash, kernel-drop,
	// app-drop), whether it produced a failure — the Section 8.4 matrix.
	ByAction map[string]bool
	// FailureKind/Detail describe the observed failure (if any).
	FailureKind string
	Detail      string
}

// Triggerer replays workloads with precisely aimed faults.
type Triggerer struct {
	W    core.Workload
	Seed int64
	// Parallelism bounds how many reports TriggerAll replays concurrently
	// (0 = GOMAXPROCS, 1 = sequential). Every replay builds its own
	// cluster, and outcomes land in per-report slots, so the result is
	// identical at any setting.
	Parallelism int
}

// NewTriggerer builds a triggerer for one workload/seed (use the same seed
// as the observation runs so occurrence counts line up).
func NewTriggerer(w core.Workload, seed int64) *Triggerer {
	return &Triggerer{W: w, Seed: seed}
}

// WindowEvent lowers a hazard window's anchor back to the scenario event
// that opened it: site-anchored windows replay at their recorded
// site/occurrence/edge, step-anchored ones at their open step. Crash events
// aim at the victim's role, so they hit whatever incarnation is current when
// they fire.
func WindowEvent(w *detect.Window) sim.FaultSpec {
	ev := sim.FaultSpec{Action: w.Action}
	if w.OpenSite != "" {
		ev.Site, ev.Occurrence, ev.When = w.OpenSite, w.OpenOcc, w.OpenWhen
	} else {
		ev.CrashStep = w.OpenStep
	}
	if w.Kind == detect.WindowCrashRecovery {
		ev.Target = w.Role()
		// The window recovered in the observation, so the rebuilt event must
		// force the same restart — the workload's own policy may leave the
		// victim down (the observed restart could have come from a forced
		// restart= in the scenario).
		if w.Incarnation != "" && w.RestartStep > w.OpenStep {
			d := w.RestartStep - w.OpenStep
			ev.Restart = &d
		}
	}
	return ev
}

// prefixEvents rebuilds the scenario events that open every window before
// windowID — the context a later window's fault needs to land in (its victim
// incarnation only exists once the earlier faults and restarts have run).
func prefixEvents(windows []detect.Window, windowID int) []sim.FaultSpec {
	var out []sim.FaultSpec
	for i := range windows {
		if w := &windows[i]; w.ID < windowID {
			out = append(out, WindowEvent(w))
		}
	}
	return out
}

// TriggerScenario is the injection scenario Trigger replays for a report,
// rebuilt from the report's anchors and (for reports from later hazard
// windows) the windows preceding it. For crash-regular reports it is the
// node-crash flavor of the three fault types Trigger tries.
func TriggerScenario(rep *detect.Report, windows []detect.Window) []sim.FaultSpec {
	if rep.Type == detect.CrashRegular {
		wp := rep.WPrime
		if wp == nil {
			return nil
		}
		return []sim.FaultSpec{{
			Site: wp.Site, Occurrence: wp.Occurrence, When: sim.WhenBefore, Action: sim.ActionNodeCrash,
		}}
	}
	when := sim.WhenAfter
	if rep.WInFaultyRun {
		when = sim.WhenBefore
	}
	return append(prefixEvents(windows, rep.WindowID), sim.FaultSpec{
		Site: rep.W.Site, Occurrence: rep.W.Occurrence, When: when,
		Action: sim.ActionNodeCrash, Target: rep.CrashTargetRole,
	})
}

// Trigger replays the workload with the report's fault injected and
// classifies the report (Section 5). Crash-regular reports are tried with
// all three fault types: a node crash right before W′, a kernel-level drop
// of W′, and an application-level drop of W′. Crash-recovery reports get a
// node crash right before or after W (depending on where W was observed),
// with the crashed role restarted so recovery runs.
func (tg *Triggerer) Trigger(rep *detect.Report) *Outcome {
	return tg.TriggerWindowed(rep, nil)
}

// TriggerWindowed is Trigger for reports anchored to a later hazard window:
// the observation's windows let it replay the faults that preceded the
// report's own window, so the aimed fault lands in the same recovery context
// it was detected in. Window-0 (and crash-regular) reports ignore windows
// and behave exactly like Trigger.
func (tg *Triggerer) TriggerWindowed(rep *detect.Report, windows []detect.Window) *Outcome {
	out := &Outcome{Report: rep, Class: Benign, ByAction: map[string]bool{}}

	type attempt struct {
		action  string
		events  []sim.FaultSpec
		restart bool
	}
	var attempts []attempt
	if rep.Type == detect.CrashRegular {
		wp := rep.WPrime
		if wp == nil {
			return out
		}
		for _, act := range sim.ActionNames() {
			attempts = append(attempts, attempt{
				action: act,
				events: []sim.FaultSpec{{
					Site: wp.Site, Occurrence: wp.Occurrence, When: sim.WhenBefore, Action: act,
				}},
				// The paper emulates the crash with Runtime.halt(-1): the
				// victim stays down; the remaining nodes must cope.
				restart: false,
			})
		}
	} else {
		attempts = append(attempts, attempt{
			action:  sim.ActionNodeCrash,
			events:  TriggerScenario(rep, windows),
			restart: true,
		})
	}

	for _, at := range attempts {
		var restart map[string]int64
		if at.restart {
			restart = tg.W.RestartRoles()
		}
		plan := sim.NewScenarioPlan(at.events, restart)
		// Replays stream their records through the handled-exception fold and
		// discard them: classification needs only the fold's verdict, so a
		// replay's memory stays O(batch + symbol tables).
		fold := &handledExcFold{site: rep.R.Site}
		cfg := sim.Config{Seed: tg.Seed, Tracing: sim.TraceSelective, Plan: plan, TraceTickCost: 1,
			TraceDiscard: true, OnTraceWindow: fold.Window}
		tg.W.Tune(&cfg)
		c := sim.NewCluster(cfg)
		tg.W.Configure(c)
		runOut := c.Run()
		cls, kind, detail := tg.classify(c, runOut, fold)
		out.ByAction[at.action] = cls == TrueBug
		// The strongest verdict across fault types wins (TrueBug < Expected
		// < Benign in severity order).
		if cls < out.Class {
			out.Class = cls
			out.FailureKind = kind
			out.Detail = detail
		}
	}
	return out
}

// classify turns a trigger run's outcome into a verdict for one report.
func (tg *Triggerer) classify(c *sim.Cluster, out *sim.Outcome, fold *handledExcFold) (Classification, string, string) {
	checkErr := tg.W.Check(c, out)
	failed := !out.Completed || len(out.FatalLogs) > 0 || len(out.UncaughtExceptions) > 0 || checkErr != nil

	if failed {
		detail := tg.failureDetail(out, checkErr)
		if tg.isExpected(detail) {
			return Expected, "expected-" + failureKind(out, checkErr), detail
		}
		return TrueBug, failureKind(out, checkErr), detail
	}

	// The run completed correctly. If the fault provoked an exception that
	// is data/control-dependent on the report's read — and the system
	// handled it — this is the paper's "well-handled exception" category.
	// The dependence requirement keeps unrelated recovery-path exceptions
	// from contaminating other reports' verdicts.
	if fold != nil && fold.found {
		return Expected, "handled-exception", fold.detail
	}
	return Benign, "", ""
}

// handledExcFold detects the "well-handled exception" condition in one pass
// over streamed record windows: a KThrow whose taint or control set contains
// an execution of the report's read site. Exact as a forward fold because a
// throw's dependence sets only ever reference earlier operations (smaller
// OpIDs), so every relevant site execution has been folded in before its
// dependent throw arrives. Its Window method is a trace.WindowFn.
type handledExcFold struct {
	site string // the report's read site, as a string

	// siteY is the site's Sym in this run's own symbol table, resolved
	// lazily: windows are delivered after their records' strings were
	// interned, so the lookup succeeds by the first window that matters.
	siteY trace.Sym
	haveY bool

	rOps   map[trace.OpID]bool // executions of the site seen so far
	found  bool
	detail string
}

// Window folds one window of records (a trace.WindowFn — safe to call with a
// reused, non-retained window slice).
func (f *handledExcFold) Window(tr *trace.Trace, recs []trace.Record) {
	if f.found {
		return
	}
	if !f.haveY {
		if y, ok := tr.Lookup(f.site); ok && y != trace.NoSym {
			f.siteY, f.haveY = y, true
		}
		if !f.haveY {
			return // no execution of the site can be in this window either
		}
	}
	for i := range recs {
		r := &recs[i]
		if r.Site == f.siteY {
			if f.rOps == nil {
				f.rOps = map[trace.OpID]bool{}
			}
			f.rOps[r.ID] = true
		}
		if r.Kind != trace.KThrow {
			continue
		}
		for _, t := range r.Taint {
			if f.rOps[t] {
				f.found, f.detail = true, tr.Str(r.Aux)+"@"+tr.Str(r.Site)
				return
			}
		}
		for _, t := range r.Ctl {
			if f.rOps[t] {
				f.found, f.detail = true, tr.Str(r.Aux)+"@"+tr.Str(r.Site)
				return
			}
		}
	}
}

func failureKind(out *sim.Outcome, checkErr error) string {
	switch {
	case len(out.UncaughtExceptions) > 0:
		return "exception"
	case len(out.FatalLogs) > 0:
		return "fatal"
	case !out.Completed:
		return "hang"
	case checkErr != nil:
		return "check"
	}
	return "ok"
}

func (tg *Triggerer) failureDetail(out *sim.Outcome, checkErr error) string {
	var parts []string
	for _, h := range out.Hung {
		parts = append(parts, fmt.Sprintf("hang:%s/%s@%s(%s)", h.PID, h.Name, h.Site, h.Reason))
	}
	parts = append(parts, out.FatalLogs...)
	parts = append(parts, out.UncaughtExceptions...)
	if checkErr != nil {
		parts = append(parts, "check:"+checkErr.Error())
	}
	return strings.Join(parts, "; ")
}

func (tg *Triggerer) isExpected(detail string) bool {
	for _, pat := range tg.W.ExpectedBehaviors() {
		if pat != "" && strings.Contains(detail, pat) {
			return true
		}
	}
	return false
}

// CompoundOutcome is the result of replaying a cross-window finding's two
// window anchors as one scenario.
type CompoundOutcome struct {
	Compound *detect.CompoundReport
	// Scenario is the rebuilt two-event scenario whose replay produced the
	// verdict (the observed-policy scenario when every variant was benign).
	Scenario    []sim.FaultSpec
	Class       Classification
	FailureKind string
	Detail      string
	// Variant names the recovery policy that produced the verdict:
	// "as-observed", "inner-down", "inner-restart@<delay>" or "outer-down".
	Variant string
}

// compoundRestartDelay is the restart timescale a recovery-policy variant
// assumes when the observation recorded none.
const compoundRestartDelay = 40

// compoundRestartProbes caps how many restart delays the timing grid tries
// for a crash-opened inner window. Below the cap the grid is exhaustive
// (every delay up to the observed timescale): the harmful restart timings
// are narrow — a few ticks wide — so a sparse grid walks right past them.
const compoundRestartProbes = 64

// TriggerCompound rebuilds the scenario a compound finding describes — the
// outer window's fault, then the inner fault landing inside the outer
// recovery — and probes the recovery policies an operator could apply to the
// victims. The observation itself was tolerated (core.Observe only accepts
// correct faulty runs), so verbatim anchors are the baseline and the
// perturbed policies carry the verdict. For a crash-opened inner window the
// inner victim is left down for good and, separately, restarted on an even
// grid of delays across the observed recovery timescale — a time-of-fault
// failure is a timing failure, so the trigger walks the one timing axis the
// anchors leave free. For a drop-opened inner window the outer victim is the
// one left down, so nothing ever re-sends the dropped message. The strongest
// verdict across variants wins.
func (tg *Triggerer) TriggerCompound(rep *detect.CompoundReport) *CompoundOutcome {
	outer, inner := WindowEvent(&rep.Outer), WindowEvent(&rep.Inner)
	out := &CompoundOutcome{Compound: rep, Scenario: []sim.FaultSpec{outer, inner},
		Class: Benign, Variant: "as-observed"}

	pin := int64(-1)
	type variant struct {
		name           string
		outerR, innerR *int64
	}
	variants := []variant{{"as-observed", outer.Restart, inner.Restart}}
	if rep.Inner.Kind == detect.WindowCrashRecovery {
		variants = append(variants, variant{"inner-down", outer.Restart, &pin})
		// The grid's scale: the inner victim's observed restart delay, else
		// the outer window's, else the default operator timescale.
		scale := rep.Inner.RestartStep - rep.Inner.OpenStep
		if scale <= 0 {
			scale = rep.Outer.RestartStep - rep.Outer.OpenStep
		}
		if scale <= 0 {
			scale = compoundRestartDelay
		}
		step := (scale + compoundRestartProbes - 1) / compoundRestartProbes
		if step < 1 {
			step = 1
		}
		for d := step; d <= scale; d += step {
			if inner.Restart != nil && d == *inner.Restart {
				continue // the as-observed variant already covers this delay
			}
			d := d
			variants = append(variants,
				variant{fmt.Sprintf("inner-restart@%d", d), outer.Restart, &d})
		}
	} else {
		variants = append(variants, variant{"outer-down", &pin, inner.Restart})
	}
	for _, v := range variants {
		oe, ie := outer, inner
		oe.Restart, ie.Restart = v.outerR, v.innerR
		scenario := []sim.FaultSpec{oe, ie}
		plan := sim.NewScenarioPlan(scenario, tg.W.RestartRoles())
		cfg := sim.Config{Seed: tg.Seed, Tracing: sim.TraceSelective, Plan: plan,
			TraceTickCost: 1, TraceDiscard: true}
		tg.W.Tune(&cfg)
		c := sim.NewCluster(cfg)
		tg.W.Configure(c)
		runOut := c.Run()
		cls, kind, detail := tg.classify(c, runOut, nil)
		if cls < out.Class {
			out.Class, out.FailureKind, out.Detail = cls, kind, detail
			out.Scenario, out.Variant = scenario, v.name
		}
	}
	return out
}

// TriggerAll classifies every report and returns outcomes in report order,
// replaying up to tg.Parallelism reports concurrently.
func (tg *Triggerer) TriggerAll(reports []*detect.Report) []*Outcome {
	return parallel.Map(tg.Parallelism, len(reports), func(i int) *Outcome {
		return tg.Trigger(reports[i])
	})
}
