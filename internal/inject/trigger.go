// Package inject implements FCatch's bug-triggering module (Section 5) and
// the random fault-injection baseline it is compared against (Section 8.3).
package inject

import (
	"fmt"
	"strings"

	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/parallel"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// Classification is the verdict triggering gives a report.
type Classification int

const (
	// TrueBug: injecting the fault at the reported moment causes a real
	// failure (hang, fatal error, job/system failure, data loss).
	TrueBug Classification = iota
	// Expected: the fault causes a visible but acceptable reaction — a
	// well-handled exception or behaviour the system intends (the "Exp."
	// false-positive column of Table 3).
	Expected
	// Benign: nothing observable goes wrong (the "False" column).
	Benign
)

func (c Classification) String() string {
	switch c {
	case TrueBug:
		return "true-bug"
	case Expected:
		return "expected"
	}
	return "benign"
}

// Outcome is the result of triggering one report.
type Outcome struct {
	Report *detect.Report
	Class  Classification
	// ByAction records, per fault type tried (node-crash, kernel-drop,
	// app-drop), whether it produced a failure — the Section 8.4 matrix.
	ByAction map[string]bool
	// FailureKind/Detail describe the observed failure (if any).
	FailureKind string
	Detail      string
}

// Triggerer replays workloads with precisely aimed faults.
type Triggerer struct {
	W    core.Workload
	Seed int64
	// Parallelism bounds how many reports TriggerAll replays concurrently
	// (0 = GOMAXPROCS, 1 = sequential). Every replay builds its own
	// cluster, and outcomes land in per-report slots, so the result is
	// identical at any setting.
	Parallelism int
}

// NewTriggerer builds a triggerer for one workload/seed (use the same seed
// as the observation runs so occurrence counts line up).
func NewTriggerer(w core.Workload, seed int64) *Triggerer {
	return &Triggerer{W: w, Seed: seed}
}

// Trigger replays the workload with the report's fault injected and
// classifies the report (Section 5). Crash-regular reports are tried with
// all three fault types: a node crash right before W′, a kernel-level drop
// of W′, and an application-level drop of W′. Crash-recovery reports get a
// node crash right before or after W (depending on where W was observed),
// with the crashed role restarted so recovery runs.
func (tg *Triggerer) Trigger(rep *detect.Report) *Outcome {
	out := &Outcome{Report: rep, Class: Benign, ByAction: map[string]bool{}}

	type attempt struct {
		action  string
		event   sim.FaultSpec
		restart bool
	}
	var attempts []attempt
	if rep.Type == detect.CrashRegular {
		wp := rep.WPrime
		if wp == nil {
			return out
		}
		for _, act := range sim.ActionNames() {
			attempts = append(attempts, attempt{
				action: act,
				event: sim.FaultSpec{
					Site: wp.Site, Occurrence: wp.Occurrence, When: sim.WhenBefore, Action: act,
				},
				// The paper emulates the crash with Runtime.halt(-1): the
				// victim stays down; the remaining nodes must cope.
				restart: false,
			})
		}
	} else {
		when := sim.WhenAfter
		if rep.WInFaultyRun {
			when = sim.WhenBefore
		}
		attempts = append(attempts, attempt{
			action: sim.ActionNodeCrash,
			event: sim.FaultSpec{
				Site: rep.W.Site, Occurrence: rep.W.Occurrence, When: when,
				Action: sim.ActionNodeCrash, Target: rep.CrashTargetRole,
			},
			restart: true,
		})
	}

	for _, at := range attempts {
		var restart map[string]int64
		if at.restart {
			restart = tg.W.RestartRoles()
		}
		plan := sim.NewScenarioPlan([]sim.FaultSpec{at.event}, restart)
		// Replays stream their records through the handled-exception fold and
		// discard them: classification needs only the fold's verdict, so a
		// replay's memory stays O(batch + symbol tables).
		fold := &handledExcFold{site: rep.R.Site}
		cfg := sim.Config{Seed: tg.Seed, Tracing: sim.TraceSelective, Plan: plan, TraceTickCost: 1,
			TraceDiscard: true, OnTraceWindow: fold.Window}
		tg.W.Tune(&cfg)
		c := sim.NewCluster(cfg)
		tg.W.Configure(c)
		runOut := c.Run()
		cls, kind, detail := tg.classify(c, runOut, fold)
		out.ByAction[at.action] = cls == TrueBug
		// The strongest verdict across fault types wins (TrueBug < Expected
		// < Benign in severity order).
		if cls < out.Class {
			out.Class = cls
			out.FailureKind = kind
			out.Detail = detail
		}
	}
	return out
}

// classify turns a trigger run's outcome into a verdict for one report.
func (tg *Triggerer) classify(c *sim.Cluster, out *sim.Outcome, fold *handledExcFold) (Classification, string, string) {
	checkErr := tg.W.Check(c, out)
	failed := !out.Completed || len(out.FatalLogs) > 0 || len(out.UncaughtExceptions) > 0 || checkErr != nil

	if failed {
		detail := tg.failureDetail(out, checkErr)
		if tg.isExpected(detail) {
			return Expected, "expected-" + failureKind(out, checkErr), detail
		}
		return TrueBug, failureKind(out, checkErr), detail
	}

	// The run completed correctly. If the fault provoked an exception that
	// is data/control-dependent on the report's read — and the system
	// handled it — this is the paper's "well-handled exception" category.
	// The dependence requirement keeps unrelated recovery-path exceptions
	// from contaminating other reports' verdicts.
	if fold != nil && fold.found {
		return Expected, "handled-exception", fold.detail
	}
	return Benign, "", ""
}

// handledExcFold detects the "well-handled exception" condition in one pass
// over streamed record windows: a KThrow whose taint or control set contains
// an execution of the report's read site. Exact as a forward fold because a
// throw's dependence sets only ever reference earlier operations (smaller
// OpIDs), so every relevant site execution has been folded in before its
// dependent throw arrives. Its Window method is a trace.WindowFn.
type handledExcFold struct {
	site string // the report's read site, as a string

	// siteY is the site's Sym in this run's own symbol table, resolved
	// lazily: windows are delivered after their records' strings were
	// interned, so the lookup succeeds by the first window that matters.
	siteY trace.Sym
	haveY bool

	rOps   map[trace.OpID]bool // executions of the site seen so far
	found  bool
	detail string
}

// Window folds one window of records (a trace.WindowFn — safe to call with a
// reused, non-retained window slice).
func (f *handledExcFold) Window(tr *trace.Trace, recs []trace.Record) {
	if f.found {
		return
	}
	if !f.haveY {
		if y, ok := tr.Lookup(f.site); ok && y != trace.NoSym {
			f.siteY, f.haveY = y, true
		}
		if !f.haveY {
			return // no execution of the site can be in this window either
		}
	}
	for i := range recs {
		r := &recs[i]
		if r.Site == f.siteY {
			if f.rOps == nil {
				f.rOps = map[trace.OpID]bool{}
			}
			f.rOps[r.ID] = true
		}
		if r.Kind != trace.KThrow {
			continue
		}
		for _, t := range r.Taint {
			if f.rOps[t] {
				f.found, f.detail = true, tr.Str(r.Aux)+"@"+tr.Str(r.Site)
				return
			}
		}
		for _, t := range r.Ctl {
			if f.rOps[t] {
				f.found, f.detail = true, tr.Str(r.Aux)+"@"+tr.Str(r.Site)
				return
			}
		}
	}
}

func failureKind(out *sim.Outcome, checkErr error) string {
	switch {
	case len(out.UncaughtExceptions) > 0:
		return "exception"
	case len(out.FatalLogs) > 0:
		return "fatal"
	case !out.Completed:
		return "hang"
	case checkErr != nil:
		return "check"
	}
	return "ok"
}

func (tg *Triggerer) failureDetail(out *sim.Outcome, checkErr error) string {
	var parts []string
	for _, h := range out.Hung {
		parts = append(parts, fmt.Sprintf("hang:%s/%s@%s(%s)", h.PID, h.Name, h.Site, h.Reason))
	}
	parts = append(parts, out.FatalLogs...)
	parts = append(parts, out.UncaughtExceptions...)
	if checkErr != nil {
		parts = append(parts, "check:"+checkErr.Error())
	}
	return strings.Join(parts, "; ")
}

func (tg *Triggerer) isExpected(detail string) bool {
	for _, pat := range tg.W.ExpectedBehaviors() {
		if pat != "" && strings.Contains(detail, pat) {
			return true
		}
	}
	return false
}

// TriggerAll classifies every report and returns outcomes in report order,
// replaying up to tg.Parallelism reports concurrently.
func (tg *Triggerer) TriggerAll(reports []*detect.Report) []*Outcome {
	return parallel.Map(tg.Parallelism, len(reports), func(i int) *Outcome {
		return tg.Trigger(reports[i])
	})
}
