package inject

import (
	"testing"

	"fcatch/internal/apps/toy"
	"fcatch/internal/core"
	"fcatch/internal/detect"
)

func TestClassificationOrdering(t *testing.T) {
	// The strongest verdict across fault kinds must win.
	if !(TrueBug < Expected && Expected < Benign) {
		t.Fatal("classification severity order broken")
	}
	if TrueBug.String() != "true-bug" || Expected.String() != "expected" || Benign.String() != "benign" {
		t.Fatal("classification names broken")
	}
}

func TestTriggerAllPreservesOrder(t *testing.T) {
	w := toy.New()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := NewTriggerer(w, 1)
	outs := tg.TriggerAll(res.Reports)
	if len(outs) != len(res.Reports) {
		t.Fatalf("outcomes = %d, reports = %d", len(outs), len(res.Reports))
	}
	for i := range outs {
		if outs[i].Report != res.Reports[i] {
			t.Fatal("outcome order diverges from report order")
		}
	}
}

func TestTriggerCrashRegularTriesAllThreeFaults(t *testing.T) {
	w := toy.New()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := NewTriggerer(w, 1)
	for _, r := range res.Reports {
		out := tg.Trigger(r)
		if r.Type == detect.CrashRegular {
			for _, k := range []string{"node-crash", "kernel-drop", "app-drop"} {
				if _, ok := out.ByAction[k]; !ok {
					t.Errorf("crash-regular report missing %s attempt", k)
				}
			}
		} else {
			if _, ok := out.ByAction["node-crash"]; !ok || len(out.ByAction) != 1 {
				t.Errorf("crash-recovery report should try exactly a node crash: %v", out.ByAction)
			}
		}
	}
}

func TestTriggerWithoutWPrimeIsBenign(t *testing.T) {
	w := toy.New()
	tg := NewTriggerer(w, 1)
	out := tg.Trigger(&detect.Report{Type: detect.CrashRegular})
	if out.Class != Benign {
		t.Fatalf("report without W' classified %v", out.Class)
	}
}

func TestRandomCampaignDeterministic(t *testing.T) {
	a, err := RandomCampaign(toy.New(), 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCampaign(toy.New(), 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.FailureRuns != b.FailureRuns || len(a.Failures) != len(b.Failures) {
		t.Fatalf("campaign not deterministic: %v vs %v", a.Failures, b.Failures)
	}
}

func TestRandomResultSignaturesSorted(t *testing.T) {
	r := &RandomResult{Failures: map[string]int{"b": 2, "a": 2, "c": 9}}
	got := r.Signatures()
	if len(got) != 3 || got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Fatalf("signatures = %v, want frequency desc then lexicographic", got)
	}
	if r.UniqueFailures() != 3 {
		t.Fatal("UniqueFailures wrong")
	}
}
