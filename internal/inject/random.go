package inject

import (
	"sort"

	"fcatch/internal/campaign"
	"fcatch/internal/core"
	"fcatch/internal/obs"
)

// RandomResult summarizes a random fault-injection campaign (Section 8.3):
// many runs of the workload, each with a node crash at a uniformly random
// execution point, counting how often any bug manifests.
type RandomResult struct {
	Workload    string
	Runs        int
	FailureRuns int
	// Failures maps a failure signature (a coarse fingerprint of the
	// symptom) to how many runs exposed it. Distinct signatures ≈ distinct
	// bugs exposed.
	Failures map[string]int
}

// UniqueFailures is the number of distinct failure signatures.
func (r *RandomResult) UniqueFailures() int { return len(r.Failures) }

// Signatures returns the failure signatures sorted by frequency (desc).
func (r *RandomResult) Signatures() []string {
	out := make([]string, 0, len(r.Failures))
	for s := range r.Failures {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if r.Failures[out[i]] != r.Failures[out[j]] {
			return r.Failures[out[i]] > r.Failures[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// RandomCampaign runs `runs` executions of the workload, each crashing the
// workload's crash target at a random step (with operator restarts enabled,
// as in production), and reports which failures surfaced. This is the state
// of practice FCatch is compared against: bug-triggering windows are small,
// so most injections land harmlessly. Runs fan out across every core; see
// RandomCampaignP to bound or disable the parallelism.
func RandomCampaign(w core.Workload, runs int, seed int64) (*RandomResult, error) {
	return RandomCampaignP(w, runs, seed, 0)
}

// RandomCampaignP is RandomCampaign with an explicit parallelism bound
// (0 = GOMAXPROCS, 1 = sequential). It is a thin wrapper over the campaign
// engine's `random` strategy, which pre-draws every crash step from the
// seeded RNG and merges per-run verdicts in run order — so the counts are
// identical at any parallelism, and byte-identical to the pre-engine
// implementation (see TestRandomCampaignMatchesReference).
func RandomCampaignP(w core.Workload, runs int, seed int64, parallelism int) (*RandomResult, error) {
	return RandomCampaignObserved(w, runs, seed, parallelism, nil)
}

// RandomCampaignObserved is RandomCampaignP with an observe-only metrics
// registry threaded into the underlying campaign engine (nil = cheap no-op;
// the counts are identical either way).
func RandomCampaignObserved(w core.Workload, runs int, seed int64, parallelism int, reg *obs.Registry) (*RandomResult, error) {
	res, err := campaign.Run(w, campaign.Config{
		Strategy:    campaign.StrategyRandom,
		Seed:        seed,
		Budget:      runs,
		Parallelism: parallelism,
		Metrics:     reg,
	})
	if err != nil {
		return nil, err
	}
	return &RandomResult{
		Workload:    res.Workload,
		Runs:        res.Runs,
		FailureRuns: res.FailureRuns,
		Failures:    res.Failures,
	}, nil
}
