package inject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"fcatch/internal/core"
	"fcatch/internal/parallel"
	"fcatch/internal/sim"
)

// RandomResult summarizes a random fault-injection campaign (Section 8.3):
// many runs of the workload, each with a node crash at a uniformly random
// execution point, counting how often any bug manifests.
type RandomResult struct {
	Workload    string
	Runs        int
	FailureRuns int
	// Failures maps a failure signature (a coarse fingerprint of the
	// symptom) to how many runs exposed it. Distinct signatures ≈ distinct
	// bugs exposed.
	Failures map[string]int
}

// UniqueFailures is the number of distinct failure signatures.
func (r *RandomResult) UniqueFailures() int { return len(r.Failures) }

// Signatures returns the failure signatures sorted by frequency (desc).
func (r *RandomResult) Signatures() []string {
	out := make([]string, 0, len(r.Failures))
	for s := range r.Failures {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if r.Failures[out[i]] != r.Failures[out[j]] {
			return r.Failures[out[i]] > r.Failures[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// RandomCampaign runs `runs` executions of the workload, each crashing the
// workload's crash target at a random step (with operator restarts enabled,
// as in production), and reports which failures surfaced. This is the state
// of practice FCatch is compared against: bug-triggering windows are small,
// so most injections land harmlessly. Runs fan out across every core; see
// RandomCampaignP to bound or disable the parallelism.
func RandomCampaign(w core.Workload, runs int, seed int64) (*RandomResult, error) {
	return RandomCampaignP(w, runs, seed, 0)
}

// RandomCampaignP is RandomCampaign with an explicit parallelism bound
// (0 = GOMAXPROCS, 1 = sequential). Every crash step is drawn from the seeded
// RNG before any run starts, and per-run verdicts are merged in run order, so
// the campaign's counts are identical at any parallelism.
func RandomCampaignP(w core.Workload, runs int, seed int64, parallelism int) (*RandomResult, error) {
	// Measure the fault-free execution length once.
	cfg := sim.Config{Seed: seed, Tracing: sim.TraceOff}
	w.Tune(&cfg)
	c := sim.NewCluster(cfg)
	w.Configure(c)
	base := c.Run()
	if err := w.Check(c, base); err != nil {
		return nil, fmt.Errorf("inject: fault-free run of %s incorrect: %w", w.Name(), err)
	}

	rng := rand.New(rand.NewSource(seed * 7919))
	steps := make([]int64, runs)
	for i := range steps {
		steps[i] = 1 + rng.Int63n(base.Steps)
	}

	// Each injection run is fully isolated in its own cluster; the
	// signature (or "" for a tolerated fault) comes back in the run's slot.
	sigs := parallel.Map(parallelism, runs, func(i int) string {
		plan := sim.NewObservationPlan(w.CrashTarget(), steps[i], w.RestartRoles())
		rcfg := sim.Config{Seed: seed, Tracing: sim.TraceOff, Plan: plan}
		w.Tune(&rcfg)
		rc := sim.NewCluster(rcfg)
		w.Configure(rc)
		out := rc.Run()
		checkErr := w.Check(rc, out)
		if !out.Completed || len(out.FatalLogs) > 0 || len(out.UncaughtExceptions) > 0 || checkErr != nil {
			if sig := failureSignature(out, checkErr); !expectedSig(w, sig) {
				return sig
			}
		}
		return ""
	})

	res := &RandomResult{Workload: w.Name(), Runs: runs, Failures: map[string]int{}}
	for _, sig := range sigs {
		if sig != "" {
			res.FailureRuns++
			res.Failures[sig]++
		}
	}
	return res, nil
}

// failureSignature fingerprints a failed run coarsely enough that repeated
// manifestations of one bug collapse to one signature, while different hang
// shapes stay distinct. Fatal logs and exceptions identify a failure more
// precisely than the hang they often also cause, so they take precedence.
func failureSignature(out *sim.Outcome, checkErr error) string {
	if len(out.FatalLogs) > 0 {
		return "fatal:" + stripPID(out.FatalLogs[0])
	}
	if len(out.UncaughtExceptions) > 0 {
		return "exception:" + stripPID(out.UncaughtExceptions[0])
	}
	if len(out.Hung) > 0 {
		// Fingerprint by the first hung main thread (cascaded waiters vary
		// run to run and would fragment one bug into many signatures).
		first := out.Hung[0]
		for _, h := range out.Hung {
			if h.Name == "main" && (first.Name != "main" || h.Thread < first.Thread) {
				first = h
			}
		}
		where := first.Reason
		if where == "" {
			where = first.Site
		}
		return "hang:" + roleOnly(first.PID) + "/" + first.Name + "@" + stripPID(where)
	}
	if checkErr != nil {
		return "check:" + checkErr.Error()
	}
	return "unknown"
}

func roleOnly(pid string) string {
	if i := strings.IndexByte(pid, '#'); i >= 0 {
		return pid[:i]
	}
	return pid
}

// stripPID removes "#N" incarnation suffixes so signatures are stable.
func stripPID(s string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] == '#' {
			i++
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func expectedSig(w core.Workload, sig string) bool {
	for _, pat := range w.ExpectedBehaviors() {
		if pat != "" && strings.Contains(sig, pat) {
			return true
		}
	}
	return false
}
