package inject

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fcatch/internal/apps/mapreduce"
	"fcatch/internal/apps/toy"
	"fcatch/internal/campaign"
	"fcatch/internal/core"
	"fcatch/internal/parallel"
	"fcatch/internal/sim"
)

// referenceRandomCampaign is the pre-engine RandomCampaignP, kept verbatim
// (modulo the hoisted signature helpers) as the parity oracle: the campaign
// engine's `random` strategy must reproduce its counts byte for byte.
func referenceRandomCampaign(w core.Workload, runs int, seed int64, parallelism int) (*RandomResult, error) {
	cfg := sim.Config{Seed: seed, Tracing: sim.TraceOff}
	w.Tune(&cfg)
	c := sim.NewCluster(cfg)
	w.Configure(c)
	base := c.Run()
	if err := w.Check(c, base); err != nil {
		return nil, fmt.Errorf("inject: fault-free run of %s incorrect: %w", w.Name(), err)
	}

	rng := rand.New(rand.NewSource(seed * 7919))
	steps := make([]int64, runs)
	for i := range steps {
		steps[i] = 1 + rng.Int63n(base.Steps)
	}

	sigs := parallel.Map(parallelism, runs, func(i int) string {
		plan := sim.NewObservationPlan(w.CrashTarget(), steps[i], w.RestartRoles())
		rcfg := sim.Config{Seed: seed, Tracing: sim.TraceOff, Plan: plan}
		w.Tune(&rcfg)
		rc := sim.NewCluster(rcfg)
		w.Configure(rc)
		out := rc.Run()
		checkErr := w.Check(rc, out)
		if !out.Completed || len(out.FatalLogs) > 0 || len(out.UncaughtExceptions) > 0 || checkErr != nil {
			if sig := campaign.Symptom(out, checkErr); !campaign.ExpectedSymptom(w, sig) {
				return sig
			}
		}
		return ""
	})

	res := &RandomResult{Workload: w.Name(), Runs: runs, Failures: map[string]int{}}
	for _, sig := range sigs {
		if sig != "" {
			res.FailureRuns++
			res.Failures[sig]++
		}
	}
	return res, nil
}

// TestRandomCampaignMatchesReference pins the refactor: RandomCampaignP now
// delegates to the campaign engine, and its output must equal the
// pre-refactor implementation exactly — same failure runs, same signature
// multiset — at sequential and maximal parallelism.
func TestRandomCampaignMatchesReference(t *testing.T) {
	workloads := []core.Workload{toy.New(), mapreduce.NewMR1()}
	for _, w := range workloads {
		for _, par := range []int{1, 0} {
			want, err := referenceRandomCampaign(w, 60, 3, par)
			if err != nil {
				t.Fatalf("%s: reference: %v", w.Name(), err)
			}
			got, err := RandomCampaignP(w, 60, 3, par)
			if err != nil {
				t.Fatalf("%s: engine: %v", w.Name(), err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s (parallelism %d): engine diverges from reference:\n got: %+v\nwant: %+v",
					w.Name(), par, got, want)
			}
		}
	}
}
