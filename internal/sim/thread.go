package sim

import (
	"fmt"

	"fcatch/internal/trace"
)

type threadState int

const (
	tsRunnable threadState = iota
	tsRunning
	tsBlocked
	tsDone
	tsKilled
)

// resumeMsg is what the scheduler hands a parked thread.
type resumeMsg struct {
	kill     bool
	timedOut bool  // a timed wait expired
	err      error // delivered error (e.g. RPC failure)
	val      Value // delivered value (e.g. RPC reply)
}

// killedPanic unwinds a thread whose process crashed (or whose run ended).
type killedPanic struct{}

// appPanic carries an uncaught application exception up the thread stack.
type appPanic struct {
	kind  string
	site  SiteID
	taint []trace.OpID
}

// ctlFrame is one scope's control-dependence contribution.
type ctlFrame struct {
	label string
	ctl   []trace.OpID
	loop  *loopState // non-nil when the scope is a sync-loop body
	// prevStack is the thread's interned callstack before this scope was
	// pushed; popping the scope restores it.
	prevStack trace.StackID
}

// Thread is one cooperative thread of a simulated process.
type Thread struct {
	id   int
	node *Node
	name string

	daemon     bool
	handlerCtx bool // inside an RPC/message/event handler (or its callees)

	state threadState
	// sem is the thread's park/unpark semaphore: one buffered token, sent by
	// whoever holds the scheduler baton, received by the parked thread. The
	// wake payload travels out-of-band in pendingWake (the channel send/receive
	// pair provides the happens-before edge), so a handoff moves zero bytes
	// through the channel.
	sem         chan struct{}
	blockSite   SiteID
	blockReason string
	blockToken  int64 // invalidates stale timed-wait timers
	killPending bool  // process crashed; scheduler will reap this thread

	// frame is the activation record (thread-start or handler-begin) ops
	// currently execute under; frameStack supports nested handler frames on
	// dispatcher threads.
	frame      trace.OpID
	frameStack []trace.OpID

	// stack is the thread's current interned callstack (thread name plus open
	// scope labels), maintained incrementally by pushScope/popScopesTo so
	// emitting a record copies one StackID instead of building a []string.
	// Stays NoStack when tracing is off.
	stack trace.StackID

	scopes []ctlFrame
	// ctlCache memoizes ctlTaints() across records: the merged control taints
	// of the open scopes change only when a scope is pushed, popped, or
	// guarded, which is far rarer than record emission. The cached slice is
	// rebuilt fresh on invalidation and never mutated in place, so records may
	// alias it.
	ctlCache []trace.OpID
	ctlDirty bool
	// ctlHist accumulates every control taint observed during the current
	// activation, surviving scope pops. RPC replies carry it, modelling the
	// static fact that branches inside a handler control its return value.
	ctlHist []trace.OpID

	// loopName is the active SyncLoop's name; hang reports use it so a
	// thread spinning in a polling loop is identifiable.
	loopName string

	// delivered holds the resumeMsg observed on the last wakeup (set by
	// pause, on the thread's own goroutine).
	delivered resumeMsg
	// pendingWake is the payload the next resume delivers, staged by wake()
	// (or by the kill/teardown paths) and consumed on the thread's goroutine.
	pendingWake resumeMsg
}

// spawnThread creates a thread on node n and makes it runnable. causor is the
// op that created it (NoOp for process roots).
func (c *Cluster) spawnThread(n *Node, name string, fn func(*Context), causor trace.OpID, daemon, handlerCtx bool) *Thread {
	c.nextTID++
	t := &Thread{
		id:         c.nextTID,
		node:       n,
		name:       name,
		daemon:     daemon,
		handlerCtx: handlerCtx,
		state:      tsRunnable,
		sem:        make(chan struct{}, 1),
		frame:      trace.NoOp,
	}
	c.threads = append(c.threads, t)
	n.threads = append(n.threads, t)
	if !daemon {
		c.liveNonDaemon++
	}

	if w := c.tracer.trace; w != nil {
		t.stack = w.PushFrame(trace.NoStack, w.Intern(name))
	}
	start := c.tracer.emit(t, opSpec{
		Kind:   trace.KThreadStart,
		Aux:    name,
		Causor: causor,
	})
	t.frame = start

	go func() {
		msg := t.park() // wait for first schedule
		if msg.kill {
			t.finish(c, tsKilled)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				switch p := r.(type) {
				case killedPanic:
					t.finish(c, tsKilled)
				case appPanic:
					c.out.UncaughtExceptions = append(c.out.UncaughtExceptions,
						fmt.Sprintf("%s@%s in %s/%s", p.kind, c.siteStr(p.site), t.node.PID, t.name))
					t.finish(c, tsDone)
				default:
					panic(r) // programming error in sim or app: surface it
				}
				return
			}
			t.finish(c, tsDone)
		}()
		ctx := &Context{c: c, t: t}
		fn(ctx)
	}()
	return t
}

// park blocks until the baton holder unparks this thread, then takes the
// staged wake payload.
func (t *Thread) park() resumeMsg {
	<-t.sem
	msg := t.pendingWake
	t.pendingWake = resumeMsg{}
	return msg
}

// unpark hands the baton to t. Only the baton holder may call it, and t is
// always parked (or about to park), so the buffered send never blocks.
func (t *Thread) unpark() { t.sem <- struct{}{} }

// finish emits the exit record and hands the baton onward.
func (t *Thread) finish(c *Cluster, st threadState) {
	t.state = st
	if st == tsDone {
		c.tracer.emit(t, opSpec{Kind: trace.KThreadExit})
	}
	if t.killPending {
		// Died (self-crash) before the reaper delivered the kill.
		t.killPending = false
		c.killPendingN--
	}
	if !t.daemon {
		c.liveNonDaemon--
	}
	c.deadThreads++
	c.releaseBaton(t) // cannot pick self again: the thread is no longer alive
}

// pause parks the thread and hands the baton to the scheduler, which runs
// inline on this goroutine. When the scheduler picks this same thread again
// the pause returns without parking at all — the switch-free fast path. A
// kill payload unwinds the thread via panic.
func (t *Thread) pause(c *Cluster) resumeMsg {
	var msg resumeMsg
	if c.releaseBaton(t) {
		msg = t.pendingWake
		t.pendingWake = resumeMsg{}
	} else {
		msg = t.park()
	}
	if msg.kill {
		panic(killedPanic{})
	}
	t.delivered = msg
	return msg
}

// yieldStep marks the thread runnable and gives up the baton for one step.
func (t *Thread) yieldStep(c *Cluster) {
	t.state = tsRunnable
	t.pause(c)
}

// block parks the thread in the blocked state until someone wakes it.
func (t *Thread) block(c *Cluster, reason string, site SiteID) resumeMsg {
	t.state = tsBlocked
	t.blockReason = reason
	t.blockSite = site
	return t.pause(c)
}

// wake marks a blocked thread runnable with a payload. It is a no-op for
// threads that are not blocked (e.g. already killed).
func (t *Thread) wake(msg resumeMsg) {
	if t.state != tsBlocked {
		return
	}
	t.state = tsRunnable
	t.pendingWake = msg
}

// alive reports whether the thread can still run.
func (t *Thread) alive() bool {
	return t.state == tsRunnable || t.state == tsBlocked || t.state == tsRunning
}

// ctlTaints returns the union of the control taints of all open scopes,
// rebuilt only when a scope operation invalidated the cache.
func (t *Thread) ctlTaints() []trace.OpID {
	if t.ctlDirty {
		t.ctlDirty = false
		var out []trace.OpID
		for i := range t.scopes {
			out = mergeTaints(out, t.scopes[i].ctl)
		}
		t.ctlCache = out
	}
	return t.ctlCache
}

// pushScope opens a control-dependence scope and extends the thread's
// interned callstack with its label.
func (t *Thread) pushScope(c *Cluster, fr ctlFrame) {
	fr.prevStack = t.stack
	if w := c.tracer.trace; w != nil {
		t.stack = w.PushFrame(t.stack, w.Intern(fr.label))
	}
	t.scopes = append(t.scopes, fr)
	if len(fr.ctl) > 0 {
		t.ctlDirty = true
	}
}

// popScopesTo closes scopes down to depth, restoring the callstack that was
// current before the lowest popped scope was pushed.
func (t *Thread) popScopesTo(depth int) {
	if len(t.scopes) <= depth {
		return
	}
	t.stack = t.scopes[depth].prevStack
	for i := depth; i < len(t.scopes); i++ {
		if len(t.scopes[i].ctl) > 0 {
			t.ctlDirty = true
			break
		}
	}
	t.scopes = t.scopes[:depth]
}
