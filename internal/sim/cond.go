package sim

import (
	"fmt"

	"fcatch/internal/trace"
)

// Cond is a condition-variable-like synchronization object with latch
// semantics: once signalled it stays signalled, and every pending or future
// Wait passes. (Java condition variables in the modelled systems are used
// through latch/future wrappers; latch semantics also keeps correct runs
// insensitive to benign signal/wait reorderings, so FCatch's pairing rule —
// a wait consumes the first signal timestamped after it — observes exactly
// the fragile orders.)
type Cond struct {
	node    *Node
	id      int64
	name    string
	res     string    // cached Res(), rendered once at creation
	resSym  trace.Sym // trace symbol for res, interned at first traced emit
	set     bool
	payload Value
	err     error
	waiters []*Thread
}

// NewCond allocates a condition object on the current node.
func (ctx *Context) NewCond(name string) *Cond {
	n := ctx.t.node
	n.nextObj++
	cv := &Cond{node: n, id: n.nextObj, name: name}
	cv.res = fmt.Sprintf("cv:%s:%s/%d", n.PID, name, cv.id)
	return cv
}

// Res is the trace resource ID of this condition instance. The name part is
// the condition's *class*: report deduplication strips the PID and instance
// number, so per-call instances (e.g. RPC reply latches) group together.
func (cv *Cond) Res() string { return cv.res }

// Signal sets the latch and wakes every waiter, delivering the first value
// (or true) as the wait result. Its disappearance (the signalling node
// crashed, the message that causes it was dropped) is the crash-regular
// hazard.
func (cv *Cond) Signal(ctx *Context, vs ...Value) {
	payload := any(true)
	if len(vs) > 0 {
		payload = vs[0].Data
	}
	cv.signalInternal(ctx, Derive(payload, vs...), nil, NoSite)
}

func (cv *Cond) signalInternal(ctx *Context, v Value, err error, site SiteID) {
	ctx.Do(OpReq{
		Kind:   trace.KSignal,
		Res:    cv.res,
		ResSym: &cv.resSym,
		Aux:    cv.name,
		Taint:  v.taint,
		Site:   site,
		Apply: func() {
			cv.set = true
			cv.payload = v
			cv.err = err
			for _, w := range cv.waiters {
				w.wake(resumeMsg{val: v, err: err})
			}
			cv.waiters = nil
		},
	})
}

// failInternal wakes waiters with an error without emitting a signal op —
// used by the RPC layer's fail-fast path (a TCP reset is not a signal).
func (cv *Cond) failInternal(err error) {
	cv.set = true
	cv.err = err
	for _, w := range cv.waiters {
		w.wake(resumeMsg{err: err})
	}
	cv.waiters = nil
}

// Wait blocks until the latch is signalled. The wait op is recorded at block
// time; it has no timeout, so a lost signal blocks the thread forever — the
// fault-intolerant case of Section 4.2.2.
func (cv *Cond) Wait(ctx *Context) (Value, error) {
	return cv.waitAt(ctx, 0, NoSite)
}

// WaitTimeout blocks until the latch is signalled or ticks elapse. The wait
// op carries the timed flag the timeout-pruning analysis looks for. On
// timeout it returns ErrRPCTimeout-free (false) semantics via err.
func (cv *Cond) WaitTimeout(ctx *Context, ticks int64) (Value, error) {
	if ticks <= 0 {
		panic("sim: WaitTimeout needs a positive timeout")
	}
	return cv.waitAt(ctx, ticks, NoSite)
}

var errWaitTimeout = fmt.Errorf("wait: timed out")

// ErrWaitTimeout reports whether err is a wait-timeout.
func ErrWaitTimeout(err error) bool { return err == errWaitTimeout }

func (cv *Cond) waitAt(ctx *Context, timeout int64, site SiteID) (Value, error) {
	var flags uint32
	if timeout > 0 {
		flags = trace.FlagTimedWait
	}
	if site == NoSite {
		site = ctx.site()
	}
	ctx.Do(OpReq{Kind: trace.KWait, Res: cv.res, ResSym: &cv.resSym, Aux: cv.name, Flags: flags, Site: site})
	if cv.set {
		return cv.payload, cv.err
	}
	t := ctx.t
	t.blockToken++
	cv.waiters = append(cv.waiters, t)
	if timeout > 0 {
		ctx.c.addTimedWaitTimer(ctx.c.clock+timeout, t)
	}
	msg := t.block(ctx.c, "wait:"+cv.name, site)
	if msg.timedOut {
		// Deregister: the latch may fire later for other waiters.
		for i, w := range cv.waiters {
			if w == t {
				cv.waiters = append(cv.waiters[:i], cv.waiters[i+1:]...)
				break
			}
		}
		return Value{}, errWaitTimeout
	}
	return msg.val, msg.err
}
