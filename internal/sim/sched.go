package sim

import "time"

// timer is a scheduled wakeup: either a thread wake (possibly a timed-wait
// expiry) or a scheduler-context callback (e.g. a planned role restart).
type timer struct {
	at    int64
	seq   int64
	t     *Thread
	token int64 // thread's blockToken at arm time; stale timers are ignored
	timed bool  // wake with timedOut=true (timed wait expiry)
	fn    func()
}

// timerHeap is a hand-rolled binary min-heap ordered by (at, seq). Concrete
// push/pop methods keep timers out of interface values, so arming or firing a
// timer never allocates once the backing array has grown to steady state.
type timerHeap []timer

func (h timerHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *timerHeap) push(tm timer) {
	*h = append(*h, tm)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *timerHeap) pop() timer {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = timer{} // release fn/thread references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

func (c *Cluster) addTimer(at int64, t *Thread, fn func()) {
	c.nextSeq++
	tm := timer{at: at, seq: c.nextSeq, t: t, fn: fn}
	if t != nil {
		tm.token = t.blockToken
	}
	if fn != nil {
		c.fnTimers++
	}
	c.timers.push(tm)
}

func (c *Cluster) addTimedWaitTimer(at int64, t *Thread) {
	c.nextSeq++
	c.timers.push(timer{at: at, seq: c.nextSeq, t: t, token: t.blockToken, timed: true})
}

// fireDue fires every timer due at or before the current clock. Returns
// whether any fired.
func (c *Cluster) fireDue() bool {
	fired := false
	for len(c.timers) > 0 && c.timers[0].at <= c.clock {
		tm := c.timers.pop()
		fired = true
		switch {
		case tm.fn != nil:
			c.fnTimers--
			tm.fn()
		case tm.t != nil:
			if tm.t.state == tsBlocked && tm.t.blockToken == tm.token {
				tm.t.wake(resumeMsg{timedOut: tm.timed})
			}
		}
	}
	return fired
}

// advanceToNextTimer jumps the clock forward to the next timer when the
// system is otherwise idle. Returns false when no timers remain.
func (c *Cluster) advanceToNextTimer() bool {
	if len(c.timers) == 0 {
		return false
	}
	if c.timers[0].at > c.clock {
		c.clock = c.timers[0].at
	}
	return c.fireDue()
}

// applyPlanAtStep fires the plan's step-anchored scenario events (the
// observation crash, and relative follow-up crashes) when their step
// arrives.
func (c *Cluster) applyPlanAtStep() {
	p := c.pendingPlan
	if p == nil || p.stepPending == 0 || c.clock < p.nextStepAt {
		return
	}
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Site != "" || ev.fired || !ev.armed || c.clock < ev.armedAt {
			continue
		}
		ev.fired = true
		c.armNextEvent(p, i)
		target := ev.Target
		if target == "" && ev.Delay > 0 {
			// A relative crash with no explicit target re-crashes the most
			// recently crashed role's current (restarted) incarnation.
			target = p.lastCrashRole
		}
		pid := target
		if n := c.nodes[pid]; n == nil {
			// Treat as a role name: crash its current incarnation.
			pid = c.Lookup(target)
		}
		firing := FaultFiring{Index: i, Action: ev.action.String(), Step: c.clock}
		if pid != "" {
			firing.Victim = c.injectCrash(pid, c.sitePlan, ev.Restart)
		}
		p.firings = append(p.firings, firing)
	}
	p.recountStep()
}

// workloadDone reports whether every non-daemon thread has finished and no
// scheduled callback (e.g. a planned role restart) is still pending — a
// restart will spawn fresh non-daemon work. Both conditions are tracked
// incrementally, so the check is O(1) per scheduler step.
func (c *Cluster) workloadDone() bool {
	return c.liveNonDaemon == 0 && c.fnTimers == 0
}

// runnable returns the runnable threads in thread-id order, reusing one
// scratch slice. Threads are spawned with ascending ids and c.threads keeps
// spawn order, so a single in-order scan yields the deterministic order the
// scheduler needs without sorting or allocating.
func (c *Cluster) runnable() []*Thread {
	out := c.runScratch[:0]
	for _, t := range c.threads {
		if t.state == tsRunnable {
			out = append(out, t)
		}
	}
	c.runScratch = out
	return out
}

// compactThreads drops finished threads from the scheduler's scan list once
// they outnumber the live ones. Live threads keep their relative (spawn-id)
// order, so runnable() still yields the deterministic order, and the trigger
// depends only on deterministic counters, so paired runs compact identically.
// Workloads that churn short-lived handler threads otherwise pay an
// ever-growing runnable scan per step.
func (c *Cluster) compactThreads() {
	w := 0
	for _, t := range c.threads {
		if t.alive() {
			c.threads[w] = t
			w++
		}
	}
	for i := w; i < len(c.threads); i++ {
		c.threads[i] = nil
	}
	c.threads = c.threads[:w]
	c.deadThreads = 0
}

// schedule runs the scheduler bookkeeping on the current goroutine — whichever
// thread (or Run itself) is releasing the baton — and picks what runs next.
// It returns the chosen thread with its wake payload staged in pendingWake,
// or nil when the run is over (workload complete, deadlock, or step budget).
//
// The sequencing exactly mirrors the classic central loop: after a normal
// step the due timers fire, then the plan crash is applied, crashed threads
// are reaped one at a time (the reaping flag marks re-entries from a kill
// unwind, which resume the reap scan without re-running the step-boundary
// work), and only then is a runnable thread chosen.
func (c *Cluster) schedule() *Thread {
	if !c.reaping {
		c.curThread = nil
		c.fireDue()
		if c.deadThreads > 64 && c.deadThreads*2 > len(c.threads) {
			c.compactThreads()
		}
	}
	for {
		if !c.reaping {
			c.applyPlanAtStep()
		}
		if c.killPendingN > 0 {
			for _, t := range c.threads {
				if t.killPending && t.alive() {
					t.killPending = false
					c.killPendingN--
					t.state = tsRunning
					t.pendingWake = resumeMsg{kill: true}
					c.reaping = true
					return t
				}
			}
		}
		c.reaping = false
		if c.workloadDone() {
			c.out.Completed = true
			return nil
		}
		runnable := c.runnable()
		if len(runnable) == 0 {
			if c.advanceToNextTimer() {
				continue
			}
			return nil // deadlock: blocked non-daemon threads remain
		}
		if c.clock >= c.cfg.MaxSteps {
			c.out.StepBudgetHit = true
			return nil
		}
		t := runnable[c.rng.Intn(len(runnable))]
		c.clock++
		c.curThread = t
		t.state = tsRunning
		return t
	}
}

// releaseBaton hands the baton from self to whatever runs next: it schedules
// inline on self's goroutine and either returns true (self was picked again —
// the switch-free fast path), unparks the chosen thread, or wakes the parked
// Run goroutine when the run is over. During teardown the baton always goes
// straight back to Run.
func (c *Cluster) releaseBaton(self *Thread) bool {
	if c.tearingDown {
		c.mainSem <- struct{}{}
		return false
	}
	next := c.schedule()
	if next == self {
		return true
	}
	if next == nil {
		c.mainSem <- struct{}{}
	} else {
		next.unpark()
	}
	return false
}

// Run executes the cluster to completion: until the workload finishes, the
// system deadlocks, or the step budget is exhausted. It returns the outcome;
// the trace (if tracing was enabled) is available via Trace().
func (c *Cluster) Run() *Outcome {
	if c.running {
		panic("sim: cluster already ran")
	}
	c.running = true
	c.startWall = time.Now()

	if first := c.schedule(); first != nil {
		first.unpark()
		<-c.mainSem // park until a thread's schedule() ends the run
	}

	// Record hang sites before tearing threads down.
	for _, t := range c.threads {
		if !t.daemon && t.alive() {
			reason := t.blockReason
			if t.state == tsRunnable {
				reason = "live (budget exhausted)"
			}
			if t.loopName != "" {
				reason = "loop:" + t.loopName
			}
			c.out.Hung = append(c.out.Hung, HangSite{
				PID: t.node.PID, Thread: t.id, Name: t.name,
				Site: c.siteStr(t.blockSite), Reason: reason,
			})
		}
	}

	// Unwind every remaining goroutine so nothing leaks.
	c.tearingDown = true
	for _, t := range c.threads {
		if t.alive() {
			t.state = tsRunning
			t.pendingWake = resumeMsg{kill: true}
			t.unpark()
			<-c.mainSem
		}
	}

	c.tracer.finish()
	c.out.Steps = c.clock
	if p := c.pendingPlan; p != nil {
		c.out.FaultFirings = p.firings
	}
	c.out.Elapsed = time.Since(c.startWall)
	if c.tracer.trace != nil {
		c.tracer.trace.BaselineNanos = c.out.Elapsed.Nanoseconds()
	}
	return &c.out
}
