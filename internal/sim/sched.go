package sim

import (
	"container/heap"
	"time"
)

// timer is a scheduled wakeup: either a thread wake (possibly a timed-wait
// expiry) or a scheduler-context callback (e.g. a planned role restart).
type timer struct {
	at    int64
	seq   int64
	t     *Thread
	token int64 // thread's blockToken at arm time; stale timers are ignored
	timed bool  // wake with timedOut=true (timed wait expiry)
	fn    func()
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

func (c *Cluster) addTimer(at int64, t *Thread, fn func()) {
	c.nextSeq++
	tm := timer{at: at, seq: c.nextSeq, t: t, fn: fn}
	if t != nil {
		tm.token = t.blockToken
	}
	heap.Push(&c.timers, tm)
}

func (c *Cluster) addTimedWaitTimer(at int64, t *Thread) {
	c.nextSeq++
	heap.Push(&c.timers, timer{at: at, seq: c.nextSeq, t: t, token: t.blockToken, timed: true})
}

// fireDue fires every timer due at or before the current clock. Returns
// whether any fired.
func (c *Cluster) fireDue() bool {
	fired := false
	for len(c.timers) > 0 && c.timers[0].at <= c.clock {
		tm := heap.Pop(&c.timers).(timer)
		fired = true
		switch {
		case tm.fn != nil:
			tm.fn()
		case tm.t != nil:
			if tm.t.state == tsBlocked && tm.t.blockToken == tm.token {
				tm.t.wake(resumeMsg{timedOut: tm.timed})
			}
		}
	}
	return fired
}

// advanceToNextTimer jumps the clock forward to the next timer when the
// system is otherwise idle. Returns false when no timers remain.
func (c *Cluster) advanceToNextTimer() bool {
	if len(c.timers) == 0 {
		return false
	}
	if c.timers[0].at > c.clock {
		c.clock = c.timers[0].at
	}
	return c.fireDue()
}

// processKills reaps threads whose process crashed: each is resumed once
// with a kill order so its goroutine unwinds.
func (c *Cluster) processKills() {
	for {
		var victim *Thread
		for _, t := range c.threads {
			if t.killPending && t.alive() {
				victim = t
				break
			}
		}
		if victim == nil {
			return
		}
		victim.killPending = false
		victim.state = tsRunning
		victim.resume <- resumeMsg{kill: true}
		<-c.yielded
	}
}

// applyPlanAtStep injects the observation crash when its step arrives.
func (c *Cluster) applyPlanAtStep() {
	p := c.pendingPlan
	if p == nil || p.crashDone || p.CrashAtStep < 0 || c.clock < p.CrashAtStep {
		return
	}
	p.crashDone = true
	pid := p.CrashPID
	if n := c.nodes[pid]; n == nil {
		// Treat as a role name: crash its current incarnation.
		pid = c.services[p.CrashPID]
	}
	if pid != "" {
		c.crashProcess(pid, "plan")
	}
}

// workloadDone reports whether every non-daemon thread has finished and no
// scheduled callback (e.g. a planned role restart) is still pending — a
// restart will spawn fresh non-daemon work.
func (c *Cluster) workloadDone() bool {
	for _, t := range c.threads {
		if !t.daemon && t.alive() {
			return false
		}
	}
	for _, tm := range c.timers {
		if tm.fn != nil {
			return false
		}
	}
	return true
}

// Run executes the cluster to completion: until the workload finishes, the
// system deadlocks, or the step budget is exhausted. It returns the outcome;
// the trace (if tracing was enabled) is available via Trace().
func (c *Cluster) Run() *Outcome {
	if c.running {
		panic("sim: cluster already ran")
	}
	c.running = true
	c.startWall = time.Now()
	heap.Init(&c.timers)

	for {
		c.applyPlanAtStep()
		c.processKills()
		if c.workloadDone() {
			c.out.Completed = true
			break
		}
		runnable := c.sortedRunnable()
		if len(runnable) == 0 {
			if c.advanceToNextTimer() {
				continue
			}
			break // deadlock: blocked non-daemon threads remain
		}
		if c.clock >= c.cfg.MaxSteps {
			c.out.StepBudgetHit = true
			break
		}
		t := runnable[c.rng.Intn(len(runnable))]
		c.clock++
		c.curThread = t
		t.state = tsRunning
		msg := t.pendingWake
		t.pendingWake = resumeMsg{}
		t.resume <- msg
		<-c.yielded
		c.curThread = nil
		c.fireDue()
	}

	// Record hang sites before tearing threads down.
	for _, t := range c.threads {
		if !t.daemon && t.alive() {
			reason := t.blockReason
			if t.state == tsRunnable {
				reason = "live (budget exhausted)"
			}
			if t.loopName != "" {
				reason = "loop:" + t.loopName
			}
			c.out.Hung = append(c.out.Hung, HangSite{
				PID: t.node.PID, Thread: t.id, Name: t.name,
				Site: t.blockSite, Reason: reason,
			})
		}
	}

	// Unwind every remaining goroutine so nothing leaks.
	for _, t := range c.threads {
		if t.alive() {
			t.state = tsRunning
			t.resume <- resumeMsg{kill: true}
			<-c.yielded
		}
	}

	c.tracer.finish()
	c.out.Steps = c.clock
	c.out.Elapsed = time.Since(c.startWall)
	if c.tracer.trace != nil {
		c.tracer.trace.BaselineNanos = c.out.Elapsed.Nanoseconds()
	}
	return &c.out
}
