package sim

import (
	"fcatch/internal/trace"
)

// opSpec is the pre-interning description of one record: the op layer fills
// it with the sim's dense site id plus plain strings, and the tracer interns
// them into the run's trace, so application code and substrates never touch
// symbol tables. ResSym, when non-nil, points at the emitting object's cached
// trace symbol for Res: the first traced emit interns Res and writes the Sym
// back through the pointer, and every later emit skips the string table.
type opSpec struct {
	Kind   trace.Kind
	Site   SiteID
	Res    string
	ResSym *trace.Sym
	Aux    string
	Target string
	Src    trace.OpID
	Causor trace.OpID
	Flags  uint32
	Taint  []trace.OpID
	Ctl    []trace.OpID
}

// tracer writes records through a trace.Writer sink, implementing the
// paper's selective tracing policy (Section 3.2): happens-before operations,
// storage operations and synchronization-loop reads are always recorded;
// plain heap accesses only when they execute inside an RPC/message/event
// handler (or its callees) — or everywhere in the exhaustive ablation mode.
// The sink streams bounded windows to Config.OnTraceWindow subscribers and,
// in TraceDiscard mode, skips retaining records in the trace entirely.
type tracer struct {
	c     *Cluster
	trace *trace.Trace
	sink  *trace.Writer
	// sysPID is the interned "system" PID for scheduler-context records.
	sysPID trace.Sym
}

func newTracer(c *Cluster) *tracer {
	tr := &tracer{c: c}
	if c.cfg.Tracing != TraceOff {
		tr.trace = trace.New()
		tr.sink = trace.NewWriter(tr.trace, c.cfg.TraceBatch)
		if c.cfg.OnTraceWindow != nil {
			tr.sink.Subscribe(c.cfg.OnTraceWindow)
		}
		if c.cfg.TraceDiscard {
			tr.sink.SetRetain(false)
		}
		tr.sysPID = tr.trace.Intern("system")
	}
	return tr
}

// finish flushes the final partial window to the sink's subscribers (called
// once, at the end of Run).
func (tr *tracer) finish() {
	if tr.sink != nil {
		tr.sink.Flush()
	}
}

// sym interns s into the run's trace (NoSym when s is empty).
func (tr *tracer) sym(s string) trace.Sym {
	if s == "" || tr.trace == nil {
		return trace.NoSym
	}
	return tr.trace.Intern(s)
}

// siteSym maps a sim SiteID to its trace Sym, interning the site string into
// the trace on first use. The lazy mapping preserves the exact first-emission
// interning order of the string-keyed tracer, so symbol numbering (and hence
// encoded trace bytes) stays byte-identical; steady state is one slice load.
func (tr *tracer) siteSym(id SiteID) trace.Sym {
	if id == NoSite {
		return trace.NoSym
	}
	c := tr.c
	s := c.siteSyms[id]
	if s == trace.NoSym {
		s = tr.trace.Intern(c.siteStrs[id])
		c.siteSyms[id] = s
	}
	return s
}

// internRes resolves the Res symbol, going through the caller's cache slot
// when one is provided (heap fields and conds emit against the same resource
// every time, so after the first emit the slot short-circuits the intern).
func (tr *tracer) internRes(res string, cache *trace.Sym) trace.Sym {
	if cache != nil {
		s := *cache
		if s == trace.NoSym && res != "" {
			s = tr.trace.Intern(res)
			*cache = s
		}
		return s
	}
	return tr.trace.Intern(res)
}

// shouldTrace applies the selectivity policy to one op kind.
func (tr *tracer) shouldTrace(t *Thread, k trace.Kind) bool {
	if tr.trace == nil {
		return false
	}
	switch k {
	case trace.KHeapRead, trace.KHeapWrite:
		if tr.c.cfg.Tracing == TraceExhaustive {
			return true
		}
		return t.handlerCtx
	case trace.KLoopRead:
		return true // identified sync-loop reads are traced everywhere
	}
	return true
}

// emit records an operation performed by thread t. It interns the op's
// strings, fills in the ambient fields (timestamp, pid, thread, frame, the
// thread's incrementally-maintained callstack, handler flag) and returns the
// new op's ID — or trace.NoOp when the record is not traced.
func (tr *tracer) emit(t *Thread, op opSpec) trace.OpID {
	if !tr.shouldTrace(t, op.Kind) {
		return trace.NoOp
	}
	w := tr.trace
	// Interning order (Site, Res, Aux, Target) matches the historical struct
	// literal evaluation order, keeping symbol numbering byte-identical.
	r := trace.Record{
		TS:      tr.c.clock,
		Machine: t.node.machineSym,
		PID:     t.node.pidSym,
		Thread:  t.id,
		Frame:   t.frame,
		Kind:    op.Kind,
		Site:    tr.siteSym(op.Site),
		Stack:   t.stack,
		Res:     tr.internRes(op.Res, op.ResSym),
		Src:     op.Src,
		Aux:     w.Intern(op.Aux),
		Target:  w.Intern(op.Target),
		Flags:   op.Flags,
		Causor:  op.Causor,
		Taint:   op.Taint,
		Ctl:     op.Ctl,
	}
	if t.handlerCtx {
		r.Flags |= trace.FlagHandlerCtx
	}
	if len(r.Ctl) == 0 {
		r.Ctl = t.ctlTaints()
	}
	tr.c.clock += tr.c.cfg.TraceTickCost
	id := tr.sink.Append(r)
	if op.Kind == trace.KThreadStart {
		w.AddPID(t.node.PID)
	}
	return id
}

// emitSystem records scheduler-context bookkeeping (crash/restart marks).
func (tr *tracer) emitSystem(op opSpec) trace.OpID {
	if tr.trace == nil {
		return trace.NoOp
	}
	w := tr.trace
	return tr.sink.Append(trace.Record{
		TS:     tr.c.clock,
		PID:    tr.sysPID,
		Kind:   op.Kind,
		Site:   tr.siteSym(op.Site),
		Res:    tr.internRes(op.Res, op.ResSym),
		Aux:    w.Intern(op.Aux),
		Target: w.Intern(op.Target),
		Flags:  op.Flags,
		Causor: op.Causor,
		Taint:  op.Taint,
		Ctl:    op.Ctl,
	})
}

// needSites reports whether op sites must be computed this run (they are
// needed for traces and for matching site-anchored fault events).
func (c *Cluster) needSites() bool {
	return c.tracer.trace != nil || (c.pendingPlan != nil && c.pendingPlan.siteEvents > 0)
}
