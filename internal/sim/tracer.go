package sim

import (
	"fcatch/internal/trace"
)

// tracer appends records to the run's trace, implementing the paper's
// selective tracing policy (Section 3.2): happens-before operations, storage
// operations and synchronization-loop reads are always recorded; plain heap
// accesses only when they execute inside an RPC/message/event handler (or
// its callees) — or everywhere in the exhaustive ablation mode.
type tracer struct {
	c     *Cluster
	trace *trace.Trace
}

func newTracer(c *Cluster) *tracer {
	tr := &tracer{c: c}
	if c.cfg.Tracing != TraceOff {
		tr.trace = trace.New()
	}
	return tr
}

// shouldTrace applies the selectivity policy to one record.
func (tr *tracer) shouldTrace(t *Thread, r *trace.Record) bool {
	if tr.trace == nil {
		return false
	}
	switch r.Kind {
	case trace.KHeapRead, trace.KHeapWrite:
		if tr.c.cfg.Tracing == TraceExhaustive {
			return true
		}
		return t.handlerCtx
	case trace.KLoopRead:
		return true // identified sync-loop reads are traced everywhere
	}
	return true
}

// emit records an operation performed by thread t. It fills in the ambient
// fields (timestamp, pid, thread, frame, callstack, handler flag) and
// returns the new op's ID — or trace.NoOp when the record is not traced.
func (tr *tracer) emit(t *Thread, r trace.Record) trace.OpID {
	if !tr.shouldTrace(t, &r) {
		return trace.NoOp
	}
	r.TS = tr.c.clock
	r.Machine = t.node.Machine
	r.PID = t.node.PID
	r.Thread = t.id
	r.Frame = t.frame
	r.Stack = t.labels()
	if t.handlerCtx {
		r.Flags |= trace.FlagHandlerCtx
	}
	if len(r.Ctl) == 0 {
		r.Ctl = t.ctlTaints()
	}
	tr.c.clock += tr.c.cfg.TraceTickCost
	id := tr.trace.Append(r)
	if r.Kind == trace.KThreadStart {
		tr.trace.AddPID(r.PID)
	}
	return id
}

// emitSystem records scheduler-context bookkeeping (crash/restart marks).
func (tr *tracer) emitSystem(r trace.Record) trace.OpID {
	if tr.trace == nil {
		return trace.NoOp
	}
	r.TS = tr.c.clock
	r.PID = "system"
	r.Frame = trace.NoOp
	return tr.trace.Append(r)
}

// needSites reports whether op sites must be computed this run (they are
// needed for traces and for matching trigger points).
func (c *Cluster) needSites() bool {
	return c.tracer.trace != nil || (c.pendingPlan != nil && len(c.pendingPlan.Triggers) > 0)
}
