package sim

import (
	"fcatch/internal/trace"
)

// opSpec is the pre-interning description of one record: the op layer fills
// it with plain strings and the tracer interns them into the run's trace,
// so application code and substrates never touch symbol tables.
type opSpec struct {
	Kind   trace.Kind
	Site   string
	Res    string
	Aux    string
	Target string
	Src    trace.OpID
	Causor trace.OpID
	Flags  uint32
	Taint  []trace.OpID
	Ctl    []trace.OpID
}

// tracer writes records through a trace.Writer sink, implementing the
// paper's selective tracing policy (Section 3.2): happens-before operations,
// storage operations and synchronization-loop reads are always recorded;
// plain heap accesses only when they execute inside an RPC/message/event
// handler (or its callees) — or everywhere in the exhaustive ablation mode.
// The sink streams bounded windows to Config.OnTraceWindow subscribers and,
// in TraceDiscard mode, skips retaining records in the trace entirely.
type tracer struct {
	c     *Cluster
	trace *trace.Trace
	sink  *trace.Writer
	// sysPID is the interned "system" PID for scheduler-context records.
	sysPID trace.Sym
}

func newTracer(c *Cluster) *tracer {
	tr := &tracer{c: c}
	if c.cfg.Tracing != TraceOff {
		tr.trace = trace.New()
		tr.sink = trace.NewWriter(tr.trace, c.cfg.TraceBatch)
		if c.cfg.OnTraceWindow != nil {
			tr.sink.Subscribe(c.cfg.OnTraceWindow)
		}
		if c.cfg.TraceDiscard {
			tr.sink.SetRetain(false)
		}
		tr.sysPID = tr.trace.Intern("system")
	}
	return tr
}

// finish flushes the final partial window to the sink's subscribers (called
// once, at the end of Run).
func (tr *tracer) finish() {
	if tr.sink != nil {
		tr.sink.Flush()
	}
}

// sym interns s into the run's trace (NoSym when s is empty).
func (tr *tracer) sym(s string) trace.Sym {
	if s == "" || tr.trace == nil {
		return trace.NoSym
	}
	return tr.trace.Intern(s)
}

// shouldTrace applies the selectivity policy to one op kind.
func (tr *tracer) shouldTrace(t *Thread, k trace.Kind) bool {
	if tr.trace == nil {
		return false
	}
	switch k {
	case trace.KHeapRead, trace.KHeapWrite:
		if tr.c.cfg.Tracing == TraceExhaustive {
			return true
		}
		return t.handlerCtx
	case trace.KLoopRead:
		return true // identified sync-loop reads are traced everywhere
	}
	return true
}

// emit records an operation performed by thread t. It interns the op's
// strings, fills in the ambient fields (timestamp, pid, thread, frame, the
// thread's incrementally-maintained callstack, handler flag) and returns the
// new op's ID — or trace.NoOp when the record is not traced.
func (tr *tracer) emit(t *Thread, op opSpec) trace.OpID {
	if !tr.shouldTrace(t, op.Kind) {
		return trace.NoOp
	}
	w := tr.trace
	r := trace.Record{
		TS:      tr.c.clock,
		Machine: t.node.machineSym,
		PID:     t.node.pidSym,
		Thread:  t.id,
		Frame:   t.frame,
		Kind:    op.Kind,
		Site:    w.Intern(op.Site),
		Stack:   t.stack,
		Res:     w.Intern(op.Res),
		Src:     op.Src,
		Aux:     w.Intern(op.Aux),
		Target:  w.Intern(op.Target),
		Flags:   op.Flags,
		Causor:  op.Causor,
		Taint:   op.Taint,
		Ctl:     op.Ctl,
	}
	if t.handlerCtx {
		r.Flags |= trace.FlagHandlerCtx
	}
	if len(r.Ctl) == 0 {
		r.Ctl = t.ctlTaints()
	}
	tr.c.clock += tr.c.cfg.TraceTickCost
	id := tr.sink.Append(r)
	if op.Kind == trace.KThreadStart {
		w.AddPID(t.node.PID)
	}
	return id
}

// emitSystem records scheduler-context bookkeeping (crash/restart marks).
func (tr *tracer) emitSystem(op opSpec) trace.OpID {
	if tr.trace == nil {
		return trace.NoOp
	}
	w := tr.trace
	return tr.sink.Append(trace.Record{
		TS:     tr.c.clock,
		PID:    tr.sysPID,
		Kind:   op.Kind,
		Site:   w.Intern(op.Site),
		Res:    w.Intern(op.Res),
		Aux:    w.Intern(op.Aux),
		Target: w.Intern(op.Target),
		Flags:  op.Flags,
		Causor: op.Causor,
		Taint:  op.Taint,
		Ctl:    op.Ctl,
	})
}

// needSites reports whether op sites must be computed this run (they are
// needed for traces and for matching trigger points).
func (c *Cluster) needSites() bool {
	return c.tracer.trace != nil || (c.pendingPlan != nil && len(c.pendingPlan.Triggers) > 0)
}
