package sim

import (
	"fmt"

	"fcatch/internal/trace"
)

// Context is the handle application code uses for every interaction with the
// simulated world. Each thread has its own Context; it is the instrumentation
// point where FCatch's tracer and the fault injector observe operations.
type Context struct {
	c *Cluster
	t *Thread
}

// Cluster returns the cluster this context belongs to.
func (ctx *Context) Cluster() *Cluster { return ctx.c }

// PID returns the current process id.
func (ctx *Context) PID() string { return ctx.t.node.PID }

// Role returns the current process role.
func (ctx *Context) Role() string { return ctx.t.node.Role }

// Machine returns the machine the current process runs on.
func (ctx *Context) Machine() string { return ctx.t.node.Machine }

// Self returns the current node.
func (ctx *Context) Self() *Node { return ctx.t.node }

// Scope pushes a callstack label (and a control-dependence scope) and
// returns the function that pops it; use `defer ctx.Scope("name")()`.
func (ctx *Context) Scope(label string) func() {
	ctx.t.pushScope(ctx.c, ctlFrame{label: label})
	depth := len(ctx.t.scopes)
	return func() {
		ctx.t.popScopesTo(depth - 1)
	}
}

// Guard records that subsequent operations in the current scope are
// control-dependent on v (the dynamic stand-in for the paper's WALA
// control-dependence analysis) and returns v's truthiness.
func (ctx *Context) Guard(v Value) bool {
	if len(ctx.t.scopes) == 0 {
		ctx.t.pushScope(ctx.c, ctlFrame{label: "fn"})
	}
	top := &ctx.t.scopes[len(ctx.t.scopes)-1]
	if len(v.taint) > 0 {
		top.ctl = mergeTaints(top.ctl, v.taint)
		ctx.t.ctlHist = mergeTaints(ctx.t.ctlHist, v.taint)
		ctx.t.ctlDirty = true
	}
	return v.Bool()
}

// Yield gives up the CPU for one scheduler step.
func (ctx *Context) Yield() { ctx.t.yieldStep(ctx.c) }

// Sleep blocks the thread for the given number of logical ticks.
func (ctx *Context) Sleep(ticks int64) {
	if ticks <= 0 {
		ctx.Yield()
		return
	}
	ctx.t.blockToken++
	ctx.c.addTimer(ctx.c.clock+ticks, ctx.t, nil)
	ctx.t.block(ctx.c, "sleep", NoSite)
}

// Now reads the system clock; the returned value is tainted by a time-read
// op, which is how the detectors see time-based loop exits (Section 4.2.2).
func (ctx *Context) Now() Value {
	id := ctx.c.tracer.emit(ctx.t, opSpec{Kind: trace.KTimeRead, Site: ctx.site()})
	v := V(ctx.c.clock)
	if id != trace.NoOp {
		v = v.withTaint1(id)
	}
	return v
}

// site computes the current static op ID if this run needs sites.
func (ctx *Context) site() SiteID {
	if !ctx.c.needSites() {
		return NoSite
	}
	return ctx.c.callsite()
}

// OpReq describes one operation for the generic op pipeline: trigger check →
// effect → record → trigger check → scheduler step. Storage substrates and
// the built-in ops all go through Do.
type OpReq struct {
	Kind   trace.Kind
	Res    string
	ResSym *trace.Sym // optional per-resource Sym cache slot (see opSpec)
	Aux    string
	Target string
	Src    trace.OpID
	Causor trace.OpID
	Flags  uint32
	Taint  []trace.OpID
	Site   SiteID // optional override; computed if NoSite
	IsSend bool

	// Apply performs the op's semantic effect (may be nil for pure reads).
	Apply func()
	// FlagsAfter, if set, contributes flags computed after Apply ran (e.g.
	// whether the operation failed).
	FlagsAfter func() uint32
	// PostEmit runs after the record is emitted but before the scheduler
	// step, i.e. while the thread still holds the baton. Substrates use it
	// to publish the op's ID (define-use bookkeeping) atomically with the
	// op's effect.
	PostEmit func(id trace.OpID)
}

// Do runs one operation through the pipeline and returns its op ID (NoOp if
// untraced) plus whether a fault-injection drop suppressed the effect and
// which drop it was.
func (ctx *Context) Do(req OpReq) (id trace.OpID, dropAction TriggerAction, dropped bool) {
	site := req.Site
	if site == NoSite {
		site = ctx.site()
	}
	dropAction, dropped = ctx.c.checkTrigger(site, Before, req.IsSend)
	if !dropped && req.Apply != nil {
		req.Apply()
	}
	if req.FlagsAfter != nil {
		req.Flags |= req.FlagsAfter()
	}
	op := opSpec{
		Kind: req.Kind, Res: req.Res, ResSym: req.ResSym, Aux: req.Aux,
		Target: req.Target, Src: req.Src, Causor: req.Causor,
		Flags: req.Flags, Taint: req.Taint, Site: site,
	}
	if dropped {
		op.Flags |= trace.FlagDropped
	}
	id = ctx.c.tracer.emit(ctx.t, op)
	if req.PostEmit != nil {
		req.PostEmit(id)
	}
	if a, d := ctx.c.checkTrigger(site, After, req.IsSend); d && !dropped {
		dropAction, dropped = a, d
	}
	ctx.t.yieldStep(ctx.c)
	return id, dropAction, dropped
}

// Go spawns a new thread on the current node. Its operations causally depend
// on this create op.
func (ctx *Context) Go(name string, fn func(*Context)) {
	ctx.goThread(name, fn, false)
}

// GoDaemon spawns a background thread that does not keep the workload alive
// (dispatchers, gossip, monitors).
func (ctx *Context) GoDaemon(name string, fn func(*Context)) {
	ctx.goThread(name, fn, true)
}

func (ctx *Context) goThread(name string, fn func(*Context), daemon bool) {
	id, _, _ := ctx.Do(OpReq{Kind: trace.KThreadCreate, Aux: name})
	ctx.c.spawnThread(ctx.t.node, name, fn, id, daemon, false)
}

// Emit enqueues an intra-node event; the registered handler runs on the
// node's event-dispatcher thread and causally depends on this enqueue.
func (ctx *Context) Emit(eventType string, payload Value) {
	id, _, _ := ctx.Do(OpReq{
		Kind:  trace.KEventEnq,
		Aux:   eventType,
		Taint: payload.taint,
	})
	ctx.t.node.eventQ.push(queuedItem{verb: eventType, payload: payload, causor: id})
}

// EmitOn enqueues an event on another process of the same machine or a
// remote process (used for cross-component notifications that are not
// messages in the modelled system).
func (ctx *Context) EmitOn(pid, eventType string, payload Value) {
	n := ctx.c.nodes[pid]
	if n == nil || n.crashed {
		return
	}
	id, _, _ := ctx.Do(OpReq{
		Kind:   trace.KEventEnq,
		Aux:    eventType,
		Target: pid,
		Taint:  payload.taint,
	})
	n.eventQ.push(queuedItem{verb: eventType, payload: payload, causor: id})
}

// runHandlerFrame opens an activation frame (KHandlerBegin) on the current
// thread, runs fn inside it with handler-context tracing enabled, and closes
// the frame. Uncaught app exceptions terminate the handler, not the process.
func (ctx *Context) runHandlerFrame(label string, causor trace.OpID, flags uint32, fn func()) {
	t := ctx.t
	if ctx.c.recoveryLabels[label] {
		flags |= trace.FlagRecoveryRoot
	}
	begin := ctx.c.tracer.emit(t, opSpec{
		Kind: trace.KHandlerBegin, Aux: label, Causor: causor, Flags: flags,
	})
	t.frameStack = append(t.frameStack, t.frame)
	t.frame = begin
	prevHandler := t.handlerCtx
	t.handlerCtx = true
	scopeDepth := len(t.scopes)
	t.pushScope(ctx.c, ctlFrame{label: label})
	prevHist := t.ctlHist
	t.ctlHist = nil

	defer func() {
		if r := recover(); r != nil {
			if p, ok := r.(appPanic); ok {
				ctx.c.out.UncaughtExceptions = append(ctx.c.out.UncaughtExceptions,
					fmt.Sprintf("%s@%s in %s handler %s", p.kind, ctx.c.siteStr(p.site), t.node.PID, label))
			} else {
				panic(r)
			}
		}
		t.popScopesTo(scopeDepth)
		t.handlerCtx = prevHandler
		t.ctlHist = prevHist
		ctx.c.tracer.emit(t, opSpec{Kind: trace.KHandlerEnd, Aux: label})
		t.frame = t.frameStack[len(t.frameStack)-1]
		t.frameStack = t.frameStack[:len(t.frameStack)-1]
	}()
	fn()
}

// --- Logging and exception sinks (Section 4.3.3 impact sources) ---

// Log records an informational message (not an impact sink).
func (ctx *Context) Log(msg string) { _ = msg }

// LogError records an error-level log; values passed taint the sink.
func (ctx *Context) LogError(msg string, vs ...Value) {
	ctx.c.out.ErrorLogs = append(ctx.c.out.ErrorLogs, fmt.Sprintf("%s@%s", msg, ctx.PID()))
	ctx.Do(OpReq{Kind: trace.KLogError, Aux: msg, Taint: taintsOf(vs...)})
}

// LogFatal records a severe/fatal-level log — a failure-prone local impact.
func (ctx *Context) LogFatal(msg string, vs ...Value) {
	ctx.c.out.FatalLogs = append(ctx.c.out.FatalLogs, fmt.Sprintf("%s@%s", msg, ctx.PID()))
	ctx.Do(OpReq{Kind: trace.KLogFatal, Aux: msg, Taint: taintsOf(vs...)})
}

// StartService records the startup of a service — a failure-prone local
// impact when influenced by a recovery read.
func (ctx *Context) StartService(name string, vs ...Value) {
	ctx.Do(OpReq{Kind: trace.KServiceStart, Aux: name, Taint: taintsOf(vs...)})
}

// AppError is a thrown application exception.
type AppError struct {
	Kind string
	Site string
}

func (e *AppError) Error() string { return fmt.Sprintf("%s@%s", e.Kind, e.Site) }

// Throw raises an application exception tainted by vs. If no Try encloses
// it, the thread (or handler) dies and the outcome records it as uncaught.
func (ctx *Context) Throw(kind string, vs ...Value) {
	site := ctx.site()
	ctx.Do(OpReq{Kind: trace.KThrow, Aux: kind, Taint: taintsOf(vs...), Site: site})
	panic(appPanic{kind: kind, site: site, taint: taintsOf(vs...)})
}

// Try runs fn, catching application exceptions (never simulator kills). A
// caught exception is a *handled* exception: it is recorded as such and does
// not fail the run — the paper's "well-handled exception" false-positive
// category.
func (ctx *Context) Try(fn func()) (err *AppError) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := r.(appPanic)
			if !ok {
				panic(r) // killedPanic or a real bug: keep unwinding
			}
			ctx.Do(OpReq{Kind: trace.KCatch, Aux: p.kind, Taint: p.taint, Site: p.site})
			ctx.c.out.HandledExceptions = append(ctx.c.out.HandledExceptions,
				fmt.Sprintf("%s@%s in %s", p.kind, ctx.c.siteStr(p.site), ctx.PID()))
			err = &AppError{Kind: p.kind, Site: ctx.c.siteStr(p.site)}
		}
	}()
	fn()
	return nil
}
