package sim_test

import (
	"fmt"
	"testing"

	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// runCluster builds a single-process cluster around fn and runs it.
func runCluster(t *testing.T, cfg sim.Config, fn func(*sim.Context)) (*sim.Cluster, *sim.Outcome) {
	t.Helper()
	c := sim.NewCluster(cfg)
	c.StartProcess("node", "m0", fn)
	out := c.Run()
	return c, out
}

func traced(cfg sim.Config) sim.Config {
	cfg.Tracing = sim.TraceSelective
	return cfg
}

func TestRunCompletesWhenMainFinishes(t *testing.T) {
	_, out := runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		ctx.Yield()
	})
	if !out.Completed {
		t.Fatalf("run did not complete: %+v", out)
	}
	if out.Steps == 0 {
		t.Fatal("no steps executed")
	}
}

func TestDaemonsDoNotBlockCompletion(t *testing.T) {
	_, out := runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		ctx.GoDaemon("bg", func(ctx *sim.Context) {
			for {
				ctx.Sleep(50)
			}
		})
		ctx.Sleep(10)
	})
	if !out.Completed {
		t.Fatalf("daemon kept the run alive: %+v", out.Hung)
	}
}

func TestNonDaemonKeepsRunAlive(t *testing.T) {
	val := 0
	_, out := runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		ctx.Go("worker", func(ctx *sim.Context) {
			ctx.Sleep(200)
			val = 42
		})
	})
	if !out.Completed || val != 42 {
		t.Fatalf("worker did not finish before the run ended (val=%d)", val)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	var woke int64
	c.StartProcess("node", "m0", func(ctx *sim.Context) {
		ctx.Sleep(500)
		woke = ctx.Cluster().Clock()
	})
	c.Run()
	if woke < 500 {
		t.Fatalf("woke at %d, want >= 500", woke)
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, out := runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		cv := ctx.NewCond("never")
		_, _ = cv.Wait(ctx)
	})
	if out.Completed {
		t.Fatal("deadlocked run reported completed")
	}
	if len(out.Hung) != 1 || out.Hung[0].Reason != "wait:never" {
		t.Fatalf("hang not attributed to the wait: %+v", out.Hung)
	}
}

func TestStepBudget(t *testing.T) {
	_, out := runCluster(t, sim.Config{Seed: 1, MaxSteps: 200}, func(ctx *sim.Context) {
		for {
			ctx.Yield()
		}
	})
	if out.Completed || !out.StepBudgetHit {
		t.Fatalf("budget not enforced: %+v", out)
	}
}

func TestCondSignalThenWaitIsLatch(t *testing.T) {
	got := ""
	runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		cv := ctx.NewCond("latch")
		cv.Signal(ctx, sim.V("payload"))
		v, err := cv.Wait(ctx) // already set: returns immediately
		if err != nil {
			t.Errorf("wait after signal errored: %v", err)
		}
		got = v.Str()
	})
	if got != "payload" {
		t.Fatalf("latch payload = %q, want %q", got, "payload")
	}
}

func TestCondWaitThenSignalAcrossThreads(t *testing.T) {
	got := ""
	_, out := runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		cv := ctx.NewCond("cross")
		ctx.Go("signaller", func(ctx *sim.Context) {
			ctx.Sleep(50)
			cv.Signal(ctx, sim.V("hi"))
		})
		v, _ := cv.Wait(ctx)
		got = v.Str()
	})
	if !out.Completed || got != "hi" {
		t.Fatalf("cross-thread signal failed: completed=%v got=%q", out.Completed, got)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	var timedOut bool
	var at int64
	runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		cv := ctx.NewCond("lonely")
		_, err := cv.WaitTimeout(ctx, 300)
		timedOut = sim.ErrWaitTimeout(err)
		at = ctx.Cluster().Clock()
	})
	if !timedOut {
		t.Fatal("timed wait did not time out")
	}
	if at < 300 {
		t.Fatalf("timed out too early: clock=%d", at)
	}
}

func TestCondTimeoutThenLateSignalDoesNotCrash(t *testing.T) {
	_, out := runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		cv := ctx.NewCond("late")
		ctx.Go("late-signaller", func(ctx *sim.Context) {
			ctx.Sleep(500)
			cv.Signal(ctx)
		})
		if _, err := cv.WaitTimeout(ctx, 100); !sim.ErrWaitTimeout(err) {
			t.Error("expected timeout before the late signal")
		}
	})
	if !out.Completed {
		t.Fatalf("run hung: %+v", out.Hung)
	}
}

func TestHeapObjectRoundTrip(t *testing.T) {
	runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		obj := ctx.NewObject("Thing")
		obj.Set(ctx, "f", sim.V(7))
		if got := obj.Get(ctx, "f").Int(); got != 7 {
			t.Errorf("Get = %d, want 7", got)
		}
		if obj.Get(ctx, "missing").Data != nil {
			t.Error("missing field should be nil")
		}
	})
}

func TestNamedObjectIsSingletonPerNode(t *testing.T) {
	runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		a := ctx.NamedObject("shared")
		b := ctx.NamedObject("shared")
		if a != b {
			t.Error("NamedObject returned two objects for one name")
		}
		a.Set(ctx, "x", sim.V(1))
		done := ctx.NewCond("done")
		ctx.Go("other", func(ctx *sim.Context) {
			if ctx.NamedObject("shared").Get(ctx, "x").Int() != 1 {
				t.Error("named object not shared across threads")
			}
			done.Signal(ctx)
		})
		_, _ = done.Wait(ctx)
	})
}

func TestCrossProcessHeapAccessPanics(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	var obj *sim.Object
	ready := make(chan struct{}, 1)
	_ = ready
	c.StartProcess("a", "m0", func(ctx *sim.Context) {
		obj = ctx.NewObject("private")
		ctx.Sleep(100)
	})
	c.StartProcess("b", "m1", func(ctx *sim.Context) {
		ctx.Sleep(20)
		defer func() {
			if recover() == nil {
				t.Error("cross-process heap access did not panic")
			}
		}()
		obj.Set(ctx, "x", sim.V(1))
	})
	defer func() { recover() }() // the panic propagates out of Run
	c.Run()
}

func TestValueTaintFlow(t *testing.T) {
	runCluster(t, traced(sim.Config{Seed: 1}), func(ctx *sim.Context) {
		ctx.Go("h", func(ctx *sim.Context) {}) // ensure tracer sees activity
		obj := ctx.NamedObject("o")
		obj.Set(ctx, "src", sim.V("x"))
		// Reads outside handlers are untraced under selective tracing, so
		// they add no taint id — but stored taints still flow.
		v := obj.Get(ctx, "src")
		d := sim.Derive("y", v, sim.V("z"))
		if d.Str() != "y" {
			t.Errorf("Derive data = %q", d.Str())
		}
	})
}

func TestGuardReturnsTruthiness(t *testing.T) {
	runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		if !ctx.Guard(sim.V(true)) || ctx.Guard(sim.V(false)) {
			t.Error("Guard truthiness wrong for bools")
		}
		if !ctx.Guard(sim.V("s")) || ctx.Guard(sim.V("")) {
			t.Error("Guard truthiness wrong for strings")
		}
		if !ctx.Guard(sim.V(1)) || ctx.Guard(sim.V(0)) {
			t.Error("Guard truthiness wrong for ints")
		}
	})
}

func TestMessageDelivery(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	var got []string
	c.StartProcess("rx", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleMsg("ping", func(ctx *sim.Context, m sim.Message) {
			got = append(got, m.Payload.Str())
		})
		ctx.Sleep(300)
	})
	c.StartProcess("tx", "m1", func(ctx *sim.Context) {
		for i := 0; i < 3; i++ {
			if err := ctx.Send("rx", "ping", sim.V(fmt.Sprintf("p%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	c.Run()
	if len(got) != 3 || got[0] != "p0" || got[2] != "p2" {
		t.Fatalf("messages not delivered in order: %v", got)
	}
}

func TestMessageStashUntilHandlerRegistered(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	var got string
	c.StartProcess("rx", "m0", func(ctx *sim.Context) {
		ctx.Sleep(200) // handler registered late
		ctx.Self().HandleMsg("early", func(ctx *sim.Context, m sim.Message) {
			got = m.Payload.Str()
		})
		ctx.Sleep(50)
	})
	c.StartProcess("tx", "m1", func(ctx *sim.Context) {
		_ = ctx.Send("rx", "early", sim.V("stashed"))
	})
	c.Run()
	if got != "stashed" {
		t.Fatalf("early message lost: got %q", got)
	}
}

func TestSendToUnknownRole(t *testing.T) {
	runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		if err := ctx.Send("ghost", "x", sim.V(1)); err != sim.ErrNoRoute {
			t.Errorf("send to unknown role: err = %v, want ErrNoRoute", err)
		}
	})
}

func TestRPCBasics(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, RPCFailFast: true})
	c.StartProcess("srv", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleRPC("Echo", func(ctx *sim.Context, args []sim.Value) sim.Value {
			return sim.Derive("echo:"+args[0].Str(), args[0])
		})
		ctx.Sleep(300)
	})
	var got string
	var err error
	c.StartProcess("cli", "m1", func(ctx *sim.Context) {
		var v sim.Value
		v, err = ctx.Call("srv", "Echo", sim.V("hi"))
		got = v.Str()
	})
	out := c.Run()
	if !out.Completed || err != nil || got != "echo:hi" {
		t.Fatalf("rpc: completed=%v err=%v got=%q", out.Completed, err, got)
	}
}

func TestRPCStashedUntilHandlerRegistered(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, RPCFailFast: true})
	c.StartProcess("srv", "m0", func(ctx *sim.Context) {
		ctx.Sleep(150)
		ctx.Self().HandleRPC("Late", func(ctx *sim.Context, args []sim.Value) sim.Value {
			return sim.V("late-ok")
		})
		ctx.Sleep(100)
	})
	var got string
	c.StartProcess("cli", "m1", func(ctx *sim.Context) {
		v, err := ctx.Call("srv", "Late")
		if err != nil {
			t.Errorf("late call: %v", err)
		}
		got = v.Str()
	})
	c.Run()
	if got != "late-ok" {
		t.Fatalf("stashed rpc lost: %q", got)
	}
}

func TestRPCRemoteException(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, RPCFailFast: true})
	c.StartProcess("srv", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleRPC("Boom", func(ctx *sim.Context, args []sim.Value) sim.Value {
			ctx.Throw("KaboomException")
			return sim.Value{}
		})
		ctx.Sleep(300)
	})
	var err error
	c.StartProcess("cli", "m1", func(ctx *sim.Context) {
		_, err = ctx.Call("srv", "Boom")
	})
	out := c.Run()
	if !out.Completed {
		t.Fatalf("run hung: %+v", out.Hung)
	}
	re, ok := err.(*sim.RemoteError)
	if !ok || re.Kind != "KaboomException" {
		t.Fatalf("remote exception not propagated: %v", err)
	}
}

func TestThrowAndTry(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		err := ctx.Try(func() {
			ctx.Throw("HandledException", sim.V("why"))
		})
		if err == nil || err.Kind != "HandledException" {
			t.Errorf("Try did not catch: %v", err)
		}
	})
	out := c.Run()
	if len(out.UncaughtExceptions) != 0 {
		t.Fatalf("caught exception recorded as uncaught: %v", out.UncaughtExceptions)
	}
	if len(out.HandledExceptions) != 1 {
		t.Fatalf("handled exceptions = %v", out.HandledExceptions)
	}
}

func TestUncaughtExceptionKillsThreadNotRun(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	survived := false
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		ctx.Go("dies", func(ctx *sim.Context) {
			ctx.Throw("UnhandledException")
		})
		ctx.Sleep(100)
		survived = true
	})
	out := c.Run()
	if !out.Completed || !survived {
		t.Fatalf("uncaught exception broke the whole run: %+v", out)
	}
	if len(out.UncaughtExceptions) != 1 {
		t.Fatalf("uncaught = %v", out.UncaughtExceptions)
	}
}

func TestEventDispatchCausality(t *testing.T) {
	c := sim.NewCluster(traced(sim.Config{Seed: 1}))
	handled := false
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleEvent("tick", func(ctx *sim.Context, payload sim.Value) {
			handled = true
		})
		ctx.Emit("tick", sim.V("now"))
		ctx.Sleep(100)
	})
	c.Run()
	if !handled {
		t.Fatal("event never handled")
	}
	// The handler frame must causally depend on the enqueue op.
	tr := c.Trace()
	var enq, frame trace.OpID
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Kind == trace.KEventEnq && tr.Str(r.Aux) == "tick" {
			enq = r.ID
		}
		if r.Kind == trace.KHandlerBegin && tr.Str(r.Aux) == "event:tick" {
			frame = r.Causor
		}
	}
	if enq == trace.NoOp || frame != enq {
		t.Fatalf("handler causor = %d, want enqueue op %d", frame, enq)
	}
}

func TestSyncLoopExitsOnCondition(t *testing.T) {
	iter := 0
	_, out := runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		obj := ctx.NamedObject("o")
		ctx.Go("setter", func(ctx *sim.Context) {
			ctx.Sleep(120)
			obj.Set(ctx, "flag", sim.V(true))
		})
		ctx.SyncLoop(sim.LoopOpts{Name: "poll", SleepTicks: 20}, func(ctx *sim.Context) sim.Value {
			iter++
			return obj.Get(ctx, "flag")
		})
	})
	if !out.Completed || iter < 2 {
		t.Fatalf("loop did not poll then exit (iters=%d completed=%v)", iter, out.Completed)
	}
}

func TestBoundedLoopStopsAtMaxIters(t *testing.T) {
	iter := 0
	runCluster(t, sim.Config{Seed: 1}, func(ctx *sim.Context) {
		ctx.SyncLoop(sim.LoopOpts{Name: "bounded", SleepTicks: 5, Bounded: true, MaxIters: 7}, func(ctx *sim.Context) sim.Value {
			iter++
			return sim.V(false)
		})
	})
	if iter != 7 {
		t.Fatalf("bounded loop ran %d iters, want 7", iter)
	}
}

func TestNowCarriesTimeTaint(t *testing.T) {
	c := sim.NewCluster(traced(sim.Config{Seed: 1}))
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		v := ctx.Now()
		if len(v.Taint()) != 1 {
			t.Errorf("Now taint = %v, want one time-read op", v.Taint())
		}
	})
	c.Run()
}
