package sim

import (
	"fcatch/internal/trace"
)

// loopState marks a scope as a sync-loop condition body; heap reads under it
// are recorded as loop reads.
type loopState struct {
	reads []trace.OpID
}

// currentLoop returns the innermost sync-loop scope, or nil.
func (t *Thread) currentLoop() *loopState {
	for i := len(t.scopes) - 1; i >= 0; i-- {
		if t.scopes[i].loop != nil {
			return t.scopes[i].loop
		}
	}
	return nil
}

// LoopOpts configures a synchronization-style polling loop.
type LoopOpts struct {
	// Name labels the loop in traces and reports.
	Name string
	// SleepTicks is how long the loop relinquishes the CPU between
	// iterations. The paper's static heuristic (Section 6) requires a loop
	// to relinquish the CPU to count as likely-synchronization.
	SleepTicks int64
	// Bounded marks loops statically bounded by a constant or container
	// size; these fail the likely-synchronization heuristic and are not
	// instrumented as sync loops.
	Bounded bool
	// MaxIters caps bounded loops (ignored for unbounded ones).
	MaxIters int
}

// SyncLoop runs body until the condition value it returns is truthy, sleeping
// between iterations — the custom while-loop synchronization idiom (e.g.
// HMaster's region-in-transition polling in Figure 6).
//
// For unbounded CPU-relinquishing loops (the paper's likely-synchronization
// heuristic) FCatch traces the loop's condition reads and its exit
// condition's taints; a heap write from another thread whose value feeds the
// exit is a custom signal, and its disappearance hangs this loop.
func (ctx *Context) SyncLoop(opts LoopOpts, body func(*Context) Value) Value {
	likelySync := !opts.Bounded && opts.SleepTicks > 0
	if likelySync {
		ctx.Do(OpReq{Kind: trace.KLoopEnter, Aux: opts.Name})
	}
	prevLoop := ctx.t.loopName
	ctx.t.loopName = opts.Name
	defer func() { ctx.t.loopName = prevLoop }()
	iters := 0
	for {
		var cond Value
		func() {
			depth := len(ctx.t.scopes)
			frame := ctlFrame{label: "loop:" + opts.Name}
			if likelySync {
				frame.loop = &loopState{}
			}
			ctx.t.pushScope(ctx.c, frame)
			defer func() { ctx.t.popScopesTo(depth) }()
			cond = body(ctx)
		}()
		iters++
		if cond.Bool() {
			if likelySync {
				ctx.Do(OpReq{Kind: trace.KLoopExit, Aux: opts.Name, Taint: cond.taint})
			}
			return cond
		}
		if opts.Bounded && opts.MaxIters > 0 && iters >= opts.MaxIters {
			return cond
		}
		if opts.SleepTicks > 0 {
			ctx.Sleep(opts.SleepTicks)
		} else {
			ctx.Yield()
		}
	}
}
