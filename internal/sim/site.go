package sim

import (
	"fmt"
	"runtime"
	"strings"
)

// callsite walks up the Go call stack to the first frame outside the
// simulator and storage substrates and renders it as "file.go:line" — the
// static operation ID the paper gets from bytecode positions. Sites are
// stable across runs (they are source positions), which is what lets the
// triggering module aim a fault at a reported operation.
//
// Program counters are memoized in the per-cluster cache: each distinct PC is
// symbolized once per run (the value "" marks simulator/storage frames to
// skip), so the steady state is one map probe per frame instead of a
// CallersFrames walk and a Sprintf per traced op.
func callsite(cache map[uintptr]string) string {
	var pcs [24]uintptr
	n := runtime.Callers(3, pcs[:])
	for _, pc := range pcs[:n] {
		s, ok := cache[pc]
		if !ok {
			s = resolvePC(pc)
			cache[pc] = s
		}
		if s != "" {
			return s
		}
	}
	return "unknown"
}

// resolvePC renders the site for one call PC, expanding inlined frames; it
// returns "" when every frame at the PC belongs to the sim/storage substrate.
func resolvePC(pc uintptr) string {
	frames := runtime.CallersFrames([]uintptr{pc})
	for {
		fr, more := frames.Next()
		if fr.File == "" {
			break
		}
		if !strings.Contains(fr.File, "/internal/sim/") &&
			!strings.Contains(fr.File, "/internal/storage/") {
			return fmt.Sprintf("%s:%d", trimPath(fr.File), fr.Line)
		}
		if !more {
			break
		}
	}
	return ""
}

// trimPath keeps the last three path segments, enough to be unique and
// readable ("internal/apps/hbase/master.go").
func trimPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 3 {
		return p
	}
	return strings.Join(parts[len(parts)-3:], "/")
}
