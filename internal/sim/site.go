package sim

import (
	"fmt"
	"runtime"
	"strings"
)

// callsite walks up the Go call stack to the first frame outside the
// simulator and storage substrates and renders it as "file.go:line" — the
// static operation ID the paper gets from bytecode positions. Sites are
// stable across runs (they are source positions), which is what lets the
// triggering module aim a fault at a reported operation.
func callsite() string {
	var pcs [24]uintptr
	n := runtime.Callers(3, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		fr, more := frames.Next()
		if fr.File == "" {
			break
		}
		if !strings.Contains(fr.File, "/internal/sim/") &&
			!strings.Contains(fr.File, "/internal/storage/") {
			return fmt.Sprintf("%s:%d", trimPath(fr.File), fr.Line)
		}
		if !more {
			break
		}
	}
	return "unknown"
}

// trimPath keeps the last three path segments, enough to be unique and
// readable ("internal/apps/hbase/master.go").
func trimPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 3 {
		return p
	}
	return strings.Join(parts[len(parts)-3:], "/")
}
