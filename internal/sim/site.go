package sim

import (
	"fmt"
	"runtime"
	"strings"
)

// SiteID is a dense, cluster-local identity for a static operation site
// ("file.go:line", the RPC pseudo-sites, "plan", "unknown"). Hot paths —
// trigger matching, occurrence counting, hang bookkeeping, tracing — compare
// and index SiteIDs; the string form lives in the cluster's site table and is
// rendered only at the boundary (outcomes, reports, trace symbol tables).
type SiteID uint32

// NoSite is the interned form of the empty site (no site computed this run).
const NoSite SiteID = 0

// callsite walks up the Go call stack to the first frame outside the
// simulator and storage substrates — the static operation ID the paper gets
// from bytecode positions. Sites are stable across runs (they are source
// positions), which is what lets the triggering module aim a fault at a
// reported operation.
//
// Program counters are memoized in the per-cluster cache: each distinct PC is
// symbolized and interned once per run (NoSite marks simulator/storage frames
// to skip), so the steady state is one map probe per frame. Most app frames
// sit within the first few callers, so the common case captures a short PC
// window and only falls back to the historical 24-frame window when the near
// frames are all substrate.
func (c *Cluster) callsite() SiteID {
	var pcs [8]uintptr
	n := runtime.Callers(3, pcs[:])
	for _, pc := range pcs[:n] {
		if id, ok := c.siteCache[pc]; ok {
			if id != NoSite {
				return id
			}
			continue
		}
		id := c.internSite(resolvePC(pc))
		c.siteCache[pc] = id
		if id != NoSite {
			return id
		}
	}
	if n == len(pcs) {
		// Deep stack: examine the rest of the historical 24-frame window.
		var deep [16]uintptr
		dn := runtime.Callers(3+len(pcs), deep[:])
		for _, pc := range deep[:dn] {
			if id, ok := c.siteCache[pc]; ok {
				if id != NoSite {
					return id
				}
				continue
			}
			id := c.internSite(resolvePC(pc))
			c.siteCache[pc] = id
			if id != NoSite {
				return id
			}
		}
	}
	return c.siteUnknown
}

// resolvePC renders the site for one call PC, expanding inlined frames; it
// returns "" when every frame at the PC belongs to the sim/storage substrate.
func resolvePC(pc uintptr) string {
	frames := runtime.CallersFrames([]uintptr{pc})
	for {
		fr, more := frames.Next()
		if fr.File == "" {
			break
		}
		if !strings.Contains(fr.File, "/internal/sim/") &&
			!strings.Contains(fr.File, "/internal/storage/") {
			return fmt.Sprintf("%s:%d", trimPath(fr.File), fr.Line)
		}
		if !more {
			break
		}
	}
	return ""
}

// trimPath keeps the last three path segments, enough to be unique and
// readable ("internal/apps/hbase/master.go").
func trimPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 3 {
		return p
	}
	return strings.Join(parts[len(parts)-3:], "/")
}
