package sim

import (
	"fmt"

	"fcatch/internal/trace"
)

// fieldSlot stores a heap field plus the bookkeeping the detectors need: the
// op that last defined it (the define–use Src link) and the taints the
// stored value carried.
type fieldSlot struct {
	val       Value
	lastWrite trace.OpID
	res       string    // cached resource ID, rendered once per field
	resSym    trace.Sym // trace symbol for res, interned at first traced emit
}

// Object is a heap object owned by one process. Object IDs are deterministic
// per-process allocation counters, the analog of JVM hash codes across a
// checkpoint-paired run: both runs of a pair allocate identically up to the
// crash point, so pre-crash IDs coincide (Section 3.1).
type Object struct {
	node   *Node
	id     int64
	class  string
	fields map[string]*fieldSlot
}

// NewObject allocates a heap object of the given class on the current node.
func (ctx *Context) NewObject(class string) *Object {
	n := ctx.t.node
	n.nextObj++
	o := &Object{node: n, id: n.nextObj, class: class, fields: make(map[string]*fieldSlot)}
	n.objects[o.id] = o
	return o
}

// ID returns the object's deterministic identity.
func (o *Object) ID() int64 { return o.id }

// Res returns the trace resource ID for one field of this object. The
// process id (not incarnation-free role) is part of it: heap content dies
// with the process.
func (o *Object) Res(field string) string {
	return o.slot(field).res
}

func (o *Object) checkAccess(ctx *Context) {
	if o.node != ctx.t.node {
		panic(fmt.Sprintf("sim: cross-process heap access: %s/%s%d touched from %s (use RPC or messages)",
			o.node.PID, o.class, o.id, ctx.PID()))
	}
	if o.node.crashed {
		panic(killedPanic{})
	}
}

// Set writes a field. The write is traced when it executes inside a handler
// context (selective tracing) and records the taints of the stored value.
//
// Heap accesses dominate traced runs, so Set and Get inline the Do pipeline
// (trigger check → effect → record → trigger check → scheduler step) instead
// of packaging the effect into OpReq closures: the closures were the single
// largest allocation source in the op layer, and heap ops are never sends so
// the drop-handling half of Do cannot apply to them.
func (o *Object) Set(ctx *Context, field string, v Value) {
	o.checkAccess(ctx)
	slot := o.slot(field)
	c := ctx.c
	site := ctx.site()
	c.checkTrigger(site, Before, false)
	slot.val = v
	id := c.tracer.emit(ctx.t, opSpec{
		Kind:   trace.KHeapWrite,
		Res:    slot.res,
		ResSym: &slot.resSym,
		Taint:  v.taint,
		Site:   site,
	})
	if id != trace.NoOp {
		slot.lastWrite = id
	}
	c.checkTrigger(site, After, false)
	ctx.t.yieldStep(c)
}

// Get reads a field. Inside a sync-loop condition the read is recorded as a
// loop read (always traced); otherwise as a plain heap read (traced in
// handler contexts). The returned value is tainted by this read and by the
// taints stored with the value, and the record carries the define–use link
// to the write that produced the content.
func (o *Object) Get(ctx *Context, field string) Value {
	o.checkAccess(ctx)
	slot := o.slot(field)
	kind := trace.KHeapRead
	ls := ctx.t.currentLoop()
	if ls != nil {
		kind = trace.KLoopRead
	}
	c := ctx.c
	site := ctx.site()
	c.checkTrigger(site, Before, false)
	out := slot.val
	id := c.tracer.emit(ctx.t, opSpec{
		Kind:   kind,
		Res:    slot.res,
		ResSym: &slot.resSym,
		Src:    slot.lastWrite,
		Site:   site,
	})
	c.checkTrigger(site, After, false)
	ctx.t.yieldStep(c)
	if id != trace.NoOp {
		out = out.withTaint1(id)
		if ls != nil {
			ls.reads = append(ls.reads, id)
		}
	}
	return out
}

// Has reports whether a field was ever set to a non-nil value; it is a read.
func (o *Object) Has(ctx *Context, field string) bool {
	return !o.Get(ctx, field).IsNil()
}

func (o *Object) slot(field string) *fieldSlot {
	s, ok := o.fields[field]
	if !ok {
		s = &fieldSlot{res: fmt.Sprintf("heap:%s:%s%d.%s", o.node.PID, o.class, o.id, field)}
		o.fields[field] = s
	}
	return s
}

// Peek inspects a field without scheduling, tracing, or taint — for workload
// checkers examining final state from outside the simulation.
func (o *Object) Peek(field string) any {
	if s, ok := o.fields[field]; ok {
		return s.val.Data
	}
	return nil
}

// NamedObject returns the current node's singleton object with the given
// name, creating it on first use. Handlers registered at configure time use
// it to share state with the process's main threads.
func (ctx *Context) NamedObject(name string) *Object {
	n := ctx.t.node
	if o, ok := n.namedObjs[name]; ok {
		return o
	}
	o := ctx.NewObject(name)
	n.namedObjs[name] = o
	return o
}

// NamedCond returns the node's singleton condition object with the given
// name, creating it on first use.
func (ctx *Context) NamedCond(name string) *Cond {
	n := ctx.t.node
	if cv, ok := n.namedConds[name]; ok {
		return cv
	}
	cv := ctx.NewCond(name)
	n.namedConds[name] = cv
	return cv
}

// PeekNamed inspects a named object's field from outside the simulation
// (workload checkers); returns nil if the object does not exist.
func (n *Node) PeekNamed(object, field string) any {
	if o, ok := n.namedObjs[object]; ok {
		return o.Peek(field)
	}
	return nil
}
