package sim_test

import (
	"testing"

	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

func recordsOf(c *sim.Cluster, kind trace.Kind) []*trace.Record {
	var out []*trace.Record
	tr := c.Trace()
	for i := range tr.Records {
		if tr.Records[i].Kind == kind {
			out = append(out, &tr.Records[i])
		}
	}
	return out
}

func TestThrowEmitsSinkWithTaints(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective})
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		v := sim.V("culprit").WithTaint(99)
		_ = ctx.Try(func() { ctx.Throw("TestException", v) })
	})
	c.Run()
	throws := recordsOf(c, trace.KThrow)
	if len(throws) != 1 || c.Trace().Str(throws[0].Aux) != "TestException" {
		t.Fatalf("throw records = %v", throws)
	}
	if len(throws[0].Taint) == 0 || throws[0].Taint[0] != 99 {
		t.Fatalf("throw taints = %v", throws[0].Taint)
	}
	catches := recordsOf(c, trace.KCatch)
	if len(catches) != 1 || catches[0].Site != throws[0].Site {
		t.Fatalf("catch records = %v", catches)
	}
}

func TestLogFatalRecordsSinkAndOutcome(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective})
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		ctx.LogFatal("doom", sim.V(1).WithTaint(7))
	})
	out := c.Run()
	if len(out.FatalLogs) != 1 || !out.Failed() {
		t.Fatalf("fatal outcome = %+v", out)
	}
	if out.FailureKind() != "fatal" {
		t.Fatalf("failure kind = %s", out.FailureKind())
	}
	recs := recordsOf(c, trace.KLogFatal)
	if len(recs) != 1 || recs[0].Taint[0] != 7 {
		t.Fatalf("fatal records = %v", recs)
	}
}

func TestStartServiceIsTracedSink(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective})
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		ctx.StartService("db", sim.V("state").WithTaint(3))
	})
	c.Run()
	recs := recordsOf(c, trace.KServiceStart)
	if len(recs) != 1 || c.Trace().Str(recs[0].Aux) != "db" || recs[0].Taint[0] != 3 {
		t.Fatalf("service-start records = %v", recs)
	}
}

func TestScopeLabelsAppearInCallstacks(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective})
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		defer ctx.Scope("outer")()
		func() {
			defer ctx.Scope("inner")()
			ctx.LogError("marker")
		}()
	})
	c.Run()
	recs := recordsOf(c, trace.KLogError)
	if len(recs) != 1 {
		t.Fatalf("log records = %v", recs)
	}
	st := c.Trace().StackLabels(recs[0].Stack)
	if len(st) != 3 || st[0] != "main" || st[1] != "outer" || st[2] != "inner" {
		t.Fatalf("stack = %v", st)
	}
}

func TestEmitOnCrossProcess(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	got := ""
	c.StartProcess("rx", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleEvent("remote", func(ctx *sim.Context, payload sim.Value) {
			got = payload.Str()
		})
		ctx.Sleep(200)
	})
	c.StartProcess("tx", "m1", func(ctx *sim.Context) {
		ctx.Sleep(30)
		ctx.EmitOn("rx#1", "remote", sim.V("hello"))
	})
	c.Run()
	if got != "hello" {
		t.Fatalf("EmitOn payload = %q", got)
	}
}

func TestPeekNamedFromOutside(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	pid := c.StartProcess("n", "m0", func(ctx *sim.Context) {
		ctx.NamedObject("state").Set(ctx, "k", sim.V(42))
	})
	c.Run()
	if got := c.Node(pid).PeekNamed("state", "k"); got != 42 {
		t.Fatalf("PeekNamed = %v", got)
	}
	if got := c.Node(pid).PeekNamed("missing", "k"); got != nil {
		t.Fatalf("PeekNamed(missing) = %v", got)
	}
}

func TestOutcomeFailureKinds(t *testing.T) {
	cases := []struct {
		out  sim.Outcome
		want string
	}{
		{sim.Outcome{Completed: true}, "ok"},
		{sim.Outcome{Completed: true, UncaughtExceptions: []string{"x"}}, "exception"},
		{sim.Outcome{Completed: true, FatalLogs: []string{"x"}}, "fatal"},
		{sim.Outcome{Completed: false}, "hang"},
		{sim.Outcome{Completed: false, StepBudgetHit: true}, "hang"},
	}
	for i, cse := range cases {
		if got := cse.out.FailureKind(); got != cse.want {
			t.Errorf("case %d: FailureKind = %q, want %q", i, got, cse.want)
		}
	}
}

func TestHandlerExceptionDoesNotKillDispatcher(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	handled := 0
	c.StartProcess("rx", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleMsg("boom", func(ctx *sim.Context, m sim.Message) {
			handled++
			ctx.Throw("HandlerException")
		})
		ctx.Sleep(300)
	})
	c.StartProcess("tx", "m1", func(ctx *sim.Context) {
		_ = ctx.Send("rx", "boom", sim.V(1))
		ctx.Sleep(50)
		_ = ctx.Send("rx", "boom", sim.V(2)) // the dispatcher must survive
	})
	out := c.Run()
	if handled != 2 {
		t.Fatalf("handled = %d; the dispatcher died after the first exception", handled)
	}
	if len(out.UncaughtExceptions) != 2 {
		t.Fatalf("uncaught = %v", out.UncaughtExceptions)
	}
}

func TestRestartRoleKeepsMachineAndRole(t *testing.T) {
	plan := sim.NewObservationPlan("svc", 40, map[string]int64{"svc": 30})
	c := sim.NewCluster(sim.Config{Seed: 1, Plan: plan})
	var machines []string
	c.StartProcess("svc", "the-machine", func(ctx *sim.Context) {
		machines = append(machines, ctx.Machine())
		ctx.Sleep(200)
	})
	c.Run()
	if len(machines) != 2 || machines[0] != "the-machine" || machines[1] != "the-machine" {
		t.Fatalf("incarnations ran on %v, want the same machine twice", machines)
	}
}
