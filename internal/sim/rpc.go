package sim

import (
	"fcatch/internal/trace"
)

// Fixed sites for the RPC library internals. Real systems have these ops in
// library code (Hadoop's IPC client/server); giving them stable pseudo-sites
// makes every RPC call share one signal/wait site pair, so the detector
// reports the library-level hazard once ("hangs @ any RPC call", bug MR3).
const (
	SiteRPCClientWait = "sim/rpc.go:client-wait"
	SiteRPCReplySig   = "sim/rpc.go:reply-signal"
	SiteRPCReplySend  = "sim/rpc.go:reply-send"
)

// callState tracks one in-flight RPC on the caller node.
type callState struct {
	callID int64
	callee string
	done   *Cond
}

// RemoteError wraps an application exception thrown by an RPC handler and
// propagated back to the caller.
type RemoteError struct{ Kind string }

func (e *RemoteError) Error() string { return "remote: " + e.Kind }

// Call invokes an RPC method on the process serving the target role (or an
// explicit "#"-qualified PID) and blocks for the reply.
//
// The full paper-relevant anatomy is modelled: the call op is a causal
// operation (handler ops logically come from the caller node); the handler
// runs in its own thread on the callee; the reply is a message whose
// delivery signals a client-side wait. With Config.RPCClientTimeout == 0
// that wait is untimed — Hadoop-MR's library behaviour, bug MR3.
func (ctx *Context) Call(target, method string, args ...Value) (Value, error) {
	c := ctx.c
	pid := c.resolve(target)

	var dst *Node
	if pid != "" {
		dst = c.nodes[pid]
	}

	callOp, dropAction, dropped := ctx.Do(OpReq{
		Kind:   trace.KRPCCall,
		Aux:    method,
		Target: pid,
		Taint:  taintsOf(args...),
		IsSend: true,
	})
	if dropped && (dropAction == ActDropKernel || dropAction == ActDropApp) {
		return Value{}, ErrSocket
	}
	if pid == "" {
		return Value{}, ErrNoRoute
	}
	if dst == nil || dst.crashed {
		return Value{}, ErrSocket
	}

	caller := ctx.t.node
	c.nextSeq++
	cs := &callState{callID: c.nextSeq, callee: pid, done: ctx.NewCond("rpc-reply")}
	caller.pendingCalls[cs.callID] = cs

	p := pendingRPC{method: method, args: args, callOp: callOp, callerPID: caller.PID, callID: cs.callID}
	if _, ok := dst.rpcHandlers[method]; ok {
		dst.spawnRPCHandler(p)
	} else {
		// The callee has not bound this service yet (its main has not run
		// that far); park the call like an unaccepted connection.
		dst.rpcStash[method] = append(dst.rpcStash[method], p)
	}

	// Client-side wait for the reply signal.
	var v Value
	var err error
	if c.cfg.RPCClientTimeout > 0 {
		v, err = cs.done.waitAt(ctx, c.cfg.RPCClientTimeout, c.siteRPCClientWait)
		if ErrWaitTimeout(err) {
			delete(caller.pendingCalls, cs.callID)
			return Value{}, ErrRPCTimeout
		}
	} else {
		v, err = cs.done.waitAt(ctx, 0, c.siteRPCClientWait)
	}
	return v, err
}

// spawnRPCHandler runs one incoming call in a fresh handler thread on n.
func (n *Node) spawnRPCHandler(p pendingRPC) {
	h := n.rpcHandlers[p.method]
	n.c.spawnThread(n, h.name, func(hctx *Context) {
		defer hctx.Scope(h.name)()
		var result Value
		var remoteErr error
		if err := hctx.Try(func() { result = h.fn(hctx, p.args) }); err != nil {
			remoteErr = &RemoteError{Kind: err.Kind}
		}
		// Branches taken inside the handler control its return value; the
		// reply inherits those taints so impact estimation can see that a
		// read "affects the return value of an RPC function" (§4.3.3).
		result = result.WithTaint(hctx.t.ctlHist...)
		// The reply message: its drop (or a crash right before it) makes the
		// client-side signal disappear.
		var deliverable bool
		replyOp, da, dr := hctx.Do(OpReq{
			Kind:   trace.KMsgSend,
			Aux:    "rpc-reply:" + p.method,
			Target: p.callerPID,
			Taint:  result.taint,
			Site:   hctx.c.siteRPCReplySend,
			IsSend: true,
			Apply: func() {
				cn := hctx.c.nodes[p.callerPID]
				deliverable = cn != nil && !cn.crashed
			},
		})
		if dr && (da == ActDropKernel || da == ActDropApp) {
			return // reply lost on the wire; server moves on
		}
		if !deliverable {
			return
		}
		hctx.c.nodes[p.callerPID].replyQ.push(queuedItem{
			verb:    "rpc-reply",
			payload: result,
			causor:  replyOp,
			callID:  p.callID,
			err:     remoteErr,
		})
	}, p.callOp, false, true)
}
