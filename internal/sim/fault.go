package sim

import (
	"errors"
	"fmt"
)

// Errors surfaced to application code by communication ops.
var (
	// ErrSocket is the SocketException analog: the connection broke (peer
	// crashed, or a kernel-level message drop was injected).
	ErrSocket = errors.New("socket: connection broken")
	// ErrNoRoute means the destination role has no live process.
	ErrNoRoute = errors.New("no route to role")
	// ErrRPCTimeout means the client-side RPC timeout expired.
	ErrRPCTimeout = errors.New("rpc: client timeout")
)

// TriggerWhen says on which side of the matched operation the fault fires.
type TriggerWhen int

const (
	// Before fires the fault right before the op's effect (Section 5:
	// "crashing the node of W right before W").
	Before TriggerWhen = iota
	// After fires right after the op's effect ("right after W").
	After
)

// TriggerAction is the fault kind injected at a trigger point.
type TriggerAction int

const (
	// ActCrashSelf crashes the process that is executing the matched op.
	ActCrashSelf TriggerAction = iota
	// ActDropKernel drops the matched send and raises ErrSocket at the
	// sender (kernel-level message drop).
	ActDropKernel
	// ActDropApp silently skips the matched send (application-level drop;
	// legal only for droppable verbs, Cassandra-style).
	ActDropApp
)

func (a TriggerAction) String() string {
	switch a {
	case ActCrashSelf:
		return "node-crash"
	case ActDropKernel:
		return "kernel-drop"
	case ActDropApp:
		return "app-drop"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// TriggerPoint injects a fault when an operation at Site reaches its N-th
// occurrence. Sites are the file:line static IDs recorded in traces, so a
// point built from a bug report replays against the exact reported op.
type TriggerPoint struct {
	Site       string
	Occurrence int // 1-based; 0 means first occurrence
	When       TriggerWhen
	Action     TriggerAction
	// CrashTarget, for ActCrashSelf, names the role or PID to crash instead
	// of the process executing the matched op. Crash-recovery triggering
	// needs this: W may physically execute on a remote node (an RPC handler
	// invoked by the crash node) while the fault must hit the crash node.
	CrashTarget string
	fired       bool
	// siteID is Site interned into the cluster's site table (set by
	// NewCluster), so the per-op match compares dense ids, not strings.
	siteID SiteID
}

// FaultPlan describes every fault injected into one run.
type FaultPlan struct {
	// CrashAtStep crashes CrashPID when the logical clock reaches the step
	// (-1 / zero-value disables). Used by observation runs ("take a snapshot
	// at a random point, resume, crash immediately") and by the random
	// fault-injection baseline.
	CrashAtStep int64
	CrashPID    string // PID or role name
	crashDone   bool

	// Triggers are the precise before/after-op faults used by the bug
	// triggering module.
	Triggers []TriggerPoint

	// RestartRoles maps a role to the delay (ticks) after which a crashed
	// process of that role is restarted — the operator/recovery behaviour.
	RestartRoles map[string]int64
}

// NewFaultFreePlan returns a plan that injects nothing but still knows how
// to restart roles (needed so trigger runs can exercise recovery).
func NewFaultFreePlan() *FaultPlan {
	return &FaultPlan{CrashAtStep: -1, RestartRoles: map[string]int64{}}
}

// NewObservationPlan crashes `target` (PID or role) at the given step and
// restarts the listed roles after restartDelay.
func NewObservationPlan(target string, step int64, restartRoles map[string]int64) *FaultPlan {
	return &FaultPlan{CrashAtStep: step, CrashPID: target, RestartRoles: restartRoles}
}

// checkTrigger is called by the op layer around every operation's effect.
// It returns the action to apply to the op itself for drop actions; crash
// actions are applied here directly.
func (c *Cluster) checkTrigger(site SiteID, when TriggerWhen, isSend bool) (drop TriggerAction, dropped bool) {
	p := c.pendingPlan
	if p == nil || len(p.Triggers) == 0 || site == NoSite {
		return 0, false
	}
	// Occurrence accounting happens once per op, on the Before edge.
	if when == Before {
		c.siteCounts[site]++
	}
	count := int(c.siteCounts[site])
	for i := range p.Triggers {
		tp := &p.Triggers[i]
		if tp.fired || tp.siteID != site || tp.When != when {
			continue
		}
		occ := tp.Occurrence
		if occ == 0 {
			occ = 1
		}
		if count != occ {
			continue
		}
		tp.fired = true
		switch tp.Action {
		case ActCrashSelf:
			cur := c.curThread
			pid := cur.node.PID
			if tp.CrashTarget != "" {
				pid = c.resolve(tp.CrashTarget)
			}
			if pid != "" {
				c.crashProcess(pid, site)
			}
			if cur.node.crashed {
				// The fault hit the process executing this op: unwind now.
				panic(killedPanic{})
			}
		case ActDropKernel, ActDropApp:
			if isSend {
				return tp.Action, true
			}
		}
	}
	return 0, false
}
