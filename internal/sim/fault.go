package sim

import (
	"errors"
	"fmt"
)

// Errors surfaced to application code by communication ops.
var (
	// ErrSocket is the SocketException analog: the connection broke (peer
	// crashed, or a kernel-level message drop was injected).
	ErrSocket = errors.New("socket: connection broken")
	// ErrNoRoute means the destination role has no live process.
	ErrNoRoute = errors.New("no route to role")
	// ErrRPCTimeout means the client-side RPC timeout expired.
	ErrRPCTimeout = errors.New("rpc: client timeout")
)

// TriggerWhen says on which side of the matched operation the fault fires.
type TriggerWhen int

const (
	// Before fires the fault right before the op's effect (Section 5:
	// "crashing the node of W right before W").
	Before TriggerWhen = iota
	// After fires right after the op's effect ("right after W").
	After
)

// TriggerAction is the fault kind injected at a fault event.
type TriggerAction int

const (
	// ActCrashSelf crashes the process that is executing the matched op.
	ActCrashSelf TriggerAction = iota
	// ActDropKernel drops the matched send and raises ErrSocket at the
	// sender (kernel-level message drop).
	ActDropKernel
	// ActDropApp silently skips the matched send (application-level drop;
	// legal only for droppable verbs, Cassandra-style).
	ActDropApp
)

// JSON-stable fault vocabulary. This is the single source of truth for
// action and edge names: the simulator's runtime enums, the campaign plan
// encoding, report rendering, and the CLIs all spell faults with these
// strings. Adding an action means extending this table (and the enum above)
// in exactly one place.
const (
	// ActionNodeCrash is the JSON/name form of ActCrashSelf.
	ActionNodeCrash = "node-crash"
	// ActionKernelDrop is the JSON/name form of ActDropKernel.
	ActionKernelDrop = "kernel-drop"
	// ActionAppDrop is the JSON/name form of ActDropApp.
	ActionAppDrop = "app-drop"

	// WhenBefore / WhenAfter are the JSON/name forms of Before / After.
	WhenBefore = "before"
	WhenAfter  = "after"
)

var actionNames = [...]string{
	ActCrashSelf:  ActionNodeCrash,
	ActDropKernel: ActionKernelDrop,
	ActDropApp:    ActionAppDrop,
}

// ActionNames lists every fault action name in canonical (enum) order.
func ActionNames() []string {
	return []string{ActionNodeCrash, ActionKernelDrop, ActionAppDrop}
}

func (a TriggerAction) String() string {
	if a >= 0 && int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", int(a))
}

func (w TriggerWhen) String() string {
	if w == After {
		return WhenAfter
	}
	return WhenBefore
}

// ParseAction maps an action name to its enum; ok is false for unknown names.
func ParseAction(name string) (TriggerAction, bool) {
	for a, s := range actionNames {
		if s == name {
			return TriggerAction(a), true
		}
	}
	return ActCrashSelf, false
}

// ParseWhen maps an edge name to its enum; ok is false for unknown names.
func ParseWhen(name string) (TriggerWhen, bool) {
	switch name {
	case WhenBefore:
		return Before, true
	case WhenAfter:
		return After, true
	}
	return Before, false
}

// actionOf / whenOf are the lenient forms used when lowering plans: unknown
// strings fall back to the zero action/edge (crash / before), preserving the
// historical tolerance of hand-written plans.
func actionOf(name string) TriggerAction { a, _ := ParseAction(name); return a }
func whenOf(name string) TriggerWhen     { w, _ := ParseWhen(name); return w }

// FaultSpec is one fault event of a scenario, in its JSON-stable form. The
// same encoding travels from campaign corpora over the distributed-campaign
// wire into the simulator.
//
// Anchoring:
//   - Site != "": site-anchored — the fault fires when the operation at Site
//     reaches its Occurrence-th execution (When edge). Sites are the
//     file:line static IDs recorded in traces, so an event built from a bug
//     report replays against the exact reported op.
//   - Site == "", Delay == 0: step-anchored — a node crash when the logical
//     clock reaches CrashStep (the observation-run form).
//   - Site == "", Delay > 0: relative — a node crash Delay ticks after the
//     previous event of the scenario fires (or after run start, for the
//     first event). With an empty Target it crashes the current incarnation
//     of the most recently crashed role: a second crash landing inside the
//     recovery window.
type FaultSpec struct {
	// CrashStep, for step-anchored events, is the logical-clock step at
	// which the target is killed.
	CrashStep int64 `json:"crash_step,omitempty"`

	// Site/Occurrence/When/Action describe a site-anchored event.
	// Occurrence is 1-based (0 means first); When is WhenBefore/WhenAfter;
	// Action is one of ActionNames(). Step-anchored events ignore
	// When/Occurrence and treat an empty Action as ActionNodeCrash.
	Site       string `json:"site,omitempty"`
	Occurrence int    `json:"occurrence,omitempty"`
	When       string `json:"when,omitempty"`
	Action     string `json:"action,omitempty"`

	// Target, for crash actions, names the role or PID to crash instead of
	// the process executing the matched op (site-anchored) or is the victim
	// itself (step-anchored). Crash-recovery triggering needs this: W may
	// physically execute on a remote node (an RPC handler invoked by the
	// crash node) while the fault must hit the crash node.
	Target string `json:"target,omitempty"`

	// Delay makes the event relative: it arms Delay ticks after the
	// previous event fires (see anchoring above).
	Delay int64 `json:"delay,omitempty"`

	// Restart overrides the plan's RestartRoles for this event's victim:
	// nil defers to the plan map, >= 0 restarts the crashed role after that
	// many ticks even if the map has no entry, < 0 pins the victim down.
	Restart *int64 `json:"restart,omitempty"`
}

// relative reports whether the event arms off the previous event's firing.
func (s *FaultSpec) relative() bool { return s.Site == "" && s.Delay > 0 }

// FaultFiring records one scenario event actually firing during a run:
// which event, what it did, to whom, and when. The firing list is the
// per-fault surface the detectors' hazard-window derivation consumes —
// unlike the flat victim list, it keeps each fault's moment and anchor.
type FaultFiring struct {
	// Index is the event's position in the scenario (FaultPlan.Events).
	Index int `json:"index"`
	// Action is the event's fault action, in ActionNames() form.
	Action string `json:"action"`
	// Step is the logical clock at the moment the event fired.
	Step int64 `json:"step"`
	// Site is the matched site for site-anchored events ("" otherwise);
	// Occurrence and When complete the anchor (1-based occurrence at Site,
	// before/after edge), so a firing can be replayed as a site-anchored
	// event without the original spec.
	Site       string `json:"site,omitempty"`
	Occurrence int    `json:"occurrence,omitempty"`
	When       string `json:"when,omitempty"`
	// Victim is the crashed process for crash actions, or the sender whose
	// message was dropped for drop actions. Empty when the event fired but
	// hit nothing (unresolvable target, non-send op under a drop event).
	Victim string `json:"victim,omitempty"`
}

// FaultEvent is a FaultSpec plus the per-run runtime state the cluster
// tracks while matching it.
type FaultEvent struct {
	FaultSpec
	when   TriggerWhen
	action TriggerAction
	// siteID is Site interned into the cluster's site table (set by
	// NewCluster), so the per-op match compares dense ids, not strings.
	siteID SiteID
	fired  bool
	// armed/armedAt gate step-anchored events: the event fires once the
	// clock reaches armedAt. Relative events stay unarmed until their
	// predecessor fires.
	armed   bool
	armedAt int64
}

// FaultPlan describes every fault injected into one run: an ordered fault
// scenario plus the operator's restart policy. A plan carries per-run state
// and must not be shared between clusters.
type FaultPlan struct {
	// Events is the fault scenario, in order. Today's observation crash is
	// a one-event scenario; composite scenarios chain crashes and drops.
	Events []FaultEvent

	// RestartRoles maps a role to the delay (ticks) after which a crashed
	// process of that role is restarted — the operator/recovery behaviour.
	RestartRoles map[string]int64

	// siteEvents is the static count of site-anchored events (needSites);
	// sitePending counts the unfired ones so the per-op check is O(1) once
	// the scenario is exhausted.
	siteEvents  int
	sitePending int
	// stepPending/nextStepAt summarize armed, unfired step-anchored events
	// so the per-step check stays O(1) until one is due.
	stepPending int
	nextStepAt  int64
	// lastCrashRole is the role of the most recent injected crash — the
	// default victim of a relative follow-up crash.
	lastCrashRole string
	// injectedPIDs are the victims of plan events, in injection order
	// (Outcome.Crashed also contains app-level kills; detectors need the
	// injected set).
	injectedPIDs []string
	// firings are the events that actually fired, in firing order.
	firings []FaultFiring
}

// NewScenarioPlan builds a plan that injects the given fault scenario and
// restarts the listed roles after their mapped delay.
func NewScenarioPlan(scenario []FaultSpec, restartRoles map[string]int64) *FaultPlan {
	p := &FaultPlan{Events: make([]FaultEvent, len(scenario)), RestartRoles: restartRoles}
	for i, s := range scenario {
		p.Events[i].FaultSpec = s
	}
	return p
}

// NewFaultFreePlan returns a plan that injects nothing but still knows how
// to restart roles (needed so trigger runs can exercise recovery).
func NewFaultFreePlan() *FaultPlan {
	return &FaultPlan{RestartRoles: map[string]int64{}}
}

// NewObservationPlan crashes `target` (PID or role) at the given step and
// restarts the listed roles after their mapped delay — the classic
// one-event observation scenario.
func NewObservationPlan(target string, step int64, restartRoles map[string]int64) *FaultPlan {
	return NewScenarioPlan([]FaultSpec{{CrashStep: step, Target: target, Action: ActionNodeCrash}}, restartRoles)
}

// Scenario returns the plan's events in their JSON-stable form.
func (p *FaultPlan) Scenario() []FaultSpec {
	out := make([]FaultSpec, len(p.Events))
	for i := range p.Events {
		out[i] = p.Events[i].FaultSpec
	}
	return out
}

// InjectedCrashPIDs lists the processes crashed by plan events during the
// run, in injection order.
func (p *FaultPlan) InjectedCrashPIDs() []string { return p.injectedPIDs }

// Firings lists the scenario events that actually fired during the run, in
// firing order (the hazard-window anchors).
func (p *FaultPlan) Firings() []FaultFiring { return p.firings }

// preparePlan resolves the plan's events against this cluster: names become
// enums, sites become dense ids (in event order, so site-table numbering is
// stable), and step-anchored events arm. Called once from NewCluster.
func (c *Cluster) preparePlan(p *FaultPlan) {
	p.siteEvents, p.sitePending = 0, 0
	for i := range p.Events {
		ev := &p.Events[i]
		ev.when = whenOf(ev.When)
		ev.action = actionOf(ev.Action)
		ev.fired, ev.armed = false, false
		if ev.Site != "" {
			ev.siteID = c.internSite(ev.Site)
			p.siteEvents++
			p.sitePending++
			continue
		}
		if ev.relative() && i > 0 {
			continue // arms when the predecessor fires
		}
		ev.armed = true
		ev.armedAt = ev.CrashStep
		if ev.Delay > 0 {
			ev.armedAt = ev.Delay // first event: relative to run start
		}
	}
	p.recountStep()
}

// recountStep refreshes the stepPending/nextStepAt summary after events
// fire or arm.
func (p *FaultPlan) recountStep() {
	p.stepPending, p.nextStepAt = 0, 0
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Site != "" || ev.fired || !ev.armed {
			continue
		}
		if p.stepPending == 0 || ev.armedAt < p.nextStepAt {
			p.nextStepAt = ev.armedAt
		}
		p.stepPending++
	}
}

// armNextEvent arms the scenario event following the one that just fired,
// if it is a relative event still waiting for its predecessor.
func (c *Cluster) armNextEvent(p *FaultPlan, i int) {
	if i+1 >= len(p.Events) {
		return
	}
	next := &p.Events[i+1]
	if next.fired || next.armed || !next.relative() {
		return
	}
	next.armed = true
	next.armedAt = c.clock + next.Delay
	p.recountStep()
}

// injectCrash is crashProcess for plan-injected crashes: it records the
// victim for detectors, remembers the role so a relative follow-up event can
// re-crash its restarted incarnation, and applies the event's restart
// override. It returns the victim PID, or "" when the crash was a no-op
// (unknown target, or the process was already dead).
func (c *Cluster) injectCrash(pid string, selfSite SiteID, restart *int64) string {
	victim := ""
	if p := c.pendingPlan; p != nil {
		if n := c.nodes[pid]; n != nil && !n.crashed {
			p.lastCrashRole = n.Role
			p.injectedPIDs = append(p.injectedPIDs, pid)
			victim = pid
		}
	}
	c.crashProcess(pid, selfSite, restart)
	return victim
}

// checkTrigger is called by the op layer around every operation's effect.
// It returns the action to apply to the op itself for drop actions; crash
// actions are applied here directly.
func (c *Cluster) checkTrigger(site SiteID, when TriggerWhen, isSend bool) (drop TriggerAction, dropped bool) {
	p := c.pendingPlan
	if p == nil || p.sitePending == 0 || site == NoSite {
		return 0, false
	}
	// Occurrence accounting happens once per op, on the Before edge.
	if when == Before {
		c.siteCounts[site]++
	}
	count := int(c.siteCounts[site])
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.fired || ev.Site == "" || ev.siteID != site || ev.when != when {
			continue
		}
		occ := ev.Occurrence
		if occ == 0 {
			occ = 1
		}
		if count != occ {
			continue
		}
		ev.fired = true
		p.sitePending--
		c.armNextEvent(p, i)
		firing := FaultFiring{
			Index: i, Action: ev.action.String(), Step: c.clock,
			Site: ev.Site, Occurrence: occ, When: ev.when.String(),
		}
		switch ev.action {
		case ActCrashSelf:
			cur := c.curThread
			pid := cur.node.PID
			if ev.Target != "" {
				pid = c.resolve(ev.Target)
			}
			if pid != "" {
				firing.Victim = c.injectCrash(pid, site, ev.Restart)
			}
			p.firings = append(p.firings, firing)
			if cur.node.crashed {
				// The fault hit the process executing this op: unwind now.
				panic(killedPanic{})
			}
		case ActDropKernel, ActDropApp:
			if isSend {
				firing.Victim = c.curThread.node.PID
				p.firings = append(p.firings, firing)
				return ev.action, true
			}
			// Consumed on a non-send op: the event fired but dropped nothing.
			p.firings = append(p.firings, firing)
		}
	}
	return 0, false
}
