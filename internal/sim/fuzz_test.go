package sim_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
	"fcatch/internal/trace"
)

// genCluster builds a pseudo-random mini distributed system from genSeed:
// 2–4 processes exchanging messages, RPCs, events, heap traffic and global-
// file traffic, with handlers doing payload-determined follow-up work. The
// construction is fully determined by genSeed, so the same genSeed always
// yields the same system — which lets the invariant checks below replay it
// under different fault plans.
func genCluster(genSeed int64, cfg sim.Config) *sim.Cluster {
	gen := rand.New(rand.NewSource(genSeed))
	nProcs := 2 + gen.Intn(3)
	nOps := 8 + gen.Intn(20)

	type opSpec struct {
		kind    int // 0 send, 1 rpc, 2 event, 3 heap, 4 gfs write, 5 gfs read, 6 sleep, 7 spawn, 8 signal/wait pair
		peer    int
		payload int
	}
	plans := make([][]opSpec, nProcs)
	for p := 0; p < nProcs; p++ {
		for i := 0; i < nOps; i++ {
			plans[p] = append(plans[p], opSpec{
				kind:    gen.Intn(9),
				peer:    gen.Intn(nProcs),
				payload: gen.Intn(50),
			})
		}
	}

	c := sim.NewCluster(cfg)
	gfs := storage.NewGlobalFS()
	for p := 0; p < nProcs; p++ {
		p := p
		role := fmt.Sprintf("proc%d", p)
		c.StartProcess(role, "m-"+role, func(ctx *sim.Context) {
			self := ctx.Self()
			self.HandleMsg("work", func(ctx *sim.Context, m sim.Message) {
				obj := ctx.NamedObject("inbox")
				n := obj.Get(ctx, "count")
				obj.Set(ctx, "count", sim.Derive(n.Int()+1, n, m.Payload))
				if m.Payload.Int()%7 == 0 {
					gfs.Write(ctx, fmt.Sprintf("/shared/%s", ctx.Role()), m.Payload)
				}
			})
			self.HandleRPC("Query", func(ctx *sim.Context, args []sim.Value) sim.Value {
				v := ctx.NamedObject("inbox").Get(ctx, "count")
				return sim.Derive(v.Int(), v, args[0])
			})
			self.HandleEvent("tick", func(ctx *sim.Context, payload sim.Value) {
				ctx.NamedObject("inbox").Set(ctx, "lastTick", payload)
			})

			for _, op := range plans[p] {
				peer := fmt.Sprintf("proc%d", op.peer)
				switch op.kind {
				case 0:
					_ = ctx.Send(peer, "work", sim.V(op.payload))
				case 1:
					_, _ = ctx.Call(peer, "Query", sim.V(op.payload))
				case 2:
					ctx.Emit("tick", sim.V(op.payload))
				case 3:
					obj := ctx.NamedObject("local")
					obj.Set(ctx, "x", sim.V(op.payload))
					_ = obj.Get(ctx, "x")
				case 4:
					gfs.Write(ctx, fmt.Sprintf("/fuzz/%d", op.payload%5), sim.V(op.payload))
				case 5:
					_, _ = gfs.Read(ctx, fmt.Sprintf("/fuzz/%d", op.payload%5))
				case 6:
					ctx.Sleep(int64(op.payload%40 + 1))
				case 7:
					pl := op.payload
					ctx.Go("spawned", func(ctx *sim.Context) {
						ctx.NamedObject("local").Set(ctx, "spawned", sim.V(pl))
					})
				case 8:
					cv := ctx.NewCond("pair")
					pl := op.payload
					ctx.Go("signaller", func(ctx *sim.Context) {
						ctx.Sleep(int64(pl%20 + 1))
						cv.Signal(ctx, sim.V(pl))
					})
					_, _ = cv.WaitTimeout(ctx, 200)
				}
			}
		})
	}
	return c
}

func fuzzConfig(seed int64, plan *sim.FaultPlan) sim.Config {
	return sim.Config{
		Seed: seed, Tracing: sim.TraceSelective, MaxSteps: 30_000,
		RPCClientTimeout: 300, RPCFailFast: true, Plan: plan,
	}
}

func traceString(t *trace.Trace) string {
	var b strings.Builder
	for i := range t.Records {
		b.WriteString(t.Format(&t.Records[i]))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFuzzDeterminism: any generated system replays to an identical trace.
func TestFuzzDeterminism(t *testing.T) {
	for genSeed := int64(0); genSeed < 25; genSeed++ {
		c1 := genCluster(genSeed, fuzzConfig(genSeed, nil))
		c1.Run()
		c2 := genCluster(genSeed, fuzzConfig(genSeed, nil))
		c2.Run()
		if traceString(c1.Trace()) != traceString(c2.Trace()) {
			t.Fatalf("genSeed %d: traces diverge between identical replays", genSeed)
		}
	}
}

// TestFuzzCheckpointPrefix: crashing a process at step S must leave the
// pre-S trace identical to the fault-free one (the deterministic-replay
// stand-in for the paper's VM checkpointing, on arbitrary systems).
func TestFuzzCheckpointPrefix(t *testing.T) {
	for genSeed := int64(0); genSeed < 25; genSeed++ {
		base := genCluster(genSeed, fuzzConfig(genSeed, nil))
		baseOut := base.Run()
		if baseOut.Steps < 10 {
			continue
		}
		rng := rand.New(rand.NewSource(genSeed ^ 0x5eed))
		step := 1 + rng.Int63n(baseOut.Steps)
		victim := fmt.Sprintf("proc%d", rng.Intn(2))
		plan := sim.NewObservationPlan(victim, step, nil)
		faulty := genCluster(genSeed, fuzzConfig(genSeed, plan))
		faulty.Run()

		tf, ty := base.Trace(), faulty.Trace()
		for i := 0; i < tf.Len() && i < ty.Len(); i++ {
			a, b := &tf.Records[i], &ty.Records[i]
			if a.TS >= step || b.TS >= step {
				break
			}
			if tf.Format(a) != ty.Format(b) {
				t.Fatalf("genSeed %d crash@%d: prefix diverges at %d:\n  %s\n  %s",
					genSeed, step, i, tf.Format(a), ty.Format(b))
			}
		}
	}
}

// TestFuzzCrashSemantics: after a crash, the victim contributes no further
// operations, and the trace records the crash metadata.
func TestFuzzCrashSemantics(t *testing.T) {
	for genSeed := int64(0); genSeed < 25; genSeed++ {
		base := genCluster(genSeed, fuzzConfig(genSeed, nil))
		baseOut := base.Run()
		if baseOut.Steps < 20 {
			continue
		}
		step := baseOut.Steps / 3
		plan := sim.NewObservationPlan("proc0", step, nil)
		c := genCluster(genSeed, fuzzConfig(genSeed, plan))
		c.Run()
		ty := c.Trace()
		if ty.CrashedPID != "proc0#1" {
			t.Fatalf("genSeed %d: crash metadata missing (pid=%q)", genSeed, ty.CrashedPID)
		}
		for i := range ty.Records {
			r := &ty.Records[i]
			if ty.Str(r.PID) == "proc0#1" && r.TS > ty.CrashStep && r.Kind != trace.KThreadExit {
				t.Fatalf("genSeed %d: victim op after crash: %s", genSeed, ty.Format(r))
			}
		}
	}
}

// TestFuzzTraceWellFormed: structural invariants of any produced trace —
// dense IDs, valid frames, frames that are activations, causors that
// precede their causees, and define-use links that point at earlier
// write-like ops on the same resource.
func TestFuzzTraceWellFormed(t *testing.T) {
	for genSeed := int64(0); genSeed < 25; genSeed++ {
		c := genCluster(genSeed, fuzzConfig(genSeed, nil))
		c.Run()
		tr := c.Trace()
		for i := range tr.Records {
			r := &tr.Records[i]
			if int(r.ID) != i+1 {
				t.Fatalf("genSeed %d: non-dense id %d at %d", genSeed, r.ID, i)
			}
			if r.Frame != trace.NoOp {
				f := tr.At(r.Frame)
				if f == nil || !f.Kind.IsActivation() {
					t.Fatalf("genSeed %d: op %s has bad frame", genSeed, tr.Format(r))
				}
				if f.ID >= r.ID {
					t.Fatalf("genSeed %d: frame after op: %s", genSeed, tr.Format(r))
				}
			}
			if r.Kind.IsActivation() && r.Causor != trace.NoOp {
				cz := tr.At(r.Causor)
				if cz == nil || cz.ID >= r.ID {
					t.Fatalf("genSeed %d: activation causor invalid: %s", genSeed, tr.Format(r))
				}
				if !cz.Kind.IsCausal() && cz.Kind != trace.KKVNotify {
					t.Fatalf("genSeed %d: causor is not a causal op: %s <- %s", genSeed, tr.Format(r), tr.Format(cz))
				}
			}
			if r.Src != trace.NoOp && r.Kind.IsReadLike() {
				w := tr.At(r.Src)
				if w == nil || !w.Kind.IsWriteLike() || w.Res != r.Res || w.ID >= r.ID {
					t.Fatalf("genSeed %d: bad define-use link: %s src=%d", genSeed, tr.Format(r), r.Src)
				}
			}
		}
	}
}

// TestFuzzRunsTerminate: every generated system ends (completion, deadlock
// report, or budget) — the scheduler never wedges.
func TestFuzzRunsTerminate(t *testing.T) {
	for genSeed := int64(100); genSeed < 160; genSeed++ {
		c := genCluster(genSeed, fuzzConfig(genSeed, nil))
		out := c.Run()
		if !out.Completed && len(out.Hung) == 0 && !out.StepBudgetHit {
			t.Fatalf("genSeed %d: run ended in limbo: %+v", genSeed, out)
		}
	}
}
