// Package sim implements a deterministic, cooperatively scheduled
// distributed-system simulator. It is the substrate the mini cloud systems
// (internal/apps/...) run on and the instrumentation point FCatch traces.
//
// Determinism is the load-bearing property: given the same workload, seed and
// fault plan, a cluster produces bit-identical traces. FCatch's VM-checkpoint
// trick (Section 3.1 of the paper) is realized as deterministic replay — a
// "checkpoint at step k" is a re-run from step 0 that injects (or does not
// inject) a crash at step k, which yields the same identical-prefix pair of
// runs the paper obtains from VirtualBox snapshots, including stable heap
// object IDs across the pair.
package sim

import (
	"fmt"
	"sort"

	"fcatch/internal/trace"
)

// Value is a datum flowing through a simulated system, together with the set
// of trace operations whose results influenced it (dynamic data dependence).
// The taints substitute for the paper's WALA data-flow analysis: wherever the
// paper asks "does X depend on read R?", the detectors test R ∈ X.Taint.
type Value struct {
	Data  any
	taint []trace.OpID
}

// V wraps a plain datum with no taint.
func V(data any) Value { return Value{Data: data} }

// Bool interprets the value as a condition: nil, false, 0, and "" are false.
func (v Value) Bool() bool {
	switch d := v.Data.(type) {
	case nil:
		return false
	case bool:
		return d
	case int:
		return d != 0
	case int64:
		return d != 0
	case string:
		return d != ""
	default:
		return true
	}
}

// Int returns the value as an int (0 if it is not one).
func (v Value) Int() int {
	switch d := v.Data.(type) {
	case int:
		return d
	case int64:
		return int(d)
	}
	return 0
}

// Str returns the value as a string (fmt-rendered if not one).
func (v Value) Str() string {
	if s, ok := v.Data.(string); ok {
		return s
	}
	if v.Data == nil {
		return ""
	}
	return fmt.Sprint(v.Data)
}

// IsNil reports whether the value holds nothing.
func (v Value) IsNil() bool { return v.Data == nil }

// Taint returns the op IDs that influenced this value.
func (v Value) Taint() []trace.OpID { return v.taint }

// WithTaint returns a copy of v additionally tainted by the given ops.
func (v Value) WithTaint(ops ...trace.OpID) Value {
	v.taint = mergeTaints(v.taint, ops)
	return v
}

// withTaint1 is WithTaint for exactly one op, avoiding the variadic slice.
func (v Value) withTaint1(id trace.OpID) Value {
	v.taint = mergeTaint1(v.taint, id)
	return v
}

// Derive produces a new value computed from v and the given inputs; the
// result carries the union of all taints. Use it for app-level computation
// that combines tainted data (string concat, arithmetic, ...).
func Derive(data any, inputs ...Value) Value {
	out := Value{Data: data}
	for _, in := range inputs {
		out.taint = mergeTaints(out.taint, in.taint)
	}
	return out
}

// maxTaint bounds taint sets; real dependence chains in the mini systems are
// short, so the cap only guards against pathological accumulation.
const maxTaint = 64

// mergeTaints returns the sorted, deduplicated union, capped at maxTaint.
//
// Taint slices are immutable by convention (every mutation goes through a
// merge that returns a fresh or aliased slice, never an in-place edit), and
// every slice this package produces is already a sorted set. That makes the
// union a linear two-pointer merge, and lets the subset cases return one of
// the inputs unchanged — the dominant case in practice (repeated guards and
// derives over the same dependencies), which then costs zero allocations.
func mergeTaints(a []trace.OpID, b []trace.OpID) []trace.OpID {
	if len(b) == 0 {
		return a
	}
	if !sortedSet(a) || !sortedSet(b) {
		return mergeTaintsSlow(a, b)
	}
	if len(a) == 0 {
		return b
	}
	if subsetOf(b, a) {
		return a
	}
	if subsetOf(a, b) {
		return capTaints(b)
	}
	out := make([]trace.OpID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return capTaints(out)
}

// mergeTaint1 merges a single op into a sorted taint set.
func mergeTaint1(a []trace.OpID, id trace.OpID) []trace.OpID {
	// New ops have the highest IDs, so scan from the tail.
	i := len(a)
	for i > 0 && a[i-1] > id {
		i--
	}
	if i > 0 && a[i-1] == id {
		return a
	}
	out := make([]trace.OpID, 0, len(a)+1)
	out = append(out, a[:i]...)
	out = append(out, id)
	out = append(out, a[i:]...)
	return capTaints(out)
}

// sortedSet reports whether s is strictly increasing (sorted and deduped).
func sortedSet(s []trace.OpID) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// subsetOf reports whether sorted set sub ⊆ sorted set sup.
func subsetOf(sub, sup []trace.OpID) bool {
	if len(sub) > len(sup) {
		return false
	}
	j := 0
	for _, id := range sub {
		for j < len(sup) && sup[j] < id {
			j++
		}
		if j == len(sup) || sup[j] != id {
			return false
		}
		j++
	}
	return true
}

// capTaints applies the maxTaint bound, keeping the highest (newest) ops.
func capTaints(s []trace.OpID) []trace.OpID {
	if len(s) > maxTaint {
		return s[len(s)-maxTaint:]
	}
	return s
}

// mergeTaintsSlow is the general-case union for inputs that are not sorted
// sets (none are produced by this package; external callers could).
func mergeTaintsSlow(a, b []trace.OpID) []trace.OpID {
	out := make([]trace.OpID, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, id := range out {
		if i == 0 || id != out[w-1] {
			out[w] = id
			w++
		}
	}
	return capTaints(out[:w])
}

// taintsOf unions the taints of several values.
func taintsOf(vs ...Value) []trace.OpID {
	var out []trace.OpID
	for _, v := range vs {
		out = mergeTaints(out, v.taint)
	}
	return out
}
