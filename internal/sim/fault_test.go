package sim_test

import (
	"testing"
	"testing/quick"

	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// twoNodeApp is a small deterministic protocol used by the fault tests:
// a producer sends N pings to a consumer, which acks each.
func twoNodeApp(pings int) func(c *sim.Cluster) {
	return func(c *sim.Cluster) {
		c.StartProcess("consumer", "m0", func(ctx *sim.Context) {
			ctx.Self().HandleMsg("ping", func(ctx *sim.Context, m sim.Message) {
				obj := ctx.NamedObject("stats")
				n := obj.Get(ctx, "count")
				obj.Set(ctx, "count", sim.V(n.Int()+1))
				_ = ctx.Send(m.From, "ack", m.Payload)
			})
			ctx.Sleep(int64(pings*40 + 200))
		})
		c.StartProcess("producer", "m1", func(ctx *sim.Context) {
			ctx.Self().HandleMsg("ack", func(ctx *sim.Context, m sim.Message) {})
			for i := 0; i < pings; i++ {
				_ = ctx.Send("consumer", "ping", sim.V(i))
				ctx.Sleep(25)
			}
		})
	}
}

func TestCrashAtStepKillsProcess(t *testing.T) {
	plan := sim.NewObservationPlan("producer", 100, nil)
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective, Plan: plan})
	twoNodeApp(20)(c)
	out := c.Run()
	if len(out.Crashed) != 1 || out.Crashed[0] != "producer#1" {
		t.Fatalf("crashed = %v", out.Crashed)
	}
	// No producer op may appear after the crash step.
	tr := c.Trace()
	for i := range tr.Records {
		r := &tr.Records[i]
		if tr.Str(r.PID) == "producer#1" && r.TS > tr.CrashStep && r.Kind != trace.KThreadExit {
			t.Fatalf("producer op after crash: %s (crash at %d)", tr.Format(r), tr.CrashStep)
		}
	}
	if !out.Completed {
		t.Fatalf("consumer should finish after producer death: %+v", out.Hung)
	}
}

func TestRestartRolesSpawnsNewIncarnation(t *testing.T) {
	plan := sim.NewObservationPlan("producer", 100, map[string]int64{"producer": 60})
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective, Plan: plan})
	twoNodeApp(6)(c)
	out := c.Run()
	if !out.Completed {
		t.Fatalf("run hung: %+v", out.Hung)
	}
	if !c.Trace().HasPID("producer#2") {
		t.Fatalf("no producer#2 in trace pids: %v", c.Trace().PIDs)
	}
	if c.Lookup("producer") != "producer#2" {
		t.Fatalf("role points at %q", c.Lookup("producer"))
	}
}

func TestSendToCrashedProcessFails(t *testing.T) {
	var sendErr error
	c := sim.NewCluster(sim.Config{Seed: 1, Plan: sim.NewObservationPlan("victim", 5, nil)})
	c.StartProcess("victim", "m0", func(ctx *sim.Context) { ctx.Sleep(400) })
	c.StartProcess("sender", "m1", func(ctx *sim.Context) {
		ctx.Sleep(200) // the victim is long dead by now
		sendErr = ctx.Send("victim#1", "x", sim.V(1))
	})
	c.Run()
	if sendErr != sim.ErrSocket {
		t.Fatalf("send to crashed pid: %v, want ErrSocket", sendErr)
	}
}

func TestRPCFailFastOnCalleeCrash(t *testing.T) {
	plan := sim.NewObservationPlan("srv", 150, nil)
	c := sim.NewCluster(sim.Config{Seed: 1, RPCFailFast: true, Plan: plan})
	c.StartProcess("srv", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleRPC("Slow", func(ctx *sim.Context, args []sim.Value) sim.Value {
			ctx.Sleep(500) // still in flight when the crash lands
			return sim.V("late")
		})
		ctx.Sleep(600)
	})
	var err error
	c.StartProcess("cli", "m1", func(ctx *sim.Context) {
		ctx.Sleep(100)
		_, err = ctx.Call("srv", "Slow")
	})
	out := c.Run()
	if !out.Completed {
		t.Fatalf("caller hung despite fail-fast: %+v", out.Hung)
	}
	if err != sim.ErrSocket {
		t.Fatalf("in-flight call error = %v, want ErrSocket", err)
	}
}

func TestRPCWithoutFailFastHangsOnCalleeCrash(t *testing.T) {
	plan := sim.NewObservationPlan("srv", 150, nil)
	c := sim.NewCluster(sim.Config{Seed: 1, RPCFailFast: false, MaxSteps: 5_000, Plan: plan})
	c.StartProcess("srv", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleRPC("Slow", func(ctx *sim.Context, args []sim.Value) sim.Value {
			ctx.Sleep(500)
			return sim.V("late")
		})
		ctx.Sleep(600)
	})
	c.StartProcess("cli", "m1", func(ctx *sim.Context) {
		ctx.Sleep(100)
		_, _ = ctx.Call("srv", "Slow")
	})
	out := c.Run()
	if out.Completed {
		t.Fatal("caller should hang forever without fail-fast (bug MR3's library behaviour)")
	}
}

func TestRPCClientTimeout(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, RPCClientTimeout: 150})
	c.StartProcess("srv", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleRPC("Slow", func(ctx *sim.Context, args []sim.Value) sim.Value {
			ctx.Sleep(1_000)
			return sim.V("late")
		})
		ctx.Sleep(1_200)
	})
	var err error
	c.StartProcess("cli", "m1", func(ctx *sim.Context) {
		_, err = ctx.Call("srv", "Slow")
	})
	out := c.Run()
	if !out.Completed {
		t.Fatalf("hung: %+v", out.Hung)
	}
	if err != sim.ErrRPCTimeout {
		t.Fatalf("err = %v, want ErrRPCTimeout", err)
	}
}

func TestTriggerCrashBeforeOp(t *testing.T) {
	// First observe where the marker send happens.
	build := func(plan *sim.FaultPlan) (*sim.Cluster, *sim.Outcome) {
		c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective, Plan: plan})
		c.StartProcess("rx", "m0", func(ctx *sim.Context) {
			ctx.Self().HandleMsg("marker", func(ctx *sim.Context, m sim.Message) {
				ctx.Cluster().SetFact("got-marker", "true")
			})
			ctx.Sleep(400)
		})
		c.StartProcess("tx", "m1", func(ctx *sim.Context) {
			ctx.Sleep(50)
			_ = ctx.Send("rx", "marker", sim.V(1))
		})
		return c, c.Run()
	}
	obs, _ := build(nil)
	var site string
	for i := range obs.Trace().Records {
		r := &obs.Trace().Records[i]
		if r.Kind == trace.KMsgSend && obs.Trace().Str(r.Aux) == "marker" {
			site = obs.Trace().Str(r.Site)
		}
	}
	if site == "" {
		t.Fatal("marker send not traced")
	}

	plan := sim.NewScenarioPlan([]sim.FaultSpec{{
		Site: site, Occurrence: 1, When: sim.WhenBefore, Action: sim.ActionNodeCrash,
	}}, nil)
	c, out := build(plan)
	if c.FactStr("got-marker") != "" {
		t.Fatal("crash-before-send did not suppress the send")
	}
	if len(out.Crashed) != 1 || out.Crashed[0] != "tx#1" {
		t.Fatalf("crashed = %v, want tx#1", out.Crashed)
	}

	// Kernel drop: the sender survives, the message is lost.
	plan = sim.NewScenarioPlan([]sim.FaultSpec{{
		Site: site, Occurrence: 1, When: sim.WhenBefore, Action: sim.ActionKernelDrop,
	}}, nil)
	c, out = build(plan)
	if c.FactStr("got-marker") != "" {
		t.Fatal("kernel drop did not suppress delivery")
	}
	if len(out.Crashed) != 0 {
		t.Fatalf("kernel drop crashed something: %v", out.Crashed)
	}
}

func TestTriggerOccurrenceCounting(t *testing.T) {
	build := func(plan *sim.FaultPlan) *sim.Cluster {
		c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective, Plan: plan})
		c.StartProcess("rx", "m0", func(ctx *sim.Context) {
			ctx.Self().HandleMsg("n", func(ctx *sim.Context, m sim.Message) {
				ctx.Cluster().SetFact("last", m.Payload.Str())
			})
			ctx.Sleep(500)
		})
		c.StartProcess("tx", "m1", func(ctx *sim.Context) {
			for i := 1; i <= 5; i++ {
				_ = ctx.Send("rx", "n", sim.V(i))
				ctx.Sleep(30)
			}
		})
		c.Run()
		return c
	}
	c := build(nil)
	var site string
	for i := range c.Trace().Records {
		r := &c.Trace().Records[i]
		if r.Kind == trace.KMsgSend && c.Trace().Str(r.Aux) == "n" {
			site = c.Trace().Str(r.Site)
		}
	}
	// Crash the sender right before the 3rd send: only 1 and 2 arrive.
	c = build(sim.NewScenarioPlan([]sim.FaultSpec{{
		Site: site, Occurrence: 3, When: sim.WhenBefore, Action: sim.ActionNodeCrash,
	}}, nil))
	if got := c.FactStr("last"); got != "2" {
		t.Fatalf("last delivered = %q, want 2", got)
	}
}

func TestConvictSubscription(t *testing.T) {
	plan := sim.NewObservationPlan("worker", 80, nil)
	c := sim.NewCluster(sim.Config{Seed: 1, Plan: plan})
	c.StartProcess("worker", "m0", func(ctx *sim.Context) { ctx.Sleep(1_000) })
	boss := c.StartProcess("boss", "m1", func(ctx *sim.Context) {
		ctx.Self().HandleMsg("convict", func(ctx *sim.Context, m sim.Message) {
			ctx.Cluster().SetFact("dead", m.Payload.Str())
		})
		ctx.Sleep(300)
	})
	c.SubscribeConvict("worker", boss)
	c.Run()
	if got := c.FactStr("dead"); got != "worker#1" {
		t.Fatalf("convict payload = %q", got)
	}
}

// Determinism is the simulator's core contract: identical configuration
// yields an identical trace. Checked property-style across seeds.
func TestDeterminismAcrossSeeds(t *testing.T) {
	runOnce := func(seed int64) string {
		c := sim.NewCluster(sim.Config{Seed: seed, Tracing: sim.TraceSelective})
		twoNodeApp(8)(c)
		c.Run()
		s := ""
		for i := range c.Trace().Records {
			s += c.Trace().Format(&c.Trace().Records[i]) + "\n"
		}
		return s
	}
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		seed %= 1000
		return runOnce(seed) == runOnce(seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestValueHelpers(t *testing.T) {
	cases := []struct {
		v sim.Value
		b bool
		i int
		s string
	}{
		{sim.V(nil), false, 0, ""},
		{sim.V(true), true, 0, "true"},
		{sim.V(0), false, 0, "0"},
		{sim.V(17), true, 17, "17"},
		{sim.V(int64(9)), true, 9, "9"},
		{sim.V(""), false, 0, ""},
		{sim.V("x"), true, 0, "x"},
	}
	for i, c := range cases {
		if c.v.Bool() != c.b || c.v.Int() != c.i || c.v.Str() != c.s {
			t.Errorf("case %d: Bool/Int/Str = %v/%d/%q, want %v/%d/%q",
				i, c.v.Bool(), c.v.Int(), c.v.Str(), c.b, c.i, c.s)
		}
	}
}

func TestDeriveMergesTaints(t *testing.T) {
	a := sim.V(1).WithTaint(3, 1)
	b := sim.V(2).WithTaint(2, 3)
	d := sim.Derive("x", a, b)
	got := d.Taint()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("merged taints = %v, want [1 2 3]", got)
	}
}

func TestTaintCapIsBounded(t *testing.T) {
	f := func(ids []int64) bool {
		v := sim.V(0)
		for _, id := range ids {
			if id < 0 {
				id = -id
			}
			v = v.WithTaint(trace.OpID(id + 1))
		}
		taints := v.Taint()
		if len(taints) > 64 {
			return false
		}
		for i := 1; i < len(taints); i++ {
			if taints[i] <= taints[i-1] {
				return false // must stay sorted and deduplicated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
