package sim

import (
	"fcatch/internal/trace"
)

// SendOpt modifies Send behaviour.
type SendOpt func(*sendCfg)

type sendCfg struct {
	droppable bool
}

// Droppable marks the message as application-level droppable (Cassandra's
// droppable verbs): the fault injector may silently skip the send.
func Droppable() SendOpt { return func(c *sendCfg) { c.droppable = true } }

// Send delivers an asynchronous message to the process currently serving the
// target role (or an explicit PID containing '#'). The handler registered
// for the verb runs on the receiver's message-dispatcher thread and causally
// depends on this send.
//
// Faults: a kernel-level drop makes Send return ErrSocket (the analog of a
// SocketException at the sender); an application-level drop (droppable verbs
// only) makes Send silently succeed without delivery. Sends to a crashed or
// unknown destination return ErrSocket / ErrNoRoute.
func (ctx *Context) Send(target, verb string, payload Value, opts ...SendOpt) error {
	var cfg sendCfg
	for _, o := range opts {
		o(&cfg)
	}
	pid := ctx.c.resolve(target)
	var flags uint32
	if cfg.droppable {
		flags |= trace.FlagDroppable
	}

	c := ctx.c
	dst := c.nodes[pid]
	deliverable := dst != nil && !dst.crashed

	// Inlined Do pipeline (sends are hot; the effect is a plain flag, so no
	// closure is needed): trigger check → effect → record → trigger check →
	// scheduler step, with the same drop handling Do applies to sends.
	site := ctx.site()
	dropAction, dropped := c.checkTrigger(site, Before, true)
	sent := !dropped && deliverable
	emitFlags := flags
	if dropped {
		emitFlags |= trace.FlagDropped
	}
	id := c.tracer.emit(ctx.t, opSpec{
		Kind:   trace.KMsgSend,
		Aux:    verb,
		Target: pid,
		Taint:  payload.taint,
		Flags:  emitFlags,
		Site:   site,
	})
	if a, d := c.checkTrigger(site, After, true); d && !dropped {
		dropAction, dropped = a, d
	}
	ctx.t.yieldStep(c)
	if dropped {
		switch dropAction {
		case ActDropKernel:
			return ErrSocket
		case ActDropApp:
			if cfg.droppable {
				return nil // silently lost in the sending queue
			}
			return ErrSocket
		}
	}
	if pid == "" {
		return ErrNoRoute
	}
	if !sent {
		return ErrSocket
	}
	dst.msgQ.push(queuedItem{verb: verb, payload: payload, from: ctx.PID(), causor: id})
	return nil
}

// resolve maps a role name to its live PID; strings containing '#' are
// treated as explicit PIDs.
func (c *Cluster) resolve(target string) string {
	for i := 0; i < len(target); i++ {
		if target[i] == '#' {
			return target
		}
	}
	if id, ok := c.roleIdx[target]; ok {
		if n := c.roleService[id]; n != nil {
			return n.PID
		}
	}
	return ""
}
