package sim

import (
	"fmt"
	"math/rand"
	"time"

	"fcatch/internal/trace"
)

// TracingMode selects what the tracer records (Section 3.2 / Section 8.2).
type TracingMode int

const (
	// TraceOff disables tracing entirely (the paper's uninstrumented baseline).
	TraceOff TracingMode = iota
	// TraceSelective records happens-before ops, storage ops, sync-loop reads,
	// and heap accesses only inside RPC/message/event handlers and callees —
	// FCatch's production setting.
	TraceSelective
	// TraceExhaustive additionally records every heap access anywhere — the
	// Section 8.2 ablation that makes real systems keel over.
	TraceExhaustive
)

// Config parameterizes a cluster run.
type Config struct {
	Seed     int64
	Tracing  TracingMode
	MaxSteps int64 // step budget; exceeding it marks the run hung

	// TraceTickCost is added to the logical clock per traced record,
	// modelling instrumentation slowdown inside simulated time. It is what
	// lets the exhaustive-tracing ablation perturb gossip timing (§8.2).
	TraceTickCost int64

	// RPCClientTimeout, when >0, gives every RPC client wait a timeout of
	// that many ticks (the wait is then recorded as a timed wait and calls
	// return ErrRPCTimeout on expiry). Hadoop-MR's RPC client famously has
	// none, which is bug MR3.
	RPCClientTimeout int64

	// RPCFailFast makes in-flight calls fail immediately when the callee
	// crashes (TCP reset analog). MR's ancient IPC layer does not do this.
	RPCFailFast bool

	// Plan is the fault plan for this run (nil = fault-free).
	Plan *FaultPlan

	// TraceBatch bounds the record window size delivered to OnTraceWindow
	// (0 = trace.DefaultBatch).
	TraceBatch int

	// OnTraceWindow, when set, receives each bounded window of freshly traced
	// records while the run executes (under the scheduler baton), plus a
	// final partial window before Run returns — letting consumers (index
	// builders, coverage folds, stream encoders) overlap the simulation.
	// With TraceDiscard the window slice is reused; consume it synchronously.
	OnTraceWindow trace.WindowFn

	// TraceDiscard streams records to OnTraceWindow without retaining them
	// in the trace: Trace() then carries only symbol/stack tables, PIDs and
	// run metadata, and a traced run's memory stays O(TraceBatch). Only
	// meaningful for runs whose records are consumed through the window
	// hook (fault-injection campaigns, trigger replays).
	TraceDiscard bool
}

// DefaultMaxSteps bounds runs that hang.
const DefaultMaxSteps = 400_000

// Cluster is one simulated distributed system instance. All mutation happens
// under the scheduler baton, so no internal locking is needed.
type Cluster struct {
	cfg Config
	rng *rand.Rand

	clock   int64
	nextTID int
	nextSeq int64 // deterministic id source for messages/calls/events

	nodes    map[string]*Node // PID -> process (API-boundary lookups)
	nodeList []*Node          // every process in start order (internal iteration)
	threads  []*Thread
	timers   timerHeap
	running  bool

	// Direct-handoff scheduler state: the baton moves thread-to-thread, with
	// mainSem parking the Run goroutine while the workload executes.
	mainSem       chan struct{}
	curThread     *Thread
	runScratch    []*Thread // reusable runnable-scan buffer
	liveNonDaemon int       // non-daemon threads still alive (workloadDone is O(1))
	killPendingN  int       // threads awaiting the kill reaper
	fnTimers      int       // armed scheduler-callback timers
	deadThreads   int       // finished threads still on the scan list
	reaping       bool      // inside the kill-reap scan (mirrors the old processKills loop)
	tearingDown   bool      // Run teardown: batons return straight to main

	// Role identities are interned to dense indices at first boot, so service
	// resolution, incarnation counting and restart bookkeeping index slices
	// instead of hashing through role-keyed maps.
	roleIdx     map[string]int
	roleNames   []string
	roleService []*Node // roleID -> live incarnation (nil = none)
	roleIncarn  []int   // roleID -> next incarnation number
	roleBootFn  []func(*Context)
	roleBootMac []string

	// Site identities: every static op site (file:line, pseudo-sites, "plan")
	// is interned once into a dense cluster-local table. Hot paths — trigger
	// matching, occurrence counting, hang bookkeeping, the tracer — carry and
	// compare SiteIDs; strings are rendered only at the boundary.
	siteIdx    map[string]SiteID
	siteStrs   []string
	siteSyms   []trace.Sym        // SiteID -> trace Sym (0 = not yet interned there)
	siteCounts []int32            // SiteID -> occurrences, for trigger points
	siteCache  map[uintptr]SiteID // PC -> SiteID (NoSite = substrate frame)

	// Pre-interned fixed sites (pseudo-sites that are not source positions).
	sitePlan          SiteID // "plan"
	siteUnknown       SiteID // "unknown" (no app frame within the PC window)
	siteRPCClientWait SiteID
	siteRPCReplySig   SiteID
	siteRPCReplySend  SiteID

	tracer *tracer
	out    Outcome
	facts  map[string]any

	crashHooks     []func(pid string)
	convictSubs    map[string][]string // watched role -> subscriber PIDs (verb "convict")
	recoveryLabels map[string]bool     // handler labels registered as recovery roots
	pendingPlan    *FaultPlan
	startWall      time.Time
}

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	c := &Cluster{
		cfg:            cfg,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		nodes:          make(map[string]*Node),
		mainSem:        make(chan struct{}, 1),
		roleIdx:        make(map[string]int),
		siteIdx:        make(map[string]SiteID, 64),
		siteStrs:       []string{""},
		siteSyms:       []trace.Sym{0},
		siteCounts:     []int32{0},
		siteCache:      make(map[uintptr]SiteID, 64),
		facts:          make(map[string]any),
		convictSubs:    make(map[string][]string),
		recoveryLabels: make(map[string]bool),
		pendingPlan:    cfg.Plan,
	}
	c.siteIdx[""] = NoSite
	c.sitePlan = c.internSite("plan")
	c.siteUnknown = c.internSite("unknown")
	c.siteRPCClientWait = c.internSite(SiteRPCClientWait)
	c.siteRPCReplySig = c.internSite(SiteRPCReplySig)
	c.siteRPCReplySend = c.internSite(SiteRPCReplySend)
	c.tracer = newTracer(c)
	if p := c.pendingPlan; p != nil {
		c.preparePlan(p)
	}
	return c
}

// internSite interns a site string into the cluster's dense site table.
func (c *Cluster) internSite(s string) SiteID {
	if s == "" {
		return NoSite
	}
	if id, ok := c.siteIdx[s]; ok {
		return id
	}
	id := SiteID(len(c.siteStrs))
	c.siteStrs = append(c.siteStrs, s)
	c.siteSyms = append(c.siteSyms, 0)
	c.siteCounts = append(c.siteCounts, 0)
	c.siteIdx[s] = id
	return id
}

// siteStr renders a SiteID back to its string form (boundary output only).
func (c *Cluster) siteStr(id SiteID) string {
	if int(id) < len(c.siteStrs) {
		return c.siteStrs[id]
	}
	return ""
}

// roleID interns a role name to its dense index.
func (c *Cluster) roleID(role string) int {
	if id, ok := c.roleIdx[role]; ok {
		return id
	}
	id := len(c.roleNames)
	c.roleIdx[role] = id
	c.roleNames = append(c.roleNames, role)
	c.roleService = append(c.roleService, nil)
	c.roleIncarn = append(c.roleIncarn, 0)
	c.roleBootFn = append(c.roleBootFn, nil)
	c.roleBootMac = append(c.roleBootMac, "")
	return id
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Clock returns the current logical time.
func (c *Cluster) Clock() int64 { return c.clock }

// Trace returns the trace recorded so far (nil when tracing is off).
func (c *Cluster) Trace() *trace.Trace { return c.tracer.trace }

// SetFact publishes an app-level fact (e.g. a job result) that workload
// checkers inspect after the run.
func (c *Cluster) SetFact(key string, v any) { c.facts[key] = v }

// Fact retrieves a published fact (nil if absent).
func (c *Cluster) Fact(key string) any { return c.facts[key] }

// FactStr retrieves a fact as a string.
func (c *Cluster) FactStr(key string) string {
	if s, ok := c.facts[key].(string); ok {
		return s
	}
	return ""
}

// OnProcessCrash registers a hook invoked (under the baton) whenever a
// process crashes. The KV store uses it to expire ephemeral znodes.
func (c *Cluster) OnProcessCrash(fn func(pid string)) {
	c.crashHooks = append(c.crashHooks, fn)
}

// SubscribeConvict makes subscriber receive a "convict" message (carrying the
// dead PID) whenever a process of the watched role crashes — the stand-in for
// Cassandra's IFailureDetectionEventListener::convict.
func (c *Cluster) SubscribeConvict(watchedRole, subscriberPID string) {
	c.convictSubs[watchedRole] = append(c.convictSubs[watchedRole], subscriberPID)
}

// MarkRecoveryHandler registers a handler label (e.g. "event:rs-deleted" or
// "msg:convict") as a developer-specified recovery interface (Section 4.3.1:
// "If developers specify recovery-handler interfaces or functions, FCatch
// can identify more recovery operations"). Every invocation of the handler
// is flagged as a recovery root in traces.
func (c *Cluster) MarkRecoveryHandler(label string) {
	c.recoveryLabels[label] = true
}

// Node returns the process with the given PID (nil if unknown).
func (c *Cluster) Node(pid string) *Node { return c.nodes[pid] }

// PIDs returns all process IDs in start order.
func (c *Cluster) PIDs() []string {
	out := make([]string, len(c.nodeList))
	for i, n := range c.nodeList {
		out[i] = n.PID
	}
	return out
}

// Lookup resolves a role to its current live process PID ("" if none).
func (c *Cluster) Lookup(role string) string {
	if id, ok := c.roleIdx[role]; ok {
		if n := c.roleService[id]; n != nil {
			return n.PID
		}
	}
	return ""
}

// StartProcess boots a new process of the given role on a machine, running
// main as its root thread. It returns the PID ("role#N"). The boot function
// is remembered so fault plans can restart the role.
func (c *Cluster) StartProcess(role, machine string, main func(*Context)) string {
	id := c.roleID(role)
	c.roleBootFn[id] = main
	c.roleBootMac[id] = machine
	return c.startIncarnation(id, machine, main, trace.NoOp)
}

func (c *Cluster) startIncarnation(roleID int, machine string, main func(*Context), causor trace.OpID) string {
	c.roleIncarn[roleID]++
	role := c.roleNames[roleID]
	pid := fmt.Sprintf("%s#%d", role, c.roleIncarn[roleID])
	n := newNode(c, pid, role, machine)
	n.roleID = roleID
	c.nodes[pid] = n
	c.nodeList = append(c.nodeList, n)
	c.roleService[roleID] = n
	n.startSystemThreads()
	c.spawnThread(n, "main", main, causor, false, false)
	return pid
}

// RestartRole relaunches a crashed role as a fresh process (the recovery node
// of Section 4.3.1). Used by fault plans and by app-level supervisors.
func (c *Cluster) RestartRole(role string, causor trace.OpID) string {
	id, ok := c.roleIdx[role]
	if !ok || c.roleBootFn[id] == nil {
		panic(fmt.Sprintf("sim: restart of unknown role %q", role))
	}
	pid := c.startIncarnation(id, c.roleBootMac[id], c.roleBootFn[id], causor)
	c.tracer.emitSystem(opSpec{Kind: trace.KRestart, Aux: pid})
	return pid
}

// Outcome summarizes a finished run.
type Outcome struct {
	Completed     bool // every non-daemon thread finished
	StepBudgetHit bool
	Steps         int64
	Elapsed       time.Duration

	Hung               []HangSite
	Crashed            []string // PIDs crashed (injected or cascading)
	FatalLogs          []string
	ErrorLogs          []string
	UncaughtExceptions []string
	HandledExceptions  []string
	CheckErr           error // filled by the workload checker, if any

	// FaultFirings are the plan's scenario events that actually fired, in
	// firing order — each with its victim, step and anchor. This is the
	// per-fault record hazard-window derivation consumes; Crashed above
	// remains the flat union (plan victims plus app-level kills).
	FaultFirings []FaultFiring
}

// HangSite describes one thread that was still alive when the run ended.
type HangSite struct {
	PID    string
	Thread int
	Name   string
	Site   string // where it blocked (or last yielded)
	Reason string
}

// Failed reports whether the run ended badly (hang, fatal, uncaught
// exception, or checker failure).
func (o *Outcome) Failed() bool {
	return !o.Completed || len(o.FatalLogs) > 0 || len(o.UncaughtExceptions) > 0 || o.CheckErr != nil
}

// FailureKind returns a coarse label for report classification.
func (o *Outcome) FailureKind() string {
	switch {
	case len(o.UncaughtExceptions) > 0:
		return "exception"
	case len(o.FatalLogs) > 0:
		return "fatal"
	case !o.Completed && o.StepBudgetHit:
		return "hang"
	case !o.Completed:
		return "hang"
	case o.CheckErr != nil:
		return "check"
	}
	return "ok"
}
