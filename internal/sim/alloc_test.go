package sim_test

import (
	"runtime"
	"runtime/debug"
	"testing"

	"fcatch/internal/sim"
)

// TestSteadyStateStepZeroAllocs pins the scheduler's allocation contract: once
// a cluster is in steady state, one scheduler step (yield → schedule → resume
// on the switch-free fast path) allocates nothing. A cluster is single-use, so
// the test can't loop one step under testing.AllocsPerRun; instead it runs two
// clusters differing only in yield count and attributes the malloc delta to
// the extra steps.
func TestSteadyStateStepZeroAllocs(t *testing.T) {
	mallocsFor := func(yields int) uint64 {
		c := sim.NewCluster(sim.Config{Seed: 1, MaxSteps: int64(yields) + 1_000})
		c.StartProcess("node", "m0", func(ctx *sim.Context) {
			for i := 0; i < yields; i++ {
				ctx.Yield()
			}
		})
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		c.Run()
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	mallocsFor(100) // warm the runtime (lazily grown internals)
	small := mallocsFor(1_000)
	large := mallocsFor(21_000)

	extra := int64(large) - int64(small)
	const steps = 20_000
	if perStep := float64(extra) / steps; perStep > 0.01 {
		t.Fatalf("steady-state stepping allocates: %d extra mallocs over %d extra steps (%.4f/step), want 0",
			extra, steps, perStep)
	}
}
