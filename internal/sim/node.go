package sim

import (
	"fmt"

	"fcatch/internal/trace"
)

// Node is one process of the simulated system. The paper uses node and
// process interchangeably (Section 2, Terminology); so do we. A restarted
// role is a *new* Node with a fresh PID on the same machine.
type Node struct {
	c       *Cluster
	PID     string
	Role    string
	Machine string
	roleID  int // dense index into the cluster's role tables

	// pidSym/machineSym are PID and Machine interned into the run's trace
	// once at node creation, so the tracer stamps them on every record
	// without a table lookup (NoSym when tracing is off).
	pidSym     trace.Sym
	machineSym trace.Sym

	crashed bool
	threads []*Thread

	nextObj int64
	objects map[int64]*Object

	rpcHandlers   map[string]rpcHandler
	msgHandlers   map[string]msgHandler
	eventHandlers map[string]eventHandler

	msgQ         *dispatchQueue
	eventQ       *dispatchQueue
	replyQ       *dispatchQueue
	pendingCalls map[int64]*callState

	// stashes hold items whose handler is not registered yet: processes
	// register handlers at the top of their main function, and anything
	// arriving earlier waits, like packets on a not-yet-accepted socket.
	msgStash   map[string][]queuedItem
	eventStash map[string][]queuedItem
	rpcStash   map[string][]pendingRPC

	namedObjs  map[string]*Object
	namedConds map[string]*Cond
}

// pendingRPC is a call that arrived before its handler was registered.
type pendingRPC struct {
	method    string
	args      []Value
	callOp    trace.OpID
	callerPID string
	callID    int64
}

// Handler registrations carry their frame/thread labels precomputed, so
// dispatching an item never concatenates strings.
type rpcHandler struct {
	fn   func(*Context, []Value) Value
	name string // "rpc:<method>" — handler thread name and scope label
}

type msgHandler struct {
	fn    func(*Context, Message)
	label string // "msg:<verb>"
}

type eventHandler struct {
	fn    func(*Context, Value)
	label string // "event:<type>"
}

func newNode(c *Cluster, pid, role, machine string) *Node {
	return &Node{
		c: c, PID: pid, Role: role, Machine: machine,
		pidSym: c.tracer.sym(pid), machineSym: c.tracer.sym(machine),
		objects:       make(map[int64]*Object),
		rpcHandlers:   make(map[string]rpcHandler),
		msgHandlers:   make(map[string]msgHandler),
		eventHandlers: make(map[string]eventHandler),
		msgQ:          &dispatchQueue{},
		eventQ:        &dispatchQueue{},
		replyQ:        &dispatchQueue{},
		pendingCalls:  make(map[int64]*callState),
		msgStash:      make(map[string][]queuedItem),
		eventStash:    make(map[string][]queuedItem),
		rpcStash:      make(map[string][]pendingRPC),
		namedObjs:     make(map[string]*Object),
		namedConds:    make(map[string]*Cond),
	}
}

// Crashed reports whether the process has crashed.
func (n *Node) Crashed() bool { return n.crashed }

// HandleRPC registers an RPC method handler. Each incoming call runs in its
// own handler thread whose operations causally come from the caller node.
// Calls that arrived before registration are dispatched now.
func (n *Node) HandleRPC(method string, fn func(*Context, []Value) Value) {
	n.rpcHandlers[method] = rpcHandler{fn: fn, name: "rpc:" + method}
	pend := n.rpcStash[method]
	delete(n.rpcStash, method)
	for _, p := range pend {
		n.spawnRPCHandler(p)
	}
}

// HandleMsg registers an asynchronous message handler; messages to this node
// are dispatched serially by its message-dispatcher thread. Messages that
// arrived before registration are re-queued now.
func (n *Node) HandleMsg(verb string, fn func(*Context, Message)) {
	n.msgHandlers[verb] = msgHandler{fn: fn, label: "msg:" + verb}
	for _, it := range n.msgStash[verb] {
		n.msgQ.push(it)
	}
	delete(n.msgStash, verb)
}

// HandleEvent registers an intra-node event handler; events are dispatched
// serially by the node's event-dispatcher thread (the ZKWatcherThread
// pattern of Figure 6). Events that arrived before registration are
// re-queued now.
func (n *Node) HandleEvent(typ string, fn func(*Context, Value)) {
	n.eventHandlers[typ] = eventHandler{fn: fn, label: "event:" + typ}
	for _, it := range n.eventStash[typ] {
		n.eventQ.push(it)
	}
	delete(n.eventStash, typ)
}

// Message is an asynchronous message delivered to a HandleMsg handler.
type Message struct {
	From    string
	Verb    string
	Payload Value
}

// queuedItem is one unit of dispatcher work.
type queuedItem struct {
	verb    string
	payload Value
	from    string
	causor  trace.OpID
	flags   uint32
	callID  int64 // for rpc replies
	err     error // for rpc replies
}

// dispatchQueue is a FIFO consumed by one daemon thread. All access happens
// under the scheduler baton. Consumed entries advance a head index instead of
// re-slicing, and the backing array is rewound whenever the queue drains, so
// steady-state dispatch reuses one slot array instead of allocating per item.
type dispatchQueue struct {
	items  []queuedItem
	head   int
	waiter *Thread
}

func (q *dispatchQueue) push(it queuedItem) {
	q.items = append(q.items, it)
	if q.waiter != nil {
		w := q.waiter
		q.waiter = nil
		w.wake(resumeMsg{})
	}
}

// pop blocks the calling dispatcher thread until an item is available.
func (q *dispatchQueue) pop(ctx *Context) queuedItem {
	for q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		q.waiter = ctx.t
		ctx.t.block(ctx.c, "dispatch-idle", NoSite)
	}
	it := q.items[q.head]
	q.items[q.head] = queuedItem{} // release payload references
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it
}

// startSystemThreads launches the node's dispatcher daemons.
func (n *Node) startSystemThreads() {
	n.c.spawnThread(n, "msg-dispatcher", func(ctx *Context) {
		for {
			it := n.msgQ.pop(ctx)
			h, ok := n.msgHandlers[it.verb]
			if !ok {
				n.msgStash[it.verb] = append(n.msgStash[it.verb], it)
				continue
			}
			ctx.runHandlerFrame(h.label, it.causor, it.flags, func() {
				h.fn(ctx, Message{From: it.from, Verb: it.verb, Payload: it.payload})
			})
		}
	}, trace.NoOp, true, false)

	n.c.spawnThread(n, "event-dispatcher", func(ctx *Context) {
		for {
			it := n.eventQ.pop(ctx)
			h, ok := n.eventHandlers[it.verb]
			if !ok {
				n.eventStash[it.verb] = append(n.eventStash[it.verb], it)
				continue
			}
			ctx.runHandlerFrame(h.label, it.causor, it.flags, func() {
				h.fn(ctx, it.payload)
			})
		}
	}, trace.NoOp, true, false)

	n.c.spawnThread(n, "ipc-responder", func(ctx *Context) {
		for {
			it := n.replyQ.pop(ctx)
			cs, ok := n.pendingCalls[it.callID]
			if !ok {
				continue // caller gone (killed) or already failed
			}
			delete(n.pendingCalls, it.callID)
			ctx.runHandlerFrame("rpc-response", it.causor, 0, func() {
				// The signal that unblocks the RPC client wait. Its
				// disappearance (reply dropped, callee crashed pre-reply)
				// is exactly the crash-regular hazard of bug MR3.
				cs.done.signalInternal(ctx, it.payload, it.err, ctx.c.siteRPCReplySig)
			})
		}
	}, trace.NoOp, true, false)
}

// PostEvent enqueues an event on this node's event queue from an arbitrary
// context (used by storage watch notification). causor is the op the handler
// should causally depend on.
func (n *Node) PostEvent(typ string, payload Value, causor trace.OpID, flags uint32) {
	if n.crashed {
		return
	}
	n.eventQ.push(queuedItem{verb: typ, payload: payload, causor: causor, flags: flags})
}

// crash marks the process dead: its threads are killed, its heap disappears,
// pending calls to it fail (if the cluster is fail-fast), convict
// subscribers are notified, and restart policies fire. Local files survive —
// they belong to the machine, not the process. restartOverride, when
// non-nil, replaces the plan's RestartRoles entry for this victim (>= 0
// restarts after that delay, < 0 pins the process down).
func (c *Cluster) crashProcess(pid string, selfSite SiteID, restartOverride *int64) {
	n := c.nodes[pid]
	if n == nil || n.crashed {
		return
	}
	n.crashed = true
	c.out.Crashed = append(c.out.Crashed, pid)
	if c.roleService[n.roleID] == n {
		c.roleService[n.roleID] = nil
	}
	c.tracer.emitSystem(opSpec{Kind: trace.KCrash, Aux: pid, Site: selfSite})
	if c.tracer.trace != nil && c.tracer.trace.CrashedPID == "" {
		c.tracer.trace.CrashedPID = pid
		c.tracer.trace.CrashStep = c.clock
	}

	for _, t := range n.threads {
		if t.alive() {
			t.killPending = true
			c.killPendingN++
		}
	}

	// Fail or strand in-flight calls *to* this process.
	if c.cfg.RPCFailFast {
		for _, pn := range c.nodeList {
			for id, cs := range pn.pendingCalls {
				if cs.callee == pid {
					delete(pn.pendingCalls, id)
					cs.done.failInternal(ErrSocket)
				}
			}
		}
	}

	for _, hook := range c.crashHooks {
		hook(pid)
	}

	// Convict notifications (Cassandra's failure-detector listener).
	for _, sub := range c.convictSubs[n.Role] {
		if sn := c.nodes[sub]; sn != nil && !sn.crashed {
			sn.msgQ.push(queuedItem{
				verb:    "convict",
				from:    "failure-detector",
				payload: V(pid),
				causor:  trace.NoOp,
				flags:   trace.FlagRecoveryRoot,
			})
		}
	}

	// Plan-driven restart of the role (operator behaviour). A per-event
	// override wins over the plan's role map.
	delay, restart := int64(0), false
	if restartOverride != nil {
		if *restartOverride >= 0 {
			delay, restart = *restartOverride, true
		}
	} else if c.pendingPlan != nil {
		delay, restart = c.pendingPlan.RestartRoles[n.Role]
	}
	if restart {
		role := n.Role
		c.addTimer(c.clock+delay, nil, func() {
			if c.Lookup(role) == "" {
				c.RestartRole(role, trace.NoOp)
			}
		})
	}
}

// CrashNow crashes the process executing ctx (used by app-level supervisors
// that shoot misbehaving workers, e.g. the RM killing task containers).
func (ctx *Context) CrashNow(pid string) {
	ctx.c.crashProcess(pid, NoSite, nil)
	if ctx.t.node.crashed {
		panic(killedPanic{})
	}
}

// errString formats app errors.
func errString(op, detail string) error { return fmt.Errorf("%s: %s", op, detail) }
