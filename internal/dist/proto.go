// Package dist shards a fault-injection campaign across worker processes
// over TCP. The coordinator runs the campaign engine (strategy, corpus,
// prior-corpus cache) unchanged through a distributed Executor: each strategy
// batch is partitioned into leases of N plans, leases stream to whichever
// workers are registered, and results fold back into the corpus in proposal
// order. Because every plan's result is a pure function of (workload, seed,
// plan), and because the merge is keyed by lease index rather than arrival
// order, the final corpus is byte-identical to a single-process run
// regardless of worker count, join order, or lease interleaving.
//
// Robustness model: worker liveness is "a frame arrived recently" — workers
// heartbeat on an interval the coordinator dictates at handshake, and the
// coordinator reads with a rolling deadline. A worker that crashes, hangs,
// or disconnects forfeits its outstanding lease, which is requeued (bounded
// attempts, exponential backoff) for the surviving workers. An optional hard
// lease expiry reassigns a lease even from a worker that still heartbeats;
// duplicate deliveries are deduped first-wins, which is safe precisely
// because results are deterministic.
package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"fcatch/internal/campaign"
)

// ProtoVersion is the wire protocol generation. A mismatch at handshake is a
// hard error: leases carry strategy-proposed plans, and silently degrading
// would break the corpus-parity contract. Version 2: plans are scenarios
// (composite fault events — then/target/delay/restart fields); a version-1
// worker would silently drop the extra events.
const ProtoVersion = 2

// maxFrame bounds one length-prefixed frame. Leases hold at most a strategy
// batch of plans and results carry their signatures; 16 MiB is orders of
// magnitude above either, so anything larger is a corrupt or hostile peer.
const maxFrame = 16 << 20

// Message types.
const (
	// msgHello: worker -> coordinator, first frame after connect.
	msgHello = "hello"
	// msgConfig: coordinator -> worker, handshake reply pinning the campaign
	// identity (workload, seed, tracing mode) and the heartbeat interval.
	msgConfig = "config"
	// msgLease: coordinator -> worker, one lease of plans to execute.
	msgLease = "lease"
	// msgResult: worker -> coordinator, the lease's results in plan order.
	msgResult = "result"
	// msgHeartbeat: worker -> coordinator, "still alive" (sent on a ticker,
	// including while a lease is executing).
	msgHeartbeat = "heartbeat"
	// msgDrain: coordinator -> worker, campaign over — exit cleanly.
	msgDrain = "drain"
	// msgError: either direction, fatal condition description before close.
	msgError = "error"
)

// message is the single frame shape of the protocol; Type selects which
// fields are meaningful. One struct keeps decoding trivial (no two-step
// envelope unmarshal) at the cost of a few always-empty fields per frame.
type message struct {
	Type string `json:"type"`

	// Hello fields.
	Proto  int    `json:"proto,omitempty"`
	Worker string `json:"worker,omitempty"`

	// Config fields.
	Workload    string `json:"workload,omitempty"`
	Strategy    string `json:"strategy,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	Traced      bool   `json:"traced,omitempty"`
	HeartbeatMS int64  `json:"heartbeat_ms,omitempty"`

	// Lease / result fields.
	Lease   uint64               `json:"lease,omitempty"`
	Plans   []campaign.Plan      `json:"plans,omitempty"`
	Results []campaign.RunResult `json:"results,omitempty"`

	// Error field.
	Err string `json:"err,omitempty"`
}

// writeMessage frames m as a big-endian uint32 length followed by its JSON
// encoding. Callers serialize writes per connection (heartbeats and results
// share a socket on the worker side).
func writeMessage(w io.Writer, m *message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encode %s frame: %w", m.Type, err)
	}
	if len(data) > maxFrame {
		return fmt.Errorf("dist: %s frame of %d bytes exceeds the %d-byte limit", m.Type, len(data), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// readMessage reads one frame into m, enforcing the frame-size bound before
// allocating.
func readMessage(r *bufio.Reader, m *message) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("dist: incoming frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	*m = message{}
	if err := json.Unmarshal(data, m); err != nil {
		return fmt.Errorf("dist: decode frame: %w", err)
	}
	if m.Type == "" {
		return fmt.Errorf("dist: frame missing type")
	}
	return nil
}
