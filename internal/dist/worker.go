package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fcatch/internal/campaign"
	"fcatch/internal/core"
	"fcatch/internal/obs"
)

// WorkerConfig parameterizes one campaign worker.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Name identifies the worker in coordinator logs ("" = worker-<pid>).
	Name string
	// Parallelism bounds the worker's local fan-out per lease
	// (0 = GOMAXPROCS, 1 = sequential). Purely a throughput knob — results
	// are identical at any setting.
	Parallelism int
	// Resolve maps the coordinator's workload name to a runnable workload
	// (the CLI passes fcatch.ByName). Required.
	Resolve func(name string) (core.Workload, error)
	// DialAttempts bounds connection attempts before giving up (0 = 10);
	// retries back off exponentially from DialBackoff (0 = 100ms, capped at
	// 2s) so a worker can be started before its coordinator.
	DialAttempts int
	DialBackoff  time.Duration
	// Metrics, when non-nil, receives worker-side telemetry: lease/plan
	// counts, per-lease execution latency, heartbeats sent. Observe-only.
	Metrics *obs.Registry

	// FailAfterLeases is a fault-injection hook for the subsystem's own
	// tests: when N > 0, the worker abandons the Nth lease it is granted —
	// it drops the connection after the grant, without executing or
	// replying. That is precisely "worker crashes between lease grant and
	// result return".
	FailAfterLeases int
	// HangAfterLeases: when N > 0, the worker goes silent on the Nth lease —
	// no result, no heartbeats, connection held open — until the coordinator
	// gives up on it. The frozen-process case (the coordinator's read
	// deadline fires).
	HangAfterLeases int
	// LivelockAfterLeases: when N > 0, the worker keeps heartbeating on the
	// Nth lease but never returns a result — the hung-but-alive case only
	// Options.LeaseExpiry can break.
	LivelockAfterLeases int
}

func (cfg WorkerConfig) withDefaults() WorkerConfig {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 10
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 100 * time.Millisecond
	}
	return cfg
}

// RunWorker connects to a coordinator, executes leases with the same
// engine-identical code path local campaigns use (campaign.ExecPlans), and
// returns when the coordinator drains or the context is cancelled. A nil
// error means a clean exit (drain or cancellation); anything else is a
// protocol or execution failure.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Resolve == nil {
		return errors.New("dist: WorkerConfig.Resolve is required")
	}

	conn, err := dialRetry(ctx, cfg)
	if err != nil {
		return err
	}
	defer conn.Close()

	// Cancellation unblocks the read loop by closing the socket.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stopWatch:
		}
	}()

	var writeMu sync.Mutex
	send := func(m *message) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeMessage(conn, m)
	}

	if err := send(&message{Type: msgHello, Proto: ProtoVersion, Worker: cfg.Name}); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	br := bufio.NewReader(conn)
	var conf message
	if err := readMessage(br, &conf); err != nil {
		return fmt.Errorf("dist: reading config: %w", err)
	}
	switch conf.Type {
	case msgConfig:
	case msgError:
		return fmt.Errorf("dist: coordinator rejected worker: %s", conf.Err)
	default:
		return fmt.Errorf("dist: expected config frame, got %q", conf.Type)
	}
	w, err := cfg.Resolve(conf.Workload)
	if err != nil {
		_ = send(&message{Type: msgError, Err: err.Error()})
		return err
	}

	// Heartbeats cover long lease executions: the coordinator's liveness
	// window is frame arrival, and a lease can legitimately run longer than
	// it. silenced (the hang hook) stops them without closing the socket.
	var silenced atomic.Bool
	hbStop := make(chan struct{})
	defer close(hbStop)
	interval := time.Duration(conf.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if silenced.Load() {
					continue
				}
				if err := send(&message{Type: msgHeartbeat}); err != nil {
					return
				}
				cfg.Metrics.Counter("worker/heartbeats").Inc()
			case <-hbStop:
				return
			}
		}
	}()

	leases := 0
	for {
		var m message
		if err := readMessage(br, &m); err != nil {
			if ctx.Err() != nil || errors.Is(err, io.EOF) {
				return nil // cancelled, or coordinator went away after drain
			}
			return fmt.Errorf("dist: reading lease: %w", err)
		}
		switch m.Type {
		case msgLease:
			leases++
			if cfg.FailAfterLeases > 0 && leases >= cfg.FailAfterLeases {
				return nil // crash hook: vanish between grant and result
			}
			if cfg.HangAfterLeases > 0 && leases >= cfg.HangAfterLeases {
				silenced.Store(true)
				<-ctx.Done() // freeze hook: hold the socket, say nothing
				return nil
			}
			if cfg.LivelockAfterLeases > 0 && leases >= cfg.LivelockAfterLeases {
				<-ctx.Done() // livelock hook: heartbeats keep flowing, no result
				return nil
			}
			cfg.Metrics.Counter("worker/leases").Inc()
			cfg.Metrics.Counter("worker/plans").Add(int64(len(m.Plans)))
			execStart := time.Now()
			results, err := campaign.ExecPlans(ctx, w, conf.Seed, conf.Traced, cfg.Parallelism, m.Plans)
			if err != nil {
				return nil // cancelled mid-lease; the coordinator requeues it
			}
			cfg.Metrics.Histogram("worker/lease-exec-ns").Observe(time.Since(execStart).Nanoseconds())
			if err := send(&message{Type: msgResult, Lease: m.Lease, Results: results}); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("dist: sending result: %w", err)
			}
		case msgDrain:
			return nil
		case msgError:
			return fmt.Errorf("dist: coordinator error: %s", m.Err)
		default:
			return fmt.Errorf("dist: unexpected frame %q", m.Type)
		}
	}
}

// dialRetry connects with bounded exponential backoff, so workers can be
// launched before (or independently of) their coordinator.
func dialRetry(ctx context.Context, cfg WorkerConfig) (net.Conn, error) {
	var d net.Dialer
	backoff := cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("dist: cannot reach coordinator at %s after %d attempts: %w",
		cfg.Addr, cfg.DialAttempts, lastErr)
}
