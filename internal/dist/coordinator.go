package dist

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fcatch/internal/campaign"
	"fcatch/internal/core"
	"fcatch/internal/obs"
)

// Options parameterizes a distributed campaign's coordinator.
type Options struct {
	// Addr is the TCP listen address for workers ("" = 127.0.0.1:0, an
	// ephemeral loopback port — the single-machine scale-out default).
	Addr string
	// Workers is how many in-process workers to spawn against the listener
	// (0 = none; the campaign then waits for external fcatch-worker
	// processes). Spawned workers speak the same wire protocol over
	// loopback, so single-machine scale-out exercises the full stack.
	Workers int
	// WorkerParallelism bounds each spawned worker's local fan-out
	// (0 = GOMAXPROCS, 1 = sequential).
	WorkerParallelism int
	// LeaseSize is how many plans one lease carries (0 = 4). Smaller leases
	// pipeline better across workers and lose less work to a crash; larger
	// leases amortize framing. The corpus is byte-identical at any setting.
	LeaseSize int
	// LeaseTimeout is the liveness window: a worker that sends no frame
	// (heartbeat or result) for this long is declared lost and its lease is
	// requeued (0 = 15s). The coordinator dictates a heartbeat interval of a
	// quarter of this to workers at handshake.
	LeaseTimeout time.Duration
	// LeaseExpiry, when positive, reassigns a lease that has been
	// outstanding this long even if its worker still heartbeats — the
	// hung-but-alive case. The worker's connection is torn down with the
	// lease. Duplicate completions are deduped first-wins, which is safe
	// because results are deterministic.
	LeaseExpiry time.Duration
	// MaxLeaseRetries bounds how many times one lease may be requeued after
	// worker failures before the campaign aborts (0 = 3).
	MaxLeaseRetries int
	// RetryBackoff is the base delay before a failed lease re-enters the
	// queue; it doubles per failure (0 = 25ms).
	RetryBackoff time.Duration
	// OnListen, when set, receives the bound listen address before the
	// campaign starts (how callers learn the ephemeral port).
	OnListen func(addr string)
	// Logf, when set, receives coordinator progress lines (worker joins,
	// lease reassignments, drain).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives coordinator health telemetry: lease
	// grant/requeue/expiry counters, worker join/loss counters, lease
	// latency and heartbeat-gap histograms. Strictly observe-only — the
	// merged corpus is byte-identical with or without it.
	Metrics *obs.Registry
	// MetricsAddr, when non-empty, serves the registry as Prometheus text
	// on http://<MetricsAddr>/metrics for the campaign's duration
	// ("127.0.0.1:0" binds an ephemeral loopback port). Requires Metrics.
	MetricsAddr string
	// OnMetricsListen, when set, receives the metrics endpoint's bound
	// address before the campaign starts.
	OnMetricsListen func(addr string)
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.LeaseSize <= 0 {
		o.LeaseSize = 4
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 15 * time.Second
	}
	if o.MaxLeaseRetries <= 0 {
		o.MaxLeaseRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	return o
}

// lease is one unit of distributable work: a slice of the current batch's
// plans. A lease lives until exactly one result for it is merged (done
// closes); requeues hand the same lease object to another worker.
type lease struct {
	id    uint64
	batch uint64
	idx   int // position in the batch's lease sequence
	plans []campaign.Plan
	fails int
	done  chan struct{}
}

// leaseDone carries one completed lease from a connection handler to the
// collecting ExecuteBatch.
type leaseDone struct {
	l       *lease
	results []campaign.RunResult
}

// coordinator implements campaign.Executor over a fleet of TCP workers.
type coordinator struct {
	opts     Options
	workload string
	strategy string
	seed     int64
	traced   bool

	queue    chan *lease     // unbuffered: a send is a grant to a ready worker
	results  chan *leaseDone // completed leases, deduped by the collector
	drain    chan struct{}   // closed when the campaign is over
	failed   chan struct{}   // closed on an unrecoverable lease failure
	failOnce sync.Once
	failErr  error

	batchSeq atomic.Uint64
	leaseSeq atomic.Uint64
	connWG   sync.WaitGroup
}

func (c *coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

func (c *coordinator) fail(err error) {
	c.failOnce.Do(func() {
		c.failErr = err
		close(c.failed)
	})
}

// ExecuteBatch partitions one strategy batch into leases, streams them to
// whichever workers are ready, and reassembles the results in lease order —
// the distributed half of the engine's determinism contract. It feeds and
// collects in one select loop, so results merge while later leases are still
// being handed out.
func (c *coordinator) ExecuteBatch(ctx context.Context, plans []campaign.Plan) ([]campaign.RunResult, error) {
	batch := c.batchSeq.Add(1)
	size := c.opts.LeaseSize
	leases := make([]*lease, 0, (len(plans)+size-1)/size)
	for at := 0; at < len(plans); at += size {
		end := at + size
		if end > len(plans) {
			end = len(plans)
		}
		leases = append(leases, &lease{
			id:    c.leaseSeq.Add(1),
			batch: batch,
			idx:   len(leases),
			plans: plans[at:end],
			done:  make(chan struct{}),
		})
	}

	parts := make([][]campaign.RunResult, len(leases))
	remaining := len(leases)
	next := 0
	for remaining > 0 {
		// Only offer the queue a lease while some remain unhanded; a nil
		// channel parks that select case.
		var feed chan *lease
		var offer *lease
		if next < len(leases) {
			feed, offer = c.queue, leases[next]
		}
		select {
		case feed <- offer:
			next++
		case d := <-c.results:
			// First delivery wins; anything from an older batch or an
			// already-merged lease is a deterministic duplicate — drop it.
			if d.l.batch != batch || parts[d.l.idx] != nil {
				c.opts.Metrics.Counter("dist/results/duplicates").Inc()
				continue
			}
			parts[d.l.idx] = d.results
			close(d.l.done)
			remaining--
		case <-c.failed:
			return nil, c.failErr
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	out := make([]campaign.RunResult, 0, len(plans))
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// requeue puts a lease back in rotation after a worker failure, with
// exponential backoff and a bounded retry count.
func (c *coordinator) requeue(l *lease, cause error) {
	select {
	case <-l.done:
		return // a duplicate grant already completed it
	default:
	}
	l.fails++
	if l.fails > c.opts.MaxLeaseRetries {
		c.opts.Metrics.Counter("dist/leases/exhausted").Inc()
		c.fail(fmt.Errorf("dist: lease %d (%d plan(s)) failed %d times, last cause: %w",
			l.id, len(l.plans), l.fails, cause))
		return
	}
	c.opts.Metrics.Counter("dist/leases/requeued").Inc()
	backoff := c.opts.RetryBackoff << (l.fails - 1)
	c.logf("dist: requeueing lease %d after %v (attempt %d/%d): %v",
		l.id, backoff, l.fails, c.opts.MaxLeaseRetries, cause)
	time.AfterFunc(backoff, func() {
		select {
		case c.queue <- l:
		case <-l.done:
		case <-c.drain:
		}
	})
}

// deliver hands a completed lease to the collector (or drops it if the lease
// was already satisfied or the campaign is over).
func (c *coordinator) deliver(l *lease, results []campaign.RunResult) {
	select {
	case c.results <- &leaseDone{l: l, results: results}:
	case <-l.done:
	case <-c.drain:
	}
}

// acceptLoop admits workers until the listener closes.
func (c *coordinator) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.connWG.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn drives one worker: handshake, then grant-await cycles until the
// campaign drains or the worker fails. At most one lease is outstanding per
// worker, so reassignment semantics stay simple: a worker that fails or
// expires forfeits exactly one lease.
func (c *coordinator) handleConn(conn net.Conn) {
	defer c.connWG.Done()
	defer conn.Close()

	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(c.opts.LeaseTimeout))
	var hello message
	if err := readMessage(br, &hello); err != nil || hello.Type != msgHello {
		return
	}
	if hello.Proto != ProtoVersion {
		_ = writeMessage(conn, &message{Type: msgError,
			Err: fmt.Sprintf("protocol version %d, coordinator speaks %d", hello.Proto, ProtoVersion)})
		return
	}
	heartbeat := c.opts.LeaseTimeout / 4
	if err := writeMessage(conn, &message{
		Type: msgConfig, Workload: c.workload, Strategy: c.strategy,
		Seed: c.seed, Traced: c.traced, HeartbeatMS: heartbeat.Milliseconds(),
	}); err != nil {
		return
	}
	c.logf("dist: worker %q joined from %s", hello.Worker, conn.RemoteAddr())
	c.opts.Metrics.Counter("dist/workers/joined").Inc()

	// The reader turns the socket into liveness + results: every frame
	// refreshes the deadline, so LeaseTimeout of silence — a crashed or
	// frozen worker — kills the connection and requeues its lease.
	dead := make(chan struct{})
	inbox := make(chan *message, 4)
	go func() {
		defer close(dead)
		// Frame arrival gaps are the coordinator's view of worker liveness:
		// a healthy worker's gaps cluster at the heartbeat interval, and the
		// histogram's tail shows how close leases come to the timeout.
		gaps := c.opts.Metrics.Histogram("dist/heartbeat-gap-ns")
		last := time.Now()
		for {
			_ = conn.SetReadDeadline(time.Now().Add(c.opts.LeaseTimeout))
			m := new(message)
			if err := readMessage(br, m); err != nil {
				return
			}
			now := time.Now()
			gaps.Observe(now.Sub(last).Nanoseconds())
			last = now
			switch m.Type {
			case msgHeartbeat:
				// The deadline refresh above is the entire point.
			case msgResult:
				select {
				case inbox <- m:
				case <-c.drain:
					return
				}
			default:
				return // protocol violation
			}
		}
	}()

	sendDrain := func() {
		_ = conn.SetWriteDeadline(time.Now().Add(c.opts.LeaseTimeout))
		_ = writeMessage(conn, &message{Type: msgDrain})
	}

	for {
		select {
		case <-c.drain:
			sendDrain()
			return
		case <-dead:
			c.logf("dist: worker %q left", hello.Worker)
			c.opts.Metrics.Counter("dist/workers/lost").Inc()
			return
		case l := <-c.queue:
			select {
			case <-l.done:
				continue // satisfied while queued (duplicate grant path)
			default:
			}
			if err := writeMessage(conn, &message{Type: msgLease, Lease: l.id, Plans: l.plans}); err != nil {
				c.requeue(l, fmt.Errorf("granting to %q: %w", hello.Worker, err))
				return
			}
			c.opts.Metrics.Counter("dist/leases/granted").Inc()
			grantedAt := time.Now()
			var expiry <-chan time.Time
			var expiryTimer *time.Timer
			if c.opts.LeaseExpiry > 0 {
				expiryTimer = time.NewTimer(c.opts.LeaseExpiry)
				expiry = expiryTimer.C
			}
			stopExpiry := func() {
				if expiryTimer != nil {
					expiryTimer.Stop()
				}
			}
		await:
			for {
				select {
				case m := <-inbox:
					if m.Lease != l.id {
						continue // stray result for an expired predecessor
					}
					if len(m.Results) != len(l.plans) {
						stopExpiry()
						c.requeue(l, fmt.Errorf("worker %q returned %d results for %d plans",
							hello.Worker, len(m.Results), len(l.plans)))
						return
					}
					c.opts.Metrics.Histogram("dist/lease-latency-ns").Observe(time.Since(grantedAt).Nanoseconds())
					c.deliver(l, m.Results)
					stopExpiry()
					break await
				case <-dead:
					stopExpiry()
					c.opts.Metrics.Counter("dist/workers/lost").Inc()
					c.requeue(l, fmt.Errorf("worker %q lost mid-lease", hello.Worker))
					return
				case <-expiry:
					// Hung but heartbeating: forfeit the lease and the worker.
					c.opts.Metrics.Counter("dist/leases/expired").Inc()
					c.requeue(l, fmt.Errorf("lease %d expired on worker %q after %v",
						l.id, hello.Worker, c.opts.LeaseExpiry))
					return
				case <-c.drain:
					stopExpiry()
					sendDrain()
					return
				}
			}
		}
	}
}

// Serve runs a distributed campaign: listen for workers, execute the
// campaign engine with leases fanned over them, drain, and return the
// result. The produced corpus is byte-identical to campaign.Resume with the
// same (workload, cfg, prior) at any worker count — including workers
// joining late, crashing mid-lease, or hanging.
//
// On context cancellation Serve returns the partial result of the complete
// batches alongside the context error; saving its corpus and calling Serve
// (or campaign.Resume) again with it as prior continues the campaign
// deterministically.
func Serve(ctx context.Context, w core.Workload, cfg campaign.Config, prior *campaign.Corpus, opts Options) (*campaign.Result, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", opts.Addr, err)
	}
	bound := ln.Addr().String()
	if opts.OnListen != nil {
		opts.OnListen(bound)
	}

	// Optional Prometheus endpoint, up for the campaign's duration. It only
	// reads registry snapshots, so scrapes never perturb the campaign.
	var msrv *http.Server
	if opts.MetricsAddr != "" {
		mln, err := net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("dist: metrics listen %s: %w", opts.MetricsAddr, err)
		}
		mux := http.NewServeMux()
		reg := opts.Metrics
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
		msrv = &http.Server{Handler: mux}
		if opts.OnMetricsListen != nil {
			opts.OnMetricsListen(mln.Addr().String())
		}
		go func() { _ = msrv.Serve(mln) }()
	}

	strategy := cfg.Strategy
	if strategy == "" {
		strategy = campaign.StrategyCoverage
	}
	c := &coordinator{
		opts:     opts,
		workload: w.Name(),
		strategy: strategy,
		seed:     cfg.Seed,
		traced:   campaign.StrategyTraced(strategy),
		queue:    make(chan *lease),
		results:  make(chan *leaseDone, 16),
		drain:    make(chan struct{}),
		failed:   make(chan struct{}),
	}
	go c.acceptLoop(ln)

	// Single-machine scale-out: spawn in-process workers against the real
	// listener. They are ordinary workers in every respect — same handshake,
	// same leases, same failure handling.
	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var workerWG sync.WaitGroup
	resolve := func(name string) (core.Workload, error) {
		if name != w.Name() {
			return nil, fmt.Errorf("dist: coordinator campaign is %q, not %q", w.Name(), name)
		}
		return w, nil
	}
	for i := 0; i < opts.Workers; i++ {
		workerWG.Add(1)
		go func(i int) {
			defer workerWG.Done()
			wcfg := WorkerConfig{
				Addr:        bound,
				Name:        fmt.Sprintf("local-%d", i),
				Parallelism: opts.WorkerParallelism,
				Resolve:     resolve,
			}
			if err := RunWorker(workerCtx, wcfg); err != nil && workerCtx.Err() == nil {
				c.logf("dist: local worker %d: %v", i, err)
			}
		}(i)
	}

	res, err := campaign.ResumeWith(ctx, w, cfg, prior, c)

	// Graceful drain: tell every connected worker the campaign is over, stop
	// admitting, and wait for the handlers (and spawned workers) to finish.
	close(c.drain)
	ln.Close()
	c.connWG.Wait()
	stopWorkers()
	workerWG.Wait()
	if msrv != nil {
		_ = msrv.Close()
	}
	if res != nil {
		c.logf("dist: campaign drained (%d run(s) merged)", res.Runs)
	}
	return res, err
}
