package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"io"
	"net/http"
	"sync"

	"fcatch/internal/apps/toy"
	"fcatch/internal/campaign"
	"fcatch/internal/core"
	"fcatch/internal/obs"
	"fcatch/internal/sim"
)

// testOptions returns coordinator options tuned for fast failure handling in
// tests: short liveness windows and near-zero retry backoff.
func testOptions() Options {
	return Options{
		LeaseTimeout: 500 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	}
}

func corpusJSON(t *testing.T, c *campaign.Corpus) string {
	t.Helper()
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// baseline runs the single-process Parallelism=1 campaign every distributed
// variant must reproduce byte for byte.
func baseline(t *testing.T, cfg campaign.Config) string {
	t.Helper()
	cfg.Parallelism = 1
	res, err := campaign.Run(toy.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return corpusJSON(t, res.Corpus)
}

// TestFrameRoundTrip pins the wire encoding: every message type survives a
// write/read cycle.
func TestFrameRoundTrip(t *testing.T) {
	msgs := []message{
		{Type: msgHello, Proto: ProtoVersion, Worker: "w1"},
		{Type: msgConfig, Workload: "TOY", Strategy: "coverage-guided", Seed: 7, Traced: true, HeartbeatMS: 250},
		{Type: msgLease, Lease: 42, Plans: []campaign.Plan{
			{FaultSpec: sim.FaultSpec{CrashStep: 9}},
			{FaultSpec: sim.FaultSpec{Site: "a.go:10", Occurrence: 2, When: "after", Action: "kernel-drop"},
				Then: []sim.FaultSpec{{Delay: 48, Action: "node-crash"}}},
		}},
		{Type: msgResult, Lease: 42, Results: []campaign.RunResult{
			{Plan: campaign.Plan{FaultSpec: sim.FaultSpec{CrashStep: 9}},
				Sig:     campaign.Signature{Outcome: "hang", Symptom: "hang:x", Coverage: 0xdeadbeefcafe0123},
				Verdict: campaign.VerdictFailure},
		}},
		{Type: msgHeartbeat},
		{Type: msgDrain},
		{Type: msgError, Err: "boom"},
	}
	var buf bytes.Buffer
	for i := range msgs {
		if err := writeMessage(&buf, &msgs[i]); err != nil {
			t.Fatalf("write %s: %v", msgs[i].Type, err)
		}
	}
	br := bufio.NewReader(&buf)
	for i := range msgs {
		var got message
		if err := readMessage(br, &got); err != nil {
			t.Fatalf("read %s: %v", msgs[i].Type, err)
		}
		want, _ := json.Marshal(msgs[i])
		gotJSON, _ := json.Marshal(got)
		if string(want) != string(gotJSON) {
			t.Fatalf("frame %d: got %s, want %s", i, gotJSON, want)
		}
	}
}

// TestFrameSizeBound: a corrupt length prefix must be rejected before any
// allocation, and an oversized outgoing frame must refuse to encode.
func TestFrameSizeBound(t *testing.T) {
	hostile := []byte{0xff, 0xff, 0xff, 0xff, 'x'}
	var m message
	if err := readMessage(bufio.NewReader(bytes.NewReader(hostile)), &m); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("hostile frame err = %v", err)
	}
	big := message{Type: msgError, Err: strings.Repeat("x", maxFrame)}
	if err := writeMessage(&bytes.Buffer{}, &big); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized write err = %v", err)
	}
}

// TestDistributedCorpusParity is the subsystem's core contract: the corpus
// of a distributed campaign is byte-identical to the single-process
// sequential run at every worker count and lease size, for the traced
// (coverage-guided) and untraced (random) strategies alike.
func TestDistributedCorpusParity(t *testing.T) {
	for _, strat := range []string{campaign.StrategyCoverage, campaign.StrategyRandom} {
		cfg := campaign.Config{Strategy: strat, Seed: 5, Budget: 30}
		want := baseline(t, cfg)
		for _, workers := range []int{1, 2, 4} {
			for _, leaseSize := range []int{1, 3, 100} {
				opts := testOptions()
				opts.Workers = workers
				opts.WorkerParallelism = 1
				opts.LeaseSize = leaseSize
				res, err := Serve(context.Background(), toy.New(), cfg, nil, opts)
				if err != nil {
					t.Fatalf("%s workers=%d lease=%d: %v", strat, workers, leaseSize, err)
				}
				if got := corpusJSON(t, res.Corpus); got != want {
					t.Errorf("%s workers=%d lease=%d: corpus differs from sequential baseline",
						strat, workers, leaseSize)
				}
			}
		}
	}
}

// TestWorkerCrashMidLease: one of the workers abandons its lease between
// grant and result (connection drop), the coordinator requeues it onto the
// survivors, and the corpus still matches the baseline exactly.
func TestWorkerCrashMidLease(t *testing.T) {
	cfg := campaign.Config{Strategy: campaign.StrategyCoverage, Seed: 5, Budget: 40}
	want := baseline(t, cfg)

	opts := testOptions()
	opts.Workers = 3 // survivors
	opts.WorkerParallelism = 1
	opts.LeaseSize = 2
	var addr string
	addrCh := make(chan string, 1)
	opts.OnListen = func(a string) { addrCh <- a }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	crasherDone := make(chan error, 1)
	go func() {
		addr = <-addrCh
		crasherDone <- RunWorker(ctx, WorkerConfig{
			Addr: addr, Name: "crasher", Parallelism: 1,
			Resolve:         func(string) (core.Workload, error) { return toy.New(), nil },
			FailAfterLeases: 2,
		})
	}()

	res, err := Serve(ctx, toy.New(), cfg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := corpusJSON(t, res.Corpus); got != want {
		t.Error("corpus after a mid-lease worker crash differs from baseline")
	}
	if err := <-crasherDone; err != nil {
		t.Fatalf("crasher worker: %v", err)
	}
}

// TestWorkerSilentHang: a worker freezes completely (no heartbeats, socket
// open). The coordinator's liveness deadline declares it lost, the lease is
// reassigned, and parity holds.
func TestWorkerSilentHang(t *testing.T) {
	cfg := campaign.Config{Strategy: campaign.StrategyCoverage, Seed: 3, Budget: 25}
	want := baseline(t, cfg)

	opts := testOptions()
	opts.LeaseTimeout = 250 * time.Millisecond // cut the wait for the dead claim
	opts.Workers = 2
	opts.WorkerParallelism = 1
	opts.LeaseSize = 2
	addrCh := make(chan string, 1)
	opts.OnListen = func(a string) { addrCh <- a }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hungDone := make(chan error, 1)
	go func() {
		hungDone <- RunWorker(ctx, WorkerConfig{
			Addr: <-addrCh, Name: "frozen", Parallelism: 1,
			Resolve:         func(string) (core.Workload, error) { return toy.New(), nil },
			HangAfterLeases: 1,
		})
	}()

	res, err := Serve(ctx, toy.New(), cfg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := corpusJSON(t, res.Corpus); got != want {
		t.Error("corpus after a silent worker hang differs from baseline")
	}
	cancel() // release the frozen worker
	if err := <-hungDone; err != nil {
		t.Fatalf("frozen worker: %v", err)
	}
}

// TestLeaseExpiryReassignsLivelockedWorker: the worker stays alive (it keeps
// heartbeating) but never finishes its lease; only the hard lease expiry can
// reclaim it. The reassigned lease reproduces the baseline corpus.
func TestLeaseExpiryReassignsLivelockedWorker(t *testing.T) {
	cfg := campaign.Config{Strategy: campaign.StrategyCoverage, Seed: 3, Budget: 25}
	want := baseline(t, cfg)

	opts := testOptions()
	opts.LeaseExpiry = 200 * time.Millisecond
	opts.Workers = 2
	opts.WorkerParallelism = 1
	opts.LeaseSize = 2
	addrCh := make(chan string, 1)
	opts.OnListen = func(a string) { addrCh <- a }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lockedDone := make(chan error, 1)
	go func() {
		lockedDone <- RunWorker(ctx, WorkerConfig{
			Addr: <-addrCh, Name: "livelocked", Parallelism: 1,
			Resolve:             func(string) (core.Workload, error) { return toy.New(), nil },
			LivelockAfterLeases: 1,
		})
	}()

	res, err := Serve(ctx, toy.New(), cfg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := corpusJSON(t, res.Corpus); got != want {
		t.Error("corpus after a livelocked worker differs from baseline")
	}
	cancel()
	if err := <-lockedDone; err != nil {
		t.Fatalf("livelocked worker: %v", err)
	}
}

// TestLateJoiningWorkerKeepsParity: a second worker joining mid-campaign
// must only change who runs which lease, never what the corpus contains.
func TestLateJoiningWorkerKeepsParity(t *testing.T) {
	// Random strategy with a large budget keeps the campaign in flight long
	// enough for the latecomer's join to land mid-run.
	cfg := campaign.Config{Strategy: campaign.StrategyRandom, Seed: 11, Budget: 1500, BatchSize: 25}
	want := baseline(t, cfg)

	opts := testOptions()
	opts.Workers = 1
	opts.WorkerParallelism = 1
	opts.LeaseSize = 1
	addrCh := make(chan string, 1)
	opts.OnListen = func(a string) { addrCh <- a }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lateDone := make(chan error, 1)
	go func() {
		addr := <-addrCh
		time.Sleep(15 * time.Millisecond) // join after the campaign is underway
		lateDone <- RunWorker(ctx, WorkerConfig{
			Addr: addr, Name: "latecomer", Parallelism: 1,
			Resolve: func(string) (core.Workload, error) { return toy.New(), nil },
		})
	}()

	res, err := Serve(ctx, toy.New(), cfg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := corpusJSON(t, res.Corpus); got != want {
		t.Error("corpus with a late-joining worker differs from baseline")
	}
	// If the run still beat the latecomer to the finish line the join is
	// vacuous, not wrong: a refused dial after drain is benign.
	if err := <-lateDone; err != nil && !strings.Contains(err.Error(), "cannot reach coordinator") {
		t.Fatalf("late worker: %v", err)
	}
}

// TestResumeAfterMidBatchInterruption is the end-to-end recovery story: a
// distributed run loses a worker mid-lease AND is cancelled mid-campaign;
// the saved partial corpus, resumed distributed, must converge to exactly
// the corpus of an uninterrupted single-process run.
func TestResumeAfterMidBatchInterruption(t *testing.T) {
	// Random strategy: the step-plan space never exhausts, so the campaign
	// is still mid-flight when the cancel lands.
	cfg := campaign.Config{Strategy: campaign.StrategyRandom, Seed: 9, Budget: 3000, BatchSize: 50}
	want := baseline(t, cfg)

	opts := testOptions()
	opts.Workers = 2
	opts.WorkerParallelism = 1
	opts.LeaseSize = 5
	addrCh := make(chan string, 1)
	opts.OnListen = func(a string) { addrCh <- a }

	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	crasherDone := make(chan error, 1)
	go func() {
		crasherDone <- RunWorker(runCtx, WorkerConfig{
			Addr: <-addrCh, Name: "crasher", Parallelism: 1,
			Resolve:         func(string) (core.Workload, error) { return toy.New(), nil },
			FailAfterLeases: 3,
		})
	}()
	go func() {
		time.Sleep(120 * time.Millisecond)
		cancelRun() // interrupt the campaign mid-batch
	}()

	partial, err := Serve(runCtx, toy.New(), cfg, nil, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	<-crasherDone
	if partial.Runs == 0 || partial.Runs >= cfg.Budget {
		t.Fatalf("interruption landed outside the campaign: %d/%d runs", partial.Runs, cfg.Budget)
	}
	if partial.Runs%cfg.BatchSize != 0 {
		t.Fatalf("partial corpus has %d runs; batches must commit atomically (batch size %d)",
			partial.Runs, cfg.BatchSize)
	}

	// Persist and reload through the real corpus path, then resume
	// distributed with fresh workers.
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := partial.Corpus.Save(path); err != nil {
		t.Fatal(err)
	}
	prior, err := campaign.LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	opts2 := testOptions()
	opts2.Workers = 2
	opts2.WorkerParallelism = 1
	opts2.LeaseSize = 5
	resumed, err := Serve(context.Background(), toy.New(), cfg, prior, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if got := corpusJSON(t, resumed.Corpus); got != want {
		t.Error("resumed distributed corpus differs from the uninterrupted baseline")
	}
}

// TestProtoVersionMismatchRejected: a worker speaking the wrong protocol
// generation is told so and turned away.
func TestProtoVersionMismatchRejected(t *testing.T) {
	cfg := campaign.Config{Strategy: campaign.StrategyCoverage, Seed: 1, Budget: 4}
	opts := testOptions()
	opts.Workers = 1
	opts.WorkerParallelism = 1
	addrCh := make(chan string, 1)
	opts.OnListen = func(a string) { addrCh <- a }

	rejected := make(chan error, 1)
	go func() {
		addr := <-addrCh
		conn, err := (&net.Dialer{}).Dial("tcp", addr)
		if err != nil {
			rejected <- err
			return
		}
		defer conn.Close()
		if err := writeMessage(conn, &message{Type: msgHello, Proto: ProtoVersion + 1, Worker: "future"}); err != nil {
			rejected <- err
			return
		}
		var reply message
		if err := readMessage(bufio.NewReader(conn), &reply); err != nil {
			rejected <- err
			return
		}
		if reply.Type != msgError || !strings.Contains(reply.Err, "protocol") {
			rejected <- fmt.Errorf("got %q frame (%s), want protocol error", reply.Type, reply.Err)
			return
		}
		rejected <- nil
	}()

	if _, err := Serve(context.Background(), toy.New(), cfg, nil, opts); err != nil {
		t.Fatal(err)
	}
	if err := <-rejected; err != nil {
		t.Fatalf("mismatched worker: %v", err)
	}
}

// TestAllWorkersLostAborts: when every worker is gone and a lease exhausts
// its retries, the campaign aborts with a descriptive error instead of
// hanging forever.
func TestAllWorkersLostAborts(t *testing.T) {
	cfg := campaign.Config{Strategy: campaign.StrategyCoverage, Seed: 2, Budget: 20}
	opts := testOptions()
	opts.LeaseTimeout = 200 * time.Millisecond
	opts.MaxLeaseRetries = 2
	// One lease per batch, so every doomed worker fails the SAME lease and
	// the bounded retry count is what trips. (With many leases, each failure
	// landing on a fresh lease would correctly keep the campaign waiting for
	// new workers instead of aborting.)
	opts.LeaseSize = cfg.Budget
	addrCh := make(chan string, 1)
	opts.OnListen = func(a string) { addrCh <- a }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Every worker that connects dies on its first lease.
		addr := <-addrCh
		for i := 0; i < opts.MaxLeaseRetries+2; i++ {
			_ = RunWorker(ctx, WorkerConfig{
				Addr: addr, Name: "doomed", Parallelism: 1,
				Resolve:         func(string) (core.Workload, error) { return toy.New(), nil },
				FailAfterLeases: 1,
			})
			if ctx.Err() != nil {
				return
			}
		}
	}()

	_, err := Serve(ctx, toy.New(), cfg, nil, opts)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("err = %v, want a bounded-retry abort", err)
	}
}

// TestMetricsEndpoint: the coordinator serves parseable Prometheus text on
// /metrics during a 2-worker distributed run, telemetry counters reflect the
// fleet, and attaching metrics keeps corpus parity.
func TestMetricsEndpoint(t *testing.T) {
	cfg := campaign.Config{Strategy: campaign.StrategyCoverage, Seed: 5, Budget: 40}
	want := baseline(t, cfg)

	reg := obs.New()
	opts := testOptions()
	opts.Workers = 2
	opts.WorkerParallelism = 1
	opts.Metrics = reg
	opts.MetricsAddr = "127.0.0.1:0"
	mAddrCh := make(chan string, 1)
	opts.OnMetricsListen = func(a string) { mAddrCh <- a }

	// Scrape from the first committed batch's Progress callback: the campaign
	// is provably mid-run and the endpoint provably up, so the test cannot
	// race campaign completion.
	var scrapeOnce sync.Once
	var body string
	var scrapeErr error
	cfg.Progress = func(campaign.Progress) {
		scrapeOnce.Do(func() {
			addr := <-mAddrCh
			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				scrapeErr = err
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				scrapeErr = err
				return
			}
			body = string(data)
		})
	}

	res, err := Serve(context.Background(), toy.New(), cfg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := corpusJSON(t, res.Corpus); got != want {
		t.Error("corpus with metrics attached differs from baseline")
	}
	if scrapeErr != nil {
		t.Fatalf("scraping /metrics mid-run: %v", scrapeErr)
	}
	if !strings.Contains(body, "fcatch_dist_workers_joined_total 2") {
		t.Errorf("mid-run scrape missing worker join counter:\n%s", body)
	}
	if !strings.Contains(body, "fcatch_dist_leases_granted_total") {
		t.Errorf("mid-run scrape missing lease grant counter:\n%s", body)
	}
	// Every sample line must be Prometheus text format: name[{le="..."}] value.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable sample line %q", line)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["dist/workers/joined"] != 2 {
		t.Errorf("dist/workers/joined = %d, want 2", snap.Counters["dist/workers/joined"])
	}
	if snap.Counters["dist/leases/granted"] == 0 {
		t.Error("no leases granted recorded")
	}
	if snap.Histograms["dist/lease-latency-ns"].Count == 0 {
		t.Error("no lease latency observations recorded")
	}
}

// TestRequeueCounterOnWorkerCrash: a worker crash mid-lease is visible in the
// coordinator's requeue and worker-loss counters.
func TestRequeueCounterOnWorkerCrash(t *testing.T) {
	cfg := campaign.Config{Strategy: campaign.StrategyCoverage, Seed: 5, Budget: 40}
	reg := obs.New()
	opts := testOptions()
	opts.Workers = 2
	opts.WorkerParallelism = 1
	opts.LeaseSize = 2
	opts.Metrics = reg
	addrCh := make(chan string, 1)
	opts.OnListen = func(a string) { addrCh <- a }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	crasherDone := make(chan error, 1)
	go func() {
		addr := <-addrCh
		crasherDone <- RunWorker(ctx, WorkerConfig{
			Addr: addr, Name: "crasher", Parallelism: 1,
			Resolve:         func(string) (core.Workload, error) { return toy.New(), nil },
			FailAfterLeases: 1,
		})
	}()

	if _, err := Serve(ctx, toy.New(), cfg, nil, opts); err != nil {
		t.Fatal(err)
	}
	if err := <-crasherDone; err != nil {
		t.Fatalf("crasher worker: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["dist/leases/requeued"] == 0 {
		t.Error("crashed worker's lease was not counted as requeued")
	}
	if snap.Counters["dist/workers/lost"] == 0 {
		t.Error("crashed worker was not counted as lost")
	}
}
