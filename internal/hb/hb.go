// Package hb implements the causal and blocking relationship analysis of
// Section 4.1: the causor/causee graph over a trace, Algorithm 1 (everything
// causally depending on a seed set), Algorithm 2 (everything a seed set
// causally depends on), and node attribution ("physically executes on N,
// logically comes from N′").
package hb

import (
	"io"
	"sync"
	"time"

	"fcatch/internal/trace"
)

// Graph wraps a trace index with causality traversals. Chain walks are
// memoized: causor chains share suffixes (each op has at most one causor), so
// one walk caches the chain of every op along the path. The memo tables are
// mutex-guarded because the crash-regular and crash-recovery detectors run
// concurrently over the shared fault-free graph.
type Graph struct {
	Ix *trace.Index

	// systemSym is the trace's Sym for the synthetic "system" PID (a sentinel
	// that matches nothing when the trace recorded no system ops).
	systemSym trace.Sym

	mu       sync.Mutex
	chains   map[trace.OpID][]trace.OpID // memoized BackwardChain results (lazily allocated)
	crossAnc map[trace.OpID]trace.OpID   // memoized CrossNodeAncestor (NoOp = no remote ancestor)
}

// New builds the causality graph for a materialized trace. The memo tables
// start nil — graphs used only for closures (like the faulty-run graph in
// the recovery detector) never pay for them.
func New(t *trace.Trace) *Graph {
	return newGraph(trace.BuildIndex(t), t)
}

// newGraph finalizes a fully extended index into a Graph. The "system"
// lookup happens here — after interning has stopped — so incremental
// builders stay safe to run against a live trace.
func newGraph(ix *trace.Index, t *trace.Trace) *Graph {
	g := &Graph{Ix: ix}
	if y, ok := t.Lookup("system"); ok {
		g.systemSym = y
	} else {
		g.systemSym = ^trace.Sym(0)
	}
	return g
}

// NewFromSource builds the graph by draining a streaming Source window by
// window: the index is extended per batch, so peak memory stays at
// O(batch + index) while the records stream past (plus the records
// themselves when the source retains them). The source is closed.
func NewFromSource(src trace.Source) (*Graph, error) {
	t := src.Trace()
	ix := trace.NewIndex(t)
	if h, ok := src.(trace.Hinter); ok {
		if sh, known := h.SizeHints(); known {
			ix.ByRes = make([][]trace.OpID, 0, sh.Syms)
			ix.BySite = make([][]trace.OpID, 0, sh.Syms)
		}
	}
	defer src.Close()
	for {
		win, err := src.Next()
		if err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		ix.Extend(win)
	}
	ix.Finish()
	return newGraph(ix, t), nil
}

// Builder extends a trace index incrementally while the trace is still being
// produced — its Window method is a trace.WindowFn, so it plugs straight
// into a sim run's OnTraceWindow hook. In synchronous mode the index work
// runs inline in the producer (under the scheduler baton); in async mode it
// runs on a builder goroutine, overlapping simulation and indexing. Windows
// must stay valid after delivery (a retaining Writer), which they do: trace
// records are never mutated once appended.
type Builder struct {
	t  *trace.Trace
	ix *trace.Index

	feed time.Duration // time spent inside Window deliveries
	busy time.Duration // total index-construction time (feed + Finish)

	ch   chan []trace.Record
	done chan struct{}
}

// NewBuilder starts an incremental graph build over t. With async set, index
// extension happens on a separate goroutine; Finish must be called
// eventually (even on error paths) to stop it.
func NewBuilder(t *trace.Trace, async bool) *Builder {
	b := &Builder{t: t, ix: trace.NewIndex(t)}
	if async {
		b.ch = make(chan []trace.Record, 16)
		b.done = make(chan struct{})
		go func() {
			defer close(b.done)
			for recs := range b.ch {
				t0 := time.Now()
				b.ix.Extend(recs)
				b.feed += time.Since(t0)
			}
		}()
	}
	return b
}

// Window feeds one window of records to the index (a trace.WindowFn).
func (b *Builder) Window(t *trace.Trace, recs []trace.Record) {
	if b.ch != nil {
		b.ch <- recs
		return
	}
	t0 := time.Now()
	b.ix.Extend(recs)
	b.feed += time.Since(t0)
}

// Finish completes the build and returns the graph. It must be called after
// the producing run has ended (interning has stopped). Idempotent per
// builder is NOT guaranteed — call it exactly once.
func (b *Builder) Finish() *Graph {
	if b.ch != nil {
		close(b.ch)
		<-b.done
	}
	t0 := time.Now()
	b.ix.Finish()
	g := newGraph(b.ix, b.t)
	b.busy = b.feed + time.Since(t0)
	return g
}

// FeedTime is the time spent extending the index during Window deliveries —
// in synchronous mode, work that executed inside the producing run's wall
// clock.
func (b *Builder) FeedTime() time.Duration { return b.feed }

// BuildTime is the total index-construction time (valid after Finish).
func (b *Builder) BuildTime() time.Duration { return b.busy }

// ForwardClosure is Algorithm 1: the set of operations that causally depend
// on the seed operations. Seeds may be causal ops (thread creates, RPC
// calls, message sends, event enqueues, KV updates) or activation records;
// the closure contains every op inside activations they (transitively)
// spawned, including the activation records themselves.
func (g *Graph) ForwardClosure(seeds []trace.OpID) map[trace.OpID]bool {
	dense := g.ForwardClosureDense(seeds)
	out := make(map[trace.OpID]bool)
	for id, in := range dense {
		if in {
			out[trace.OpID(id)] = true
		}
	}
	return out
}

// ForwardClosureDense is ForwardClosure as an OpID-indexed membership slice
// (OpIDs are dense: Records[i].ID == i+1) — the allocation-free form the
// detectors probe. Index 0 (NoOp) is never set; seeds outside the trace are
// ignored. Every queued in-range op resolves to a record and lands in the
// closure (activations via the frame branch, everything else via the final
// branch; the paper's Algorithm 1 includes the seeds too), so one slice is
// both the visited set and the result.
func (g *Graph) ForwardClosureDense(seeds []trace.OpID) []bool {
	in := make([]bool, len(g.Ix.T.Records)+1)
	wcap := len(seeds)
	if wcap < 64 {
		wcap = 64 // closures are usually tens to hundreds of ops; skip the first growth steps
	}
	work := make([]trace.OpID, 0, wcap)
	push := func(id trace.OpID) {
		if id >= 1 && int(id) < len(in) && !in[id] {
			in[id] = true
			work = append(work, id)
		}
	}
	for _, s := range seeds {
		push(s)
	}
	for len(work) > 0 {
		h := work[len(work)-1]
		work = work[:len(work)-1]
		r := g.Ix.T.At(h)
		if r == nil {
			continue
		}
		// Ops inside an activation frame causally depend on the frame.
		if r.Kind.IsActivation() || r.Kind == trace.KKVNotify {
			for _, op := range g.Ix.FrameOps[h] {
				push(op)
			}
		}
		// Causees of causal ops (and of KV-notify records, which cause the
		// watcher's handler activation).
		if r.Kind.IsCausal() || r.Kind == trace.KKVNotify {
			for _, act := range g.Ix.Causees[h] {
				push(act)
			}
		}
	}
	return in
}

// BackwardChain is Algorithm 2: the operations a given op causally depends
// on, nearest first. (Each op has at most one causor, so the closure is a
// chain.) Results are memoized; callers must not mutate the returned slice.
func (g *Graph) BackwardChain(op trace.OpID) []trace.OpID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backwardChainLocked(op)
}

func (g *Graph) backwardChainLocked(op trace.OpID) []trace.OpID {
	if c, ok := g.chains[op]; ok {
		return c
	}
	if g.chains == nil {
		g.chains = make(map[trace.OpID][]trace.OpID)
	}
	// Collect the uncached segment of the causor path. Causors strictly
	// precede their effects in trace order (IDs decrease along the walk), so
	// requiring a strictly smaller ID both terminates the loop and guards
	// against a malformed trace — no visited set needed.
	path := []trace.OpID{op}
	var tailHead trace.OpID // first cached node below the segment (NoOp: none)
	var tail []trace.OpID   // that node's cached chain
	cur := g.Ix.T.At(op)
	for cur != nil {
		c := g.Ix.Causor(cur)
		if c == nil || c.ID >= cur.ID {
			break
		}
		if cached, ok := g.chains[c.ID]; ok {
			tailHead, tail = c.ID, cached
			break
		}
		path = append(path, c.ID)
		cur = c
	}
	// Cache every node on the segment as a sub-slice of one backing array:
	// chain(path[i]) = path[i+1:] + tailHead + tail = full[i:].
	n := len(path) - 1 + len(tail)
	if tailHead != trace.NoOp {
		n++
	}
	full := make([]trace.OpID, 0, n)
	full = append(full, path[1:]...)
	if tailHead != trace.NoOp {
		full = append(full, tailHead)
	}
	full = append(full, tail...)
	for i, id := range path {
		g.chains[id] = full[i:]
	}
	return full
}

// CrossNodeAncestor walks op's causor chain and returns the nearest ancestor
// that physically executes on a different process — the W′ of a
// crash-regular report: the remote operation whose disappearance (node
// crash, message drop) makes op disappear. Returns nil if the chain stays on
// one process.
func (g *Graph) CrossNodeAncestor(op trace.OpID) *trace.Record {
	r := g.Ix.T.At(op)
	if r == nil {
		return nil
	}
	g.mu.Lock()
	if id, ok := g.crossAnc[op]; ok {
		g.mu.Unlock()
		return g.Ix.T.At(id) // At(NoOp) is nil: cached "no remote ancestor"
	}
	chain := g.backwardChainLocked(op)
	g.mu.Unlock()
	var found *trace.Record
	for _, anc := range chain {
		ar := g.Ix.T.At(anc)
		if ar == nil {
			continue
		}
		// Notify records are coordination-service internals; the app-level
		// operation a fault can remove is the update behind them.
		if ar.Kind == trace.KKVNotify {
			continue
		}
		if ar.PID != r.PID && ar.PID != g.systemSym {
			found = ar
			break
		}
	}
	id := trace.NoOp
	if found != nil {
		id = found.ID
	}
	g.mu.Lock()
	if g.crossAnc == nil {
		g.crossAnc = make(map[trace.OpID]trace.OpID)
	}
	g.crossAnc[op] = id
	g.mu.Unlock()
	return found
}

// LogicallyFrom reports whether op causally comes from process pid — it
// physically executes there, or some causor ancestor does.
func (g *Graph) LogicallyFrom(op trace.OpID, pid string) bool {
	y, ok := g.Ix.T.Lookup(pid)
	if !ok {
		return false
	}
	r := g.Ix.T.At(op)
	if r == nil {
		return false
	}
	if r.PID == y {
		return true
	}
	for _, anc := range g.BackwardChain(op) {
		if ar := g.Ix.T.At(anc); ar != nil && ar.PID == y {
			return true
		}
	}
	return false
}

// EscapingSeeds returns the causal operations physically on pid whose
// effects land elsewhere: RPC calls and message sends targeting other
// processes, and KV updates (shared persistent state). These seed the
// crash-op identification of Section 4.3.1.
func (g *Graph) EscapingSeeds(pid string) []trace.OpID {
	y, ok := g.Ix.T.Lookup(pid)
	if !ok {
		return nil
	}
	var out []trace.OpID
	for _, k := range []trace.Kind{trace.KRPCCall, trace.KMsgSend, trace.KEventEnq, trace.KKVUpdate} {
		for _, id := range g.Ix.ByKind[k] {
			r := g.Ix.T.At(id)
			if r.PID != y {
				continue
			}
			switch k {
			case trace.KRPCCall, trace.KMsgSend:
				if r.Target != trace.NoSym && r.Target != y {
					out = append(out, id)
				}
			case trace.KKVUpdate:
				out = append(out, id)
			case trace.KEventEnq:
				// Intra-node events stay on the crashing node; only
				// cross-process posts escape.
				if r.Target != trace.NoSym && r.Target != y {
					out = append(out, id)
				}
			}
		}
	}
	return out
}
