// Package hb implements the causal and blocking relationship analysis of
// Section 4.1: the causor/causee graph over a trace, Algorithm 1 (everything
// causally depending on a seed set), Algorithm 2 (everything a seed set
// causally depends on), and node attribution ("physically executes on N,
// logically comes from N′").
package hb

import (
	"fcatch/internal/trace"
)

// Graph wraps a trace index with causality traversals.
type Graph struct {
	Ix *trace.Index
}

// New builds the causality graph for a trace.
func New(t *trace.Trace) *Graph {
	return &Graph{Ix: trace.BuildIndex(t)}
}

// ForwardClosure is Algorithm 1: the set of operations that causally depend
// on the seed operations. Seeds may be causal ops (thread creates, RPC
// calls, message sends, event enqueues, KV updates) or activation records;
// the closure contains every op inside activations they (transitively)
// spawned, including the activation records themselves.
func (g *Graph) ForwardClosure(seeds []trace.OpID) map[trace.OpID]bool {
	visited := make(map[trace.OpID]bool)
	out := make(map[trace.OpID]bool)
	work := append([]trace.OpID(nil), seeds...)
	push := func(id trace.OpID) {
		if id != trace.NoOp && !visited[id] {
			visited[id] = true
			work = append(work, id)
		}
	}
	for _, s := range seeds {
		visited[s] = true
	}
	for len(work) > 0 {
		h := work[len(work)-1]
		work = work[:len(work)-1]
		r := g.Ix.T.At(h)
		if r == nil {
			continue
		}
		// Ops inside an activation frame causally depend on the frame.
		if r.Kind.IsActivation() || r.Kind == trace.KKVNotify {
			out[h] = true
			for _, op := range g.Ix.FrameOps[h] {
				out[op] = true
				push(op)
			}
		}
		// Causees of causal ops (and of KV-notify records, which cause the
		// watcher's handler activation).
		if r.Kind.IsCausal() || r.Kind == trace.KKVNotify {
			for _, act := range g.Ix.Causees[h] {
				push(act)
			}
		}
		if !r.Kind.IsActivation() {
			out[h] = true
		}
	}
	// Seeds themselves are not part of "operations depending on S" unless
	// reached through another seed; the paper's Algorithm 1 includes them —
	// keep them for parity.
	for _, s := range seeds {
		out[s] = true
	}
	return out
}

// BackwardChain is Algorithm 2: the operations a given op causally depends
// on, nearest first. (Each op has at most one causor, so the closure is a
// chain.)
func (g *Graph) BackwardChain(op trace.OpID) []trace.OpID {
	var out []trace.OpID
	seen := map[trace.OpID]bool{op: true}
	cur := g.Ix.T.At(op)
	for cur != nil {
		c := g.Ix.Causor(cur)
		if c == nil || seen[c.ID] {
			break
		}
		seen[c.ID] = true
		out = append(out, c.ID)
		cur = c
	}
	return out
}

// CrossNodeAncestor walks op's causor chain and returns the nearest ancestor
// that physically executes on a different process — the W′ of a
// crash-regular report: the remote operation whose disappearance (node
// crash, message drop) makes op disappear. Returns nil if the chain stays on
// one process.
func (g *Graph) CrossNodeAncestor(op trace.OpID) *trace.Record {
	r := g.Ix.T.At(op)
	if r == nil {
		return nil
	}
	for _, anc := range g.BackwardChain(op) {
		ar := g.Ix.T.At(anc)
		if ar == nil {
			continue
		}
		// Notify records are coordination-service internals; the app-level
		// operation a fault can remove is the update behind them.
		if ar.Kind == trace.KKVNotify {
			continue
		}
		if ar.PID != r.PID && ar.PID != "system" {
			return ar
		}
	}
	return nil
}

// LogicallyFrom reports whether op causally comes from process pid — it
// physically executes there, or some causor ancestor does.
func (g *Graph) LogicallyFrom(op trace.OpID, pid string) bool {
	r := g.Ix.T.At(op)
	if r == nil {
		return false
	}
	if r.PID == pid {
		return true
	}
	for _, anc := range g.BackwardChain(op) {
		if ar := g.Ix.T.At(anc); ar != nil && ar.PID == pid {
			return true
		}
	}
	return false
}

// EscapingSeeds returns the causal operations physically on pid whose
// effects land elsewhere: RPC calls and message sends targeting other
// processes, and KV updates (shared persistent state). These seed the
// crash-op identification of Section 4.3.1.
func (g *Graph) EscapingSeeds(pid string) []trace.OpID {
	var out []trace.OpID
	for _, k := range []trace.Kind{trace.KRPCCall, trace.KMsgSend, trace.KEventEnq, trace.KKVUpdate} {
		for _, id := range g.Ix.ByKind[k] {
			r := g.Ix.T.At(id)
			if r.PID != pid {
				continue
			}
			switch k {
			case trace.KRPCCall, trace.KMsgSend:
				if r.Target != "" && r.Target != pid {
					out = append(out, id)
				}
			case trace.KKVUpdate:
				out = append(out, id)
			case trace.KEventEnq:
				// Intra-node events stay on the crashing node; only
				// cross-process posts escape.
				if r.Target != "" && r.Target != pid {
					out = append(out, id)
				}
			}
		}
	}
	return out
}
