package hb_test

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// build constructs a small synthetic trace:
//
//	nodeA main:   send(m) ──► nodeB handler: write W, enq(e) ──► nodeB event handler: write W2
//	nodeB main:   read R
func build() (*trace.Trace, map[string]trace.OpID) {
	tr := trace.New()
	ids := map[string]trace.OpID{}
	y := tr.Intern

	ids["a.start"] = tr.Append(trace.Record{Kind: trace.KThreadStart, PID: y("a#1"), Thread: 1, Causor: trace.NoOp})
	ids["b.start"] = tr.Append(trace.Record{Kind: trace.KThreadStart, PID: y("b#1"), Thread: 2, Causor: trace.NoOp})
	ids["send"] = tr.Append(trace.Record{Kind: trace.KMsgSend, PID: y("a#1"), Thread: 1, Frame: ids["a.start"], Target: y("b#1"), Aux: y("m")})
	ids["h.begin"] = tr.Append(trace.Record{Kind: trace.KHandlerBegin, PID: y("b#1"), Thread: 2, Frame: ids["b.start"], Causor: ids["send"], Aux: y("msg:m")})
	ids["W"] = tr.Append(trace.Record{Kind: trace.KHeapWrite, PID: y("b#1"), Thread: 2, Frame: ids["h.begin"], Res: y("heap:b#1:o.f")})
	ids["enq"] = tr.Append(trace.Record{Kind: trace.KEventEnq, PID: y("b#1"), Thread: 2, Frame: ids["h.begin"], Aux: y("e")})
	ids["e.begin"] = tr.Append(trace.Record{Kind: trace.KHandlerBegin, PID: y("b#1"), Thread: 3, Frame: ids["b.start"], Causor: ids["enq"], Aux: y("event:e")})
	ids["W2"] = tr.Append(trace.Record{Kind: trace.KHeapWrite, PID: y("b#1"), Thread: 3, Frame: ids["e.begin"], Res: y("heap:b#1:o.g")})
	ids["R"] = tr.Append(trace.Record{Kind: trace.KHeapRead, PID: y("b#1"), Thread: 2, Frame: ids["b.start"], Res: y("heap:b#1:o.f"), Src: ids["W"]})
	return tr, ids
}

func TestForwardClosureFollowsCausalChains(t *testing.T) {
	tr, ids := build()
	g := hb.New(tr)
	closure := g.ForwardClosure([]trace.OpID{ids["send"]})

	for _, want := range []string{"h.begin", "W", "enq", "e.begin", "W2"} {
		if !closure[ids[want]] {
			t.Errorf("closure missing %s", want)
		}
	}
	if closure[ids["R"]] {
		t.Error("closure wrongly includes the main-thread read")
	}
	if closure[ids["a.start"]] {
		t.Error("closure wrongly includes the sender's own activation")
	}
}

func TestForwardClosureFromActivationSeed(t *testing.T) {
	tr, ids := build()
	g := hb.New(tr)
	closure := g.ForwardClosure([]trace.OpID{ids["b.start"]})
	// Everything under nodeB's main thread, including nested handler work.
	for _, want := range []string{"W", "W2", "R", "enq"} {
		if !closure[ids[want]] {
			t.Errorf("activation closure missing %s", want)
		}
	}
	if closure[ids["send"]] {
		t.Error("activation closure must not include the remote sender's op")
	}
}

func TestForwardClosureIsIdempotent(t *testing.T) {
	tr, ids := build()
	g := hb.New(tr)
	c1 := g.ForwardClosure([]trace.OpID{ids["send"]})
	var again []trace.OpID
	for id := range c1 {
		again = append(again, id)
	}
	c2 := g.ForwardClosure(again)
	for id := range c1 {
		if !c2[id] {
			t.Fatalf("closure not idempotent: %d lost", id)
		}
	}
}

func TestForwardClosureMonotoneInSeeds(t *testing.T) {
	tr, ids := build()
	g := hb.New(tr)
	f := func(pickSend, pickEnq bool) bool {
		var seeds []trace.OpID
		if pickSend {
			seeds = append(seeds, ids["send"])
		}
		if pickEnq {
			seeds = append(seeds, ids["enq"])
		}
		small := g.ForwardClosure(seeds)
		big := g.ForwardClosure(append(seeds, ids["b.start"]))
		for id := range small {
			if !big[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardChain(t *testing.T) {
	tr, ids := build()
	g := hb.New(tr)
	chain := g.BackwardChain(ids["W2"])
	// W2 ← event handler ← enq ← msg handler ← send ← a's thread start.
	want := []trace.OpID{ids["enq"], ids["send"]}
	found := map[trace.OpID]bool{}
	for _, id := range chain {
		found[id] = true
	}
	for _, w := range want {
		if !found[w] {
			t.Errorf("backward chain missing op %d; chain=%v", w, chain)
		}
	}
}

func TestCrossNodeAncestor(t *testing.T) {
	tr, ids := build()
	g := hb.New(tr)
	wp := g.CrossNodeAncestor(ids["W2"])
	if wp == nil || wp.ID != ids["send"] {
		t.Fatalf("CrossNodeAncestor(W2) = %v, want the remote send", wp)
	}
	if g.CrossNodeAncestor(ids["R"]) != nil {
		t.Fatal("main-thread read has no cross-node ancestor")
	}
}

func TestCrossNodeAncestorSkipsKVNotify(t *testing.T) {
	tr := trace.New()
	y := tr.Intern
	aStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: y("a#1"), Thread: 1, Causor: trace.NoOp})
	update := tr.Append(trace.Record{Kind: trace.KKVUpdate, PID: y("a#1"), Thread: 1, Frame: aStart, Res: y("zk:/x"), Aux: y("set")})
	notify := tr.Append(trace.Record{Kind: trace.KKVNotify, PID: y("a#1"), Thread: 1, Frame: aStart, Res: y("zk:/x"), Causor: update, Target: y("b#1")})
	bStart := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: y("b#1"), Thread: 2, Causor: trace.NoOp})
	hBegin := tr.Append(trace.Record{Kind: trace.KHandlerBegin, PID: y("b#1"), Thread: 2, Frame: bStart, Causor: notify})
	w := tr.Append(trace.Record{Kind: trace.KHeapWrite, PID: y("b#1"), Thread: 2, Frame: hBegin, Res: y("heap:b#1:o.f")})

	g := hb.New(tr)
	wp := g.CrossNodeAncestor(w)
	if wp == nil || wp.ID != update {
		t.Fatalf("ancestor = %v, want the KV update (not the notify)", wp)
	}
}

func TestLogicallyFrom(t *testing.T) {
	tr, ids := build()
	g := hb.New(tr)
	if !g.LogicallyFrom(ids["W"], "a#1") {
		t.Error("W is logically from node a (via the message)")
	}
	if !g.LogicallyFrom(ids["W"], "b#1") {
		t.Error("W physically executes on b")
	}
	if g.LogicallyFrom(ids["R"], "a#1") {
		t.Error("R has nothing to do with node a")
	}
}

func TestEscapingSeeds(t *testing.T) {
	tr, ids := build()
	g := hb.New(tr)
	seeds := g.EscapingSeeds("a#1")
	if len(seeds) != 1 || seeds[0] != ids["send"] {
		t.Fatalf("EscapingSeeds(a) = %v, want just the send", seeds)
	}
	if got := g.EscapingSeeds("b#1"); len(got) != 0 {
		// The enqueue is intra-node: it does not escape.
		t.Fatalf("EscapingSeeds(b) = %v, want none", got)
	}
}

// TestNewFromSourceMatchesNew pins the streaming graph build: extending the
// index window by window (at any window size, and through a full FCT2
// encode/decode round trip) must produce the same index as the monolithic
// build.
func TestNewFromSourceMatchesNew(t *testing.T) {
	tr, _ := build()
	want := hb.New(tr)

	for _, batch := range []int{1, 3, 1024} {
		g, err := hb.NewFromSource(trace.SourceOf(tr, batch))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if !reflect.DeepEqual(g.Ix, want.Ix) {
			t.Fatalf("batch %d: streamed index diverged from BuildIndex", batch)
		}
	}

	var buf bytes.Buffer
	if err := trace.EncodeStream(trace.SourceOf(tr, 2), &buf); err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := hb.NewFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded trace is a distinct object (its intern tables initialize
	// lazily and may differ in representation), so compare the derived index
	// tables rather than the whole Ix.
	if !reflect.DeepEqual(g.Ix.ByKind, want.Ix.ByKind) ||
		!reflect.DeepEqual(g.Ix.ByRes, want.Ix.ByRes) ||
		!reflect.DeepEqual(g.Ix.BySite, want.Ix.BySite) ||
		!reflect.DeepEqual(g.Ix.Causees, want.Ix.Causees) ||
		!reflect.DeepEqual(g.Ix.FrameOps, want.Ix.FrameOps) ||
		!reflect.DeepEqual(g.Ix.ThreadStart, want.Ix.ThreadStart) {
		t.Fatal("index built from the decoded FCT2 stream diverged")
	}
	// The graphs must also agree behaviorally, not just structurally.
	for op := trace.OpID(1); int(op) <= len(tr.Records); op++ {
		if got, exp := g.BackwardChain(op), want.BackwardChain(op); !reflect.DeepEqual(got, exp) {
			t.Fatalf("op %d: BackwardChain diverged: %v vs %v", op, got, exp)
		}
	}
}
