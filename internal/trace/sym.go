package trace

// Sym is a dense index into a per-trace symbol table. Every string a Record
// carries (machine, PID, site, resource, aux, target) is interned to a Sym,
// so the analyses compare and group records by integer identity instead of
// re-hashing strings, and the on-disk format stores each distinct string
// once. Sym values are only meaningful relative to the Trace that interned
// them; the zero value NoSym always means the empty string.
type Sym uint32

// NoSym is the interned form of "" in every table.
const NoSym Sym = 0

// SymTab interns strings to dense Syms. The zero value is ready to use:
// slot 0 is reserved for the empty string and materialized on first insert.
type SymTab struct {
	strs []string
	idx  map[string]Sym
}

func (st *SymTab) init() {
	if st.idx == nil {
		st.strs = append(st.strs, "")
		st.idx = make(map[string]Sym, 64)
		st.idx[""] = NoSym
	}
}

// Intern returns the Sym for s, adding it to the table if new.
func (st *SymTab) Intern(s string) Sym {
	if s == "" {
		return NoSym
	}
	st.init()
	if y, ok := st.idx[s]; ok {
		return y
	}
	y := Sym(len(st.strs))
	st.strs = append(st.strs, s)
	st.idx[s] = y
	return y
}

// grow pre-sizes the table for n total symbols (a decoder size hint).
func (st *SymTab) grow(n int) {
	if n <= len(st.strs) {
		return
	}
	st.init()
	if st.idx == nil || len(st.idx) > 1 {
		return // only worth it before real inserts
	}
	strs := make([]string, len(st.strs), n)
	copy(strs, st.strs)
	st.strs = strs
	st.idx = make(map[string]Sym, n)
	st.idx[""] = NoSym
}

// Lookup returns the Sym for s without interning. The second result is false
// when s has never been interned — callers translating external strings
// (report sites, PIDs from another trace) use it to mean "matches nothing
// here". Lookup is read-only and safe for concurrent use with other readers.
func (st *SymTab) Lookup(s string) (Sym, bool) {
	if s == "" {
		return NoSym, true
	}
	y, ok := st.idx[s]
	return y, ok
}

// Str resolves a Sym back to its string. Out-of-range Syms (including NoSym
// on an empty table) resolve to "".
func (st *SymTab) Str(y Sym) string {
	if int(y) < len(st.strs) {
		return st.strs[y]
	}
	return ""
}

// Len is the number of distinct symbols, including the reserved empty slot.
// Dense per-Sym side tables (Index.ByRes, resource classifications) size
// themselves with it.
func (st *SymTab) Len() int {
	if len(st.strs) == 0 {
		return 1 // the implicit empty slot
	}
	return len(st.strs)
}

// StackID identifies one interned callstack in a trace's StackTab. The zero
// value NoStack is the empty stack.
type StackID uint32

// NoStack is the empty callstack.
const NoStack StackID = 0

// stackNode is one prefix-tree node: the stack it extends plus the frame
// label pushed on top. Two threads whose stacks share a prefix share the
// prefix's nodes, pprof-location-table style.
type stackNode struct {
	parent StackID
	frame  Sym
}

// StackTab interns callstacks as a prefix tree. The tracer maintains each
// thread's current StackID incrementally (push on scope entry, restore on
// exit), so emitting a record costs one 4-byte copy instead of materializing
// a []string. The zero value is ready to use.
type StackTab struct {
	nodes []stackNode
	idx   map[stackNode]StackID
}

func (st *StackTab) init() {
	if st.idx == nil {
		st.nodes = append(st.nodes, stackNode{})
		st.idx = make(map[stackNode]StackID, 64)
	}
}

// grow pre-sizes the table for n total nodes (a decoder size hint).
func (st *StackTab) grow(n int) {
	if n <= len(st.nodes) || (st.idx != nil && len(st.idx) > 0) {
		return
	}
	st.init()
	nodes := make([]stackNode, len(st.nodes), n)
	copy(nodes, st.nodes)
	st.nodes = nodes
	st.idx = make(map[stackNode]StackID, n)
}

// Push returns the stack formed by pushing frame onto parent, interning it if
// new.
func (st *StackTab) Push(parent StackID, frame Sym) StackID {
	st.init()
	n := stackNode{parent: parent, frame: frame}
	if id, ok := st.idx[n]; ok {
		return id
	}
	id := StackID(len(st.nodes))
	st.nodes = append(st.nodes, n)
	st.idx[n] = id
	return id
}

// Depth returns the number of frames in the stack.
func (st *StackTab) Depth(id StackID) int {
	d := 0
	for id != NoStack && int(id) < len(st.nodes) {
		d++
		id = st.nodes[id].parent
	}
	return d
}

// Frames returns the stack's frame Syms, outermost first.
func (st *StackTab) Frames(id StackID) []Sym {
	d := st.Depth(id)
	if d == 0 {
		return nil
	}
	out := make([]Sym, d)
	for i := d - 1; i >= 0; i-- {
		n := st.nodes[id]
		out[i] = n.frame
		id = n.parent
	}
	return out
}

// Len is the number of interned nodes, including the reserved empty slot.
func (st *StackTab) Len() int {
	if len(st.nodes) == 0 {
		return 1
	}
	return len(st.nodes)
}
