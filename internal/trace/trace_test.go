package trace_test

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"fcatch/internal/trace"
)

func mk(tr *trace.Trace, kind trace.Kind, pid string, thread int, res string) trace.Record {
	return trace.Record{Kind: kind, PID: tr.Intern(pid), Thread: thread, Res: tr.Intern(res)}
}

func TestAppendAssignsDenseOneBasedIDs(t *testing.T) {
	tr := trace.New()
	for i := 0; i < 5; i++ {
		id := tr.Append(mk(tr, trace.KHeapRead, "p", 1, "r"))
		if id != trace.OpID(i+1) {
			t.Fatalf("id %d, want %d", id, i+1)
		}
	}
	if tr.At(0) != nil {
		t.Fatal("At(NoOp) must be nil")
	}
	if tr.At(6) != nil {
		t.Fatal("At(out of range) must be nil")
	}
	if tr.At(3).ID != 3 {
		t.Fatal("At(3) returned wrong record")
	}
}

func TestAtIsInverseOfAppend(t *testing.T) {
	f := func(kinds []uint8) bool {
		tr := trace.New()
		var ids []trace.OpID
		for _, k := range kinds {
			kind := trace.Kind(int(k)%int(trace.KRestart) + 1)
			ids = append(ids, tr.Append(mk(tr, kind, "p", 0, "")))
		}
		for i, id := range ids {
			r := tr.At(id)
			if r == nil || r.ID != id || int(id) != i+1 {
				return false
			}
		}
		return tr.Len() == len(kinds)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindPredicates(t *testing.T) {
	if !trace.KRPCCall.IsCausal() || !trace.KMsgSend.IsCausal() || !trace.KKVUpdate.IsCausal() {
		t.Error("causal kinds misclassified")
	}
	if trace.KHeapWrite.IsCausal() || trace.KWait.IsCausal() {
		t.Error("non-causal kinds misclassified")
	}
	if !trace.KThreadStart.IsActivation() || !trace.KHandlerBegin.IsActivation() {
		t.Error("activation kinds misclassified")
	}
	if !trace.KStDelete.IsStorage() || trace.KHeapRead.IsStorage() {
		t.Error("storage kinds misclassified")
	}
	for _, k := range []trace.Kind{trace.KHeapWrite, trace.KStCreate, trace.KStDelete, trace.KStWrite, trace.KStRename, trace.KKVUpdate} {
		if !k.IsWriteLike() {
			t.Errorf("%v should be write-like", k)
		}
	}
	for _, k := range []trace.Kind{trace.KHeapRead, trace.KLoopRead, trace.KStRead, trace.KStExists, trace.KStList} {
		if !k.IsReadLike() {
			t.Errorf("%v should be read-like", k)
		}
	}
	if trace.KSignal.IsWriteLike() || trace.KWait.IsReadLike() {
		t.Error("signal/wait are not resource accesses")
	}
}

func TestIndexGroupsAndCausality(t *testing.T) {
	tr := trace.New()
	spawn := tr.Append(mk(tr, trace.KThreadCreate, "p", 1, ""))
	start := tr.Append(trace.Record{Kind: trace.KThreadStart, PID: tr.Intern("p"), Thread: 2, Causor: spawn})
	read := tr.Append(trace.Record{Kind: trace.KHeapRead, PID: tr.Intern("p"), Thread: 2, Frame: start, Res: tr.Intern("heap:p:o.f")})
	write := tr.Append(trace.Record{Kind: trace.KHeapWrite, PID: tr.Intern("p"), Thread: 2, Frame: start, Res: tr.Intern("heap:p:o.f")})

	ix := trace.BuildIndex(tr)
	resSym, ok := tr.Lookup("heap:p:o.f")
	if !ok {
		t.Fatal("resource never interned")
	}
	if got := ix.ByKind[trace.KHeapRead]; len(got) != 1 || got[0] != read {
		t.Fatalf("ByKind[read] = %v", got)
	}
	if got := ix.ResIDs(resSym); len(got) != 2 {
		t.Fatalf("ByRes = %v", got)
	}
	if got := ix.Causees[spawn]; len(got) != 1 || got[0] != start {
		t.Fatalf("Causees = %v", got)
	}
	if c := ix.Causor(tr.At(read)); c == nil || c.ID != spawn {
		t.Fatalf("Causor(read) = %v, want the spawn op", c)
	}
	if got := ix.WritesTo(resSym); len(got) != 1 || got[0] != write {
		t.Fatalf("WritesTo = %v", got)
	}
	if got := ix.ReadsOf(resSym); len(got) != 1 || got[0] != read {
		t.Fatalf("ReadsOf = %v", got)
	}
}

func TestHasPID(t *testing.T) {
	tr := trace.New()
	tr.PIDs = []string{"a#1", "b#1"}
	if !tr.HasPID("a#1") || tr.HasPID("c#1") {
		t.Fatal("HasPID wrong")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := trace.New()
	tr.CrashStep = 42
	tr.CrashedPID = "x#1"
	tr.PIDs = []string{"x#1", "y#1"}
	stack := tr.PushFrame(tr.PushFrame(trace.NoStack, tr.Intern("main")), tr.Intern("fn"))
	for i := 0; i < 20; i++ {
		tr.Append(trace.Record{
			Kind: trace.KStWrite, PID: tr.Intern("x#1"), Thread: i, Res: tr.Intern("gfs:/f"),
			Taint: []trace.OpID{1, 2}, Stack: stack,
		})
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 20 || got.CrashStep != 42 || got.CrashedPID != "x#1" || len(got.PIDs) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if labels := got.StackLabels(got.Records[3].Stack); len(labels) != 2 || labels[1] != "fn" {
		t.Fatalf("record contents lost: stack = %v", labels)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := trace.New()
	tr.Append(mk(tr, trace.KSignal, "p", 1, "cv:p:x/1"))
	tr.Append(mk(tr, trace.KWait, "p", 2, "cv:p:x/1"))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Records[0].Kind != trace.KSignal {
		t.Fatalf("json round trip: %+v", got.Records)
	}
}

func TestTraceFormat(t *testing.T) {
	tr := trace.New()
	id := tr.Append(trace.Record{
		TS: 9, PID: tr.Intern("n#1"), Thread: 3, Kind: trace.KMsgSend,
		Aux: tr.Intern("ping"), Target: tr.Intern("m#1"), Site: tr.Intern("a.go:1"),
	})
	s := tr.Format(tr.At(id))
	for _, want := range []string{"#1", "n#1/3", "msg-send", "aux=ping", "->m#1", "@a.go:1"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("Format() = %q missing %q", s, want)
		}
	}
}

func TestFlags(t *testing.T) {
	r := trace.Record{Flags: trace.FlagTimedWait | trace.FlagDropped}
	if !r.HasFlag(trace.FlagTimedWait) || !r.HasFlag(trace.FlagDropped) {
		t.Fatal("flags not set")
	}
	if r.HasFlag(trace.FlagRecoveryRoot) {
		t.Fatal("unset flag reported set")
	}
}
