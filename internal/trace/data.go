package trace

// RecordData is the resolved, string-valued form of one Record — the shape
// records had before interning, kept as the stable human-readable interchange
// representation. JSON dumps (WriteJSON/ReadJSON) use it with the original
// field names, so pre-interning dumps still parse, and tests build synthetic
// traces from it without touching symbol tables by hand.
type RecordData struct {
	ID      OpID
	TS      int64
	Machine string
	PID     string
	Thread  int
	Frame   OpID
	Kind    Kind
	Site    string
	Stack   []string
	Res     string
	Src     OpID
	Aux     string
	Target  string
	Flags   uint32
	Causor  OpID
	Taint   []OpID
	Ctl     []OpID
}

// Data resolves a record's symbols into its RecordData form.
func (t *Trace) Data(r *Record) RecordData {
	return RecordData{
		ID:      r.ID,
		TS:      r.TS,
		Machine: t.Str(r.Machine),
		PID:     t.Str(r.PID),
		Thread:  r.Thread,
		Frame:   r.Frame,
		Kind:    r.Kind,
		Site:    t.Str(r.Site),
		Stack:   t.StackLabels(r.Stack),
		Res:     t.Str(r.Res),
		Src:     r.Src,
		Aux:     t.Str(r.Aux),
		Target:  t.Str(r.Target),
		Flags:   r.Flags,
		Causor:  r.Causor,
		Taint:   r.Taint,
		Ctl:     r.Ctl,
	}
}

// AppendData interns a RecordData's strings into this trace and appends the
// resulting record, re-deriving bookkeeping exactly like the tracer: the ID
// is assigned from the append position (d.ID is ignored), thread starts
// register their PID, and crash records refresh the trace's crash metadata if
// it is unset. Loaders and tests use it so a rebuilt trace is consistent
// regardless of what the input stream claimed.
func (t *Trace) AppendData(d RecordData) OpID {
	var stack StackID
	for _, label := range d.Stack {
		stack = t.PushFrame(stack, t.Intern(label))
	}
	id := t.Append(Record{
		TS:      d.TS,
		Machine: t.Intern(d.Machine),
		PID:     t.Intern(d.PID),
		Thread:  d.Thread,
		Frame:   d.Frame,
		Kind:    d.Kind,
		Site:    t.Intern(d.Site),
		Stack:   stack,
		Res:     t.Intern(d.Res),
		Src:     d.Src,
		Aux:     t.Intern(d.Aux),
		Target:  t.Intern(d.Target),
		Flags:   d.Flags,
		Causor:  d.Causor,
		Taint:   d.Taint,
		Ctl:     d.Ctl,
	})
	switch d.Kind {
	case KThreadStart:
		t.AddPID(d.PID)
	case KCrash:
		if t.CrashedPID == "" && d.Aux != "" {
			t.CrashedPID = d.Aux
			t.CrashStep = d.TS
		}
	}
	return id
}
