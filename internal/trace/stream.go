package trace

import "io"

// The streaming trace pipeline moves records between stages in bounded
// windows instead of materialized []Record slices:
//
//	producer (sim tracer, FCT2 decoder)
//	    └─ Sink / Writer ── WindowFn subscribers (index builder, coverage fold,
//	                        stream encoder, ...)
//	consumer (index builder, hb graph, campaign space)
//	    └─ Source.Next() windows
//
// A window is a slice of records that were just appended to the stage's
// Trace; symbol/stack tables and the PID list are always complete for every
// record already delivered, so consumers may resolve Syms as windows arrive.
// Unless a stage explicitly discards records (Writer.SetRetain(false), a
// non-retaining decoder), windows alias Trace.Records and stay valid after
// the callback returns — records are never mutated once appended.

// DefaultBatch is the window size (in records) streaming stages use when the
// caller does not choose one. Large enough to amortize per-window overhead,
// small enough that a window is a rounding error next to the index.
const DefaultBatch = 1024

// Source is the pull side of the streaming pipeline: a trace being
// progressively revealed. Next returns the next window of records, io.EOF
// after the last one. Trace() returns the destination trace — its symbol and
// stack tables, PID list and (by the time Next returns io.EOF) crash
// metadata cover every record delivered so far. Sources are single-use and
// not safe for concurrent use.
type Source interface {
	// Trace returns the trace the source populates as it is drained.
	Trace() *Trace
	// Next returns the next window of records, in trace order. It returns
	// io.EOF when the stream is exhausted and a wrapped, position-bearing
	// error when the underlying stream is truncated or corrupt. The window
	// is valid until the next call to Next for non-retaining sources, and
	// indefinitely for retaining ones.
	Next() ([]Record, error)
	// Close releases the source's underlying resources (idempotent).
	Close() error
}

// SizeHints carries the element totals a source may know in advance (the
// FCT2 header written by Encode records them). Consumers use them to
// pre-size the trace tables and derived indexes.
type SizeHints struct {
	Syms, Stacks, PIDs, Records int
}

// Hinter is implemented by Sources that know their totals up front.
type Hinter interface {
	SizeHints() (SizeHints, bool)
}

// Drain consumes src to completion and returns the fully materialized trace.
// It closes the source. LoadTrace/Decode are thin wrappers over Drain.
func Drain(src Source) (*Trace, error) {
	defer src.Close()
	for {
		if _, err := src.Next(); err == io.EOF {
			return src.Trace(), nil
		} else if err != nil {
			return nil, err
		}
	}
}

// SourceOf streams an already materialized trace in windows of batch records
// (DefaultBatch if batch <= 0) — the degenerate Source wrapping monolithic
// decoders and in-memory traces.
func SourceOf(t *Trace, batch int) Source {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &memSource{t: t, batch: batch}
}

type memSource struct {
	t     *Trace
	pos   int
	batch int
}

func (s *memSource) Trace() *Trace { return s.t }

func (s *memSource) Next() ([]Record, error) {
	if s.pos >= len(s.t.Records) {
		return nil, io.EOF
	}
	end := s.pos + s.batch
	if end > len(s.t.Records) {
		end = len(s.t.Records)
	}
	win := s.t.Records[s.pos:end]
	s.pos = end
	return win, nil
}

func (s *memSource) Close() error { return nil }

func (s *memSource) SizeHints() (SizeHints, bool) {
	return SizeHints{
		Syms:    s.t.NumSyms(),
		Stacks:  s.t.NumStacks(),
		PIDs:    len(s.t.PIDs),
		Records: len(s.t.Records),
	}, true
}

// Sink is the push side of the streaming pipeline: a destination for records
// emitted one at a time. Append assigns and returns the record's dense OpID.
type Sink interface {
	Append(Record) OpID
}

// WindowFn receives one bounded window of freshly appended records. The
// trace's symbol/stack tables cover everything in the window. Callbacks run
// synchronously on the producer (for the sim tracer: under the scheduler
// baton) and must not retain the slice when the producing Writer is
// non-retaining.
type WindowFn func(t *Trace, recs []Record)

// Writer is the standard Sink: it interns records into a Trace and tees them
// to subscribers in bounded windows. With SetRetain(false) the records are
// not accumulated in the trace — the trace then carries only symbol tables,
// PIDs and run metadata, and peak memory for a run drops to O(batch) — but
// every subscriber still sees the full stream. Single-writer, like the Trace
// it wraps.
type Writer struct {
	t      *Trace
	batch  int
	retain bool
	subs   []WindowFn
	start  int      // retaining: first unflushed index into t.Records
	buf    []Record // non-retaining: reused window buffer
	n      int      // non-retaining: records appended (the OpID source)
}

// NewWriter wraps t in a retaining Writer flushing windows of batch records
// (DefaultBatch if batch <= 0).
func NewWriter(t *Trace, batch int) *Writer {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Writer{t: t, batch: batch, retain: true}
}

// Trace returns the destination trace.
func (w *Writer) Trace() *Trace { return w.t }

// Subscribe adds a window callback. Must be called before the first Append.
func (w *Writer) Subscribe(fn WindowFn) { w.subs = append(w.subs, fn) }

// SetRetain switches record retention (default true). Must be called before
// the first Append.
func (w *Writer) SetRetain(retain bool) { w.retain = retain }

// Len returns the number of records appended so far.
func (w *Writer) Len() int {
	if w.retain {
		return len(w.t.Records)
	}
	return w.n
}

// Append adds one record, assigning its dense OpID, and flushes a window to
// the subscribers whenever batch records have accumulated.
func (w *Writer) Append(r Record) OpID {
	var id OpID
	if w.retain {
		id = w.t.Append(r)
		if len(w.t.Records)-w.start >= w.batch {
			w.flush()
		}
		return id
	}
	w.n++
	id = OpID(w.n)
	r.ID = id
	w.buf = append(w.buf, r)
	if len(w.buf) >= w.batch {
		w.flush()
	}
	return id
}

// Flush delivers the final partial window to the subscribers. The producer
// calls it once, after the last Append.
func (w *Writer) Flush() { w.flush() }

func (w *Writer) flush() {
	if w.retain {
		if w.start >= len(w.t.Records) {
			return
		}
		win := w.t.Records[w.start:]
		w.start = len(w.t.Records)
		for _, fn := range w.subs {
			fn(w.t, win)
		}
		return
	}
	if len(w.buf) == 0 {
		return
	}
	for _, fn := range w.subs {
		fn(w.t, w.buf)
	}
	w.buf = w.buf[:0]
}
