package trace

import (
	"sync"
)

// Trace is the full record stream of one observed run, plus run-level
// metadata the detectors need (which processes existed, where the injected
// crash landed, which writes last defined each resource, ...). The trace owns
// the symbol table its records' Sym fields index and the prefix tree their
// StackIDs index; Syms from one trace are meaningless in another (translate
// with SymMapTo or resolve through Str).
//
// Interning (Intern, PushFrame, Append) is single-writer: the tracer runs
// under the scheduler baton. After a run the trace is read-only and every
// resolving accessor (Str, Lookup, StackSyms, ...) is safe for concurrent use
// — the two detectors read one trace from parallel workers.
type Trace struct {
	// Records in emission order; Records[i].ID == OpID(i+1).
	Records []Record

	// PIDs lists every process that appeared in the run, in start order.
	PIDs []string

	// CrashStep is the scheduler step at which the observation crash was
	// injected, or -1 for a fault-free run.
	CrashStep int64
	// CrashedPID is the process crashed by the observation fault ("" if none).
	CrashedPID string

	// Wall-clock durations, filled by the observer (Table 4).
	BaselineNanos int64 // run duration with this trace's tracing mode

	syms   SymTab
	stacks StackTab

	// pidSet is the membership index behind HasPID/AddPID, built lazily (a
	// loaded trace has PIDs but no set) and kept in sync by AddPID. Guarded
	// by a mutex because the two detectors may query one trace concurrently.
	pidMu  sync.Mutex
	pidSet map[string]bool
}

// New returns an empty trace for a fault-free run.
func New() *Trace {
	return &Trace{CrashStep: -1}
}

// Intern returns the trace-local Sym for s, adding it to the symbol table if
// new. Writer-side only (the tracer under the scheduler baton).
func (t *Trace) Intern(s string) Sym { return t.syms.Intern(s) }

// Str resolves a Sym to its string. Safe for concurrent readers.
func (t *Trace) Str(y Sym) string { return t.syms.Str(y) }

// Lookup resolves a string to its Sym without interning; ok is false when the
// string never appeared in this trace. Safe for concurrent readers.
func (t *Trace) Lookup(s string) (Sym, bool) { return t.syms.Lookup(s) }

// NumSyms is the symbol-table size (including the reserved empty slot) —
// the bound for dense per-Sym side tables.
func (t *Trace) NumSyms() int { return t.syms.Len() }

// PushFrame returns the interned stack formed by pushing frame onto parent.
// Writer-side only.
func (t *Trace) PushFrame(parent StackID, frame Sym) StackID {
	return t.stacks.Push(parent, frame)
}

// StackSyms returns a stack's frame Syms, outermost first.
func (t *Trace) StackSyms(id StackID) []Sym { return t.stacks.Frames(id) }

// StackLabels resolves a stack to its frame labels, outermost first.
func (t *Trace) StackLabels(id StackID) []string {
	syms := t.stacks.Frames(id)
	if syms == nil {
		return nil
	}
	out := make([]string, len(syms))
	for i, y := range syms {
		out[i] = t.syms.Str(y)
	}
	return out
}

// NumStacks is the stack-table size (including the reserved empty slot).
func (t *Trace) NumStacks() int { return t.stacks.Len() }

// SymMapTo returns a dense translation table from this trace's Syms to
// other's: m[y] is the Sym in other whose string equals t.Str(y), or NoSym if
// other never interned that string. The crash-recovery detector builds one to
// compare resources and sites across the fault-free/faulty trace pair without
// touching strings in its pair loops.
func (t *Trace) SymMapTo(other *Trace) []Sym {
	m := make([]Sym, t.NumSyms())
	for y := 1; y < len(t.syms.strs); y++ {
		if o, ok := other.Lookup(t.syms.strs[y]); ok {
			m[y] = o
		}
	}
	return m
}

// Append adds a record, assigning its ID, and returns the ID. The record's
// Sym/StackID fields must already be relative to this trace.
func (t *Trace) Append(r Record) OpID {
	r.ID = OpID(len(t.Records) + 1)
	t.Records = append(t.Records, r)
	return r.ID
}

// At returns the record with the given ID, or nil for NoOp / out of range.
func (t *Trace) At(id OpID) *Record {
	if id < 1 || int(id) > len(t.Records) {
		return nil
	}
	return &t.Records[id-1]
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// pidSetThreshold is the PIDs length past which membership switches from a
// linear scan to the lazily-built set. Simulated clusters run a handful of
// processes, so the common case stays allocation-free.
const pidSetThreshold = 16

// ensurePIDSetLocked builds the membership index from PIDs once the list is
// large enough to beat a scan (pidMu must be held). Reports whether the set
// is available.
func (t *Trace) ensurePIDSetLocked() bool {
	if t.pidSet != nil {
		return true
	}
	if len(t.PIDs) < pidSetThreshold {
		return false
	}
	t.pidSet = make(map[string]bool, len(t.PIDs))
	for _, p := range t.PIDs {
		t.pidSet[p] = true
	}
	return true
}

// HasPID reports whether pid appeared in the run. Membership is a set probe
// for large runs — the tracer checks every thread start against it, and the
// crash-recovery detector probes every faulty-run PID against the fault-free
// trace, both linear scans over PIDs before.
func (t *Trace) HasPID(pid string) bool {
	t.pidMu.Lock()
	defer t.pidMu.Unlock()
	if t.ensurePIDSetLocked() {
		return t.pidSet[pid]
	}
	for _, p := range t.PIDs {
		if p == pid {
			return true
		}
	}
	return false
}

// AddPID records pid in start order, once — the tracer calls it on every
// thread start, keeping PIDs and the membership index in sync.
func (t *Trace) AddPID(pid string) {
	t.pidMu.Lock()
	defer t.pidMu.Unlock()
	if t.ensurePIDSetLocked() {
		if t.pidSet[pid] {
			return
		}
		t.pidSet[pid] = true
	} else {
		for _, p := range t.PIDs {
			if p == pid {
				return
			}
		}
	}
	t.PIDs = append(t.PIDs, pid)
}

// numKinds bounds the Kind enum for dense per-kind tables.
const numKinds = int(KRestart) + 1

// Index holds the derived lookups shared by the happens-before analysis and
// both detectors. It is built incrementally: NewIndex starts an empty index,
// Extend folds in each window of records as it arrives (possibly while the
// trace is still being produced), and Finish sizes the per-Sym tables to the
// final symbol table. BuildIndex is the one-shot wrapper. Interning after
// Finish invalidates the index.
type Index struct {
	T *Trace

	// ByKind groups record IDs by kind, in trace order (dense, indexed by
	// Kind).
	ByKind [][]OpID

	// ByRes groups record IDs by resource, in trace order (dense, indexed by
	// the resource's Sym).
	ByRes [][]OpID

	// BySite groups injector-countable record IDs by static site, in trace
	// order (dense, indexed by the site's Sym) — the occurrence numbering the
	// fault injector uses at run time. Crash/restart bookkeeping records are
	// excluded.
	BySite [][]OpID

	// Causees maps a causal op to the activation records it spawned
	// (thread starts, handler begins, KV notifies).
	Causees map[OpID][]OpID

	// FrameOps maps an activation record to the ops that executed directly
	// under it (not through nested activations).
	FrameOps map[OpID][]OpID

	// ThreadStart maps a thread id to its KThreadStart record.
	ThreadStart map[int]OpID
}

// NewIndex starts an empty incremental index over t. The per-Sym tables grow
// lazily as Extend encounters higher Syms — Extend never reads the symbol
// table, so it is safe to run while the single interning writer is still
// appending (the index builder overlapping a live run).
func NewIndex(t *Trace) *Index {
	return &Index{
		T:           t,
		ByKind:      make([][]OpID, numKinds),
		Causees:     make(map[OpID][]OpID),
		FrameOps:    make(map[OpID][]OpID),
		ThreadStart: make(map[int]OpID),
	}
}

// growSymTable extends a dense per-Sym table to at least n slots, doubling to
// amortize repeated growth during incremental extension.
func growSymTable(s [][]OpID, n int) [][]OpID {
	if n <= len(s) {
		return s
	}
	if n < 2*len(s) {
		n = 2 * len(s)
	}
	if n <= cap(s) {
		return s[:n]
	}
	out := make([][]OpID, n)
	copy(out, s)
	return out
}

// Extend folds one window of records (in trace order) into the index.
func (ix *Index) Extend(recs []Record) {
	for i := range recs {
		r := &recs[i]
		ix.ByKind[r.Kind] = append(ix.ByKind[r.Kind], r.ID)
		if r.Res != NoSym {
			if int(r.Res) >= len(ix.ByRes) {
				ix.ByRes = growSymTable(ix.ByRes, int(r.Res)+1)
			}
			ix.ByRes[r.Res] = append(ix.ByRes[r.Res], r.ID)
		}
		// Fault bookkeeping records reuse the trigger's site; they are not
		// operations the injector counts, so they stay out of BySite.
		if r.Site != NoSym && r.Kind != KCrash && r.Kind != KRestart {
			if int(r.Site) >= len(ix.BySite) {
				ix.BySite = growSymTable(ix.BySite, int(r.Site)+1)
			}
			ix.BySite[r.Site] = append(ix.BySite[r.Site], r.ID)
		}
		if r.Kind.IsActivation() || r.Kind == KKVNotify {
			if r.Causor != NoOp {
				ix.Causees[r.Causor] = append(ix.Causees[r.Causor], r.ID)
			}
		}
		if r.Kind == KThreadStart {
			ix.ThreadStart[r.Thread] = r.ID
		}
		if r.Frame != NoOp {
			ix.FrameOps[r.Frame] = append(ix.FrameOps[r.Frame], r.ID)
		}
	}
}

// Finish sizes the per-Sym tables to the (now final) symbol table, so every
// in-range Sym probes without a bounds branch failing. Call it after the
// last Extend, once interning has stopped.
func (ix *Index) Finish() {
	n := ix.T.NumSyms()
	if len(ix.ByRes) < n {
		ix.ByRes = growSymTable(ix.ByRes, n)[:n]
	}
	if len(ix.BySite) < n {
		ix.BySite = growSymTable(ix.BySite, n)[:n]
	}
}

// BuildIndex scans a materialized trace once and produces the Index.
func BuildIndex(t *Trace) *Index {
	ix := NewIndex(t)
	ix.ByRes = make([][]OpID, 0, t.NumSyms())
	ix.BySite = make([][]OpID, 0, t.NumSyms())
	ix.Extend(t.Records)
	ix.Finish()
	return ix
}

// ResIDs returns the ops on the resource with Sym y (nil for NoSym or
// out-of-range Syms).
func (ix *Index) ResIDs(y Sym) []OpID {
	if int(y) >= len(ix.ByRes) {
		return nil
	}
	return ix.ByRes[y]
}

// SiteIDs returns the injector-countable ops at the site with Sym y.
func (ix *Index) SiteIDs(y Sym) []OpID {
	if int(y) >= len(ix.BySite) {
		return nil
	}
	return ix.BySite[y]
}

// Activation returns the activation record op executed under, or nil.
func (ix *Index) Activation(op *Record) *Record {
	return ix.T.At(op.Frame)
}

// Causor returns the direct causor record of op, following the paper's
// definition: the operation whose disappearance makes op disappear. For an
// ordinary op that is the causor of its activation frame; for an activation
// or KV-notify record it is the recorded causor itself.
func (ix *Index) Causor(op *Record) *Record {
	if op.Kind.IsActivation() || op.Kind == KKVNotify {
		return ix.T.At(op.Causor)
	}
	act := ix.Activation(op)
	if act == nil {
		return nil
	}
	return ix.T.At(act.Causor)
}

// OpsOfKinds returns all record IDs of the given kinds, merged in trace
// order. The per-kind slices are already ordered (BuildIndex appends in trace
// order), so this is a k-way merge rather than a sort.
func (ix *Index) OpsOfKinds(kinds ...Kind) []OpID {
	lists := make([][]OpID, 0, len(kinds))
	total := 0
	for _, k := range kinds {
		if ids := ix.ByKind[k]; len(ids) > 0 {
			lists = append(lists, ids)
			total += len(ids)
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]OpID(nil), lists[0]...)
	}
	out := make([]OpID, 0, total)
	for len(lists) > 0 {
		min := 0
		for i := 1; i < len(lists); i++ {
			if lists[i][0] < lists[min][0] {
				min = i
			}
		}
		out = append(out, lists[min][0])
		if lists[min] = lists[min][1:]; len(lists[min]) == 0 {
			lists[min] = lists[len(lists)-1]
			lists = lists[:len(lists)-1]
		}
	}
	return out
}

// WritesTo returns all write-like ops on the resource with Sym y, in trace
// order.
func (ix *Index) WritesTo(y Sym) []OpID {
	var out []OpID
	for _, id := range ix.ResIDs(y) {
		if ix.T.At(id).Kind.IsWriteLike() {
			out = append(out, id)
		}
	}
	return out
}

// ReadsOf returns all read-like ops on the resource with Sym y, in trace
// order.
func (ix *Index) ReadsOf(y Sym) []OpID {
	var out []OpID
	for _, id := range ix.ResIDs(y) {
		if ix.T.At(id).Kind.IsReadLike() {
			out = append(out, id)
		}
	}
	return out
}
