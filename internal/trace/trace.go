package trace

import (
	"sort"
)

// Trace is the full record stream of one observed run, plus run-level
// metadata the detectors need (which processes existed, where the injected
// crash landed, which writes last defined each resource, ...).
type Trace struct {
	// Records in emission order; Records[i].ID == OpID(i+1).
	Records []Record

	// PIDs lists every process that appeared in the run, in start order.
	PIDs []string

	// CrashStep is the scheduler step at which the observation crash was
	// injected, or -1 for a fault-free run.
	CrashStep int64
	// CrashedPID is the process crashed by the observation fault ("" if none).
	CrashedPID string

	// Wall-clock durations, filled by the observer (Table 4).
	BaselineNanos int64 // run duration with this trace's tracing mode
}

// New returns an empty trace for a fault-free run.
func New() *Trace {
	return &Trace{CrashStep: -1}
}

// Append adds a record, assigning its ID, and returns the ID.
func (t *Trace) Append(r Record) OpID {
	r.ID = OpID(len(t.Records) + 1)
	t.Records = append(t.Records, r)
	return r.ID
}

// At returns the record with the given ID, or nil for NoOp / out of range.
func (t *Trace) At(id OpID) *Record {
	if id < 1 || int(id) > len(t.Records) {
		return nil
	}
	return &t.Records[id-1]
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// HasPID reports whether pid appeared in the run.
func (t *Trace) HasPID(pid string) bool {
	for _, p := range t.PIDs {
		if p == pid {
			return true
		}
	}
	return false
}

// Index holds the derived lookups shared by the happens-before analysis and
// both detectors. Build it once per trace.
type Index struct {
	T *Trace

	// ByKind groups record IDs by kind, in trace order.
	ByKind map[Kind][]OpID

	// ByRes groups record IDs by resource ID, in trace order.
	ByRes map[string][]OpID

	// Causees maps a causal op to the activation records it spawned
	// (thread starts, handler begins, KV notifies).
	Causees map[OpID][]OpID

	// FrameOps maps an activation record to the ops that executed directly
	// under it (not through nested activations).
	FrameOps map[OpID][]OpID

	// ThreadStart maps a thread id to its KThreadStart record.
	ThreadStart map[int]OpID
}

// BuildIndex scans the trace once and produces the Index.
func BuildIndex(t *Trace) *Index {
	ix := &Index{
		T:           t,
		ByKind:      make(map[Kind][]OpID),
		ByRes:       make(map[string][]OpID),
		Causees:     make(map[OpID][]OpID),
		FrameOps:    make(map[OpID][]OpID),
		ThreadStart: make(map[int]OpID),
	}
	for i := range t.Records {
		r := &t.Records[i]
		ix.ByKind[r.Kind] = append(ix.ByKind[r.Kind], r.ID)
		if r.Res != "" {
			ix.ByRes[r.Res] = append(ix.ByRes[r.Res], r.ID)
		}
		if r.Kind.IsActivation() || r.Kind == KKVNotify {
			if r.Causor != NoOp {
				ix.Causees[r.Causor] = append(ix.Causees[r.Causor], r.ID)
			}
		}
		if r.Kind == KThreadStart {
			ix.ThreadStart[r.Thread] = r.ID
		}
		if r.Frame != NoOp {
			ix.FrameOps[r.Frame] = append(ix.FrameOps[r.Frame], r.ID)
		}
	}
	return ix
}

// Activation returns the activation record op executed under, or nil.
func (ix *Index) Activation(op *Record) *Record {
	return ix.T.At(op.Frame)
}

// Causor returns the direct causor record of op, following the paper's
// definition: the operation whose disappearance makes op disappear. For an
// ordinary op that is the causor of its activation frame; for an activation
// or KV-notify record it is the recorded causor itself.
func (ix *Index) Causor(op *Record) *Record {
	if op.Kind.IsActivation() || op.Kind == KKVNotify {
		return ix.T.At(op.Causor)
	}
	act := ix.Activation(op)
	if act == nil {
		return nil
	}
	return ix.T.At(act.Causor)
}

// OpsOfKinds returns all record IDs of the given kinds, merged in trace order.
func (ix *Index) OpsOfKinds(kinds ...Kind) []OpID {
	var out []OpID
	for _, k := range kinds {
		out = append(out, ix.ByKind[k]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WritesTo returns all write-like ops on resource res, in trace order.
func (ix *Index) WritesTo(res string) []OpID {
	var out []OpID
	for _, id := range ix.ByRes[res] {
		if ix.T.At(id).Kind.IsWriteLike() {
			out = append(out, id)
		}
	}
	return out
}

// ReadsOf returns all read-like ops on resource res, in trace order.
func (ix *Index) ReadsOf(res string) []OpID {
	var out []OpID
	for _, id := range ix.ByRes[res] {
		if ix.T.At(id).Kind.IsReadLike() {
			out = append(out, id)
		}
	}
	return out
}
