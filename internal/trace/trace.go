package trace

import (
	"sync"
)

// Trace is the full record stream of one observed run, plus run-level
// metadata the detectors need (which processes existed, where the injected
// crash landed, which writes last defined each resource, ...).
type Trace struct {
	// Records in emission order; Records[i].ID == OpID(i+1).
	Records []Record

	// PIDs lists every process that appeared in the run, in start order.
	PIDs []string

	// CrashStep is the scheduler step at which the observation crash was
	// injected, or -1 for a fault-free run.
	CrashStep int64
	// CrashedPID is the process crashed by the observation fault ("" if none).
	CrashedPID string

	// Wall-clock durations, filled by the observer (Table 4).
	BaselineNanos int64 // run duration with this trace's tracing mode

	// pidSet is the membership index behind HasPID/AddPID, built lazily (a
	// loaded trace has PIDs but no set) and kept in sync by AddPID. Guarded
	// by a mutex because the two detectors may query one trace concurrently.
	// (Unexported, so gob/json round trips ignore it and rebuild on demand.)
	pidMu  sync.Mutex
	pidSet map[string]bool
}

// New returns an empty trace for a fault-free run.
func New() *Trace {
	return &Trace{CrashStep: -1}
}

// Append adds a record, assigning its ID, and returns the ID.
func (t *Trace) Append(r Record) OpID {
	r.ID = OpID(len(t.Records) + 1)
	t.Records = append(t.Records, r)
	return r.ID
}

// At returns the record with the given ID, or nil for NoOp / out of range.
func (t *Trace) At(id OpID) *Record {
	if id < 1 || int(id) > len(t.Records) {
		return nil
	}
	return &t.Records[id-1]
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// pidSetThreshold is the PIDs length past which membership switches from a
// linear scan to the lazily-built set. Simulated clusters run a handful of
// processes, so the common case stays allocation-free.
const pidSetThreshold = 16

// ensurePIDSetLocked builds the membership index from PIDs once the list is
// large enough to beat a scan (pidMu must be held). Reports whether the set
// is available.
func (t *Trace) ensurePIDSetLocked() bool {
	if t.pidSet != nil {
		return true
	}
	if len(t.PIDs) < pidSetThreshold {
		return false
	}
	t.pidSet = make(map[string]bool, len(t.PIDs))
	for _, p := range t.PIDs {
		t.pidSet[p] = true
	}
	return true
}

// HasPID reports whether pid appeared in the run. Membership is a set probe
// for large runs — the tracer checks every thread start against it, and the
// crash-recovery detector probes every faulty-run PID against the fault-free
// trace, both linear scans over PIDs before.
func (t *Trace) HasPID(pid string) bool {
	t.pidMu.Lock()
	defer t.pidMu.Unlock()
	if t.ensurePIDSetLocked() {
		return t.pidSet[pid]
	}
	for _, p := range t.PIDs {
		if p == pid {
			return true
		}
	}
	return false
}

// AddPID records pid in start order, once — the tracer calls it on every
// thread start, keeping PIDs and the membership index in sync.
func (t *Trace) AddPID(pid string) {
	t.pidMu.Lock()
	defer t.pidMu.Unlock()
	if t.ensurePIDSetLocked() {
		if t.pidSet[pid] {
			return
		}
		t.pidSet[pid] = true
	} else {
		for _, p := range t.PIDs {
			if p == pid {
				return
			}
		}
	}
	t.PIDs = append(t.PIDs, pid)
}

// Index holds the derived lookups shared by the happens-before analysis and
// both detectors. Build it once per trace.
type Index struct {
	T *Trace

	// ByKind groups record IDs by kind, in trace order.
	ByKind map[Kind][]OpID

	// ByRes groups record IDs by resource ID, in trace order.
	ByRes map[string][]OpID

	// BySite groups injector-countable record IDs by static site, in trace
	// order — the occurrence numbering the fault injector uses at run time.
	// Crash/restart bookkeeping records are excluded.
	BySite map[string][]OpID

	// Causees maps a causal op to the activation records it spawned
	// (thread starts, handler begins, KV notifies).
	Causees map[OpID][]OpID

	// FrameOps maps an activation record to the ops that executed directly
	// under it (not through nested activations).
	FrameOps map[OpID][]OpID

	// ThreadStart maps a thread id to its KThreadStart record.
	ThreadStart map[int]OpID
}

// BuildIndex scans the trace once and produces the Index.
func BuildIndex(t *Trace) *Index {
	ix := &Index{
		T:           t,
		ByKind:      make(map[Kind][]OpID),
		ByRes:       make(map[string][]OpID),
		BySite:      make(map[string][]OpID),
		Causees:     make(map[OpID][]OpID),
		FrameOps:    make(map[OpID][]OpID),
		ThreadStart: make(map[int]OpID),
	}
	for i := range t.Records {
		r := &t.Records[i]
		ix.ByKind[r.Kind] = append(ix.ByKind[r.Kind], r.ID)
		if r.Res != "" {
			ix.ByRes[r.Res] = append(ix.ByRes[r.Res], r.ID)
		}
		// Fault bookkeeping records reuse the trigger's site; they are not
		// operations the injector counts, so they stay out of BySite.
		if r.Site != "" && r.Kind != KCrash && r.Kind != KRestart {
			ix.BySite[r.Site] = append(ix.BySite[r.Site], r.ID)
		}
		if r.Kind.IsActivation() || r.Kind == KKVNotify {
			if r.Causor != NoOp {
				ix.Causees[r.Causor] = append(ix.Causees[r.Causor], r.ID)
			}
		}
		if r.Kind == KThreadStart {
			ix.ThreadStart[r.Thread] = r.ID
		}
		if r.Frame != NoOp {
			ix.FrameOps[r.Frame] = append(ix.FrameOps[r.Frame], r.ID)
		}
	}
	return ix
}

// Activation returns the activation record op executed under, or nil.
func (ix *Index) Activation(op *Record) *Record {
	return ix.T.At(op.Frame)
}

// Causor returns the direct causor record of op, following the paper's
// definition: the operation whose disappearance makes op disappear. For an
// ordinary op that is the causor of its activation frame; for an activation
// or KV-notify record it is the recorded causor itself.
func (ix *Index) Causor(op *Record) *Record {
	if op.Kind.IsActivation() || op.Kind == KKVNotify {
		return ix.T.At(op.Causor)
	}
	act := ix.Activation(op)
	if act == nil {
		return nil
	}
	return ix.T.At(act.Causor)
}

// OpsOfKinds returns all record IDs of the given kinds, merged in trace
// order. The per-kind slices are already ordered (BuildIndex appends in trace
// order), so this is a k-way merge rather than a sort.
func (ix *Index) OpsOfKinds(kinds ...Kind) []OpID {
	lists := make([][]OpID, 0, len(kinds))
	total := 0
	for _, k := range kinds {
		if ids := ix.ByKind[k]; len(ids) > 0 {
			lists = append(lists, ids)
			total += len(ids)
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]OpID(nil), lists[0]...)
	}
	out := make([]OpID, 0, total)
	for len(lists) > 0 {
		min := 0
		for i := 1; i < len(lists); i++ {
			if lists[i][0] < lists[min][0] {
				min = i
			}
		}
		out = append(out, lists[min][0])
		if lists[min] = lists[min][1:]; len(lists[min]) == 0 {
			lists[min] = lists[len(lists)-1]
			lists = lists[:len(lists)-1]
		}
	}
	return out
}

// WritesTo returns all write-like ops on resource res, in trace order.
func (ix *Index) WritesTo(res string) []OpID {
	var out []OpID
	for _, id := range ix.ByRes[res] {
		if ix.T.At(id).Kind.IsWriteLike() {
			out = append(out, id)
		}
	}
	return out
}

// ReadsOf returns all read-like ops on resource res, in trace order.
func (ix *Index) ReadsOf(res string) []OpID {
	var out []OpID
	for _, id := range ix.ByRes[res] {
		if ix.T.At(id).Kind.IsReadLike() {
			out = append(out, id)
		}
	}
	return out
}
