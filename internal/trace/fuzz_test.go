package trace_test

import (
	"bytes"
	"testing"

	"fcatch/internal/trace"
)

// FuzzDecode throws arbitrary bytes at the format-sniffing decoder. The
// contract under fuzzing: never panic, never hang, and any stream that
// decodes cleanly must re-encode cleanly (the decoded trace is internally
// consistent).
func FuzzDecode(f *testing.F) {
	// Seed with one valid stream per supported generation, plus garbage.
	tr := randomTrace(1, 40)
	var fct2, fct1, gob bytes.Buffer
	if err := tr.Encode(&fct2); err != nil {
		f.Fatal(err)
	}
	if err := tr.EncodeFCT1(&fct1); err != nil {
		f.Fatal(err)
	}
	if err := tr.EncodeLegacyGob(&gob); err != nil {
		f.Fatal(err)
	}
	f.Add(fct2.Bytes())
	f.Add(fct1.Bytes())
	f.Add(gob.Bytes())
	f.Add([]byte(trace.FormatMagic))
	f.Add([]byte(trace.FormatMagicV1))
	f.Add([]byte("not a trace"))
	f.Add([]byte{0x1f, 0x8b}) // bare gzip magic

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("decoded trace fails to re-encode: %v", err)
		}
	})
}
