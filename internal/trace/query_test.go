package trace_test

import (
	"testing"

	"fcatch/internal/trace"
)

func queryFixture() *trace.Trace {
	tr := trace.New()
	tr.Append(trace.Record{Kind: trace.KMsgSend, PID: "a#1", Aux: "ping", TS: 5, Site: "a.go:1"})
	tr.Append(trace.Record{Kind: trace.KMsgSend, PID: "a#2", Aux: "pong", TS: 9, Site: "a.go:2"})
	tr.Append(trace.Record{Kind: trace.KKVUpdate, PID: "b#1", Res: "zk:/locks/x", Aux: "create", TS: 12})
	tr.Append(trace.Record{Kind: trace.KStRead, PID: "b#1", Res: "gfs:/data/y", TS: 20, Site: "b.go:9"})
	return tr
}

func TestFilterByKind(t *testing.T) {
	tr := queryFixture()
	got := tr.Filter(trace.Query{Kinds: []trace.Kind{trace.KMsgSend}})
	if len(got) != 2 {
		t.Fatalf("kind filter = %d records", len(got))
	}
	got = tr.Filter(trace.Query{Kinds: []trace.Kind{trace.KKVUpdate, trace.KStRead}})
	if len(got) != 2 || got[0].Kind != trace.KKVUpdate {
		t.Fatalf("multi-kind filter = %v", got)
	}
}

func TestFilterByPID(t *testing.T) {
	tr := queryFixture()
	if got := tr.Filter(trace.Query{PID: "a#1"}); len(got) != 1 {
		t.Fatalf("exact pid = %d", len(got))
	}
	if got := tr.Filter(trace.Query{PID: "a*"}); len(got) != 2 {
		t.Fatalf("prefix pid = %d", len(got))
	}
	if got := tr.Filter(trace.Query{PID: "c#1"}); len(got) != 0 {
		t.Fatalf("unknown pid = %d", len(got))
	}
}

func TestFilterBySubstrings(t *testing.T) {
	tr := queryFixture()
	if got := tr.Filter(trace.Query{ResContains: "locks"}); len(got) != 1 || got[0].Aux != "create" {
		t.Fatalf("res filter = %v", got)
	}
	if got := tr.Filter(trace.Query{SiteContains: "a.go"}); len(got) != 2 {
		t.Fatalf("site filter = %d", len(got))
	}
	if got := tr.Filter(trace.Query{AuxContains: "pong"}); len(got) != 1 {
		t.Fatalf("aux filter = %d", len(got))
	}
}

func TestFilterByTimeWindow(t *testing.T) {
	tr := queryFixture()
	got := tr.Filter(trace.Query{After: 6, Before: 15})
	if len(got) != 2 || got[0].TS != 9 || got[1].TS != 12 {
		t.Fatalf("window filter = %v", got)
	}
}

func TestFilterConjunction(t *testing.T) {
	tr := queryFixture()
	got := tr.Filter(trace.Query{Kinds: []trace.Kind{trace.KMsgSend}, PID: "a#2", AuxContains: "pong"})
	if len(got) != 1 {
		t.Fatalf("conjunction = %d", len(got))
	}
	got = tr.Filter(trace.Query{Kinds: []trace.Kind{trace.KMsgSend}, PID: "b#1"})
	if len(got) != 0 {
		t.Fatal("conjunction must intersect, not union")
	}
}

func TestKindByName(t *testing.T) {
	for _, k := range []trace.Kind{trace.KMsgSend, trace.KKVUpdate, trace.KLoopRead, trace.KCrash} {
		got, ok := trace.KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%s) = %v, %v", k, got, ok)
		}
	}
	if _, ok := trace.KindByName("not-a-kind"); ok {
		t.Error("unknown kind accepted")
	}
}
