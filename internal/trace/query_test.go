package trace_test

import (
	"testing"

	"fcatch/internal/trace"
)

func queryFixture() *trace.Trace {
	tr := trace.New()
	app := func(kind trace.Kind, pid, res, aux, site string, ts int64) {
		tr.Append(trace.Record{
			Kind: kind, PID: tr.Intern(pid), Res: tr.Intern(res),
			Aux: tr.Intern(aux), Site: tr.Intern(site), TS: ts,
		})
	}
	app(trace.KMsgSend, "a#1", "", "ping", "a.go:1", 5)
	app(trace.KMsgSend, "a#2", "", "pong", "a.go:2", 9)
	app(trace.KKVUpdate, "b#1", "zk:/locks/x", "create", "", 12)
	app(trace.KStRead, "b#1", "gfs:/data/y", "", "b.go:9", 20)
	return tr
}

func TestFilterByKind(t *testing.T) {
	tr := queryFixture()
	got := tr.Filter(trace.Query{Kinds: []trace.Kind{trace.KMsgSend}})
	if len(got) != 2 {
		t.Fatalf("kind filter = %d records", len(got))
	}
	got = tr.Filter(trace.Query{Kinds: []trace.Kind{trace.KKVUpdate, trace.KStRead}})
	if len(got) != 2 || got[0].Kind != trace.KKVUpdate {
		t.Fatalf("multi-kind filter = %v", got)
	}
}

func TestFilterByPID(t *testing.T) {
	tr := queryFixture()
	if got := tr.Filter(trace.Query{PID: "a#1"}); len(got) != 1 {
		t.Fatalf("exact pid = %d", len(got))
	}
	if got := tr.Filter(trace.Query{PID: "a*"}); len(got) != 2 {
		t.Fatalf("prefix pid = %d", len(got))
	}
	if got := tr.Filter(trace.Query{PID: "c#1"}); len(got) != 0 {
		t.Fatalf("unknown pid = %d", len(got))
	}
}

func TestFilterBySubstrings(t *testing.T) {
	tr := queryFixture()
	if got := tr.Filter(trace.Query{ResContains: "locks"}); len(got) != 1 || tr.Str(got[0].Aux) != "create" {
		t.Fatalf("res filter = %v", got)
	}
	if got := tr.Filter(trace.Query{SiteContains: "a.go"}); len(got) != 2 {
		t.Fatalf("site filter = %d", len(got))
	}
	if got := tr.Filter(trace.Query{AuxContains: "pong"}); len(got) != 1 {
		t.Fatalf("aux filter = %d", len(got))
	}
}

func TestFilterByTimeWindow(t *testing.T) {
	tr := queryFixture()
	got := tr.Filter(trace.Query{After: 6, Before: 15})
	if len(got) != 2 || got[0].TS != 9 || got[1].TS != 12 {
		t.Fatalf("window filter = %v", got)
	}
}

func TestFilterConjunction(t *testing.T) {
	tr := queryFixture()
	got := tr.Filter(trace.Query{Kinds: []trace.Kind{trace.KMsgSend}, PID: "a#2", AuxContains: "pong"})
	if len(got) != 1 {
		t.Fatalf("conjunction = %d", len(got))
	}
	got = tr.Filter(trace.Query{Kinds: []trace.Kind{trace.KMsgSend}, PID: "b#1"})
	if len(got) != 0 {
		t.Fatal("conjunction must intersect, not union")
	}
}

func TestKindByName(t *testing.T) {
	for _, k := range []trace.Kind{trace.KMsgSend, trace.KKVUpdate, trace.KLoopRead, trace.KCrash} {
		got, ok := trace.KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%s) = %v, %v", k, got, ok)
		}
	}
	if _, ok := trace.KindByName("not-a-kind"); ok {
		t.Error("unknown kind accepted")
	}
}
