package trace

import "strings"

// Query filters trace records; zero-valued fields match everything.
type Query struct {
	// Kinds restricts to the listed op kinds.
	Kinds []Kind
	// PID matches the process (exact) or, with a trailing '*', by prefix.
	PID string
	// ResContains matches records whose resource ID contains the substring.
	ResContains string
	// SiteContains matches records whose site contains the substring.
	SiteContains string
	// AuxContains matches records whose aux field contains the substring.
	AuxContains string
	// After/Before bound the logical timestamp (inclusive; 0 = unbounded).
	After, Before int64
}

// Match reports whether the record satisfies the query; t is the trace that
// owns r's symbols.
func (q Query) Match(t *Trace, r *Record) bool {
	if len(q.Kinds) > 0 {
		ok := false
		for _, k := range q.Kinds {
			if r.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if q.PID != "" {
		if strings.HasSuffix(q.PID, "*") {
			if !strings.HasPrefix(t.Str(r.PID), strings.TrimSuffix(q.PID, "*")) {
				return false
			}
		} else if t.Str(r.PID) != q.PID {
			return false
		}
	}
	if q.ResContains != "" && !strings.Contains(t.Str(r.Res), q.ResContains) {
		return false
	}
	if q.SiteContains != "" && !strings.Contains(t.Str(r.Site), q.SiteContains) {
		return false
	}
	if q.AuxContains != "" && !strings.Contains(t.Str(r.Aux), q.AuxContains) {
		return false
	}
	if q.After > 0 && r.TS < q.After {
		return false
	}
	if q.Before > 0 && r.TS > q.Before {
		return false
	}
	return true
}

// Filter returns the records matching the query, in trace order.
func (t *Trace) Filter(q Query) []*Record {
	var out []*Record
	for i := range t.Records {
		if q.Match(t, &t.Records[i]) {
			out = append(out, &t.Records[i])
		}
	}
	return out
}

// KindByName resolves a kind's String() form back to the Kind (false if
// unknown) — for CLI filters.
func KindByName(name string) (Kind, bool) {
	for k, s := range kindNames {
		if s == name {
			return k, true
		}
	}
	return KInvalid, false
}
