package trace_test

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fcatch/internal/trace"
)

// semantic flattens a trace into its fully-resolved form (strings, not Syms)
// so traces from different codecs can be compared even though their symbol
// tables may assign different Syms.
type semantic struct {
	PIDs          []string
	CrashStep     int64
	CrashedPID    string
	BaselineNanos int64
	Records       []trace.RecordData
}

func flatten(t *trace.Trace) semantic {
	s := semantic{
		PIDs:          t.PIDs,
		CrashStep:     t.CrashStep,
		CrashedPID:    t.CrashedPID,
		BaselineNanos: t.BaselineNanos,
	}
	for i := range t.Records {
		s.Records = append(s.Records, t.Data(&t.Records[i]))
	}
	return s
}

// randomTrace builds a deterministic pseudo-random trace exercising every
// field the codecs carry: symbols, stacks, taint/ctl sets, flags, metadata.
func randomTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New()
	pids := []string{"node#1", "node#2", "worker#1"}
	sites := []string{"", "app/a.go:10", "app/a.go:20", "app/b.go:5"}
	ress := []string{"", "heap:node#1:Obj1.f", "gfs:/data/x", "cv:node#2:open/3"}
	auxs := []string{"", "ping", "create", "main"}
	stacks := []trace.StackID{trace.NoStack}
	for _, fr := range []string{"main", "rpc:ping", "scope"} {
		stacks = append(stacks, tr.PushFrame(stacks[len(stacks)-1], tr.Intern(fr)))
	}
	for _, p := range pids {
		tr.AddPID(p)
	}
	for i := 0; i < n; i++ {
		r := trace.Record{
			TS:      int64(i * 2),
			Kind:    trace.Kind(rng.Intn(int(trace.KRestart)) + 1),
			Machine: tr.Intern("m" + string(rune('1'+rng.Intn(2)))),
			PID:     tr.Intern(pids[rng.Intn(len(pids))]),
			Thread:  rng.Intn(4),
			Site:    tr.Intern(sites[rng.Intn(len(sites))]),
			Res:     tr.Intern(ress[rng.Intn(len(ress))]),
			Aux:     tr.Intern(auxs[rng.Intn(len(auxs))]),
			Target:  tr.Intern(pids[rng.Intn(len(pids))]),
			Stack:   stacks[rng.Intn(len(stacks))],
			Flags:   uint32(rng.Intn(8)),
		}
		if i > 0 {
			r.Frame = trace.OpID(rng.Intn(i) + 1)
			r.Src = trace.OpID(rng.Intn(i + 1))
			r.Causor = trace.OpID(rng.Intn(i + 1))
			for j := 0; j < rng.Intn(3); j++ {
				r.Taint = append(r.Taint, trace.OpID(rng.Intn(i)+1))
			}
			for j := 0; j < rng.Intn(3); j++ {
				r.Ctl = append(r.Ctl, trace.OpID(rng.Intn(i)+1))
			}
		}
		tr.Append(r)
	}
	tr.CrashStep = 42
	tr.CrashedPID = "node#1"
	tr.BaselineNanos = 12345
	return tr
}

// TestFormatsRoundTripEquivalent is the cross-codec property test: the FCT1
// binary format, the legacy gob format, and the JSON dump must all round-trip
// a trace to the same semantic content.
func TestFormatsRoundTripEquivalent(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := randomTrace(seed, 200)
		want := flatten(tr)

		var fct bytes.Buffer
		if err := tr.Encode(&fct); err != nil {
			t.Fatalf("seed %d: Encode: %v", seed, err)
		}
		if string(fct.Bytes()[:4]) != trace.FormatMagic {
			t.Fatalf("seed %d: encoded stream does not start with %q", seed, trace.FormatMagic)
		}
		gotFCT, err := trace.Decode(bytes.NewReader(fct.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: Decode(FCT2): %v", seed, err)
		}

		var fct1 bytes.Buffer
		if err := tr.EncodeFCT1(&fct1); err != nil {
			t.Fatalf("seed %d: EncodeFCT1: %v", seed, err)
		}
		if string(fct1.Bytes()[:4]) != trace.FormatMagicV1 {
			t.Fatalf("seed %d: FCT1 stream does not start with %q", seed, trace.FormatMagicV1)
		}
		gotFCT1, err := trace.Decode(bytes.NewReader(fct1.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: Decode(FCT1): %v", seed, err)
		}

		// The streaming Source path over the same bytes must agree with the
		// monolithic Decode for every format generation.
		gotSourced := map[string]*trace.Trace{}
		for name, raw := range map[string][]byte{"fct2": fct.Bytes(), "fct1": fct1.Bytes()} {
			src, err := trace.NewSource(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("seed %d: NewSource(%s): %v", seed, name, err)
			}
			got, err := trace.Drain(src)
			if err != nil {
				t.Fatalf("seed %d: Drain(%s): %v", seed, name, err)
			}
			gotSourced[name+"-source"] = got
		}

		var gob bytes.Buffer
		if err := tr.EncodeLegacyGob(&gob); err != nil {
			t.Fatalf("seed %d: EncodeLegacyGob: %v", seed, err)
		}
		gotGob, err := trace.Decode(bytes.NewReader(gob.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: Decode(gob): %v", seed, err)
		}

		var jsonl bytes.Buffer
		if err := tr.WriteJSON(&jsonl); err != nil {
			t.Fatalf("seed %d: WriteJSON: %v", seed, err)
		}
		gotJSON, err := trace.ReadJSON(&jsonl)
		if err != nil {
			t.Fatalf("seed %d: ReadJSON: %v", seed, err)
		}

		all := map[string]*trace.Trace{"fct2": gotFCT, "fct1": gotFCT1, "gob": gotGob}
		for name, got := range gotSourced {
			all[name] = got
		}
		for name, got := range all {
			if g := flatten(got); !reflect.DeepEqual(g, want) {
				t.Errorf("seed %d: %s round trip diverged", seed, name)
			}
		}
		// The JSON dump carries records only (run metadata is re-derived from
		// them on read), so its round trip is pinned on the record stream.
		if g := flatten(gotJSON); !reflect.DeepEqual(g.Records, want.Records) {
			t.Errorf("seed %d: json round trip diverged", seed)
		}

		if fct.Len() >= gob.Len() {
			t.Errorf("seed %d: FCT1 (%d bytes) not smaller than legacy gob (%d bytes)", seed, fct.Len(), gob.Len())
		}
	}
}

// legacyFixture is the semantic content of testdata/legacy_v0.gob.gz and
// testdata/legacy_v0.jsonl, both written by the pre-symbol-table encoder.
func legacyFixture() semantic {
	return semantic{
		PIDs:          []string{"node#1", "node#2"},
		CrashStep:     20,
		CrashedPID:    "node#1",
		BaselineNanos: 12345,
		Records: []trace.RecordData{
			{ID: 1, TS: 10, Machine: "m1", PID: "node#1", Thread: 1, Kind: trace.KThreadStart,
				Aux: "main", Stack: []string{"main"}},
			{ID: 2, TS: 12, Machine: "m1", PID: "node#1", Thread: 1, Frame: 1, Kind: trace.KHeapWrite,
				Site: "app/x.go:10", Res: "heap:node#1:Obj1.f", Stack: []string{"main", "scope"},
				Taint: []trace.OpID{1}},
			{ID: 3, TS: 14, Machine: "m1", PID: "node#1", Thread: 1, Frame: 1, Kind: trace.KMsgSend,
				Site: "app/x.go:20", Aux: "ping", Target: "node#2", Flags: trace.FlagDroppable,
				Stack: []string{"main"}, Ctl: []trace.OpID{2}},
			{ID: 4, TS: 16, Machine: "m2", PID: "node#2", Thread: 2, Kind: trace.KThreadStart,
				Aux: "rpc:ping", Stack: []string{"rpc:ping"}, Causor: 3},
			{ID: 5, TS: 18, Machine: "m2", PID: "node#2", Thread: 2, Frame: 4, Kind: trace.KHeapRead,
				Site: "app/y.go:5", Res: "heap:node#1:Obj1.f", Src: 2, Flags: trace.FlagHandlerCtx,
				Stack: []string{"rpc:ping"}, Taint: []trace.OpID{2}, Ctl: []trace.OpID{4}},
			{ID: 6, TS: 20, Machine: "m1", PID: "system", Kind: trace.KCrash,
				Site: "app/x.go:20", Aux: "node#1"},
		},
	}
}

// TestLegacyGobFixtureLoads pins backward compatibility: a trace written by
// the pre-FCT1 gob encoder must still load, via format sniffing, with its
// content intact.
func TestLegacyGobFixtureLoads(t *testing.T) {
	got, err := trace.Load(filepath.Join("testdata", "legacy_v0.gob.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flatten(got), legacyFixture()) {
		t.Fatalf("legacy gob fixture diverged:\ngot  %+v\nwant %+v", flatten(got), legacyFixture())
	}
}

// TestLegacyJSONFixtureLoads pins the JSON dump format: old line-delimited
// dumps parse into the same semantic trace.
func TestLegacyJSONFixtureLoads(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "legacy_v0.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := trace.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	want := legacyFixture()
	want.BaselineNanos = 0 // the JSON dump carries records + crash metadata only
	if !reflect.DeepEqual(flatten(got), want) {
		t.Fatalf("legacy json fixture diverged:\ngot  %+v\nwant %+v", flatten(got), want)
	}
}

// TestLegacyV1FixtureLoads pins the previous binary generation: a trace
// written by the PR 3 FCT1 encoder must keep loading — through both the
// monolithic loader and the streaming Open path.
func TestLegacyV1FixtureLoads(t *testing.T) {
	path := filepath.Join("testdata", "legacy_v1.fct1")
	got, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flatten(got), legacyFixture()) {
		t.Fatalf("legacy fct1 fixture diverged:\ngot  %+v\nwant %+v", flatten(got), legacyFixture())
	}

	src, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := trace.Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flatten(streamed), legacyFixture()) {
		t.Fatal("legacy fct1 fixture diverged on the Source path")
	}
}

// TestLegacyGobFixtureStreamsViaOpen: the oldest format also serves the
// Source interface (materialize-then-window fallback).
func TestLegacyGobFixtureStreamsViaOpen(t *testing.T) {
	src, err := trace.Open(filepath.Join("testdata", "legacy_v0.gob.gz"))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var n int
	for {
		win, err := src.Next()
		if err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n += len(win)
	}
	want := legacyFixture()
	if n != len(want.Records) {
		t.Fatalf("streamed %d records, want %d", n, len(want.Records))
	}
	if !reflect.DeepEqual(flatten(src.Trace()), want) {
		t.Fatal("legacy gob fixture diverged on the Source path")
	}
}

// TestDecodeRejectsGarbage: neither magic nor gzip → a clear error.
func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := trace.Decode(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
