package trace_test

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"fcatch/internal/trace"
)

// collectWindows subscribes to a Writer and copies every delivered window
// (copying matters: non-retaining writers reuse the window slice).
type collector struct {
	wins [][]trace.Record
}

func (c *collector) fn(t *trace.Trace, recs []trace.Record) {
	c.wins = append(c.wins, append([]trace.Record(nil), recs...))
}

func (c *collector) flat() []trace.Record {
	var out []trace.Record
	for _, w := range c.wins {
		out = append(out, w...)
	}
	return out
}

func TestWriterRetainingBatches(t *testing.T) {
	tr := trace.New()
	w := trace.NewWriter(tr, 3)
	var c collector
	w.Subscribe(c.fn)

	for i := 0; i < 7; i++ {
		id := w.Append(trace.Record{TS: int64(i), Kind: trace.KHeapRead, Site: tr.Intern(fmt.Sprintf("s%d", i))})
		if id != trace.OpID(i+1) {
			t.Fatalf("Append %d: id %d, want %d", i, id, i+1)
		}
	}
	w.Flush()

	if got := len(tr.Records); got != 7 {
		t.Fatalf("retaining writer kept %d records, want 7", got)
	}
	if w.Len() != 7 {
		t.Fatalf("Len = %d, want 7", w.Len())
	}
	sizes := []int{}
	for _, win := range c.wins {
		sizes = append(sizes, len(win))
	}
	if !reflect.DeepEqual(sizes, []int{3, 3, 1}) {
		t.Fatalf("window sizes %v, want [3 3 1]", sizes)
	}
	if !reflect.DeepEqual(c.flat(), tr.Records) {
		t.Fatal("windows do not reassemble to the trace's records")
	}
	w.Flush() // no pending records: must not deliver an empty window
	if len(c.wins) != 3 {
		t.Fatalf("idempotent Flush delivered an extra window (%d windows)", len(c.wins))
	}
}

func TestWriterDiscardStreamsWithoutRetaining(t *testing.T) {
	tr := trace.New()
	w := trace.NewWriter(tr, 4)
	w.SetRetain(false)
	var c collector
	w.Subscribe(c.fn)

	for i := 0; i < 10; i++ {
		id := w.Append(trace.Record{TS: int64(i), Kind: trace.KHeapWrite, Res: tr.Intern("r")})
		if id != trace.OpID(i+1) {
			t.Fatalf("Append %d: id %d, want %d", i, id, i+1)
		}
	}
	w.Flush()

	if len(tr.Records) != 0 {
		t.Fatalf("discarding writer retained %d records", len(tr.Records))
	}
	if w.Len() != 10 {
		t.Fatalf("Len = %d, want 10", w.Len())
	}
	flat := c.flat()
	if len(flat) != 10 {
		t.Fatalf("subscribers saw %d records, want 10", len(flat))
	}
	for i, r := range flat {
		if r.ID != trace.OpID(i+1) || r.TS != int64(i) {
			t.Fatalf("record %d: ID=%d TS=%d, want ID=%d TS=%d", i, r.ID, r.TS, i+1, i)
		}
	}
}

func TestSourceOfDrainsToSameTrace(t *testing.T) {
	tr := randomTrace(3, 150)
	src := trace.SourceOf(tr, 16)

	h, ok := src.(trace.Hinter)
	if !ok {
		t.Fatal("SourceOf does not implement Hinter")
	}
	hints, known := h.SizeHints()
	if !known || hints.Records != 150 || hints.Syms != tr.NumSyms() ||
		hints.Stacks != tr.NumStacks() || hints.PIDs != len(tr.PIDs) {
		t.Fatalf("hints = %+v (known=%v), want exact totals", hints, known)
	}

	var n, wins int
	for {
		win, err := src.Next()
		if err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n += len(win)
		wins++
	}
	if n != 150 {
		t.Fatalf("windows carried %d records, want 150", n)
	}
	if want := (150 + 15) / 16; wins != want {
		t.Fatalf("%d windows, want %d", wins, want)
	}

	got, err := trace.Drain(trace.SourceOf(tr, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != tr {
		t.Fatal("Drain over SourceOf should return the identical trace")
	}
}

// TestStreamEncoderIncremental drives the full streaming write path: a
// Writer with a StreamEncoder subscriber, new symbols interned between
// windows (forcing multiple incremental table sections), and the result
// decoded back through the streaming source.
func TestStreamEncoderIncremental(t *testing.T) {
	dst := trace.New()
	w := trace.NewWriter(dst, 5)
	var buf bytes.Buffer
	enc, err := trace.NewStreamEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Subscribe(enc.Window)

	stack := dst.PushFrame(trace.NoStack, dst.Intern("main"))
	for i := 0; i < 33; i++ {
		// A fresh site every record: every flushed window is preceded by a
		// new symbol section.
		r := trace.Record{
			TS:   int64(2 * i),
			Kind: trace.KHeapRead,
			PID:  dst.Intern("node#1"),
			Site: dst.Intern(fmt.Sprintf("app/f.go:%d", i)),
			Res:  dst.Intern("heap:node#1:X.f"),
		}
		if i%2 == 0 {
			r.Stack = stack
		}
		if i > 0 {
			r.Causor = trace.OpID(i)
		}
		w.Append(r)
		if i == 10 {
			dst.AddPID("node#1") // PID section must appear mid-stream too
		}
	}
	dst.CrashStep = 7
	dst.CrashedPID = "node#1"
	dst.BaselineNanos = 99
	w.Flush()
	if err := enc.Close(dst); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), trace.FormatMagic) {
		t.Fatalf("stream does not start with %q", trace.FormatMagic)
	}

	got, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flatten(got), flatten(dst)) {
		t.Fatal("incremental FCT2 stream did not round-trip")
	}
}

func TestFCT2SourceNonRetaining(t *testing.T) {
	tr := randomTrace(7, 300)
	var buf bytes.Buffer
	if err := trace.EncodeStream(trace.SourceOf(tr, 11), &buf); err != nil {
		t.Fatal(err)
	}

	src, err := trace.NewSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	rs, ok := src.(interface{ SetRetain(bool) })
	if !ok {
		t.Fatal("FCT2 source does not support SetRetain")
	}
	rs.SetRetain(false)

	var got []trace.RecordData
	st := src.Trace()
	for {
		win, err := src.Next()
		if err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		for i := range win {
			got = append(got, st.Data(&win[i]))
		}
	}
	if len(st.Records) != 0 {
		t.Fatalf("non-retaining source accumulated %d records", len(st.Records))
	}
	want := flatten(tr)
	if !reflect.DeepEqual(got, want.Records) {
		t.Fatal("streamed records diverged from the encoded trace")
	}
	// Run metadata must be complete once the stream ends.
	if st.CrashStep != tr.CrashStep || st.CrashedPID != tr.CrashedPID || st.BaselineNanos != tr.BaselineNanos {
		t.Fatalf("metadata = (%d, %q, %d), want (%d, %q, %d)",
			st.CrashStep, st.CrashedPID, st.BaselineNanos, tr.CrashStep, tr.CrashedPID, tr.BaselineNanos)
	}
}

func TestFCT2SourceHints(t *testing.T) {
	tr := randomTrace(9, 120)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	h, ok := src.(trace.Hinter)
	if !ok {
		t.Fatal("FCT2 source does not implement Hinter")
	}
	hints, known := h.SizeHints()
	if !known {
		t.Fatal("Encode output should carry size hints")
	}
	want := trace.SizeHints{Syms: tr.NumSyms(), Stacks: tr.NumStacks(), PIDs: len(tr.PIDs), Records: len(tr.Records)}
	if hints != want {
		t.Fatalf("hints = %+v, want %+v", hints, want)
	}
}

// TestFCT2TruncationEveryBoundary regenerates the FCT2 stream's decompressed
// payload, truncates it at every byte offset (a superset of every section
// boundary), re-compresses the prefix and decodes it: every cut must produce
// a wrapped, position-bearing error — never a panic, never a silently short
// trace.
func TestFCT2TruncationEveryBoundary(t *testing.T) {
	tr := randomTrace(4, 60)
	var buf bytes.Buffer
	// Small windows: the payload interleaves table sections and record
	// chunks, so cuts land in every section kind.
	if err := trace.EncodeStream(trace.SourceOf(tr, 13), &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if string(raw[:4]) != trace.FormatMagic {
		t.Fatalf("magic = %q", raw[:4])
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw[4:]))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(payload); cut++ {
		var short bytes.Buffer
		short.WriteString(trace.FormatMagic)
		zw := gzip.NewWriter(&short)
		if _, err := zw.Write(payload[:cut]); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		_, err := trace.Decode(bytes.NewReader(short.Bytes()))
		if err == nil {
			t.Fatalf("cut at %d/%d decoded cleanly", cut, len(payload))
		}
		if !strings.Contains(err.Error(), "decompressed offset") {
			t.Fatalf("cut at %d: error carries no stream position: %v", cut, err)
		}
	}

	// Sanity: the untruncated payload still decodes.
	if _, err := trace.Decode(bytes.NewReader(raw)); err != nil {
		t.Fatalf("full stream: %v", err)
	}
}

// TestFCT2TruncationCompressed cuts the compressed byte stream itself (the
// on-disk failure mode: partial writes) at a spread of offsets.
func TestFCT2TruncationCompressed(t *testing.T) {
	tr := randomTrace(5, 80)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 1, 3, 4, 5, 10, len(raw) / 2, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		_, err := trace.Decode(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("compressed cut at %d/%d decoded cleanly", cut, len(raw))
		}
	}
}

// TestFCT2RejectsCorruptSections flips declared counts and tags into
// hostile values and checks for clean errors.
func TestFCT2RejectsCorruptSections(t *testing.T) {
	// An end section that under-declares the record count.
	dst := trace.New()
	var buf bytes.Buffer
	enc, err := trace.NewStreamEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	enc.Window(dst, []trace.Record{{ID: 1, TS: 1, Kind: trace.KHeapRead}})
	// Close with a different trace so the totals disagree... the encoder
	// counts windows itself, so instead corrupt the payload: rewrite the
	// final end-count byte.
	if err := enc.Close(dst); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	zr, err := gzip.NewReader(bytes.NewReader(raw[4:]))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)-1] ^= 0x01 // end-section total: 1 -> 0
	var bad bytes.Buffer
	bad.WriteString(trace.FormatMagic)
	zw := gzip.NewWriter(&bad)
	zw.Write(payload)
	zw.Close()
	_, err = trace.Decode(bytes.NewReader(bad.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "declares") {
		t.Fatalf("mismatched end count not rejected: %v", err)
	}

	// An unknown section tag.
	var bad2 bytes.Buffer
	bad2.WriteString(trace.FormatMagic)
	zw = gzip.NewWriter(&bad2)
	zw.Write([]byte{0x00, 0x3f}) // header flags=0, then tag 63
	zw.Close()
	_, err = trace.Decode(bytes.NewReader(bad2.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "unknown section tag") {
		t.Fatalf("unknown tag not rejected: %v", err)
	}
}

// TestSourceErrorIsSticky: after a decode error, further Next calls return
// the same error instead of silently resuming mid-stream.
func TestSourceErrorIsSticky(t *testing.T) {
	tr := randomTrace(6, 50)
	var buf bytes.Buffer
	if err := trace.EncodeStream(trace.SourceOf(tr, 7), &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	zr, err := gzip.NewReader(bytes.NewReader(raw[4:]))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var short bytes.Buffer
	short.WriteString(trace.FormatMagic)
	zw := gzip.NewWriter(&short)
	zw.Write(payload[:len(payload)/2])
	zw.Close()

	src, err := trace.NewSource(bytes.NewReader(short.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var firstErr error
	for firstErr == nil {
		_, firstErr = src.Next()
	}
	if firstErr == io.EOF {
		t.Fatal("truncated stream drained to clean EOF")
	}
	if !errors.Is(firstErr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error = %v, want io.ErrUnexpectedEOF in chain", firstErr)
	}
	if _, err := src.Next(); err != firstErr {
		t.Fatalf("error not sticky: %v then %v", firstErr, err)
	}
}

// TestIndexExtendMatchesBuildIndex pins the incremental index path: feeding
// windows through NewIndex/Extend/Finish must produce the same index as the
// one-shot BuildIndex, at any window size.
func TestIndexExtendMatchesBuildIndex(t *testing.T) {
	tr := randomTrace(8, 400)
	want := trace.BuildIndex(tr)
	for _, batch := range []int{1, 7, 64, 1024} {
		ix := trace.NewIndex(tr)
		for pos := 0; pos < len(tr.Records); pos += batch {
			end := pos + batch
			if end > len(tr.Records) {
				end = len(tr.Records)
			}
			ix.Extend(tr.Records[pos:end])
		}
		ix.Finish()
		if !reflect.DeepEqual(ix, want) {
			t.Fatalf("batch %d: incremental index diverged from BuildIndex", batch)
		}
	}
}
