package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Save writes the trace to path as gzipped gob, the compact on-disk format
// used by the CLI between the tracing and analysis phases.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(t); err != nil {
		return fmt.Errorf("trace: encode %s: %w", path, err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: flush %s: %w", path, err)
	}
	return nil
}

// Load reads a trace written by Save.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("trace: gunzip %s: %w", path, err)
	}
	defer zr.Close()
	var t Trace
	if err := gob.NewDecoder(zr).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode %s: %w", path, err)
	}
	return &t, nil
}

// WriteJSON streams the trace as line-delimited JSON records, the
// human-inspectable dump format (`fcatch trace -dump`).
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return fmt.Errorf("trace: json record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSON parses a stream produced by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	t := New()
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: json decode: %w", err)
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}
