package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// FormatMagic is the 4-byte tag leading every trace in the current versioned
// binary format (the chunked FCT2 layout — see fct2.go). It sits outside the
// gzip layer so Decode can sniff it: files that start with the FCT1 magic or
// a bare gzip header are earlier generations and still load.
const FormatMagic = "FCT2"

// FormatVersion is the trace-format generation the magic encodes.
const FormatVersion = 2

// FormatMagicV1 is the previous generation's magic (monolithic columns).
// FCT1 files decode transparently; new traces are written as FCT2.
const FormatMagicV1 = "FCT1"

// The FCT1 layout, after the magic, is one gzip stream of:
//
//	symbol table   uvarint count, then per symbol (Sym 1..n): uvarint len + bytes
//	stack table    uvarint count, then per node (StackID 1..n): uvarint parent + uvarint frame
//	PIDs           uvarint count, then per PID: uvarint len + bytes
//	metadata       varint CrashStep, string CrashedPID, varint BaselineNanos
//	records        uvarint count, then column by column (all records' TS, then
//	               all Machines, ...): TS delta-encoded varints; Sym/StackID/
//	               OpID/flag columns as uvarints; Taint and Ctl as uvarint
//	               count + delta-encoded varint IDs per record
//
// Record IDs are implicit (row i is OpID i+1). Column order matches Record
// field order. Strings are stored once in the symbol table; the column data
// is small integers, which is where the size win over gob comes from.

// Save writes the trace to path in the current (FCT2) format.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	if err := t.Encode(f); err != nil {
		return fmt.Errorf("trace: encode %s: %w", path, err)
	}
	return nil
}

// Load reads a trace written by Save — any format generation. It is a thin
// drain over Open; callers that want bounded memory use Open directly.
func Load(path string) (*Trace, error) {
	src, err := Open(path)
	if err != nil {
		return nil, err
	}
	return Drain(src)
}

// Encode writes the trace to w in the current binary format: the records are
// replayed through an in-memory Source into the chunked FCT2 encoder.
func (t *Trace) Encode(w io.Writer) error {
	return EncodeStream(SourceOf(t, 0), w)
}

// EncodeFCT1 writes the trace in the previous monolithic-column FCT1 layout
// — kept for the format benchmarks and cross-codec compatibility tests; new
// traces should use Encode.
func (t *Trace) EncodeFCT1(w io.Writer) error {
	if _, err := io.WriteString(w, FormatMagicV1); err != nil {
		return err
	}
	zw := gzip.NewWriter(w)
	bw := bufio.NewWriter(zw)
	e := colEncoder{w: bw}

	// Symbol table (Sym 0 is implicit).
	e.uvarint(uint64(t.NumSyms() - 1))
	for y := 1; y < t.NumSyms(); y++ {
		e.str(t.syms.Str(Sym(y)))
	}
	// Stack table (StackID 0 is implicit).
	e.uvarint(uint64(t.NumStacks() - 1))
	for id := 1; id < t.NumStacks(); id++ {
		n := t.stacks.nodes[id]
		e.uvarint(uint64(n.parent))
		e.uvarint(uint64(n.frame))
	}
	// Run metadata.
	e.uvarint(uint64(len(t.PIDs)))
	for _, pid := range t.PIDs {
		e.str(pid)
	}
	e.varint(t.CrashStep)
	e.str(t.CrashedPID)
	e.varint(t.BaselineNanos)

	// Record columns.
	rs := t.Records
	e.uvarint(uint64(len(rs)))
	prevTS := int64(0)
	encodeRecColumns(&e, rs, &prevTS)

	if e.err != nil {
		return e.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return zw.Close()
}

// Decode reads a trace from r, sniffing the format: chunked FCT2,
// monolithic FCT1, or the legacy gzipped-gob layout written before the
// format was versioned. It is a thin drain over NewSource.
func Decode(r io.Reader) (*Trace, error) {
	src, err := NewSource(r)
	if err != nil {
		return nil, err
	}
	return Drain(src)
}

// fct1RecordCap bounds the declared record count of an FCT1 stream so a
// corrupt header cannot force an unbounded allocation before any column
// byte is read.
const fct1RecordCap = 1 << 28

func decodeFCT1(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("decode: gunzip: %w", err)
	}
	defer zr.Close()
	d := colDecoder{r: bufio.NewReader(zr)}
	t := New()

	nSyms := d.uvarint()
	for i := uint64(0); i < nSyms && d.err == nil; i++ {
		t.Intern(d.str())
	}
	nStacks := d.uvarint()
	for i := uint64(0); i < nStacks && d.err == nil; i++ {
		parent := StackID(d.uvarint())
		frame := Sym(d.uvarint())
		t.stacks.Push(parent, frame)
	}
	nPIDs := d.uvarint()
	for i := uint64(0); i < nPIDs && d.err == nil; i++ {
		t.PIDs = append(t.PIDs, d.str())
	}
	t.CrashStep = d.varint()
	t.CrashedPID = d.str()
	t.BaselineNanos = d.varint()

	un := d.uvarint()
	if d.err != nil {
		return nil, fmt.Errorf("decode: header: %w", normalizeEOF(d.err))
	}
	if un > fct1RecordCap {
		return nil, fmt.Errorf("decode: header: record count %d exceeds cap %d", un, fct1RecordCap)
	}
	n := int(un)
	// Decode the timestamp column first into a growing slice: a corrupt
	// count fails on the stream's actual length before the full-width
	// Record allocation happens.
	ts := make([]int64, 0, minInt(n, 1<<20))
	prev := int64(0)
	for i := 0; i < n; i++ {
		prev += d.varint()
		if d.err != nil {
			return nil, fmt.Errorf("decode: records (timestamp %d of %d): %w", i, n, normalizeEOF(d.err))
		}
		ts = append(ts, prev)
	}
	rs := make([]Record, n)
	for i := range rs {
		rs[i].ID = OpID(i + 1)
		rs[i].TS = ts[i]
	}
	if err := decodeColumnsAfterTS(&d, rs); err != nil {
		return nil, fmt.Errorf("decode: records: %w", normalizeEOF(err))
	}
	t.Records = rs
	return t, nil
}

// normalizeEOF converts a bare EOF inside a structure into
// io.ErrUnexpectedEOF: the stream ended mid-section, it did not finish.
func normalizeEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// colEncoder writes varint columns, capturing the first error.
type colEncoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *colEncoder) uvarint(u uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], u)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *colEncoder) varint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *colEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// ops writes an OpID list as a count plus delta-encoded IDs (taint lists are
// near-sorted small ranges, so deltas stay in one or two bytes).
func (e *colEncoder) ops(ids []OpID) {
	e.uvarint(uint64(len(ids)))
	prev := int64(0)
	for _, id := range ids {
		e.varint(int64(id) - prev)
		prev = int64(id)
	}
}

// colDecoder mirrors colEncoder, capturing the first error.
type colDecoder struct {
	r   *bufio.Reader
	err error
}

func (d *colDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return u
}

func (d *colDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *colDecoder) str() string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return ""
	}
	if n > 1<<24 {
		d.err = fmt.Errorf("string length %d too large", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

func (d *colDecoder) ops() []OpID {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > 1<<24 {
		d.err = fmt.Errorf("op list length %d too large", n)
		return nil
	}
	out := make([]OpID, n)
	prev := int64(0)
	for i := range out {
		prev += d.varint()
		out[i] = OpID(prev)
	}
	return out
}

// legacyRecord mirrors the pre-interning Record layout (string fields,
// []string stack). Gob matches struct fields by name, so streams written by
// the old encoder decode into it directly.
type legacyRecord struct {
	ID      OpID
	TS      int64
	Machine string
	PID     string
	Thread  int
	Frame   OpID
	Kind    Kind
	Site    string
	Stack   []string
	Res     string
	Src     OpID
	Aux     string
	Target  string
	Flags   uint32
	Causor  OpID
	Taint   []OpID
	Ctl     []OpID
}

// legacyTrace mirrors the pre-interning Trace layout.
type legacyTrace struct {
	Records       []legacyRecord
	PIDs          []string
	CrashStep     int64
	CrashedPID    string
	BaselineNanos int64
}

// decodeLegacyGob loads a gob-era trace and interns it into the current
// model. Metadata is taken from the stored header; record IDs are re-derived
// from position (they were dense in the old format too).
func decodeLegacyGob(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("decode: gunzip: %w", err)
	}
	defer zr.Close()
	var lt legacyTrace
	if err := gob.NewDecoder(zr).Decode(&lt); err != nil {
		return nil, fmt.Errorf("decode: legacy gob: %w", err)
	}
	t := New()
	for i := range lt.Records {
		lr := &lt.Records[i]
		var stack StackID
		for _, label := range lr.Stack {
			stack = t.PushFrame(stack, t.Intern(label))
		}
		t.Append(Record{
			TS:      lr.TS,
			Machine: t.Intern(lr.Machine),
			PID:     t.Intern(lr.PID),
			Thread:  lr.Thread,
			Frame:   lr.Frame,
			Kind:    lr.Kind,
			Site:    t.Intern(lr.Site),
			Stack:   stack,
			Res:     t.Intern(lr.Res),
			Src:     lr.Src,
			Aux:     t.Intern(lr.Aux),
			Target:  t.Intern(lr.Target),
			Flags:   lr.Flags,
			Causor:  lr.Causor,
			Taint:   lr.Taint,
			Ctl:     lr.Ctl,
		})
	}
	t.PIDs = lt.PIDs
	t.CrashStep = lt.CrashStep
	t.CrashedPID = lt.CrashedPID
	t.BaselineNanos = lt.BaselineNanos
	return t, nil
}

// EncodeLegacyGob writes the trace in the pre-FCT1 gzipped-gob layout — kept
// for the format benchmarks and the round-trip compatibility tests; new
// traces should use Encode.
func (t *Trace) EncodeLegacyGob(w io.Writer) error {
	lt := legacyTrace{
		PIDs:          t.PIDs,
		CrashStep:     t.CrashStep,
		CrashedPID:    t.CrashedPID,
		BaselineNanos: t.BaselineNanos,
	}
	lt.Records = make([]legacyRecord, len(t.Records))
	for i := range t.Records {
		r := &t.Records[i]
		lt.Records[i] = legacyRecord{
			ID:      r.ID,
			TS:      r.TS,
			Machine: t.Str(r.Machine),
			PID:     t.Str(r.PID),
			Thread:  r.Thread,
			Frame:   r.Frame,
			Kind:    r.Kind,
			Site:    t.Str(r.Site),
			Stack:   t.StackLabels(r.Stack),
			Res:     t.Str(r.Res),
			Src:     r.Src,
			Aux:     t.Str(r.Aux),
			Target:  t.Str(r.Target),
			Flags:   r.Flags,
			Causor:  r.Causor,
			Taint:   r.Taint,
			Ctl:     r.Ctl,
		}
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(&lt); err != nil {
		return err
	}
	return zw.Close()
}

// WriteJSON streams the trace as line-delimited JSON records in their
// resolved (string-valued) RecordData form — the human-inspectable dump
// format, unchanged from the pre-interning encoder.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Records {
		d := t.Data(&t.Records[i])
		if err := enc.Encode(&d); err != nil {
			return fmt.Errorf("trace: json record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSON parses a stream produced by WriteJSON. Records are re-appended
// through AppendData, so IDs, the PID list, and crash metadata are re-derived
// consistently instead of trusting the raw decoded values.
func ReadJSON(r io.Reader) (*Trace, error) {
	t := New()
	dec := json.NewDecoder(r)
	for {
		var d RecordData
		if err := dec.Decode(&d); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: json decode: %w", err)
		}
		t.AppendData(d)
	}
	return t, nil
}
