// Package trace defines the trace model FCatch records while observing
// correct runs of a distributed system, and the indexes its analyses use.
//
// A trace is a flat, timestamp-ordered sequence of Records. Every record of a
// traced operation carries the four parts the paper lists in Section 3.2:
// operation type, callstack, a logical timestamp (the RDTSCP stand-in), and a
// resource/communication ID. Records additionally carry the dynamic data- and
// control-dependence facts (taints) that substitute for the paper's WALA
// static analysis, and the activation frame they executed under, from which
// causal (causor/causee) relationships are derived.
package trace

import (
	"fmt"
	"strings"
)

// OpID identifies one record within a single run's trace. IDs are assigned
// densely in emission order starting at 1, so they double as a total order
// per run and the zero value means "no op".
type OpID int64

// NoOp is the nil OpID (no causor, no source write, ...). It is the zero
// value, so unset fields naturally mean "none".
const NoOp OpID = 0

// Kind enumerates the operation types FCatch traces.
type Kind int

const (
	KInvalid Kind = iota

	// Activation records: every other record points at the activation it
	// executed under via Record.Frame.
	KThreadStart  // a thread began; Causor = the op that created it (NoOp for process roots)
	KHandlerBegin // an event/message/RPC handler invocation began on an existing thread; Causor = enqueue/send/call op
	KHandlerEnd
	KThreadExit

	// Causal operations (Section 4.1): their disappearance makes their
	// causees disappear.
	KThreadCreate // create(t)
	KRPCCall      // call(R); Target = callee PID, Aux = method
	KMsgSend      // send(m); Target = receiver PID, Aux = verb
	KEventEnq     // EnQ(e); Aux = event type
	KKVUpdate     // update(s) through the synchronization service; Res = znode
	KKVNotify     // notify(s); Causor = the update op

	// Blocking operations (Section 4.1).
	KSignal // condition-variable signal; Res = CV id
	KWait   // condition-variable wait; Res = CV id; Timed reported via Flags

	// Synchronization-loop instrumentation (custom while-loop signals).
	KLoopEnter // Aux = loop id
	KLoopRead  // heap read that affects the loop exit; Res = heap resource
	KLoopExit  // Flags carry whether a time source taints the exit condition
	KTimeRead  // read of the system clock (System.currentTimeMillis analog)

	// Shared-resource accesses: heap.
	KHeapRead
	KHeapWrite

	// Shared-resource accesses: persistent storage (local files, global
	// files, key-value-store records). Res encodes which store.
	KStCreate
	KStDelete
	KStRead
	KStWrite
	KStRename
	KStExists
	KStList

	// Impact sinks (Section 4.3.3).
	KThrow        // exception throw; Aux = exception kind
	KCatch        // exception handled; Aux = exception kind
	KLogFatal     // severe/fatal-level log
	KLogError     // error-level log
	KServiceStart // startup of a service

	// Fault bookkeeping (never emitted by the systems themselves).
	KCrash   // a process crashed; Aux = PID
	KRestart // a process restarted; Aux = new PID
)

var kindNames = map[Kind]string{
	KInvalid: "invalid", KThreadStart: "thread-start", KHandlerBegin: "handler-begin",
	KHandlerEnd: "handler-end", KThreadExit: "thread-exit", KThreadCreate: "thread-create",
	KRPCCall: "rpc-call", KMsgSend: "msg-send", KEventEnq: "event-enq",
	KKVUpdate: "kv-update", KKVNotify: "kv-notify", KSignal: "signal", KWait: "wait",
	KLoopEnter: "loop-enter", KLoopRead: "loop-read", KLoopExit: "loop-exit",
	KTimeRead: "time-read", KHeapRead: "heap-read", KHeapWrite: "heap-write",
	KStCreate: "st-create", KStDelete: "st-delete", KStRead: "st-read",
	KStWrite: "st-write", KStRename: "st-rename", KStExists: "st-exists",
	KStList: "st-list", KThrow: "throw", KCatch: "catch", KLogFatal: "log-fatal",
	KLogError: "log-error", KServiceStart: "service-start", KCrash: "crash",
	KRestart: "restart",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsCausal reports whether the disappearance of this operation makes other
// operations (its causees) disappear.
func (k Kind) IsCausal() bool {
	switch k {
	case KThreadCreate, KRPCCall, KMsgSend, KEventEnq, KKVUpdate:
		return true
	}
	return false
}

// IsActivation reports whether records of this kind open an activation frame.
func (k Kind) IsActivation() bool {
	return k == KThreadStart || k == KHandlerBegin
}

// IsStorage reports whether this kind accesses persistent storage.
func (k Kind) IsStorage() bool {
	return k >= KStCreate && k <= KStList
}

// IsWriteLike reports whether the op defines the content of its resource.
func (k Kind) IsWriteLike() bool {
	switch k {
	case KHeapWrite, KStCreate, KStDelete, KStWrite, KStRename, KKVUpdate:
		return true
	}
	return false
}

// IsReadLike reports whether the op consumes the content of its resource.
func (k Kind) IsReadLike() bool {
	switch k {
	case KHeapRead, KLoopRead, KStRead, KStExists, KStList:
		return true
	}
	return false
}

// Flag bits on Record.Flags.
const (
	FlagTimedWait    = 1 << iota // the wait carries a timeout parameter
	FlagTimeInExit               // a time source taints the loop exit condition
	FlagHandlerCtx               // op executed inside an RPC/message/event handler (or callee)
	FlagDropped                  // the send was dropped by fault injection
	FlagRecoveryRoot             // activation explicitly registered as a recovery handler
	FlagDroppable                // message uses a droppable verb (application-level drop allowed)
	FlagEphemeral                // KV update concerns an ephemeral znode
	FlagFailed                   // the operation errored (e.g. create of an existing file); it did not define content
)

// Record is one traced operation. All string-valued attributes are interned
// in the owning Trace's symbol table (Sym fields) and the callstack is an
// interned prefix-tree node (StackID), so a record is a fixed-size struct of
// integers plus the two taint slices; resolve with Trace.Str / Trace.Data /
// Trace.Format.
type Record struct {
	ID     OpID
	TS     int64 // logical timestamp (scheduler step)
	Frame  OpID  // activation record (KThreadStart/KHandlerBegin) this op ran under
	Src    OpID  // for read-like ops: the write op that defined the value consumed
	Causor OpID  // for activations and KKVNotify: the op this one causally depends on

	Taint []OpID // data-dependence taints of the value involved
	Ctl   []OpID // control-dependence taints active at emission

	Thread int // global thread id
	Kind   Kind

	Machine Sym     // physical machine the op executed on
	PID     Sym     // process the op physically executed in
	Site    Sym     // static id of the operation: file:line of the call site
	Res     Sym     // resource ID ("heap:pid:obj.field", "gfs:/path", "zk:/path", "lfs:machine:/path", "cv:...")
	Aux     Sym     // CV id / RPC method / message verb / event type / loop id / exception kind
	Target  Sym     // for sends and calls: destination PID
	Stack   StackID // interned callstack at emission
	Flags   uint32
}

// HasFlag reports whether flag f is set.
func (r *Record) HasFlag(f uint32) bool { return r.Flags&f != 0 }

// Format renders a record's compact single-line form, resolving its symbols
// through this trace's table — the human-readable face of the interned model,
// used by tests and `fcatch grep`.
func (t *Trace) Format(r *Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d t=%d %s/%d %s", r.ID, r.TS, t.Str(r.PID), r.Thread, r.Kind)
	if r.Res != NoSym {
		fmt.Fprintf(&b, " res=%s", t.Str(r.Res))
	}
	if r.Aux != NoSym {
		fmt.Fprintf(&b, " aux=%s", t.Str(r.Aux))
	}
	if r.Target != NoSym {
		fmt.Fprintf(&b, " ->%s", t.Str(r.Target))
	}
	if r.Site != NoSym {
		fmt.Fprintf(&b, " @%s", t.Str(r.Site))
	}
	return b.String()
}
