package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// The FCT2 layout, after the magic, is one gzip stream of tagged sections:
//
//	header         uvarint flags; flags&1 = size hints follow (uvarint symbol,
//	               stack, PID and record totals — written when the encoder
//	               knows them, e.g. encoding a materialized trace)
//	secSyms (1)    uvarint count, then count strings appended to the symbol
//	               table (continuing from wherever the table stood)
//	secStacks (2)  uvarint count, then count (uvarint parent, uvarint frame)
//	               nodes appended to the stack table
//	secPIDs (3)    uvarint count, then count PID strings appended to the list
//	secRecords (4) uvarint count, then the FCT1 record columns for just those
//	               count records; TS deltas continue across chunks and record
//	               IDs continue from the previous chunk
//	secMeta (5)    varint CrashStep, string CrashedPID, varint BaselineNanos
//	secEnd (6)     uvarint total record count (truncation check) — always last
//
// Table sections are emitted incrementally, immediately before the first
// record chunk that needs the new entries, so a decoder can resolve every
// Sym/StackID/PID the moment a chunk arrives and never needs the whole
// stream in memory. Encoding a materialized trace degenerates to one table
// section of each kind followed by record chunks — semantically identical
// to FCT1, just chunked.

const (
	secSyms = 1 + iota
	secStacks
	secPIDs
	secRecords
	secMeta
	secEnd
)

// hintedFlag marks an FCT2 header that carries size hints.
const hintedFlag = 1

// fct2ChunkCap bounds one record chunk's declared count — a corrupt stream
// cannot make the decoder allocate an unbounded window.
const fct2ChunkCap = 1 << 22

// fct2HintCap bounds the header size hints used for eager pre-allocation.
const fct2HintCap = 1 << 18

// StreamEncoder writes the FCT2 format incrementally: feed it windows of
// records (it doubles as a Writer subscriber) and Close it with the final
// trace to append run metadata. New symbols, stacks and PIDs interned since
// the previous window are emitted ahead of each record chunk.
type StreamEncoder struct {
	zw *gzip.Writer
	bw *bufio.Writer
	e  colEncoder

	sentSyms   int
	sentStacks int
	sentPIDs   int
	prevTS     int64
	total      uint64
	closed     bool
}

// NewStreamEncoder starts an FCT2 stream on w (magic + header).
func NewStreamEncoder(w io.Writer) (*StreamEncoder, error) {
	return newStreamEncoder(w, nil)
}

func newStreamEncoder(w io.Writer, hints *SizeHints) (*StreamEncoder, error) {
	if _, err := io.WriteString(w, FormatMagic); err != nil {
		return nil, fmt.Errorf("trace: fct2 magic: %w", err)
	}
	enc := &StreamEncoder{zw: gzip.NewWriter(w), sentSyms: 1, sentStacks: 1}
	enc.bw = bufio.NewWriter(enc.zw)
	enc.e.w = enc.bw
	if hints == nil {
		enc.e.uvarint(0)
	} else {
		enc.e.uvarint(hintedFlag)
		enc.e.uvarint(uint64(hints.Syms))
		enc.e.uvarint(uint64(hints.Stacks))
		enc.e.uvarint(uint64(hints.PIDs))
		enc.e.uvarint(uint64(hints.Records))
	}
	return enc, enc.e.err
}

// syncTables emits the table entries interned since the last window.
func (enc *StreamEncoder) syncTables(t *Trace) {
	if n := t.NumSyms(); n > enc.sentSyms {
		enc.e.uvarint(secSyms)
		enc.e.uvarint(uint64(n - enc.sentSyms))
		for y := enc.sentSyms; y < n; y++ {
			enc.e.str(t.syms.Str(Sym(y)))
		}
		enc.sentSyms = n
	}
	if n := t.NumStacks(); n > enc.sentStacks {
		enc.e.uvarint(secStacks)
		enc.e.uvarint(uint64(n - enc.sentStacks))
		for id := enc.sentStacks; id < n; id++ {
			node := t.stacks.nodes[id]
			enc.e.uvarint(uint64(node.parent))
			enc.e.uvarint(uint64(node.frame))
		}
		enc.sentStacks = n
	}
	if n := len(t.PIDs); n > enc.sentPIDs {
		enc.e.uvarint(secPIDs)
		enc.e.uvarint(uint64(n - enc.sentPIDs))
		for _, pid := range t.PIDs[enc.sentPIDs:] {
			enc.e.str(pid)
		}
		enc.sentPIDs = n
	}
}

// Window encodes one window of records (a trace.WindowFn).
func (enc *StreamEncoder) Window(t *Trace, recs []Record) {
	if len(recs) == 0 || enc.e.err != nil || enc.closed {
		return
	}
	enc.syncTables(t)
	enc.e.uvarint(secRecords)
	enc.e.uvarint(uint64(len(recs)))
	encodeRecColumns(&enc.e, recs, &enc.prevTS)
	enc.total += uint64(len(recs))
}

// Close emits any table entries still pending, the run metadata and the end
// section, and finishes the gzip stream.
func (enc *StreamEncoder) Close(t *Trace) error {
	if enc.closed {
		return nil
	}
	enc.closed = true
	enc.syncTables(t)
	enc.e.uvarint(secMeta)
	enc.e.varint(t.CrashStep)
	enc.e.str(t.CrashedPID)
	enc.e.varint(t.BaselineNanos)
	enc.e.uvarint(secEnd)
	enc.e.uvarint(enc.total)
	if enc.e.err != nil {
		return fmt.Errorf("trace: fct2 encode: %w", enc.e.err)
	}
	if err := enc.bw.Flush(); err != nil {
		return fmt.Errorf("trace: fct2 encode: %w", err)
	}
	if err := enc.zw.Close(); err != nil {
		return fmt.Errorf("trace: fct2 encode: %w", err)
	}
	return nil
}

// EncodeStream drains src, writing the chunked FCT2 stream to w. The source
// is closed. Size hints are written when the source knows its totals.
func EncodeStream(src Source, w io.Writer) error {
	var hints *SizeHints
	if h, ok := src.(Hinter); ok {
		if sh, known := h.SizeHints(); known {
			hints = &sh
		}
	}
	enc, err := newStreamEncoder(w, hints)
	if err != nil {
		src.Close()
		return err
	}
	defer src.Close()
	for {
		win, err := src.Next()
		if err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		enc.Window(src.Trace(), win)
		if enc.e.err != nil {
			return fmt.Errorf("trace: fct2 encode: %w", enc.e.err)
		}
	}
	return enc.Close(src.Trace())
}

// countReader counts decompressed bytes consumed, so decode errors can say
// where the stream went bad.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// fct2Source is the streaming FCT2 decoder: each Next() call decodes
// sections up to and including one record chunk. With SetRetain(false) the
// decoded records are not accumulated in the trace (the window buffer is
// reused), so a full-stream scan runs in O(batch + tables) memory.
type fct2Source struct {
	t  *Trace
	d  colDecoder
	cr *countReader
	zr *gzip.Reader
	rc io.Closer // underlying file, when opened from a path

	hints    SizeHints
	hinted   bool
	retain   bool
	buf      []Record
	nRead    int
	prevTS   int64
	sawMeta  bool
	done     bool
	closed   bool
	firstErr error
}

func newFCT2Source(r io.Reader) (*fct2Source, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: fct2 gunzip: %w", err)
	}
	s := &fct2Source{t: New(), zr: zr, retain: true}
	s.cr = &countReader{r: zr}
	s.d.r = bufio.NewReader(s.cr)

	flags := s.d.uvarint()
	if s.d.err != nil {
		return nil, s.fail("header", s.d.err)
	}
	if flags&hintedFlag != 0 {
		// Hints are advisory pre-sizing data; clamp them so a corrupt or
		// hostile header cannot force huge allocations before a single byte
		// of real data has decoded. Streams larger than the cap still decode
		// — they just grow incrementally past it.
		s.hints = SizeHints{
			Syms:    minInt(int(s.d.uvarint()), fct2HintCap),
			Stacks:  minInt(int(s.d.uvarint()), fct2HintCap),
			PIDs:    minInt(int(s.d.uvarint()), fct2HintCap),
			Records: minInt(int(s.d.uvarint()), fct2HintCap),
		}
		if s.d.err != nil {
			return nil, s.fail("header", s.d.err)
		}
		s.hinted = true
		s.t.syms.grow(s.hints.Syms)
		s.t.stacks.grow(s.hints.Stacks)
	}
	return s, nil
}

// SetRetain switches record retention (default true). Must be called before
// the first Next.
func (s *fct2Source) SetRetain(retain bool) { s.retain = retain }

func (s *fct2Source) Trace() *Trace { return s.t }

func (s *fct2Source) SizeHints() (SizeHints, bool) { return s.hints, s.hinted }

// pos is the current offset into the decompressed stream.
func (s *fct2Source) pos() int64 { return s.cr.n - int64(s.d.r.Buffered()) }

// fail wraps a section decode error with the stream position. A plain EOF
// mid-section is a truncation, not a clean end.
func (s *fct2Source) fail(section string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	werr := fmt.Errorf("trace: fct2 %s section at decompressed offset %d (%d records decoded): %w",
		section, s.pos(), s.nRead, err)
	if s.firstErr == nil {
		s.firstErr = werr
	}
	return werr
}

func (s *fct2Source) Next() ([]Record, error) {
	if s.firstErr != nil {
		return nil, s.firstErr
	}
	if s.done {
		return nil, io.EOF
	}
	for {
		tag := s.d.uvarint()
		if s.d.err != nil {
			// A stream that stops cleanly before its end section is
			// truncated: secEnd is mandatory.
			return nil, s.fail("tag", s.d.err)
		}
		switch tag {
		case secSyms:
			n := s.d.uvarint()
			for i := uint64(0); i < n && s.d.err == nil; i++ {
				s.t.Intern(s.d.str())
			}
			if s.d.err != nil {
				return nil, s.fail("symbols", s.d.err)
			}
		case secStacks:
			n := s.d.uvarint()
			for i := uint64(0); i < n && s.d.err == nil; i++ {
				parent := StackID(s.d.uvarint())
				frame := Sym(s.d.uvarint())
				if s.d.err != nil {
					break
				}
				if int(parent) >= s.t.NumStacks() {
					return nil, s.fail("stacks", fmt.Errorf("node %d references undefined parent %d", s.t.NumStacks(), parent))
				}
				s.t.stacks.Push(parent, frame)
			}
			if s.d.err != nil {
				return nil, s.fail("stacks", s.d.err)
			}
		case secPIDs:
			n := s.d.uvarint()
			for i := uint64(0); i < n && s.d.err == nil; i++ {
				s.t.PIDs = append(s.t.PIDs, s.d.str())
			}
			if s.d.err != nil {
				return nil, s.fail("pids", s.d.err)
			}
		case secRecords:
			n := s.d.uvarint()
			if s.d.err != nil {
				return nil, s.fail("records", s.d.err)
			}
			if n > fct2ChunkCap {
				return nil, s.fail("records", fmt.Errorf("chunk of %d records exceeds cap %d", n, fct2ChunkCap))
			}
			win, err := s.decodeChunk(int(n))
			if err != nil {
				return nil, err
			}
			return win, nil
		case secMeta:
			s.t.CrashStep = s.d.varint()
			s.t.CrashedPID = s.d.str()
			s.t.BaselineNanos = s.d.varint()
			if s.d.err != nil {
				return nil, s.fail("meta", s.d.err)
			}
			s.sawMeta = true
		case secEnd:
			total := s.d.uvarint()
			if s.d.err != nil {
				return nil, s.fail("end", s.d.err)
			}
			if total != uint64(s.nRead) {
				return nil, s.fail("end", fmt.Errorf("stream declares %d records, decoded %d", total, s.nRead))
			}
			if !s.sawMeta {
				return nil, s.fail("end", fmt.Errorf("missing meta section"))
			}
			// Drain to EOF so the gzip layer validates its footer — a
			// partial write that clips the CRC must not pass as a clean
			// stream.
			if _, err := io.Copy(io.Discard, s.d.r); err != nil {
				return nil, s.fail("end", err)
			}
			s.done = true
			return nil, io.EOF
		default:
			return nil, s.fail("tag", fmt.Errorf("unknown section tag %d", tag))
		}
	}
}

func (s *fct2Source) decodeChunk(n int) ([]Record, error) {
	var rs []Record
	if s.retain {
		if s.nRead == 0 && s.hinted && cap(s.t.Records) < s.hints.Records && s.hints.Records <= fct2ChunkCap*64 {
			s.t.Records = make([]Record, 0, s.hints.Records)
		}
		base := len(s.t.Records)
		s.t.Records = append(s.t.Records, make([]Record, n)...)
		rs = s.t.Records[base:]
	} else {
		if cap(s.buf) < n {
			s.buf = make([]Record, n)
		}
		rs = s.buf[:n]
		for i := range rs {
			rs[i] = Record{}
		}
	}
	for i := range rs {
		rs[i].ID = OpID(s.nRead + i + 1)
	}
	if err := decodeRecColumns(&s.d, rs, &s.prevTS); err != nil {
		if !s.retain {
			return nil, s.fail("records", err)
		}
		s.t.Records = s.t.Records[:len(s.t.Records)-n]
		return nil, s.fail("records", err)
	}
	s.nRead += n
	return rs, nil
}

func (s *fct2Source) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.zr.Close()
	if s.rc != nil {
		if cerr := s.rc.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// encodeRecColumns writes the FCT1/FCT2 record columns for one batch.
// prevTS carries the timestamp delta base across chunks.
func encodeRecColumns(e *colEncoder, rs []Record, prevTS *int64) {
	for i := range rs {
		e.varint(rs[i].TS - *prevTS)
		*prevTS = rs[i].TS
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Machine))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].PID))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Thread))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Frame))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Kind))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Site))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Stack))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Res))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Src))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Aux))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Target))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Flags))
	}
	for i := range rs {
		e.uvarint(uint64(rs[i].Causor))
	}
	for i := range rs {
		e.ops(rs[i].Taint)
	}
	for i := range rs {
		e.ops(rs[i].Ctl)
	}
}

// decodeRecColumns reads the record columns for one batch into rs (IDs must
// already be assigned). prevTS carries the delta base across chunks.
func decodeRecColumns(d *colDecoder, rs []Record, prevTS *int64) error {
	for i := range rs {
		*prevTS += d.varint()
		rs[i].TS = *prevTS
	}
	return decodeColumnsAfterTS(d, rs)
}

// decodeColumnsAfterTS reads every column after the timestamp one (shared by
// the FCT2 chunk decoder and the FCT1 compatibility decoder, which handles
// its timestamp column separately for allocation-safety).
func decodeColumnsAfterTS(d *colDecoder, rs []Record) error {
	for i := range rs {
		rs[i].Machine = Sym(d.uvarint())
	}
	for i := range rs {
		rs[i].PID = Sym(d.uvarint())
	}
	for i := range rs {
		rs[i].Thread = int(d.uvarint())
	}
	for i := range rs {
		rs[i].Frame = OpID(d.uvarint())
	}
	for i := range rs {
		rs[i].Kind = Kind(d.uvarint())
	}
	for i := range rs {
		rs[i].Site = Sym(d.uvarint())
	}
	for i := range rs {
		rs[i].Stack = StackID(d.uvarint())
	}
	for i := range rs {
		rs[i].Res = Sym(d.uvarint())
	}
	for i := range rs {
		rs[i].Src = OpID(d.uvarint())
	}
	for i := range rs {
		rs[i].Aux = Sym(d.uvarint())
	}
	for i := range rs {
		rs[i].Target = Sym(d.uvarint())
	}
	for i := range rs {
		rs[i].Flags = uint32(d.uvarint())
	}
	for i := range rs {
		rs[i].Causor = OpID(d.uvarint())
	}
	for i := range rs {
		rs[i].Taint = d.ops()
	}
	for i := range rs {
		rs[i].Ctl = d.ops()
	}
	return d.err
}

// Open opens a trace file as a streaming Source, sniffing the format: FCT2
// streams chunk by chunk; FCT1 and legacy gob files are decoded whole and
// replayed through an in-memory source.
func Open(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open: %w", err)
	}
	src, err := newSource(f, f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return src, nil
}

// NewSource wraps an arbitrary reader as a streaming Source, sniffing the
// format like Open.
func NewSource(r io.Reader) (Source, error) {
	return newSource(r, nil)
}

func newSource(r io.Reader, closer io.Closer) (Source, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	switch {
	case string(head) == FormatMagic:
		if _, err := br.Discard(4); err != nil {
			return nil, err
		}
		s, err := newFCT2Source(br)
		if err != nil {
			return nil, err
		}
		s.rc = closer
		return s, nil
	case string(head) == FormatMagicV1:
		if _, err := br.Discard(4); err != nil {
			return nil, err
		}
		t, err := decodeFCT1(br)
		if err != nil {
			return nil, err
		}
		return &closingSource{Source: SourceOf(t, 0), c: closer}, nil
	case head[0] == 0x1f && head[1] == 0x8b:
		t, err := decodeLegacyGob(br)
		if err != nil {
			return nil, err
		}
		return &closingSource{Source: SourceOf(t, 0), c: closer}, nil
	}
	return nil, fmt.Errorf("decode: unrecognized trace format (magic %q)", head)
}

// closingSource attaches an underlying closer (the opened file) to a
// materialized source.
type closingSource struct {
	Source
	c io.Closer
}

func (s *closingSource) Close() error {
	err := s.Source.Close()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (s *closingSource) SizeHints() (SizeHints, bool) {
	if h, ok := s.Source.(Hinter); ok {
		return h.SizeHints()
	}
	return SizeHints{}, false
}
