package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"bytes"

	"fcatch/internal/apps/hbase"
	"fcatch/internal/apps/toy"
	"fcatch/internal/core"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

func TestStripPID(t *testing.T) {
	cases := map[string]string{
		"worker#12/main":       "worker/main",
		"hang in am#1 handler": "hang in am handler",
		"no-pids-here":         "no-pids-here",
		"a#1b#22c":             "abc",
	}
	for in, want := range cases {
		if got := stripPID(in); got != want {
			t.Errorf("stripPID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRoleOnly(t *testing.T) {
	if roleOnly("task2#3") != "task2" || roleOnly("plain") != "plain" {
		t.Fatal("roleOnly wrong")
	}
}

func TestSymptomShapes(t *testing.T) {
	hang := &sim.Outcome{Hung: []sim.HangSite{
		{PID: "am#1", Name: "main", Thread: 8, Reason: "loop:awaitTasks"},
		{PID: "task1#2", Name: "main", Thread: 52, Reason: "wait:rpc-reply"},
		{PID: "am#1", Name: "gossiper", Thread: 3, Site: "z"}, // non-main: ignored
	}}
	if sig := Symptom(hang, nil); sig != "hang:am/main@loop:awaitTasks" {
		t.Fatalf("hang signature = %q", sig)
	}

	fatal := &sim.Outcome{Completed: true, FatalLogs: []string{"boom@am#2"}}
	if got := Symptom(fatal, nil); got != "fatal:boom@am" {
		t.Fatalf("fatal signature = %q", got)
	}

	if got := Symptom(&sim.Outcome{Completed: true}, errors.New("lost data")); got != "check:lost data" {
		t.Fatalf("check signature = %q", got)
	}
}

func TestPlanKeyAndLowering(t *testing.T) {
	step := Plan{FaultSpec: sim.FaultSpec{CrashStep: 77}}
	if !step.IsStep() || step.Key() != "step:77" {
		t.Fatalf("step plan key = %q", step.Key())
	}
	fp := step.simPlan("worker", map[string]int64{"worker": 40})
	sc := fp.Scenario()
	if len(sc) != 1 || sc[0].CrashStep != 77 || sc[0].Target != "worker" || len(fp.RestartRoles) != 1 {
		t.Fatalf("step plan lowered wrong: %+v", fp)
	}

	site := Plan{FaultSpec: sim.FaultSpec{Site: "a.go:10", Occurrence: 2, When: WhenAfter, Action: ActionKernelDrop}}
	if site.IsStep() || site.Key() != "site:a.go:10/2/after/kernel-drop" {
		t.Fatalf("site plan key = %q", site.Key())
	}
	fp = site.simPlan("worker", map[string]int64{"worker": 40})
	sc = fp.Scenario()
	if len(sc) != 1 || fp.RestartRoles != nil {
		t.Fatalf("drop plan lowered wrong: %+v", fp)
	}
	if sc[0].Site != "a.go:10" || sc[0].Occurrence != 2 || sc[0].When != WhenAfter || sc[0].Action != ActionKernelDrop {
		t.Fatalf("site event wrong: %+v", sc[0])
	}

	crash := Plan{FaultSpec: sim.FaultSpec{Site: "a.go:10", Occurrence: 1, When: WhenBefore, Action: ActionNodeCrash}}
	if fp := crash.simPlan("worker", map[string]int64{"worker": 40}); len(fp.RestartRoles) != 1 {
		t.Fatal("crash plans must carry the restart map")
	}

	rd := int64(40)
	comp := Plan{
		FaultSpec: sim.FaultSpec{Site: "a.go:10", Occurrence: 1, When: WhenBefore, Action: ActionNodeCrash, Restart: &rd},
		Then:      []sim.FaultSpec{{Delay: 48, Action: ActionNodeCrash}},
	}
	if comp.IsStep() {
		t.Fatal("composite plan classified as step plan")
	}
	if comp.Key() != "site:a.go:10/1/before/node-crash/r=40+after:48" {
		t.Fatalf("composite plan key = %q", comp.Key())
	}
	fp = comp.simPlan("worker", map[string]int64{"worker": 40})
	if sc = fp.Scenario(); len(sc) != 2 || sc[1].Delay != 48 || sc[1].Target != "" {
		t.Fatalf("composite plan lowered wrong: %+v", sc)
	}
}

// tracedFaultFree returns the fault-free trace and step count of a workload.
func tracedFaultFree(t *testing.T, w core.Workload) (*sim.Cluster, int64) {
	t.Helper()
	cfg := sim.Config{Seed: 1, Tracing: sim.TraceSelective}
	w.Tune(&cfg)
	c := sim.NewCluster(cfg)
	w.Configure(c)
	out := c.Run()
	if err := w.Check(c, out); err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	return c, out.Steps
}

func TestSpaceEnumeration(t *testing.T) {
	c, steps := tracedFaultFree(t, toy.New())
	sp := NewSpace(c.Trace(), steps, "worker", 0)

	if len(sp.Sites) == 0 || len(sp.Points) == 0 {
		t.Fatal("empty fault space from a traced run")
	}
	// Sites are in first-execution order.
	for i := 1; i < len(sp.Sites); i++ {
		if sp.Sites[i].FirstTS < sp.Sites[i-1].FirstTS {
			t.Fatal("sites not in first-execution order")
		}
	}
	// Every point is well-formed, unique, and within the occurrence cap;
	// drop points only appear on sendable/droppable sites.
	seen := map[string]bool{}
	bySite := map[string]SiteInfo{}
	for _, si := range sp.Sites {
		bySite[si.Site] = si
	}
	hasDrop := false
	for _, p := range sp.Points {
		if p.IsStep() {
			t.Fatalf("step plan in site space: %+v", p)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate point %s", p.Key())
		}
		seen[p.Key()] = true
		si := bySite[p.Site]
		if p.Occurrence < 1 || p.Occurrence > maxOccurrenceDefault || p.Occurrence > si.Count {
			t.Fatalf("occurrence out of range: %+v (site count %d)", p, si.Count)
		}
		switch p.Action {
		case ActionKernelDrop:
			hasDrop = true
			if !si.Sendable {
				t.Fatalf("kernel-drop on non-sendable site %s", p.Site)
			}
		case ActionAppDrop:
			if !si.Droppable {
				t.Fatalf("app-drop on non-droppable site %s", p.Site)
			}
		}
	}
	if !hasDrop {
		t.Fatal("toy sends messages; space should contain kernel-drop points")
	}

	// Enumeration is deterministic.
	sp2 := NewSpace(c.Trace(), steps, "worker", 0)
	if !reflect.DeepEqual(sp.Points, sp2.Points) {
		t.Fatal("space enumeration not deterministic")
	}
}

// corpusJSON canonicalizes a corpus for byte comparison.
func corpusJSON(t *testing.T, c *Corpus) string {
	t.Helper()
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCampaignParallelismInvariant pins the determinism contract: identical
// (workload, seed, budget, strategy) yields an identical corpus — and so
// identical distinct-failure counts — at any parallelism, for every strategy.
func TestCampaignParallelismInvariant(t *testing.T) {
	for _, strat := range StrategyNames() {
		var want string
		for _, par := range []int{1, 4, 0} {
			res, err := Run(toy.New(), Config{Strategy: strat, Seed: 5, Budget: 30, Parallelism: par})
			if err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			got := corpusJSON(t, res.Corpus)
			if par == 1 {
				want = got
			} else if got != want {
				t.Errorf("%s: corpus at parallelism %d differs from sequential", strat, par)
			}
		}
	}
}

// TestSignatureStability: the same (workload, seed, plan) produces the same
// behavior signature on every execution and at any parallelism — and
// distinct planted bugs produce distinct signatures.
func TestSignatureStability(t *testing.T) {
	w := toy.New()
	restart := w.RestartRoles()

	c, steps := tracedFaultFree(t, w)
	sp := NewSpace(c.Trace(), steps, w.CrashTarget(), 0)

	// Repeated runs of one plan are byte-identical.
	for _, p := range sp.Points[:6] {
		a := runPlan(w, 1, p, sp.Target, restart, true)
		b := runPlan(w, 1, p, sp.Target, restart, true)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("plan %s: signature unstable across runs:\n%+v\n%+v", p.Key(), a, b)
		}
	}

	// The toy's two planted TOF bugs have distinct signatures: dropping the
	// worker's hello hangs the server's untimed wait (crash-regular), while
	// crashing the worker right after the commit RPC poisons recovery
	// (crash-recovery, the Figure 1 miniature).
	bySymptom := map[string]Plan{}
	for _, p := range sp.Points {
		r := runPlan(w, 1, p, sp.Target, restart, true)
		if r.Verdict == VerdictFailure {
			if _, ok := bySymptom[r.Sig.Symptom]; !ok {
				bySymptom[r.Sig.Symptom] = p
			}
		}
	}
	var serverHang, recoveryPoison bool
	for s := range bySymptom {
		if s == "hang:server/main@wait:worker-ready" {
			serverHang = true
		}
		if s == "fatal:commit denied: task poisoned by dead attempt@worker" {
			recoveryPoison = true
		}
	}
	if !serverHang || !recoveryPoison {
		t.Fatalf("planted bugs not distinguished; failure symptoms = %v", keys(bySymptom))
	}
}

func keys(m map[string]Plan) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCampaignResume: stopping a campaign, persisting its corpus, and
// resuming with a larger budget reproduces exactly the corpus a single
// uninterrupted campaign would have produced.
func TestCampaignResume(t *testing.T) {
	cfg := Config{Strategy: StrategyCoverage, Seed: 2, Budget: 12, Parallelism: 2}
	half, err := Run(toy.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := half.Corpus.Save(path); err != nil {
		t.Fatal(err)
	}
	prior, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Budget = 30
	resumed, err := Resume(toy.New(), cfg, prior)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Run(toy.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if corpusJSON(t, resumed.Corpus) != corpusJSON(t, oneShot.Corpus) {
		t.Fatal("resumed corpus differs from an uninterrupted campaign")
	}
	if resumed.Runs != oneShot.Runs || resumed.FailureRuns != oneShot.FailureRuns ||
		!reflect.DeepEqual(resumed.Failures, oneShot.Failures) {
		t.Fatal("resumed result differs from an uninterrupted campaign")
	}

	// Identity mismatches are rejected rather than silently re-run.
	bad := Config{Strategy: StrategyCoverage, Seed: 3, Budget: 30}
	if _, err := Resume(toy.New(), bad, prior); err == nil {
		t.Fatal("resume with a different seed should fail")
	}
}

// TestCoverageGuidedBeatsRandom is the headline claim: at an equal run
// budget, coverage-guided finds at least as many distinct failure signatures
// as the uniform-random baseline on every workload tested here, and strictly
// more on TOY and HB1 — random injection finds nothing at all on HB1 in 400
// runs (Section 8.3), while the site-based search pinpoints the META-open
// hang.
func TestCoverageGuidedBeatsRandom(t *testing.T) {
	const budget = 400
	for _, w := range []core.Workload{toy.New(), hbase.NewHB1()} {
		rnd, err := Run(w, Config{Strategy: StrategyRandom, Seed: 1, Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		cov, err := Run(w, Config{Strategy: StrategyCoverage, Seed: 1, Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		if cov.UniqueFailures() < rnd.UniqueFailures() {
			t.Errorf("%s: coverage-guided found %d distinct failures, random found %d",
				w.Name(), cov.UniqueFailures(), rnd.UniqueFailures())
		}
		if cov.UniqueFailures() <= rnd.UniqueFailures() {
			t.Errorf("%s: coverage-guided (%d) should strictly beat random (%d) here",
				w.Name(), cov.UniqueFailures(), rnd.UniqueFailures())
		}
	}
}

func TestCorpusDiff(t *testing.T) {
	a := NewCorpus("TOY", StrategyRandom, 1)
	b := NewCorpus("TOY", StrategyCoverage, 1)
	add := func(c *Corpus, symptom string) {
		c.add(RunResult{
			Sig:     Signature{Outcome: OutcomeHang, Symptom: symptom},
			Verdict: VerdictFailure,
		})
	}
	add(a, "hang:x")
	add(a, "hang:shared")
	add(b, "hang:shared")
	add(b, "hang:y")
	add(b, "hang:z")

	d := DiffCorpora(a, b)
	if !reflect.DeepEqual(d.OnlyA, []string{"hang:x"}) ||
		!reflect.DeepEqual(d.OnlyB, []string{"hang:y", "hang:z"}) ||
		!reflect.DeepEqual(d.Shared, []string{"hang:shared"}) {
		t.Fatalf("diff wrong: %+v", d)
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	if _, err := Run(toy.New(), Config{Strategy: "simulated-annealing", Budget: 1}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestExhaustiveStopsAtSpace: site strategies end early once the fault space
// is exhausted instead of re-running plans (the simulator is deterministic,
// so repeats cannot find anything new).
func TestExhaustiveStopsAtSpace(t *testing.T) {
	res, err := Run(toy.New(), Config{Strategy: StrategyExhaustive, Seed: 1, Budget: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != res.SpacePoints {
		t.Fatalf("runs = %d, space = %d; exhaustive should stop at the space size",
			res.Runs, res.SpacePoints)
	}
	// And it visits every point exactly once.
	seen := map[string]bool{}
	for _, e := range res.Corpus.Entries {
		if seen[e.Plan.Key()] {
			t.Fatalf("point %s run twice", e.Plan.Key())
		}
		seen[e.Plan.Key()] = true
	}
}

// TestCoverageFoldMatchesMaterialized pins the streamed coverage signature:
// folding the trace window by window (any batching, including the engine's
// discard-mode streaming) must hash to exactly what the one-shot fold over a
// fully materialized trace computes — with and without a fault firing.
func TestCoverageFoldMatchesMaterialized(t *testing.T) {
	w := toy.New()
	restart := w.RestartRoles()
	c, steps := tracedFaultFree(t, w)
	tr := c.Trace()

	// Fault-free trace, re-folded at several window sizes.
	want := postFaultCoverage(tr)
	for _, batch := range []int{1, 3, 17, len(tr.Records)} {
		var f CoverageFold
		for pos := 0; pos < len(tr.Records); pos += batch {
			end := pos + batch
			if end > len(tr.Records) {
				end = len(tr.Records)
			}
			f.Window(tr, tr.Records[pos:end])
		}
		if got := f.Hash(tr); got != want {
			t.Fatalf("fault-free batch %d: fold hash %#x, want %#x", batch, got, want)
		}
	}

	// Faulty runs: the engine's discard-mode streamed hash must equal the
	// reference computed from the same plan with records fully retained.
	sp := NewSpace(tr, steps, w.CrashTarget(), 0)
	n := len(sp.Points)
	if n > 10 {
		n = 10
	}
	var fired int
	for _, p := range sp.Points[:n] {
		streamed := runPlan(w, 1, p, sp.Target, restart, true)

		rcfg := sim.Config{Seed: 1, Tracing: sim.TraceSelective, Plan: p.simPlan(sp.Target, restart)}
		w.Tune(&rcfg)
		ref := sim.NewCluster(rcfg)
		w.Configure(ref)
		ref.Run()
		refTr := ref.Trace()
		for i := range refTr.Records {
			r := &refTr.Records[i]
			if r.Kind == trace.KCrash || r.Flags&trace.FlagDropped != 0 {
				fired++
				break
			}
		}
		if got, want := streamed.Sig.Coverage, postFaultCoverage(refTr); got != want {
			t.Fatalf("plan %s: streamed coverage %#x, materialized reference %#x", p.Key(), got, want)
		}
	}
	if fired == 0 {
		t.Fatal("no sampled plan fired its fault; the post-fault path went untested")
	}
}

// TestSpaceFromSourceMatchesNewSpace: enumerating the fault space from a
// streamed trace source (any batching) reproduces NewSpace exactly.
func TestSpaceFromSourceMatchesNewSpace(t *testing.T) {
	w := toy.New()
	c, steps := tracedFaultFree(t, w)
	tr := c.Trace()
	want := NewSpace(tr, steps, w.CrashTarget(), 0)

	for _, batch := range []int{1, 5, 1024} {
		got, err := NewSpaceFromSource(trace.SourceOf(tr, batch), steps, w.CrashTarget(), 0)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: streamed space diverged from NewSpace", batch)
		}
	}

	// And through a full FCT2 encode/decode round trip (the -space-trace
	// path: enumerate from a saved trace file).
	var buf bytes.Buffer
	if err := trace.EncodeStream(trace.SourceOf(tr, 7), &buf); err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewSpaceFromSource(src, steps, w.CrashTarget(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("space enumerated from the decoded FCT2 stream diverged")
	}
}

// interruptingExecutor executes batches on the worker path (ExecPlans) and
// cancels the campaign at the start of its Nth batch — a deterministic
// mid-batch interruption.
type interruptingExecutor struct {
	w       core.Workload
	cfg     Config
	batches int
	failAt  int
	cancel  context.CancelFunc
}

func (e *interruptingExecutor) ExecuteBatch(ctx context.Context, plans []Plan) ([]RunResult, error) {
	e.batches++
	if e.batches == e.failAt {
		e.cancel()
		return nil, ctx.Err()
	}
	return ExecPlans(ctx, e.w, e.cfg.Seed, StrategyTraced(e.cfg.Strategy), 1, plans)
}

// TestResumeAfterMidBatchInterruption pins the recovery contract at the
// engine level, with no timing involved: a campaign interrupted mid-batch
// keeps exactly its complete batches, and resuming from that partial corpus
// converges byte-for-byte with a never-interrupted run.
func TestResumeAfterMidBatchInterruption(t *testing.T) {
	cfg := Config{Strategy: StrategyRandom, Seed: 9, Budget: 120, BatchSize: 20, Parallelism: 1}
	want, err := Run(toy.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ex := &interruptingExecutor{w: toy.New(), cfg: cfg, failAt: 3, cancel: cancel}
	partial, err := ResumeWith(ctx, toy.New(), cfg, nil, ex)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign: err = %v, want context.Canceled", err)
	}
	if wantRuns := 2 * cfg.BatchSize; partial.Runs != wantRuns {
		t.Fatalf("partial campaign kept %d runs, want the %d of its complete batches", partial.Runs, wantRuns)
	}

	path := filepath.Join(t.TempDir(), "partial.json")
	if err := partial.Corpus.Save(path); err != nil {
		t.Fatal(err)
	}
	prior, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(toy.New(), cfg, prior)
	if err != nil {
		t.Fatal(err)
	}
	if corpusJSON(t, resumed.Corpus) != corpusJSON(t, want.Corpus) {
		t.Fatal("corpus resumed after a mid-batch interruption differs from an uninterrupted campaign")
	}
}
