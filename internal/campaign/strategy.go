package campaign

import (
	"fmt"
	"math/rand"

	"fcatch/internal/sim"
)

// Strategy names accepted by Config.Strategy / NewStrategy.
const (
	// StrategyRandom is the Section 8.3 baseline: uniform-random step
	// crashes, byte-identical to the pre-engine RandomCampaignP.
	StrategyRandom = "random"
	// StrategyExhaustive walks the enumerated fault space in order.
	StrategyExhaustive = "exhaustive-site"
	// StrategyCoverage adaptively reinvests budget near sites whose
	// injections produced novel behavior signatures.
	StrategyCoverage = "coverage-guided"
)

// Strategy proposes injection plans and learns from their results. The
// engine calls NextBatch, runs the whole batch (possibly in parallel), and
// feeds the merged results back through Observe — so a strategy adapts only
// at batch boundaries, which is what makes campaigns parallelism-invariant:
// every random decision is drawn before any run of the batch starts.
type Strategy interface {
	// Name is the registry name.
	Name() string
	// Init is called once before the campaign starts.
	Init(sp *Space, seed int64, budget int)
	// NextBatch proposes up to max plans; an empty batch ends the campaign
	// early (fault space exhausted).
	NextBatch(max int) []Plan
	// Observe feeds back one batch's results, in proposal order.
	Observe(results []RunResult)
}

// NewStrategy builds a registered strategy by name ("" = coverage-guided).
func NewStrategy(name string) (Strategy, error) {
	switch name {
	case StrategyRandom:
		return &randomStrategy{}, nil
	case StrategyExhaustive:
		return &exhaustiveStrategy{}, nil
	case StrategyCoverage, "":
		return &coverageStrategy{}, nil
	}
	return nil, fmt.Errorf("campaign: unknown strategy %q (have %s, %s, %s)",
		name, StrategyRandom, StrategyExhaustive, StrategyCoverage)
}

// StrategyNames lists the registered strategies in comparison-table order.
func StrategyNames() []string {
	return []string{StrategyRandom, StrategyExhaustive, StrategyCoverage}
}

// needsSpace reports whether a strategy samples the site-point fault space
// (and therefore needs a traced fault-free run to enumerate it). The random
// strategy samples raw steps and runs untraced, exactly like the legacy
// baseline.
func needsSpace(name string) bool { return name != StrategyRandom }

// randomStrategy reproduces the legacy baseline: all crash steps are drawn
// up front from the same seeded RNG stream the pre-engine code used, so a
// random campaign's results are byte-identical to RandomCampaignP's.
type randomStrategy struct {
	steps []int64
	next  int
}

func (s *randomStrategy) Name() string { return StrategyRandom }

func (s *randomStrategy) Init(sp *Space, seed int64, budget int) {
	rng := rand.New(rand.NewSource(seed * 7919))
	s.steps = make([]int64, budget)
	for i := range s.steps {
		s.steps[i] = 1 + rng.Int63n(sp.BaseSteps)
	}
}

func (s *randomStrategy) NextBatch(max int) []Plan {
	n := len(s.steps) - s.next
	if n > max {
		n = max
	}
	if n <= 0 {
		return nil
	}
	batch := make([]Plan, n)
	for i := range batch {
		batch[i] = Plan{FaultSpec: sim.FaultSpec{CrashStep: s.steps[s.next+i]}}
	}
	s.next += n
	return batch
}

func (s *randomStrategy) Observe([]RunResult) {}

// exhaustiveStrategy walks Space.Points in enumeration order: every site's
// first occurrence (all actions) before any second occurrence, with no
// feedback. It is the "systematic sweep" yardstick between blind-random and
// coverage-guided.
type exhaustiveStrategy struct {
	sp   *Space
	next int
}

func (s *exhaustiveStrategy) Name() string { return StrategyExhaustive }

func (s *exhaustiveStrategy) Init(sp *Space, seed int64, budget int) { s.sp = sp }

func (s *exhaustiveStrategy) NextBatch(max int) []Plan {
	n := len(s.sp.Points) - s.next
	if n > max {
		n = max
	}
	if n <= 0 {
		return nil
	}
	batch := append([]Plan(nil), s.sp.Points[s.next:s.next+n]...)
	s.next += n
	return batch
}

func (s *exhaustiveStrategy) Observe([]RunResult) {}

// Coverage-guided tuning knobs.
const (
	coverageRound = 25 // plans per batch between re-weightings
	// Weight multipliers applied to untried points when a run's behavior
	// signature is novel: the point's own site, sites within
	// coverageNeighborhood ordinals, and (weaker) a novel-but-tolerated run.
	boostSameSite  = 8.0
	boostNeighbor  = 3.0
	boostTolerated = 2.0
	// coverageNeighborhood is the site-ordinal radius counted as "near".
	coverageNeighborhood = 2
	// weightCap keeps repeated boosts from overflowing float64.
	weightCap = 1e9
)

// coverageStrategy samples the fault space without replacement (the
// simulator is deterministic, so re-running a plan is pure waste), weighting
// untried points up whenever an injection near them produced a behavior
// signature the corpus had not seen. Sampling uses a seeded RNG and all
// draws for a batch happen before the batch runs, so campaigns replay
// exactly at any parallelism.
type coverageStrategy struct {
	sp      *Space
	rng     *rand.Rand
	weights []float64
	tried   []bool
	ordOf   []int          // point index -> site ordinal
	byKey   map[string]int // plan key -> point index
	left    int            // untried points remaining
}

func (s *coverageStrategy) Name() string { return StrategyCoverage }

func (s *coverageStrategy) Init(sp *Space, seed int64, budget int) {
	s.sp = sp
	s.rng = rand.New(rand.NewSource(seed*104729 + 1))
	s.weights = make([]float64, len(sp.Points))
	s.tried = make([]bool, len(sp.Points))
	s.ordOf = make([]int, len(sp.Points))
	s.byKey = make(map[string]int, len(sp.Points))
	for i, p := range sp.Points {
		s.weights[i] = 1
		s.ordOf[i] = sp.SiteOrdinal(p.Site)
		s.byKey[p.Key()] = i
	}
	s.left = len(sp.Points)
}

func (s *coverageStrategy) NextBatch(max int) []Plan {
	n := coverageRound
	if n > max {
		n = max
	}
	if n > s.left {
		n = s.left
	}
	if n <= 0 {
		return nil
	}
	batch := make([]Plan, 0, n)
	for k := 0; k < n; k++ {
		var total float64
		for i, w := range s.weights {
			if !s.tried[i] {
				total += w
			}
		}
		r := s.rng.Float64() * total
		pick := -1
		for i, w := range s.weights {
			if s.tried[i] {
				continue
			}
			pick = i
			if r -= w; r < 0 {
				break
			}
		}
		s.tried[pick] = true
		s.left--
		batch = append(batch, s.sp.Points[pick])
	}
	return batch
}

func (s *coverageStrategy) Observe(results []RunResult) {
	for _, res := range results {
		if !res.Novel {
			continue
		}
		idx, ok := s.byKey[res.Plan.Key()]
		if !ok {
			continue
		}
		ord := s.ordOf[idx]
		same, near := boostSameSite, boostNeighbor
		if res.Verdict == VerdictTolerated {
			same, near = boostTolerated, 1
		}
		for i := range s.weights {
			if s.tried[i] {
				continue
			}
			d := s.ordOf[i] - ord
			if d < 0 {
				d = -d
			}
			switch {
			case d == 0:
				s.weights[i] *= same
			case d <= coverageNeighborhood:
				s.weights[i] *= near
			}
			if s.weights[i] > weightCap {
				s.weights[i] = weightCap
			}
		}
	}
}
