// Package campaign is the coverage-guided fault-injection campaign engine:
// a search layer on top of the deterministic simulator that explores the
// fault space of a workload (where/when/what to inject) and measures how
// many distinct failure modes each search strategy exposes per run budget.
//
// The paper's Section 8.3 baseline — N uniform-random crash injections —
// becomes one Strategy among several. The engine adds a fault-space model
// enumerated from a fault-free trace, a per-run behavior signature with a
// dedupe corpus, and persistence so campaigns can be stopped, resumed, and
// diffed. Identical (workload, seed, budget, strategy) inputs produce an
// identical corpus at any parallelism: every decision a strategy makes is
// drawn before its batch runs, and results merge in run order.
package campaign

import (
	"fmt"

	"fcatch/internal/sim"
)

// Plan action names (the JSON-stable forms of sim.TriggerAction).
const (
	ActionNodeCrash  = "node-crash"
	ActionKernelDrop = "kernel-drop"
	ActionAppDrop    = "app-drop"
)

// Plan when names (the JSON-stable forms of sim.TriggerWhen).
const (
	WhenBefore = "before"
	WhenAfter  = "after"
)

// Plan is one candidate injection: either a step crash (the legacy baseline:
// crash the workload's crash target when the logical clock reaches CrashStep)
// or a site point (inject Action at the Occurrence-th execution of Site,
// before or after the op's effect). Site points are what the fault-space
// model enumerates; step plans exist so the `random` strategy reproduces the
// Section 8.3 baseline byte for byte.
type Plan struct {
	// CrashStep, for step plans, is the logical-clock step at which the
	// workload's crash target is killed.
	CrashStep int64 `json:"crash_step,omitempty"`

	// Site/Occurrence/When/Action describe a site-point injection.
	Site       string `json:"site,omitempty"`
	Occurrence int    `json:"occurrence,omitempty"`
	When       string `json:"when,omitempty"`
	Action     string `json:"action,omitempty"`
}

// IsStep reports whether this is a legacy step-crash plan.
func (p Plan) IsStep() bool { return p.Site == "" }

// Key is the canonical identity of the plan, used for corpus resume checks.
func (p Plan) Key() string {
	if p.IsStep() {
		return fmt.Sprintf("step:%d", p.CrashStep)
	}
	return fmt.Sprintf("site:%s/%d/%s/%s", p.Site, p.Occurrence, p.When, p.Action)
}

func (p Plan) String() string { return p.Key() }

func (p Plan) simWhen() sim.TriggerWhen {
	if p.When == WhenAfter {
		return sim.After
	}
	return sim.Before
}

func (p Plan) simAction() sim.TriggerAction {
	switch p.Action {
	case ActionKernelDrop:
		return sim.ActDropKernel
	case ActionAppDrop:
		return sim.ActDropApp
	}
	return sim.ActCrashSelf
}

// simPlan lowers the plan to the simulator's fault-plan form. Crash plans
// carry the workload's restart map (the operator restarts dead nodes, as in
// the random baseline); drop plans leave nothing to restart.
func (p Plan) simPlan(target string, restart map[string]int64) *sim.FaultPlan {
	if p.IsStep() {
		return sim.NewObservationPlan(target, p.CrashStep, restart)
	}
	fp := &sim.FaultPlan{CrashAtStep: -1, Triggers: []sim.TriggerPoint{{
		Site:       p.Site,
		Occurrence: p.Occurrence,
		When:       p.simWhen(),
		Action:     p.simAction(),
	}}}
	if p.Action == ActionNodeCrash {
		fp.RestartRoles = restart
	}
	return fp
}
