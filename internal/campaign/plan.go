// Package campaign is the coverage-guided fault-injection campaign engine:
// a search layer on top of the deterministic simulator that explores the
// fault space of a workload (where/when/what to inject) and measures how
// many distinct failure modes each search strategy exposes per run budget.
//
// The paper's Section 8.3 baseline — N uniform-random crash injections —
// becomes one Strategy among several. The engine adds a fault-space model
// enumerated from a fault-free trace, a per-run behavior signature with a
// dedupe corpus, and persistence so campaigns can be stopped, resumed, and
// diffed. Identical (workload, seed, budget, strategy) inputs produce an
// identical corpus at any parallelism: every decision a strategy makes is
// drawn before its batch runs, and results merge in run order.
package campaign

import (
	"fmt"
	"strings"

	"fcatch/internal/sim"
)

// Plan action and edge names — aliases of the simulator's JSON-stable fault
// vocabulary, kept here so campaign code reads naturally. The table itself
// lives in exactly one place: internal/sim.
const (
	ActionNodeCrash  = sim.ActionNodeCrash
	ActionKernelDrop = sim.ActionKernelDrop
	ActionAppDrop    = sim.ActionAppDrop

	WhenBefore = sim.WhenBefore
	WhenAfter  = sim.WhenAfter
)

// Plan is one candidate injection scenario. The embedded FaultSpec is the
// first (and usually only) fault event — embedding keeps single-event plans
// encoding to the exact flat JSON object pre-scenario corpora used. Then
// holds the follow-up events of a composite scenario, in order.
//
// Single events come in two classic shapes: a step crash (the legacy
// baseline: crash the workload's crash target when the logical clock
// reaches CrashStep) or a site point (inject Action at the Occurrence-th
// execution of Site, before or after the op's effect). Site points are what
// the fault-space model enumerates; step plans exist so the `random`
// strategy reproduces the Section 8.3 baseline byte for byte.
type Plan struct {
	sim.FaultSpec

	// Then are the scenario's follow-up events (empty for single-fault
	// plans). A relative event (Delay > 0, no Site) fires Delay ticks
	// after its predecessor and, with no Target, re-crashes the restarted
	// incarnation of the previously crashed role.
	Then []sim.FaultSpec `json:"then,omitempty"`
}

// IsStep reports whether this is a legacy step-crash plan.
func (p Plan) IsStep() bool { return p.Site == "" && len(p.Then) == 0 && p.Delay == 0 }

// Events returns the full scenario: the first event followed by Then.
func (p Plan) Events() []sim.FaultSpec {
	out := make([]sim.FaultSpec, 0, 1+len(p.Then))
	out = append(out, p.FaultSpec)
	return append(out, p.Then...)
}

// Key is the canonical identity of the plan, used for corpus resume checks.
// Single-fault plans keep their historical keys ("step:N", "site:..."), so
// pre-scenario corpora still match; scenario-only fields append suffixes and
// composite events join with "+".
func (p Plan) Key() string {
	var b strings.Builder
	specKey(&b, p.FaultSpec)
	for _, s := range p.Then {
		b.WriteByte('+')
		specKey(&b, s)
	}
	return b.String()
}

func specKey(b *strings.Builder, s sim.FaultSpec) {
	switch {
	case s.Site != "":
		fmt.Fprintf(b, "site:%s/%d/%s/%s", s.Site, s.Occurrence, s.When, s.Action)
	case s.Delay > 0:
		fmt.Fprintf(b, "after:%d", s.Delay)
	default:
		fmt.Fprintf(b, "step:%d", s.CrashStep)
	}
	if s.Target != "" {
		fmt.Fprintf(b, "/t=%s", s.Target)
	}
	if s.Restart != nil {
		fmt.Fprintf(b, "/r=%d", *s.Restart)
	}
}

func (p Plan) String() string { return p.Key() }

// simPlan lowers the plan to the simulator's fault-plan form. Step crashes
// with no explicit target aim at the workload's crash target; scenarios
// containing a node crash carry the workload's restart map (the operator
// restarts dead nodes, as in the random baseline) while pure drop plans
// leave nothing to restart.
func (p Plan) simPlan(target string, restart map[string]int64) *sim.FaultPlan {
	specs := p.Events()
	withRestart := false
	for i := range specs {
		s := &specs[i]
		if s.Site == "" {
			if s.Target == "" && s.Delay == 0 {
				s.Target = target
			}
			withRestart = true
		} else if s.Action == ActionNodeCrash {
			withRestart = true
		}
	}
	if !withRestart {
		restart = nil
	}
	return sim.NewScenarioPlan(specs, restart)
}
