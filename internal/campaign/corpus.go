package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// RunResult is the outcome of executing one plan.
type RunResult struct {
	Plan    Plan      `json:"plan"`
	Sig     Signature `json:"signature"`
	Verdict string    `json:"verdict"`
	// Novel is set by the engine when the behavior key had not been seen by
	// any earlier run of the campaign (in run order).
	Novel bool `json:"novel,omitempty"`
}

// Entry is one corpus line: what was injected, what happened, whether it was
// new.
type Entry struct {
	Index   int       `json:"index"`
	Plan    Plan      `json:"plan"`
	Sig     Signature `json:"signature"`
	Verdict string    `json:"verdict"`
	Novel   bool      `json:"novel,omitempty"`
}

// CorpusVersion is the newest corpus schema this build writes and reads.
// Version 0 (the field absent) is the pre-scenario schema: flat single-fault
// plan objects. Version 2 adds scenario fields (then/target/delay/restart on
// plans, the campaign's scenarios list); a corpus is stamped with it only
// when it actually uses them, so single-fault corpora stay byte-identical
// to — and loadable by — pre-scenario builds.
const CorpusVersion = 2

// Corpus is the persistent record of a campaign: every (plan, signature,
// verdict) in run order, plus the campaign's identity. Saving and reloading
// it lets a campaign stop, resume (the engine replays the cached prefix
// instead of re-running it), and be diffed against another campaign.
type Corpus struct {
	Version   int      `json:"version,omitempty"`
	Workload  string   `json:"workload"`
	Strategy  string   `json:"strategy"`
	Seed      int64    `json:"seed"`
	Scenarios []string `json:"scenarios,omitempty"`
	Entries   []Entry  `json:"entries"`

	seenBehavior map[string]bool
}

// NewCorpus returns an empty corpus for one campaign identity.
func NewCorpus(workload, strategy string, seed int64) *Corpus {
	return &Corpus{Workload: workload, Strategy: strategy, Seed: seed,
		seenBehavior: map[string]bool{}}
}

// add appends a run in order, stamping novelty against the behaviors seen so
// far, and returns whether the behavior was novel.
func (c *Corpus) add(r RunResult) bool {
	if c.seenBehavior == nil {
		c.rebuild()
	}
	key := r.Sig.BehaviorKey()
	novel := !c.seenBehavior[key]
	c.seenBehavior[key] = true
	c.Entries = append(c.Entries, Entry{
		Index: len(c.Entries), Plan: r.Plan, Sig: r.Sig, Verdict: r.Verdict, Novel: novel,
	})
	return novel
}

func (c *Corpus) rebuild() {
	c.seenBehavior = make(map[string]bool, len(c.Entries))
	for _, e := range c.Entries {
		c.seenBehavior[e.Sig.BehaviorKey()] = true
	}
}

// DistinctFailures counts runs per failure symptom, excluding expected
// reactions — the strategy-comparison metric, measured identically for every
// strategy.
func (c *Corpus) DistinctFailures() map[string]int {
	out := map[string]int{}
	for _, e := range c.Entries {
		if e.Verdict == VerdictFailure {
			out[e.Sig.Symptom]++
		}
	}
	return out
}

// NovelBehaviors counts entries whose behavior key was unseen when they ran.
func (c *Corpus) NovelBehaviors() int {
	n := 0
	for _, e := range c.Entries {
		if e.Novel {
			n++
		}
	}
	return n
}

// schemaVersion is the version a Save stamps: CorpusVersion when any
// scenario feature is in use, 0 (omitted) otherwise.
func (c *Corpus) schemaVersion() int {
	if len(c.Scenarios) > 0 {
		return CorpusVersion
	}
	for i := range c.Entries {
		p := &c.Entries[i].Plan
		if len(p.Then) > 0 || p.Target != "" || p.Delay != 0 || p.Restart != nil {
			return CorpusVersion
		}
	}
	return 0
}

// Save writes the corpus as indented JSON.
func (c *Corpus) Save(path string) error {
	c.Version = c.schemaVersion()
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCorpus reads a corpus written by Save, sniffing the schema version:
// pre-scenario corpora (no version field) load unchanged, scenario corpora
// load in full, and corpora from a newer schema are rejected instead of
// being silently misread.
func LoadCorpus(path string) (*Corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c := &Corpus{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("campaign: corpus %s: %w", path, err)
	}
	if c.Version > CorpusVersion {
		return nil, fmt.Errorf("campaign: corpus %s has schema version %d, newer than this build's %d",
			path, c.Version, CorpusVersion)
	}
	c.rebuild()
	return c, nil
}

// Diff describes how two campaigns' findings differ.
type Diff struct {
	// OnlyA / OnlyB are failure symptoms found by exactly one campaign,
	// sorted.
	OnlyA []string
	OnlyB []string
	// Shared are symptoms both found, sorted.
	Shared []string
}

// DiffCorpora compares the distinct failure symptoms of two campaigns.
func DiffCorpora(a, b *Corpus) Diff {
	fa, fb := a.DistinctFailures(), b.DistinctFailures()
	var d Diff
	for s := range fa {
		if _, ok := fb[s]; ok {
			d.Shared = append(d.Shared, s)
		} else {
			d.OnlyA = append(d.OnlyA, s)
		}
	}
	for s := range fb {
		if _, ok := fa[s]; !ok {
			d.OnlyB = append(d.OnlyB, s)
		}
	}
	sort.Strings(d.OnlyA)
	sort.Strings(d.OnlyB)
	sort.Strings(d.Shared)
	return d
}
