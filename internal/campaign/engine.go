package campaign

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fcatch/internal/core"
	"fcatch/internal/obs"
	"fcatch/internal/parallel"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// Config parameterizes one campaign.
type Config struct {
	// Strategy selects the search strategy ("" = coverage-guided).
	Strategy string
	// Seed is the deterministic seed shared by the simulator and the
	// strategy's own RNG.
	Seed int64
	// Budget is the total number of injection runs (including any resumed
	// prefix). A non-positive budget runs nothing beyond the fault-free
	// preparation.
	Budget int
	// Parallelism bounds how many injection runs execute concurrently
	// (0 = GOMAXPROCS, 1 = sequential). The corpus is identical at any
	// setting: batches are fixed before they run and merged in run order.
	Parallelism int
	// BatchSize caps how many plans run between strategy re-weightings
	// (0 = let the strategy choose; the random and exhaustive strategies
	// take everything, coverage-guided works in rounds).
	BatchSize int
	// MaxOccurrence caps per-site occurrences in the fault space (0 = 3).
	MaxOccurrence int
	// Scenarios names the composite-scenario enumerators (see ScenarioNames)
	// appended to the fault space after the single-fault points. Empty keeps
	// the space — and therefore every corpus byte — exactly as before.
	// Requires a site strategy (the random baseline samples raw steps).
	Scenarios []string
	// SpaceTrace, when set, is a streaming source of a previously saved
	// fault-free trace: site strategies enumerate the fault space from it
	// (drained window by window, then closed) instead of re-simulating a
	// traced fault-free run. The trace must come from the same workload and
	// seed or the enumerated space — and hence the whole campaign — will
	// diverge from a from-scratch run.
	SpaceTrace trace.Source
	// Metrics, when non-nil, receives per-strategy proposal/accept counters
	// (proposed, cached, executed, novel, failures). Strictly observe-only:
	// the corpus is byte-identical with or without it. nil is a cheap no-op.
	Metrics *obs.Registry
	// Progress, when non-nil, is called after every committed batch with a
	// point-in-time view of the campaign (runs/sec, dedupe rate, cache
	// hits). Derived state only — the hook cannot influence the search.
	Progress func(Progress)
}

func (cfg Config) withDefaults() Config {
	if cfg.Strategy == "" {
		cfg.Strategy = StrategyCoverage
	}
	if cfg.Budget < 0 {
		cfg.Budget = 0
	}
	cfg.Scenarios = normalizeScenarios(cfg.Scenarios)
	return cfg
}

// normalizeScenarios drops empties and duplicates and puts known scenario
// names in canonical order (unknown names survive, in input order, so
// AppendScenarios can report them), making the corpus identity check
// independent of flag spelling.
func normalizeScenarios(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	asked := map[string]bool{}
	for _, n := range names {
		if n != "" {
			asked[n] = true
		}
	}
	var out []string
	for _, n := range ScenarioNames() {
		if asked[n] {
			out = append(out, n)
			delete(asked, n)
		}
	}
	for _, n := range names {
		if asked[n] {
			out = append(out, n)
			delete(asked, n)
		}
	}
	return out
}

func sameScenarios(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Result summarizes a finished campaign.
type Result struct {
	Workload string
	Strategy string
	Seed     int64
	// Runs actually executed (≤ budget: site strategies stop when the fault
	// space is exhausted).
	Runs        int
	FailureRuns int
	// Failures maps failure symptom -> run count, excluding expected
	// reactions; distinct keys ≈ distinct bugs exposed (the same metric the
	// Section 8.3 baseline reports).
	Failures map[string]int
	// NovelBehaviors counts runs whose behavior signature was new.
	NovelBehaviors int
	// CachedRuns were answered from the resumed prior corpus; ExecutedRuns
	// ran live. CachedRuns + ExecutedRuns == Runs.
	CachedRuns   int
	ExecutedRuns int
	// SpacePoints is the enumerated fault-space size (0 for `random`).
	SpacePoints int
	// Corpus is the full per-run record (persist with Corpus.Save).
	Corpus *Corpus
}

// UniqueFailures is the number of distinct failure symptoms.
func (r *Result) UniqueFailures() int { return len(r.Failures) }

// Signatures returns the failure symptoms sorted by frequency (desc), ties
// lexicographic.
func (r *Result) Signatures() []string {
	out := make([]string, 0, len(r.Failures))
	for s := range r.Failures {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if r.Failures[out[i]] != r.Failures[out[j]] {
			return r.Failures[out[i]] > r.Failures[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Executor runs the uncached plans of one strategy batch and returns their
// results in plan order. The engine owns everything around the executor —
// batching, prior-corpus cache hits, merge order, strategy feedback — so an
// executor only decides *where* plans run: in-process goroutines (the
// default) or a fleet of remote workers (internal/dist). Because runPlan is a
// pure function of (workload, seed, plan), any executor that returns results
// in plan order yields a corpus byte-identical to the sequential run.
//
// An executor error abandons the whole batch: the engine returns the partial
// result built from previously completed batches (corpus prefix = whole
// batches, which is what keeps an interrupted campaign resumable).
type Executor interface {
	ExecuteBatch(ctx context.Context, plans []Plan) ([]RunResult, error)
}

// localExecutor is the in-process executor: the PR-2 batch fan-out through
// internal/parallel, now cancellable at run granularity.
type localExecutor struct {
	w           core.Workload
	seed        int64
	target      string
	restart     map[string]int64
	traced      bool
	parallelism int
}

func (e *localExecutor) ExecuteBatch(ctx context.Context, plans []Plan) ([]RunResult, error) {
	return parallel.MapCtx(ctx, e.parallelism, len(plans), func(i int) RunResult {
		return runPlan(e.w, e.seed, plans[i], e.target, e.restart, e.traced)
	})
}

// ExecPlans executes a slice of plans for workload w exactly as the engine's
// local executor would — same isolation, same tracing mode, same determinism.
// It is the worker half of the distributed campaign: a worker process calls
// it on each lease it receives and ships the results back, and because the
// results are a pure function of (workload, seed, plan), the coordinator can
// fold them into the corpus as if it had run them itself.
func ExecPlans(ctx context.Context, w core.Workload, seed int64, traced bool, parallelism int, plans []Plan) ([]RunResult, error) {
	e := &localExecutor{w: w, seed: seed, target: w.CrashTarget(),
		restart: w.RestartRoles(), traced: traced, parallelism: parallelism}
	return e.ExecuteBatch(ctx, plans)
}

// StrategyTraced reports whether campaigns under this strategy trace their
// injection runs (site strategies do; the random baseline runs untraced).
// Distributed coordinators send it to workers so a lease executes with
// exactly the tracing mode the local engine would use.
func StrategyTraced(strategy string) bool {
	if strategy == "" {
		strategy = StrategyCoverage
	}
	return needsSpace(strategy)
}

// Run executes a campaign from scratch.
func Run(w core.Workload, cfg Config) (*Result, error) {
	return Resume(w, cfg, nil)
}

// Resume executes a campaign, reusing a prior corpus as a cached prefix:
// because strategies are deterministic, re-proposed plans that match the
// prior corpus run-for-run are answered from the corpus instead of being
// re-simulated, and the campaign continues live past the cached prefix.
// Passing a larger Budget than the prior run extends the campaign; passing
// the same Budget replays it (and verifies the corpus is self-consistent).
func Resume(w core.Workload, cfg Config, prior *Corpus) (*Result, error) {
	return ResumeWith(context.Background(), w, cfg, prior, nil)
}

// ResumeWith is Resume with an explicit context and a pluggable executor
// (nil = run plans in-process). On cancellation it returns the partial
// result accumulated from complete batches alongside the context error; the
// partial corpus is a valid resume point because batches commit atomically —
// an interrupted batch contributes nothing, and on resume the deterministic
// strategy re-proposes it from the same state.
func ResumeWith(ctx context.Context, w core.Workload, cfg Config, prior *Corpus, exec Executor) (*Result, error) {
	cfg = cfg.withDefaults()
	st, err := NewStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	if prior != nil {
		if prior.Workload != w.Name() || prior.Strategy != cfg.Strategy || prior.Seed != cfg.Seed {
			return nil, fmt.Errorf("campaign: corpus is from (%s, %s, seed %d), cannot resume as (%s, %s, seed %d)",
				prior.Workload, prior.Strategy, prior.Seed, w.Name(), cfg.Strategy, cfg.Seed)
		}
		if !sameScenarios(prior.Scenarios, cfg.Scenarios) {
			return nil, fmt.Errorf("campaign: corpus was run with scenarios %v, cannot resume with %v",
				prior.Scenarios, cfg.Scenarios)
		}
	}

	// Measure the fault-free execution once, untraced — the legacy
	// baseline's exact preparation, so `random` campaigns reproduce it.
	baseCfg := sim.Config{Seed: cfg.Seed, Tracing: sim.TraceOff}
	w.Tune(&baseCfg)
	bc := sim.NewCluster(baseCfg)
	w.Configure(bc)
	base := bc.Run()
	if err := w.Check(bc, base); err != nil {
		return nil, fmt.Errorf("campaign: fault-free run of %s incorrect: %w", w.Name(), err)
	}

	// Site strategies additionally need a traced fault-free run to
	// enumerate the fault space, and trace their injection runs so behavior
	// signatures carry post-fault site coverage. The run streams its records
	// through a space fold and discards them — the engine never materializes
	// a full trace.
	traced := needsSpace(cfg.Strategy)
	var sp *Space
	switch {
	case traced && cfg.SpaceTrace != nil:
		sp, err = NewSpaceFromSource(cfg.SpaceTrace, base.Steps, w.CrashTarget(), cfg.MaxOccurrence)
		if err != nil {
			return nil, fmt.Errorf("campaign: reading fault space trace: %w", err)
		}
	case traced:
		fold := newSpaceFold(base.Steps, w.CrashTarget())
		tCfg := sim.Config{Seed: cfg.Seed, Tracing: sim.TraceSelective,
			TraceDiscard: true, OnTraceWindow: fold.Window}
		w.Tune(&tCfg)
		tc := sim.NewCluster(tCfg)
		w.Configure(tc)
		tOut := tc.Run()
		if err := w.Check(tc, tOut); err != nil {
			return nil, fmt.Errorf("campaign: traced fault-free run of %s incorrect: %w", w.Name(), err)
		}
		sp = fold.finish(cfg.MaxOccurrence)
	default:
		sp = &Space{Target: w.CrashTarget(), BaseSteps: base.Steps}
	}
	if len(cfg.Scenarios) > 0 {
		if !traced {
			return nil, fmt.Errorf("campaign: -scenarios needs a site strategy (%s or %s), not %s",
				StrategyExhaustive, StrategyCoverage, cfg.Strategy)
		}
		if err := sp.AppendScenarios(cfg.Scenarios, w.RestartRoles()); err != nil {
			return nil, err
		}
	}
	st.Init(sp, cfg.Seed, cfg.Budget)

	if exec == nil {
		exec = &localExecutor{w: w, seed: cfg.Seed, target: sp.Target,
			restart: w.RestartRoles(), traced: traced, parallelism: cfg.Parallelism}
	}
	cor := NewCorpus(w.Name(), cfg.Strategy, cfg.Seed)
	cor.Scenarios = cfg.Scenarios
	res := &Result{Workload: w.Name(), Strategy: cfg.Strategy, Seed: cfg.Seed,
		Failures: map[string]int{}, SpacePoints: len(sp.Points), Corpus: cor}

	// Per-strategy telemetry cells, hoisted out of the loop (one atomic add
	// per event; all no-ops when cfg.Metrics is nil). Wall-clock start feeds
	// only the Progress hook and manifest — never the corpus.
	prefix := "campaign/" + cfg.Strategy + "/"
	cProposed := cfg.Metrics.Counter(prefix + "proposed")
	cCached := cfg.Metrics.Counter(prefix + "cached")
	cExecuted := cfg.Metrics.Counter(prefix + "executed")
	cNovel := cfg.Metrics.Counter(prefix + "novel")
	cFailures := cfg.Metrics.Counter(prefix + "failures")
	start := time.Now()
	batches := 0

	for res.Runs < cfg.Budget {
		limit := cfg.Budget - res.Runs
		if cfg.BatchSize > 0 && cfg.BatchSize < limit {
			limit = cfg.BatchSize
		}
		endBatch := cfg.Metrics.Span("campaign/batch")
		batch := st.NextBatch(limit)
		if len(batch) == 0 {
			endBatch()
			break
		}
		cProposed.Add(int64(len(batch)))
		// Answer the resumed prefix from the prior corpus; only the plans the
		// corpus cannot answer go to the executor. Results land back in their
		// batch slots, so the merge below is in proposal order regardless of
		// how (or where) the missing plans ran.
		first := res.Runs
		results := make([]RunResult, len(batch))
		var missIdx []int
		for i := range batch {
			if prior != nil && first+i < len(prior.Entries) {
				if e := prior.Entries[first+i]; e.Plan.Key() == batch[i].Key() {
					results[i] = RunResult{Plan: e.Plan, Sig: e.Sig, Verdict: e.Verdict}
					continue
				}
			}
			missIdx = append(missIdx, i)
		}
		if len(missIdx) > 0 {
			plans := make([]Plan, len(missIdx))
			for j, i := range missIdx {
				plans[j] = batch[i]
			}
			ran, err := exec.ExecuteBatch(ctx, plans)
			if err != nil {
				// The batch is abandoned whole: the result so far covers only
				// complete batches, which keeps the corpus a valid resume
				// point for a later ResumeWith.
				res.NovelBehaviors = cor.NovelBehaviors()
				endBatch()
				return res, err
			}
			if len(ran) != len(plans) {
				res.NovelBehaviors = cor.NovelBehaviors()
				endBatch()
				return res, fmt.Errorf("campaign: executor returned %d results for %d plans", len(ran), len(plans))
			}
			for j, i := range missIdx {
				results[i] = ran[j]
			}
		}
		res.CachedRuns += len(batch) - len(missIdx)
		res.ExecutedRuns += len(missIdx)
		cCached.Add(int64(len(batch) - len(missIdx)))
		cExecuted.Add(int64(len(missIdx)))
		for i := range results {
			results[i].Novel = cor.add(results[i])
			if results[i].Novel {
				cNovel.Inc()
			}
			if results[i].Verdict == VerdictFailure {
				res.FailureRuns++
				res.Failures[results[i].Sig.Symptom]++
				cFailures.Inc()
			}
		}
		st.Observe(results)
		res.Runs += len(batch)
		batches++
		endBatch()
		if cfg.Progress != nil {
			cfg.Progress(Progress{
				Workload: res.Workload, Strategy: res.Strategy,
				Runs: res.Runs, Budget: cfg.Budget, Batches: batches,
				Cached: res.CachedRuns, Executed: res.ExecutedRuns,
				Novel: cor.NovelBehaviors(), FailureRuns: res.FailureRuns,
				DistinctFailures: len(res.Failures),
				Elapsed:          time.Since(start),
			})
		}
	}
	res.NovelBehaviors = cor.NovelBehaviors()
	return res, nil
}

// runPlan executes one injection run in its own isolated cluster. Traced runs
// stream their records through a coverage fold and discard them, so a run's
// peak memory stays O(batch + symbol tables) regardless of trace length.
func runPlan(w core.Workload, seed int64, p Plan, target string, restart map[string]int64, traced bool) RunResult {
	rcfg := sim.Config{Seed: seed, Tracing: sim.TraceOff, Plan: p.simPlan(target, restart)}
	var fold *CoverageFold
	if traced {
		fold = new(CoverageFold)
		rcfg.Tracing = sim.TraceSelective
		rcfg.TraceDiscard = true
		rcfg.OnTraceWindow = fold.Window
	}
	w.Tune(&rcfg)
	c := sim.NewCluster(rcfg)
	w.Configure(c)
	out := c.Run()
	checkErr := w.Check(c, out)
	sig := Signature{Outcome: outcomeClass(out, checkErr), Windows: WindowsFingerprint(out.FaultFirings)}
	if sig.Outcome != OutcomeOK {
		sig.Symptom = Symptom(out, checkErr)
		sig.Expected = ExpectedSymptom(w, sig.Symptom)
	}
	if fold != nil {
		sig.Coverage = fold.Hash(c.Trace())
	}
	verdict := VerdictTolerated
	if sig.Outcome != OutcomeOK {
		if sig.Expected {
			verdict = VerdictExpected
		} else {
			verdict = VerdictFailure
		}
	}
	return RunResult{Plan: p, Sig: sig, Verdict: verdict}
}
