package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fcatch/internal/apps/toy"
	"fcatch/internal/sim"
)

// TestLegacyCorpusResume: a corpus written by the pre-scenario engine (flat
// single-fault plan JSON, no version field) still loads, pins the campaign
// identity, and resumes byte-identically with an uninterrupted run.
func TestLegacyCorpusResume(t *testing.T) {
	prior, err := LoadCorpus("testdata/legacy_v1.corpus.json")
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if prior.Version != 0 {
		t.Fatalf("legacy corpus carries version %d, want 0", prior.Version)
	}
	if prior.Workload != "TOY" || prior.Strategy != StrategyCoverage || prior.Seed != 2 {
		t.Fatalf("fixture identity drifted: %s/%s seed %d", prior.Workload, prior.Strategy, prior.Seed)
	}
	if len(prior.Entries) != 12 {
		t.Fatalf("fixture has %d entries, want 12", len(prior.Entries))
	}
	for i, e := range prior.Entries {
		if len(e.Plan.Then) != 0 {
			t.Fatalf("fixture entry %d has composite events — not a legacy plan", i)
		}
	}

	cfg := Config{Strategy: StrategyCoverage, Seed: 2, Budget: 30, Parallelism: 2}
	resumed, err := Resume(toy.New(), cfg, prior)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	oneShot, err := Run(toy.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if corpusJSON(t, resumed.Corpus) != corpusJSON(t, oneShot.Corpus) {
		t.Fatal("resume from the legacy corpus diverges from an uninterrupted campaign")
	}
	// The cached prefix was replayed from the corpus, not re-simulated: the
	// fixture's entries reappear verbatim.
	for i, e := range prior.Entries {
		got := resumed.Corpus.Entries[i]
		if got.Plan.Key() != e.Plan.Key() || got.Verdict != e.Verdict {
			t.Fatalf("entry %d not replayed from the legacy corpus", i)
		}
	}
}

// TestFutureCorpusVersionRejected: a corpus from a newer schema generation is
// refused instead of being silently misread.
func TestFutureCorpusVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.json")
	body := `{"version": 99, "workload": "TOY", "strategy": "coverage-guided", "seed": 1}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version corpus accepted: err = %v", err)
	}
}

// TestScenarioSpaceAppends: composite enumerators strictly extend the
// single-fault space (the scenarios-off space is an exact prefix, so every
// legacy plan keeps its index), and unknown enumerator names are rejected
// with the valid vocabulary.
func TestScenarioSpaceAppends(t *testing.T) {
	w := toy.New()
	c, steps := tracedFaultFree(t, w)

	base := NewSpace(c.Trace(), steps, w.CrashTarget(), 0)
	sp := NewSpace(c.Trace(), steps, w.CrashTarget(), 0)
	if err := sp.AppendScenarios(ScenarioNames(), w.RestartRoles()); err != nil {
		t.Fatalf("AppendScenarios: %v", err)
	}
	if len(sp.Points) <= len(base.Points) {
		t.Fatalf("scenario enumeration added nothing: %d -> %d points", len(base.Points), len(sp.Points))
	}
	for i, p := range base.Points {
		if sp.Points[i].Key() != p.Key() {
			t.Fatalf("point %d changed: %q vs %q — single-fault space must be a prefix", i, sp.Points[i].Key(), p.Key())
		}
	}
	seen := map[string]bool{}
	for _, p := range sp.Points {
		k := p.Key()
		if seen[k] {
			t.Fatalf("duplicate plan key %q", k)
		}
		seen[k] = true
	}

	if err := sp.AppendScenarios([]string{"crash+meteor"}, nil); err == nil ||
		!strings.Contains(err.Error(), ScenarioRecoveryCrash) {
		t.Fatalf("unknown scenario name accepted: err = %v", err)
	}
}

// TestRecoveryCrashScenarioFires: a crash+recovery-crash plan injects both
// crashes — the second landing on the victim's restarted incarnation — which
// no single-fault plan can do.
func TestRecoveryCrashScenarioFires(t *testing.T) {
	w := toy.New()
	c, steps := tracedFaultFree(t, w)
	sp := NewSpace(c.Trace(), steps, w.CrashTarget(), 0)
	before := len(sp.Points)
	if err := sp.AppendScenarios([]string{ScenarioRecoveryCrash}, w.RestartRoles()); err != nil {
		t.Fatal(err)
	}

	fired := false
	for _, p := range sp.Points[before:] {
		fp := p.simPlan(sp.Target, w.RestartRoles())
		rcfg := sim.Config{Seed: 1, Tracing: sim.TraceOff, Plan: fp}
		w.Tune(&rcfg)
		cl := sim.NewCluster(rcfg)
		w.Configure(cl)
		cl.Run()

		pids := fp.InjectedCrashPIDs()
		if len(pids) < 2 {
			continue // the first crash can land where no restart follows
		}
		fired = true
		if pids[0] == pids[1] {
			t.Fatalf("second crash hit the same incarnation: %v", pids)
		}
		if roleOnly(pids[0]) != roleOnly(pids[1]) {
			t.Fatalf("second crash hit a different role: %v", pids)
		}
	}
	if !fired {
		t.Fatal("no recovery-crash plan ever fired its second crash")
	}
}

// TestScenarioConfigGating: the engine refuses scenario enumeration with a
// strategy that never enumerates the site space, and refuses to resume a
// corpus under a different scenario set.
func TestScenarioConfigGating(t *testing.T) {
	if _, err := Run(toy.New(), Config{Strategy: StrategyRandom, Seed: 1, Budget: 4,
		Scenarios: []string{ScenarioRecoveryCrash}}); err == nil {
		t.Fatal("random strategy accepted -scenarios")
	}

	cfg := Config{Strategy: StrategyCoverage, Seed: 7, Budget: 10, Parallelism: 1,
		Scenarios: []string{ScenarioRecoveryCrash}}
	res, err := Run(toy.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameScenarios(res.Corpus.Scenarios, cfg.Scenarios) {
		t.Fatalf("corpus did not record the scenario set: %v", res.Corpus.Scenarios)
	}
	cfg.Scenarios = nil
	if _, err := Resume(toy.New(), cfg, res.Corpus); err == nil {
		t.Fatal("resume with a different scenario set should fail")
	}
}
