package campaign

import (
	"sort"
	"strconv"
	"strings"

	"fcatch/internal/core"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// Outcome classes of one injection run, from worst to benign.
const (
	OutcomeException = "exception"
	OutcomeFatal     = "fatal"
	OutcomeHang      = "hang"
	OutcomeCheck     = "check"
	OutcomeOK        = "ok"
)

// Verdicts the engine assigns to one run.
const (
	// VerdictFailure: the run failed and the failure is not an expected
	// reaction — a bug manifested.
	VerdictFailure = "failure"
	// VerdictExpected: the run failed but the symptom matches the workload's
	// expected behaviors (the "Exp." column of Table 3).
	VerdictExpected = "expected"
	// VerdictTolerated: the system absorbed the fault and finished correctly.
	VerdictTolerated = "tolerated"
)

// Signature is the behavior fingerprint of one injection run: the outcome
// class, the symptom fingerprint (shared with the random baseline, so
// "distinct failures found" means the same thing for every strategy), and a
// hash of the site set reached after the fault fired (the coverage component;
// 0 when the run was untraced). Two runs with equal signatures exercised the
// same failure mode — or the same tolerance path.
type Signature struct {
	Outcome  string `json:"outcome"`
	Symptom  string `json:"symptom,omitempty"`
	Coverage uint64 `json:"coverage,omitempty"`
	Expected bool   `json:"expected,omitempty"`
	// Windows is the per-window fingerprint of a multi-fault run (see
	// WindowsFingerprint); empty for runs with fewer than two fault firings,
	// so single-fault corpora and their JSON goldens are unchanged.
	Windows string `json:"windows,omitempty"`
}

// Failure reports whether this signature counts as a distinct-failure
// candidate (failed, and not an expected reaction).
func (s Signature) Failure() bool { return s.Outcome != OutcomeOK && !s.Expected }

// BehaviorKey is the dedupe-corpus identity: outcome + symptom + coverage.
// Novelty of this key is what the coverage-guided strategy reinvests in.
func (s Signature) BehaviorKey() string {
	key := s.Outcome + "|" + s.Symptom + "|" + strconv.FormatUint(s.Coverage, 16)
	if s.Windows != "" {
		key += "|" + s.Windows
	}
	return key
}

// WindowsFingerprint folds a multi-fault run's hazard windows into the
// behavior signature: one "action@victim" token per fault firing, in firing
// order. The victim keeps its incarnation suffix on purpose —
// "node-crash@task1#2" says the second fault landed on a recovery
// incarnation, i.e. inside the first fault's hazard window — so composite
// corpora distinguish "same symptom, different window" behaviors that a
// symptom string alone would collapse. Runs with fewer than two firings
// fingerprint to "" (the classic single-fault signature is the window-free
// special case).
func WindowsFingerprint(firings []sim.FaultFiring) string {
	if len(firings) < 2 {
		return ""
	}
	var b strings.Builder
	for i := range firings {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(firings[i].Action)
		b.WriteByte('@')
		if firings[i].Victim == "" {
			b.WriteString("none")
		} else {
			b.WriteString(firings[i].Victim)
		}
	}
	return b.String()
}

// outcomeClass mirrors the triggering module's failure precedence: uncaught
// exceptions identify a failure more precisely than the fatal they log, which
// beats the hang they often also cause; checker complaints rank last.
func outcomeClass(out *sim.Outcome, checkErr error) string {
	switch {
	case len(out.UncaughtExceptions) > 0:
		return OutcomeException
	case len(out.FatalLogs) > 0:
		return OutcomeFatal
	case !out.Completed:
		return OutcomeHang
	case checkErr != nil:
		return OutcomeCheck
	}
	return OutcomeOK
}

// Symptom fingerprints a failed run coarsely enough that repeated
// manifestations of one bug collapse to one signature, while different hang
// shapes stay distinct. Fatal logs and exceptions identify a failure more
// precisely than the hang they often also cause, so they take precedence.
// (This is the Section 8.3 baseline's signature function, hoisted here so
// every campaign strategy is measured with the same yardstick.)
func Symptom(out *sim.Outcome, checkErr error) string {
	if len(out.FatalLogs) > 0 {
		return "fatal:" + stripPID(out.FatalLogs[0])
	}
	if len(out.UncaughtExceptions) > 0 {
		return "exception:" + stripPID(out.UncaughtExceptions[0])
	}
	if len(out.Hung) > 0 {
		// Fingerprint by the first hung main thread (cascaded waiters vary
		// run to run and would fragment one bug into many signatures).
		first := out.Hung[0]
		for _, h := range out.Hung {
			if h.Name == "main" && (first.Name != "main" || h.Thread < first.Thread) {
				first = h
			}
		}
		where := first.Reason
		if where == "" {
			where = first.Site
		}
		return "hang:" + roleOnly(first.PID) + "/" + first.Name + "@" + stripPID(where)
	}
	if checkErr != nil {
		return "check:" + checkErr.Error()
	}
	return "unknown"
}

// ExpectedSymptom reports whether the symptom matches one of the workload's
// expected fault reactions (e.g. HMaster legitimately waits forever when
// every regionserver is gone).
func ExpectedSymptom(w core.Workload, symptom string) bool {
	for _, pat := range w.ExpectedBehaviors() {
		if pat != "" && strings.Contains(symptom, pat) {
			return true
		}
	}
	return false
}

func roleOnly(pid string) string {
	if i := strings.IndexByte(pid, '#'); i >= 0 {
		return pid[:i]
	}
	return pid
}

// stripPID removes "#N" incarnation suffixes so signatures are stable across
// restarts.
func stripPID(s string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] == '#' {
			i++
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// signatureOf builds the full behavior signature for one finished run.
func signatureOf(w core.Workload, out *sim.Outcome, checkErr error, tr *trace.Trace) Signature {
	sig := Signature{Outcome: outcomeClass(out, checkErr), Windows: WindowsFingerprint(out.FaultFirings)}
	if sig.Outcome != OutcomeOK {
		sig.Symptom = Symptom(out, checkErr)
		sig.Expected = ExpectedSymptom(w, sig.Symptom)
	}
	if tr != nil {
		sig.Coverage = postFaultCoverage(tr)
	}
	return sig
}

// CoverageFold computes the post-fault site-coverage hash incrementally from
// streamed record windows, so injection runs can discard their records
// (sim.Config.TraceDiscard) instead of materializing a full trace per run.
// Window is a trace.WindowFn; after the run, Hash resolves the accumulated
// site set against the run's symbol table.
//
// The fault moment is the first crash bookkeeping record or the first dropped
// send. A site counts when some execution of it has TS >= the fault's TS; if
// the fault never fired, the whole run counts. Timestamps are monotonically
// non-decreasing in simulator traces, which is what lets one forward pass
// replicate the two-pass definition exactly: once the fault record appears,
// every later record is at or past its TS, and the only look-back needed is
// the run of records sharing the fault's own timestamp, which the fold
// buffers.
type CoverageFold struct {
	fired bool
	pre   []bool // all countable sites, used only when the fault never fires
	post  []bool // countable sites at or after the fault moment

	// curTS/curSites buffer the countable sites of the current (pre-fire)
	// timestamp: records that share the fault's TS count even though they
	// precede the fault record in trace order.
	curTS    int64
	curSites []trace.Sym
}

// Window folds one window of records into the coverage state (a
// trace.WindowFn — safe to call with a reused, non-retained window slice).
func (f *CoverageFold) Window(t *trace.Trace, recs []trace.Record) {
	for i := range recs {
		r := &recs[i]
		if !f.fired && (r.Kind == trace.KCrash || r.HasFlag(trace.FlagDropped)) {
			f.fired = true
			if f.curTS == r.TS {
				for _, y := range f.curSites {
					markSym(&f.post, y)
				}
			}
			f.curSites = nil
		}
		if r.Site == trace.NoSym || r.Kind == trace.KCrash || r.Kind == trace.KRestart {
			continue
		}
		if f.fired {
			markSym(&f.post, r.Site)
			continue
		}
		markSym(&f.pre, r.Site)
		if r.TS != f.curTS {
			f.curTS = r.TS
			f.curSites = f.curSites[:0]
		}
		f.curSites = append(f.curSites, r.Site)
	}
}

// Hash resolves the accumulated site set against t's symbol table and returns
// the FNV-1a hash of the sorted distinct site strings — byte-identical input
// to the materialized postFaultCoverage.
func (f *CoverageFold) Hash(t *trace.Trace) uint64 {
	chosen := f.pre
	if f.fired {
		chosen = f.post
	}
	sites := make([]string, 0, len(chosen))
	for y, ok := range chosen {
		if ok {
			sites = append(sites, t.Str(trace.Sym(y)))
		}
	}
	sort.Strings(sites)
	return hashSiteSet(sites)
}

// markSym sets s[y], growing the slice (amortized doubling) as new symbols
// appear mid-stream.
func markSym(s *[]bool, y trace.Sym) {
	if int(y) >= len(*s) {
		n := 2 * len(*s)
		if n <= int(y) {
			n = int(y) + 1
		}
		grown := make([]bool, n)
		copy(grown, *s)
		*s = grown
	}
	(*s)[y] = true
}

// hashSiteSet is FNV-1a over a sorted site set, with a 0xff separator folded
// in after each string.
func hashSiteSet(sites []string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, s := range sites {
		for j := 0; j < len(s); j++ {
			h ^= uint64(s[j])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	return h
}

// postFaultCoverage hashes the set of static sites the system reached at or
// after the moment the fault fired — the materialized-trace form, now a thin
// wrapper over the streaming fold (one implementation, one hash).
func postFaultCoverage(tr *trace.Trace) uint64 {
	var f CoverageFold
	f.Window(tr, tr.Records)
	return f.Hash(tr)
}
