package campaign

import (
	"sort"
	"strconv"
	"strings"

	"fcatch/internal/core"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// Outcome classes of one injection run, from worst to benign.
const (
	OutcomeException = "exception"
	OutcomeFatal     = "fatal"
	OutcomeHang      = "hang"
	OutcomeCheck     = "check"
	OutcomeOK        = "ok"
)

// Verdicts the engine assigns to one run.
const (
	// VerdictFailure: the run failed and the failure is not an expected
	// reaction — a bug manifested.
	VerdictFailure = "failure"
	// VerdictExpected: the run failed but the symptom matches the workload's
	// expected behaviors (the "Exp." column of Table 3).
	VerdictExpected = "expected"
	// VerdictTolerated: the system absorbed the fault and finished correctly.
	VerdictTolerated = "tolerated"
)

// Signature is the behavior fingerprint of one injection run: the outcome
// class, the symptom fingerprint (shared with the random baseline, so
// "distinct failures found" means the same thing for every strategy), and a
// hash of the site set reached after the fault fired (the coverage component;
// 0 when the run was untraced). Two runs with equal signatures exercised the
// same failure mode — or the same tolerance path.
type Signature struct {
	Outcome  string `json:"outcome"`
	Symptom  string `json:"symptom,omitempty"`
	Coverage uint64 `json:"coverage,omitempty"`
	Expected bool   `json:"expected,omitempty"`
}

// Failure reports whether this signature counts as a distinct-failure
// candidate (failed, and not an expected reaction).
func (s Signature) Failure() bool { return s.Outcome != OutcomeOK && !s.Expected }

// BehaviorKey is the dedupe-corpus identity: outcome + symptom + coverage.
// Novelty of this key is what the coverage-guided strategy reinvests in.
func (s Signature) BehaviorKey() string {
	return s.Outcome + "|" + s.Symptom + "|" + strconv.FormatUint(s.Coverage, 16)
}

// outcomeClass mirrors the triggering module's failure precedence: uncaught
// exceptions identify a failure more precisely than the fatal they log, which
// beats the hang they often also cause; checker complaints rank last.
func outcomeClass(out *sim.Outcome, checkErr error) string {
	switch {
	case len(out.UncaughtExceptions) > 0:
		return OutcomeException
	case len(out.FatalLogs) > 0:
		return OutcomeFatal
	case !out.Completed:
		return OutcomeHang
	case checkErr != nil:
		return OutcomeCheck
	}
	return OutcomeOK
}

// Symptom fingerprints a failed run coarsely enough that repeated
// manifestations of one bug collapse to one signature, while different hang
// shapes stay distinct. Fatal logs and exceptions identify a failure more
// precisely than the hang they often also cause, so they take precedence.
// (This is the Section 8.3 baseline's signature function, hoisted here so
// every campaign strategy is measured with the same yardstick.)
func Symptom(out *sim.Outcome, checkErr error) string {
	if len(out.FatalLogs) > 0 {
		return "fatal:" + stripPID(out.FatalLogs[0])
	}
	if len(out.UncaughtExceptions) > 0 {
		return "exception:" + stripPID(out.UncaughtExceptions[0])
	}
	if len(out.Hung) > 0 {
		// Fingerprint by the first hung main thread (cascaded waiters vary
		// run to run and would fragment one bug into many signatures).
		first := out.Hung[0]
		for _, h := range out.Hung {
			if h.Name == "main" && (first.Name != "main" || h.Thread < first.Thread) {
				first = h
			}
		}
		where := first.Reason
		if where == "" {
			where = first.Site
		}
		return "hang:" + roleOnly(first.PID) + "/" + first.Name + "@" + stripPID(where)
	}
	if checkErr != nil {
		return "check:" + checkErr.Error()
	}
	return "unknown"
}

// ExpectedSymptom reports whether the symptom matches one of the workload's
// expected fault reactions (e.g. HMaster legitimately waits forever when
// every regionserver is gone).
func ExpectedSymptom(w core.Workload, symptom string) bool {
	for _, pat := range w.ExpectedBehaviors() {
		if pat != "" && strings.Contains(symptom, pat) {
			return true
		}
	}
	return false
}

func roleOnly(pid string) string {
	if i := strings.IndexByte(pid, '#'); i >= 0 {
		return pid[:i]
	}
	return pid
}

// stripPID removes "#N" incarnation suffixes so signatures are stable across
// restarts.
func stripPID(s string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] == '#' {
			i++
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// signatureOf builds the full behavior signature for one finished run.
func signatureOf(w core.Workload, out *sim.Outcome, checkErr error, tr *trace.Trace) Signature {
	sig := Signature{Outcome: outcomeClass(out, checkErr)}
	if sig.Outcome != OutcomeOK {
		sig.Symptom = Symptom(out, checkErr)
		sig.Expected = ExpectedSymptom(w, sig.Symptom)
	}
	if tr != nil {
		sig.Coverage = postFaultCoverage(tr)
	}
	return sig
}

// postFaultCoverage hashes the set of static sites the system reached at or
// after the moment the fault fired — the "sites reached post-injection" part
// of the behavior signature. The fault moment is the first crash bookkeeping
// record or the first dropped send; if neither exists (the fault never
// fired), the whole run counts.
func postFaultCoverage(tr *trace.Trace) uint64 {
	var fireTS int64 = -1
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Kind == trace.KCrash || r.HasFlag(trace.FlagDropped) {
			fireTS = r.TS
			break
		}
	}
	// Dedupe by Sym (a flat-slice probe per record), then resolve and sort the
	// distinct site strings — the hash input is byte-identical to the old
	// string-set implementation.
	seen := make([]bool, tr.NumSyms())
	n := 0
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.TS >= fireTS && r.Site != trace.NoSym && r.Kind != trace.KCrash && r.Kind != trace.KRestart {
			if !seen[r.Site] {
				seen[r.Site] = true
				n++
			}
		}
	}
	sites := make([]string, 0, n)
	for y, ok := range seen {
		if ok {
			sites = append(sites, tr.Str(trace.Sym(y)))
		}
	}
	sort.Strings(sites)
	// FNV-1a over the sorted site set.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, s := range sites {
		for j := 0; j < len(s); j++ {
			h ^= uint64(s[j])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	return h
}
