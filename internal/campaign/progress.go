package campaign

import (
	"encoding/json"
	"io"
	"time"

	"fcatch/internal/obs"
)

// Progress is a point-in-time view of a running campaign, handed to
// Config.Progress after every committed batch. It is derived state only:
// consuming it (printing progress lines, updating dashboards) cannot change
// the corpus, which stays byte-identical with or without a progress hook.
type Progress struct {
	Workload string
	Strategy string
	// Runs committed so far, out of Budget.
	Runs   int
	Budget int
	// Batches committed, and how their runs were satisfied: Cached answers
	// came from the resumed prior corpus, Executed ran live.
	Batches  int
	Cached   int
	Executed int
	// Novel counts runs whose behavior signature was new to the corpus.
	Novel int
	// FailureRuns and DistinctFailures mirror the Result fields.
	FailureRuns      int
	DistinctFailures int
	// Elapsed is wall-clock since the campaign's first batch was proposed.
	Elapsed time.Duration
}

// RunsPerSec is the committed-run throughput so far (0 before any time has
// passed).
func (p Progress) RunsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Runs) / p.Elapsed.Seconds()
}

// DedupeRate is the fraction of committed runs whose behavior signature had
// been seen before — how much of the budget re-observed known behavior.
func (p Progress) DedupeRate() float64 {
	if p.Runs == 0 {
		return 0
	}
	return 1 - float64(p.Novel)/float64(p.Runs)
}

// Manifest is the machine-readable end-of-run record a campaign CLI writes
// with -metrics: the campaign's identity and totals, throughput, and the full
// metrics snapshot. Wall-clock-derived fields live only here — the corpus
// never contains them.
type Manifest struct {
	Workload       string         `json:"workload"`
	Strategy       string         `json:"strategy"`
	Seed           int64          `json:"seed"`
	Budget         int            `json:"budget"`
	Runs           int            `json:"runs"`
	CachedRuns     int            `json:"cached_runs"`
	ExecutedRuns   int            `json:"executed_runs"`
	FailureRuns    int            `json:"failure_runs"`
	UniqueFailures int            `json:"unique_failures"`
	NovelBehaviors int            `json:"novel_behaviors"`
	SpacePoints    int            `json:"space_points"`
	Failures       map[string]int `json:"failures,omitempty"`
	ElapsedNs      int64          `json:"elapsed_ns"`
	RunsPerSec     float64        `json:"runs_per_sec"`
	DedupeRate     float64        `json:"dedupe_rate"`
	Metrics        obs.Snapshot   `json:"metrics"`
}

// NewManifest assembles the end-of-run manifest for a finished campaign.
func NewManifest(res *Result, budget int, elapsed time.Duration, reg *obs.Registry) Manifest {
	m := Manifest{
		Workload:       res.Workload,
		Strategy:       res.Strategy,
		Seed:           res.Seed,
		Budget:         budget,
		Runs:           res.Runs,
		CachedRuns:     res.CachedRuns,
		ExecutedRuns:   res.ExecutedRuns,
		FailureRuns:    res.FailureRuns,
		UniqueFailures: res.UniqueFailures(),
		NovelBehaviors: res.NovelBehaviors,
		SpacePoints:    res.SpacePoints,
		Failures:       res.Failures,
		ElapsedNs:      elapsed.Nanoseconds(),
		Metrics:        reg.Snapshot(),
	}
	p := Progress{Runs: res.Runs, Novel: res.NovelBehaviors, Elapsed: elapsed}
	m.RunsPerSec = p.RunsPerSec()
	m.DedupeRate = p.DedupeRate()
	return m
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
