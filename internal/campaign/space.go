package campaign

import (
	"fmt"
	"io"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// SiteInfo summarizes one static op site of the fault-free trace.
type SiteInfo struct {
	Site string `json:"site"`
	// Count is how many times the site executed in the fault-free run.
	Count int `json:"count"`
	// Sendable: some execution of the site is a message send or RPC call, so
	// kernel-level drops apply.
	Sendable bool `json:"sendable,omitempty"`
	// Droppable: some execution uses a droppable verb, so application-level
	// drops apply too.
	Droppable bool `json:"droppable,omitempty"`
	// FirstTS is the logical timestamp of the site's first execution; sites
	// are ordered by it, which gives the coverage-guided strategy its notion
	// of "nearby" sites.
	FirstTS int64 `json:"first_ts"`
}

// Space is the fault-space model: every candidate injection point enumerated
// from a fault-free trace — op sites × {before, after} × {node crash, kernel
// drop, app drop} × occurrence — instead of raw step numbers. Enumeration is
// a pure function of the trace, so the space (and every strategy walking it)
// is deterministic.
type Space struct {
	// Target is the workload's crash-target role (used by step plans).
	Target string
	// BaseSteps is the fault-free execution length in scheduler steps (the
	// sample space of the legacy random strategy).
	BaseSteps int64
	// Sites in first-execution order.
	Sites []SiteInfo
	// Points are the candidate plans, in deterministic exploration order:
	// wave o ∈ 1..maxOcc visits every site's o-th occurrence (trace order)
	// with each applicable action, so early budget spreads across all sites
	// before re-visiting any.
	Points []Plan

	siteOrd map[string]int
}

// maxOccurrenceDefault caps how many occurrences of one site are enumerated;
// later occurrences of hot sites rarely expose new behavior and would bloat
// the space quadratically.
const maxOccurrenceDefault = 3

// NewSpace enumerates the fault space of a traced fault-free run.
func NewSpace(tr *trace.Trace, baseSteps int64, target string, maxOcc int) *Space {
	f := newSpaceFold(baseSteps, target)
	f.Window(tr, tr.Records)
	return f.finish(maxOcc)
}

// NewSpaceFromSource enumerates the fault space by draining a streaming trace
// source window by window — same Space as NewSpace over the materialized
// trace, at O(batch + sites) peak memory. The source is closed.
func NewSpaceFromSource(src trace.Source, baseSteps int64, target string, maxOcc int) (*Space, error) {
	f := newSpaceFold(baseSteps, target)
	defer src.Close()
	t := src.Trace()
	for {
		win, err := src.Next()
		if err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		f.Window(t, win)
	}
	return f.finish(maxOcc), nil
}

// spaceFold accumulates per-site statistics from streamed record windows; its
// Window method is a trace.WindowFn, so the engine's traced fault-free run
// can enumerate the space while discarding its records.
type spaceFold struct {
	sp *Space
	// Per-Sym ordinal table for the enumeration loop (one slice probe per
	// record, grown as symbols appear mid-stream); the string-keyed siteOrd
	// stays for SiteOrdinal's public API and is filled once per distinct site.
	ordBySym []int
}

func newSpaceFold(baseSteps int64, target string) *spaceFold {
	return &spaceFold{sp: &Space{Target: target, BaseSteps: baseSteps, siteOrd: map[string]int{}}}
}

// Window folds one window of records into the site statistics (a
// trace.WindowFn — safe to call with a reused, non-retained window slice).
func (f *spaceFold) Window(t *trace.Trace, recs []trace.Record) {
	sp := f.sp
	for i := range recs {
		r := &recs[i]
		if r.Site == trace.NoSym || r.Kind == trace.KCrash || r.Kind == trace.KRestart {
			continue
		}
		for int(r.Site) >= len(f.ordBySym) {
			n := 2 * len(f.ordBySym)
			if n <= int(r.Site) {
				n = int(r.Site) + 1
			}
			grown := make([]int, n)
			copy(grown, f.ordBySym)
			for j := len(f.ordBySym); j < n; j++ {
				grown[j] = -1
			}
			f.ordBySym = grown
		}
		ord := f.ordBySym[r.Site]
		if ord < 0 {
			ord = len(sp.Sites)
			f.ordBySym[r.Site] = ord
			site := t.Str(r.Site)
			sp.siteOrd[site] = ord
			sp.Sites = append(sp.Sites, SiteInfo{Site: site, FirstTS: r.TS})
		}
		si := &sp.Sites[ord]
		si.Count++
		if r.Kind == trace.KMsgSend || r.Kind == trace.KRPCCall {
			si.Sendable = true
			if r.HasFlag(trace.FlagDroppable) {
				si.Droppable = true
			}
		}
	}
}

// finish enumerates the candidate plans over the accumulated sites and
// returns the completed space.
func (f *spaceFold) finish(maxOcc int) *Space {
	if maxOcc <= 0 {
		maxOcc = maxOccurrenceDefault
	}
	sp := f.sp
	for occ := 1; occ <= maxOcc; occ++ {
		for _, si := range sp.Sites {
			if si.Count < occ {
				continue
			}
			sp.Points = append(sp.Points,
				sitePoint(si.Site, occ, WhenBefore, ActionNodeCrash),
				sitePoint(si.Site, occ, WhenAfter, ActionNodeCrash))
			if si.Sendable {
				sp.Points = append(sp.Points,
					sitePoint(si.Site, occ, WhenBefore, ActionKernelDrop))
			}
			if si.Droppable {
				sp.Points = append(sp.Points,
					sitePoint(si.Site, occ, WhenBefore, ActionAppDrop))
			}
		}
	}
	return sp
}

// sitePoint builds a single-event site-anchored candidate plan.
func sitePoint(site string, occ int, when, action string) Plan {
	return Plan{FaultSpec: sim.FaultSpec{Site: site, Occurrence: occ, When: when, Action: action}}
}

// SiteOrdinal returns the first-execution rank of a site (-1 if unknown),
// the distance metric behind the coverage-guided neighborhood boost.
func (sp *Space) SiteOrdinal(site string) int {
	if ord, ok := sp.siteOrd[site]; ok {
		return ord
	}
	return -1
}

// Composite-scenario names accepted by Config.Scenarios / AppendScenarios.
const (
	// ScenarioRecoveryCrash chains a node crash with a second crash landing
	// inside the first victim's recovery window: the crashed role is
	// restarted (per-event restart override, so even roles outside the
	// workload's restart map recover) and its fresh incarnation is crashed
	// again shortly after it comes back.
	ScenarioRecoveryCrash = "crash+recovery-crash"
	// ScenarioCrashDrop chains a node crash with a kernel-level drop of the
	// next sendable site, so the surviving nodes both lose a peer and a
	// message while coping with the loss.
	ScenarioCrashDrop = "crash+drop"
)

// ScenarioNames lists the composite-scenario enumerators in canonical order.
func ScenarioNames() []string { return []string{ScenarioRecoveryCrash, ScenarioCrashDrop} }

// recoveryCrashGap is how long after the first victim's restart delay the
// follow-up crash lands — far enough in for recovery to be underway, close
// enough to hit its window.
const recoveryCrashGap = 8

// AppendScenarios appends composite-scenario candidate plans to the space,
// after the single-fault points (so a scenarios-off campaign's space is an
// exact prefix and its corpus is untouched). restart is the workload's
// restart map; the recovery-crash scenario derives its timing from the
// slowest mapped restart (default 40 ticks when the map is empty).
func (sp *Space) AppendScenarios(names []string, restart map[string]int64) error {
	want := map[string]bool{}
	for _, n := range names {
		switch n {
		case ScenarioRecoveryCrash, ScenarioCrashDrop:
			want[n] = true
		case "":
		default:
			return fmt.Errorf("campaign: unknown scenario %q (have %s)",
				n, strings.Join(ScenarioNames(), ", "))
		}
	}
	if want[ScenarioRecoveryCrash] {
		restartDelay := int64(40)
		for _, d := range restart {
			if d > restartDelay {
				restartDelay = d
			}
		}
		gap := restartDelay + recoveryCrashGap
		for _, si := range sp.Sites {
			rd := restartDelay
			sp.Points = append(sp.Points, Plan{
				FaultSpec: sim.FaultSpec{Site: si.Site, Occurrence: 1, When: WhenBefore,
					Action: ActionNodeCrash, Restart: &rd},
				Then: []sim.FaultSpec{{Delay: gap, Action: ActionNodeCrash}},
			})
		}
	}
	if want[ScenarioCrashDrop] {
		for i, si := range sp.Sites {
			drop := ""
			for j := i + 1; j < len(sp.Sites); j++ {
				if sp.Sites[j].Sendable {
					drop = sp.Sites[j].Site
					break
				}
			}
			if drop == "" {
				continue
			}
			sp.Points = append(sp.Points, Plan{
				FaultSpec: sim.FaultSpec{Site: si.Site, Occurrence: 1, When: WhenBefore,
					Action: ActionNodeCrash},
				Then: []sim.FaultSpec{{Site: drop, Occurrence: 1, When: WhenBefore,
					Action: ActionKernelDrop}},
			})
		}
	}
	return nil
}
