package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	g := New()
	c := g.Counter("a/b")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if g.Counter("a/b") != c {
		t.Fatal("same name must return the same cell")
	}
	if g.Counter("other") == c {
		t.Fatal("different names must return different cells")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var g *Registry
	if g.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	g.Counter("x").Add(3)
	g.Histogram("y").Observe(9)
	end := g.Span("z")
	end()
	g.ObserveSpan("z", time.Millisecond)
	snap := g.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	g := New()
	h := g.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1010 { // -5 clamps to 0
		t.Fatalf("sum = %d, want 1010", h.Sum())
	}
	st := g.Snapshot().Histograms["lat"]
	// Buckets: 0 -> le 0 (two: 0 and clamped -5), 1 -> le 1, {2,3} -> le 3,
	// 4 -> le 7, 1000 -> le 1023.
	want := []HistBucket{{0, 2}, {1, 1}, {3, 2}, {7, 1}, {1023, 1}}
	if len(st.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", st.Buckets, want)
	}
	for i, b := range want {
		if st.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, st.Buckets[i], b)
		}
	}
}

func TestSpanAccumulates(t *testing.T) {
	g := New()
	g.ObserveSpan("phase", 3*time.Millisecond)
	g.ObserveSpan("phase", 5*time.Millisecond)
	end := g.Span("phase")
	end()
	s := g.Snapshot().Spans["phase"]
	if s.Count != 3 {
		t.Fatalf("span count = %d, want 3", s.Count)
	}
	if s.TotalNs < 8*int64(time.Millisecond) {
		t.Fatalf("span total = %dns, want >= 8ms", s.TotalNs)
	}
	if s.MaxNs < 5*int64(time.Millisecond) {
		t.Fatalf("span max = %dns, want >= 5ms", s.MaxNs)
	}
}

func TestConcurrentRecording(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := g.Counter("n")
			h := g.Histogram("h")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
				g.ObserveSpan("s", time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	snap := g.Snapshot()
	if snap.Counters["n"] != 8000 {
		t.Fatalf("counter = %d, want 8000", snap.Counters["n"])
	}
	if snap.Histograms["h"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", snap.Histograms["h"].Count)
	}
	if snap.Spans["s"].Count != 8000 {
		t.Fatalf("span count = %d, want 8000", snap.Spans["s"].Count)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		g := New()
		g.Counter("b").Add(2)
		g.Counter("a").Add(1)
		g.Histogram("h").Observe(5)
		return g
	}
	var x, y bytes.Buffer
	if err := build().WriteJSON(&x); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatalf("equal registries produced different JSON:\n%s\nvs\n%s", x.String(), y.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(x.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["a"] != 1 || snap.Counters["b"] != 2 {
		t.Fatalf("round-tripped counters: %+v", snap.Counters)
	}
}

// promSample matches one Prometheus text sample line.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="(\+Inf|[0-9]+)"\})? -?[0-9]+(\.[0-9]+)?$`)

func TestPrometheusTextParses(t *testing.T) {
	g := New()
	g.Counter("dist/leases/requeued").Add(2)
	g.ObserveSpan("detect/analysis/regular", 2*time.Millisecond)
	h := g.Histogram("dist/lease-latency-ns")
	h.Observe(1500)
	h.Observe(90000)
	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	var samples int
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("unparseable sample line %q in:\n%s", line, text)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no sample lines emitted")
	}
	for _, want := range []string{
		"fcatch_dist_leases_requeued_total 2",
		"fcatch_detect_analysis_regular_count 1",
		`fcatch_dist_lease_latency_ns_bucket{le="+Inf"} 2`,
		"fcatch_dist_lease_latency_ns_count 2",
		"fcatch_dist_lease_latency_ns_sum 91500",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
	// Histogram buckets must be cumulative and end at count.
	if !strings.Contains(text, `fcatch_dist_lease_latency_ns_bucket{le="2047"} 1`) ||
		!strings.Contains(text, `fcatch_dist_lease_latency_ns_bucket{le="131071"} 2`) {
		t.Errorf("histogram buckets not cumulative:\n%s", text)
	}
}

// BenchmarkDiscardCounterAdd pins the no-op cost model: one atomic add, zero
// allocations, on the shared discard cell a nil registry hands out.
func BenchmarkDiscardCounterAdd(b *testing.B) {
	var g *Registry
	c := g.Counter("hot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func TestDiscardCounterAddDoesNotAllocate(t *testing.T) {
	var g *Registry
	c := g.Counter("hot")
	allocs := testing.AllocsPerRun(100, func() { c.Inc(); _ = g.Span("x") })
	if allocs != 0 {
		t.Fatalf("nil-registry hot path allocates %v/op, want 0", allocs)
	}
}
