package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for a registry snapshot:
// counters become `<name>_total` counters, spans become `<name>_count` /
// `<name>_ns_total` / `<name>_ns_max` series, and histograms become native
// Prometheus histograms with cumulative `_bucket{le="..."}` series. Metric
// names are sanitized from the registry's slash-separated naming ("dist/
// leases/requeued" -> "fcatch_dist_leases_requeued").

// promName sanitizes a registry name into a legal Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_', and the fcatch_ prefix
// namespaces the series.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("fcatch_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry's snapshot in the Prometheus text
// format. Series are emitted in sorted name order, so equal registry states
// produce equal bytes.
func (g *Registry) WritePrometheus(w io.Writer) error {
	snap := g.Snapshot()
	var b strings.Builder

	for _, name := range sortedKeys(snap.Counters) {
		mn := promName(name) + "_total"
		fmt.Fprintf(&b, "# HELP %s Counter %q.\n# TYPE %s counter\n%s %d\n",
			mn, name, mn, mn, snap.Counters[name])
	}

	for _, name := range sortedKeys(snap.Spans) {
		s := snap.Spans[name]
		mn := promName(name)
		fmt.Fprintf(&b, "# HELP %s_count Completions of phase span %q.\n# TYPE %s_count counter\n%s_count %d\n",
			mn, name, mn, mn, s.Count)
		fmt.Fprintf(&b, "# HELP %s_ns_total Cumulative nanoseconds in phase span %q.\n# TYPE %s_ns_total counter\n%s_ns_total %d\n",
			mn, name, mn, mn, s.TotalNs)
		fmt.Fprintf(&b, "# HELP %s_ns_max Longest single span of phase %q in nanoseconds.\n# TYPE %s_ns_max gauge\n%s_ns_max %d\n",
			mn, name, mn, mn, s.MaxNs)
	}

	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		mn := promName(name)
		fmt.Fprintf(&b, "# HELP %s Histogram %q (power-of-two buckets).\n# TYPE %s histogram\n", mn, name, mn)
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", mn, bk.Le, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", mn, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", mn, h.Sum, mn, h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
