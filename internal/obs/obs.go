// Package obs is the pipeline's observability layer: named registries of
// atomic counters, bounded histograms, and monotonic phase spans, with
// deterministic JSON snapshots and Prometheus text output.
//
// The layer is strictly observe-only. Instrumented code produces byte-for-byte
// identical reports, corpora, and traces whether a registry is attached or
// not: metrics never feed back into scheduling, search, or detection, and
// every snapshot keeps wall-clock-derived values (span durations, histogram
// samples) separate from the deterministic counters.
//
// Cost model: a nil *Registry is the no-op default. Every accessor is
// nil-safe — Counter/Histogram return a shared discard cell, so an
// instrumented hot path pays at most one atomic add per event with no nil
// check or map lookup of its own (callers hoist the cell out of their loops);
// Span returns a shared no-op func with no closure allocation. Hot loops that
// must stay zero-alloc (the simulator step path) are not instrumented at all.
package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a bounded power-of-two histogram of non-negative int64 values
// (the unit — nanoseconds, bytes, plans — is the metric name's contract).
// Bucket i counts values whose upper bound is 2^i-1; 65 fixed buckets cover
// the whole int64 range, so Observe never allocates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [65]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count is the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum is the total of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// spanCell accumulates one phase span's statistics.
type spanCell struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds
}

func (s *spanCell) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s.count.Add(1)
	s.total.Add(ns)
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Registry is a named set of counters, histograms, and phase spans. The zero
// value is not usable; construct with New. A nil *Registry is the package's
// no-op default: every method is nil-safe and hands back shared discard
// cells, so instrumented code needs no "is observability on?" branches.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	spans    map[string]*spanCell
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*spanCell),
	}
}

// Enabled reports whether metrics recorded against this registry are kept.
func (g *Registry) Enabled() bool { return g != nil }

// Shared discard cells for the nil registry: adds land on real atomics (one
// atomic add, the documented worst case) but are never read back.
var (
	discardCounter Counter
	discardHist    Histogram
	nopEnd         = func() {}
)

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns the shared discard counter.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return &discardCounter
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.counters[name]
	if !ok {
		c = new(Counter)
		g.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. On a nil
// registry it returns the shared discard histogram.
func (g *Registry) Histogram(name string) *Histogram {
	if g == nil {
		return &discardHist
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.hists[name]
	if !ok {
		h = new(Histogram)
		g.hists[name] = h
	}
	return h
}

// Span starts a monotonic phase span and returns the func that ends it:
//
//	end := reg.Span("detect/analysis/regular")
//	... phase work ...
//	end()
//
// Spans from concurrent goroutines accumulate into the same cell. On a nil
// registry the returned func is a shared no-op (no closure allocation).
func (g *Registry) Span(name string) func() {
	if g == nil {
		return nopEnd
	}
	cell := g.spanCell(name)
	start := time.Now()
	return func() { cell.record(time.Since(start).Nanoseconds()) }
}

// ObserveSpan records an externally measured duration under a span name (for
// phases whose timing already exists, e.g. the async index builder's
// BuildTime).
func (g *Registry) ObserveSpan(name string, d time.Duration) {
	if g == nil {
		return
	}
	g.spanCell(name).record(d.Nanoseconds())
}

func (g *Registry) spanCell(name string) *spanCell {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.spans[name]
	if !ok {
		s = new(spanCell)
		g.spans[name] = s
	}
	return s
}

// SpanStat is one phase span's accumulated statistics.
type SpanStat struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// HistBucket is one non-empty histogram bucket: Count values were ≤ Le.
type HistBucket struct {
	Le    int64 `json:"le"` // inclusive upper bound (2^i - 1)
	Count int64 `json:"count"`
}

// HistStat is one histogram's snapshot. Buckets are ascending by bound and
// non-cumulative; empty buckets are omitted.
type HistStat struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, the unit `-metrics
// out.json` serializes. Map keys marshal sorted, so two snapshots with equal
// values produce equal bytes.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Spans      map[string]SpanStat `json:"spans,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry snapshots
// empty.
func (g *Registry) Snapshot() Snapshot {
	snap := Snapshot{}
	if g == nil {
		return snap
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.counters) > 0 {
		snap.Counters = make(map[string]int64, len(g.counters))
		for name, c := range g.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(g.spans) > 0 {
		snap.Spans = make(map[string]SpanStat, len(g.spans))
		for name, s := range g.spans {
			snap.Spans[name] = SpanStat{Count: s.count.Load(), TotalNs: s.total.Load(), MaxNs: s.max.Load()}
		}
	}
	if len(g.hists) > 0 {
		snap.Histograms = make(map[string]HistStat, len(g.hists))
		for name, h := range g.hists {
			st := HistStat{Count: h.count.Load(), Sum: h.sum.Load()}
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n > 0 {
					st.Buckets = append(st.Buckets, HistBucket{Le: bucketBound(i), Count: n})
				}
			}
			snap.Histograms[name] = st
		}
	}
	return snap
}

// bucketBound is bucket i's inclusive upper bound: 2^i - 1, saturating at
// MaxInt64 (buckets 63 and 64 both saturate; Len64 puts MaxInt64 in 63 and
// nothing in 64, so the saturated bound stays unique among non-empty buckets).
func bucketBound(i int) int64 {
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<i - 1
}

// WriteJSON writes the registry's snapshot as indented JSON.
func (g *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(g.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
