package core_test

import (
	"testing"
	"time"

	"fcatch/internal/apps/toy"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/inject"
	"fcatch/internal/trace"
)

func TestObserveProducesCorrectRunPair(t *testing.T) {
	obs, err := core.Observe(toy.New(), core.DefaultOptions())
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if obs.FaultFree == nil || obs.Faulty == nil {
		t.Fatal("missing traces")
	}
	if obs.Faulty.CrashedPID == "" {
		t.Fatal("faulty run recorded no crash")
	}
	if obs.FaultFree.Len() == 0 || obs.Faulty.Len() == 0 {
		t.Fatal("empty traces")
	}
	// The faulty run must have seen the recovery incarnation.
	found := false
	for _, pid := range obs.Faulty.PIDs {
		if pid == "worker#2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no recovery process in faulty run; pids=%v", obs.Faulty.PIDs)
	}
}

func TestCheckpointPairSharesPrefix(t *testing.T) {
	obs, err := core.Observe(toy.New(), core.DefaultOptions())
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	tf, ty := obs.FaultFree, obs.Faulty
	n := 0
	for i := 0; i < tf.Len() && i < ty.Len(); i++ {
		a, b := tf.Records[i], ty.Records[i]
		if a.TS >= ty.CrashStep || b.TS >= ty.CrashStep {
			break
		}
		if a.Kind != b.Kind || tf.Str(a.Res) != ty.Str(b.Res) || tf.Str(a.PID) != ty.Str(b.PID) || tf.Str(a.Site) != ty.Str(b.Site) {
			t.Fatalf("prefix diverges at record %d:\n  fault-free: %s\n  faulty:     %s", i, tf.Format(&a), ty.Format(&b))
		}
		n++
	}
	if n == 0 {
		t.Fatal("no shared prefix at all")
	}
}

func TestDeterministicReplay(t *testing.T) {
	opts := core.DefaultOptions()
	o1, err := core.Observe(toy.New(), opts)
	if err != nil {
		t.Fatalf("Observe#1: %v", err)
	}
	o2, err := core.Observe(toy.New(), opts)
	if err != nil {
		t.Fatalf("Observe#2: %v", err)
	}
	if o1.FaultFree.Len() != o2.FaultFree.Len() {
		t.Fatalf("fault-free traces differ in length: %d vs %d", o1.FaultFree.Len(), o2.FaultFree.Len())
	}
	for i := range o1.FaultFree.Records {
		a, b := o1.FaultFree.Format(&o1.FaultFree.Records[i]), o2.FaultFree.Format(&o2.FaultFree.Records[i])
		if a != b {
			t.Fatalf("record %d differs:\n  %s\n  %s", i, a, b)
		}
	}
	if o1.CrashStep != o2.CrashStep {
		t.Fatalf("crash steps differ: %d vs %d", o1.CrashStep, o2.CrashStep)
	}
}

func TestDetectFindsPlantedToyBugs(t *testing.T) {
	res, err := core.Detect(toy.New(), core.DefaultOptions())
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}

	var haveCR, haveCRec *detect.Report
	for _, r := range res.Reports {
		t.Logf("report: %s", r)
		if r.Type == detect.CrashRegular && r.OpsDesc == "Signal vs Wait" && r.ResClass == "cv:worker-ready" {
			haveCR = r
		}
		if r.Type == detect.CrashRecovery && r.ResClass == "heap:Task#.committed" {
			haveCRec = r
		}
	}
	if haveCR == nil {
		t.Error("planted crash-regular bug (worker-ready signal/wait) not reported")
	} else {
		if haveCR.WPrime == nil {
			t.Error("crash-regular report missing W'")
		} else if haveCR.WPrime.PID != "worker#1" {
			t.Errorf("W' should be on the worker, got %s", haveCR.WPrime.PID)
		}
	}
	if haveCRec == nil {
		t.Error("planted crash-recovery bug (Task.committed) not reported")
	}

	// The timed ack wait must have been pruned, not reported.
	for _, r := range res.Reports {
		if r.ResClass == "cv:server-ack" {
			t.Errorf("timeout-protected wait was reported: %s", r)
		}
	}
	if res.Regular.Pruned.WaitTimeout < 1 {
		t.Errorf("expected >=1 wait-timeout pruned, got %d", res.Regular.Pruned.WaitTimeout)
	}
	// /job/status is reset before read -> dependence pruning; /job/note has
	// no impact -> impact pruning.
	if res.Recovery.Pruned.Dependence < 1 {
		t.Errorf("expected >=1 dependence-pruned pair, got %+v", res.Recovery.Pruned)
	}
	if res.Recovery.Pruned.Impact < 1 {
		t.Errorf("expected >=1 impact-pruned pair, got %+v", res.Recovery.Pruned)
	}
}

func TestTriggerConfirmsToyBugs(t *testing.T) {
	w := toy.New()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	tg := inject.NewTriggerer(w, core.DefaultOptions().Seed)
	for _, r := range res.Reports {
		out := tg.Trigger(r)
		t.Logf("%s -> %s (%s) actions=%v", r, out.Class, out.FailureKind, out.ByAction)
		switch {
		case r.ResClass == "cv:worker-ready":
			if out.Class != inject.TrueBug {
				t.Errorf("crash-regular bug not confirmed: %s", out.Detail)
			}
			if !out.ByAction["node-crash"] || !out.ByAction["kernel-drop"] {
				t.Errorf("expected crash and kernel-drop to trigger, got %v", out.ByAction)
			}
		case r.ResClass == "heap:Task#.committed":
			if out.Class != inject.TrueBug {
				t.Errorf("crash-recovery bug not confirmed: %s", out.Detail)
			}
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	obs, err := core.Observe(toy.New(), core.DefaultOptions())
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	path := t.TempDir() + "/trace.gob.gz"
	if err := obs.FaultFree.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := trace.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != obs.FaultFree.Len() {
		t.Fatalf("round-trip length mismatch: %d vs %d", got.Len(), obs.FaultFree.Len())
	}
	if got.CrashStep != obs.FaultFree.CrashStep {
		t.Fatal("round-trip lost metadata")
	}
}

// TestTimingsStayWithinWallClock pins the Table 4 timing attribution: with
// the pipeline fully sequential (Parallelism=1, builder feed time subtracted
// from the tracing columns), the per-stage timings must sum to no more than
// the measured wall clock around Detect.
func TestTimingsStayWithinWallClock(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Parallelism = 1
	start := time.Now()
	res, err := core.Detect(toy.New(), opts)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	wall := time.Since(start)

	tm := res.Observation.Timings
	for name, d := range map[string]time.Duration{
		"TracingFaultFree": tm.TracingFaultFree,
		"TracingFaulty":    tm.TracingFaulty,
		"AnalysisRegular":  tm.AnalysisRegular,
		"AnalysisRecovery": tm.AnalysisRecovery,
	} {
		if d < 0 {
			t.Errorf("%s is negative: %v", name, d)
		}
	}
	// A small epsilon absorbs clock granularity on the per-stage reads.
	if sum := tm.Overall(); sum > wall+5*time.Millisecond {
		t.Errorf("stage timings sum to %v, exceeding the %v wall clock", sum, wall)
	}
}
