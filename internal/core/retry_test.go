package core_test

import (
	"errors"
	"testing"

	"fcatch/internal/apps/toy"
	"fcatch/internal/core"
	"fcatch/internal/sim"
)

// flakyFirstFaulty wraps a workload so its first faulty attempt fails the
// correctness check, forcing observe's retry path. Tune records, per run,
// the requested crash step and whether a trace-window hook was attached.
type flakyFirstFaulty struct {
	core.Workload
	checks        int
	faultySteps   []int64 // requested CrashStep of each faulty attempt
	faultyWindows int     // faulty runs that had OnTraceWindow set
	freeWindows   int     // fault-free runs that had OnTraceWindow set
}

func (f *flakyFirstFaulty) Tune(cfg *sim.Config) {
	f.Workload.Tune(cfg)
	if cfg.Plan != nil {
		f.faultySteps = append(f.faultySteps, cfg.Plan.Scenario()[0].CrashStep)
		if cfg.OnTraceWindow != nil {
			f.faultyWindows++
		}
	} else if cfg.OnTraceWindow != nil {
		f.freeWindows++
	}
}

func (f *flakyFirstFaulty) Check(c *sim.Cluster, out *sim.Outcome) error {
	f.checks++
	if f.checks == 2 { // check #1 is the fault-free run
		return errors.New("synthetic first-attempt failure")
	}
	return f.Workload.Check(c, out)
}

// TestObserveRetryNudgesCrashStep pins the retry loop's contract: a faulty
// attempt that fails its correctness check is retried at a nudged crash
// step, and faulty attempts never stream trace windows — so retries that get
// thrown away never pay for happens-before graph indexing (only the fault-
// free run builds its graph during execution).
func TestObserveRetryNudgesCrashStep(t *testing.T) {
	w := &flakyFirstFaulty{Workload: toy.New()}
	obs, gf, gy, err := core.ObserveIndexed(w, core.DefaultOptions())
	if err != nil {
		t.Fatalf("ObserveIndexed: %v", err)
	}
	if gf == nil || gy == nil {
		t.Fatal("missing happens-before graphs")
	}

	total := obs.FaultFreeOutcome.Steps
	step0 := int64(float64(total) * 0.12) // PhaseBegin's fraction
	want := []int64{step0, step0 + total/23 + 7}
	if len(w.faultySteps) != len(want) {
		t.Fatalf("faulty attempts = %d (%v), want %d", len(w.faultySteps), w.faultySteps, len(want))
	}
	for i, s := range want {
		if w.faultySteps[i] != s {
			t.Fatalf("attempt %d requested step %d, want %d (nudge broken)", i, w.faultySteps[i], s)
		}
	}

	if w.freeWindows != 1 {
		t.Fatalf("fault-free run streamed %d window hooks, want 1", w.freeWindows)
	}
	if w.faultyWindows != 0 {
		t.Fatalf("%d faulty attempt(s) had a window hook — failed attempts would pay for indexing", w.faultyWindows)
	}
	if len(obs.CrashedPIDs) == 0 {
		t.Fatal("observation recorded no crashed PIDs")
	}
}
