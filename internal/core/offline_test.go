package core_test

import (
	"path/filepath"
	"testing"

	"fcatch/internal/apps/mapreduce"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/hb"
	"fcatch/internal/trace"
)

// TestOfflineDetectionFromSavedTraces validates the CLI's two-phase
// workflow: observe + save the trace pair, then reload from disk and run
// both detectors — the reports must match the in-memory pipeline exactly.
func TestOfflineDetectionFromSavedTraces(t *testing.T) {
	w := mapreduce.NewMR1()
	obs, err := core.Observe(w, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}

	dir := t.TempDir()
	ffPath := filepath.Join(dir, "ff.gob.gz")
	fyPath := filepath.Join(dir, "fy.gob.gz")
	if err := obs.FaultFree.Save(ffPath); err != nil {
		t.Fatal(err)
	}
	if err := obs.Faulty.Save(fyPath); err != nil {
		t.Fatal(err)
	}

	ff, err := trace.Load(ffPath)
	if err != nil {
		t.Fatal(err)
	}
	fy, err := trace.Load(fyPath)
	if err != nil {
		t.Fatal(err)
	}

	live := detect.DetectRegular(hb.New(obs.FaultFree), w.Name())
	loaded := detect.DetectRegular(hb.New(ff), w.Name())
	if len(live.Reports) != len(loaded.Reports) || live.Pruned != loaded.Pruned {
		t.Fatalf("crash-regular detection diverges across the disk round trip: %d vs %d reports",
			len(live.Reports), len(loaded.Reports))
	}
	for i := range live.Reports {
		if live.Reports[i].Key() != loaded.Reports[i].Key() {
			t.Fatalf("report %d differs:\n  live:   %s\n  loaded: %s", i, live.Reports[i], loaded.Reports[i])
		}
	}

	liveRec := detect.DetectRecovery(hb.New(obs.FaultFree), hb.New(obs.Faulty), w.Name())
	loadedRec := detect.DetectRecovery(hb.New(ff), hb.New(fy), w.Name())
	if len(liveRec.Reports) != len(loadedRec.Reports) || liveRec.Pruned != loadedRec.Pruned {
		t.Fatalf("crash-recovery detection diverges across the disk round trip: %d vs %d reports",
			len(liveRec.Reports), len(loadedRec.Reports))
	}
	for i := range liveRec.Reports {
		a, b := liveRec.Reports[i], loadedRec.Reports[i]
		if a.Key() != b.Key() || a.WInFaultyRun != b.WInFaultyRun || a.W.Occurrence != b.W.Occurrence {
			t.Fatalf("recovery report %d differs:\n  live:   %s\n  loaded: %s", i, a, b)
		}
	}
}
