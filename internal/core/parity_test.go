package core_test

import (
	"testing"

	"fcatch/internal/apps/cassandra"
	"fcatch/internal/apps/hbase"
	"fcatch/internal/apps/mapreduce"
	"fcatch/internal/apps/zookeeper"
	"fcatch/internal/core"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

func allWorkloads() []core.Workload {
	return []core.Workload{
		cassandra.New(), hbase.NewHB1(), hbase.NewHB2(),
		mapreduce.NewMR1(), mapreduce.NewMR2(), zookeeper.New(),
	}
}

// TestCheckpointPairPropertyAllWorkloads verifies the substitution that
// stands in for the paper's VM checkpointing on every benchmark: the
// fault-free and faulty traces must agree record-for-record up to the crash
// step (identical prefix, identical resource IDs).
func TestCheckpointPairPropertyAllWorkloads(t *testing.T) {
	for _, w := range allWorkloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			obs, err := core.Observe(w, core.DefaultOptions())
			if err != nil {
				t.Fatalf("Observe: %v", err)
			}
			tf, ty := obs.FaultFree, obs.Faulty
			if ty.CrashedPID == "" || ty.CrashStep <= 0 {
				t.Fatalf("faulty run lacks crash metadata: pid=%q step=%d", ty.CrashedPID, ty.CrashStep)
			}
			shared := 0
			for i := 0; i < tf.Len() && i < ty.Len(); i++ {
				a, b := &tf.Records[i], &ty.Records[i]
				if a.TS >= ty.CrashStep || b.TS >= ty.CrashStep {
					break
				}
				if a.Kind != b.Kind || tf.Str(a.Res) != ty.Str(b.Res) || tf.Str(a.PID) != ty.Str(b.PID) || tf.Str(a.Site) != ty.Str(b.Site) || a.Src != b.Src {
					t.Fatalf("prefix diverges at record %d:\n  fault-free: %s\n  faulty:     %s",
						i, tf.Format(a), ty.Format(b))
				}
				shared++
			}
			if shared == 0 {
				t.Fatal("no shared prefix")
			}
		})
	}
}

// TestObservationRunsAreCorrect: both observed runs must pass the workload's
// correctness oracle — FCatch predicts bugs from correct executions only.
func TestObservationRunsAreCorrect(t *testing.T) {
	for _, w := range allWorkloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			obs, err := core.Observe(w, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if obs.FaultFreeOutcome.Failed() {
				t.Errorf("fault-free outcome failed: %+v", obs.FaultFreeOutcome)
			}
			if obs.FaultyOutcome.Failed() {
				t.Errorf("faulty outcome failed: %+v", obs.FaultyOutcome)
			}
		})
	}
}

// TestDetectionDeterministicAllWorkloads: two identical detection passes
// must produce identical report lists.
func TestDetectionDeterministicAllWorkloads(t *testing.T) {
	for _, w := range allWorkloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			a, err := core.Detect(w, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Detect(w, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Reports) != len(b.Reports) {
				t.Fatalf("report counts differ: %d vs %d", len(a.Reports), len(b.Reports))
			}
			for i := range a.Reports {
				if a.Reports[i].Key() != b.Reports[i].Key() {
					t.Fatalf("report %d differs:\n  %s\n  %s", i, a.Reports[i], b.Reports[i])
				}
				if a.Reports[i].W.Occurrence != b.Reports[i].W.Occurrence {
					t.Fatalf("report %d occurrence differs", i)
				}
			}
		})
	}
}

// TestPrunedNeverOverlapsReported: a pruned candidate's resource class must
// not also be reported (disabling pruning only ever adds reports; it cannot
// both prune and report the same deduplicated candidate).
func TestPhaseOptionsMoveTheCrash(t *testing.T) {
	w := mapreduce.NewMR1()
	steps := map[core.Phase]int64{}
	for _, ph := range []core.Phase{core.PhaseBegin, core.PhaseMiddle, core.PhaseEnd} {
		opts := core.Options{Seed: 1, Phase: ph, Tracing: sim.TraceSelective}
		obs, err := core.Observe(w, opts)
		if err != nil {
			t.Fatalf("phase %s: %v", ph, err)
		}
		steps[ph] = obs.Faulty.CrashStep
	}
	if !(steps[core.PhaseBegin] < steps[core.PhaseMiddle] && steps[core.PhaseMiddle] < steps[core.PhaseEnd]) {
		t.Fatalf("crash steps not ordered: %v", steps)
	}
}

// TestSelectiveTracingOmitsPlainHeapOps: heap accesses outside handlers must
// not be traced (the policy that creates the paper's §8.3 false negative),
// while the same accesses under exhaustive tracing are.
func TestSelectiveTracingOmitsPlainHeapOps(t *testing.T) {
	build := func(mode sim.TracingMode) int {
		c := sim.NewCluster(sim.Config{Seed: 1, Tracing: mode})
		c.StartProcess("n", "m0", func(ctx *sim.Context) {
			obj := ctx.NamedObject("o")
			for i := 0; i < 10; i++ {
				obj.Set(ctx, "plain", sim.V(i)) // plain thread: selective skips it
			}
		})
		c.Run()
		n := 0
		for i := range c.Trace().Records {
			if c.Trace().Records[i].Kind == trace.KHeapWrite {
				n++
			}
		}
		return n
	}
	if n := build(sim.TraceSelective); n != 0 {
		t.Errorf("selective tracing recorded %d plain heap writes, want 0", n)
	}
	if n := build(sim.TraceExhaustive); n != 10 {
		t.Errorf("exhaustive tracing recorded %d heap writes, want 10", n)
	}
}

// TestHandlerHeapOpsAreTraced: the same write inside an RPC handler is
// traced under the selective policy.
func TestHandlerHeapOpsAreTraced(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective, RPCFailFast: true})
	c.StartProcess("srv", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleRPC("Touch", func(ctx *sim.Context, args []sim.Value) sim.Value {
			ctx.NamedObject("o").Set(ctx, "f", args[0])
			return sim.V("ok")
		})
		ctx.Sleep(200)
	})
	c.StartProcess("cli", "m1", func(ctx *sim.Context) {
		_, _ = ctx.Call("srv", "Touch", sim.V(1))
	})
	c.Run()
	found := false
	for i := range c.Trace().Records {
		r := &c.Trace().Records[i]
		if r.Kind == trace.KHeapWrite && r.HasFlag(trace.FlagHandlerCtx) {
			found = true
		}
	}
	if !found {
		t.Fatal("handler heap write not traced under selective policy")
	}
}
