// Package core orchestrates the FCatch pipeline of Figure 2: observe correct
// runs (a fault-free run plus, via deterministic replay standing in for VM
// checkpointing, a perfectly complementing correct faulty run), analyze the
// traces with the two detectors, and hand the reports to the triggering
// module.
package core

import (
	"fmt"
	"time"

	"fcatch/internal/detect"
	"fcatch/internal/hb"
	"fcatch/internal/obs"
	"fcatch/internal/parallel"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// Workload is one benchmark configuration (a Table 1 row): a system plus the
// workload driven on it.
type Workload interface {
	// Name is the benchmark id ("CA1&2", "HB1", "MR2", ...).
	Name() string
	// System is the application name ("Cassandra", "HBase", ...).
	System() string
	// Configure builds the system inside the cluster: machines, processes,
	// storage substrates, workload driver threads.
	Configure(c *sim.Cluster)
	// Check validates the end state of a finished run (the correctness
	// oracle): nil means the run is correct. It must accept runs that
	// recovered from a tolerated fault.
	Check(c *sim.Cluster, out *sim.Outcome) error
	// CrashTarget is the role observation runs and the random-injection
	// baseline crash.
	CrashTarget() string
	// RestartRoles maps roles to restart delays, the operator/recovery
	// behaviour after a crash.
	RestartRoles() map[string]int64
	// Tune sets app-specific cluster parameters (RPC timeout behaviour,
	// step budget).
	Tune(cfg *sim.Config)
	// ExpectedBehaviors are substrings of hang sites / exception kinds that
	// are *expected* reactions to a fault (e.g. HMaster legitimately waits
	// forever when every regionserver is gone). The triggering module
	// classifies matching failures as "Exp." rather than true bugs.
	ExpectedBehaviors() []string
}

// Phase selects where the observation crash lands (the Section 8.1.2
// sensitivity study).
type Phase int

const (
	// PhaseBegin crashes near the beginning of the execution (the default
	// setting of the paper's evaluation).
	PhaseBegin Phase = iota
	// PhaseMiddle crashes mid-execution.
	PhaseMiddle
	// PhaseEnd crashes near the end.
	PhaseEnd
)

func (p Phase) String() string {
	switch p {
	case PhaseBegin:
		return "begin"
	case PhaseMiddle:
		return "middle"
	default:
		return "end"
	}
}

func (p Phase) fraction() float64 {
	switch p {
	case PhaseBegin:
		return 0.12
	case PhaseMiddle:
		return 0.50
	default:
		return 0.88
	}
}

// Options parameterize one detection pass.
type Options struct {
	Seed    int64
	Phase   Phase
	Tracing sim.TracingMode // TraceSelective unless running the §8.2 ablation
	// MeasureBaseline additionally times untraced runs (Table 4).
	MeasureBaseline bool
	// Scenario is the fault scenario observation runs inject. Empty means
	// the default provider: a one-event crash of the workload's
	// CrashTarget() at the phase-chosen step. Step-anchored crash events
	// with CrashStep 0 inherit that step too (and are re-nudged on retry);
	// events with an empty Target aim at the workload's crash target.
	Scenario []sim.FaultSpec
	// Detect toggles the fault-tolerance pruning analyses (ablations only).
	Detect detect.Options
	// Parallelism bounds the worker pool everywhere the pipeline fans out:
	// RunEvaluation's per-workload passes, TriggerAll's per-report replays,
	// RandomCampaign's runs, and Detect's two trace analyses. 0 (the
	// default) means GOMAXPROCS; 1 forces the fully sequential path. Every
	// setting produces byte-identical reports, tables, and counters —
	// results are collected in deterministic order regardless of schedule.
	Parallelism int
	// Metrics, when non-nil, receives pipeline phase spans (observation
	// runs, index builds, each detector, compound pairing) and is forwarded
	// to the detectors for per-rule pruning counters. Strictly observe-only:
	// reports and traces are byte-identical with or without it. nil (the
	// default) is a cheap no-op.
	Metrics *obs.Registry
}

// DefaultOptions is the paper's evaluation setting.
func DefaultOptions() Options {
	return Options{Seed: 1, Phase: PhaseBegin, Tracing: sim.TraceSelective}
}

// Timings is the Table 4 row for one workload (durations in wall-clock).
type Timings struct {
	BaselineFaultFree time.Duration
	BaselineFaulty    time.Duration
	TracingFaultFree  time.Duration
	TracingFaulty     time.Duration
	AnalysisRegular   time.Duration
	AnalysisRecovery  time.Duration
}

// Overall is tracing + analysis time (the paper's "Overall" column).
func (t Timings) Overall() time.Duration {
	return t.TracingFaultFree + t.TracingFaulty + t.AnalysisRegular + t.AnalysisRecovery
}

// Slowdown is Overall / fault-free baseline.
func (t Timings) Slowdown() float64 {
	if t.BaselineFaultFree <= 0 {
		return 0
	}
	return float64(t.Overall()) / float64(t.BaselineFaultFree)
}

// Observation is one checkpoint-paired pair of correct runs.
type Observation struct {
	FaultFree        *trace.Trace
	Faulty           *trace.Trace
	FaultFreeOutcome *sim.Outcome
	FaultyOutcome    *sim.Outcome
	CrashStep        int64
	// CrashedPIDs are the processes the scenario crashed, in injection
	// order (the detectors' notion of "the crashed node(s)").
	CrashedPIDs []string
	// FaultFirings are the scenario events that actually fired during the
	// faulty run, in firing order — the per-fault surface hazard-window
	// derivation consumes (each firing keeps its step, anchor and victim,
	// which the flat CrashedPIDs list loses).
	FaultFirings []sim.FaultFiring
	Timings      Timings
}

// scenarioPlan lowers the observation scenario for one faulty attempt:
// step-anchored crash events with no explicit step inherit the phase-chosen
// (and, on retry, nudged) step, and empty targets default to the workload's
// crash target.
func scenarioPlan(w Workload, scenario []sim.FaultSpec, step int64) *sim.FaultPlan {
	specs := append([]sim.FaultSpec(nil), scenario...)
	for i := range specs {
		s := &specs[i]
		if s.Site == "" && s.Delay == 0 {
			if s.CrashStep == 0 {
				s.CrashStep = step
			}
			if s.Target == "" {
				s.Target = w.CrashTarget()
			}
		}
	}
	return sim.NewScenarioPlan(specs, w.RestartRoles())
}

// runOnce builds a cluster for w and runs it. A non-nil win hook receives
// the traced records in bounded windows while the run executes (the
// streaming pipeline's attachment point).
func runOnce(w Workload, seed int64, mode sim.TracingMode, plan *sim.FaultPlan, win trace.WindowFn) (*sim.Cluster, *sim.Outcome) {
	cfg := sim.Config{Seed: seed, Tracing: mode, Plan: plan, TraceTickCost: traceTickCost(mode), OnTraceWindow: win}
	w.Tune(&cfg)
	c := sim.NewCluster(cfg)
	w.Configure(c)
	out := c.Run()
	return c, out
}

// traceTickCost models instrumentation slowdown inside simulated time: the
// selective tracer is cheap; tracing every heap access is not (§8.2).
func traceTickCost(mode sim.TracingMode) int64 {
	switch mode {
	case sim.TraceExhaustive:
		return 6
	case sim.TraceSelective:
		return 1
	}
	return 0
}

// Observe produces the pair of correct runs FCatch analyzes (Section 3.1).
// The fault-free run is traced first; then the run is deterministically
// replayed with a crash of the workload's crash target injected at the
// phase-chosen step. If the faulty run turns out incorrect (the random crash
// point landed inside a bug window — rare by construction), the crash point
// is nudged and the replay repeated, mirroring "almost every random fault
// injection works".
func Observe(w Workload, opts Options) (*Observation, error) {
	obs, _, _, err := observe(w, opts, false)
	return obs, err
}

// ObserveIndexed is Observe with the happens-before graphs built alongside
// the runs: the fault-free run streams its records in bounded windows into
// an hb.Builder, so simulation, index extension and graph construction
// overlap instead of running as serial phases; the faulty run's graph is
// built from its materialized trace once its correctness check passes, so
// retried attempts never pay for indexing. The returned graphs are what
// Detect hands to the detectors.
func ObserveIndexed(w Workload, opts Options) (*Observation, *hb.Graph, *hb.Graph, error) {
	return observe(w, opts, true)
}

func observe(w Workload, opts Options, withGraphs bool) (*Observation, *hb.Graph, *hb.Graph, error) {
	obs := &Observation{}
	// With a sequential budget the builder extends the index inline, under
	// the run's wall clock; otherwise it overlaps on its own goroutine.
	async := opts.Parallelism != 1

	if opts.MeasureBaseline {
		_, out := runOnce(w, opts.Seed, sim.TraceOff, nil, nil)
		obs.Timings.BaselineFaultFree = out.Elapsed
	}

	// The builder must wrap the run's trace, which the cluster creates
	// internally — so it is constructed lazily, on the first window.
	var bf *hb.Builder
	var winF trace.WindowFn
	if withGraphs {
		winF = func(t *trace.Trace, recs []trace.Record) {
			if bf == nil {
				bf = hb.NewBuilder(t, async)
			}
			bf.Window(t, recs)
		}
	}
	endFF := opts.Metrics.Span("core/observe/fault-free")
	cf, outF := runOnce(w, opts.Seed, opts.Tracing, nil, winF)
	endFF()
	var gf *hb.Graph
	if withGraphs {
		if bf == nil {
			bf = hb.NewBuilder(cf.Trace(), async)
		}
		gf = bf.Finish()
	}
	if err := w.Check(cf, outF); err != nil {
		return nil, nil, nil, fmt.Errorf("core: fault-free run of %s is incorrect: %w", w.Name(), err)
	}
	obs.FaultFree = cf.Trace()
	obs.FaultFreeOutcome = outF
	obs.Timings.TracingFaultFree = outF.Elapsed
	if withGraphs {
		// Table 4 attribution: index work that ran inline under the traced
		// run's baton is analysis time, not tracing time — move it.
		opts.Metrics.ObserveSpan("core/index/fault-free", bf.BuildTime())
		obs.Timings.AnalysisRegular = bf.BuildTime()
		if !async {
			obs.Timings.TracingFaultFree -= bf.FeedTime()
			if obs.Timings.TracingFaultFree < 0 {
				obs.Timings.TracingFaultFree = 0
			}
		}
	}

	// The scenario to inject: the plan is the source of truth, with
	// Workload.CrashTarget() as the default provider.
	scenario := opts.Scenario
	if len(scenario) == 0 {
		scenario = []sim.FaultSpec{{Action: sim.ActionNodeCrash, Target: w.CrashTarget()}}
	}

	total := outF.Steps
	step := int64(float64(total) * opts.Phase.fraction())
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			opts.Metrics.Counter("core/observe/retries").Inc()
		}
		endAttempt := opts.Metrics.Span("core/observe/faulty-attempt")
		plan := scenarioPlan(w, scenario, step)
		// Unlike the fault-free run, a faulty attempt can fail its
		// correctness check and be retried (HB2 deterministically retries
		// twice), so streaming records into a builder during the run would
		// index attempts whose traces get thrown away. The faulty graph is
		// therefore built only after the check passes, from the materialized
		// trace in a single window — failed attempts never pay for indexing.
		cy, outY := runOnce(w, opts.Seed, opts.Tracing, plan, nil)
		endAttempt()
		if err := w.Check(cy, outY); err != nil {
			lastErr = err
			step += total/23 + 7 // nudge the crash point and retry
			continue
		}
		var by *hb.Builder
		var gy *hb.Graph
		if withGraphs {
			endIdx := opts.Metrics.Span("core/index/faulty")
			by = hb.NewBuilder(cy.Trace(), false)
			by.Window(cy.Trace(), cy.Trace().Records)
			gy = by.Finish()
			endIdx()
		}
		if opts.MeasureBaseline {
			basePlan := scenarioPlan(w, scenario, step)
			_, outB := runOnce(w, opts.Seed, sim.TraceOff, basePlan, nil)
			obs.Timings.BaselineFaulty = outB.Elapsed
		}
		obs.Faulty = cy.Trace()
		obs.FaultyOutcome = outY
		obs.Timings.TracingFaulty = outY.Elapsed
		obs.CrashStep = cy.Trace().CrashStep
		obs.CrashedPIDs = plan.InjectedCrashPIDs()
		obs.FaultFirings = outY.FaultFirings
		if withGraphs {
			// Table 4 attribution: the faulty index build ran entirely after
			// the run (above), so it is pure analysis time — nothing needs
			// moving out of the tracing column.
			obs.Timings.AnalysisRecovery = by.BuildTime()
		}
		return obs, gf, gy, nil
	}
	return nil, nil, nil, fmt.Errorf("core: could not obtain a correct faulty run of %s: %w", w.Name(), lastErr)
}

// Result is one full detection pass over a workload.
type Result struct {
	Workload    string
	Options     Options
	Observation *Observation
	Regular     *detect.RegularResult
	Recovery    *detect.RecoveryResult
	// Reports is the merged, deduplicated report list.
	Reports []*detect.Report
	// Windows are the observation's hazard windows, derived once from the
	// scenario's fault firings and shared by both detectors. A single-fault
	// observation has exactly one.
	Windows []detect.Window
	// Compound are the cross-window pairing findings: faults that landed
	// inside an earlier fault's recovery window. Always empty for
	// single-fault observations.
	Compound []*detect.CompoundReport
}

// Detect runs the full FCatch pipeline (Figure 2, steps 1–3) on a workload.
// The fault-free trace index is built incrementally while that run executes
// (ObserveIndexed streams its records into an hb.Builder), the faulty index
// is built once a correct faulty attempt is in hand, and the crash-regular
// and crash-recovery analyses then run in parallel goroutines (bounded by
// opts.Parallelism); both detectors are pure functions of the shared
// read-only graphs, so the reports are identical to the sequential order.
func Detect(w Workload, opts Options) (*Result, error) {
	obs, gf, gy, err := ObserveIndexed(w, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Workload: w.Name(), Options: opts, Observation: obs}

	// Table 4 attribution, now that indexing is interleaved with the
	// observation runs: each run's index build counts toward the analysis
	// that primarily consumes its graph — the fault-free index toward
	// crash-regular, the faulty index toward crash-recovery (ObserveIndexed
	// seeded those fields with the builders' BuildTime). At Parallelism 1
	// the fault-free builder runs inline under the run's wall clock and that
	// time is subtracted from its tracing column; the faulty index is always
	// built after its run's correctness check (retried attempts must not pay
	// for indexing) and is pure analysis time. The stage timings therefore
	// stay disjoint and sum to within the measured wall clock, and "Overall"
	// keeps the paper's serial accounting of the same work.
	// The detectors learn the fault surface from the scenario's actual
	// firings, not from the workload interface: each firing keeps its step,
	// anchor and victim, and the hazard windows are derived from them once
	// here, shared by both detectors and the compound pairing pass. The flat
	// victim list stays populated as the legacy fallback surface.
	dopts := opts.Detect
	if dopts.Metrics == nil {
		dopts.Metrics = opts.Metrics
	}
	if len(dopts.CrashedPIDs) == 0 {
		dopts.CrashedPIDs = obs.CrashedPIDs
	}
	if len(dopts.Firings) == 0 {
		for _, f := range obs.FaultFirings {
			dopts.Firings = append(dopts.Firings, detect.FaultFiring{
				Index: f.Index, Action: f.Action, Step: f.Step,
				Site: f.Site, Occurrence: f.Occurrence, When: f.When,
				Victim: f.Victim,
			})
		}
	}
	if len(dopts.Windows) == 0 {
		dopts.Windows = detect.ObservationWindows(obs.Faulty, dopts)
	}
	res.Windows = dopts.Windows
	opts.Metrics.Counter("detect/windows").Add(int64(len(res.Windows)))
	parallel.ForEach(opts.Parallelism, 2, func(i int) {
		t0 := time.Now()
		if i == 0 {
			res.Regular = detect.DetectRegularOpts(gf, w.Name(), dopts)
			d := time.Since(t0)
			obs.Timings.AnalysisRegular += d
			opts.Metrics.ObserveSpan("detect/analysis/regular", d)
		} else {
			res.Recovery = detect.DetectRecoveryOpts(gf, gy, w.Name(), dopts)
			d := time.Since(t0)
			obs.Timings.AnalysisRecovery += d
			opts.Metrics.ObserveSpan("detect/analysis/recovery", d)
		}
	})

	res.Reports = append(res.Reports, res.Regular.Reports...)
	res.Reports = append(res.Reports, res.Recovery.Reports...)
	res.Reports = detect.Dedup(res.Reports)
	opts.Metrics.Counter("detect/reports").Add(int64(len(res.Reports)))
	if len(res.Windows) > 1 {
		endCompound := opts.Metrics.Span("detect/compound")
		res.Compound = detect.DetectCompound(gy, res.Windows, w.Name())
		endCompound()
	}
	return res, nil
}
