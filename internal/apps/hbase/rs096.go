package hbase

import (
	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// rs096Main is a 0.96.0 RegionServer: it registers an ephemeral liveness
// znode and serves the master's assignment and coordination requests.
func rs096Main(ctx *sim.Context, p params, kv *storage.KV, gfs *storage.GlobalFS) {
	defer ctx.Scope("rsMain")()
	self := ctx.Self()

	self.HandleMsg("master-ping", func(ctx *sim.Context, m sim.Message) {
		ctx.Sleep(60)
		_ = ctx.Send(m.From, "ping-ack", m.Payload)
	})

	self.HandleRPC("GetServerInfo", func(ctx *sim.Context, args []sim.Value) sim.Value {
		return sim.V(ctx.PID() + ":info")
	})

	self.HandleMsg("balancer-mode", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedObject("rsState").Set(ctx, "balancer", m.Payload)
	})

	self.HandleMsg("master-ping-backup", func(ctx *sim.Context, m sim.Message) {})

	self.HandleMsg("startup-report", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedObject("rsState").Set(ctx, "masterReport", m.Payload)
	})

	self.HandleMsg("previous-master-info", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedObject("rsState").Set(ctx, "prevMaster", m.Payload)
	})

	self.HandleMsg("split-old", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("splitOldLogs")()
		ctx.Sleep(70)
		_ = gfs.Delete(ctx, "/hbase/oldlogs/"+ctx.PID())
		// The completion report the master's untimed wait depends on.
		_ = ctx.Send(m.From, "split-old-done", sim.V(ctx.PID()))
	})

	self.HandleMsg("ns-init", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("namespaceInit")()
		ctx.Sleep(60)
		_ = ctx.Send(m.From, "ns-ready", sim.V(ctx.PID()))
	})

	self.HandleMsg("open-region", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("openRegion")()
		region := m.Payload.Str()
		path := "/hbase/region-state/" + region
		for k := 0; k < p.stateWrites; k++ {
			if err := kv.SetData(ctx, path, sim.Derive("OPEN", m.Payload)); err != nil {
				_, _ = kv.Create(ctx, path, sim.Derive("OPENING", m.Payload))
			}
			ctx.Sleep(5)
		}
		if region == "special" {
			_ = ctx.Send(m.From, "region-ack", m.Payload)
			return
		}
		_ = ctx.Send(m.From, "region-opened", m.Payload)
	})

	// The Figure 6 sequence: register OPENING, do the actual open work (two
	// global-FS files and a znode — the paper's description of the hazard
	// window), then register OPENED. The OPENED update travels through
	// ZooKeeper, so a network-level message drop cannot remove it — which is
	// why HB1 is only triggerable by a node crash (Section 8.4).
	self.HandleMsg("open-meta", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("openMeta")()
		if err := kv.SetData(ctx, "/hbase/unassigned/meta", sim.V("OPENING")); err != nil {
			_, _ = kv.Create(ctx, "/hbase/unassigned/meta", sim.V("OPENING"))
		}
		gfs.Write(ctx, "/hbase/meta/info-file", sim.V(ctx.PID()))
		gfs.Write(ctx, "/hbase/meta/seqid-file", sim.V(ctx.PID()))
		_, _ = kv.Create(ctx, "/hbase/meta-region", sim.V(ctx.PID()))
		_ = kv.SetData(ctx, "/hbase/unassigned/meta", sim.V("OPENED"))
	})

	// Liveness registration.
	_, _ = kv.Create(ctx, "/hbase/rs/"+ctx.PID(), sim.V(ctx.PID()), storage.Ephemeral())

	// Periodic server-load reports feed the master's balancer.
	ctx.GoDaemon("load-reporter", func(ctx *sim.Context) {
		defer ctx.Scope("loadReporter")()
		for load := 0; ; load++ {
			_ = ctx.Send("hmaster", "server-load", sim.Derive(load, sim.V(ctx.PID())))
			ctx.Sleep(160)
		}
	})

	// A RegionServer outlives the master's startup: stay up (keeping the
	// cluster workload alive across a master restart) until the cluster is
	// declared up.
	ctx.SyncLoop(sim.LoopOpts{Name: "serveUntilClusterUp", SleepTicks: 60}, func(ctx *sim.Context) sim.Value {
		return sim.V(ctx.Cluster().FactStr("hb.clusterUp") == "true")
	})
}
