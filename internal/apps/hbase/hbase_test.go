package hbase_test

import (
	"strings"
	"testing"

	"fcatch/internal/apps/hbase"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/inject"
	"fcatch/internal/sim"
)

func find(reports []*detect.Report, typ detect.BugType, classHint string) *detect.Report {
	for _, r := range reports {
		if r.Type == typ && strings.Contains(r.ResClass, classHint) {
			return r
		}
	}
	return nil
}

func TestFaultFreeRuns(t *testing.T) {
	for _, w := range []*hbase.Workload{hbase.NewHB1(), hbase.NewHB2()} {
		cfg := sim.Config{Seed: 1}
		w.Tune(&cfg)
		c := sim.NewCluster(cfg)
		w.Configure(c)
		out := c.Run()
		if err := w.Check(c, out); err != nil {
			t.Errorf("%s fault-free: %v", w.Name(), err)
		}
	}
}

func TestHB1WorkloadDetection(t *testing.T) {
	res, err := core.Detect(hbase.NewHB1(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hb1 := find(res.Reports, detect.CrashRegular, "rit#.meta")
	if hb1 == nil {
		t.Fatal("HB1 (Figure 6 RIT poll) not reported")
	}
	if hb1.OpsDesc != "Write vs Loop" {
		t.Errorf("HB1 ops = %q", hb1.OpsDesc)
	}
	if hb1.WPrime == nil || !strings.HasPrefix(hb1.WPrime.PID, "rs") {
		t.Errorf("HB1 W' should live on a RegionServer: %+v", hb1.WPrime)
	}
	// The master-restart recovery path yields the four handled-exception
	// candidates and the two benign ones.
	var rec int
	for _, r := range res.Reports {
		if r.Type == detect.CrashRecovery {
			rec++
		}
	}
	if rec != 6 {
		t.Errorf("HB1 crash-recovery reports = %d, want 6 (4 Exp + 2 benign)", rec)
	}
	// Timeout pruning: 6 app rounds + 1 RPC wait; 3 deadline-bounded loops.
	if res.Regular.Pruned.WaitTimeout != 7 || res.Regular.Pruned.LoopTimeout != 3 {
		t.Errorf("pruned = %+v, want WaitTimeout=7 LoopTimeout=3", res.Regular.Pruned)
	}
}

func TestHB1TriggerMatrixIsCrashOnly(t *testing.T) {
	w := hbase.NewHB1()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hb1 := find(res.Reports, detect.CrashRegular, "rit#.meta")
	out := inject.NewTriggerer(w, 1).Trigger(hb1)
	if out.Class != inject.TrueBug {
		t.Fatalf("HB1 verdict = %v (%s)", out.Class, out.Detail)
	}
	// Section 8.4: the OPENED update travels through ZooKeeper; only a node
	// crash removes it.
	if !out.ByAction["node-crash"] || out.ByAction["kernel-drop"] || out.ByAction["app-drop"] {
		t.Fatalf("HB1 trigger matrix = %v, want node-crash only", out.ByAction)
	}
}

func TestHB1ExpFalsePositivesAreHandledExceptions(t *testing.T) {
	w := hbase.NewHB1()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := inject.NewTriggerer(w, 1)
	expected, benign := 0, 0
	for _, r := range res.Reports {
		if r.Type != detect.CrashRecovery {
			continue
		}
		switch tg.Trigger(r).Class {
		case inject.Expected:
			expected++
		case inject.Benign:
			benign++
		default:
			t.Errorf("unexpected true bug in HB1 recovery reports: %s", r)
		}
	}
	if expected != 4 || benign != 2 {
		t.Fatalf("HB1 recovery verdicts: %d Exp + %d benign, want 4 + 2 (Table 3)", expected, benign)
	}
}

func TestHB1CrashRegularFalsePositivesAreBenign(t *testing.T) {
	w := hbase.NewHB1()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := inject.NewTriggerer(w, 1)
	for _, hint := range []string{"cv:logSplitDone", "nsRemote", "ack-special"} {
		r := find(res.Reports, detect.CrashRegular, hint)
		if r == nil {
			t.Errorf("planted FP %s not reported", hint)
			continue
		}
		if out := tg.Trigger(r); out.Class != inject.Benign {
			t.Errorf("%s: verdict %v, want benign (a watcher component rescues the hang)", hint, out.Class)
		}
	}
}

func TestHB2WorkloadDetection(t *testing.T) {
	res, err := core.Detect(hbase.NewHB2(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		typ        detect.BugType
		hint, name string
	}{
		{detect.CrashRegular, "cv:root-assigned", "HB3"},
		{detect.CrashRegular, "rootLoc", "HB4"},
		{detect.CrashRecovery, "splitlog", "HB2"},
		{detect.CrashRecovery, "replication/rs###/log#", "HB5"},
	} {
		if find(res.Reports, c.typ, c.hint) == nil {
			t.Errorf("%s (%s) not reported", c.name, c.hint)
		}
	}
	// HB6: the queue-directory marker pair (Delete vs Read).
	hb6 := false
	for _, r := range res.Reports {
		if r.Type == detect.CrashRecovery && strings.HasSuffix(r.ResClass, "replication/rs###") &&
			strings.HasPrefix(r.OpsDesc, "Delete") {
			hb6 = true
		}
	}
	if !hb6 {
		t.Error("HB6 (queue dir deleted early) not reported")
	}
}

func TestHB2ExpectedRegistrationHang(t *testing.T) {
	w := hbase.NewHB2()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := inject.NewTriggerer(w, 1)
	for _, hint := range []string{"cv:rs-any-registered", "serverCount"} {
		r := find(res.Reports, detect.CrashRegular, hint)
		if r == nil {
			t.Fatalf("registration candidate %s missing", hint)
		}
		if out := tg.Trigger(r); out.Class != inject.Expected {
			t.Errorf("%s: verdict %v, want Expected (waiting for a live RS is intended)", hint, out.Class)
		}
	}
}

func TestHB2DataLossBugsConfirmed(t *testing.T) {
	w := hbase.NewHB2()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := inject.NewTriggerer(w, 1)
	trueBugs := 0
	for _, r := range res.Reports {
		if r.Type != detect.CrashRecovery {
			continue
		}
		out := tg.Trigger(r)
		if out.Class == inject.TrueBug {
			trueBugs++
			if out.FailureKind != "check" {
				t.Errorf("%s: failure kind %q, want a data-loss check failure", r.ResClass, out.FailureKind)
			}
			if !strings.Contains(out.Detail, "data loss") {
				t.Errorf("%s: detail %q does not mention data loss", r.ResClass, out.Detail)
			}
		}
	}
	if trueBugs != 3 {
		t.Fatalf("confirmed HB2-workload recovery bugs = %d, want 3 (HB2, HB5, HB6)", trueBugs)
	}
}

func TestHB3TriggersWithBothCrashAndDrop(t *testing.T) {
	w := hbase.NewHB2()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hb3 := find(res.Reports, detect.CrashRegular, "cv:root-assigned")
	out := inject.NewTriggerer(w, 1).Trigger(hb3)
	if !out.ByAction["node-crash"] || !out.ByAction["kernel-drop"] {
		t.Fatalf("HB3 matrix = %v; §8.4 says both crashes and drops work here", out.ByAction)
	}
}
