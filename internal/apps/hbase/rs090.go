package hbase

import (
	"fmt"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// rs090Main is the 0.90.1 RegionServer: it hosts the user region, logs every
// edit to its write-ahead log, and replicates edits to the peer cluster via
// a znode-backed queue — with the buggy early deletions of HB2/HB5/HB6.
func rs090Main(ctx *sim.Context, p params, kv *storage.KV, gfs *storage.GlobalFS) {
	defer ctx.Scope("rsMain")()
	self := ctx.Self()
	me := ctx.PID()
	mem := ctx.NamedObject("memstore")

	// The replication queue skeleton (a marker plus one znode per log,
	// holding the not-yet-shipped keys) is seeded at deploy time; see
	// Configure.

	// Metric znodes, periodically refreshed (impact-pruning fodder: the
	// recovery path reads them for logging only).
	ctx.GoDaemon("metrics-writer", func(ctx *sim.Context) {
		defer ctx.Scope("metricsWriter")()
		for round := 0; ; round++ {
			for i := 0; i < p.regions; i++ {
				path := fmt.Sprintf("/hbase/rs-info/%s/metric-%d", me, i)
				if err := kv.SetData(ctx, path, sim.V(round)); err != nil {
					_, _ = kv.Create(ctx, path, sim.V(round))
				}
			}
			ctx.Sleep(120)
		}
	})

	// Split progress bookkeeping, refreshed periodically (dependence-
	// pruning fodder: the master rewrites it before reading).
	ctx.GoDaemon("progress-writer", func(ctx *sim.Context) {
		for i := 0; ; i++ {
			path := "/hbase/split-progress/" + me
			if err := kv.SetData(ctx, path, sim.V(i)); err != nil {
				_, _ = kv.Create(ctx, path, sim.V(i))
			}
			ctx.Sleep(95)
		}
	})

	self.HandleMsg("open-root", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("openRoot")()
		gfs.Write(ctx, "/hbase/root/info-"+me, sim.V(me))
		_, _ = kv.Create(ctx, "/hbase/root-region-server", sim.V(me))
		ctx.Sleep(25)
		// The notification HB3's wait and HB4's poll both depend on; its
		// loss (crash or drop) hangs the master.
		_ = ctx.Send(m.From, "root-opened", sim.V(me))
	})

	self.HandleRPC("PutLocal", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("putLocal")()
		key := args[0]
		n := mem.Get(ctx, "count").Int()
		mem.Set(ctx, fmt.Sprintf("edit-%d", n), key)
		mem.Set(ctx, "count", sim.V(n+1))

		seg := "/hbase/hlog/" + me
		logZnode := "/hbase/replication/" + me + "/log1"
		if n >= 3 {
			seg = "/hbase/hlog/" + me + "-seg2"
			logZnode = "/hbase/replication/" + me + "/log2"
		}
		logKey(ctx, gfs, seg, key)
		appendPending(ctx, kv, logZnode, key)

		// HB2's hazard: rolling to the second log segment takes a plain
		// lock znode; a crash between create and delete strands it and the
		// master's log split gives up.
		if n == 2 {
			_, _ = kv.Create(ctx, "/hbase/splitlog/"+me+"-lock", sim.V(me))
			gfs.Write(ctx, "/hbase/hlog/"+me+"-seg2", sim.V(""))
			ctx.Sleep(12)
			_ = kv.Delete(ctx, "/hbase/splitlog/"+me+"-lock")
		}
		return sim.Derive("ok", key)
	})

	self.HandleMsg("flush", func(ctx *sim.Context, m sim.Message) {
		from := m.From
		ctx.Go("flush-and-replicate", func(ctx *sim.Context) {
			defer ctx.Scope("flushAndReplicate")()
			flushAndReplicate(ctx, p, kv, gfs, me)
			_ = ctx.Send(from, "flush-done", sim.V(me))
		})
	})

	// Liveness registration: the ephemeral znode whose creation registers
	// this server and whose expiry triggers the master's recovery.
	_, _ = kv.Create(ctx, "/hbase/rs/"+me, sim.V(me), storage.Ephemeral())
}

// flushAndReplicate persists the memstore and ships the replication queue —
// deleting queue znodes a beat too early (HB5: the log znode before its tail
// edit ships; HB6: the queue marker before the final edit ships).
func flushAndReplicate(ctx *sim.Context, p params, kv *storage.KV, gfs *storage.GlobalFS, me string) {
	mem := ctx.NamedObject("memstore")
	n := mem.Get(ctx, "count").Int()

	// Flush: edits become visible table content.
	for i := 0; i < n; i++ {
		key := mem.Get(ctx, fmt.Sprintf("edit-%d", i))
		ctx.Cluster().SetFact("hb.table."+key.Str(), "flushed@"+me)
		ctx.Sleep(4)
	}

	// Replicate log1: ship all but the tail, delete the queue znode (too
	// early — HB5's W), then ship the tail.
	shipLog(ctx, kv, me, "log1", false)
	// Replicate log2 the same way but hold its tail back; then drop the
	// whole queue marker (HB6's W) before the very last edit ships.
	tail := shipLog(ctx, kv, me, "log2", true)
	_ = kv.Delete(ctx, "/hbase/replication/"+me)
	if tail != "" {
		shipKey(ctx, tail, me)
	}
}

// shipLog ships one log's pending edits, deleting the queue znode before the
// tail edit (HB5's W). With keepTail the final edit is returned unshipped so
// the caller can drop the queue marker first.
func shipLog(ctx *sim.Context, kv *storage.KV, me, log string, keepTail bool) string {
	pending, err := kv.GetData(ctx, "/hbase/replication/"+me+"/"+log)
	if err != nil {
		return ""
	}
	keys := splitKeys(pending.Str())
	for i, key := range keys {
		if i == len(keys)-1 {
			// The bug: the queue znode is deleted before the tail ships.
			_ = kv.Delete(ctx, "/hbase/replication/"+me+"/"+log)
			if keepTail {
				return key
			}
			shipKey(ctx, key, me)
			continue
		}
		// Correct order for non-tail edits: ship, then advance the cursor.
		shipKey(ctx, key, me)
		rest := joinKeys(keys[i+1:])
		_ = kv.SetData(ctx, "/hbase/replication/"+me+"/"+log, sim.Derive(rest, pending))
	}
	if len(keys) == 0 {
		_ = kv.Delete(ctx, "/hbase/replication/"+me+"/"+log)
	}
	return ""
}

func shipKey(ctx *sim.Context, key, me string) {
	ctx.Sleep(8) // network shipping latency: the HB5/HB6 hazard window
	_ = ctx.Send("peer", "replicate", sim.V(key))
	ctx.Cluster().SetFact("hb.replicated."+key, me)
}

// appendPending adds a key to a queue znode's pending list (the znode is
// seeded at deploy time, so this is always an update).
func appendPending(ctx *sim.Context, kv *storage.KV, path string, key sim.Value) {
	cur, _ := kv.GetData(ctx, path)
	joined := key.Str()
	if cur.Str() != "" {
		joined = cur.Str() + "," + key.Str()
	}
	_ = kv.SetData(ctx, path, sim.Derive(joined, cur, key))
}

func joinKeys(keys []string) string {
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k
	}
	return out
}

// client090Main drives the HB2 workload: six puts routed through the master,
// then the completion signal.
func client090Main(ctx *sim.Context, p params) {
	defer ctx.Scope("clientMain")()
	ctx.Sleep(120) // let the cluster come up
	for i := 0; i < p.edits; i++ {
		key := sim.V(fmt.Sprintf("row%d", i))
		for {
			if _, err := ctx.Call("hmaster", "Put", key); err == nil {
				break
			}
			ctx.Sleep(40)
		}
		ctx.Sleep(30)
	}
	for {
		if _, err := ctx.Call("hmaster", "FinishJob", sim.V(p.edits)); err == nil {
			return
		}
		ctx.Sleep(50)
	}
}
