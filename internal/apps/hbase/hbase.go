// Package hbase is a miniature HBase: an HMaster and RegionServers
// coordinating through the ZooKeeper-like KV store, with META/ROOT
// assignment, a region-in-transition map fed by znode watch events, write-
// ahead-log splitting and a replication queue.
//
// Two versions are modelled, matching the paper's two benchmark rows:
//
// Version 0.96.0 ("HB1" workload, Startup + HMasterRestart):
//   - HB1 (benchmark, Figure 6): HMaster polls its region-in-transition map
//     until the META open completes; a RegionServer crash between its
//     OPENING and OPENED registrations hangs the master forever
//     (crash-regular, Write vs Loop, heap). Only a node crash triggers it —
//     the RegionServer resends the OPENED update on socket errors.
//   - three planted crash-regular false positives: a namespace-init loop
//     whose exit has a second, local writer; and an assignment loop plus a
//     log-split wait that a timeout-monitor component rescues — a timeout
//     mechanism FCatch's analysis cannot see (Section 8.1.1).
//   - four crash-recovery "Exp." false positives on the master-restart path
//     (lock/marker creations and reads whose failure is a caught, handled
//     exception) and benign reads of cluster metadata.
//
// Version 0.90.1 ("HB2" workload, Startup):
//   - HB3/HB4: two ways the master awaits the ROOT region open (an untimed
//     wait and a polling loop); a RegionServer crash before the opened
//     notification hangs the whole system (crash-regular).
//   - the expected-behaviour pair: the master legitimately waits forever
//     for *some* RegionServer to register when every one is dead.
//   - HB2 (benchmark): log-split workers take a plain (non-ephemeral) lock
//     znode; a crash between create and delete leaves the lock behind and
//     the master's splitter gives up — data loss (Create vs Create).
//   - HB5/HB6: the replication worker deletes its queue znode / queue
//     directory before shipping the tail edits; a crash in between makes
//     the master's queue adoption skip the log or the whole queue — silent
//     data loss (Delete vs Read).
package hbase

import (
	"fmt"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// params sizes the cluster and the planted-analysis fodder.
type params struct {
	version string
	// regions is the user-region count (scales the dependence/impact
	// pruning volumes of Table 5).
	regions int
	// planWrites is how many times the first master rewrites each region's
	// assignment plan.
	planWrites int
	// stateWrites is how many times region-state znodes are refreshed.
	stateWrites int
	// sessionTimeout is the KV session-expiry delay for ephemeral znodes.
	sessionTimeout int64
	// restartDelay is the operator's master-restart delay.
	restartDelay int64
	// rescueAfter is the timeout-monitor rescue delay (the unrecognized
	// timeout mechanism).
	rescueAfter int64
	// edits is the number of client edits the HB2 workload writes.
	edits       int
	crashTarget string
}

// Workload is one HBase benchmark row of Table 1.
type Workload struct{ p params }

// NewHB1 is the "HB 0.96.0 Startup + HMasterRestart" workload.
func NewHB1() *Workload {
	return &Workload{p: params{
		version:        "0.96.0",
		regions:        23,
		planWrites:     4,
		stateWrites:    2,
		sessionTimeout: 300,
		restartDelay:   150,
		rescueAfter:    2600,
		crashTarget:    "hmaster",
	}}
}

// NewHB2 is the "HB 0.90.1 Startup" workload.
func NewHB2() *Workload {
	return &Workload{p: params{
		version:        "0.90.1",
		regions:        6,
		planWrites:     2,
		stateWrites:    2,
		sessionTimeout: 250,
		restartDelay:   0, // regionservers are not restarted by the operator
		rescueAfter:    2600,
		edits:          6,
		crashTarget:    "rs0",
	}}
}

// Name implements core.Workload.
func (w *Workload) Name() string {
	if w.p.version == "0.96.0" {
		return "HB1"
	}
	return "HB2"
}

// System implements core.Workload.
func (w *Workload) System() string { return "HBase " + w.p.version }

// CrashTarget implements core.Workload.
func (w *Workload) CrashTarget() string { return w.p.crashTarget }

// RestartRoles implements core.Workload: the operator restarts a crashed
// master (the HMasterRestart part of the HB1 workload); dead RegionServers
// stay dead — the master's ZK watcher recovers their state.
func (w *Workload) RestartRoles() map[string]int64 {
	if w.p.version == "0.96.0" {
		return map[string]int64{"hmaster": w.p.restartDelay}
	}
	return map[string]int64{}
}

// Tune implements core.Workload: HBase's RPC client has timeouts.
func (w *Workload) Tune(cfg *sim.Config) {
	cfg.RPCClientTimeout = 600
	cfg.RPCFailFast = true
	cfg.MaxSteps = 40_000
}

// ExpectedBehaviors implements core.Workload: with every RegionServer dead
// during startup, waiting for one to come alive is intended behaviour.
func (w *Workload) ExpectedBehaviors() []string {
	if w.p.version == "0.90.1" {
		return []string{"wait:rs-any-registered", "loop:waitServerCount"}
	}
	return nil
}

// Configure implements core.Workload.
func (w *Workload) Configure(c *sim.Cluster) {
	p := w.p
	kv := storage.NewKV(c)
	kv.SetSessionExpiryDelay(p.sessionTimeout)
	gfs := storage.NewGlobalFS()
	c.SetFact("hb.kv", kv)
	c.SetFact("hb.gfs", gfs)

	if p.version == "0.96.0" {
		c.StartProcess("hmaster", "m-master", func(ctx *sim.Context) { master096Main(ctx, p, kv, gfs) })
		c.StartProcess("rs0", "m-rs0", func(ctx *sim.Context) { rs096Main(ctx, p, kv, gfs) })
		c.StartProcess("rs1", "m-rs1", func(ctx *sim.Context) { rs096Main(ctx, p, kv, gfs) })
		return
	}
	// The replication queue skeleton for the (deterministic) first
	// RegionServer incarnation.
	kv.Seed("/hbase/replication/rs0#1", sim.V("queue"))
	kv.Seed("/hbase/replication/rs0#1/log1", sim.V(""))
	kv.Seed("/hbase/replication/rs0#1/log2", sim.V(""))
	c.StartProcess("hmaster", "m-master", func(ctx *sim.Context) { master090Main(ctx, p, kv, gfs) })
	c.StartProcess("rs0", "m-rs0", func(ctx *sim.Context) { rs090Main(ctx, p, kv, gfs) })
	c.StartProcess("client", "m-client", func(ctx *sim.Context) { client090Main(ctx, p) })
	c.StartProcess("peer", "m-peer", func(ctx *sim.Context) {
		// The peer cluster's replication sink: every shipped edit lands in
		// a message handler here (a global impact sink for the detectors).
		ctx.Self().HandleMsg("replicate", func(ctx *sim.Context, m sim.Message) {})
		ctx.Self().HandleMsg("replayed", func(ctx *sim.Context, m sim.Message) {})
		ctx.Self().HandleMsg("split-skipped", func(ctx *sim.Context, m sim.Message) {})
	})
}

// Check implements core.Workload.
func (w *Workload) Check(c *sim.Cluster, out *sim.Outcome) error {
	if !out.Completed {
		return fmt.Errorf("hbase: did not finish: %+v", out.Hung)
	}
	if len(out.FatalLogs) > 0 {
		return fmt.Errorf("hbase: fatal: %v", out.FatalLogs)
	}
	if len(out.UncaughtExceptions) > 0 {
		return fmt.Errorf("hbase: exceptions: %v", out.UncaughtExceptions)
	}
	if w.p.version == "0.96.0" {
		if c.FactStr("hb.metaLocation") == "" {
			return fmt.Errorf("hbase: META never assigned")
		}
		if c.FactStr("hb.clusterUp") != "true" {
			return fmt.Errorf("hbase: cluster never came up")
		}
		return nil
	}
	// 0.90.1: the root region must be assigned, and no edit may be lost —
	// neither from the recovered table (log split) nor from replication.
	if c.FactStr("hb.rootLocation") == "" {
		return fmt.Errorf("hbase: ROOT never assigned")
	}
	for i := 0; i < w.p.edits; i++ {
		key := fmt.Sprintf("row%d", i)
		if c.FactStr("hb.table."+key) == "" {
			return fmt.Errorf("hbase: data loss: %s missing from table", key)
		}
		if c.FactStr("hb.replicated."+key) == "" {
			return fmt.Errorf("hbase: data loss: %s never replicated", key)
		}
	}
	return nil
}
