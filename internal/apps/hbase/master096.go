package hbase

import (
	"fmt"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// roleOf strips the incarnation suffix from a PID.
func roleOf(pid string) string {
	if i := strings.IndexByte(pid, '#'); i >= 0 {
		return pid[:i]
	}
	return pid
}

// master096Main is the 0.96.0 HMaster. Its startup sequence doubles as the
// master-restart recovery path of the HB1 workload: the same code runs in
// the fresh master and in the restarted one, reading whatever the previous
// incarnation left in ZooKeeper and the global FS.
func master096Main(ctx *sim.Context, p params, kv *storage.KV, gfs *storage.GlobalFS) {
	defer ctx.Scope("masterMain")()
	self := ctx.Self()
	rit := ctx.NamedObject("rit")
	flags := ctx.NamedObject("flags")

	// ZK watch events: the unassigned znode drives the RIT map (Figure 6).
	self.HandleEvent("unassigned-changed", func(ctx *sim.Context, payload sim.Value) {
		defer ctx.Scope("ritUpdate")()
		state, err := kv.GetData(ctx, "/hbase/unassigned/meta")
		if err != nil {
			return
		}
		if ctx.Guard(sim.Derive(state.Str() == "OPENED", state)) {
			rit.Set(ctx, "meta", sim.V(nil)) // W of Figure 6: RIT.remove(Meta)
			ctx.Cluster().SetFact("hb.metaLocation", "rs0")
			return
		}
		rit.Set(ctx, "meta", state)
	})

	self.HandleMsg("ping-ack", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedCond(m.Payload.Str()).Signal(ctx, m.Payload)
	})
	self.HandleMsg("split-old-done", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedCond("logSplitDone").Signal(ctx, m.Payload)
	})
	self.HandleMsg("ns-ready", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedObject("flags").Set(ctx, "nsRemote", sim.V(true))
	})
	self.HandleMsg("region-ack", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedObject("flags").Set(ctx, "ack-"+m.Payload.Str(), sim.V(true))
	})
	self.HandleMsg("region-opened", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedObject("flags").Set(ctx, "opened-"+m.Payload.Str(), sim.V(true))
	})

	self.HandleMsg("server-load", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedObject("serverLoads").Set(ctx, "load-"+roleOf(m.From), m.Payload)
	})

	// --- Startup / recovery sequence ---

	// Exp-FP: the previous active master's contact info (published late in
	// its startup) is read and pinged; pinging a dead master raises a
	// caught connection exception.
	info, infoErr := kv.GetData(ctx, "/hbase/active-master-info")
	if infoErr == nil && ctx.Guard(info) && info.Str() != ctx.PID() {
		if sendErr := ctx.Send(info.Str(), "master-ping", info); sendErr != nil {
			ctx.Try(func() {
				ctx.Throw("ConnectException", info)
			})
		}
	}
	// Whatever was learned about the previous master is shared.
	_ = ctx.Send("rs1", "previous-master-info", info)
	// Exp-FP #1: the active-master lock. The previous incarnation's
	// ephemeral znode may outlive it until the ZK session expires; the
	// NodeExists exception is caught and retried.
	for {
		ok, err := kv.Create(ctx, "/hbase/master", sim.V(ctx.PID()), storage.Ephemeral())
		if err == nil {
			break
		}
		ctx.Try(func() {
			ctx.Throw("MasterNodeExistsException", ok)
		})
		ctx.Sleep(80)
	}

	// The cluster id marker is consulted in a confined scope with no
	// failure-prone consequence, so impact estimation prunes its pair.
	func() {
		defer ctx.Scope("readClusterID")()
		id := kv.Exists(ctx, "/hbase/clusterid")
		if !ctx.Guard(id) {
			_, _ = kv.Create(ctx, "/hbase/clusterid", sim.V("cluster-1"))
		}
	}()

	// Benign FP #1: the balancer state left by the previous master is read
	// and honoured; any value is valid.
	bal, balErr := kv.GetData(ctx, "/hbase/balancer-state")
	if balErr == nil && ctx.Guard(bal) {
		_ = ctx.Send("rs0", "balancer-mode", bal)
	}
	// ... and this master publishes its own (the conflicting write).
	if err := kv.SetData(ctx, "/hbase/balancer-state", sim.V("on:"+ctx.PID())); err != nil {
		_, _ = kv.Create(ctx, "/hbase/balancer-state", sim.V("on:"+ctx.PID()))
	}

	// Dependence-pruning fodder: assignment plans are rewritten by every
	// master before being consulted.
	for r := 0; r < p.regions; r++ {
		path := fmt.Sprintf("/hbase/plan/region-%d", r)
		for k := 0; k < p.planWrites; k++ {
			if err := kv.SetData(ctx, path, sim.V(ctx.PID())); err != nil {
				_, _ = kv.Create(ctx, path, sim.V(ctx.PID()))
			}
		}
		plan, _ := kv.GetData(ctx, path)
		_ = plan
	}

	// Impact-pruning fodder: region-state znodes written by the
	// RegionServers (on this master's orders) are re-read for logging only.
	func() {
		defer ctx.Scope("reloadRegionStates")()
		for r := 0; r < p.regions; r++ {
			st, _ := kv.GetData(ctx, fmt.Sprintf("/hbase/region-state/region-%d", r))
			ctx.Log(st.Str())
		}
	}()

	// Watch META assignment state before initiating anything.
	kv.Watch(ctx, "/hbase/unassigned/meta", "unassigned-changed", false)

	// One RPC round-trip (its client wait is timeout-protected like every
	// HBase RPC, so it lands in the wait-timeout pruning column).
	if info, err := ctx.Call("rs0", "GetServerInfo"); err == nil {
		ctx.Log(info.Str())
	}

	// Timeout-protected coordination rounds (wait-timeout pruning fodder):
	// each wait pairs with a signal caused by a RegionServer message.
	for i, round := range []struct{ name, rs string }{
		{"rs-report-a", "rs0"}, {"rs-report-b", "rs1"},
		{"meta-verify", "rs0"}, {"balance-round-a", "rs1"},
		{"balance-round-b", "rs0"}, {"favored-nodes", "rs1"},
	} {
		_ = ctx.Send(round.rs, "master-ping", sim.V(round.name))
		if _, err := ctx.NamedCond(round.name).WaitTimeout(ctx, 400); err != nil {
			ctx.LogError(fmt.Sprintf("master: round %d (%s) timed out", i, round.name))
		}
	}

	// --- Mid-startup persistent markers. These all land *after* the usual
	// fault-injection point, so a crash-recovery pair on them is triggered
	// by crashing right after the write — and every one is handled: the
	// caught exceptions are the paper's "Exp." false positives. ---

	// Backup-master registration (scanned and pinged by the next master).
	okBackup, _ := kv.Create(ctx, "/hbase/backup-masters/"+ctx.PID(), sim.V(ctx.PID()), storage.Ephemeral())

	// The recovery-plan scratch file: a leftover raises a caught
	// FileAlreadyExists and an alternate name is used.
	okPlan, planErr := gfs.Create(ctx, "/hbase/.tmp/meta-plan", sim.V(ctx.PID()))
	if planErr != nil {
		ctx.Try(func() {
			ctx.Throw("FileAlreadyExistsException", okPlan)
		})
		_, _ = gfs.Create(ctx, "/hbase/.tmp/meta-plan."+ctx.PID(), sim.V(ctx.PID()))
	}

	// The split-log round marker: a leftover is caught and skipped.
	okMarker, markerErr := kv.Create(ctx, "/hbase/splitlog-marker", sim.V(ctx.PID()))
	if markerErr != nil {
		ctx.Try(func() {
			ctx.Throw("SplitMarkerExistsException", okMarker)
		})
	}

	// The assignment scratch lock: a leftover is caught and cleared.
	okLock, lockErr := kv.Create(ctx, "/hbase/tmp-lock", sim.V(ctx.PID()))
	if lockErr != nil {
		ctx.Try(func() {
			ctx.Throw("LockExistsException", okLock)
		})
		_ = kv.Delete(ctx, "/hbase/tmp-lock")
		_, _ = kv.Create(ctx, "/hbase/tmp-lock", sim.V(ctx.PID()))
	}

	// This master is now the active one; publish its contact info.
	if err := kv.SetData(ctx, "/hbase/active-master-info", sim.V(ctx.PID())); err != nil {
		_, _ = kv.Create(ctx, "/hbase/active-master-info", sim.V(ctx.PID()))
	}

	// Startup status report: the marker outcomes are announced to the
	// cluster (a global impact for each of the ops above).
	_ = ctx.Send("rs0", "startup-report", sim.Derive("markers", okBackup, okPlan, okMarker, okLock))

	// FP (c): waiting for old-log cleanup with no timeout of its own — the
	// split watchdog below is the rescue FCatch cannot see.
	_ = ctx.Send("rs0", "split-old", sim.V("logs"))

	// The timeout-monitor component: it force-completes assignments and log
	// splits that dawdle (HBase's TimeoutMonitor).
	ctx.GoDaemon("timeout-monitor", func(ctx *sim.Context) {
		defer ctx.Scope("timeoutMonitor")()
		ctx.Sleep(p.rescueAfter)
		flags := ctx.NamedObject("flags")
		if !flags.Get(ctx, "ack-special").Bool() {
			flags.Set(ctx, "ack-special", sim.V(true))
		}
		ctx.NamedCond("logSplitDone").Signal(ctx, sim.V("forced"))
	})

	if _, err := ctx.NamedCond("logSplitDone").Wait(ctx); err != nil {
		ctx.LogError("master: log split wait failed")
	}

	// FP (a): namespace initialization has two writers — a local init
	// thread and the RegionServer's report. The observed run exits through
	// the remote one.
	ctx.Go("ns-init-local", func(ctx *sim.Context) {
		ctx.Sleep(900)
		ctx.NamedObject("flags").Set(ctx, "nsLocal", sim.V(true))
	})
	_ = ctx.Send("rs1", "ns-init", sim.V("go"))
	ctx.SyncLoop(sim.LoopOpts{Name: "namespaceInit", SleepTicks: 40}, func(ctx *sim.Context) sim.Value {
		l := flags.Get(ctx, "nsLocal")
		r := flags.Get(ctx, "nsRemote")
		return sim.Derive(l.Bool() || r.Bool(), l, r)
	})

	// FP (b): a region assignment acknowledged by message, rescued by the
	// timeout monitor when the RegionServer dies.
	_ = ctx.Send("rs0", "open-region", sim.V("special"))
	ctx.SyncLoop(sim.LoopOpts{Name: "waitRegionAck", SleepTicks: 40}, func(ctx *sim.Context) sim.Value {
		return flags.Get(ctx, "ack-special")
	})

	// Assign user regions (creates the region-state znodes on the RS side).
	for r := 0; r < p.regions; r++ {
		target := "rs0"
		if r%2 == 1 {
			target = "rs1"
		}
		_ = ctx.Send(target, "open-region", sim.V(fmt.Sprintf("region-%d", r)))
	}

	// --- Bug HB1 (Figure 6): assign META and poll the RIT map without any
	// timeout until the OPENED notification removes the entry. ---
	metaState, metaErr := kv.GetData(ctx, "/hbase/unassigned/meta")
	alreadyOpen := metaErr == nil && ctx.Guard(sim.Derive(metaState.Str() == "OPENED", metaState))
	if !alreadyOpen {
		// Pick a live RegionServer from the ZK registry.
		metaHost := "rs0"
		if live := kv.Children(ctx, "/hbase/rs"); len(live) > 0 {
			metaHost = live[0]
		}
		rit.Set(ctx, "meta", sim.V("PENDING_OPEN"))
		_ = ctx.Send(metaHost, "open-meta", sim.V("meta"))
		ctx.SyncLoop(sim.LoopOpts{Name: "waitMetaOpen", SleepTicks: 45}, func(ctx *sim.Context) sim.Value {
			entry := rit.Get(ctx, "meta")
			return sim.Derive(entry.IsNil(), entry)
		})
	} else {
		ctx.Cluster().SetFact("hb.metaLocation", "rs0")
	}

	// Loop-timeout pruning fodder: three distinct deadline-bounded polls
	// (each is its own static loop, as the pruned loops in the paper are).
	deadline0 := ctx.Now().Int() + 1500
	ctx.SyncLoop(sim.LoopOpts{Name: "confirm-region-0", SleepTicks: 30}, func(ctx *sim.Context) sim.Value {
		opened := flags.Get(ctx, "opened-region-0")
		now := ctx.Now()
		return sim.Derive(opened.Bool() || now.Int() > deadline0, opened, now)
	})
	deadline1 := ctx.Now().Int() + 1500
	ctx.SyncLoop(sim.LoopOpts{Name: "confirm-region-1", SleepTicks: 30}, func(ctx *sim.Context) sim.Value {
		opened := flags.Get(ctx, "opened-region-1")
		now := ctx.Now()
		return sim.Derive(opened.Bool() || now.Int() > deadline1, opened, now)
	})
	deadline2 := ctx.Now().Int() + 1500
	ctx.SyncLoop(sim.LoopOpts{Name: "confirm-region-2", SleepTicks: 30}, func(ctx *sim.Context) sim.Value {
		opened := flags.Get(ctx, "opened-region-2")
		now := ctx.Now()
		return sim.Derive(opened.Bool() || now.Int() > deadline2, opened, now)
	})

	// One balancer round over the reported server loads before declaring
	// the cluster up.
	loads := ctx.NamedObject("serverLoads")
	l0 := loads.Get(ctx, "load-rs0")
	l1 := loads.Get(ctx, "load-rs1")
	if ctx.Guard(sim.Derive(l0.Int() > l1.Int()+2, l0, l1)) {
		_ = ctx.Send("rs1", "open-region", sim.V("rebalanced"))
	}

	// Up: publish and finish. The previous incarnation's marker is reused.
	up := kv.Exists(ctx, "/hbase/cluster-up")
	if !ctx.Guard(up) {
		_, _ = kv.Create(ctx, "/hbase/cluster-up", sim.V("true"))
	}
	ctx.Cluster().SetFact("hb.clusterUp", "true")
}
