package hbase

import (
	"fmt"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// master090Main is the 0.90.1 HMaster: it waits for RegionServer
// registration, assigns the ROOT region, routes client puts, and — through
// its ZK watcher — recovers a dead RegionServer's write-ahead log and
// replication queue.
func master090Main(ctx *sim.Context, p params, kv *storage.KV, gfs *storage.GlobalFS) {
	defer ctx.Scope("masterMain")()
	self := ctx.Self()
	state := ctx.NamedObject("masterState")

	// RegionServer liveness via ZK: creations feed registration; deletions
	// (session expiry after a crash) trigger server recovery. The deletion
	// path is HBase's ServerShutdownHandler — a developer-named recovery
	// interface (Section 4.3.1).
	ctx.Cluster().MarkRecoveryHandler("event:rs-changed-deleted")

	self.HandleEvent("rs-changed", func(ctx *sim.Context, payload sim.Value) {
		change := payload.Str()
		switch {
		case strings.HasPrefix(change, "created:"):
			defer ctx.Scope("rsRegistered")()
			cnt := state.Get(ctx, "serverCount")
			state.Set(ctx, "serverCount", sim.Derive(cnt.Int()+1, cnt))
			state.Set(ctx, "liveRS", sim.V(strings.TrimPrefix(change, "created:/hbase/rs/")))
			ctx.NamedCond("rs-any-registered").Signal(ctx, payload)
		case strings.HasPrefix(change, "deleted:"):
			dead := strings.TrimPrefix(change, "deleted:/hbase/rs/")
			// Re-dispatch so the recovery work carries its own label.
			ctx.Emit("rs-changed-deleted", sim.Derive(dead, payload))
		}
	})

	self.HandleEvent("rs-changed-deleted", func(ctx *sim.Context, payload sim.Value) {
		defer ctx.Scope("serverShutdownHandler")()
		dead := payload.Str()
		cnt := state.Get(ctx, "serverCount")
		state.Set(ctx, "serverCount", sim.Derive(cnt.Int()-1, cnt))
		state.Set(ctx, "liveRS", sim.V(nil))
		state.Set(ctx, "owner", sim.V("self"))
		// HB3/HB4's root cause: a ROOT open believed to be in progress is
		// never reassigned.
		inProgress := state.Get(ctx, "rootAssignInProgress")
		rootLoc := state.Get(ctx, "rootLoc")
		if !ctx.Guard(inProgress) && ctx.Guard(sim.Derive(rootLoc.Str() == dead, rootLoc)) {
			state.Set(ctx, "rootLoc", sim.V("hmaster-hosted"))
			ctx.Cluster().SetFact("hb.rootLocation", "hmaster-hosted")
		}
		// Recover the dead server's state in a worker of its own.
		ctx.Go("serverRecovery", func(ctx *sim.Context) {
			defer ctx.Scope("serverRecovery")()
			splitDeadLogs(ctx, p, kv, gfs, dead)
			adoptReplicationQueue(ctx, p, kv, dead)
		})
	})

	self.HandleMsg("root-opened", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("rootOpened")()
		state.Set(ctx, "rootAssignInProgress", sim.V(false))
		// HB4's W: the root location write the catalog poller waits on.
		state.Set(ctx, "rootLoc", m.Payload)
		ctx.Cluster().SetFact("hb.rootLocation", m.Payload.Str())
		// HB3's W: the signal the master's untimed wait depends on.
		ctx.NamedCond("root-assigned").Signal(ctx, m.Payload)
	})

	self.HandleMsg("flush-done", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedCond("flush-done").Signal(ctx, m.Payload)
	})

	// Client put routing with failover to master-hosting when the region
	// server is gone.
	self.HandleRPC("Put", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("routePut")()
		key := args[0]
		for {
			owner := state.Get(ctx, "owner")
			if ctx.Guard(sim.Derive(owner.Str() == "self", owner)) {
				// Host the edit on the master: log it and remember it.
				logKey(ctx, gfs, "/hbase/hlog/hmaster", key)
				ctx.Cluster().SetFact("hb.table."+key.Str(), "hosted@master")
				ctx.Cluster().SetFact("hb.replicated."+key.Str(), "master")
				_ = ctx.Send("peer", "replicate", key)
				return sim.Derive("ok", key)
			}
			if _, err := ctx.Call(owner.Str(), "PutLocal", key); err == nil {
				return sim.Derive("ok", key)
			}
			// The owner is unreachable; wait for recovery to repoint it.
			ctx.Sleep(60)
		}
	})

	// --- Startup ---
	kv.Watch(ctx, "/hbase/rs", "rs-changed", true)
	state.Set(ctx, "owner", sim.V("rs0"))

	// The two expected-behaviour candidates: waiting for *some* RS is
	// intended to block while no RS exists (Section 8.1.1's HB2 Exp. pair).
	if _, err := ctx.NamedCond("rs-any-registered").Wait(ctx); err != nil {
		ctx.LogError("master: registration wait failed")
	}
	ctx.SyncLoop(sim.LoopOpts{Name: "waitServerCount", SleepTicks: 30}, func(ctx *sim.Context) sim.Value {
		cnt := state.Get(ctx, "serverCount")
		return sim.Derive(cnt.Int() > 0, cnt)
	})

	// --- Bugs HB3/HB4: assign ROOT and await the opened notification with
	// an untimed wait and an untimed poll. ---
	rs := state.Get(ctx, "liveRS")
	state.Set(ctx, "rootAssignInProgress", sim.V(true))
	state.Set(ctx, "owner", rs)
	_ = ctx.Send(rs.Str(), "open-root", sim.V("root"))
	if _, err := ctx.NamedCond("root-assigned").Wait(ctx); err != nil {
		ctx.LogError("master: root wait failed")
	}
	ctx.SyncLoop(sim.LoopOpts{Name: "waitRootOpen", SleepTicks: 40}, func(ctx *sim.Context) sim.Value {
		loc := state.Get(ctx, "rootLoc")
		return sim.Derive(!loc.IsNil(), loc)
	})

	// The client finishes the job synchronously through this RPC.
	self.HandleRPC("FinishJob", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("finishJob")()
		owner := state.Get(ctx, "owner")
		if ctx.Guard(sim.Derive(owner.Str() != "self", owner)) {
			_ = ctx.Send(owner.Str(), "flush", sim.V("now"))
			// Wait-timeout pruning fodder: the flush acknowledgement wait
			// is properly bounded.
			if _, err := ctx.NamedCond("flush-done").WaitTimeout(ctx, 8_000); err != nil {
				ctx.LogError("master: flush ack timed out")
			}
		}
		ctx.Cluster().SetFact("hb.clusterUp", "true")
		return sim.Derive("finished", owner)
	})
}

// splitDeadLogs replays a dead RegionServer's write-ahead log so its
// unflushed edits survive. HB2: the split lock znode is plain (not
// ephemeral); one left behind by the dead server aborts the split.
func splitDeadLogs(ctx *sim.Context, p params, kv *storage.KV, gfs *storage.GlobalFS, dead string) {
	defer ctx.Scope("splitDeadLogs")()

	// Dependence-pruning fodder: the split progress marker is rewritten
	// before any consultation.
	progPath := "/hbase/split-progress/" + dead
	if err := kv.SetData(ctx, progPath, sim.V("splitting")); err != nil {
		_, _ = kv.Create(ctx, progPath, sim.V("splitting"))
	}
	prog, _ := kv.GetData(ctx, progPath)
	_ = prog

	// Impact-pruning fodder: the dead server's metric znodes are read for
	// the recovery log only.
	func() {
		defer ctx.Scope("readDeadMetrics")()
		for i := 0; i < p.regions; i++ {
			metric, _ := kv.GetData(ctx, fmt.Sprintf("/hbase/rs-info/%s/metric-%d", dead, i))
			ctx.Log(metric.Str())
		}
	}()

	lock, err := kv.Create(ctx, "/hbase/splitlog/"+dead+"-lock", sim.V(ctx.PID()))
	if err != nil {
		// HB2: the lock was left by the dead server's log roll; give up.
		ctx.Guard(lock)
		ctx.LogError("master: split lock busy; skipping log split", lock)
		_ = ctx.Send("peer", "split-result", lock)
		return
	}
	for _, seg := range []string{"/hbase/hlog/" + dead, "/hbase/hlog/" + dead + "-seg2"} {
		content, rerr := gfs.Read(ctx, seg)
		if rerr != nil {
			continue
		}
		for _, key := range splitKeys(content.Str()) {
			ctx.Cluster().SetFact("hb.table."+key, "replayed")
		}
	}
	_ = kv.Delete(ctx, "/hbase/splitlog/"+dead+"-lock")
	// The split outcome is reported either way; the lock acquisition's
	// result has global impact.
	_ = ctx.Send("peer", "split-result", lock)
}

// adoptReplicationQueue ships whatever the dead server's replication queue
// still holds. HB5/HB6: the queue trusts znodes the dead server deleted a
// moment too early.
func adoptReplicationQueue(ctx *sim.Context, p params, kv *storage.KV, dead string) {
	defer ctx.Scope("adoptReplicationQueue")()
	summary := sim.V("adopted:" + dead)
	marker, err := kv.GetData(ctx, "/hbase/replication/"+dead)
	if err != nil || !ctx.Guard(marker) {
		// HB6: the queue directory marker is gone; nothing to adopt.
		ctx.LogError("master: no replication queue for " + dead)
		_ = ctx.Send("peer", "queue-adopted", sim.Derive(summary.Data, marker))
		return
	}
	summary = sim.Derive(summary.Data, marker)
	for _, log := range []string{"log1", "log2"} {
		pending, rerr := kv.GetData(ctx, "/hbase/replication/"+dead+"/"+log)
		summary = sim.Derive(summary.Data, summary, pending)
		if rerr != nil {
			// HB5: the log's queue znode is gone; its tail edits are lost.
			continue
		}
		if !ctx.Guard(pending) {
			continue
		}
		for _, key := range splitKeys(pending.Str()) {
			ctx.Cluster().SetFact("hb.replicated."+key, "adopted")
			_ = ctx.Send("peer", "replicate", pending)
		}
	}
	// The adoption summary is reported to the peer cluster; the queue reads
	// have global impact through it.
	_ = ctx.Send("peer", "queue-adopted", summary)
}

func splitKeys(csv string) []string {
	if csv == "" {
		return nil
	}
	return strings.Split(csv, ",")
}

// logKey appends a key to a write-ahead log file.
func logKey(ctx *sim.Context, gfs *storage.GlobalFS, path string, key sim.Value) {
	gfs.Append(ctx, path, key)
}
