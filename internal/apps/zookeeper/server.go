package zookeeper

import (
	"fmt"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

const dataDir = "/zk/data"

// serverMain runs one ZooKeeper server. The startup sequence is also the
// restart-recovery path: epochs, snapshots and the transaction log are all
// read back from the machine-local disk, which survives the crash.
func serverMain(ctx *sim.Context, p params, lfs *storage.LocalFS, leader bool) {
	defer ctx.Scope("serverMain")()
	self := ctx.Self()
	state := ctx.NamedObject("serverState")
	var pendingQuorum *sim.Cond

	myid, _ := lfs.Read(ctx, dataDir+"/myid")
	ctx.Guard(myid)

	self.HandleMsg("follower-hello", func(ctx *sim.Context, m sim.Message) {
		state.Set(ctx, "followerConnected", sim.V(true))
	})

	self.HandleMsg("proposal", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("applyProposal")()
		state.Set(ctx, "lastProposal", m.Payload)
		_ = ctx.Send(m.From, "prop-ack", m.Payload)
	})

	self.HandleMsg("prop-ack", func(ctx *sim.Context, m sim.Message) {
		if pendingQuorum != nil {
			pendingQuorum.Signal(ctx, m.Payload)
		}
	})

	self.HandleRPC("ProposeEpoch", func(ctx *sim.Context, args []sim.Value) sim.Value {
		return sim.Derive("epoch-ok", args[0])
	})

	// Followers synchronize from the leader's in-memory database view.
	self.HandleRPC("SyncState", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("syncState")()
		applied := state.Get(ctx, "applied")
		return sim.Derive(applied.Int(), applied, args[0])
	})

	// --- Epoch recovery: the paper's ZK benchmark bug. acceptedEpoch is
	// persisted before currentEpoch; a crash in between leaves the database
	// unloadable on restart. ---
	if leader {
		accepted, aErr := lfs.Read(ctx, dataDir+"/acceptedEpoch")
		current, cErr := lfs.Read(ctx, dataDir+"/currentEpoch")
		stale := aErr == nil && (cErr != nil || accepted.Int() > current.Int())
		if ctx.Guard(sim.Derive(stale, accepted, current)) {
			ctx.LogFatal("zk: acceptedEpoch is ahead of currentEpoch; unable to load database", accepted, current)
			return
		}
		newEpoch := current.Int() + 1
		lfs.Write(ctx, dataDir+"/acceptedEpoch", sim.Derive(newEpoch, accepted, current))
		if _, err := ctx.Call("zkfollower", "ProposeEpoch", sim.V(newEpoch)); err != nil {
			ctx.LogError("zk: epoch proposal unanswered")
		}
		// The second half of the hazard window ends here.
		lfs.Write(ctx, dataDir+"/currentEpoch", sim.Derive(newEpoch, accepted, current))

		// A baseline snapshot marks the first election — written in the same
		// two-step (tearable) fashion as every snapshot. Later incarnations
		// keep whatever baseline already exists.
		func() {
			defer ctx.Scope("baselineSnapshot")()
			if ctx.Guard(lfs.Exists(ctx, dataDir+"/snap-000")) {
				return
			}
			for _, content := range []string{"partial", fmt.Sprintf("db:e%d|OK", newEpoch)} {
				lfs.Write(ctx, dataDir+"/snap-000", sim.Derive(content, accepted))
				ctx.Sleep(9)
			}
		}()
	}

	// --- Snapshot recovery: Figure 8 verbatim. Walk snapshots newest
	// first; validate (R1) before deserializing (R2). The control
	// dependence of R2 on R1 is the sanity check FCatch's dependence
	// analysis recognizes and prunes. ---
	var dt sim.Value
	snaps := lfs.List(ctx, dataDir)
	for i := len(snaps) - 1; i >= 0; i-- {
		f := snaps[i]
		if !strings.Contains(f, "/snap-") {
			continue
		}
		v, err := lfs.Read(ctx, f) // R1: length/checksum validation
		if err != nil {
			continue
		}
		if ctx.Guard(sim.Derive(strings.HasSuffix(v.Str(), "|OK"), v)) {
			data, _ := lfs.Read(ctx, f) // R2: restore from the snapshot
			dt = data
			break
		}
		ctx.LogError("zk: skipping torn snapshot " + f)
	}

	// Replay the transaction log on top of the snapshot (the reads are
	// informational for the detectors: their content never reaches a
	// failure-prone sink, so impact estimation prunes their pairs).
	txns, _ := lfs.Read(ctx, dataDir+"/txnlog")
	applied := 0
	if txns.Str() != "" {
		applied = len(strings.Split(txns.Str(), ","))
	}
	zxid, _ := lfs.Read(ctx, dataDir+"/zxid-meta")
	ctx.Log(zxid.Str())

	// Dependence-pruning fodder: the recovery marker and the serving-state
	// caches are rewritten before every consultation.
	lfs.Write(ctx, dataDir+"/recovery-marker", sim.Derive("recovered", myid))
	marker, _ := lfs.Read(ctx, dataDir+"/recovery-marker")
	_ = marker
	for _, cache := range []string{"/session-cache", "/proposal-cursor", "/commit-cursor"} {
		lfs.Write(ctx, dataDir+cache, sim.Derive("reset", myid))
		v, _ := lfs.Read(ctx, dataDir+cache)
		_ = v
	}
	// Impact-pruning fodder: latency statistics and the epoch history are
	// consulted for logs only.
	stats, _ := lfs.Read(ctx, dataDir+"/latency-stats")
	ctx.Log(stats.Str())
	hist, _ := lfs.Read(ctx, dataDir+"/epoch-history")
	ctx.Log(hist.Str())

	ctx.StartService("zk-database", dt)
	state.Set(ctx, "applied", sim.V(applied))
	ctx.Cluster().SetFact("zk.dbsize", applied)
	ctx.Cluster().SetFact("zk.serving", "true")

	if !leader {
		_ = ctx.Send("zkleader", "follower-hello", myid)
		// Keep the database view synchronized with the leader — across its
		// restarts — until the workload ends.
		ctx.GoDaemon("state-syncer", func(ctx *sim.Context) {
			defer ctx.Scope("stateSyncer")()
			for {
				if v, err := ctx.Call("zkleader", "SyncState", myid); err == nil {
					state.Set(ctx, "syncedSize", v)
					ctx.Cluster().SetFact("zk.followerSynced", v.Int())
				} else {
					// The leader is mid-restart; announce again when it
					// returns so it learns this follower exists.
					_ = ctx.Send("zkleader", "follower-hello", myid)
				}
				ctx.Sleep(140)
				if ctx.Cluster().FactStr("zk.clientDone") == "true" {
					return
				}
			}
		})
		return
	}

	// Two deadline-bounded startup polls (loop-timeout pruning fodder).
	deadlineA := ctx.Now().Int() + 1200
	ctx.SyncLoop(sim.LoopOpts{Name: "awaitFollower", SleepTicks: 30}, func(ctx *sim.Context) sim.Value {
		f := state.Get(ctx, "followerConnected")
		now := ctx.Now()
		return sim.Derive(f.Bool() || now.Int() > deadlineA, f, now)
	})
	deadlineB := ctx.Now().Int() + 1600
	ctx.SyncLoop(sim.LoopOpts{Name: "awaitEnsembleSync", SleepTicks: 30}, func(ctx *sim.Context) sim.Value {
		f := state.Get(ctx, "followerConnected")
		now := ctx.Now()
		return sim.Derive(f.Bool() || now.Int() > deadlineB, f, now)
	})

	// --- Serve client writes until the client is done. ---
	self.HandleRPC("Create", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("createZnode")()
		key := args[0]
		lfs.Append(ctx, dataDir+"/txnlog", key)
		lfs.Write(ctx, dataDir+"/zxid-meta", sim.Derive("zxid", key))
		lfs.Write(ctx, dataDir+"/session-cache", sim.Derive("s", key))
		lfs.Write(ctx, dataDir+"/proposal-cursor", sim.Derive("p", key))
		lfs.Write(ctx, dataDir+"/commit-cursor", sim.Derive("c", key))
		lfs.Write(ctx, dataDir+"/latency-stats", sim.Derive("l", key))
		lfs.Append(ctx, dataDir+"/epoch-history", key)
		n := state.Get(ctx, "applied")
		total := n.Int() + 1
		state.Set(ctx, "applied", sim.Derive(total, n, key))
		ctx.Cluster().SetFact("zk.dbsize", total)

		// Quorum: propose to the follower and wait — with a timeout, as
		// the real quorum packets have (wait-timeout pruning fodder).
		pendingQuorum = ctx.NewCond("quorum-ack")
		_ = ctx.Send("zkfollower", "proposal", key)
		if _, err := pendingQuorum.WaitTimeout(ctx, 400); err != nil {
			ctx.LogError("zk: quorum ack timed out")
		}

		// Snapshot every few edits — written in two steps; a crash in
		// between leaves a torn snapshot for Figure 8's validator to catch.
		if total%p.snapEvery == 0 {
			snapPath := fmt.Sprintf("%s/snap-%03d", dataDir, total)
			for _, content := range []string{"partial", fmt.Sprintf("db:%d|OK", total)} {
				lfs.Write(ctx, snapPath, sim.Derive(content, key))
				ctx.Sleep(9)
			}
		}
		return sim.Derive("ok", key)
	})

	ctx.SyncLoop(sim.LoopOpts{Name: "serveUntilClientDone", SleepTicks: 60}, func(ctx *sim.Context) sim.Value {
		return sim.V(ctx.Cluster().FactStr("zk.clientDone") == "true")
	})
}

// clientMain drives the ZK workload: znode creates with retry across the
// leader's restarts.
func clientMain(ctx *sim.Context, p params) {
	defer ctx.Scope("zkClient")()
	ctx.Sleep(180)
	acked := 0
	for i := 0; i < p.edits; i++ {
		key := sim.V(fmt.Sprintf("/app/node-%d", i))
		for {
			if _, err := ctx.Call("zkleader", "Create", key); err == nil {
				break
			}
			ctx.Sleep(45)
		}
		acked++
		ctx.Cluster().SetFact("zk.acked", acked)
		ctx.Sleep(25)
	}
	ctx.Cluster().SetFact("zk.clientDone", "true")
}
