// Package zookeeper is a miniature ZooKeeper server ensemble: a leader and a
// follower running an epoch-stamped startup, a client session writing
// znodes, transaction logging and periodic snapshots to the local disk, and
// a restart path that recovers the database from those files.
//
// The benchmark bug (the paper's ZK row, ZOOKEEPER-1653-style): during
// election the leader persists acceptedEpoch and currentEpoch as two local
// files, in that order. A crash between the two writes leaves
// acceptedEpoch > currentEpoch, and the restarted server refuses to load its
// database — "Restart fails" (crash-recovery, Write vs Read, local file).
//
// The snapshot-recovery path reproduces Figure 8's sanity-check pattern
// verbatim: the restarted server walks snapshots newest-first, validates
// each (R1) before deserializing it (R2); the validation's control
// dependence makes FCatch prune the R2 pair, while the R1 pair survives as a
// benign false positive (a torn snapshot merely falls back to an older one).
package zookeeper

import (
	"fmt"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

type params struct {
	edits        int
	snapEvery    int // snapshot every N edits
	restartDelay int64
}

// Workload is the "ZK 3.4.5 Startup" benchmark row.
type Workload struct{ p params }

// New returns the ZK workload.
func New() *Workload {
	return &Workload{p: params{edits: 10, snapEvery: 3, restartDelay: 160}}
}

// Name implements core.Workload.
func (w *Workload) Name() string { return "ZK" }

// System implements core.Workload.
func (w *Workload) System() string { return "ZooKeeper 3.4.5" }

// CrashTarget implements core.Workload.
func (w *Workload) CrashTarget() string { return "zkleader" }

// RestartRoles implements core.Workload: the operator restarts a dead
// server on the same machine (its disk survives).
func (w *Workload) RestartRoles() map[string]int64 {
	return map[string]int64{"zkleader": w.p.restartDelay}
}

// Tune implements core.Workload.
func (w *Workload) Tune(cfg *sim.Config) {
	cfg.RPCClientTimeout = 500
	cfg.RPCFailFast = true
	cfg.MaxSteps = 25_000
}

// ExpectedBehaviors implements core.Workload.
func (w *Workload) ExpectedBehaviors() []string { return nil }

// Configure implements core.Workload.
func (w *Workload) Configure(c *sim.Cluster) {
	p := w.p
	lfs := storage.NewLocalFS()
	c.SetFact("zk.lfs", lfs)
	lfs.Seed("m-zk0", "/zk/data/myid", sim.V("1"))
	lfs.Seed("m-zk1", "/zk/data/myid", sim.V("2"))

	c.StartProcess("zkleader", "m-zk0", func(ctx *sim.Context) { serverMain(ctx, p, lfs, true) })
	c.StartProcess("zkfollower", "m-zk1", func(ctx *sim.Context) { serverMain(ctx, p, lfs, false) })
	c.StartProcess("zkclient", "m-zkc", func(ctx *sim.Context) { clientMain(ctx, p) })
}

// Check implements core.Workload: the service must come up (and back up,
// after a tolerated fault) with every acknowledged edit in its database.
func (w *Workload) Check(c *sim.Cluster, out *sim.Outcome) error {
	if !out.Completed {
		return fmt.Errorf("zookeeper: hang: %+v", out.Hung)
	}
	if len(out.FatalLogs) > 0 {
		return fmt.Errorf("zookeeper: fatal: %v", out.FatalLogs)
	}
	if len(out.UncaughtExceptions) > 0 {
		return fmt.Errorf("zookeeper: exceptions: %v", out.UncaughtExceptions)
	}
	if c.FactStr("zk.serving") != "true" {
		return fmt.Errorf("zookeeper: service never came up")
	}
	acked, _ := c.Fact("zk.acked").(int)
	stored, _ := c.Fact("zk.dbsize").(int)
	if stored < acked {
		return fmt.Errorf("zookeeper: database lost edits: stored=%d acked=%d", stored, acked)
	}
	return nil
}
