package mapreduce

import (
	"fmt"
	"sort"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// taskRole maps a task id ("1" for map 1, "r0" for reduce 0) to the process
// role that hosts its attempts.
func taskRole(id string) string {
	if strings.HasPrefix(id, "r") {
		return "reduce" + id[1:]
	}
	return "task" + id
}

// callAM calls the ApplicationMaster with retries: the AM may be mid-restart
// (MR2's recovery path), in which case calls fail fast and are retried.
func callAM(ctx *sim.Context, method string, args ...sim.Value) (sim.Value, error) {
	var last error
	for i := 0; i < 60; i++ {
		v, err := ctx.Call("am", method, args...)
		if err == nil {
			return v, nil
		}
		if _, ok := err.(*sim.RemoteError); ok {
			return sim.Value{}, err // application-level error: do not retry
		}
		last = err
		ctx.Sleep(30)
	}
	return sim.Value{}, last
}

// partition assigns a word to a reducer.
func partition(word string, numReducers int) int {
	h := 0
	for _, c := range word {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % numReducers
}

// encodeCounts renders a word-count map as "w=c;w=c" with sorted keys
// (determinism).
func encodeCounts(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return strings.Join(parts, ";")
}

// decodeCounts parses encodeCounts output.
func decodeCounts(s string) map[string]int {
	out := map[string]int{}
	if s == "" {
		return out
	}
	for _, part := range strings.Split(s, ";") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) == 2 {
			n := 0
			fmt.Sscanf(kv[1], "%d", &n)
			out[kv[0]] += n
		}
	}
	return out
}

// attemptMain is one task attempt — a mapper or a reducer. Both share the
// task lifecycle: announce, consult the AM, do the work, then run the
// CanCommit/StartCommit/DoneCommit protocol (whose hazard windows are bugs
// MR1 and MR4).
func attemptMain(ctx *sim.Context, p params, gfs *storage.GlobalFS, taskID string) {
	defer ctx.Scope("attemptMain")()
	me := sim.V(ctx.PID())
	taskV := sim.V(taskID)
	local := ctx.NamedObject("local")

	ctx.Self().HandleRPC("QueryDone", func(ctx *sim.Context, args []sim.Value) sim.Value {
		done := ctx.NamedObject("local").Get(ctx, "done")
		if ctx.Guard(done) {
			return sim.Derive("done", done)
		}
		return sim.Derive("working", done)
	})

	// Announce liveness once before anything else, so the AM's watcher
	// knows which attempt now owns the task.
	_ = ctx.Send("am", "task-heartbeat", taskV)

	// Ask before touching anything: a recovered task needs no rerun — and a
	// task stuck in COMMITTING turns this attempt away (MR4).
	state, err := callAM(ctx, "GetTaskState", taskV, me)
	if err != nil {
		ctx.LogError("attempt: cannot reach AM for task state")
		return
	}
	if ctx.Guard(sim.Derive(state.Str() == "done", state)) {
		// The previous attempt finished the task; adopt its result so the
		// AM's watcher gets its answer from us.
		local.Set(ctx, "done", sim.V(true))
		return
	}
	if ctx.Guard(sim.Derive(state.Str() == "busy", state)) {
		// MR4's symptom: the recovery attempt is killed while the task can
		// never finish.
		ctx.LogError("attempt: task reported busy; attempt exiting")
		return
	}

	// Liveness + progress reporting.
	ctx.GoDaemon("heartbeat", func(ctx *sim.Context) {
		for {
			_ = ctx.Send("am", "task-heartbeat", taskV)
			ctx.Sleep(p.heartbeatEvery)
		}
	})

	// Container localization: fetching the job jar and setting up the
	// working directory dominates attempt startup in real deployments.
	ctx.Sleep(int64(180 + len(taskID)*60))

	var outputs map[string]sim.Value // final path -> temp path content
	if strings.HasPrefix(taskID, "r") {
		outputs = runReduce(ctx, p, gfs, taskID)
	} else {
		outputs = runMap(ctx, p, gfs, taskID)
	}
	if outputs == nil {
		return
	}

	// Stage the outputs under attempt-unique temp names.
	temps := map[string]string{}
	var paths []string
	for final := range outputs {
		paths = append(paths, final)
	}
	sort.Strings(paths)
	for _, final := range paths {
		tmp := fmt.Sprintf("%s/tmp-%s-%s", stagingDir, strings.ReplaceAll(final, "/", "_"), ctx.PID())
		gfs.Write(ctx, tmp, outputs[final])
		temps[final] = tmp
	}

	// The commit protocol (Figure 1). The retry loop is the published
	// behaviour: a denied attempt retries, expecting the situation to
	// resolve — which it never does once MR1's window was hit.
	for {
		granted, err := callAM(ctx, "CanCommit", taskV, me)
		if err != nil {
			ctx.LogError("attempt: CanCommit unreachable; aborting attempt")
			return
		}
		if ctx.Guard(granted) {
			break
		}
		ctx.Sleep(50)
	}
	if _, err := callAM(ctx, "StartCommit", taskV, me); err != nil {
		ctx.LogError("attempt: StartCommit failed")
		return
	}
	for _, final := range paths {
		if err := gfs.Rename(ctx, temps[final], final); err != nil {
			ctx.LogFatal("attempt: commit rename failed")
			return
		}
	}
	if _, err := callAM(ctx, "DoneCommit", taskV, me); err != nil {
		ctx.LogError("attempt: DoneCommit failed")
		return
	}
	local.Set(ctx, "done", sim.V(true))
	gfs.Write(ctx, fmt.Sprintf("%s/history-%s", histDir, taskID), sim.Derive("committed", me))
	// The process lingers (a real container JVM does too); QueryDone keeps
	// answering until the platform tears the job down.
}

// runMap executes the map side of WordCount: count the split's words and
// partition the counts across the reducers.
func runMap(ctx *sim.Context, p params, gfs *storage.GlobalFS, taskID string) map[string]sim.Value {
	split, err := gfs.Read(ctx, fmt.Sprintf("/input/task-%s", taskID))
	if err != nil {
		ctx.LogFatal("attempt: input split missing")
		return nil
	}
	historyPath := fmt.Sprintf("%s/history-%s", histDir, taskID)
	gfs.Write(ctx, historyPath, sim.Derive("started", sim.V(ctx.PID())))

	perReducer := make([]map[string]int, p.numReducers)
	for r := range perReducer {
		perReducer[r] = map[string]int{}
	}
	for _, word := range strings.Fields(split.Str()) {
		perReducer[partition(word, p.numReducers)][word]++
	}
	for u := 0; u < p.progressUpdates; u++ {
		_ = ctx.Send("am", "progress-update", sim.V(taskID))
		ctx.Sleep(70) // a chunk of map computation per progress report
	}

	gfs.Write(ctx, historyPath, sim.Derive("mapped", sim.V(ctx.PID())))
	// Dependence-pruning fodder: the attempt validates its own history
	// write; every incarnation rewrites the file before reading it.
	hist, _ := gfs.Read(ctx, historyPath)
	_ = hist

	outputs := map[string]sim.Value{}
	for r := 0; r < p.numReducers; r++ {
		outputs[fmt.Sprintf("%s/mapout-%s-%d", stagingDir, taskID, r)] =
			sim.Derive(encodeCounts(perReducer[r]), split)
	}
	return outputs
}

// runReduce executes the reduce side: wait for every map, fetch this
// reducer's partition from each map output, and merge.
func runReduce(ctx *sim.Context, p params, gfs *storage.GlobalFS, taskID string) map[string]sim.Value {
	// Shuffle barrier: poll the AM until every map task committed.
	for {
		done, err := callAM(ctx, "MapsDone")
		if err != nil {
			ctx.LogError("reduce: cannot query map progress")
			return nil
		}
		if ctx.Guard(done) {
			break
		}
		ctx.Sleep(60)
	}

	rIdx := strings.TrimPrefix(taskID, "r")
	merged := map[string]int{}
	var inputs []sim.Value
	for m := 0; m < p.numTasks; m++ {
		part, err := gfs.Read(ctx, fmt.Sprintf("%s/mapout-%d-%s", stagingDir, m, rIdx))
		if err != nil {
			ctx.LogFatal("reduce: map output missing")
			return nil
		}
		inputs = append(inputs, part)
		for w, c := range decodeCounts(part.Str()) {
			merged[w] += c
		}
		ctx.Sleep(20) // fetch latency per map output
	}
	return map[string]sim.Value{
		fmt.Sprintf("/output/reduce-%s", rIdx): sim.Derive(encodeCounts(merged), inputs...),
	}
}
