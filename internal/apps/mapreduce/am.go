package mapreduce

import (
	"fmt"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// amMain is the ApplicationMaster: it recovers job state from the staging
// directory, serves the task commit protocol, watches attempt liveness, and
// commits the job output.
func amMain(ctx *sim.Context, p params, gfs *storage.GlobalFS) {
	defer ctx.Scope("amMain")()
	self := ctx.Self()

	// --- Commit protocol (Figure 1 of the paper, verbatim in miniature) ---
	self.HandleRPC("CanCommit", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("CanCommit")()
		task := ctx.NamedObject("task" + args[0].Str())
		commit := task.Get(ctx, "commit")
		if ctx.Guard(commit) {
			// MR1: T.commit survives the committing attempt's crash and
			// denies every recovery attempt.
			return sim.Derive(commit.Str() == args[1].Str(), commit, args[1])
		}
		task.Set(ctx, "commit", args[1])
		return sim.Derive(true, args[1])
	})

	self.HandleRPC("StartCommit", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("StartCommit")()
		task := ctx.NamedObject("task" + args[0].Str())
		// MR4: COMMITTING sticks if the attempt dies before DoneCommit.
		task.Set(ctx, "state", sim.Derive("COMMITTING", args[1]))
		return sim.V("ok")
	})

	self.HandleRPC("DoneCommit", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("DoneCommit")()
		task := ctx.NamedObject("task" + args[0].Str())
		task.Set(ctx, "state", sim.V("done"))
		return sim.V("ok")
	})

	self.HandleRPC("GetTaskState", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("GetTaskState")()
		task := ctx.NamedObject("task" + args[0].Str())
		state := task.Get(ctx, "state")
		// Impact-pruning fodder: progress and history notes are consulted
		// for logging only; they influence nothing.
		prog := task.Get(ctx, "progress")
		ctx.Log(prog.Str())
		if ctx.Guard(sim.Derive(state.Str() == "done", state)) {
			return sim.Derive("done", state)
		}
		if ctx.Guard(sim.Derive(state.Str() == "COMMITTING", state)) {
			// MR4: the AM believes the (dead) attempt is still committing
			// and turns the recovery attempt away.
			return sim.Derive("busy", state)
		}
		return sim.Derive("run", state)
	})

	self.HandleMsg("task-heartbeat", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("heartbeat")()
		task := ctx.NamedObject("task" + m.Payload.Str())
		// Dependence-pruning fodder: lastBeat is rewritten by the live
		// attempt before any consumer reads it.
		task.Set(ctx, "lastBeat", ctx.Now())
		task.Set(ctx, "attempt", sim.V(m.From))
	})

	self.HandleMsg("progress-update", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("progress")()
		task := ctx.NamedObject("task" + m.Payload.Str())
		task.Set(ctx, "progress", sim.Derive("progress@", m.Payload))
	})

	self.HandleRPC("MapsDone", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("mapsDone")()
		all := true
		var deps []sim.Value
		for i := 0; i < p.numTasks; i++ {
			st := ctx.NamedObject(fmt.Sprintf("task%d", i)).Get(ctx, "state")
			deps = append(deps, st)
			all = all && st.Str() == "done"
		}
		return sim.Derive(all, deps...)
	})

	self.HandleMsg("rm-ack", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedCond("rm-registered").Signal(ctx, m.Payload)
	})

	// --- AM (re)start: recover job state from the staging directory. ---
	if _, err := ctx.Call("rm", "RegisterAM", sim.V(ctx.PID())); err != nil {
		ctx.LogFatal("am: cannot register with RM")
		return
	}
	if p.version == "2.1.1" {
		// Prunable crash-regular candidate (wait-timeout analysis).
		if _, err := ctx.NamedCond("rm-registered").WaitTimeout(ctx, 500); err != nil {
			ctx.LogError("am: rm ack missed; proceeding")
		}
	}

	// MR5 (2.1.1): a commit that was in flight when the previous AM died is
	// unrecoverable — but a *finished* commit only needs its bookkeeping
	// completed.
	if p.version == "2.1.1" {
		started := gfs.Exists(ctx, histDir+"/COMMIT_STARTED")
		success := gfs.Exists(ctx, histDir+"/COMMIT_SUCCESS")
		if ctx.Guard(sim.Derive(started.Bool() && success.Bool(), started, success)) {
			// The previous AM committed the job and died during cleanup.
			_ = gfs.Delete(ctx, stagingDir+"/job.xml")
			gfs.DeleteTree(ctx, stagingDir)
			_ = ctx.Send("rm", "job-complete", success)
			return
		}
		if ctx.Guard(sim.Derive(started.Bool() && !success.Bool(), started, success)) {
			ctx.LogFatal("am: previous AM died during job commit; cannot recover", started)
			return
		}
	}

	// MR2: these reads die if the previous AM already cleaned the staging
	// directory (two distinct ways to hit the same window: the job config
	// and the task split files).
	conf, err := gfs.Read(ctx, stagingDir+"/job.xml")
	if err != nil {
		ctx.LogFatal("am: staging job.xml missing; cannot recover job")
		return
	}
	ctx.Guard(conf)
	for i := 0; i < p.numTasks; i++ {
		split, err := gfs.Read(ctx, fmt.Sprintf("%s/split-%d", stagingDir, i))
		if err != nil {
			ctx.LogFatal("am: task split files missing; cannot recover job")
			return
		}
		ctx.Guard(split) // the split content drives task scheduling
	}

	// Task-state recovery: completed tasks are re-learned from the job
	// history files, so a restarted AM does not re-run (or forget) them.
	for _, id := range p.taskIDs() {
		hist, err := gfs.Read(ctx, fmt.Sprintf("%s/history-%s", histDir, id))
		if err != nil {
			continue
		}
		if ctx.Guard(sim.Derive(hist.Str() == "committed", hist)) {
			ctx.NamedObject("task"+id).Set(ctx, "state", sim.Derive("done", hist))
			ctx.NamedObject("finish").Set(ctx, "task"+id, sim.Derive(true, hist))
		}
	}

	// Impact-pruning fodder: the AM re-reads the per-task status board left
	// in the staging directory purely for its logs.
	for i := 0; i < p.numTasks; i++ {
		note, _ := gfs.Read(ctx, fmt.Sprintf("%s/board-%d", stagingDir, i))
		ctx.Log(note.Str())
	}
	// Dependence-pruning fodder: per-task counters are reset before any
	// consultation.
	for i := 0; i < p.numTasks; i++ {
		path := fmt.Sprintf("%s/counters-%d", histDir, i)
		gfs.Write(ctx, path, sim.V("reset"))
		cnt, _ := gfs.Read(ctx, path)
		_ = cnt
	}

	// --- Slow attempt monitor: clears RUNNING state of silent attempts
	// (it forgets the COMMITTING case — that omission is MR4). ---
	ctx.GoDaemon("attempt-monitor", func(ctx *sim.Context) {
		defer ctx.Scope("attemptMonitor")()
		for {
			ctx.Sleep(p.monitorEvery)
			now := ctx.Now()
			for _, id := range p.taskIDs() {
				task := ctx.NamedObject("task" + id)
				beat := task.Get(ctx, "lastBeat")
				state := task.Get(ctx, "state")
				stale := beat.Bool() && int64(now.Int()-beat.Int()) > p.monitorTimeout
				if ctx.Guard(sim.Derive(stale && state.Str() == "RUNNING", beat, state)) {
					task.Set(ctx, "state", sim.V("READY"))
				}
			}
		}
	})

	// --- Board writer: persists a status line per heartbeat round
	// (dependence/impact fodder scaled by run length). ---
	ctx.GoDaemon("board-writer", func(ctx *sim.Context) {
		defer ctx.Scope("boardWriter")()
		for round := 0; ; round++ {
			ctx.Sleep(p.heartbeatEvery)
			for i := 0; i < p.numTasks; i++ {
				task := ctx.NamedObject(fmt.Sprintf("task%d", i))
				prog := task.Get(ctx, "progress")
				gfs.Write(ctx, fmt.Sprintf("%s/board-%d", stagingDir, i), prog)
				if round%3 == 0 {
					gfs.Write(ctx, fmt.Sprintf("%s/counters-%d", histDir, i), prog)
				}
			}
			if ctx.Cluster().FactStr("mr.done") == "true" {
				return
			}
		}
	})

	// --- Finish watcher: the Section 8.3 false negative. It polls the
	// attempt it knows about and copies the answer into a heap flag from
	// this plain thread — a write selective tracing does not see. ---
	finish := ctx.NamedObject("finish")
	ctx.GoDaemon("finish-watcher", func(ctx *sim.Context) {
		defer ctx.Scope("finishWatcher")()
		for {
			for _, id := range p.taskIDs() {
				field := "task" + id
				if finish.Get(ctx, field).Bool() {
					continue
				}
				task := ctx.NamedObject(field)
				att := task.Get(ctx, "attempt")
				if !att.Bool() {
					continue
				}
				done, err := ctx.Call(att.Str(), "QueryDone")
				if err == nil && done.Str() == "done" {
					finish.Set(ctx, field, sim.V(true))
				}
			}
			ctx.Sleep(p.pollEvery)
		}
	})

	// --- Wait for every task, then commit the job. ---
	ctx.SyncLoop(sim.LoopOpts{Name: "awaitTasks", SleepTicks: 35}, func(ctx *sim.Context) sim.Value {
		all := true
		var deps []sim.Value
		for _, id := range p.taskIDs() {
			f := finish.Get(ctx, "task"+id)
			deps = append(deps, f)
			all = all && f.Bool()
		}
		return sim.Derive(all, deps...)
	})

	// MR2's hazard window: the intermediate/staging data is cleaned as soon
	// as every task finished, before the job commit and before the RM
	// learns anything — an AM crash from here until COMMIT_STARTED leaves a
	// relaunched AM staring at a deleted staging directory.
	_ = gfs.Delete(ctx, stagingDir+"/job.xml")
	gfs.DeleteTree(ctx, stagingDir)

	if p.version == "2.1.1" {
		if _, err := gfs.Create(ctx, histDir+"/COMMIT_STARTED", sim.V(ctx.PID())); err != nil {
			ctx.LogFatal("am: commit marker already present")
			return
		}
	}
	total := 0
	var taints []sim.Value
	for r := 0; r < p.numReducers; r++ {
		v, err := gfs.Read(ctx, fmt.Sprintf("/output/reduce-%d", r))
		if err != nil {
			ctx.LogFatal("am: reducer output missing")
			return
		}
		taints = append(taints, v)
		for word, n := range decodeCounts(v.Str()) {
			prev, _ := ctx.Cluster().Fact("mr.word." + word).(int)
			ctx.Cluster().SetFact("mr.word."+word, prev+n)
			total += n
		}
	}
	gfs.Write(ctx, "/output/final", sim.Derive(total, taints...))
	ctx.Cluster().SetFact("mr.count", total)
	if p.version == "2.1.1" {
		_, _ = gfs.Create(ctx, histDir+"/COMMIT_SUCCESS", sim.V(ctx.PID()))
	}
	_ = ctx.Send("rm", "job-complete", sim.V(total))
}
