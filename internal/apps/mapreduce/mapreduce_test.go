package mapreduce_test

import (
	"strings"
	"testing"

	"fcatch/internal/apps/mapreduce"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/inject"
	"fcatch/internal/sim"
)

func find(reports []*detect.Report, typ detect.BugType, classHint string) *detect.Report {
	for _, r := range reports {
		if r.Type == typ && strings.Contains(r.ResClass, classHint) {
			return r
		}
	}
	return nil
}

func TestWordCountFaultFreeRun(t *testing.T) {
	for _, w := range []*mapreduce.Workload{mapreduce.NewMR1(), mapreduce.NewMR2()} {
		cfg := sim.Config{Seed: 1}
		w.Tune(&cfg)
		c := sim.NewCluster(cfg)
		w.Configure(c)
		out := c.Run()
		if err := w.Check(c, out); err != nil {
			t.Errorf("%s fault-free run incorrect: %v", w.Name(), err)
		}
	}
}

func TestWordCountToleratesObservationCrash(t *testing.T) {
	w := mapreduce.NewMR1()
	obs, err := core.Observe(w, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if obs.Faulty.CrashedPID != "task1#1" {
		t.Fatalf("crashed %q, want the task1 attempt", obs.Faulty.CrashedPID)
	}
	if !obs.Faulty.HasPID("task1#2") {
		t.Fatal("no recovery attempt in the faulty run")
	}
}

func TestMR1WorkloadDetectsPlantedBugs(t *testing.T) {
	res, err := core.Detect(mapreduce.NewMR1(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if find(res.Reports, detect.CrashRegular, "cv:rpc-reply") == nil {
		t.Error("MR3 (untimed RPC client wait) not reported")
	}
	mr1 := find(res.Reports, detect.CrashRecovery, "task#.commit")
	if mr1 == nil {
		t.Fatal("MR1 (Figure 1, T.commit) not reported")
	}
	if mr1.OpsDesc != "Write vs Read" {
		t.Errorf("MR1 ops = %q", mr1.OpsDesc)
	}
	if find(res.Reports, detect.CrashRecovery, "task#.state") == nil {
		t.Error("MR4 (stale COMMITTING state) not reported")
	}
	// Fault-tolerance pruning at work: exactly one timed-wait candidate
	// (the RM's bounded job wait).
	if res.Regular.Pruned.WaitTimeout != 1 {
		t.Errorf("wait-timeout pruned = %d, want 1", res.Regular.Pruned.WaitTimeout)
	}
}

func TestMR2WorkloadDetectsPlantedBugs(t *testing.T) {
	res, err := core.Detect(mapreduce.NewMR2(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if find(res.Reports, detect.CrashRecovery, "job#/job.xml") == nil {
		t.Error("MR2 way 1 (job.xml) not reported")
	}
	if find(res.Reports, detect.CrashRecovery, "split-#") == nil {
		t.Error("MR2 way 2 (split files) not reported")
	}
	if find(res.Reports, detect.CrashRecovery, "COMMIT_STARTED") == nil {
		t.Error("MR5 (commit flag file) not reported")
	}
	if find(res.Reports, detect.CrashRegular, "cv:rpc-reply") == nil {
		t.Error("MR3 must also surface from the MR2 workload")
	}
}

func TestMR1TriggeringConfirmsBugs(t *testing.T) {
	w := mapreduce.NewMR1()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := inject.NewTriggerer(w, 1)
	verdicts := map[string]inject.Classification{}
	for _, r := range res.Reports {
		verdicts[r.ResClass+"/"+r.W.Site] = tg.Trigger(r).Class
	}
	assertClass := func(classHint, wSiteHint string, want inject.Classification) {
		t.Helper()
		for key, got := range verdicts {
			if strings.Contains(key, classHint) && strings.Contains(key, wSiteHint) {
				if got != want {
					t.Errorf("%s: verdict %v, want %v", key, got, want)
				}
				return
			}
		}
		t.Errorf("no verdict for %s", classHint)
	}
	assertClass("task#.commit", "", inject.TrueBug)
	assertClass("cv:rpc-reply", "", inject.TrueBug)
	// The COMMITTING write is MR4 (a hang); the done write is benign.
	assertClass("task#.state", "am.go:35", inject.TrueBug)
	assertClass("task#.state", "am.go:42", inject.Benign)
}

func TestMR3TriggerableByReplyDrop(t *testing.T) {
	w := mapreduce.NewMR1()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mr3 := find(res.Reports, detect.CrashRegular, "cv:rpc-reply")
	if mr3 == nil {
		t.Fatal("MR3 missing")
	}
	out := inject.NewTriggerer(w, 1).Trigger(mr3)
	if !out.ByAction["kernel-drop"] {
		t.Error("dropping the RPC reply must hang the caller (MR3)")
	}
}

func TestRandomInjectionFindsTheFalseNegative(t *testing.T) {
	res, err := inject.RandomCampaign(mapreduce.NewMR1(), 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureRuns == 0 {
		t.Fatal("random injection found nothing; the §8.3 hang window is gone")
	}
	// The dominant signature is the AM stuck awaiting tasks — the bug whose
	// hazardous write is invisible to selective tracing.
	found := false
	for sig := range res.Failures {
		if strings.Contains(sig, "hang:am/main@") {
			found = true
		}
	}
	if !found {
		t.Fatalf("the finish-watcher hang never manifested: %v", res.Failures)
	}
	if rate := float64(res.FailureRuns) / float64(res.Runs); rate > 0.25 {
		t.Errorf("failure rate %.0f%% is implausibly high for random injection", rate*100)
	}
}
