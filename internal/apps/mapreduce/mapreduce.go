// Package mapreduce is a miniature Hadoop-MapReduce: a ResourceManager, an
// ApplicationMaster and per-task attempt processes running a WordCount job
// over global-FS input splits, with heartbeats, a commit protocol, a staging
// directory, and AM/attempt recovery.
//
// It faithfully plants the paper's MapReduce TOF bugs:
//
//   - MR1 (benchmark, Figure 1): CanCommit records the committing attempt in
//     T.commit on the AM; an attempt crash between CanCommit and DoneCommit
//     poisons the task — every recovery attempt is denied and retries
//     forever (crash-recovery, Write vs Read, heap).
//   - MR2 (benchmark, two ways): the AM deletes the staging directory at
//     job end before unregistering; an AM crash in that window makes the
//     restarted AM fail opening job.xml / listing the splits (crash-
//     recovery, Delete vs Open, global files).
//   - MR3: the RPC client wait has no timeout (version-accurate); losing a
//     reply hangs any RPC call site forever (crash-regular, Signal vs Wait).
//   - MR4: an attempt crash between StartCommit and DoneCommit leaves
//     task state COMMITTING; the recovery attempt is told the task is busy
//     and gives up — the job hangs (crash-recovery, Write vs Read, heap).
//   - MR5 (version 2.1.1): the AM creates a COMMIT_STARTED marker before
//     committing job output; an AM crash before COMMIT_SUCCESS makes the
//     restarted AM refuse recovery (crash-recovery, Create vs Exists).
//   - The Section 8.3 FCatch false negative: the AM's finish-watcher copies
//     an RPC return value into a heap flag from a plain (non-handler)
//     thread, so selective tracing misses the write; an attempt crash
//     between DoneCommit and the watcher's next poll hangs the job, and only
//     random fault injection can expose it.
package mapreduce

import (
	"fmt"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// params sizes the job and its timing windows.
type params struct {
	version     string
	numTasks    int
	numReducers int
	// splits hold the WordCount input text per task.
	splits []string
	// heartbeatEvery is the attempt->AM heartbeat period.
	heartbeatEvery int64
	// pollEvery is the AM finish-watcher poll period (the FN-bug window).
	pollEvery int64
	// monitorEvery / monitorTimeout drive the AM's slow attempt monitor.
	monitorEvery   int64
	monitorTimeout int64
	// progressUpdates is how many progress messages each attempt sends
	// (impact-pruning fodder scale).
	progressUpdates int
	crashTarget     string
}

// Workload is one MapReduce benchmark row of Table 1.
type Workload struct{ p params }

// NewMR1 is the "MR 0.23.1 Startup + WordCount" workload; observation runs
// crash a task attempt.
func NewMR1() *Workload {
	return &Workload{p: params{
		version:     "0.23.1",
		numTasks:    3,
		numReducers: 2,
		splits: []string{
			"alpha beta alpha gamma",
			"beta beta gamma",
			"alpha gamma gamma gamma",
		},
		heartbeatEvery:  60,
		pollEvery:       40,
		monitorEvery:    80,
		monitorTimeout:  240,
		progressUpdates: 4,
		crashTarget:     "task1",
	}}
}

// NewMR2 is the "MR 2.1.1 Startup + WordCount" workload; observation runs
// crash the ApplicationMaster.
func NewMR2() *Workload {
	return &Workload{p: params{
		version:     "2.1.1",
		numTasks:    3,
		numReducers: 2,
		splits: []string{
			"delta epsilon delta",
			"epsilon epsilon zeta delta",
			"zeta zeta",
		},
		heartbeatEvery:  45,
		pollEvery:       40,
		monitorEvery:    80,
		monitorTimeout:  240,
		progressUpdates: 10,
		crashTarget:     "am",
	}}
}

// Name implements core.Workload.
func (w *Workload) Name() string {
	if w.p.version == "0.23.1" {
		return "MR1"
	}
	return "MR2"
}

// System implements core.Workload.
func (w *Workload) System() string { return "MapReduce " + w.p.version }

// CrashTarget implements core.Workload.
func (w *Workload) CrashTarget() string { return w.p.crashTarget }

// RestartRoles implements core.Workload: empty — the ResourceManager itself
// relaunches dead AMs and attempts (in-system recovery).
func (w *Workload) RestartRoles() map[string]int64 { return map[string]int64{} }

// Tune implements core.Workload. Version-accurate: the MR RPC client has no
// timeout (bug MR3).
func (w *Workload) Tune(cfg *sim.Config) {
	cfg.RPCClientTimeout = 0
	cfg.RPCFailFast = true
	cfg.MaxSteps = 30_000
}

// ExpectedBehaviors implements core.Workload.
func (w *Workload) ExpectedBehaviors() []string { return nil }

const (
	stagingDir = "/staging/job1"
	histDir    = "/jobhist/job1"
)

// Configure implements core.Workload.
func (w *Workload) Configure(c *sim.Cluster) {
	p := w.p
	gfs := storage.NewGlobalFS()
	c.SetFact("mr.gfs", gfs)

	for i, text := range p.splits {
		gfs.Seed(fmt.Sprintf("/input/task-%d", i), sim.V(text))
	}
	gfs.Seed(stagingDir+"/job.xml", sim.V("job-conf:wordcount"))
	for i := range p.splits {
		gfs.Seed(fmt.Sprintf("%s/split-%d", stagingDir, i), sim.V(fmt.Sprintf("split:%d", i)))
	}

	rmPID := c.StartProcess("rm", "m-rm", func(ctx *sim.Context) { rmMain(ctx, p) })
	c.StartProcess("am", "m-am", func(ctx *sim.Context) { amMain(ctx, p, gfs) })
	for _, id := range p.taskIDs() {
		id := id
		role := taskRole(id)
		c.StartProcess(role, "m-"+role, func(ctx *sim.Context) { attemptMain(ctx, p, gfs, id) })
		c.SubscribeConvict(role, rmPID)
	}
	c.SubscribeConvict("am", rmPID)
}

// taskIDs lists every task of the job: map tasks "0".."n-1", then reduce
// tasks "r0".."rk-1".
func (p params) taskIDs() []string {
	var ids []string
	for i := 0; i < p.numTasks; i++ {
		ids = append(ids, fmt.Sprintf("%d", i))
	}
	for r := 0; r < p.numReducers; r++ {
		ids = append(ids, fmt.Sprintf("r%d", r))
	}
	return ids
}

// expectedCounts computes the ground-truth WordCount result.
func (p params) expectedCounts() map[string]int {
	out := map[string]int{}
	for _, s := range p.splits {
		for _, w := range strings.Fields(s) {
			out[w]++
		}
	}
	return out
}

// Check implements core.Workload: the job must be done with the right word
// count and a successful commit marker.
func (w *Workload) Check(c *sim.Cluster, out *sim.Outcome) error {
	if !out.Completed {
		return fmt.Errorf("mr: job did not finish: %+v", out.Hung)
	}
	if len(out.FatalLogs) > 0 {
		return fmt.Errorf("mr: fatal: %v", out.FatalLogs)
	}
	if len(out.UncaughtExceptions) > 0 {
		return fmt.Errorf("mr: exceptions: %v", out.UncaughtExceptions)
	}
	if c.FactStr("mr.done") != "true" {
		return fmt.Errorf("mr: job not marked done")
	}
	expected := w.p.expectedCounts()
	want := 0
	for _, n := range expected {
		want += n
	}
	if got, _ := c.Fact("mr.count").(int); got != want {
		return fmt.Errorf("mr: word count %d, want %d", got, want)
	}
	for word, n := range expected {
		if got, _ := c.Fact("mr.word." + word).(int); got != n {
			return fmt.Errorf("mr: count[%s] = %d, want %d", word, got, n)
		}
	}
	gfs := c.Fact("mr.gfs").(*storage.GlobalFS)
	if _, ok := gfs.Peek("/output/final"); !ok {
		return fmt.Errorf("mr: final output missing")
	}
	return nil
}
