package mapreduce

import (
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// rmMain is the ResourceManager: it acknowledges AM registration, relaunches
// crashed AMs and task attempts (the platform's fast failure detector), and
// waits — with a timeout, as a real RM would — for job completion.
//
// The RM keeps a task-status cache fed by a plain poller thread. The cached
// writes happen outside any handler, so FCatch's selective tracing does not
// see them — which is why the hang this cache can cause (skipping a relaunch
// while the AM's finish-watcher still waits for the dead attempt's answer)
// is the paper's Section 8.3 false negative, exposable only by random fault
// injection.
func rmMain(ctx *sim.Context, p params) {
	defer ctx.Scope("rmMain")()
	self := ctx.Self()
	cache := ctx.NamedObject("statusCache")

	self.HandleRPC("RegisterAM", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("RegisterAM")()
		rmState := ctx.NamedObject("rmState")
		rmState.Set(ctx, "amPID", args[0])
		if p.version == "2.1.1" {
			// Newer RMs confirm registration out-of-band as well, after the
			// registration bookkeeping settles.
			am := args[0].Str()
			ctx.Go("ack-sender", func(ctx *sim.Context) {
				ctx.Sleep(60)
				_ = ctx.Send(am, "rm-ack", sim.V("registered"))
			})
		}
		return sim.V("ok")
	})

	self.HandleMsg("job-complete", func(ctx *sim.Context, m sim.Message) {
		ctx.Cluster().SetFact("mr.done", "true")
		ctx.NamedCond("job-finished").Signal(ctx, m.Payload)
	})

	// The platform's failure detector: relaunch whatever died — except
	// attempts whose task the status cache already believes finished.
	self.HandleMsg("convict", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("convict")()
		dead := m.Payload.Str()
		role := dead
		if i := strings.IndexByte(dead, '#'); i >= 0 {
			role = dead[:i]
		}
		if ctx.Cluster().FactStr("mr.done") == "true" {
			return
		}
		if ctx.Cluster().Lookup(role) != "" {
			return // a live incarnation exists; nothing to do
		}
		if role != "am" {
			cached := cache.Get(ctx, role)
			if ctx.Guard(sim.Derive(cached.Str() == "done", cached)) {
				return // finished task: no container wasted on a relaunch
			}
		}
		ctx.Cluster().RestartRole(role, trace.NoOp)
	})

	// Status poller: refreshes the cache from the AM. The cache writes run
	// on this plain thread — outside every handler.
	ctx.GoDaemon("status-poller", func(ctx *sim.Context) {
		defer ctx.Scope("statusPoller")()
		for {
			for _, id := range p.taskIDs() {
				s, err := ctx.Call("am", "GetTaskState", sim.V(id))
				if err == nil {
					cache.Set(ctx, taskRole(id), s)
				}
			}
			ctx.Sleep(p.pollEvery)
			if ctx.Cluster().FactStr("mr.done") == "true" {
				return
			}
		}
	})

	// Prunable crash-regular candidate (wait-timeout analysis): the RM does
	// not block forever on a single job.
	if _, err := ctx.NamedCond("job-finished").WaitTimeout(ctx, 20_000); err != nil {
		ctx.LogError("rm: job did not finish before the RM gave up waiting")
	}
}
