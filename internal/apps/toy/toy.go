// Package toy is a deliberately small two-node commit protocol used by the
// quickstart example and the pipeline's own tests. It contains one
// crash-regular TOF bug, one crash-recovery TOF bug (a miniature of the
// MapReduce CanCommit bug of Figure 1), and one specimen of each prunable
// false-positive pattern, so every stage of FCatch has something to do.
package toy

import (
	"fmt"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// Workload implements core.Workload for the toy system.
type Workload struct{}

// New returns the toy workload.
func New() *Workload { return &Workload{} }

// Name implements core.Workload.
func (w *Workload) Name() string { return "TOY" }

// System implements core.Workload.
func (w *Workload) System() string { return "ToyCommit" }

// CrashTarget implements core.Workload: observation runs crash the worker.
func (w *Workload) CrashTarget() string { return "worker" }

// RestartRoles implements core.Workload.
func (w *Workload) RestartRoles() map[string]int64 {
	return map[string]int64{"worker": 40}
}

// Tune implements core.Workload. The toy's RPC client, like Hadoop-MR's, has
// no client-side timeout.
func (w *Workload) Tune(cfg *sim.Config) {
	cfg.MaxSteps = 15_000
}

// ExpectedBehaviors implements core.Workload: nothing is expected to hang.
func (w *Workload) ExpectedBehaviors() []string { return nil }

// Configure implements core.Workload.
func (w *Workload) Configure(c *sim.Cluster) {
	gfs := storage.NewGlobalFS()
	c.SetFact("toy.gfs", gfs)

	c.StartProcess("server", "m1", func(ctx *sim.Context) {
		defer ctx.Scope("serverMain")()
		self := ctx.Self()

		self.HandleMsg("hello", func(ctx *sim.Context, m sim.Message) {
			ctx.NamedCond("worker-ready").Signal(ctx, m.Payload)
			_ = ctx.Send(m.From, "ack", sim.V("hi"))
		})

		self.HandleRPC("CanCommit", func(ctx *sim.Context, args []sim.Value) sim.Value {
			defer ctx.Scope("CanCommit")()
			task := ctx.NamedObject("Task")
			cur := task.Get(ctx, "committed")
			if ctx.Guard(cur) {
				// Crash-recovery TOF bug (Figure 1 in miniature): content
				// left by a crashed attempt denies every recovery attempt.
				return sim.Derive(cur.Str() == args[0].Str(), cur, args[0])
			}
			task.Set(ctx, "committed", args[0])
			return sim.Derive(true, args[0])
		})

		// Crash-regular TOF bug: this untimed wait blocks forever if the
		// worker dies before (or its hello message drops before) the signal.
		ready := ctx.NamedCond("worker-ready")
		ready.Wait(ctx)
	})

	c.StartProcess("worker", "m2", func(ctx *sim.Context) {
		workerMain(ctx, gfs)
	})
}

func workerMain(ctx *sim.Context, gfs *storage.GlobalFS) {
	defer ctx.Scope("workerMain")()
	me := sim.V(ctx.PID())

	ctx.Self().HandleMsg("ack", func(ctx *sim.Context, m sim.Message) {
		ctx.NamedCond("server-ack").Signal(ctx, m.Payload)
	})

	if err := ctx.Send("server", "hello", me); err != nil {
		ctx.LogError("hello failed")
	}

	// Prunable candidate: this wait is protected by a timeout, so its
	// signal/wait pair must fall to the wait-timeout analysis.
	ack := ctx.NamedCond("server-ack")
	if _, err := ack.WaitTimeout(ctx, 300); err != nil {
		ctx.LogError("no ack (tolerated)")
	}

	// Prunable candidate: /job/status is reset by every incarnation before
	// it is read, so the read falls to the data-dependence analysis.
	gfs.Write(ctx, "/job/status", sim.Derive("running", me))
	status, _ := gfs.Read(ctx, "/job/status")
	_ = status

	// Prunable candidate: /job/hint is created once (recovery's create
	// fails harmlessly) and its content influences nothing, so both the
	// conflicting create and the read fall to impact estimation.
	_, _ = gfs.Create(ctx, "/job/hint", me)
	hint, _ := gfs.Read(ctx, "/job/hint")
	_ = hint

	// Recovery sanity check: a finished job is not redone.
	done := gfs.Exists(ctx, "/job/done")
	if ctx.Guard(done) {
		ctx.Cluster().SetFact("toy.result", "already-done")
		return
	}

	gfs.Write(ctx, "/job/output", me)

	ok, err := ctx.Call("server", "CanCommit", me)
	if err != nil {
		ctx.LogFatal("commit rpc failed")
		return
	}
	if !ctx.Guard(ok) {
		// The unrecoverable outcome of the crash-recovery bug.
		ctx.LogFatal("commit denied: task poisoned by dead attempt", ok)
		return
	}
	gfs.Write(ctx, "/job/done", me)
	ctx.Cluster().SetFact("toy.result", "committed")
}

// Check implements core.Workload: the job must have committed (or found the
// previous incarnation's commit), with the output file present.
func (w *Workload) Check(c *sim.Cluster, out *sim.Outcome) error {
	if !out.Completed {
		return fmt.Errorf("toy: run did not complete: %+v", out.Hung)
	}
	if len(out.FatalLogs) > 0 {
		return fmt.Errorf("toy: fatal: %v", out.FatalLogs)
	}
	res := c.FactStr("toy.result")
	if res != "committed" && res != "already-done" {
		return fmt.Errorf("toy: job did not commit (result=%q)", res)
	}
	return nil
}
