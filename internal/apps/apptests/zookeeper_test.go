package apps_test

import (
	"strings"
	"testing"

	"fcatch/internal/apps/toy"
	"fcatch/internal/apps/zookeeper"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/inject"
	"fcatch/internal/sim"
)

func TestZKFaultFreeRun(t *testing.T) {
	w := zookeeper.New()
	cfg := sim.Config{Seed: 1}
	w.Tune(&cfg)
	c := sim.NewCluster(cfg)
	w.Configure(c)
	out := c.Run()
	if err := w.Check(c, out); err != nil {
		t.Fatalf("fault-free: %v", err)
	}
}

func TestZKToleratesLeaderRestart(t *testing.T) {
	obs, err := core.Observe(zookeeper.New(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if obs.Faulty.CrashedPID != "zkleader#1" || !obs.Faulty.HasPID("zkleader#2") {
		t.Fatalf("leader restart missing: crashed=%s pids=%v", obs.Faulty.CrashedPID, obs.Faulty.PIDs)
	}
}

func TestZKDetectionAndEpochBug(t *testing.T) {
	w := zookeeper.New()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// No unpruned crash-regular candidates: every wait/poll is bounded.
	for _, r := range res.Reports {
		if r.Type == detect.CrashRegular {
			t.Errorf("unexpected crash-regular report in ZK: %s", r)
		}
	}
	if res.Regular.Pruned.LoopTimeout != 2 || res.Regular.Pruned.WaitTimeout != 2 {
		t.Errorf("pruned = %+v, want LoopTimeout=2 WaitTimeout=2", res.Regular.Pruned)
	}

	cur := find(res.Reports, detect.CrashRecovery, "currentEpoch")
	if cur == nil {
		t.Fatal("the epoch bug (Write vs Read on currentEpoch) not reported")
	}
	tg := inject.NewTriggerer(w, 1)
	out := tg.Trigger(cur)
	if out.Class != inject.TrueBug || out.FailureKind != "fatal" {
		t.Fatalf("epoch bug verdict = %v (%s)", out.Class, out.Detail)
	}
	if !strings.Contains(out.Detail, "unable to load database") {
		t.Fatalf("wrong failure: %s", out.Detail)
	}

	// The acceptedEpoch sibling pair and the torn-snapshot pair are benign.
	benign := 0
	for _, r := range res.Reports {
		if r == cur || r.Type != detect.CrashRecovery {
			continue
		}
		if v := tg.Trigger(r); v.Class != inject.Benign {
			t.Errorf("%s verdict = %v, want benign", r.ResClass, v.Class)
		} else {
			benign++
		}
	}
	if benign != 2 {
		t.Errorf("benign recovery FPs = %d, want 2 (acceptedEpoch + torn snapshot)", benign)
	}
}

func TestZKSanityCheckPrunesSnapshotRestore(t *testing.T) {
	// Figure 8: the validated re-read (R2) must be pruned by the
	// control-dependence analysis — only the validation read (R1) may pair.
	res, err := core.Detect(zookeeper.New(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	snapReports := 0
	for _, r := range res.Reports {
		if strings.Contains(r.ResClass, "snap-") {
			snapReports++
		}
	}
	if snapReports != 1 {
		t.Fatalf("snapshot reports = %d, want exactly 1 (R2 sanity-pruned)", snapReports)
	}
}

func TestToyWorkloadEndToEnd(t *testing.T) {
	w := toy.New()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := inject.NewTriggerer(w, 1)
	trueBugs := 0
	for _, r := range res.Reports {
		if tg.Trigger(r).Class == inject.TrueBug {
			trueBugs++
		}
	}
	if trueBugs < 2 {
		t.Fatalf("toy true bugs = %d, want at least the planted 2", trueBugs)
	}
}

func TestRandomCampaignOnToyMostlyTolerates(t *testing.T) {
	res, err := inject.RandomCampaign(toy.New(), 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureRuns == res.Runs {
		t.Fatal("every random crash failed; the workload tolerates nothing")
	}
}
