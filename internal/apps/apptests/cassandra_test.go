package apps_test

import (
	"strings"
	"testing"

	"fcatch/internal/apps/cassandra"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/inject"
	"fcatch/internal/sim"
)

func find(reports []*detect.Report, typ detect.BugType, classHint string) *detect.Report {
	for _, r := range reports {
		if r.Type == typ && strings.Contains(r.ResClass, classHint) {
			return r
		}
	}
	return nil
}

func TestCassandraFaultFreeRun(t *testing.T) {
	w := cassandra.New()
	cfg := sim.Config{Seed: 1}
	w.Tune(&cfg)
	c := sim.NewCluster(cfg)
	w.Configure(c)
	out := c.Run()
	if err := w.Check(c, out); err != nil {
		t.Fatalf("fault-free: %v", err)
	}
	if c.FactStr("ca.repair") != "done" {
		t.Fatalf("repair state = %q", c.FactStr("ca.repair"))
	}
}

func TestCassandraDetection(t *testing.T) {
	res, err := core.Detect(cassandra.New(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		hint, ops, name string
	}{
		{"cv:snapshots-done", "Signal vs Wait", "CA1"},
		{"cv:trees-done", "Signal vs Wait", "CA2"},
		{"pendingStreams", "Write vs Loop", "CA3"},
	} {
		r := find(res.Reports, detect.CrashRegular, c.hint)
		if r == nil {
			t.Errorf("%s not reported", c.name)
			continue
		}
		if r.OpsDesc != c.ops {
			t.Errorf("%s ops = %q, want %q", c.name, r.OpsDesc, c.ops)
		}
		// Each repair reply is a droppable message from a neighbour node.
		if r.WPrime == nil || !strings.HasPrefix(r.WPrime.PID, "cass") {
			t.Errorf("%s W' = %+v", c.name, r.WPrime)
		}
	}
	// The restarted node's local-disk reads are the two benign recovery
	// candidates of Table 3's CA row.
	benignCandidates := 0
	for _, r := range res.Reports {
		if r.Type == detect.CrashRecovery {
			benignCandidates++
		}
	}
	if benignCandidates != 2 {
		t.Errorf("crash-recovery reports = %d, want 2", benignCandidates)
	}
}

func TestCassandraTriggerMatrix(t *testing.T) {
	w := cassandra.New()
	res, err := core.Detect(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tg := inject.NewTriggerer(w, 1)

	// CA1/CA2: message drops hang the repair; node crashes are absorbed by
	// the convict listener (Section 8.4).
	for _, hint := range []string{"cv:snapshots-done", "cv:trees-done"} {
		out := tg.Trigger(find(res.Reports, detect.CrashRegular, hint))
		if out.Class != inject.TrueBug {
			t.Errorf("%s verdict = %v", hint, out.Class)
		}
		if out.ByAction["node-crash"] {
			t.Errorf("%s: a node crash must be tolerated (convict aborts the session)", hint)
		}
		if !out.ByAction["kernel-drop"] || !out.ByAction["app-drop"] {
			t.Errorf("%s: message drops must trigger the hang: %v", hint, out.ByAction)
		}
	}

	// CA3: the convict listener forgot the streaming phase, so even the
	// crash hangs it.
	out := tg.Trigger(find(res.Reports, detect.CrashRegular, "pendingStreams"))
	if !out.ByAction["node-crash"] || !out.ByAction["kernel-drop"] {
		t.Errorf("CA3 matrix = %v, want crash and drops", out.ByAction)
	}

	// The local-file recovery reads are benign.
	for _, r := range res.Reports {
		if r.Type == detect.CrashRecovery {
			if v := tg.Trigger(r); v.Class != inject.Benign {
				t.Errorf("%s verdict = %v, want benign", r.ResClass, v.Class)
			}
		}
	}
}

func TestCassandraExhaustiveTracingKillsGossip(t *testing.T) {
	w := cassandra.New()
	run := func(mode sim.TracingMode, cost int64) error {
		cfg := sim.Config{Seed: 1, Tracing: mode, TraceTickCost: cost}
		w.Tune(&cfg)
		c := sim.NewCluster(cfg)
		w.Configure(c)
		return w.Check(c, c.Run())
	}
	if err := run(sim.TraceSelective, 1); err != nil {
		t.Fatalf("selective tracing must be survivable: %v", err)
	}
	err := run(sim.TraceExhaustive, 6)
	if err == nil {
		t.Fatal("exhaustive tracing should make the failure detector convict a live node (§8.2)")
	}
	if !strings.Contains(err.Error(), "convicted a live node") {
		t.Fatalf("unexpected exhaustive failure: %v", err)
	}
}
