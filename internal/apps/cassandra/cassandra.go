// Package cassandra is a miniature Cassandra ring: three nodes with gossip,
// an accrual failure detector, and an anti-entropy repair protocol
// (snapshot → merkle-tree validation → streaming repair) coordinated by one
// node.
//
// Planted bugs (Table 2):
//
//   - CA1: the repair coordinator's untimed wait for the neighbours'
//     snapshot acknowledgements. The ack is a droppable message: an
//     application- or kernel-level drop hangs the repair forever, while a
//     node crash is tolerated — the failure detector's convict callback
//     aborts the session (which is why CA1 triggers with message drops but
//     not crashes, Section 8.4).
//   - CA2: the same pattern one phase later, waiting for merkle-tree
//     responses.
//   - CA3: the streaming-repair phase polls a pending-streams counter; the
//     convict callback forgets to abort sessions in this phase, so here
//     *both* crashes and drops hang the repair.
//
// The gossip digest computation runs in plain worker threads with many heap
// accesses: under FCatch's selective tracing they are untraced and free, but
// the Section 8.2 exhaustive-tracing ablation instruments every one of them,
// inflating gossip rounds until the failure detector declares live
// neighbours dead — the paper's "CA benchmarks simply cannot finish".
package cassandra

import (
	"fmt"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

type params struct {
	gossipEvery     int64 // light heartbeat-gossip period
	fullDigestEvery int64 // heavy full-digest recomputation period
	digestWork      int   // heap accesses per full digest (§8.2 lever)
	fdThreshold     int64 // failure-detector silence threshold
	restartDelay    int64
	repairDelay     int64 // coordinator waits this long after startup
	rangesPerNode   int   // merkle ranges (stream volume)
	// dataKeys / divergentKeys size the replicated column store and the
	// inconsistency the anti-entropy session must repair.
	dataKeys      int
	divergentKeys int
	crashTarget   string
}

// Workload is the "CA 1.1.12 Startup + AntiEntropy" benchmark row.
type Workload struct{ p params }

// New returns the CA workload.
func New() *Workload {
	return &Workload{p: params{
		gossipEvery:     42,
		fullDigestEvery: 200,
		digestWork:      25,
		fdThreshold:     3600,
		restartDelay:    220,
		repairDelay:     2300,
		rangesPerNode:   2,
		dataKeys:        8,
		divergentKeys:   3,
		crashTarget:     "cass1",
	}}
}

// Name implements core.Workload.
func (w *Workload) Name() string { return "CA1&2" }

// System implements core.Workload.
func (w *Workload) System() string { return "Cassandra 1.1.12" }

// CrashTarget implements core.Workload.
func (w *Workload) CrashTarget() string { return "cass1" }

// RestartRoles implements core.Workload: the operator restarts a dead ring
// node.
func (w *Workload) RestartRoles() map[string]int64 {
	return map[string]int64{"cass1": w.p.restartDelay}
}

// Tune implements core.Workload.
func (w *Workload) Tune(cfg *sim.Config) {
	cfg.RPCClientTimeout = 500
	cfg.RPCFailFast = true
	cfg.MaxSteps = 50_000
}

// ExpectedBehaviors implements core.Workload.
func (w *Workload) ExpectedBehaviors() []string { return nil }

// Configure implements core.Workload.
func (w *Workload) Configure(c *sim.Cluster) {
	p := w.p
	lfs := storage.NewLocalFS()
	c.SetFact("ca.lfs", lfs)
	for _, n := range []string{"cass0", "cass1", "cass2"} {
		lfs.Seed("m-"+n, "/var/cassandra/saved_tokens", sim.V("tokens:"+n))
		lfs.Seed("m-"+n, "/var/cassandra/peers", sim.V("cass0,cass1,cass2"))
		// The replicated column store. cass1 missed the last few writes
		// (it was briefly down) — the divergence anti-entropy must repair.
		for k := 0; k < p.dataKeys; k++ {
			val := fmt.Sprintf("v%d", k)
			if n == "cass1" && k >= p.dataKeys-p.divergentKeys {
				val = "stale"
			}
			lfs.Seed("m-"+n, fmt.Sprintf("/var/cassandra/data/k%d", k), sim.V(val))
		}
	}

	peers := []string{"cass0", "cass1", "cass2"}
	var pids []string
	for i, n := range peers {
		node := n
		coordinator := i == 0
		pids = append(pids, c.StartProcess(node, "m-"+node, func(ctx *sim.Context) {
			cassMain(ctx, p, lfs, peers, coordinator)
		}))
	}
	// The coordinator's failure-detection listener (convict) watches every
	// other ring member.
	c.SubscribeConvict("cass1", pids[0])
	c.SubscribeConvict("cass2", pids[0])
}

// Check implements core.Workload: the run is correct when the repair session
// either completed or was aborted by real node death — and nothing was
// falsely convicted or hung.
func (w *Workload) Check(c *sim.Cluster, out *sim.Outcome) error {
	if !out.Completed {
		return fmt.Errorf("cassandra: hang: %+v", out.Hung)
	}
	if len(out.FatalLogs) > 0 {
		return fmt.Errorf("cassandra: fatal: %v", out.FatalLogs)
	}
	if len(out.UncaughtExceptions) > 0 {
		return fmt.Errorf("cassandra: exceptions: %v", out.UncaughtExceptions)
	}
	switch c.FactStr("ca.repair") {
	case "done":
		// A completed repair must have converged every replica. A node's
		// effective value is its memtable entry (published as a fact when a
		// stream applied) over its seeded sstable content.
		lfs := c.Fact("ca.lfs").(*storage.LocalFS)
		effective := func(node, key string) any {
			if v := c.Fact("ca.store." + node + "." + key); v != nil {
				return v
			}
			v, _ := lfs.PeekLocal("m-"+node, "/var/cassandra/data/"+key)
			return v
		}
		for k := 0; k < w.p.dataKeys; k++ {
			key := fmt.Sprintf("k%d", k)
			want := effective("cass0", key)
			for _, n := range []string{"cass1", "cass2"} {
				if c.FactStr("ca.inSession."+n) != "true" {
					continue // a dead node was excluded; it owes nothing
				}
				if got := effective(n, key); got != want {
					return fmt.Errorf("cassandra: replica %s diverged on %s after repair (%v vs %v)", n, key, got, want)
				}
			}
		}
	case "aborted":
		// Aborting on real node death is correct; convergence is not owed.
	default:
		return fmt.Errorf("cassandra: repair never concluded (state=%q)", c.FactStr("ca.repair"))
	}
	if fd := c.FactStr("ca.false-positive-conviction"); fd != "" {
		return fmt.Errorf("cassandra: failure detector convicted a live node: %s", fd)
	}
	return nil
}
