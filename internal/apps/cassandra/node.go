package cassandra

import (
	"fmt"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
)

// decodeTree parses a "k0=v;k1=v" tree body into a map.
func decodeTree(s string) map[string]string {
	out := map[string]string{}
	for _, kv := range strings.Split(s, ";") {
		pair := strings.SplitN(kv, "=", 2)
		if len(pair) == 2 {
			out[pair[0]] = pair[1]
		}
	}
	return out
}

func role(pid string) string {
	if i := strings.IndexByte(pid, '#'); i >= 0 {
		return pid[:i]
	}
	return pid
}

// cassMain is one ring node: gossip, failure detection, repair participation
// — and, on node 0, the anti-entropy repair coordinator.
func cassMain(ctx *sim.Context, p params, lfs *storage.LocalFS, peers []string, coordinator bool) {
	defer ctx.Scope("cassMain")()
	self := ctx.Self()
	me := ctx.PID()
	myRole := ctx.Role()
	state := ctx.NamedObject("endpointState")
	session := ctx.NamedObject("repairSession")

	// --- Boot: recover node identity from the local disk (the recovery
	// reads of a restarted node; their content is always valid → benign
	// crash-recovery candidates). ---
	tokens, _ := lfs.Read(ctx, "/var/cassandra/saved_tokens")
	peersFile, _ := lfs.Read(ctx, "/var/cassandra/peers")
	ctx.Guard(peersFile)
	state.Set(ctx, "tokens", tokens)
	lfs.Write(ctx, "/var/cassandra/saved_tokens", sim.Derive("tokens:"+me, tokens))
	lfs.Write(ctx, "/var/cassandra/peers", sim.V(strings.Join(peers, ",")))

	// --- Gossip receive path: record whatever the sender advertises. ---
	self.HandleMsg("gossip-digest", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("applyGossip")()
		from := role(m.From)
		state.Set(ctx, "lastSeen-"+from, ctx.Now())
		// The full endpoint state is only re-advertised every few rounds.
		if m.Payload.Int()%2 != 0 {
			return
		}
		state.Set(ctx, "hb-"+from, m.Payload)
		state.Set(ctx, "load-"+from, m.Payload)
		state.Set(ctx, "schema-"+from, m.Payload)
	})

	self.HandleMsg("full-digest", func(ctx *sim.Context, m sim.Message) {
		state.Set(ctx, "lastFullDigest-"+role(m.From), ctx.Now())
	})

	// A (re)joining node announces itself; the generation is rewritten and
	// then consulted (dependence-pruning fodder: reset before read).
	self.HandleMsg("announce", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("handleAnnounce")()
		from := role(m.From)
		state.Set(ctx, "gen-"+from, m.Payload)
		state.Set(ctx, "hb-"+from, m.Payload)
		gen := state.Get(ctx, "gen-"+from)
		hb := state.Get(ctx, "hb-"+from)
		ctx.Log(gen.Str() + hb.Str())
		state.Set(ctx, "lastSeen-"+from, ctx.Now())
	})

	// A joining node pulls the cluster view; the reads feed logs only
	// (impact-pruning fodder).
	self.HandleRPC("GossipInfo", func(ctx *sim.Context, args []sim.Value) sim.Value {
		defer ctx.Scope("gossipInfo")()
		for _, peer := range peers {
			hb := state.Get(ctx, "hb-"+peer)
			load := state.Get(ctx, "load-"+peer)
			schema := state.Get(ctx, "schema-"+peer)
			ctx.Log(hb.Str() + load.Str() + schema.Str())
		}
		return sim.V("view")
	})

	self.HandleRPC("GetVersion", func(ctx *sim.Context, args []sim.Value) sim.Value {
		return sim.V("1.1.12")
	})

	// --- Repair participant side. Replies are droppable messages —
	// Cassandra's droppable verbs, eligible for application-level drops. ---
	self.HandleMsg("take-snapshot", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("takeSnapshot")()
		ctx.Sleep(35) // flush + hard-link the sstables
		lfs.Write(ctx, "/var/cassandra/snapshot-repair", sim.V(me))
		_ = ctx.Send(m.From, "snapshot-ack", sim.V(me), sim.Droppable())
	})

	self.HandleMsg("tree-request", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("validateTree")()
		ctx.Sleep(30)
		// A real (miniature) merkle pass: hash every key of the local
		// column store into the response.
		tree := sim.V("")
		mem := ctx.NamedObject("memtable")
		parts := make([]string, 0, p.dataKeys)
		for k := 0; k < p.dataKeys; k++ {
			key := fmt.Sprintf("k%d", k)
			v := mem.Get(ctx, key) // memtable shadows the sstables
			if v.IsNil() {
				sst, err := lfs.Read(ctx, "/var/cassandra/data/"+key)
				if err != nil {
					parts = append(parts, key+"=")
					continue
				}
				v = sst
			}
			parts = append(parts, key+"="+v.Str())
			tree = sim.Derive("", tree, v)
		}
		resp := sim.Derive(me+"|"+strings.Join(parts, ";"), tree)
		_ = ctx.Send(m.From, "tree-response", resp, sim.Droppable())
	})

	self.HandleMsg("stream-request", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("applyStream")()
		// Streamed key/value pairs land in the memtable (they reach the
		// sstables at the next flush, like real Cassandra).
		mem := ctx.NamedObject("memtable")
		for _, kv := range strings.Split(m.Payload.Str(), ";") {
			if kv == "" {
				continue
			}
			pair := strings.SplitN(kv, "=", 2)
			if len(pair) != 2 {
				continue
			}
			mem.Set(ctx, pair[0], sim.Derive(pair[1], m.Payload))
			ctx.Cluster().SetFact("ca.store."+myRole+"."+pair[0], pair[1])
			ctx.Sleep(12)
		}
		_ = ctx.Send(m.From, "stream-finished", sim.V(me), sim.Droppable())
	})

	// --- Coordinator-side session tracking. ---
	self.HandleMsg("snapshot-ack", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("snapshotAck")()
		n := session.Get(ctx, "snapshotAcks")
		session.Set(ctx, "snapshotAcks", sim.Derive(n.Int()+1, n))
		if n.Int()+1 >= session.Get(ctx, "neighbors").Int() {
			// CA1's W: its disappearance strands the coordinator.
			ctx.NamedCond("snapshots-done").Signal(ctx, sim.V("ok"))
		}
	})

	self.HandleMsg("tree-response", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("treeResponse")()
		// Remember each neighbour's tree for the diff phase.
		body := m.Payload.Str()
		if i := strings.Index(body, "|"); i > 0 {
			session.Set(ctx, "tree-"+role(m.From), sim.Derive(body[i+1:], m.Payload))
		}
		n := session.Get(ctx, "treeResponses")
		session.Set(ctx, "treeResponses", sim.Derive(n.Int()+1, n))
		if n.Int()+1 >= session.Get(ctx, "neighbors").Int() {
			// CA2's W.
			ctx.NamedCond("trees-done").Signal(ctx, sim.V("ok"))
		}
	})

	self.HandleMsg("stream-finished", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("streamFinished")()
		n := session.Get(ctx, "pendingStreams")
		// CA3's W: the loop-exit write the streaming phase polls for.
		session.Set(ctx, "pendingStreams", sim.Derive(n.Int()-1, n))
	})

	// IFailureDetectionEventListener::convict — the crash-recovery safety
	// net that aborts in-flight repair phases... except streaming, which the
	// implementers forgot (CA3's root cause).
	self.HandleMsg("convict", func(ctx *sim.Context, m sim.Message) {
		defer ctx.Scope("convict")()
		dead := role(m.Payload.Str())
		state.Set(ctx, "dead-"+dead, sim.V(true))
		phase := session.Get(ctx, "phase")
		if ctx.Guard(sim.Derive(phase.Str() == "snapshot" || phase.Str() == "validation", phase)) {
			ctx.Cluster().SetFact("ca.repair", "aborted")
			ctx.NamedCond("snapshots-done").Signal(ctx, sim.V("aborted"))
			ctx.NamedCond("trees-done").Signal(ctx, sim.V("aborted"))
		}
	})

	// Pull the cluster view, announce the (re)join, then start gossiping.
	if !coordinator {
		for _, peer := range peers {
			if peer == myRole {
				continue
			}
			if _, err := ctx.Call(peer, "GossipInfo"); err != nil {
				ctx.LogError("cassandra: cannot pull gossip view")
			}
		}
	}
	for _, peer := range peers {
		if peer != myRole {
			_ = ctx.Send(peer, "announce", sim.Derive("gen:"+me, tokens))
		}
	}
	startGossip(ctx, p, peers, myRole, state)
	if !coordinator {
		return
	}

	// --- The anti-entropy repair session (coordinator only). ---
	ctx.Sleep(p.repairDelay)
	if _, err := ctx.Call("cass1", "GetVersion"); err != nil {
		ctx.LogError("cassandra: version probe failed")
	}

	// Only live neighbours participate (a dead endpoint is excluded from
	// the session, as in real repair).
	var neighbors []string
	for _, nb := range peers[1:] {
		if ctx.Cluster().Lookup(nb) != "" {
			neighbors = append(neighbors, nb)
			ctx.Cluster().SetFact("ca.inSession."+nb, "true")
		}
	}
	if len(neighbors) == 0 {
		ctx.Cluster().SetFact("ca.repair", "aborted")
		return
	}
	session.Set(ctx, "neighbors", sim.V(len(neighbors)))
	session.Set(ctx, "phase", sim.V("snapshot"))
	for _, nb := range neighbors {
		_ = ctx.Send(nb, "take-snapshot", sim.V("repair-1"))
	}
	// CA1: no timeout, no retry — a lost ack hangs the repair forever.
	v, _ := ctx.NamedCond("snapshots-done").Wait(ctx)
	if ctx.Guard(sim.Derive(v.Str() == "aborted", v)) {
		ctx.Cluster().SetFact("ca.repair", "aborted")
		return
	}

	session.Set(ctx, "phase", sim.V("validation"))
	for _, nb := range neighbors {
		_ = ctx.Send(nb, "tree-request", sim.V("repair-1"))
	}
	// CA2: same hazard at the merkle-tree comparison.
	v, _ = ctx.NamedCond("trees-done").Wait(ctx)
	if ctx.Guard(sim.Derive(v.Str() == "aborted", v)) {
		ctx.Cluster().SetFact("ca.repair", "aborted")
		return
	}

	// Diff each neighbour's tree against the coordinator's own store and
	// stream exactly the keys whose values differ.
	session.Set(ctx, "phase", sim.V("streaming"))
	session.Set(ctx, "pendingStreams", sim.V(len(neighbors)))
	for _, nb := range neighbors {
		remote := decodeTree(session.Get(ctx, "tree-"+nb).Str())
		mem := ctx.NamedObject("memtable")
		var deltas []string
		var taints []sim.Value
		for k := 0; k < p.dataKeys; k++ {
			key := fmt.Sprintf("k%d", k)
			mine := mem.Get(ctx, key)
			if mine.IsNil() {
				sst, err := lfs.Read(ctx, "/var/cassandra/data/"+key)
				if err != nil {
					continue
				}
				mine = sst
			}
			taints = append(taints, mine)
			if remote[key] != mine.Str() {
				deltas = append(deltas, key+"="+mine.Str())
			}
		}
		_ = ctx.Send(nb, "stream-request", sim.Derive(strings.Join(deltas, ";"), taints...))
	}
	// CA3: the streaming poll — not covered by the convict abort.
	ctx.SyncLoop(sim.LoopOpts{Name: "waitStreams", SleepTicks: 45}, func(ctx *sim.Context) sim.Value {
		pending := session.Get(ctx, "pendingStreams")
		return sim.Derive(pending.Int() <= 0, pending)
	})
	ctx.Cluster().SetFact("ca.repair", "done")
}

// startGossip launches the node's gossip daemons and failure detector.
func startGossip(ctx *sim.Context, p params, peers []string, myRole string, state *sim.Object) {
	// --- Gossip send path, two tiers. The light heartbeat rounds carry the
	// endpoint state. The heavy full-digest recomputation hashes the whole
	// local state on a plain worker thread: selective tracing skips those
	// heap accesses, but the Section 8.2 exhaustive ablation pays for every
	// one, stretching full-digest rounds until the failure detector declares
	// this live node dead. ---
	ctx.GoDaemon("heartbeat-gossiper", func(ctx *sim.Context) {
		defer ctx.Scope("heartbeatGossiper")()
		for round := 1; ; round++ {
			digest := sim.Derive(round, state.Get(ctx, "tokens"))
			for _, peer := range peers {
				if peer != myRole {
					_ = ctx.Send(peer, "gossip-digest", digest, sim.Droppable())
				}
			}
			ctx.Sleep(p.gossipEvery)
		}
	})

	ctx.GoDaemon("full-digest-worker", func(ctx *sim.Context) {
		defer ctx.Scope("fullDigestWorker")()
		scratch := ctx.NamedObject("digestScratch")
		for round := 1; ; round++ {
			for i := 0; i < p.digestWork; i++ {
				scratch.Set(ctx, "acc", sim.V(round*31+i))
				_ = scratch.Get(ctx, "acc")
			}
			for _, peer := range peers {
				if peer != myRole {
					_ = ctx.Send(peer, "full-digest", sim.V(round), sim.Droppable())
				}
			}
			ctx.Sleep(p.fullDigestEvery)
		}
	})

	// --- Accrual failure detector: a silent-but-alive peer is a false
	// conviction (what the §8.2 exhaustive-tracing slowdown provokes). ---
	ctx.GoDaemon("failure-detector", func(ctx *sim.Context) {
		defer ctx.Scope("failureDetector")()
		for {
			ctx.Sleep(p.fdThreshold / 3)
			now := ctx.Now()
			for _, peer := range peers {
				if peer == myRole {
					continue
				}
				last := state.Get(ctx, "lastFullDigest-"+peer)
				if !last.Bool() || int64(now.Int()-last.Int()) <= p.fdThreshold {
					continue
				}
				if ctx.Cluster().Lookup(peer) != "" {
					// The peer process is alive; gossip is just too slow.
					ctx.Cluster().SetFact("ca.false-positive-conviction", peer)
				}
			}
		}
	})

}
