package storage_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"fcatch/internal/sim"
	"fcatch/internal/storage"
	"fcatch/internal/trace"
)

// run executes fn as the main of a one-node cluster with selective tracing
// and returns the cluster for trace inspection.
func run(t *testing.T, fn func(ctx *sim.Context)) *sim.Cluster {
	t.Helper()
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective})
	c.StartProcess("node", "m0", fn)
	out := c.Run()
	if !out.Completed {
		t.Fatalf("run hung: %+v", out.Hung)
	}
	return c
}

func TestGlobalFSCreateReadDelete(t *testing.T) {
	gfs := storage.NewGlobalFS()
	run(t, func(ctx *sim.Context) {
		if _, err := gfs.Create(ctx, "/a/b", sim.V("one")); err != nil {
			t.Errorf("create: %v", err)
		}
		if _, err := gfs.Create(ctx, "/a/b", sim.V("two")); err != storage.ErrAlreadyExists {
			t.Errorf("second create: %v, want ErrAlreadyExists", err)
		}
		v, err := gfs.Read(ctx, "/a/b")
		if err != nil || v.Str() != "one" {
			t.Errorf("read = %q, %v", v.Str(), err)
		}
		if err := gfs.Delete(ctx, "/a/b"); err != nil {
			t.Errorf("delete: %v", err)
		}
		if _, err := gfs.Read(ctx, "/a/b"); err != storage.ErrNotFound {
			t.Errorf("read after delete: %v, want ErrNotFound", err)
		}
		if err := gfs.Delete(ctx, "/a/b"); err != storage.ErrNotFound {
			t.Errorf("double delete: %v, want ErrNotFound", err)
		}
	})
}

func TestGlobalFSWriteCreatesAndOverwrites(t *testing.T) {
	gfs := storage.NewGlobalFS()
	run(t, func(ctx *sim.Context) {
		gfs.Write(ctx, "/w", sim.V("v1"))
		gfs.Write(ctx, "/w", sim.V("v2"))
		v, _ := gfs.Read(ctx, "/w")
		if v.Str() != "v2" {
			t.Errorf("read = %q, want v2", v.Str())
		}
	})
}

func TestGlobalFSExistsAndRename(t *testing.T) {
	gfs := storage.NewGlobalFS()
	run(t, func(ctx *sim.Context) {
		if gfs.Exists(ctx, "/r").Bool() {
			t.Error("exists before create")
		}
		gfs.Write(ctx, "/r", sim.V("x"))
		if !gfs.Exists(ctx, "/r").Bool() {
			t.Error("not exists after write")
		}
		if err := gfs.Rename(ctx, "/r", "/r2"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if gfs.Exists(ctx, "/r").Bool() || !gfs.Exists(ctx, "/r2").Bool() {
			t.Error("rename did not move the file")
		}
		if err := gfs.Rename(ctx, "/missing", "/x"); err != storage.ErrNotFound {
			t.Errorf("rename missing: %v", err)
		}
	})
}

func TestGlobalFSAppend(t *testing.T) {
	gfs := storage.NewGlobalFS()
	run(t, func(ctx *sim.Context) {
		gfs.Append(ctx, "/log", sim.V("a"))
		gfs.Append(ctx, "/log", sim.V("b"))
		gfs.Append(ctx, "/log", sim.V("c"))
		v, _ := gfs.Read(ctx, "/log")
		if v.Str() != "a,b,c" {
			t.Errorf("appended log = %q", v.Str())
		}
	})
}

func TestGlobalFSListAndDeleteTree(t *testing.T) {
	gfs := storage.NewGlobalFS()
	c := run(t, func(ctx *sim.Context) {
		gfs.Write(ctx, "/dir/a", sim.V(1))
		gfs.Write(ctx, "/dir/b", sim.V(2))
		gfs.Write(ctx, "/other", sim.V(3))
		got := gfs.List(ctx, "/dir")
		if len(got) != 2 || got[0] != "/dir/a" {
			t.Errorf("list = %v", got)
		}
		if n := gfs.DeleteTree(ctx, "/dir"); n != 2 {
			t.Errorf("deleteTree removed %d", n)
		}
		if len(gfs.List(ctx, "/dir")) != 0 {
			t.Error("tree not empty after DeleteTree")
		}
		if !gfs.Exists(ctx, "/other").Bool() {
			t.Error("DeleteTree removed an unrelated file")
		}
	})
	// A recursive delete must unlink each child individually (the MR2
	// conflicting-op requirement).
	perChild := 0
	for i := range c.Trace().Records {
		r := &c.Trace().Records[i]
		if res := c.Trace().Str(r.Res); r.Kind == trace.KStDelete && (res == "gfs:/dir/a" || res == "gfs:/dir/b") {
			perChild++
		}
	}
	if perChild != 2 {
		t.Fatalf("per-child delete records = %d, want 2", perChild)
	}
}

func TestLocalFSIsPerMachine(t *testing.T) {
	lfs := storage.NewLocalFS()
	c := sim.NewCluster(sim.Config{Seed: 1})
	c.StartProcess("a", "machine-a", func(ctx *sim.Context) {
		lfs.Write(ctx, "/data", sim.V("from-a"))
	})
	c.StartProcess("b", "machine-b", func(ctx *sim.Context) {
		ctx.Sleep(100)
		if _, err := lfs.Read(ctx, "/data"); err != storage.ErrNotFound {
			t.Errorf("machine-b sees machine-a's file: %v", err)
		}
	})
	c.Run()
	if v, ok := lfs.PeekLocal("machine-a", "/data"); !ok || v != "from-a" {
		t.Fatalf("PeekLocal = %v, %v", v, ok)
	}
}

func TestLocalFSSurvivesProcessCrash(t *testing.T) {
	lfs := storage.NewLocalFS()
	plan := sim.NewObservationPlan("srv", 60, map[string]int64{"srv": 40})
	c := sim.NewCluster(sim.Config{Seed: 1, Plan: plan})
	var recovered string
	c.StartProcess("srv", "m0", func(ctx *sim.Context) {
		if v, err := lfs.Read(ctx, "/state"); err == nil {
			recovered = v.Str() // the restarted incarnation sees the disk
			return
		}
		lfs.Write(ctx, "/state", sim.V("persisted"))
		ctx.Sleep(500)
	})
	out := c.Run()
	if !out.Completed {
		t.Fatalf("hung: %+v", out.Hung)
	}
	if recovered != "persisted" {
		t.Fatalf("restart read %q, want the pre-crash content", recovered)
	}
}

func TestFailedOpsAreFlagged(t *testing.T) {
	gfs := storage.NewGlobalFS()
	c := run(t, func(ctx *sim.Context) {
		gfs.Write(ctx, "/f", sim.V(1))
		_, _ = gfs.Create(ctx, "/f", sim.V(2)) // fails: exists
		_, _ = gfs.Read(ctx, "/nope")          // fails: missing
	})
	var failedCreate, failedRead bool
	for i := range c.Trace().Records {
		r := &c.Trace().Records[i]
		if r.Kind == trace.KStCreate && r.HasFlag(trace.FlagFailed) {
			failedCreate = true
		}
		if r.Kind == trace.KStRead && r.HasFlag(trace.FlagFailed) {
			failedRead = true
		}
	}
	if !failedCreate || !failedRead {
		t.Fatalf("failed ops not flagged (create=%v read=%v)", failedCreate, failedRead)
	}
}

func TestReadCarriesDefineUseLink(t *testing.T) {
	gfs := storage.NewGlobalFS()
	c := run(t, func(ctx *sim.Context) {
		gfs.Write(ctx, "/d", sim.V("x"))
		_, _ = gfs.Read(ctx, "/d")
	})
	var writeID trace.OpID
	for i := range c.Trace().Records {
		r := &c.Trace().Records[i]
		if r.Kind == trace.KStWrite && c.Trace().Str(r.Res) == "gfs:/d" {
			writeID = r.ID
		}
		if r.Kind == trace.KStRead && c.Trace().Str(r.Res) == "gfs:/d" {
			if r.Src != writeID {
				t.Fatalf("read Src = %d, want the write %d", r.Src, writeID)
			}
		}
	}
}

func TestKVCreateGetSetDelete(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective})
	kv := storage.NewKV(c)
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		if _, err := kv.Create(ctx, "/z", sim.V("v0")); err != nil {
			t.Errorf("create: %v", err)
		}
		if _, err := kv.Create(ctx, "/z", sim.V("v1")); err != storage.ErrAlreadyExists {
			t.Errorf("re-create: %v", err)
		}
		if err := kv.SetData(ctx, "/z", sim.V("v2")); err != nil {
			t.Errorf("set: %v", err)
		}
		if v, _ := kv.GetData(ctx, "/z"); v.Str() != "v2" {
			t.Errorf("get = %q", v.Str())
		}
		if !kv.Exists(ctx, "/z").Bool() {
			t.Error("exists = false")
		}
		if err := kv.Delete(ctx, "/z"); err != nil {
			t.Errorf("delete: %v", err)
		}
		if err := kv.SetData(ctx, "/z", sim.V("v3")); err != storage.ErrNotFound {
			t.Errorf("set after delete: %v", err)
		}
	})
	c.Run()
}

func TestKVChildren(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	kv := storage.NewKV(c)
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		_, _ = kv.Create(ctx, "/d/b", sim.V(1))
		_, _ = kv.Create(ctx, "/d/a", sim.V(2))
		_, _ = kv.Create(ctx, "/d/a/nested", sim.V(3))
		got := kv.Children(ctx, "/d")
		if len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Errorf("children = %v", got)
		}
	})
	c.Run()
}

func TestKVWatchFiresOnChanges(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceSelective})
	kv := storage.NewKV(c)
	var events []string
	c.StartProcess("watcher", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleEvent("zk-change", func(ctx *sim.Context, payload sim.Value) {
			events = append(events, payload.Str())
		})
		kv.Watch(ctx, "/w", "zk-change", false)
		ctx.Sleep(400)
	})
	c.StartProcess("writer", "m1", func(ctx *sim.Context) {
		ctx.Sleep(50)
		_, _ = kv.Create(ctx, "/w", sim.V(1))
		_ = kv.SetData(ctx, "/w", sim.V(2))
		_ = kv.Delete(ctx, "/w")
	})
	c.Run()
	want := []string{"created:/w", "data:/w", "deleted:/w"}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("watch events = %v, want %v", events, want)
	}
}

func TestKVChildWatch(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	kv := storage.NewKV(c)
	var events []string
	c.StartProcess("watcher", "m0", func(ctx *sim.Context) {
		ctx.Self().HandleEvent("kids", func(ctx *sim.Context, payload sim.Value) {
			events = append(events, payload.Str())
		})
		kv.Watch(ctx, "/parent", "kids", true)
		ctx.Sleep(300)
	})
	c.StartProcess("writer", "m1", func(ctx *sim.Context) {
		ctx.Sleep(40)
		_, _ = kv.Create(ctx, "/parent/kid", sim.V(1))
		_ = kv.Delete(ctx, "/parent/kid")
	})
	c.Run()
	if len(events) != 2 || events[0] != "created:/parent/kid" || events[1] != "deleted:/parent/kid" {
		t.Fatalf("child watch events = %v", events)
	}
}

func TestKVEphemeralExpiry(t *testing.T) {
	plan := sim.NewObservationPlan("owner", 80, nil)
	c := sim.NewCluster(sim.Config{Seed: 1, Plan: plan})
	kv := storage.NewKV(c)
	kv.SetSessionExpiryDelay(120)
	var stillThereAtCrash, goneAtEnd bool
	c.StartProcess("owner", "m0", func(ctx *sim.Context) {
		_, _ = kv.Create(ctx, "/eph", sim.V("me"), storage.Ephemeral())
		ctx.Sleep(1_000)
	})
	c.StartProcess("observer", "m1", func(ctx *sim.Context) {
		ctx.Sleep(120) // after the crash, before the session expires
		stillThereAtCrash = kv.Exists(ctx, "/eph").Bool()
		ctx.Sleep(400)
		goneAtEnd = !kv.Exists(ctx, "/eph").Bool()
	})
	c.Run()
	if !stillThereAtCrash {
		t.Fatal("ephemeral vanished before the session expired")
	}
	if !goneAtEnd {
		t.Fatal("ephemeral survived session expiry")
	}
}

func TestKVSeedAndPeek(t *testing.T) {
	c := sim.NewCluster(sim.Config{Seed: 1})
	kv := storage.NewKV(c)
	kv.Seed("/seeded", sim.V("early"))
	var got string
	c.StartProcess("n", "m0", func(ctx *sim.Context) {
		v, _ := kv.GetData(ctx, "/seeded")
		got = v.Str()
	})
	c.Run()
	if got != "early" {
		t.Fatalf("seeded read = %q", got)
	}
	if v, ok := kv.Peek("/seeded"); !ok || v != "early" {
		t.Fatalf("Peek = %v, %v", v, ok)
	}
}

// Property: any sequence of writes to distinct paths reads back exactly.
func TestGlobalFSWriteReadProperty(t *testing.T) {
	f := func(vals []int16) bool {
		gfs := storage.NewGlobalFS()
		ok := true
		c := sim.NewCluster(sim.Config{Seed: 1})
		c.StartProcess("n", "m0", func(ctx *sim.Context) {
			for i, v := range vals {
				gfs.Write(ctx, fmt.Sprintf("/p/%d", i), sim.V(int(v)))
			}
			for i, v := range vals {
				got, err := gfs.Read(ctx, fmt.Sprintf("/p/%d", i))
				if err != nil || got.Int() != int(v) {
					ok = false
				}
			}
		})
		c.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
