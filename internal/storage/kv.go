package storage

import (
	"sort"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// KV is the coordination service stand-in (ZooKeeper): a hierarchical store
// of znodes with ephemeral ownership and change watches. Znode updates are
// causal operations — update(s) c→ notify(s) c→ watcher-handler ops — which
// is how, e.g., a RegionServer's OPENED registration reaches HMaster's RIT
// map in Figure 6.
type KV struct {
	c   *sim.Cluster
	svc *sim.Node // session-expiry worker (deletes ephemerals of dead PIDs)

	znodes      map[string]*kvSlot
	dirWrites   map[string]trace.OpID
	watches     map[string][]watchReg // path -> registrations
	ephemeral   map[string][]string   // owner pid -> paths
	expiryDelay int64
}

// SetSessionExpiryDelay configures how long after a process crash its
// ephemeral znodes linger before the session expires — the window in which a
// restarted process finds its predecessor's locks still standing.
func (kv *KV) SetSessionExpiryDelay(ticks int64) { kv.expiryDelay = ticks }

type kvSlot struct {
	data      sim.Value
	lastWrite trace.OpID
	owner     string // ephemeral owner pid ("" = persistent)
}

type watchReg struct {
	pid   string // watcher process
	event string // event type delivered to the watcher's event queue
	child bool   // fire on child creation/deletion too
}

// ChangeKind labels what happened to a watched znode.
type ChangeKind string

// Watch change kinds, delivered in the event payload as "<kind>:<path>".
const (
	ChangeCreated ChangeKind = "created"
	ChangeDeleted ChangeKind = "deleted"
	ChangeData    ChangeKind = "data"
	ChangeChild   ChangeKind = "child"
)

// NewKV creates the coordination service, including its session-expiry
// worker process on the dedicated "zk-svc" machine.
func NewKV(c *sim.Cluster) *KV {
	kv := &KV{
		c:         c,
		znodes:    make(map[string]*kvSlot),
		dirWrites: make(map[string]trace.OpID),
		watches:   make(map[string][]watchReg),
		ephemeral: make(map[string][]string),
	}
	pid := c.StartProcess("zk-service", "zk-svc", func(ctx *sim.Context) {})
	kv.svc = c.Node(pid)
	kv.svc.HandleEvent("session-expire", func(ctx *sim.Context, payload sim.Value) {
		if kv.expiryDelay > 0 {
			ctx.Sleep(kv.expiryDelay)
		}
		kv.expireSession(ctx, payload.Str())
	})
	c.OnProcessCrash(func(dead string) {
		if len(kv.ephemeral[dead]) > 0 {
			kv.svc.PostEvent("session-expire", sim.V(dead), trace.NoOp, 0)
		}
	})
	return kv
}

func zres(path string) string { return "zk:" + path }

// Seed pre-populates a znode before the run starts (no tracing, no
// scheduling) — configuration state the workload begins with.
func (kv *KV) Seed(path string, v sim.Value) {
	kv.znodes[path] = &kvSlot{data: v}
}

// Peek inspects a znode from outside the simulation (workload checkers).
func (kv *KV) Peek(path string) (any, bool) {
	if s, ok := kv.znodes[path]; ok {
		return s.data.Data, true
	}
	return nil, false
}

// CreateOpt modifies Create.
type CreateOpt func(*createCfg)

type createCfg struct{ ephemeral bool }

// Ephemeral makes the znode die with its creator's session (process).
func Ephemeral() CreateOpt { return func(c *createCfg) { c.ephemeral = true } }

// Create adds a znode; ErrAlreadyExists if present. A create *consumes* the
// prior existence state of the path (its record carries a define-use link to
// whatever defined it), which is how two creates can conflict — the HB2
// "Create vs Create" lock pattern. The returned value is the tainted success
// flag; guard on it so the detectors see the control dependence.
func (kv *KV) Create(ctx *sim.Context, path string, v sim.Value, opts ...CreateOpt) (sim.Value, error) {
	var cfg createCfg
	for _, o := range opts {
		o(&cfg)
	}
	var err error
	src := kv.dirWrites[dirOf(path)]
	if s, ok := kv.znodes[path]; ok {
		src = s.lastWrite
	}
	id, _, _ := ctx.Do(sim.OpReq{
		Kind: trace.KKVUpdate, Res: zres(path), Aux: "create", Taint: v.Taint(),
		Flags: ephFlag(cfg.ephemeral), Src: src,
		FlagsAfter: func() uint32 {
			if err != nil {
				return trace.FlagFailed
			}
			return 0
		},
		PostEmit: func(id trace.OpID) {
			if err != nil || id == trace.NoOp {
				return
			}
			if s := kv.znodes[path]; s != nil {
				s.lastWrite = id
			}
			kv.dirWrites[dirOf(path)] = id
		},
		Apply: func() {
			if _, ok := kv.znodes[path]; ok {
				err = ErrAlreadyExists
				return
			}
			s := &kvSlot{data: v}
			if cfg.ephemeral {
				s.owner = ctx.PID()
				kv.ephemeral[s.owner] = append(kv.ephemeral[s.owner], path)
			}
			kv.znodes[path] = s
		},
	})
	ok := sim.V(err == nil)
	if id != trace.NoOp {
		ok = ok.WithTaint(id)
	}
	if err != nil {
		return ok, err
	}
	kv.fireWatches(ctx, path, ChangeCreated, id)
	return ok, nil
}

func ephFlag(e bool) uint32 {
	if e {
		return trace.FlagEphemeral
	}
	return 0
}

// SetData overwrites a znode's content; ErrNotFound if absent.
func (kv *KV) SetData(ctx *sim.Context, path string, v sim.Value) error {
	var err error
	id, _, _ := ctx.Do(sim.OpReq{
		Kind: trace.KKVUpdate, Res: zres(path), Aux: "set", Taint: v.Taint(),
		FlagsAfter: func() uint32 {
			if err != nil {
				return trace.FlagFailed
			}
			return 0
		},
		PostEmit: func(id trace.OpID) {
			if err != nil || id == trace.NoOp {
				return
			}
			if s := kv.znodes[path]; s != nil {
				s.lastWrite = id
			}
		},
		Apply: func() {
			s, ok := kv.znodes[path]
			if !ok {
				err = ErrNotFound
				return
			}
			s.data = v
		},
	})
	if err != nil {
		return err
	}
	kv.fireWatches(ctx, path, ChangeData, id)
	return nil
}

// Delete removes a znode; ErrNotFound if absent.
func (kv *KV) Delete(ctx *sim.Context, path string) error {
	return kv.deleteInternal(ctx, path)
}

func (kv *KV) deleteInternal(ctx *sim.Context, path string) error {
	var err error
	id, _, _ := ctx.Do(sim.OpReq{
		Kind: trace.KKVUpdate, Res: zres(path), Aux: "delete",
		FlagsAfter: func() uint32 {
			if err != nil {
				return trace.FlagFailed
			}
			return 0
		},
		PostEmit: func(id trace.OpID) {
			if err == nil && id != trace.NoOp {
				kv.dirWrites[dirOf(path)] = id
			}
		},
		Apply: func() {
			s, ok := kv.znodes[path]
			if !ok {
				err = ErrNotFound
				return
			}
			if s.owner != "" {
				kv.dropEphemeralRef(s.owner, path)
			}
			delete(kv.znodes, path)
		},
	})
	if err != nil {
		return err
	}
	kv.fireWatches(ctx, path, ChangeDeleted, id)
	return nil
}

func (kv *KV) dropEphemeralRef(owner, path string) {
	paths := kv.ephemeral[owner]
	for i, p := range paths {
		if p == path {
			kv.ephemeral[owner] = append(paths[:i], paths[i+1:]...)
			return
		}
	}
}

// GetData reads a znode's content.
func (kv *KV) GetData(ctx *sim.Context, path string) (sim.Value, error) {
	var out sim.Value
	var err error
	var src trace.OpID
	if s, ok := kv.znodes[path]; ok {
		src = s.lastWrite
	}
	id, _, _ := ctx.Do(sim.OpReq{
		Kind: trace.KStRead, Res: zres(path), Src: src,
		Apply: func() {
			s, ok := kv.znodes[path]
			if !ok {
				err = ErrNotFound
				return
			}
			out = s.data
		},
	})
	if id != trace.NoOp {
		// Even a failed read yields information (the absence); the empty
		// value carries the read's taint so dependence analysis sees it.
		out = out.WithTaint(id)
	}
	if err != nil {
		return out, err
	}
	return out, nil
}

// Exists probes a znode; the result is a tainted boolean.
func (kv *KV) Exists(ctx *sim.Context, path string) sim.Value {
	var present bool
	src := kv.dirWrites[dirOf(path)]
	if s, ok := kv.znodes[path]; ok {
		src = s.lastWrite
	}
	id, _, _ := ctx.Do(sim.OpReq{
		Kind: trace.KStExists, Res: zres(path), Src: src,
		Apply: func() { _, present = kv.znodes[path] },
	})
	out := sim.V(present)
	if id != trace.NoOp {
		out = out.WithTaint(id)
	}
	return out
}

// Children lists the immediate children names of dir, sorted.
func (kv *KV) Children(ctx *sim.Context, dir string) []string {
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	id, _, _ := ctx.Do(sim.OpReq{
		Kind: trace.KStList, Res: zres(dir), Src: kv.dirWrites[dir],
		Apply: func() {
			seen := map[string]bool{}
			for p := range kv.znodes {
				if strings.HasPrefix(p, prefix) {
					rest := strings.TrimPrefix(p, prefix)
					if i := strings.Index(rest, "/"); i >= 0 {
						rest = rest[:i]
					}
					if !seen[rest] {
						seen[rest] = true
						names = append(names, rest)
					}
				}
			}
			sort.Strings(names)
		},
	})
	_ = id
	return names
}

// Watch registers a persistent watch: any change to path (and, with child
// set, creations/deletions directly under it) posts an event of the given
// type to the watcher's event queue, carrying "<change>:<path>".
func (kv *KV) Watch(ctx *sim.Context, path, eventType string, child bool) {
	kv.watches[path] = append(kv.watches[path], watchReg{pid: ctx.PID(), event: eventType, child: child})
}

// fireWatches emits notify ops and posts watcher events for a change. Child
// watches receive "created:<path>" / "deleted:<path>" payloads so watchers
// can tell registrations from expirations.
func (kv *KV) fireWatches(ctx *sim.Context, path string, change ChangeKind, updateOp trace.OpID) {
	payload := string(change) + ":" + path
	kv.notifyList(ctx, kv.watches[path], path, payload, updateOp, false)
	if parent := dirOf(path); (change == ChangeCreated || change == ChangeDeleted) && parent != path {
		kv.notifyList(ctx, kv.watches[parent], path, payload, updateOp, true)
	}
}

func (kv *KV) notifyList(ctx *sim.Context, regs []watchReg, path, payload string, updateOp trace.OpID, childOnly bool) {
	for _, w := range regs {
		if childOnly && !w.child {
			continue
		}
		dst := kv.c.Node(w.pid)
		if dst == nil || dst.Crashed() {
			continue
		}
		nid, _, _ := ctx.Do(sim.OpReq{
			Kind: trace.KKVNotify, Res: zres(path), Aux: w.event,
			Target: w.pid, Causor: updateOp,
		})
		dst.PostEvent(w.event, sim.V(payload), nid, 0)
	}
}

// expireSession deletes every ephemeral znode owned by a dead process — the
// session-expiry behaviour other nodes' recovery logic watches for.
func (kv *KV) expireSession(ctx *sim.Context, dead string) {
	paths := append([]string(nil), kv.ephemeral[dead]...)
	sort.Strings(paths)
	for _, p := range paths {
		// Each delete is attributed to the service process; watchers see
		// ordinary deletion events.
		_ = kv.deleteInternal(ctx, p)
	}
	delete(kv.ephemeral, dead)
}
