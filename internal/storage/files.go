// Package storage provides the persistent substrates of the simulated world:
// per-machine local file systems (survive process crashes), a global file
// system (the HDFS stand-in), and a watchable key-value store (the ZooKeeper
// stand-in). These are the paper's second resource type (Section 3.2):
// "persistent data in file systems, key-value stores, etc." — every access
// is traced with create/delete/read/write/rename/check-if-exist op kinds.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// Errors returned by storage operations.
var (
	ErrNotFound      = errors.New("storage: no such file or record")
	ErrAlreadyExists = errors.New("storage: already exists")
)

// fileSlot is one stored object plus detector bookkeeping.
type fileSlot struct {
	data      sim.Value
	lastWrite trace.OpID
}

// fileStore is the shared implementation behind LocalFS and GlobalFS.
type fileStore struct {
	slots map[string]*fileSlot // full resource id -> slot
	// dirWrites tracks the last structural change under each directory
	// resource, so List/Exists reads get define-use links.
	dirWrites map[string]trace.OpID
}

func newFileStore() *fileStore {
	return &fileStore{slots: make(map[string]*fileSlot), dirWrites: make(map[string]trace.OpID)}
}

func dirOf(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

func (fs *fileStore) noteDirChange(res string, id trace.OpID) {
	fs.dirWrites[res] = id
}

// create adds a file; errors if present. Like KV creates, the op consumes
// the prior existence state (define-use link via Src) and yields a tainted
// success flag.
func (fs *fileStore) create(ctx *sim.Context, res, dirRes string, v sim.Value) (sim.Value, error) {
	var err error
	src := fs.dirWrites[dirRes]
	if s, ok := fs.slots[res]; ok {
		src = s.lastWrite
	}
	req := trcOp(trace.KStCreate, res, v.Taint(), src, func() {
		if _, ok := fs.slots[res]; ok {
			err = ErrAlreadyExists
			return
		}
		fs.slots[res] = &fileSlot{data: v}
	})
	req.FlagsAfter = failFlag(&err)
	var opID trace.OpID
	req.PostEmit = func(id trace.OpID) {
		opID = id
		if err != nil || id == trace.NoOp {
			return
		}
		if s := fs.slots[res]; s != nil {
			s.lastWrite = id
		}
		fs.noteDirChange(dirRes, id)
	}
	ctx.Do(req)
	ok := sim.V(err == nil)
	if opID != trace.NoOp {
		ok = ok.WithTaint(opID)
	}
	return ok, err
}

// write stores content, creating the file if needed.
func (fs *fileStore) write(ctx *sim.Context, res, dirRes string, v sim.Value) {
	created := false
	req := trcOp(trace.KStWrite, res, v.Taint(), trace.NoOp, func() {
		s, ok := fs.slots[res]
		if !ok {
			s = &fileSlot{}
			fs.slots[res] = s
			created = true
		}
		s.data = v
	})
	req.PostEmit = func(id trace.OpID) {
		if id == trace.NoOp {
			return
		}
		if s := fs.slots[res]; s != nil {
			s.lastWrite = id
		}
		if created {
			fs.noteDirChange(dirRes, id)
		}
	}
	ctx.Do(req)
}

// appendTo concatenates a comma-separated entry onto a file in one write op
// (a log append does not re-read the log).
func (fs *fileStore) appendTo(ctx *sim.Context, res, dirRes string, v sim.Value) {
	created := false
	req := trcOp(trace.KStWrite, res, v.Taint(), trace.NoOp, func() {
		s, ok := fs.slots[res]
		if !ok {
			s = &fileSlot{}
			fs.slots[res] = s
			created = true
		}
		if prev, _ := s.data.Data.(string); prev != "" {
			s.data = sim.Derive(prev+","+v.Str(), s.data, v)
		} else {
			s.data = sim.Derive(v.Str(), v)
		}
	})
	req.PostEmit = func(id trace.OpID) {
		if id == trace.NoOp {
			return
		}
		if s := fs.slots[res]; s != nil {
			s.lastWrite = id
		}
		if created {
			fs.noteDirChange(dirRes, id)
		}
	}
	ctx.Do(req)
}

// read returns content; ErrNotFound if absent.
func (fs *fileStore) read(ctx *sim.Context, res string) (sim.Value, error) {
	var out sim.Value
	var err error
	var src trace.OpID
	if s, ok := fs.slots[res]; ok {
		src = s.lastWrite
	}
	req := trcOp(trace.KStRead, res, nil, src, func() {
		s, ok := fs.slots[res]
		if !ok {
			err = ErrNotFound
			return
		}
		out = s.data
	})
	req.FlagsAfter = failFlag(&err)
	id, _, _ := ctx.Do(req)
	if id != trace.NoOp {
		// A failed read still carries its op taint: the observed absence is
		// information derived from the read.
		out = out.WithTaint(id)
	}
	if err != nil {
		return out, err
	}
	return out, nil
}

// del removes a file; ErrNotFound if absent.
func (fs *fileStore) del(ctx *sim.Context, res, dirRes string) error {
	var err error
	req := trcOp(trace.KStDelete, res, nil, trace.NoOp, func() {
		if _, ok := fs.slots[res]; !ok {
			err = ErrNotFound
			return
		}
		delete(fs.slots, res)
	})
	req.FlagsAfter = failFlag(&err)
	req.PostEmit = func(id trace.OpID) {
		if err == nil {
			fs.noteDirChange(dirRes, id)
		}
	}
	ctx.Do(req)
	return err
}

// exists probes a file; the returned value is a tainted boolean with a
// define-use link to the write/delete that decided it.
func (fs *fileStore) exists(ctx *sim.Context, res, dirRes string) sim.Value {
	var present bool
	src := fs.dirWrites[dirRes]
	if s, ok := fs.slots[res]; ok {
		src = s.lastWrite
	}
	id, _, _ := ctx.Do(trcOp(trace.KStExists, res, nil, src, func() {
		_, present = fs.slots[res]
	}))
	out := sim.V(present)
	if id != trace.NoOp {
		out = out.WithTaint(id)
	}
	return out
}

// rename moves a file; ErrNotFound if src is absent.
func (fs *fileStore) rename(ctx *sim.Context, fromRes, toRes, dirRes string) error {
	var err error
	req := trcOp(trace.KStRename, fromRes, nil, trace.NoOp, func() {
		s, ok := fs.slots[fromRes]
		if !ok {
			err = ErrNotFound
			return
		}
		delete(fs.slots, fromRes)
		fs.slots[toRes] = s
	})
	req.FlagsAfter = failFlag(&err)
	req.PostEmit = func(id trace.OpID) {
		if err != nil || id == trace.NoOp {
			return
		}
		if s := fs.slots[toRes]; s != nil {
			s.lastWrite = id
		}
		fs.noteDirChange(dirRes, id)
	}
	ctx.Do(req)
	return err
}

// list returns the sorted resource IDs under prefix (one directory level is
// not enforced; callers filter).
func (fs *fileStore) list(ctx *sim.Context, dirRes, prefix string) []string {
	var names []string
	ctx.Do(trcOp(trace.KStList, dirRes, nil, fs.dirWrites[dirRes], func() {
		for res := range fs.slots {
			if strings.HasPrefix(res, prefix) {
				names = append(names, res)
			}
		}
		sort.Strings(names)
	}))
	return names
}

// deleteTree removes everything under prefix — the "rm -r" of the MR2
// staging cleanup. Each removed file gets its own delete record (a recursive
// delete really is a sequence of unlinks), then the tree root gets one.
func (fs *fileStore) deleteTree(ctx *sim.Context, treeRes, prefix string) int {
	var victims []string
	for res := range fs.slots {
		if strings.HasPrefix(res, prefix) {
			victims = append(victims, res)
		}
	}
	sort.Strings(victims)
	for _, res := range victims {
		target := res
		ctx.Do(trcOp(trace.KStDelete, target, nil, trace.NoOp, func() {
			delete(fs.slots, target)
		}))
	}
	id, _, _ := ctx.Do(trcOp(trace.KStDelete, treeRes, nil, trace.NoOp, nil))
	fs.noteDirChange(treeRes, id)
	return len(victims)
}

func trcOp(kind trace.Kind, res string, taint []trace.OpID, src trace.OpID, apply func()) sim.OpReq {
	return sim.OpReq{Kind: kind, Res: res, Taint: taint, Src: src, Apply: apply}
}

// failFlag marks the record failed when *err is set after Apply; failed
// write-like ops define no content and must not count as recovery resets.
func failFlag(err *error) func() uint32 {
	return func() uint32 {
		if *err != nil {
			return trace.FlagFailed
		}
		return 0
	}
}

// LocalFS is the per-machine file system. Content is keyed by machine, so it
// survives process crashes and is visible to restarted incarnations — but
// only to processes on the same machine.
type LocalFS struct{ fs *fileStore }

// NewLocalFS creates the cluster-wide registry of per-machine disks.
func NewLocalFS() *LocalFS { return &LocalFS{fs: newFileStore()} }

func (l *LocalFS) res(ctx *sim.Context, path string) string {
	return fmt.Sprintf("lfs:%s:%s", ctx.Machine(), path)
}
func (l *LocalFS) dirRes(ctx *sim.Context, path string) string {
	return fmt.Sprintf("lfs:%s:%s", ctx.Machine(), dirOf(path))
}

// Create adds a local file; ErrAlreadyExists if present. The returned value
// is the tainted success flag.
func (l *LocalFS) Create(ctx *sim.Context, path string, v sim.Value) (sim.Value, error) {
	return l.fs.create(ctx, l.res(ctx, path), l.dirRes(ctx, path), v)
}

// Write stores content, creating the file if needed.
func (l *LocalFS) Write(ctx *sim.Context, path string, v sim.Value) {
	l.fs.write(ctx, l.res(ctx, path), l.dirRes(ctx, path), v)
}

// Read returns the file content.
func (l *LocalFS) Read(ctx *sim.Context, path string) (sim.Value, error) {
	return l.fs.read(ctx, l.res(ctx, path))
}

// Append concatenates an entry onto a local file (one write op).
func (l *LocalFS) Append(ctx *sim.Context, path string, v sim.Value) {
	l.fs.appendTo(ctx, l.res(ctx, path), l.dirRes(ctx, path), v)
}

// Delete removes a local file.
func (l *LocalFS) Delete(ctx *sim.Context, path string) error {
	return l.fs.del(ctx, l.res(ctx, path), l.dirRes(ctx, path))
}

// Exists probes a local file.
func (l *LocalFS) Exists(ctx *sim.Context, path string) sim.Value {
	return l.fs.exists(ctx, l.res(ctx, path), l.dirRes(ctx, path))
}

// List returns paths under dir on this machine, sorted.
func (l *LocalFS) List(ctx *sim.Context, dir string) []string {
	prefix := l.res(ctx, strings.TrimSuffix(dir, "/")+"/")
	out := l.fs.list(ctx, l.res(ctx, dir), prefix)
	for i, res := range out {
		out[i] = strings.TrimPrefix(res, fmt.Sprintf("lfs:%s:", ctx.Machine()))
	}
	return out
}

// Seed pre-populates a local file before the run starts (no tracing, no
// scheduling) — input data the workload begins with.
func (l *LocalFS) Seed(machine, path string, v sim.Value) {
	l.fs.slots[fmt.Sprintf("lfs:%s:%s", machine, path)] = &fileSlot{data: v}
}

// PeekLocal inspects a local file's content from outside the simulation.
func (l *LocalFS) PeekLocal(machine, path string) (any, bool) {
	if s, ok := l.fs.slots[fmt.Sprintf("lfs:%s:%s", machine, path)]; ok {
		return s.data.Data, true
	}
	return nil, false
}

// GlobalFS is the cluster-wide file system (HDFS stand-in). Content survives
// any process crash and is visible everywhere.
type GlobalFS struct{ fs *fileStore }

// NewGlobalFS creates an empty global file system.
func NewGlobalFS() *GlobalFS { return &GlobalFS{fs: newFileStore()} }

// Seed pre-populates a global file before the run starts (no tracing, no
// scheduling) — input data the workload begins with.
func (g *GlobalFS) Seed(path string, v sim.Value) {
	g.fs.slots[gres(path)] = &fileSlot{data: v}
}

// Peek inspects a file's content from outside the simulation (checkers).
func (g *GlobalFS) Peek(path string) (any, bool) {
	if s, ok := g.fs.slots[gres(path)]; ok {
		return s.data.Data, true
	}
	return nil, false
}

func gres(path string) string { return "gfs:" + path }

// Create adds a global file; ErrAlreadyExists if present. The returned value
// is the tainted success flag.
func (g *GlobalFS) Create(ctx *sim.Context, path string, v sim.Value) (sim.Value, error) {
	return g.fs.create(ctx, gres(path), gres(dirOf(path)), v)
}

// Write stores content, creating the file if needed.
func (g *GlobalFS) Write(ctx *sim.Context, path string, v sim.Value) {
	g.fs.write(ctx, gres(path), gres(dirOf(path)), v)
}

// Read returns the file content (the "open" of bug MR2: opening a file whose
// directory the crashed AM's cleanup deleted).
func (g *GlobalFS) Read(ctx *sim.Context, path string) (sim.Value, error) {
	return g.fs.read(ctx, gres(path))
}

// Append concatenates an entry onto a global file (one write op).
func (g *GlobalFS) Append(ctx *sim.Context, path string, v sim.Value) {
	g.fs.appendTo(ctx, gres(path), gres(dirOf(path)), v)
}

// Delete removes a global file.
func (g *GlobalFS) Delete(ctx *sim.Context, path string) error {
	return g.fs.del(ctx, gres(path), gres(dirOf(path)))
}

// DeleteTree removes a directory recursively and returns how many files went.
func (g *GlobalFS) DeleteTree(ctx *sim.Context, dir string) int {
	return g.fs.deleteTree(ctx, gres(dir), gres(strings.TrimSuffix(dir, "/")+"/"))
}

// Rename moves a global file (the atomic commit primitive).
func (g *GlobalFS) Rename(ctx *sim.Context, from, to string) error {
	return g.fs.rename(ctx, gres(from), gres(to), gres(dirOf(to)))
}

// Exists probes a global file.
func (g *GlobalFS) Exists(ctx *sim.Context, path string) sim.Value {
	return g.fs.exists(ctx, gres(path), gres(dirOf(path)))
}

// List returns paths under dir, sorted.
func (g *GlobalFS) List(ctx *sim.Context, dir string) []string {
	prefix := gres(strings.TrimSuffix(dir, "/") + "/")
	out := g.fs.list(ctx, gres(dir), prefix)
	for i, res := range out {
		out[i] = strings.TrimPrefix(res, "gfs:")
	}
	return out
}
