package fcatch

import (
	"fmt"
	"strconv"
	"strings"

	"fcatch/internal/sim"
)

// FaultSpec is one fault event of an injection scenario, in the JSON-stable
// form shared by the simulator, the campaign engine, and the
// distributed-campaign wire protocol. A scenario is an ordered []FaultSpec:
// each event is step-anchored (CrashStep), site-anchored (Site/Occurrence/
// When/Action), or relative (Delay ticks after the previous event fires).
// Set Options.Scenario to observe and detect against a custom scenario; an
// empty scenario uses the workload's default single crash.
type FaultSpec = sim.FaultSpec

// Fault action and edge names — the one shared vocabulary (see
// internal/sim's fault table).
const (
	ActionNodeCrash  = sim.ActionNodeCrash
	ActionKernelDrop = sim.ActionKernelDrop
	ActionAppDrop    = sim.ActionAppDrop

	WhenBefore = sim.WhenBefore
	WhenAfter  = sim.WhenAfter
)

// FaultActionNames lists every fault action name in canonical order.
func FaultActionNames() []string { return sim.ActionNames() }

// ParseScenario parses the CLI scenario syntax: events separated by ";",
// each event a comma-separated list of key=value fields.
//
//	step=120                      crash the default target at step 120
//	step=120,target=worker        crash role "worker" at step 120
//	delay=60                      60 ticks after the previous event, crash
//	                              the previously crashed role's restarted
//	                              incarnation (a recovery-window crash)
//	site=a.go:10,occ=2,when=before,action=kernel-drop
//	...,restart=40                restart this event's victim after 40 ticks
//	                              even if the workload wouldn't
//	...,restart=-1                never restart this event's victim
//
// Example: "step=120,restart=40;delay=48" — crash at step 120, restart the
// victim, and crash its fresh incarnation 48 ticks later.
func ParseScenario(s string) ([]FaultSpec, error) {
	var out []FaultSpec
	parts := strings.Split(s, ";")
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			if len(parts) == 1 {
				break // a blank scenario: reported as empty below
			}
			// A ";" with nothing on one side is almost always a typo'd or
			// truncated event — refuse it rather than silently running a
			// shorter scenario than the user wrote.
			return nil, fmt.Errorf("fcatch: empty scenario event (stray %q?) in %q", ";", s)
		}
		var ev FaultSpec
		for _, field := range strings.Split(part, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("fcatch: scenario field %q is not key=value", field)
			}
			switch key {
			case "step":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fcatch: scenario step %q: %w", val, err)
				}
				ev.CrashStep = n
			case "site":
				ev.Site = val
			case "occ", "occurrence":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("fcatch: scenario occurrence %q: %w", val, err)
				}
				ev.Occurrence = n
			case "when":
				if _, ok := sim.ParseWhen(val); !ok {
					return nil, fmt.Errorf("fcatch: scenario when %q (have %s, %s)", val, WhenBefore, WhenAfter)
				}
				ev.When = val
			case "action":
				if _, ok := sim.ParseAction(val); !ok {
					return nil, fmt.Errorf("fcatch: scenario action %q (have %s)",
						val, strings.Join(sim.ActionNames(), ", "))
				}
				ev.Action = val
			case "target":
				ev.Target = val
			case "delay":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fcatch: scenario delay %q: %w", val, err)
				}
				ev.Delay = n
			case "restart":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fcatch: scenario restart %q: %w", val, err)
				}
				ev.Restart = &n
			default:
				return nil, fmt.Errorf("fcatch: unknown scenario field %q", key)
			}
		}
		if len(out) == 0 && ev.Site == "" && ev.Delay > 0 && ev.Target == "" {
			// A relative event re-crashes the previously crashed role's
			// incarnation; the first event has no previous victim, so this
			// would silently fire at nothing.
			return nil, fmt.Errorf(
				"fcatch: first scenario event %q is relative with no target (no previous victim to re-crash)", part)
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fcatch: empty scenario %q", s)
	}
	return out, nil
}

// FormatScenario is the inverse of ParseScenario: it renders a scenario back
// to the CLI syntax, so reports and reproduction narratives can print the
// exact -scenario string that replays them. Round-trip property:
// ParseScenario(FormatScenario(s)) == s for every scenario ParseScenario
// accepts.
func FormatScenario(scenario []FaultSpec) string {
	var b strings.Builder
	for i := range scenario {
		ev := &scenario[i]
		if i > 0 {
			b.WriteByte(';')
		}
		n := 0
		field := func(key, val string) {
			if n > 0 {
				b.WriteByte(',')
			}
			b.WriteString(key)
			b.WriteByte('=')
			b.WriteString(val)
			n++
		}
		if ev.CrashStep != 0 {
			field("step", strconv.FormatInt(ev.CrashStep, 10))
		}
		if ev.Site != "" {
			field("site", ev.Site)
		}
		if ev.Occurrence != 0 {
			field("occ", strconv.Itoa(ev.Occurrence))
		}
		if ev.When != "" {
			field("when", ev.When)
		}
		if ev.Action != "" {
			field("action", ev.Action)
		}
		if ev.Target != "" {
			field("target", ev.Target)
		}
		if ev.Delay != 0 {
			field("delay", strconv.FormatInt(ev.Delay, 10))
		}
		if ev.Restart != nil {
			field("restart", strconv.FormatInt(*ev.Restart, 10))
		}
		if n == 0 {
			// An all-defaults event (crash the default target at the
			// phase-chosen step) still needs a spelling.
			field("step", "0")
		}
	}
	return b.String()
}
