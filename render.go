package fcatch

import (
	"fmt"
	"strings"
	"time"
)

// renderTable aligns rows of cells into a plain-text table.
func renderTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// RenderTable1 renders the benchmark suite.
func RenderTable1() string {
	var rows [][]string
	for _, r := range Table1() {
		rows = append(rows, []string{r.App, r.Version, r.Workload, r.Bench, r.Bugs})
	}
	return "Table 1. FCatch Benchmarks.\n" +
		renderTable([]string{"App.", "Version", "Workload", "Bench.", "Bugs"}, rows)
}

// RenderTable2 renders the confirmed-bug inventory.
func (e *EvalRun) RenderTable2() string {
	var rows [][]string
	section := func(cat BugCategory, typ string, want string) {
		rows = append(rows, []string{want, "", "", "", ""})
		for _, r := range e.Table2() {
			s := Spec(r.ID)
			if r.Category != cat || s.Type.String() != typ {
				continue
			}
			conf := "yes"
			if !r.Confirmed {
				conf = "NO"
			}
			rows = append(rows, []string{r.ID, r.Ops, r.Res, r.Symptom, conf})
		}
	}
	section(Benchmark, "crash-regular", "Benchmark Crash-Regular TOF bugs")
	section(Benchmark, "crash-recovery", "Benchmark Crash-Recovery TOF bugs")
	section(NonBenchmark, "crash-regular", "Non-Benchmark Crash-Regular TOF bugs")
	section(NonBenchmark, "crash-recovery", "Non-Benchmark Crash-Recovery TOF bugs")
	return "Table 2. TOF bugs found by FCatch (confirmed by triggering).\n" +
		renderTable([]string{"ID", "Operations", "Res.", "Symptom", "Confirmed"}, rows)
}

// RenderTable3 renders per-workload detection results.
func (e *EvalRun) RenderTable3() string {
	var rows [][]string
	add := func(r Table3Row) {
		rows = append(rows, []string{
			r.Workload,
			fmt.Sprint(r.RegOld), fmt.Sprint(r.RegNew), fmt.Sprint(r.RegExp), fmt.Sprint(r.RegFalse),
			fmt.Sprint(r.RecOld), fmt.Sprint(r.RecNew), fmt.Sprint(r.RecExp), fmt.Sprint(r.RecFalse),
		})
	}
	for _, r := range e.Table3() {
		add(r)
	}
	add(e.Table3Totals())
	return "Table 3. FCatch bug detection results (Old/New = true bugs; Exp. = handled/expected; False = benign).\n" +
		renderTable([]string{"", "CR-Old", "CR-New", "CR-Exp.", "CR-False", "Rec-Old", "Rec-New", "Rec-Exp.", "Rec-False"}, rows)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// RenderTable4 renders the performance breakdown.
func (e *EvalRun) RenderTable4() string {
	var rows [][]string
	for _, r := range e.Table4() {
		t := r.Timings
		rows = append(rows, []string{
			r.Workload,
			ms(t.BaselineFaultFree), ms(t.BaselineFaulty),
			ms(t.TracingFaultFree), ms(t.TracingFaulty),
			ms(t.AnalysisRegular), ms(t.AnalysisRecovery),
			ms(t.Overall()), fmt.Sprintf("%.1fX", t.Slowdown()),
		})
	}
	return "Table 4. FCatch performance (wall-clock at simulator scale; Slowdown = (Tracing+Analysis)/Baseline-NF).\n" +
		renderTable([]string{"", "Base-NF", "Base-F", "Trace-NF", "Trace-F", "Reg", "Rec", "Overall", "Slowdown"}, rows)
}

// RenderTable5 renders pruning-analysis counts.
func (e *EvalRun) RenderTable5() string {
	var rows [][]string
	for _, r := range e.Table5() {
		rows = append(rows, []string{
			r.Workload, fmt.Sprint(r.LoopTimeout), fmt.Sprint(r.WaitTimeout),
			fmt.Sprint(r.Dependence), fmt.Sprint(r.Impact),
		})
	}
	return "Table 5. # false positives pruned by each analysis.\n" +
		renderTable([]string{"", "Loop TimeOut", "Wait TimeOut", "Dependence", "Impact"}, rows)
}

// RenderWindows renders a detection result's hazard-window breakdown: one
// row per fault firing of the observed scenario, with the crash-recovery
// reports anchored in each window.
func RenderWindows(res *Result) string {
	var rows [][]string
	for _, r := range WindowsTable(res) {
		rec := r.Recovery
		if rec == "" {
			rec = "-"
		}
		rows = append(rows, []string{
			r.Window, r.Kind, r.Victim,
			fmt.Sprint(r.Open), fmt.Sprint(r.Close), rec, fmt.Sprint(r.Reports),
		})
	}
	return "Hazard windows (one per fault firing of the observed scenario).\n" +
		renderTable([]string{"Window", "Kind", "Victim", "Open", "Close", "Recovery", "Reports"}, rows)
}

// RenderCompound renders a result's compound findings, each with the exact
// -scenario string (the FormatScenario rendering of its two window anchors)
// that replays it.
func RenderCompound(res *Result) string {
	var b strings.Builder
	for _, c := range res.Compound {
		fmt.Fprintf(&b, "compound: %s\n  scenario: %q\n", c, FormatScenario(CompoundScenario(c)))
	}
	return b.String()
}

// RenderExplain renders a detection result's pruning attribution: the
// per-rule kill table (which §4 analysis discarded how many candidates) and
// the per-candidate decision trail. The pass must have run with
// Options.Detect.Explain; per the explain contract, the rule counts always
// sum to the candidate count.
func RenderExplain(res *Result) string {
	ds := ExplainDecisions(res)
	kt := KillTable(ds)
	var b strings.Builder
	fmt.Fprintf(&b, "Pruning attribution for %s: %d candidate(s), %d kept, %d killed.\n",
		res.Workload, len(ds), kt[RuleKept], len(ds)-kt[RuleKept])
	var rows [][]string
	for _, r := range PruneRuleNames() {
		rows = append(rows, []string{r, fmt.Sprint(kt[r])})
	}
	b.WriteString(renderTable([]string{"Rule", "Candidates"}, rows))
	if len(ds) > 0 {
		b.WriteString("Decision trail:\n")
		for _, d := range ds {
			fmt.Fprintf(&b, "  %-12s [%s w%d] %s\n", d.Rule, d.Detector, d.Window, d.Candidate)
		}
	}
	return b.String()
}

// RenderSensitivity renders the Section 8.1.2 study.
func RenderSensitivity(s *SensitivityResult) string {
	var b strings.Builder
	b.WriteString("Crash-point sensitivity (Section 8.1.2): catalogued bugs reported per fault phase.\n")
	for _, phase := range []string{"begin", "middle", "end"} {
		ids := s.BugsByPhase[phase]
		fmt.Fprintf(&b, "  %-6s (%2d): %s\n", phase, len(ids), strings.Join(ids, ", "))
	}
	return b.String()
}

// RenderAblation renders the Section 8.2 exhaustive-tracing ablation.
func RenderAblation(rows []AblationRow) string {
	var out [][]string
	for _, r := range rows {
		sel, exh := "ok", "ok"
		if !r.SelectiveOK {
			sel = "FAIL"
		}
		if !r.ExhaustiveOK {
			exh = "FAIL: " + r.ExhaustiveNote
		}
		out = append(out, []string{
			r.Workload, fmt.Sprint(r.SelectiveSteps), fmt.Sprint(r.ExhaustiveSteps),
			ms(r.SelectiveTime), ms(r.ExhaustiveTime), sel, exh,
		})
	}
	return "Exhaustive-tracing ablation (Section 8.2): tracing every heap access.\n" +
		renderTable([]string{"", "Sel-steps", "Exh-steps", "Sel-time", "Exh-time", "Selective", "Exhaustive"}, out)
}

// RenderRandom renders a Section 8.3 random-injection campaign.
func RenderRandom(results []*RandomResult) string {
	var b strings.Builder
	b.WriteString("Random crash injection (Section 8.3).\n")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-6s: %d/%d runs failed, %d distinct failure(s)\n",
			r.Workload, r.FailureRuns, r.Runs, r.UniqueFailures())
		for _, sig := range r.Signatures() {
			fmt.Fprintf(&b, "      %3dx %s\n", r.Failures[sig], sig)
		}
	}
	return b.String()
}

// RenderTriggerMatrix renders the Section 8.4 fault-type matrix.
func (e *EvalRun) RenderTriggerMatrix() string {
	var rows [][]string
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, r := range e.TriggerMatrix() {
		rows = append(rows, []string{r.Bug, yn(r.NodeCrash), yn(r.KernelDrop), yn(r.AppDrop)})
	}
	return "Fault types that trigger each confirmed bug (Section 8.4).\n" +
		renderTable([]string{"Bug", ActionNodeCrash, ActionKernelDrop, ActionAppDrop}, rows)
}
