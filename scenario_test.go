package fcatch_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fcatch"
)

// TestParseScenarioErrors: every malformed scenario is refused with a
// message naming the offending piece, never silently shortened or zeroed.
func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring of the error
	}{
		{"", "empty scenario"},
		{"   ", "empty scenario"},
		{"step=x", "scenario step"},
		{"occ=x", "scenario occurrence"},
		{"delay=x,target=am", "scenario delay"},
		{"restart=x", "scenario restart"},
		{"action=banana", "scenario action"},
		{"when=sometimes", "scenario when"},
		{"step120", "not key=value"},
		{"wibble=1", "unknown scenario field"},
		// A trailing or leading ";" leaves an empty event: almost always a
		// typo'd or truncated scenario, so it must not parse as a shorter one.
		{"step=120;", "empty scenario event"},
		{";step=120", "empty scenario event"},
		{"step=120;;delay=48", "empty scenario event"},
		// A relative first event has no previous victim to re-crash.
		{"delay=48", "relative with no target"},
		{"delay=48,restart=40", "relative with no target"},
	}
	for _, c := range cases {
		_, err := fcatch.ParseScenario(c.in)
		if err == nil {
			t.Errorf("ParseScenario(%q) accepted, want error containing %q", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseScenario(%q) error = %q, want substring %q", c.in, err.Error(), c.want)
		}
	}
}

// TestParseScenarioAccepts: the documented forms parse to the right events.
func TestParseScenarioAccepts(t *testing.T) {
	sc, err := fcatch.ParseScenario("step=120,restart=40;delay=48")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc) != 2 || sc[0].CrashStep != 120 || sc[0].Restart == nil || *sc[0].Restart != 40 || sc[1].Delay != 48 {
		t.Fatalf("parsed %+v", sc)
	}
	// A relative first event is fine once it names a target.
	if _, err := fcatch.ParseScenario("delay=48,target=am"); err != nil {
		t.Fatalf("relative first event with target: %v", err)
	}
	sc, err = fcatch.ParseScenario("site=a.go:10,occ=2,when=before,action=kernel-drop")
	if err != nil {
		t.Fatal(err)
	}
	if sc[0].Site != "a.go:10" || sc[0].Occurrence != 2 || sc[0].When != fcatch.WhenBefore || sc[0].Action != fcatch.ActionKernelDrop {
		t.Fatalf("parsed %+v", sc[0])
	}
}

// TestFormatScenarioRoundTrip: ParseScenario(FormatScenario(s)) == s for
// every scenario ParseScenario accepts — pinned cases first, then a seeded
// sweep of random scenarios over the whole field space.
func TestFormatScenarioRoundTrip(t *testing.T) {
	restart := int64(40)
	never := int64(-1)
	pinned := [][]fcatch.FaultSpec{
		{{CrashStep: 120}},
		{{}}, // all-defaults event renders as "step=0"
		{{CrashStep: 120, Restart: &restart}, {Delay: 48}},
		{{Site: "a.go:10", Occurrence: 2, When: fcatch.WhenBefore, Action: fcatch.ActionKernelDrop}},
		{{CrashStep: 7, Target: "worker", Restart: &never}, {Delay: 3, Target: "am"}, {Site: "b.go:2", Action: fcatch.ActionAppDrop}},
	}
	for _, sc := range pinned {
		roundTrip(t, sc)
	}

	rng := rand.New(rand.NewSource(9))
	sites := []string{"", "a.go:10", "apps/hbase/master.go:69"}
	targets := []string{"", "am", "worker"}
	actions := []string{"", fcatch.ActionNodeCrash, fcatch.ActionKernelDrop, fcatch.ActionAppDrop}
	whens := []string{"", fcatch.WhenBefore, fcatch.WhenAfter}
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(3)
		sc := make([]fcatch.FaultSpec, n)
		for j := range sc {
			ev := &sc[j]
			ev.CrashStep = rng.Int63n(200)
			ev.Site = sites[rng.Intn(len(sites))]
			if ev.Site != "" {
				ev.Occurrence = rng.Intn(4)
				ev.When = whens[rng.Intn(len(whens))]
			}
			ev.Action = actions[rng.Intn(len(actions))]
			ev.Target = targets[rng.Intn(len(targets))]
			ev.Delay = rng.Int63n(60)
			if rng.Intn(2) == 0 {
				r := rng.Int63n(50) - 1
				ev.Restart = &r
			}
		}
		// Keep the scenario parseable: a relative first event needs a target.
		if sc[0].Site == "" && sc[0].Delay > 0 && sc[0].Target == "" {
			sc[0].Target = "am"
		}
		roundTrip(t, sc)
	}
}

func roundTrip(t *testing.T, sc []fcatch.FaultSpec) {
	t.Helper()
	s := fcatch.FormatScenario(sc)
	back, err := fcatch.ParseScenario(s)
	if err != nil {
		t.Fatalf("ParseScenario(FormatScenario(%+v) = %q): %v", sc, s, err)
	}
	if !reflect.DeepEqual(back, sc) {
		t.Fatalf("round trip %q: %+v != %+v", s, back, sc)
	}
}

// FuzzParseScenario hunts for inputs that crash the parser or break the
// format/parse round trip: anything ParseScenario accepts must re-render via
// FormatScenario to a string that parses back to the identical scenario.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		"step=120",
		"step=120,restart=40;delay=48",
		"site=a.go:10,occ=2,when=before,action=kernel-drop",
		"step=7,target=worker,restart=-1;delay=3;site=b.go:2,action=app-drop",
		"delay=48,target=am",
		"step=120;",
		"wibble=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := fcatch.ParseScenario(s)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		if len(sc) == 0 {
			t.Fatalf("ParseScenario(%q) accepted an empty scenario", s)
		}
		out := fcatch.FormatScenario(sc)
		back, err := fcatch.ParseScenario(out)
		if err != nil {
			t.Fatalf("FormatScenario(%q) = %q does not re-parse: %v", s, out, err)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Fatalf("round trip of %q via %q: %+v != %+v", s, out, back, sc)
		}
	})
}
