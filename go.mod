module fcatch

go 1.22
