package fcatch_test

// The concurrency layer's contract: any Parallelism setting produces
// byte-identical output. Every unit of parallel work (a workload's detection
// pass, a report's trigger replay, a campaign run) owns its simulated cluster
// and writes into its own result slot, so the schedule can change only *when*
// work happens, never *what* comes out.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"fcatch"
	"fcatch/internal/core"
	"fcatch/internal/sim"
)

// evalFingerprint renders everything deterministic about an evaluation:
// the Table 2/3/5 rows, the trigger matrix, and per workload the full report
// list, prune counters, and trigger verdicts. Table 4 is wall-clock and
// intentionally excluded.
func evalFingerprint(e *fcatch.EvalRun) string {
	var b strings.Builder
	b.WriteString(e.RenderTable2())
	b.WriteString(e.RenderTable3())
	b.WriteString(e.RenderTable5())
	b.WriteString(e.RenderTriggerMatrix())
	for _, wl := range e.Order {
		res := e.Results[wl]
		fmt.Fprintf(&b, "== %s crash=%s step=%d\n", wl, res.Observation.Faulty.CrashedPID, res.Observation.CrashStep)
		fmt.Fprintf(&b, "pruned regular=%+v recovery=%+v\n", res.Regular.Pruned, res.Recovery.Pruned)
		for _, r := range res.Reports {
			wp := "-"
			if r.WPrime != nil {
				wp = fmt.Sprintf("%+v", *r.WPrime)
			}
			fmt.Fprintf(&b, "report %s | W=%+v R=%+v W'=%s inFaulty=%v target=%s/%s\n",
				r, r.W, r.R, wp, r.WInFaultyRun, r.CrashTargetPID, r.CrashTargetRole)
		}
		for _, out := range e.Outcomes[wl] {
			actions := make([]string, 0, len(out.ByAction))
			for a, hit := range out.ByAction {
				actions = append(actions, fmt.Sprintf("%s=%v", a, hit))
			}
			sort.Strings(actions)
			fmt.Fprintf(&b, "outcome %s %s [%s] %s | %s\n",
				out.Report.Key(), out.Class, strings.Join(actions, " "), out.FailureKind, out.Detail)
		}
	}
	return b.String()
}

func TestParallelEvaluationParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective}

		opts.Parallelism = 1
		seq, err := fcatch.RunEvaluation(opts)
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		opts.Parallelism = 8
		par, err := fcatch.RunEvaluation(opts)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}

		fpSeq, fpPar := evalFingerprint(seq), evalFingerprint(par)
		if fpSeq != fpPar {
			line := firstDiffLine(fpSeq, fpPar)
			t.Errorf("seed %d: parallel evaluation diverges from sequential:\n  seq: %s\n  par: %s", seed, line[0], line[1])
		}
	}
}

func TestParallelRandomInjectionParity(t *testing.T) {
	w := fcatch.MustWorkload("TOY")
	seq, err := fcatch.RandomInjectionP(w, 60, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fcatch.RandomInjectionP(w, 60, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.FailureRuns != par.FailureRuns {
		t.Errorf("FailureRuns: seq=%d par=%d", seq.FailureRuns, par.FailureRuns)
	}
	if fmt.Sprint(seq.Signatures()) != fmt.Sprint(par.Signatures()) {
		t.Errorf("signatures diverge:\n  seq: %v\n  par: %v", seq.Signatures(), par.Signatures())
	}
	for sig, n := range seq.Failures {
		if par.Failures[sig] != n {
			t.Errorf("signature %q: seq=%d par=%d", sig, n, par.Failures[sig])
		}
	}
}

// firstDiffLine locates the first differing line of two renderings.
func firstDiffLine(a, b string) [2]string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return [2]string{la[i], lb[i]}
		}
	}
	return [2]string{fmt.Sprintf("<%d lines>", len(la)), fmt.Sprintf("<%d lines>", len(lb))}
}
