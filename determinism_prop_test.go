package fcatch_test

// Property tests for the direct-handoff scheduler: the simulator hands a
// baton from goroutine to goroutine, so the one thing that must never leak
// into an outcome or a trace is real concurrency. These tests pin that the
// observation phase is a pure function of (workload, seed) — across repeated
// runs and across GOMAXPROCS settings, including the parallel pipeline path.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"fcatch"
	"fcatch/internal/core"
	"fcatch/internal/sim"
)

// observeFingerprint runs the observation phase and returns a normalized
// fingerprint: both encoded traces plus both outcomes with the wall-clock
// fields (the only legitimately nondeterministic ones) cleared.
func observeFingerprint(t *testing.T, wl string) (ff, fy []byte, outcomes string) {
	t.Helper()
	opts := core.Options{Seed: 1, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 0}
	obs, err := core.Observe(fcatch.MustWorkload(wl), opts)
	if err != nil {
		t.Fatalf("observe %s: %v", wl, err)
	}
	obs.FaultFree.BaselineNanos = 0
	obs.Faulty.BaselineNanos = 0
	var bf, by bytes.Buffer
	if err := obs.FaultFree.Encode(&bf); err != nil {
		t.Fatalf("encode fault-free: %v", err)
	}
	if err := obs.Faulty.Encode(&by); err != nil {
		t.Fatalf("encode faulty: %v", err)
	}
	of, oy := *obs.FaultFreeOutcome, *obs.FaultyOutcome
	of.Elapsed, oy.Elapsed = 0, 0
	return bf.Bytes(), by.Bytes(), fmt.Sprintf("%+v\n%+v", of, oy)
}

// TestObservationDeterministicAcrossGOMAXPROCS pins that the same seed yields
// identical outcomes and byte-identical traces whether the host runs the
// simulation on one OS thread or several, and across repeated runs at each
// setting.
func TestObservationDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, wl := range []string{"TOY", "MR1"} {
		var baseFF, baseFY []byte
		var baseOut string
		for i, procs := range []int{1, 4, 1, 4} {
			runtime.GOMAXPROCS(procs)
			ff, fy, out := observeFingerprint(t, wl)
			if i == 0 {
				baseFF, baseFY, baseOut = ff, fy, out
				continue
			}
			if !bytes.Equal(ff, baseFF) {
				t.Errorf("%s: fault-free trace bytes differ at GOMAXPROCS=%d (run %d)", wl, procs, i)
			}
			if !bytes.Equal(fy, baseFY) {
				t.Errorf("%s: faulty trace bytes differ at GOMAXPROCS=%d (run %d)", wl, procs, i)
			}
			if out != baseOut {
				t.Errorf("%s: outcomes differ at GOMAXPROCS=%d (run %d):\n got %s\nwant %s", wl, procs, i, out, baseOut)
			}
		}
	}
}
