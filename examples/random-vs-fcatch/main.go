// FCatch versus the state of practice (Section 8.3): on the same workload,
// FCatch analyzes ONE pair of correct runs and predicts the planted TOF
// bugs; hundreds of random fault-injection runs mostly land harmlessly —
// and the one hang random injection does find is a bug FCatch provably
// cannot see (its hazardous write happens outside any traced handler).
//
//	go run ./examples/random-vs-fcatch [-runs 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"fcatch"
)

func main() {
	runs := flag.Int("runs", 200, "random-injection run count")
	flag.Parse()

	w := fcatch.MustWorkload("MR1")

	fmt.Println("== FCatch: one fault-free run + one correct faulty run ==")
	res, err := fcatch.Detect(w, fcatch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	confirmed := 0
	for _, out := range fcatch.Trigger(w, res) {
		if out.Class == fcatch.TrueBug {
			confirmed++
			fmt.Printf("  true bug: %s\n", out.Report)
		}
	}
	fmt.Printf("  -> %d reports, %d confirmed true bugs\n\n", len(res.Reports), confirmed)

	fmt.Printf("== Random crash injection: %d runs ==\n", *runs)
	rnd, err := fcatch.RandomInjection(w, *runs, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> %d/%d runs failed, %d distinct failure signature(s):\n",
		rnd.FailureRuns, rnd.Runs, rnd.UniqueFailures())
	for _, sig := range rnd.Signatures() {
		fmt.Printf("     %3dx %s\n", rnd.Failures[sig], sig)
	}
	fmt.Println("\nThe dominant random-injection signature (the AM waiting forever for a")
	fmt.Println("finished attempt's answer) is FCatch's known false negative: the flag")
	fmt.Println("write lives on a plain thread, invisible to selective tracing (§8.3).")
}
