// Quickstart: predict time-of-fault bugs in a toy two-node commit protocol
// by observing only *correct* executions, then confirm them by replaying
// with precisely aimed faults.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fcatch"
)

func main() {
	// The TOY workload is a miniature commit protocol: a worker announces
	// itself to a server, does some work, and asks the server for commit
	// permission. It contains one crash-regular TOF bug (the server's
	// untimed wait for the worker's hello) and one crash-recovery TOF bug
	// (a miniature of MapReduce's CanCommit bug, Figure 1 of the paper).
	w := fcatch.MustWorkload("TOY")

	// Step 1+2: observe a fault-free run and a checkpoint-paired correct
	// faulty run, then analyze the traces for conflicting operations whose
	// interaction the time of a fault can perturb.
	res, err := fcatch.Detect(w, fcatch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed %d + %d trace records, predicted %d TOF bug(s):\n\n",
		res.Observation.FaultFree.Len(), res.Observation.Faulty.Len(), len(res.Reports))
	for i, r := range res.Reports {
		fmt.Printf("%d. %s\n", i+1, r)
	}

	// Step 3: replay the workload with each report's fault injected right
	// at the hazardous moment, and classify the outcome.
	fmt.Println("\ntriggering every report:")
	for _, out := range fcatch.Trigger(w, res) {
		fmt.Printf("  [%-8s] %s vs %s on %s\n", out.Class,
			out.Report.W.Kind, out.Report.R.Kind, out.Report.ResClass)
		if out.FailureKind != "" {
			fmt.Printf("             %s: %s\n", out.FailureKind, out.Detail)
		}
	}
}
