// The paper's Figure 6 bug: HMaster polls its region-in-transition map until
// a RegionServer's OPENED registration (relayed through ZooKeeper watch
// events) removes the META entry. If the RegionServer crashes between
// OPENING and OPENED, the master polls forever and the whole cluster is
// unavailable.
//
// The example also reproduces the Section 8.4 observation that HB1 can only
// be triggered by a node crash: the OPENED update travels through ZooKeeper,
// so dropping network messages cannot remove it.
//
//	go run ./examples/hbase-meta-hang
package main

import (
	"fmt"
	"log"
	"strings"

	"fcatch"
)

func main() {
	w := fcatch.MustWorkload("HB1")

	res, err := fcatch.Detect(w, fcatch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HB1 workload: %d reports\n", len(res.Reports))

	for _, out := range fcatch.Trigger(w, res) {
		if !strings.Contains(out.Report.ResClass, "rit#.meta") {
			continue
		}
		r := out.Report
		fmt.Println("\nFigure 6 in code:")
		fmt.Printf("  R  = the master's RIT poll        @ %s\n", r.R.Site)
		fmt.Printf("  W  = the RIT.remove(META) write   @ %s\n", r.W.Site)
		fmt.Printf("  W' = the RegionServer's OPENED update @ %s on %s\n", r.WPrime.Site, r.WPrime.PID)
		fmt.Printf("\n  verdict: %s\n", out.Class)
		fmt.Println("  fault types tried against W' (Section 8.4):")
		for _, kind := range fcatch.FaultActionNames() {
			mark := "tolerated"
			if out.ByAction[kind] {
				mark = "TRIGGERS THE HANG"
			}
			fmt.Printf("    %-12s %s\n", kind, mark)
		}
	}
}
