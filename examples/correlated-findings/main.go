// Correlated findings: the paper's Section 2.3 scopes FCatch to
// single-resource interactions and leaves multi-resource faults as future
// work. This example runs that extension: crash-recovery reports whose
// reads belong to one recovery activation are grouped into a single
// multi-resource finding — e.g. everything HBase's server-shutdown handler
// consumes when a RegionServer dies (the split lock, the WAL, the
// replication queue) becomes one grouped report with one hazard window.
//
//	go run ./examples/correlated-findings
package main

import (
	"fmt"
	"log"

	"fcatch"
)

func main() {
	w := fcatch.MustWorkload("HB2")
	res, err := fcatch.Detect(w, fcatch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HB2 produced %d reports; grouping the crash-recovery ones by\n", len(res.Reports))
	fmt.Println("the recovery activation that consumes them:")

	for i, g := range fcatch.CorrelateRecovery(res) {
		fmt.Printf("\ngroup %d — recovery activation %q, hazard window [t=%d, t=%d]\n",
			i+1, g.Frame, g.WindowStart, g.WindowEnd)
		for _, r := range g.Reports {
			fmt.Printf("  %-18s on %s\n", r.OpsDesc, r.ResClass)
		}
	}

	fmt.Println("\nOne crash of the RegionServer anywhere inside a group's window makes")
	fmt.Println("that single recovery decision consume several damaged resources at")
	fmt.Println("once — a multi-resource TOF finding instead of isolated reports.")
}
