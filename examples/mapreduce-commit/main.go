// The paper's Figure 1 bug, end to end: a MapReduce task attempt that
// crashes between its CanCommit and DoneCommit RPCs poisons the task — the
// Application Master's T.commit field remembers the dead attempt and denies
// every recovery attempt forever.
//
// This example runs FCatch on the MR 0.23.1 WordCount workload, shows that
// the bug is predicted from two *correct* runs, and then reproduces the
// hang by crashing the attempt right after the hazardous write.
//
//	go run ./examples/mapreduce-commit
package main

import (
	"fmt"
	"log"
	"strings"

	"fcatch"
)

func main() {
	w := fcatch.MustWorkload("MR1")

	res, err := fcatch.Detect(w, fcatch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reports from the MR1 workload (one fault-free + one correct faulty run):")
	for _, r := range res.Reports {
		fmt.Println("  ", r)
	}

	outcomes := fcatch.Trigger(w, res)
	for _, out := range outcomes {
		if !strings.Contains(out.Report.ResClass, "task#.commit") {
			continue
		}
		fmt.Println("\nthe Figure 1 bug (W = T.commit write in CanCommit, R = its read by the recovery attempt):")
		fmt.Printf("  crash %s right after W at %s (occurrence %d)\n",
			out.Report.CrashTargetRole, out.Report.W.Site, out.Report.W.Occurrence)
		fmt.Printf("  verdict: %s (%s)\n", out.Class, out.FailureKind)
		fmt.Printf("  failure: %s\n", out.Detail)
		if out.Class == fcatch.TrueBug {
			fmt.Println("\nthe job never finishes: every recovery attempt is denied by the")
			fmt.Println("stale T.commit and retries forever — exactly the paper's MR1.")
		}
	}
}
