#!/usr/bin/env bash
# explain_smoke.sh — pruning-attribution smoke test.
#
# Runs `fcatch detect -explain` on every benchmark workload and asserts the
# explain contract from the shipped binary: the per-rule kill table's counts
# sum to the candidate count (every candidate gets exactly one verdict).
#
# Usage: scripts/explain_smoke.sh <fcatch-binary>
set -euo pipefail

FCATCH=${1:?usage: explain_smoke.sh <fcatch-binary>}
WORKLOADS=${WORKLOADS:-"CA1&2 HB1 HB2 MR1 MR2 ZK"}

for wl in $WORKLOADS; do
  out=$("$FCATCH" detect -workload "$wl" -explain)
  # "Pruning attribution for <wl>: N candidate(s), K kept, M killed."
  candidates=$(sed -n 's/.*Pruning attribution for .*: \([0-9]*\) candidate(s).*/\1/p' <<<"$out")
  [ -n "$candidates" ] || {
    echo "explain-smoke: FAIL — $wl: no pruning-attribution header in output:" >&2
    echo "$out" >&2
    exit 1
  }
  # Sum the kill table's "Candidates" column (rule rows sit between the
  # table separator and the decision trail).
  sum=$(awk '/^Rule +Candidates/{t=1; next} t && /^-/{next}
             t && NF==2 && $2 ~ /^[0-9]+$/ {s+=$2; next} t{exit} END{print s+0}' <<<"$out")
  if [ "$sum" -ne "$candidates" ]; then
    echo "explain-smoke: FAIL — $wl: rule counts sum to $sum, header says $candidates candidates" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "explain-smoke: $wl OK ($candidates candidates, rule counts sum to $sum)"
done
echo "explain-smoke: PASS"
