#!/usr/bin/env bash
# dist_smoke.sh — end-to-end distributed campaign smoke test.
#
# Starts `fcatch-campaign -serve` as a coordinator, attaches two external
# fcatch-worker processes, kills one of them mid-campaign, and asserts the
# merged corpus is byte-identical to a single-process Parallelism=1 run.
# Exercises the full wire protocol, lease reassignment after a worker death,
# and the deterministic merge — from the shipped binaries, not the test
# harness. Build with -race before calling for the CI configuration.
#
# The coordinator also runs with -metrics/-metrics-addr: the script scrapes
# the Prometheus endpoint while the campaign is live and asserts the end-of-run
# manifest counted at least one requeued lease for the SIGKILLed worker.
#
# Usage: scripts/dist_smoke.sh <fcatch-campaign-binary> <fcatch-worker-binary>
set -euo pipefail

CAMPAIGN=${1:?usage: dist_smoke.sh <fcatch-campaign> <fcatch-worker>}
WORKER=${2:?usage: dist_smoke.sh <fcatch-campaign> <fcatch-worker>}
WORKLOAD=${WORKLOAD:-MR1}
RUNS=${RUNS:-600}
SEED=${SEED:-7}
ADDR=${ADDR:-127.0.0.1:9661}
METRICS_ADDR=${METRICS_ADDR:-127.0.0.1:9662}

dir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$dir"' EXIT

echo "dist-smoke: baseline (single-process, parallelism=1)"
"$CAMPAIGN" -workload "$WORKLOAD" -strategy random -runs "$RUNS" -seed "$SEED" \
  -parallelism 1 -corpus "$dir/baseline.json" >/dev/null

echo "dist-smoke: coordinator on $ADDR (+ /metrics on $METRICS_ADDR) + 2 workers, one killed mid-campaign"
"$CAMPAIGN" -workload "$WORKLOAD" -strategy random -runs "$RUNS" -seed "$SEED" \
  -serve "$ADDR" -corpus "$dir/dist.json" \
  -metrics "$dir/coord-metrics.json" -metrics-addr "$METRICS_ADDR" \
  >/dev/null 2>"$dir/serve.log" &
serve_pid=$!

"$WORKER" -addr "$ADDR" -name smoke-1 >/dev/null 2>&1 &
w1_pid=$!
"$WORKER" -addr "$ADDR" -name smoke-2 >/dev/null 2>&1 &
w2_pid=$!

# Let the campaign get underway, then kill one worker mid-lease. The
# coordinator must reassign its outstanding lease to the survivor.
sleep 1
echo "dist-smoke: killing worker smoke-2 (pid $w2_pid)"
kill -9 "$w2_pid" 2>/dev/null || true

# Scrape the live Prometheus endpoint while the campaign still runs.
if command -v curl >/dev/null 2>&1; then
  if curl -fsS "http://$METRICS_ADDR/metrics" >"$dir/scrape.txt" 2>/dev/null; then
    grep -q '^fcatch_dist_workers_joined_total 2$' "$dir/scrape.txt" || {
      echo "dist-smoke: FAIL — live /metrics scrape missing fcatch_dist_workers_joined_total 2" >&2
      cat "$dir/scrape.txt" >&2
      exit 1
    }
    echo "dist-smoke: live /metrics scrape OK ($(wc -l <"$dir/scrape.txt") lines)"
  else
    echo "dist-smoke: note — campaign drained before the live scrape; relying on the manifest"
  fi
fi

if ! wait "$serve_pid"; then
  echo "dist-smoke: coordinator failed; log:" >&2
  cat "$dir/serve.log" >&2
  exit 1
fi
wait "$w1_pid" || true

cmp "$dir/baseline.json" "$dir/dist.json" || {
  echo "dist-smoke: FAIL — distributed corpus differs from single-process baseline" >&2
  exit 1
}
grep -q 'requeueing lease' "$dir/serve.log" \
  && echo "dist-smoke: lease reassignment observed"

# The SIGKILLed worker forfeited at least one outstanding lease, and the
# coordinator must have counted the requeue in its metrics manifest.
grep -Eq '"dist/leases/requeued": *[1-9]' "$dir/coord-metrics.json" || {
  echo "dist-smoke: FAIL — coordinator manifest shows no requeued lease after worker SIGKILL" >&2
  grep -E '"dist/' "$dir/coord-metrics.json" >&2 || cat "$dir/coord-metrics.json" >&2
  exit 1
}
echo "dist-smoke: requeue counter >= 1 after worker SIGKILL"
echo "dist-smoke: PASS — corpus byte-identical to baseline"
