# Convenience targets for the FCatch reproduction.

GO ?= go

.PHONY: all build test bench eval random examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and experiment of the paper's evaluation.
eval:
	$(GO) run ./cmd/fcatch-bench -all -pruning

# The Section 8.3 baseline at full scale.
random:
	$(GO) run ./cmd/randinject -runs 400

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mapreduce-commit
	$(GO) run ./examples/hbase-meta-hang
	$(GO) run ./examples/correlated-findings
	$(GO) run ./examples/random-vs-fcatch -runs 100

clean:
	rm -f test_output.txt bench_output.txt *.gob.gz
