# Convenience targets for the FCatch reproduction.

GO ?= go

.PHONY: all build vet test race check bench bench-json eval random campaign examples clean

all: build test

# check is the tier-1 gate: build + vet + tests + race-detector tests. The
# race pass matters since the pipeline fans out across cores (Parallelism).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Machine-readable perf snapshot (ns/op, allocs/op per pipeline stage).
bench-json:
	$(GO) run ./cmd/fcatch-bench -json BENCH_current.json

# Regenerate every table and experiment of the paper's evaluation.
eval:
	$(GO) run ./cmd/fcatch-bench -all -pruning

# The Section 8.3 baseline at full scale.
random:
	$(GO) run ./cmd/randinject -runs 400

# The §8.3-extended campaign strategy comparison at full scale.
campaign:
	$(GO) run ./cmd/fcatch-bench -campaign -runs 400

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mapreduce-commit
	$(GO) run ./examples/hbase-meta-hang
	$(GO) run ./examples/correlated-findings
	$(GO) run ./examples/random-vs-fcatch -runs 100

clean:
	rm -f test_output.txt bench_output.txt *.gob.gz
