package fcatch_test

// One benchmark per table and experiment of the paper's evaluation section,
// plus micro-benchmarks for the analysis substrate. Regenerate everything
// with:
//
//	go test -bench=. -benchmem
//
// The rendered tables themselves come from `go run ./cmd/fcatch-bench -all`.

import (
	"testing"

	"fcatch"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/hb"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// BenchmarkTable1Workloads times one uninstrumented fault-free run of every
// benchmark workload — the "Baseline NF" column's work.
func BenchmarkTable1Workloads(b *testing.B) {
	for _, w := range fcatch.Workloads() {
		b.Run(w.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{Seed: 1}
				w.Tune(&cfg)
				c := sim.NewCluster(cfg)
				w.Configure(c)
				out := c.Run()
				if err := w.Check(c, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2BugsFound runs detection + triggering over all workloads
// and verifies every catalogued bug is confirmed (Table 2).
func BenchmarkTable2BugsFound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := fcatch.RunEvaluation(fcatch.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		confirmed := 0
		for _, row := range e.Table2() {
			if row.Confirmed {
				confirmed++
			}
		}
		if confirmed != len(fcatch.Catalog) {
			b.Fatalf("confirmed %d/%d bugs", confirmed, len(fcatch.Catalog))
		}
		b.ReportMetric(float64(confirmed), "bugs")
	}
}

// BenchmarkTable3Detection measures the per-workload detection pass (observe
// two runs + both detectors) that produces Table 3's reports.
func BenchmarkTable3Detection(b *testing.B) {
	for _, w := range fcatch.Workloads() {
		b.Run(w.Name(), func(b *testing.B) {
			reports := 0
			for i := 0; i < b.N; i++ {
				res, err := fcatch.Detect(w, fcatch.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkTable4Performance reproduces the Table 4 measurement: baseline vs
// traced runs plus analysis, reporting the slowdown factor.
func BenchmarkTable4Performance(b *testing.B) {
	opts := fcatch.DefaultOptions()
	opts.MeasureBaseline = true
	for _, w := range fcatch.Workloads() {
		b.Run(w.Name(), func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				res, err := fcatch.Detect(w, opts)
				if err != nil {
					b.Fatal(err)
				}
				slowdown = res.Observation.Timings.Slowdown()
			}
			b.ReportMetric(slowdown, "x-slowdown")
		})
	}
}

// BenchmarkTable5Pruning measures detection while reporting how many false
// positives the fault-tolerance analyses eliminated.
func BenchmarkTable5Pruning(b *testing.B) {
	for _, w := range fcatch.Workloads() {
		b.Run(w.Name(), func(b *testing.B) {
			var pruned int
			for i := 0; i < b.N; i++ {
				res, err := fcatch.Detect(w, fcatch.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				pruned = res.Regular.Pruned.LoopTimeout + res.Regular.Pruned.WaitTimeout +
					res.Recovery.Pruned.Dependence + res.Recovery.Pruned.Impact
			}
			b.ReportMetric(float64(pruned), "pruned")
		})
	}
}

// BenchmarkCrashPointSensitivity runs the §8.1.2 study (three crash phases
// across all workloads).
func BenchmarkCrashPointSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := fcatch.Sensitivity(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(s.BugsByPhase["begin"])), "bugs-at-begin")
		b.ReportMetric(float64(len(s.BugsByPhase["end"])), "bugs-at-end")
	}
}

// BenchmarkExhaustiveTracing is the §8.2 ablation: every workload fault-free
// under selective and exhaustive tracing.
func BenchmarkExhaustiveTracing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := fcatch.AblationTraceAll(1)
		failures := 0
		for _, r := range rows {
			if !r.ExhaustiveOK {
				failures++
			}
		}
		b.ReportMetric(float64(failures), "exhaustive-failures")
	}
}

// BenchmarkRandomInjection is the §8.3 baseline at bench scale (40 runs per
// workload here; `cmd/randinject -runs 400` for the paper's full campaign).
func BenchmarkRandomInjection(b *testing.B) {
	for _, w := range fcatch.Workloads() {
		b.Run(w.Name(), func(b *testing.B) {
			var unique int
			for i := 0; i < b.N; i++ {
				res, err := fcatch.RandomInjection(w, 40, 1)
				if err != nil {
					b.Fatal(err)
				}
				unique = res.UniqueFailures()
			}
			b.ReportMetric(float64(unique), "unique-failures")
		})
	}
}

// BenchmarkTriggerMatrix measures the §8.4 experiment: triggering every
// report of one workload with all applicable fault types.
func BenchmarkTriggerMatrix(b *testing.B) {
	w := fcatch.MustWorkload("HB2")
	res, err := fcatch.Detect(w, fcatch.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs := fcatch.Trigger(w, res)
		if len(outs) != len(res.Reports) {
			b.Fatal("missing outcomes")
		}
	}
}

// BenchmarkPruningAblation measures detection with the fault-tolerance
// analyses disabled (the §8.4 ablation).
func BenchmarkPruningAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := fcatch.PruningAblation(fcatch.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, r := range rows {
			total += r.NoneAtAll
		}
		b.ReportMetric(float64(total), "unpruned-reports")
	}
}

// BenchmarkDetectorAnalysis isolates the trace-analysis phase (index build +
// both detectors) from the simulation runs: observe each workload's run pair
// once, then re-analyze it every iteration. This is the number the detector
// hot-path indices (occurrence maps, impact reverse index, memoized chain
// walks) move.
func BenchmarkDetectorAnalysis(b *testing.B) {
	for _, w := range fcatch.Workloads() {
		obs, err := core.Observe(w, fcatch.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.Name(), func(b *testing.B) {
			reports := 0
			for i := 0; i < b.N; i++ {
				gf := hb.New(obs.FaultFree)
				gy := hb.New(obs.Faulty)
				reg := detect.DetectRegular(gf, w.Name())
				rec := detect.DetectRecovery(gf, gy, w.Name())
				reports = len(reg.Reports) + len(rec.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// --- Substrate micro-benchmarks. ---

// BenchmarkSimulatorSteps measures raw scheduler throughput (steps/op).
func BenchmarkSimulatorSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := sim.NewCluster(sim.Config{Seed: 1})
		c.StartProcess("n", "m0", func(ctx *sim.Context) {
			for k := 0; k < 1000; k++ {
				ctx.Yield()
			}
		})
		c.Run()
	}
}

// BenchmarkTracedHeapOps measures the tracer's per-op overhead.
func BenchmarkTracedHeapOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := sim.NewCluster(sim.Config{Seed: 1, Tracing: sim.TraceExhaustive})
		c.StartProcess("n", "m0", func(ctx *sim.Context) {
			obj := ctx.NamedObject("o")
			for k := 0; k < 500; k++ {
				obj.Set(ctx, "f", sim.V(k))
				_ = obj.Get(ctx, "f")
			}
		})
		c.Run()
	}
}

// BenchmarkForwardClosure measures Algorithm 1 on a real workload trace.
func BenchmarkForwardClosure(b *testing.B) {
	obs, err := core.Observe(fcatch.MustWorkload("MR2"), fcatch.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	g := hb.New(obs.FaultFree)
	seeds := g.EscapingSeeds("am#1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.ForwardClosure(seeds)) == 0 {
			b.Fatal("empty closure")
		}
	}
}

// BenchmarkTraceSaveLoad measures the on-disk trace format round trip.
func BenchmarkTraceSaveLoad(b *testing.B) {
	obs, err := core.Observe(fcatch.MustWorkload("HB1"), fcatch.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := dir + "/t.gob.gz"
		if err := obs.FaultFree.Save(path); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.Load(path); err != nil {
			b.Fatal(err)
		}
	}
}
