// Command fcatch runs the FCatch pipeline from the command line:
//
//	fcatch list                           # show the benchmark workloads
//	fcatch detect  -workload MR1          # observe + detect, print reports
//	fcatch trigger -workload MR1          # detect, then trigger every report
//	fcatch random  -workload MR1 -runs 400
//	fcatch trace   -workload MR1 -out mr1 # save the observed trace pair
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fcatch"
	"fcatch/internal/cliflag"
	"fcatch/internal/core"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fcatch <command> [flags]

commands:
  list      list the benchmark workloads (Table 1)
  detect    observe correct runs and predict TOF bugs
  trigger   detect, then trigger and classify every report
  random    run the random fault-injection baseline (Section 8.3)
  repro     reproduce one catalogued bug end to end (-bug MR1)
  trace     observe and save the correct-run trace pair to disk
  grep      observe, then print trace records matching filters

common flags: -workload <name> -seed <n> -phase begin|middle|end -parallelism <n>
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	workload := fs.String("workload", "MR1", "benchmark workload name (see `fcatch list`)")
	seed := fs.Int64("seed", 1, "deterministic scheduler seed")
	phase := fs.String("phase", "begin", "observation crash phase: begin|middle|end")
	runs := fs.Int("runs", 400, "random-injection run count")
	out := fs.String("out", "", "output path prefix for saved traces")
	bug := fs.String("bug", "", "catalogued bug ID for `repro` (e.g. MR1, HB5)")
	kind := fs.String("kind", "", "grep: op kind filter (e.g. msg-send, kv-update)")
	res := fs.String("res", "", "grep: resource substring filter")
	pid := fs.String("pid", "", "grep: process filter (exact, or prefix with trailing *)")
	faulty := fs.Bool("faulty", false, "grep: search the faulty run instead of the fault-free one")
	in := fs.String("in", "", "grep: stream a saved trace file instead of re-observing the workload")
	scenario := fs.String("scenario", "", "faulty-run fault scenario, e.g. \"step=120,restart=40;delay=48\" (default: the workload's single crash)")
	explain := fs.Bool("explain", false, "detect: print the per-rule pruning kill table and per-candidate decision trail")
	parallelism := cliflag.Parallelism(fs, "detect/trigger/random runs")
	metricsOut := cliflag.Metrics(fs)
	_ = fs.Parse(os.Args[2:])

	if cmd == "repro" {
		id := *bug
		if id == "" && fs.NArg() > 0 {
			id = fs.Arg(0)
		}
		if id == "" {
			fatal(fmt.Errorf("repro needs -bug <ID>; known bugs: CA1..CA3, HB1..HB6, MR1..MR5, ZK"))
		}
		rep, err := fcatch.Reproduce(id, core.Options{Seed: *seed, Tracing: sim.TraceSelective, Parallelism: *parallelism})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Render())
		return
	}

	if cmd == "list" {
		fmt.Print(fcatch.RenderTable1())
		return
	}

	w, err := fcatch.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Seed: *seed, Tracing: sim.TraceSelective, Parallelism: *parallelism}
	opts.Detect.Explain = *explain
	opts.Metrics = cliflag.NewRegistry(*metricsOut, false)
	if *scenario != "" {
		sc, err := fcatch.ParseScenario(*scenario)
		if err != nil {
			fatal(err)
		}
		opts.Scenario = sc
	}
	switch *phase {
	case "begin":
		opts.Phase = fcatch.PhaseBegin
	case "middle":
		opts.Phase = fcatch.PhaseMiddle
	case "end":
		opts.Phase = fcatch.PhaseEnd
	default:
		fatal(fmt.Errorf("unknown phase %q", *phase))
	}

	switch cmd {
	case "detect":
		res, err := fcatch.Detect(w, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d TOF bug report(s) from %d+%d trace records\n",
			w.Name(), len(res.Reports), res.Observation.FaultFree.Len(), res.Observation.Faulty.Len())
		for i, r := range res.Reports {
			fmt.Printf("  %2d. w%-2d %s\n", i+1, r.WindowID, r)
		}
		if len(res.Windows) > 1 {
			fmt.Print(fcatch.RenderWindows(res))
		}
		fmt.Print(fcatch.RenderCompound(res))
		fmt.Printf("pruned: loop-timeout=%d wait-timeout=%d dependence=%d impact=%d\n",
			res.Regular.Pruned.LoopTimeout, res.Regular.Pruned.WaitTimeout,
			res.Recovery.Pruned.Dependence, res.Recovery.Pruned.Impact)
		if *explain {
			fmt.Print(fcatch.RenderExplain(res))
		}

	case "trigger":
		res, err := fcatch.Detect(w, opts)
		if err != nil {
			fatal(err)
		}
		for _, o := range fcatch.Trigger(w, res) {
			fmt.Printf("  [%s] %s\n      -> %s", o.Class, o.Report, o.FailureKind)
			if o.Detail != "" {
				fmt.Printf(" (%s)", o.Detail)
			}
			fmt.Println()
		}
		for _, c := range res.Compound {
			o := fcatch.TriggerCompound(w, res, c)
			fmt.Printf("  [%s] %s\n", o.Class, c)
			if o.Class != fcatch.Benign {
				fmt.Printf("      -> %s (%s) under policy %s\n      -> scenario %q\n",
					o.FailureKind, o.Detail, o.Variant, fcatch.FormatScenario(o.Scenario))
			}
		}

	case "random":
		res, err := fcatch.RandomInjectionP(w, *runs, *seed, *parallelism)
		if err != nil {
			fatal(err)
		}
		fmt.Print(fcatch.RenderRandom([]*fcatch.RandomResult{res}))

	case "trace":
		obs, err := core.Observe(w, opts)
		if err != nil {
			fatal(err)
		}
		prefix := *out
		if prefix == "" {
			prefix = w.Name()
		}
		ff, fy := prefix+".faultfree.trace", prefix+".faulty.trace"
		if err := obs.FaultFree.Save(ff); err != nil {
			fatal(err)
		}
		if err := obs.Faulty.Save(fy); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %s (%d records) and %s (%d records, crash of %s at step %d) in %s format\n",
			ff, obs.FaultFree.Len(), fy, obs.Faulty.Len(), obs.Faulty.CrashedPID, obs.Faulty.CrashStep,
			trace.FormatMagic)

	case "grep":
		q := trace.Query{ResContains: *res, PID: *pid}
		if *kind != "" {
			k, ok := trace.KindByName(*kind)
			if !ok {
				fatal(fmt.Errorf("unknown op kind %q", *kind))
			}
			q.Kinds = []trace.Kind{k}
		}
		if *in != "" {
			// Stream the saved trace window by window; matching needs no
			// look-back, so tell the source not to retain records and the
			// grep runs in O(window) memory however large the file is.
			src, err := fcatch.OpenTrace(*in)
			if err != nil {
				fatal(err)
			}
			defer src.Close()
			if rs, ok := src.(interface{ SetRetain(bool) }); ok {
				rs.SetRetain(false)
			}
			tr := src.Trace()
			for {
				win, err := src.Next()
				if err == io.EOF {
					break
				} else if err != nil {
					fatal(err)
				}
				for i := range win {
					if q.Match(tr, &win[i]) {
						fmt.Println(tr.Format(&win[i]))
					}
				}
			}
			return
		}
		obs, err := core.Observe(w, opts)
		if err != nil {
			fatal(err)
		}
		tr := obs.FaultFree
		if *faulty {
			tr = obs.Faulty
		}
		for _, r := range tr.Filter(q) {
			fmt.Println(tr.Format(r))
		}

	default:
		usage()
	}

	if err := cliflag.WriteMetrics(*metricsOut, opts.Metrics); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fcatch:", err)
	os.Exit(1)
}
