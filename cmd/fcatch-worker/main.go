// Command fcatch-worker joins a distributed fault-injection campaign as one
// worker: it connects to a coordinator started with `fcatch-campaign -serve`,
// executes the leases of injection plans it is granted, and exits when the
// campaign drains.
//
//	fcatch-campaign -workload MR1 -runs 4000 -serve 127.0.0.1:9093 &
//	fcatch-worker -addr 127.0.0.1:9093 -parallelism 2
//
// Workers are stateless and interchangeable: they can join late, be killed
// mid-lease, or be restarted — the coordinator reassigns forfeited leases and
// the final corpus is byte-identical regardless. Leases carry full fault
// scenarios (including composite multi-fault plans from `-scenarios`
// campaigns); the versioned handshake rejects a peer from a different
// protocol generation rather than silently dropping scenario events.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fcatch"
	"fcatch/internal/cliflag"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9093", "coordinator address (host:port)")
	name := flag.String("name", "", "worker name in coordinator logs (default: worker-<pid>)")
	parallelism := cliflag.Parallelism(flag.CommandLine, "plans per lease")
	metricsOut := cliflag.Metrics(flag.CommandLine)
	flag.Parse()
	reg := cliflag.NewRegistry(*metricsOut, false)

	// SIGINT/SIGTERM cancel the context; the worker drops its connection and
	// the coordinator reassigns whatever lease it held.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := fcatch.RunCampaignWorker(ctx, fcatch.CampaignWorkerConfig{
		Addr:        *addr,
		Name:        *name,
		Parallelism: *parallelism,
		Metrics:     reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fcatch-worker:", err)
		os.Exit(1)
	}
	if werr := cliflag.WriteMetrics(*metricsOut, reg); werr != nil {
		fmt.Fprintln(os.Stderr, "fcatch-worker:", werr)
		os.Exit(1)
	}
}
