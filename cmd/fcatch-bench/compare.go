package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// compareThreshold is the relative slowdown above which an entry is flagged
// as a regression (and below which, negated, as an improvement). Single-run
// benchmark noise on shared hosts sits well inside this band.
const compareThreshold = 0.10

// runBenchCompare diffs two BENCH_*.json reports entry by entry and renders a
// regression table: ns/op deltas for every benchmark both reports contain
// (keyed by name), plus runs/sec deltas for throughput entries. Entries only
// one side has are listed separately, so a renamed benchmark cannot silently
// vanish from the trajectory. Returns the names of the flagged regressions;
// the caller decides which of them fail the run (-strict fails on any,
// -gate on a matching prefix).
func runBenchCompare(oldPath, newPath string) []string {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		fatalBench(err)
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		fatalBench(err)
	}

	oldBy := make(map[string]benchEntry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		oldBy[e.Name] = e
	}
	newBy := make(map[string]benchEntry, len(newRep.Benchmarks))
	for _, e := range newRep.Benchmarks {
		newBy[e.Name] = e
	}

	fmt.Printf("old: %s (%s, GOMAXPROCS=%d, NumCPU=%d)\n", oldPath, oldRep.GoVersion, oldRep.GOMAXPROCS, oldRep.NumCPU)
	fmt.Printf("new: %s (%s, GOMAXPROCS=%d, NumCPU=%d)\n", newPath, newRep.GoVersion, newRep.GOMAXPROCS, newRep.NumCPU)
	if oldRep.NumCPU != newRep.NumCPU && oldRep.NumCPU > 0 && newRep.NumCPU > 0 {
		fmt.Printf("warning: reports come from hosts with different CPU counts (%d vs %d); parallelism and workers=N deltas are not comparable\n",
			oldRep.NumCPU, newRep.NumCPU)
	}
	if oldRep.SingleCoreHost || newRep.SingleCoreHost {
		fmt.Println("note: at least one report was measured on a single-CPU host; parallel entries there measure protocol overhead, not scaling")
	}
	fmt.Println()

	var regressions []string
	fmt.Printf("%-52s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, e := range newRep.Benchmarks {
		o, ok := oldBy[e.Name]
		if !ok {
			continue
		}
		delta := float64(e.NsPerOp)/float64(o.NsPerOp) - 1
		mark := ""
		switch {
		case delta > compareThreshold:
			mark = "  REGRESSION"
			regressions = append(regressions, e.Name)
		case delta < -compareThreshold:
			mark = "  improved"
		}
		fmt.Printf("%-52s %14d %14d %+7.1f%%%s\n", e.Name, o.NsPerOp, e.NsPerOp, delta*100, mark)
		if o.RunsPerSec > 0 && e.RunsPerSec > 0 {
			rd := e.RunsPerSec/o.RunsPerSec - 1
			fmt.Printf("%-52s %14.0f %14.0f %+7.1f%%\n", "  └ runs/sec", o.RunsPerSec, e.RunsPerSec, rd*100)
		}
	}

	var onlyOld, onlyNew []string
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			onlyOld = append(onlyOld, name)
		}
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	if len(onlyOld) > 0 {
		fmt.Printf("\nonly in old (%d): %s\n", len(onlyOld), strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Printf("\nonly in new (%d): %s\n", len(onlyNew), strings.Join(onlyNew, ", "))
	}
	fmt.Printf("\n%d regression(s) beyond %.0f%%\n", len(regressions), compareThreshold*100)
	return regressions
}

func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", path)
	}
	for _, e := range rep.Benchmarks {
		if e.NsPerOp <= 0 || math.IsNaN(e.SecondsOp) {
			return nil, fmt.Errorf("%s: malformed entry %q", path, e.Name)
		}
	}
	return &rep, nil
}

func fatalBench(err error) {
	fmt.Fprintln(os.Stderr, "fcatch-bench:", err)
	os.Exit(1)
}
