package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"fcatch"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/hb"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// benchEntry is one benchmark's machine-readable result — the unit future
// PRs diff to track the perf trajectory in BENCH_*.json.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SecondsOp   float64 `json:"seconds_per_op"`
	// SizeBytes is the encoded artifact size for trace-format benchmarks
	// (0 for timing-only entries).
	SizeBytes int64 `json:"size_bytes,omitempty"`
}

// benchReport is the envelope written by `fcatch-bench -json out.json`.
type benchReport struct {
	GeneratedBy string       `json:"generated_by"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Seed        int64        `json:"seed"`
	Timestamp   string       `json:"timestamp"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

func toEntry(name string, r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SecondsOp:   float64(r.NsPerOp()) / 1e9,
	}
}

// runBenchSuite measures the pipeline's hot paths with testing.Benchmark:
// the full evaluation sequentially and at full parallelism (the tentpole's
// wall-clock claim), each workload's detection pass sequentially, the
// simulation-free analysis phase per workload (the detector-index ns/op and
// allocs/op claims), and the trace codecs (FCT1 vs legacy gob, with encoded
// sizes). In smoke mode only the cheap TOY-scale entries run — the CI gate
// that the suite itself still works, not a perf measurement.
func runBenchSuite(seed int64, smoke bool) []benchEntry {
	var out []benchEntry
	measure := func(name string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "fcatch-bench: benchmarking %s...\n", name)
		out = append(out, toEntry(name, testing.Benchmark(fn)))
	}

	if smoke {
		measure("detect/TOY/parallelism=1", func(b *testing.B) {
			opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fcatch.Detect(fcatch.MustWorkload("TOY"), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, traceFormatEntries(seed, "TOY")...)
		return out
	}

	for _, par := range []int{1, 0} {
		par := par
		name := fmt.Sprintf("evaluation/parallelism=%d", par)
		if par == 0 {
			name = fmt.Sprintf("evaluation/parallelism=max(%d)", runtime.GOMAXPROCS(0))
		}
		measure(name, func(b *testing.B) {
			opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: par}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fcatch.RunEvaluation(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	for _, w := range fcatch.Workloads() {
		w := w
		measure("detect/"+w.Name()+"/parallelism=1", func(b *testing.B) {
			opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fcatch.Detect(w, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	for _, w := range fcatch.Workloads() {
		w := w
		opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
		obs, err := core.Observe(w, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fcatch-bench: observe %s: %v\n", w.Name(), err)
			os.Exit(1)
		}
		measure("analysis/"+w.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gf := hb.New(obs.FaultFree)
				gy := hb.New(obs.Faulty)
				_ = detect.DetectRegular(gf, w.Name())
				_ = detect.DetectRecovery(gf, gy, w.Name())
			}
		})
	}

	measure("random-injection/TOY/runs=40", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fcatch.RandomInjection(fcatch.MustWorkload("TOY"), 40, seed); err != nil {
				b.Fatal(err)
			}
		}
	})

	measure("campaign/TOY/coverage-guided/runs=40", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := fcatch.CampaignConfig{Strategy: fcatch.StrategyCoverage, Seed: seed, Budget: 40}
			if _, err := fcatch.Campaign(fcatch.MustWorkload("TOY"), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	out = append(out, traceFormatEntries(seed, "MR1")...)

	return out
}

// traceFormatEntries benchmarks the trace codecs on the named workload's
// fault-free trace: FCT1 encode/decode and the legacy gob encoder, each
// entry carrying the encoded artifact size so BENCH_*.json records the
// on-disk win alongside the cost.
func traceFormatEntries(seed int64, workload string) []benchEntry {
	opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
	obs, err := core.Observe(fcatch.MustWorkload(workload), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fcatch-bench: observe %s: %v\n", workload, err)
		os.Exit(1)
	}
	tr := obs.FaultFree

	var fct, gob bytes.Buffer
	if err := tr.Encode(&fct); err != nil {
		fmt.Fprintln(os.Stderr, "fcatch-bench: encode fct1:", err)
		os.Exit(1)
	}
	if err := tr.EncodeLegacyGob(&gob); err != nil {
		fmt.Fprintln(os.Stderr, "fcatch-bench: encode gob:", err)
		os.Exit(1)
	}

	var out []benchEntry
	measure := func(name string, size int64, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "fcatch-bench: benchmarking %s...\n", name)
		e := toEntry(name, testing.Benchmark(fn))
		e.SizeBytes = size
		out = append(out, e)
	}

	measure("trace-format/fct1/encode/"+workload, int64(fct.Len()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.Encode(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("trace-format/gob/encode/"+workload, int64(gob.Len()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.EncodeLegacyGob(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("trace-format/fct1/decode/"+workload, 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.Decode(bytes.NewReader(fct.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("trace-format/gob/decode/"+workload, 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.Decode(bytes.NewReader(gob.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	return out
}

// writeBenchJSON runs the suite and writes the report.
func writeBenchJSON(path string, seed int64, smoke bool) error {
	rep := benchReport{
		GeneratedBy: "fcatch-bench -json",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Seed:        seed,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Benchmarks:  runBenchSuite(seed, smoke),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
