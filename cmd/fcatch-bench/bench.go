package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"fcatch"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/hb"
	"fcatch/internal/sim"
)

// benchEntry is one benchmark's machine-readable result — the unit future
// PRs diff to track the perf trajectory in BENCH_*.json.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SecondsOp   float64 `json:"seconds_per_op"`
}

// benchReport is the envelope written by `fcatch-bench -json out.json`.
type benchReport struct {
	GeneratedBy string       `json:"generated_by"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Seed        int64        `json:"seed"`
	Timestamp   string       `json:"timestamp"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

func toEntry(name string, r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SecondsOp:   float64(r.NsPerOp()) / 1e9,
	}
}

// runBenchSuite measures the pipeline's hot paths with testing.Benchmark:
// the full evaluation sequentially and at full parallelism (the tentpole's
// wall-clock claim), each workload's detection pass sequentially, and the
// simulation-free analysis phase per workload (the detector-index ns/op and
// allocs/op claims).
func runBenchSuite(seed int64) []benchEntry {
	var out []benchEntry
	measure := func(name string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "fcatch-bench: benchmarking %s...\n", name)
		out = append(out, toEntry(name, testing.Benchmark(fn)))
	}

	for _, par := range []int{1, 0} {
		par := par
		name := fmt.Sprintf("evaluation/parallelism=%d", par)
		if par == 0 {
			name = fmt.Sprintf("evaluation/parallelism=max(%d)", runtime.GOMAXPROCS(0))
		}
		measure(name, func(b *testing.B) {
			opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: par}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fcatch.RunEvaluation(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	for _, w := range fcatch.Workloads() {
		w := w
		measure("detect/"+w.Name()+"/parallelism=1", func(b *testing.B) {
			opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fcatch.Detect(w, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	for _, w := range fcatch.Workloads() {
		w := w
		opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
		obs, err := core.Observe(w, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fcatch-bench: observe %s: %v\n", w.Name(), err)
			os.Exit(1)
		}
		measure("analysis/"+w.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gf := hb.New(obs.FaultFree)
				gy := hb.New(obs.Faulty)
				_ = detect.DetectRegular(gf, w.Name())
				_ = detect.DetectRecovery(gf, gy, w.Name())
			}
		})
	}

	measure("random-injection/TOY/runs=40", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fcatch.RandomInjection(fcatch.MustWorkload("TOY"), 40, seed); err != nil {
				b.Fatal(err)
			}
		}
	})

	measure("campaign/TOY/coverage-guided/runs=40", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := fcatch.CampaignConfig{Strategy: fcatch.StrategyCoverage, Seed: seed, Budget: 40}
			if _, err := fcatch.Campaign(fcatch.MustWorkload("TOY"), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	return out
}

// writeBenchJSON runs the suite and writes the report.
func writeBenchJSON(path string, seed int64) error {
	rep := benchReport{
		GeneratedBy: "fcatch-bench -json",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Seed:        seed,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Benchmarks:  runBenchSuite(seed),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
