package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"fcatch"
	"fcatch/internal/core"
	"fcatch/internal/detect"
	"fcatch/internal/hb"
	"fcatch/internal/sim"
	"fcatch/internal/trace"
)

// benchEntry is one benchmark's machine-readable result — the unit future
// PRs diff to track the perf trajectory in BENCH_*.json.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SecondsOp   float64 `json:"seconds_per_op"`
	// SizeBytes is the encoded artifact size for trace-format benchmarks
	// (0 for timing-only entries).
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// PeakHeapBytes is the HeapAlloc high-water mark above the pre-run
	// baseline for pipeline-memory entries (0 for timing-only entries).
	PeakHeapBytes int64 `json:"peak_heap_bytes,omitempty"`
	// RunsPerSec is injection-run throughput for campaign entries (0 for
	// other entries).
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
}

// benchReport is the envelope written by `fcatch-bench -json out.json`. The
// host fields make the EXPERIMENTS.md caveat machine-checkable: parallel and
// distributed entries measured with SingleCoreHost true are protocol-overhead
// numbers, not scaling numbers.
type benchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	// SingleCoreHost is NumCPU == 1: every worker shares one CPU, so
	// parallelism and worker-count entries cannot show real scale-out.
	SingleCoreHost bool         `json:"single_core_host"`
	Seed           int64        `json:"seed"`
	Timestamp      string       `json:"timestamp"`
	Benchmarks     []benchEntry `json:"benchmarks"`
}

func toEntry(name string, r testing.BenchmarkResult) benchEntry {
	return benchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SecondsOp:   float64(r.NsPerOp()) / 1e9,
	}
}

// runBenchSuite measures the pipeline's hot paths with testing.Benchmark:
// the full evaluation sequentially and at full parallelism (the tentpole's
// wall-clock claim), each workload's detection pass sequentially, the
// simulation-free analysis phase per workload (the detector-index ns/op and
// allocs/op claims), and the trace codecs (FCT1 vs legacy gob, with encoded
// sizes). In smoke mode only the cheap TOY-scale entries run — the CI gate
// that the suite itself still works, not a perf measurement.
func runBenchSuite(seed int64, smoke bool) []benchEntry {
	var out []benchEntry
	measure := func(name string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "fcatch-bench: benchmarking %s...\n", name)
		out = append(out, toEntry(name, testing.Benchmark(fn)))
	}

	if smoke {
		measure("detect/TOY/parallelism=1", func(b *testing.B) {
			opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fcatch.Detect(fcatch.MustWorkload("TOY"), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, campaignThroughputEntries(seed, []string{"TOY"}, []int{1}, nil)...)
		out = append(out, campaignThroughputEntries(seed, []string{"TOY"}, []int{1}, fcatch.CampaignScenarioNames())...)
		out = append(out, distThroughputEntries(seed, []string{"TOY"}, []int{1, 2})...)
		out = append(out, traceFormatEntries(seed, "TOY")...)
		out = append(out, pipelineMemoryEntries(seed, true)...)
		return out
	}

	for _, par := range []int{1, 0} {
		par := par
		name := fmt.Sprintf("evaluation/parallelism=%d", par)
		if par == 0 {
			name = fmt.Sprintf("evaluation/parallelism=max(%d)", runtime.GOMAXPROCS(0))
		}
		measure(name, func(b *testing.B) {
			opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: par}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fcatch.RunEvaluation(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// TOY leads the detection entries: it is the one detect/* benchmark the
	// smoke suite also runs, so CI's gated compare always has a shared
	// detection entry between a smoke run and this full baseline.
	for _, w := range append([]fcatch.Workload{fcatch.MustWorkload("TOY")}, fcatch.Workloads()...) {
		w := w
		measure("detect/"+w.Name()+"/parallelism=1", func(b *testing.B) {
			opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fcatch.Detect(w, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	for _, w := range fcatch.Workloads() {
		w := w
		opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
		obs, err := core.Observe(w, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fcatch-bench: observe %s: %v\n", w.Name(), err)
			os.Exit(1)
		}
		measure("analysis/"+w.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gf := hb.New(obs.FaultFree)
				gy := hb.New(obs.Faulty)
				_ = detect.DetectRegular(gf, w.Name())
				_ = detect.DetectRecovery(gf, gy, w.Name())
			}
		})
	}

	measure("random-injection/TOY/runs=40", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fcatch.RandomInjection(fcatch.MustWorkload("TOY"), 40, seed); err != nil {
				b.Fatal(err)
			}
		}
	})

	measure("campaign/TOY/coverage-guided/runs=40", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := fcatch.CampaignConfig{Strategy: fcatch.StrategyCoverage, Seed: seed, Budget: 40}
			if _, err := fcatch.Campaign(fcatch.MustWorkload("TOY"), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	var names []string
	for _, w := range fcatch.Workloads() {
		names = append(names, w.Name())
	}
	out = append(out, campaignThroughputEntries(seed, names, []int{1, 0}, nil)...)
	out = append(out, campaignThroughputEntries(seed, names, []int{1, 0}, fcatch.CampaignScenarioNames())...)
	out = append(out, distThroughputEntries(seed, names, []int{1, 2, 4})...)

	out = append(out, traceFormatEntries(seed, "MR1")...)
	out = append(out, pipelineMemoryEntries(seed, false)...)

	return out
}

// campaignThroughputBudget is the per-measurement run budget for the
// campaign throughput entries; the coverage strategy executes at most this
// many injection runs per campaign (fewer when the fault space is smaller).
const campaignThroughputBudget = 40

// campaignThroughputEntries measures end-to-end campaign engine throughput —
// executed injection runs per second — per workload at the given parallelism
// settings (1 = sequential, 0 = GOMAXPROCS). This is the engine-level number
// the simulator's scheduler and allocation work moves: each injection run is
// one full simulated execution, so runs/sec tracks ns-per-simulated-run.
// A non-empty scenarios list turns on composite-scenario enumeration, so the
// suite records the single-fault path and the scenario path side by side.
func campaignThroughputEntries(seed int64, workloads []string, pars []int, scenarios []string) []benchEntry {
	var out []benchEntry
	for _, name := range workloads {
		w := fcatch.MustWorkload(name)
		for _, par := range pars {
			cfg := fcatch.CampaignConfig{
				Strategy: fcatch.StrategyCoverage, Seed: seed,
				Budget: campaignThroughputBudget, Parallelism: par,
				Scenarios: scenarios,
			}
			// One warm-up campaign pins the deterministic run count used to
			// convert ns/op into runs/sec.
			pre, err := fcatch.Campaign(w, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fcatch-bench: campaign %s: %v\n", name, err)
				os.Exit(1)
			}
			scen := ""
			if len(scenarios) > 0 {
				scen = "/scenarios=on"
			}
			entryName := fmt.Sprintf("campaign/%s%s/parallelism=%d/runs=%d", name, scen, par, pre.Runs)
			if par == 0 {
				entryName = fmt.Sprintf("campaign/%s%s/parallelism=max(%d)/runs=%d", name, scen, runtime.GOMAXPROCS(0), pre.Runs)
			}
			fmt.Fprintf(os.Stderr, "fcatch-bench: benchmarking %s...\n", entryName)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := fcatch.Campaign(w, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			e := toEntry(entryName, r)
			e.RunsPerSec = float64(pre.Runs) * 1e9 / float64(r.NsPerOp())
			out = append(out, e)
		}
	}
	return out
}

// traceFormatEntries benchmarks the trace codecs on the named workload's
// fault-free trace: the chunked FCT2 encoder, the previous-generation FCT1
// encoder and the legacy gob encoder, each with its decode path and each
// entry carrying the encoded artifact size so BENCH_*.json records the
// on-disk win alongside the cost.
func traceFormatEntries(seed int64, workload string) []benchEntry {
	opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
	obs, err := core.Observe(fcatch.MustWorkload(workload), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fcatch-bench: observe %s: %v\n", workload, err)
		os.Exit(1)
	}
	tr := obs.FaultFree

	var fct2, fct1, gob bytes.Buffer
	if err := tr.Encode(&fct2); err != nil {
		fmt.Fprintln(os.Stderr, "fcatch-bench: encode fct2:", err)
		os.Exit(1)
	}
	if err := tr.EncodeFCT1(&fct1); err != nil {
		fmt.Fprintln(os.Stderr, "fcatch-bench: encode fct1:", err)
		os.Exit(1)
	}
	if err := tr.EncodeLegacyGob(&gob); err != nil {
		fmt.Fprintln(os.Stderr, "fcatch-bench: encode gob:", err)
		os.Exit(1)
	}

	var out []benchEntry
	measure := func(name string, size int64, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "fcatch-bench: benchmarking %s...\n", name)
		e := toEntry(name, testing.Benchmark(fn))
		e.SizeBytes = size
		out = append(out, e)
	}

	measure("trace-format/fct2/encode/"+workload, int64(fct2.Len()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.Encode(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("trace-format/fct1/encode/"+workload, int64(fct1.Len()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.EncodeFCT1(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("trace-format/gob/encode/"+workload, int64(gob.Len()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.EncodeLegacyGob(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, dec := range []struct {
		name string
		data []byte
	}{
		{"fct2", fct2.Bytes()},
		{"fct1", fct1.Bytes()},
		{"gob", gob.Bytes()},
	} {
		dec := dec
		measure("trace-format/"+dec.name+"/decode/"+workload, 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.Decode(bytes.NewReader(dec.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	return out
}

// measurePeakHeap runs fn once while sampling runtime.ReadMemStats from a
// watcher goroutine (plus boundary reads), returning the HeapAlloc high-water
// mark above the pre-run baseline and the wall-clock time. A sampled
// high-water slightly underestimates true peaks between samples; boundary
// reads make the common monotonic-growth case exact.
func measurePeakHeap(fn func()) (peak int64, elapsed time.Duration) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	high := base
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&s)
			if s.HeapAlloc > high {
				high = s.HeapAlloc
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	t0 := time.Now()
	fn()
	elapsed = time.Since(t0)
	close(stop)
	<-done
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > high {
		high = ms.HeapAlloc
	}
	if high < base {
		return 0, elapsed
	}
	return int64(high - base), elapsed
}

// pipelineMemoryEntries measures per-stage peak memory for the
// load + index + detect pipeline over a saved trace pair, before and after
// the streaming refactor: "monolithic" materializes both traces from the
// previous-generation FCT1 encoding and then builds each graph in one shot
// (the old pipeline shape); "streaming" drains the chunked FCT2 encoding
// through hb.NewFromSource, so decode scratch stays one window and the index
// grows alongside the records. The workload is the one with the largest
// encoded fault-free trace (TOY in smoke mode).
func pipelineMemoryEntries(seed int64, smoke bool) []benchEntry {
	candidates := []string{"TOY"}
	if !smoke {
		candidates = candidates[:0]
		for _, w := range fcatch.Workloads() {
			candidates = append(candidates, w.Name())
		}
	}
	opts := core.Options{Seed: seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
	var (
		pick     string
		pickSize int
		ff, fy   *trace.Trace
	)
	for _, name := range candidates {
		obs, err := core.Observe(fcatch.MustWorkload(name), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fcatch-bench: observe %s: %v\n", name, err)
			os.Exit(1)
		}
		var buf bytes.Buffer
		if err := obs.FaultFree.Encode(&buf); err != nil {
			fmt.Fprintln(os.Stderr, "fcatch-bench: encode:", err)
			os.Exit(1)
		}
		if pick == "" || buf.Len() > pickSize {
			pick, pickSize, ff, fy = name, buf.Len(), obs.FaultFree, obs.Faulty
		}
	}

	var ff1, fy1, ff2, fy2 bytes.Buffer
	for _, enc := range []struct {
		buf *bytes.Buffer
		t   *trace.Trace
		v1  bool
	}{{&ff1, ff, true}, {&fy1, fy, true}, {&ff2, ff, false}, {&fy2, fy, false}} {
		var err error
		if enc.v1 {
			err = enc.t.EncodeFCT1(enc.buf)
		} else {
			err = enc.t.Encode(enc.buf)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fcatch-bench: encode:", err)
			os.Exit(1)
		}
	}
	ff, fy = nil, nil // only the encoded bytes should be live during measurement

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "fcatch-bench: pipeline-memory:", err)
		os.Exit(1)
	}
	monolithic := func() {
		t1, err := trace.Decode(bytes.NewReader(ff1.Bytes()))
		if err != nil {
			fatal(err)
		}
		t2, err := trace.Decode(bytes.NewReader(fy1.Bytes()))
		if err != nil {
			fatal(err)
		}
		gf, gy := hb.New(t1), hb.New(t2)
		_ = detect.DetectRegular(gf, pick)
		_ = detect.DetectRecovery(gf, gy, pick)
	}
	streaming := func() {
		s1, err := trace.NewSource(bytes.NewReader(ff2.Bytes()))
		if err != nil {
			fatal(err)
		}
		gf, err := hb.NewFromSource(s1)
		if err != nil {
			fatal(err)
		}
		s2, err := trace.NewSource(bytes.NewReader(fy2.Bytes()))
		if err != nil {
			fatal(err)
		}
		gy, err := hb.NewFromSource(s2)
		if err != nil {
			fatal(err)
		}
		_ = detect.DetectRegular(gf, pick)
		_ = detect.DetectRecovery(gf, gy, pick)
	}

	var out []benchEntry
	for _, m := range []struct {
		name string
		size int64
		fn   func()
	}{
		{"pipeline-memory/monolithic/" + pick, int64(ff1.Len() + fy1.Len()), monolithic},
		{"pipeline-memory/streaming/" + pick, int64(ff2.Len() + fy2.Len()), streaming},
	} {
		fmt.Fprintf(os.Stderr, "fcatch-bench: measuring %s...\n", m.name)
		m.fn() // warm-up: stabilize lazily initialized runtime state
		peak, elapsed := measurePeakHeap(m.fn)
		out = append(out, benchEntry{
			Name:          m.name,
			Iterations:    1,
			NsPerOp:       elapsed.Nanoseconds(),
			SecondsOp:     elapsed.Seconds(),
			SizeBytes:     m.size,
			PeakHeapBytes: peak,
		})
	}
	return out
}

// writeBenchJSON runs the suite and writes the report.
func writeBenchJSON(path string, seed int64, smoke bool) error {
	rep := benchReport{
		GeneratedBy:    "fcatch-bench -json",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		SingleCoreHost: runtime.NumCPU() == 1,
		Seed:           seed,
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		Benchmarks:     runBenchSuite(seed, smoke),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// distThroughputBudget is the per-measurement run budget for the distributed
// throughput entries. The random strategy always executes the full budget, so
// runs/sec conversion needs no warm-up campaign, and 400 runs amortize the
// coordinator's fixed startup cost (listener, handshakes, drain) to a few
// percent.
const distThroughputBudget = 400

// distLeaseSize is the lease size for the distributed throughput entries:
// large enough to amortize framing, small enough that a lease loss is cheap.
const distLeaseSize = 8

// distThroughputEntries measures end-to-end distributed campaign throughput —
// executed injection runs per second through the coordinator, the wire
// protocol, and in-process workers — per workload at the given worker counts.
// On a single-core host these entries measure protocol overhead, not scaling:
// every worker shares one CPU, so workers=N can only reclaim scheduler/netpoll
// idle time (a few percent either way). On an N-core host the same entries
// measure near-linear scale-out, because each injection run is an independent
// deterministic replay.
func distThroughputEntries(seed int64, workloads []string, workerCounts []int) []benchEntry {
	var out []benchEntry
	for _, name := range workloads {
		w := fcatch.MustWorkload(name)
		for _, workers := range workerCounts {
			cfg := fcatch.CampaignConfig{Strategy: fcatch.StrategyRandom, Seed: seed, Budget: distThroughputBudget}
			opts := fcatch.DistOptions{Workers: workers, WorkerParallelism: 1, LeaseSize: distLeaseSize}
			entryName := fmt.Sprintf("dist/%s/workers=%d", name, workers)
			fmt.Fprintf(os.Stderr, "fcatch-bench: benchmarking %s...\n", entryName)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := fcatch.DistributedCampaign(context.Background(), w, cfg, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			e := toEntry(entryName, r)
			e.RunsPerSec = float64(distThroughputBudget) * 1e9 / float64(r.NsPerOp())
			out = append(out, e)
		}
	}
	return out
}
