// Command fcatch-bench regenerates every table and experiment of the
// paper's evaluation section:
//
//	fcatch-bench -all                 # everything below, in order
//	fcatch-bench -table 1..5          # one table
//	fcatch-bench -sensitivity         # §8.1.2 crash-point sensitivity
//	fcatch-bench -ablation            # §8.2 exhaustive-tracing ablation
//	fcatch-bench -randinject [-runs N]# §8.3 random-injection baseline
//	fcatch-bench -campaign [-runs N]  # §8.3 extended: campaign strategy comparison
//	fcatch-bench -triggering          # §8.4 fault-type matrix
//	fcatch-bench -json out.json       # machine-readable perf suite (BENCH_*.json)
//	fcatch-bench -compare old.json new.json  # regression-diff two perf suites
//
// -parallelism bounds the pipeline's worker pool for every experiment
// (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"fcatch"
	"fcatch/internal/core"
	"fcatch/internal/sim"
)

func main() {
	table := flag.Int("table", 0, "render table N (1-5)")
	all := flag.Bool("all", false, "run every experiment")
	sensitivity := flag.Bool("sensitivity", false, "crash-point sensitivity study (§8.1.2)")
	ablation := flag.Bool("ablation", false, "exhaustive-tracing ablation (§8.2)")
	pruning := flag.Bool("pruning", false, "pruning-analysis ablation (§8.4)")
	randinject := flag.Bool("randinject", false, "random fault-injection baseline (§8.3)")
	campaignCmp := flag.Bool("campaign", false, "campaign strategy comparison (§8.3 extended: random vs exhaustive vs coverage-guided vs FCatch)")
	triggering := flag.Bool("triggering", false, "fault-type trigger matrix (§8.4)")
	runs := flag.Int("runs", 400, "runs per workload for -randinject")
	seed := flag.Int64("seed", 1, "deterministic scheduler seed")
	parallelism := flag.Int("parallelism", 0, "pipeline worker bound (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.String("json", "", "run the perf benchmark suite and write JSON results to this file")
	smoke := flag.Bool("smoke", false, "with -json: run only the cheap TOY-scale entries (CI smoke test)")
	compareBench := flag.Bool("compare", false, "diff two perf suites: fcatch-bench -compare old.json new.json")
	strict := flag.Bool("strict", false, "with -compare: exit nonzero when regressions are flagged")
	gate := flag.String("gate", "", "with -compare: exit nonzero when a flagged regression's name starts with this prefix (e.g. detect/); other entries stay advisory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *compareBench {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "fcatch-bench: -compare takes exactly two files: old.json new.json")
			os.Exit(2)
		}
		regs := runBenchCompare(flag.Arg(0), flag.Arg(1))
		if *strict && len(regs) > 0 {
			os.Exit(1)
		}
		if *gate != "" {
			for _, name := range regs {
				if strings.HasPrefix(name, *gate) {
					fmt.Fprintf(os.Stderr, "fcatch-bench: gated regression in %s\n", name)
					os.Exit(1)
				}
			}
		}
		return
	}

	if *cpuprofile != "" || *memprofile != "" {
		defer profileTo(*cpuprofile, *memprofile)()
	}

	if *jsonOut != "" {
		if err := writeBenchJSON(*jsonOut, *seed, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "fcatch-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "fcatch-bench: wrote", *jsonOut)
		return
	}

	opts := core.Options{Seed: *seed, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, MeasureBaseline: true, Parallelism: *parallelism}

	needEval := *all || *triggering || (*table >= 2 && *table <= 5)
	var eval *fcatch.EvalRun
	if needEval {
		var err error
		fmt.Fprintln(os.Stderr, "fcatch-bench: running detection + triggering on all six workloads...")
		eval, err = fcatch.RunEvaluation(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fcatch-bench:", err)
			os.Exit(1)
		}
	}

	show := func(n int) bool { return *all || *table == n }
	if show(1) {
		fmt.Println(fcatch.RenderTable1())
	}
	if show(2) {
		fmt.Println(eval.RenderTable2())
	}
	if show(3) {
		fmt.Println(eval.RenderTable3())
	}
	if show(4) {
		fmt.Println(eval.RenderTable4())
	}
	if show(5) {
		fmt.Println(eval.RenderTable5())
	}
	if *all || *sensitivity {
		s, err := fcatch.Sensitivity(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fcatch-bench:", err)
			os.Exit(1)
		}
		fmt.Println(fcatch.RenderSensitivity(s))
	}
	if *all || *ablation {
		fmt.Println(fcatch.RenderAblation(fcatch.AblationTraceAll(*seed)))
	}
	if *all || *pruning {
		rows, err := fcatch.PruningAblation(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fcatch-bench:", err)
			os.Exit(1)
		}
		fmt.Println(fcatch.RenderPruningAblation(rows))
	}
	if *all || *randinject {
		var results []*fcatch.RandomResult
		for _, w := range fcatch.Workloads() {
			fmt.Fprintf(os.Stderr, "fcatch-bench: random injection on %s (%d runs)...\n", w.Name(), *runs)
			r, err := fcatch.RandomInjectionP(w, *runs, *seed, *parallelism)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fcatch-bench:", err)
				os.Exit(1)
			}
			results = append(results, r)
		}
		fmt.Println(fcatch.RenderRandom(results))
	}
	if *all || *campaignCmp {
		fmt.Fprintln(os.Stderr, "fcatch-bench: comparing campaign strategies on all six workloads...")
		rows, err := fcatch.CompareStrategies(fcatch.Workloads(), *runs, *seed, *parallelism)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fcatch-bench:", err)
			os.Exit(1)
		}
		fmt.Println(fcatch.RenderStrategyComparison(rows, *runs))
	}
	if *all || *triggering {
		fmt.Println(eval.RenderTriggerMatrix())
	}
	if !*all && *table == 0 && !*sensitivity && !*ablation && !*pruning && !*randinject && !*campaignCmp && !*triggering {
		flag.Usage()
	}
}

// profileTo starts CPU profiling (when cpu is non-empty) and returns the
// function that stops it and writes the heap profile (when mem is non-empty).
// Profiles are flushed on normal termination; error exits skip them.
func profileTo(cpu, mem string) func() {
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "fcatch-bench:", err)
		os.Exit(1)
	}
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the final live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}
}
