// Command fcatch-campaign drives the coverage-guided fault-injection
// campaign engine: explore a workload's fault space with a search strategy,
// persist the corpus, resume it later, diff two campaigns, or render the
// strategy-comparison table (the extended Section 8.3 experiment).
//
//	fcatch-campaign -workload MR1 -strategy coverage-guided -runs 400
//	fcatch-campaign -workload MR1 -runs 400 -corpus mr1.json   # save corpus
//	fcatch-campaign -resume mr1.json -runs 800                 # continue it
//	fcatch-campaign -diff a.json -diff2 b.json                 # compare finds
//	fcatch-campaign -compare -runs 400                         # all workloads × all strategies
package main

import (
	"flag"
	"fmt"
	"os"

	"fcatch"
)

func main() {
	workload := flag.String("workload", "", "one workload (default with -compare: all six)")
	strategy := flag.String("strategy", fcatch.StrategyCoverage, "search strategy: random | exhaustive-site | coverage-guided")
	runs := flag.Int("runs", 400, "run budget (total, including a resumed prefix)")
	seed := flag.Int64("seed", 1, "deterministic base seed")
	parallelism := flag.Int("parallelism", 0, "concurrent injection runs (0 = GOMAXPROCS, 1 = sequential)")
	batch := flag.Int("batch", 0, "max runs between strategy re-weightings (0 = strategy default)")
	corpus := flag.String("corpus", "", "save the campaign corpus to this JSON file")
	resume := flag.String("resume", "", "resume the campaign recorded in this corpus file")
	spaceTrace := flag.String("space-trace", "", "enumerate the fault space from this saved fault-free trace (same workload/seed) instead of re-simulating it")
	compare := flag.Bool("compare", false, "render the strategy-comparison table instead of one campaign")
	diffA := flag.String("diff", "", "diff mode: first corpus file")
	diffB := flag.String("diff2", "", "diff mode: second corpus file")
	flag.Parse()

	switch {
	case *diffA != "" || *diffB != "":
		if *diffA == "" || *diffB == "" {
			fatal(fmt.Errorf("-diff and -diff2 must both be given"))
		}
		runDiff(*diffA, *diffB)

	case *compare:
		runCompare(*workload, *runs, *seed, *parallelism)

	default:
		runCampaign(*workload, *strategy, *runs, *seed, *parallelism, *batch, *corpus, *resume, *spaceTrace)
	}
}

func runCampaign(workload, strategy string, runs int, seed int64, parallelism, batch int, corpusOut, resume, spaceTrace string) {
	var prior *fcatch.CampaignCorpus
	if resume != "" {
		var err error
		if prior, err = fcatch.LoadCampaignCorpus(resume); err != nil {
			fatal(err)
		}
		// The corpus pins the campaign identity; flags only extend the budget.
		workload, strategy, seed = prior.Workload, prior.Strategy, prior.Seed
		fmt.Fprintf(os.Stderr, "fcatch-campaign: resuming %s/%s (seed %d) from %d cached run(s)\n",
			workload, strategy, seed, len(prior.Entries))
	}
	if workload == "" {
		fatal(fmt.Errorf("-workload is required (or -resume / -compare); see `fcatch list`"))
	}
	w, err := fcatch.ByName(workload)
	if err != nil {
		fatal(err)
	}

	cfg := fcatch.CampaignConfig{
		Strategy:    strategy,
		Seed:        seed,
		Budget:      runs,
		Parallelism: parallelism,
		BatchSize:   batch,
	}
	if spaceTrace != "" {
		src, err := fcatch.OpenTrace(spaceTrace)
		if err != nil {
			fatal(err)
		}
		cfg.SpaceTrace = src // the engine drains and closes it
	}
	res, err := fcatch.ResumeCampaign(w, cfg, prior)
	if err != nil {
		fatal(err)
	}
	fmt.Print(fcatch.RenderCampaign(res))

	if corpusOut != "" {
		if err := res.Corpus.Save(corpusOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fcatch-campaign: saved corpus (%d runs) to %s\n", res.Runs, corpusOut)
	}
}

func runCompare(workload string, runs int, seed int64, parallelism int) {
	targets := fcatch.Workloads()
	if workload != "" {
		w, err := fcatch.ByName(workload)
		if err != nil {
			fatal(err)
		}
		targets = []fcatch.Workload{w}
	}
	fmt.Fprintf(os.Stderr, "fcatch-campaign: comparing %d strategies + fcatch-directed on %d workload(s), %d runs each...\n",
		3, len(targets), runs)
	rows, err := fcatch.CompareStrategies(targets, runs, seed, parallelism)
	if err != nil {
		fatal(err)
	}
	fmt.Print(fcatch.RenderStrategyComparison(rows, runs))
}

func runDiff(pathA, pathB string) {
	a, err := fcatch.LoadCampaignCorpus(pathA)
	if err != nil {
		fatal(err)
	}
	b, err := fcatch.LoadCampaignCorpus(pathB)
	if err != nil {
		fatal(err)
	}
	d := fcatch.DiffCampaigns(a, b)
	fmt.Printf("A = %s (%s/%s seed %d, %d runs)\n", pathA, a.Workload, a.Strategy, a.Seed, len(a.Entries))
	fmt.Printf("B = %s (%s/%s seed %d, %d runs)\n", pathB, b.Workload, b.Strategy, b.Seed, len(b.Entries))
	section := func(label string, sigs []string) {
		fmt.Printf("%s (%d):\n", label, len(sigs))
		for _, s := range sigs {
			fmt.Printf("  %s\n", s)
		}
	}
	section("only in A", d.OnlyA)
	section("only in B", d.OnlyB)
	section("shared", d.Shared)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fcatch-campaign:", err)
	os.Exit(1)
}
