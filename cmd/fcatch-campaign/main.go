// Command fcatch-campaign drives the coverage-guided fault-injection
// campaign engine: explore a workload's fault space with a search strategy,
// persist the corpus, resume it later, diff two campaigns, or render the
// strategy-comparison table (the extended Section 8.3 experiment).
//
//	fcatch-campaign -workload MR1 -strategy coverage-guided -runs 400
//	fcatch-campaign -workload MR1 -runs 400 -corpus mr1.json   # save corpus
//	fcatch-campaign -resume mr1.json -runs 800                 # continue it
//	fcatch-campaign -diff a.json -diff2 b.json                 # compare finds
//	fcatch-campaign -compare -runs 400                         # all workloads × all strategies
//	fcatch-campaign -workload MR1 -runs 400 -scenarios crash+recovery-crash
//	fcatch-campaign -workload MR1 -runs 4000 -workers 4        # distributed, in-process fleet
//	fcatch-campaign -workload MR1 -runs 4000 -serve :9093      # distributed, external fcatch-workers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fcatch"
	"fcatch/internal/cliflag"
)

// instrumentation bundles the observability flags: the shared registry (nil
// when nothing asked for one — the no-op fast path), the -metrics manifest
// path, the distributed -metrics-addr endpoint, and -progress stderr lines.
// All of it is observe-only: the corpus is byte-identical either way.
type instrumentation struct {
	reg      *fcatch.Metrics
	out      string
	addr     string
	progress bool
}

// hook returns the Config.Progress callback, or nil when -progress is off.
func (ins *instrumentation) hook() func(fcatch.CampaignProgress) {
	if !ins.progress {
		return nil
	}
	return func(p fcatch.CampaignProgress) {
		fmt.Fprintf(os.Stderr,
			"fcatch-campaign: %s/%s %d/%d runs (%d cached, %d executed) %.0f runs/s, %d distinct failure(s), dedupe %.0f%%\n",
			p.Workload, p.Strategy, p.Runs, p.Budget, p.Cached, p.Executed,
			p.RunsPerSec(), p.DistinctFailures, 100*p.DedupeRate())
	}
}

// writeManifest writes the end-of-run manifest when -metrics was given.
func (ins *instrumentation) writeManifest(res *fcatch.CampaignResult, budget int, elapsed time.Duration) {
	if ins.out == "" {
		return
	}
	m := fcatch.NewCampaignManifest(res, budget, elapsed, ins.reg)
	w := os.Stdout
	if ins.out != "-" {
		f, err := os.Create(ins.out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := m.WriteJSON(w); err != nil {
		fatal(err)
	}
	if ins.out != "-" {
		fmt.Fprintf(os.Stderr, "fcatch-campaign: wrote run manifest to %s\n", ins.out)
	}
}

func main() {
	workload := flag.String("workload", "", "one workload (default with -compare: all six)")
	strategy := flag.String("strategy", fcatch.StrategyCoverage, "search strategy: random | exhaustive-site | coverage-guided")
	runs := flag.Int("runs", 400, "run budget (total, including a resumed prefix)")
	seed := flag.Int64("seed", 1, "deterministic base seed")
	parallelism := cliflag.Parallelism(flag.CommandLine, "injection runs")
	batch := flag.Int("batch", 0, "max runs between strategy re-weightings (0 = strategy default)")
	corpus := flag.String("corpus", "", "save the campaign corpus to this JSON file")
	resume := flag.String("resume", "", "resume the campaign recorded in this corpus file")
	spaceTrace := flag.String("space-trace", "", "enumerate the fault space from this saved fault-free trace (same workload/seed) instead of re-simulating it")
	compare := flag.Bool("compare", false, "render the strategy-comparison table instead of one campaign")
	diffA := flag.String("diff", "", "diff mode: first corpus file")
	diffB := flag.String("diff2", "", "diff mode: second corpus file")
	serve := flag.String("serve", "", "distributed: listen on this host:port for fcatch-worker processes")
	workers := flag.Int("workers", 0, "distributed: spawn this many in-process workers (usable with or without -serve)")
	leaseSize := flag.Int("lease", 0, "distributed: plans per lease (0 = default; corpus identical at any setting)")
	scenarioFlag := flag.String("scenarios", "", "comma-separated composite-scenario enumerators to append to the fault space: "+
		strings.Join(fcatch.CampaignScenarioNames(), " | "))
	metricsOut := cliflag.Metrics(flag.CommandLine)
	metricsAddr := flag.String("metrics-addr", "", "distributed: serve Prometheus-text metrics on http://<host:port>/metrics while the campaign runs")
	progress := flag.Bool("progress", false, "print a progress line to stderr after every committed batch")
	flag.Parse()
	scenarios := splitScenarios(*scenarioFlag)
	ins := &instrumentation{
		reg:      cliflag.NewRegistry(*metricsOut, *metricsAddr != ""),
		out:      *metricsOut,
		addr:     *metricsAddr,
		progress: *progress,
	}

	switch {
	case *diffA != "" || *diffB != "":
		if *diffA == "" || *diffB == "" {
			fatal(fmt.Errorf("-diff and -diff2 must both be given"))
		}
		runDiff(*diffA, *diffB)

	case *compare:
		runCompare(*workload, *runs, *seed, *parallelism)

	case *serve != "" || *workers > 0:
		runDistributed(*workload, *strategy, *runs, *seed, *parallelism, *batch,
			*corpus, *resume, *serve, *workers, *leaseSize, scenarios, ins)

	default:
		runCampaign(*workload, *strategy, *runs, *seed, *parallelism, *batch, *corpus, *resume, *spaceTrace, scenarios, ins)
	}
}

// splitScenarios parses the comma-separated -scenarios value.
func splitScenarios(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// loadResume loads a prior corpus and pins the campaign identity from it
// (flags only extend the budget on resume).
func loadResume(resume string, workload, strategy *string, seed *int64) *fcatch.CampaignCorpus {
	if resume == "" {
		return nil
	}
	prior, err := fcatch.LoadCampaignCorpus(resume)
	if err != nil {
		fatal(err)
	}
	*workload, *strategy, *seed = prior.Workload, prior.Strategy, prior.Seed
	fmt.Fprintf(os.Stderr, "fcatch-campaign: resuming %s/%s (seed %d) from %d cached run(s)\n",
		*workload, *strategy, *seed, len(prior.Entries))
	return prior
}

// runDistributed drives a coordinator: the campaign engine runs here, leases
// stream to in-process (-workers) and/or external (-serve + fcatch-worker)
// workers, and the merged corpus is byte-identical to a local run. SIGINT
// drains gracefully: complete batches are kept, and with -corpus the partial
// corpus is saved as a resume point.
func runDistributed(workload, strategy string, runs int, seed int64, parallelism, batch int, corpusOut, resume, serve string, workers, leaseSize int, scenarios []string, ins *instrumentation) {
	prior := loadResume(resume, &workload, &strategy, &seed)
	if prior != nil && len(scenarios) == 0 {
		scenarios = prior.Scenarios
	}
	if workload == "" {
		fatal(fmt.Errorf("-workload is required (or -resume); see `fcatch list`"))
	}
	w, err := fcatch.ByName(workload)
	if err != nil {
		fatal(err)
	}

	cfg := fcatch.CampaignConfig{
		Strategy:  strategy,
		Seed:      seed,
		Budget:    runs,
		BatchSize: batch,
		Scenarios: scenarios,
		Metrics:   ins.reg,
		Progress:  ins.hook(),
	}
	opts := fcatch.DistOptions{
		Addr:              serve,
		Workers:           workers,
		WorkerParallelism: parallelism,
		LeaseSize:         leaseSize,
		Metrics:           ins.reg,
		MetricsAddr:       ins.addr,
		OnListen: func(addr string) {
			fmt.Fprintf(os.Stderr, "fcatch-campaign: serving leases on %s (%d in-process worker(s))\n", addr, workers)
		},
		OnMetricsListen: func(addr string) {
			fmt.Fprintf(os.Stderr, "fcatch-campaign: serving metrics on http://%s/metrics\n", addr)
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	res, err := fcatch.ResumeDistributedCampaign(ctx, w, cfg, prior, opts)
	elapsed := time.Since(start)
	interrupted := errors.Is(err, context.Canceled) && res != nil
	if err != nil && !interrupted {
		fatal(err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "fcatch-campaign: interrupted at %d/%d run(s); complete batches kept\n", res.Runs, runs)
	}
	fmt.Print(fcatch.RenderCampaign(res))
	if corpusOut != "" {
		if err := res.Corpus.Save(corpusOut); err != nil {
			fatal(err)
		}
		what := "corpus"
		if interrupted {
			what = "partial corpus (resume with -resume)"
		}
		fmt.Fprintf(os.Stderr, "fcatch-campaign: saved %s (%d runs) to %s\n", what, res.Runs, corpusOut)
	}
	ins.writeManifest(res, runs, elapsed)
	if interrupted {
		os.Exit(130)
	}
}

func runCampaign(workload, strategy string, runs int, seed int64, parallelism, batch int, corpusOut, resume, spaceTrace string, scenarios []string, ins *instrumentation) {
	prior := loadResume(resume, &workload, &strategy, &seed)
	if prior != nil && len(scenarios) == 0 {
		scenarios = prior.Scenarios
	}
	if workload == "" {
		fatal(fmt.Errorf("-workload is required (or -resume / -compare); see `fcatch list`"))
	}
	w, err := fcatch.ByName(workload)
	if err != nil {
		fatal(err)
	}

	cfg := fcatch.CampaignConfig{
		Strategy:    strategy,
		Seed:        seed,
		Budget:      runs,
		Parallelism: parallelism,
		BatchSize:   batch,
		Scenarios:   scenarios,
		Metrics:     ins.reg,
		Progress:    ins.hook(),
	}
	if spaceTrace != "" {
		src, err := fcatch.OpenTrace(spaceTrace)
		if err != nil {
			fatal(err)
		}
		cfg.SpaceTrace = src // the engine drains and closes it
	}
	start := time.Now()
	res, err := fcatch.ResumeCampaign(w, cfg, prior)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Print(fcatch.RenderCampaign(res))

	if corpusOut != "" {
		if err := res.Corpus.Save(corpusOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fcatch-campaign: saved corpus (%d runs) to %s\n", res.Runs, corpusOut)
	}
	ins.writeManifest(res, runs, elapsed)
}

func runCompare(workload string, runs int, seed int64, parallelism int) {
	targets := fcatch.Workloads()
	if workload != "" {
		w, err := fcatch.ByName(workload)
		if err != nil {
			fatal(err)
		}
		targets = []fcatch.Workload{w}
	}
	fmt.Fprintf(os.Stderr, "fcatch-campaign: comparing %d strategies + fcatch-directed on %d workload(s), %d runs each...\n",
		3, len(targets), runs)
	rows, err := fcatch.CompareStrategies(targets, runs, seed, parallelism)
	if err != nil {
		fatal(err)
	}
	fmt.Print(fcatch.RenderStrategyComparison(rows, runs))
}

func runDiff(pathA, pathB string) {
	a, err := fcatch.LoadCampaignCorpus(pathA)
	if err != nil {
		fatal(err)
	}
	b, err := fcatch.LoadCampaignCorpus(pathB)
	if err != nil {
		fatal(err)
	}
	d := fcatch.DiffCampaigns(a, b)
	fmt.Printf("A = %s (%s/%s seed %d, %d runs)\n", pathA, a.Workload, a.Strategy, a.Seed, len(a.Entries))
	fmt.Printf("B = %s (%s/%s seed %d, %d runs)\n", pathB, b.Workload, b.Strategy, b.Seed, len(b.Entries))
	section := func(label string, sigs []string) {
		fmt.Printf("%s (%d):\n", label, len(sigs))
		for _, s := range sigs {
			fmt.Printf("  %s\n", s)
		}
	}
	section("only in A", d.OnlyA)
	section("only in B", d.OnlyB)
	section("shared", d.Shared)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fcatch-campaign:", err)
	os.Exit(1)
}
