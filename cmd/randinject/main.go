// Command randinject is the state-of-practice baseline FCatch is compared
// against (Section 8.3): run a workload many times, crash a node at a
// uniformly random point each time, and count which bugs ever manifest.
//
//	randinject -workload MR1 -runs 400
//	randinject -runs 400               # all six workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"fcatch"
	"fcatch/internal/cliflag"
)

func main() {
	workload := flag.String("workload", "", "one workload (default: all six)")
	runs := flag.Int("runs", 400, "injection runs per workload")
	seed := flag.Int64("seed", 1, "deterministic base seed")
	parallelism := cliflag.Parallelism(flag.CommandLine, "injection runs")
	metricsOut := cliflag.Metrics(flag.CommandLine)
	flag.Parse()
	reg := cliflag.NewRegistry(*metricsOut, false)

	var targets []fcatch.Workload
	if *workload != "" {
		w, err := fcatch.ByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "randinject:", err)
			os.Exit(1)
		}
		targets = []fcatch.Workload{w}
	} else {
		targets = fcatch.Workloads()
	}

	var results []*fcatch.RandomResult
	for _, w := range targets {
		fmt.Fprintf(os.Stderr, "randinject: %s, %d runs...\n", w.Name(), *runs)
		r, err := fcatch.RandomInjectionObserved(w, *runs, *seed, *parallelism, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "randinject:", err)
			os.Exit(1)
		}
		results = append(results, r)
	}
	fmt.Print(fcatch.RenderRandom(results))
	if err := cliflag.WriteMetrics(*metricsOut, reg); err != nil {
		fmt.Fprintln(os.Stderr, "randinject:", err)
		os.Exit(1)
	}
}
