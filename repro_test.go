package fcatch_test

import (
	"strings"
	"testing"

	"fcatch"
)

// TestReproduceEveryCataloguedBug runs the end-to-end reproduction (detect →
// locate report → trigger) for all 16 bugs and checks each confirms as a
// true bug with its documented symptom shape.
func TestReproduceEveryCataloguedBug(t *testing.T) {
	wantKind := map[string]string{
		// Data-loss bugs fail the workload checker; restart/commit bugs log
		// fatally; the rest hang.
		"HB2": "check", "HB5": "check", "HB6": "check",
		"MR2": "fatal", "MR2b": "fatal", "MR5": "fatal", "ZK": "fatal",
	}
	for _, spec := range fcatch.Catalog {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			rep, err := fcatch.Reproduce(spec.ID, fcatch.DefaultOptions())
			if err != nil {
				t.Fatalf("Reproduce: %v", err)
			}
			if rep.Outcome.Class != fcatch.TrueBug {
				t.Fatalf("verdict = %v (%s)", rep.Outcome.Class, rep.Outcome.Detail)
			}
			if want, ok := wantKind[spec.ID]; ok && rep.Outcome.FailureKind != want {
				t.Errorf("failure kind = %q, want %q", rep.Outcome.FailureKind, want)
			}
			if fcatch.Details(spec.ID) == "" {
				t.Errorf("bug %s has no reproduction narrative", spec.ID)
			}
			text := rep.Render()
			for _, want := range []string{spec.ID, "prediction:", "trigger:", "verdict:"} {
				if !strings.Contains(text, want) {
					t.Errorf("rendered reproduction missing %q", want)
				}
			}
		})
	}
}

func TestReproduceUnknownBug(t *testing.T) {
	if _, err := fcatch.Reproduce("NOPE", fcatch.DefaultOptions()); err == nil {
		t.Fatal("unknown bug id accepted")
	}
}
