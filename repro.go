package fcatch

import (
	"fmt"
	"strings"

	"fcatch/internal/inject"
)

// bugDetails carries the reproduction narrative for each catalogued bug —
// the analog of the paper's companion repository of per-bug readmes and
// reproduction scripts.
var bugDetails = map[string]string{
	"CA1": `The anti-entropy repair coordinator asks each neighbour to snapshot its
sstables and then waits — without a timeout and without a retry — for the
snapshot acknowledgements. The ack is one of Cassandra's droppable message
verbs. If it is dropped (application- or kernel-level), the repair session
waits forever. A neighbour *crash* is tolerated: the failure detector's
convict callback aborts the session, which is why this bug only triggers
with message drops.`,
	"CA2": `Identical shape to CA1 one phase later: the coordinator waits untimed for
the neighbours' merkle-tree responses during validation. A dropped
tree-response strands the repair at "Mtree compare" forever.`,
	"CA3": `After validation, the coordinator streams differing ranges and polls a
pending-streams counter decremented by stream-finished messages. The
convict callback that rescues CA1/CA2 forgot this phase: both a neighbour
crash and a dropped stream-finished message hang the repair at "Mtree
repair".`,
	"HB1": `Figure 6 of the paper. A RegionServer opening META registers OPENING in
ZooKeeper (the master's watch inserts META into its region-in-transition
map), creates two global-FS files and a znode, then registers OPENED
(whose watch event removes the RIT entry). The master polls the RIT map
with no timeout. If the RegionServer crashes inside that window, the entry
is never removed and the whole cluster hangs. Message drops cannot trigger
it: the OPENED update is a ZooKeeper operation, not a droppable packet.`,
	"HB2": `0.90.1 log splitting takes a plain (non-ephemeral) lock znode around the
write-ahead-log roll. A RegionServer crash between the lock's create and
delete strands the lock; the master's split worker then fails to acquire
it and skips the split entirely, silently losing every unflushed edit.`,
	"HB3": `The 0.90.1 master sends OpenRegion for ROOT and waits untimed for the
opened notification. A RegionServer crash (or a dropped notification)
before the reply leaves the master waiting forever; the shutdown handler
never reassigns ROOT because it believes an open is still in progress.`,
	"HB4": `The same ROOT-open window as HB3, caught through the master's catalog
poller: an unbounded loop on the root-location field that only the opened
notification writes.`,
	"HB5": `The replication worker advances its queue znode as it ships edits — but
deletes the znode before shipping the final edit of the log. A crash in
between makes the master's queue adoption skip the log ("no znode, nothing
pending") and the tail edit is never replicated.`,
	"HB6": `One level up from HB5: the whole queue-directory marker is deleted before
the very last buffered edit ships. A crash in that window makes adoption
conclude the dead server had no replication state at all.`,
	"MR1": `Figure 1 of the paper. CanCommit records the committing attempt's ID in
T.commit on the Application Master and thereafter only grants that
attempt. If the attempt crashes between CanCommit and DoneCommit, the
stale T.commit denies every recovery attempt; each one retries forever and
the job never finishes.`,
	"MR2": `At job end the AM deletes the staging directory (job.xml first, then the
split files) before unregistering from the ResourceManager. If the AM
crashes in that window the RM relaunches it — into a staging directory
that no longer exists. The restarted AM fails reading job.xml (way 1).`,
	"MR2b": `The second way into the MR2 window: the restarted AM gets past job.xml
(if only the tree deletion raced) but fails re-reading the per-task split
files the cleanup already unlinked.`,
	"MR3": `Hadoop-MR's RPC client parks each call on an untimed wait that only the
reply's arrival signals. Losing a reply message — or crashing the callee
at the wrong moment under the pre-fail-fast IPC layer — hangs the caller
forever, at *any* RPC call site.`,
	"MR4": `StartCommit flips a task to COMMITTING; DoneCommit flips it to done. The
AM's attempt monitor resets RUNNING tasks of dead attempts but forgot the
COMMITTING case, so an attempt crash inside the commit leaves the task
permanently "busy": the recovery attempt is turned away and the job
hangs.`,
	"MR5": `The 2.1.1 AM creates a COMMIT_STARTED marker before committing job
output and a COMMIT_SUCCESS marker after. A crash in between makes the
restarted AM find STARTED-without-SUCCESS and refuse recovery ("previous
AM died during job commit").`,
	"ZK": `ZOOKEEPER-1653's shape: during election the server persists
acceptedEpoch and then currentEpoch as two local files. A crash between
the writes leaves acceptedEpoch ahead; on restart the server refuses to
load its database and never comes back.`,
}

// Details returns the reproduction narrative for a catalogued bug.
func Details(id string) string { return bugDetails[id] }

// Reproduction is the end-to-end story of one bug: the detection report
// that predicted it, the hazard windows of the observation it came from, the
// exact scenario string that replays the trigger, and the trigger outcome
// that confirmed it.
type Reproduction struct {
	Spec     *BugSpec
	Workload string
	Report   *Report
	// Windows are the observation's hazard windows; Report.WindowID indexes
	// into them for crash-recovery reports.
	Windows []Window
	// Scenario is the FormatScenario rendering of the triggering fault
	// scenario rebuilt from the report's window anchors — paste it straight
	// into `fcatch trigger -scenario`.
	Scenario string
	Outcome  *TriggerOutcome
}

// Reproduce runs the full pipeline for one catalogued bug: detect on its
// workload, locate the matching report, and trigger it.
func Reproduce(bugID string, opts Options) (*Reproduction, error) {
	spec := Spec(bugID)
	if spec == nil {
		return nil, fmt.Errorf("fcatch: unknown bug %q", bugID)
	}
	wl := spec.Workloads[0]
	w, err := ByName(wl)
	if err != nil {
		return nil, err
	}
	res, err := Detect(w, opts)
	if err != nil {
		return nil, err
	}
	var report *Report
	for _, r := range res.Reports {
		if r.Type == spec.Type && opsMatch(spec.Ops, r.OpsDesc) && strings.Contains(r.ResClass, spec.ResHint) {
			report = r
			break
		}
	}
	if report == nil {
		return nil, fmt.Errorf("fcatch: bug %s was not predicted by detection on %s", bugID, wl)
	}
	out := inject.NewTriggerer(w, opts.Seed).TriggerWindowed(report, res.Windows)
	rep := &Reproduction{
		Spec: spec, Workload: wl, Report: report,
		Windows: res.Windows,
		Outcome: out,
	}
	if sc := inject.TriggerScenario(report, res.Windows); len(sc) > 0 {
		rep.Scenario = FormatScenario(sc)
	}
	return rep, nil
}

// Render formats the reproduction as a readme-style narrative.
func (r *Reproduction) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n\n", r.Spec.ID, r.Spec.Symptom)
	if d := Details(r.Spec.ID); d != "" {
		b.WriteString(d)
		b.WriteString("\n\n")
	}
	fmt.Fprintf(&b, "workload:   %s\n", r.Workload)
	fmt.Fprintf(&b, "prediction: %s\n", r.Report)
	if r.Report.Type == CrashRegularBug {
		wp := r.Report.WPrime
		fmt.Fprintf(&b, "trigger:    remove W' (occurrence %d of %s on %s) via crash or drop\n",
			wp.Occurrence, wp.Site, wp.PID)
	} else {
		when := WhenAfter
		if r.Report.WInFaultyRun {
			when = WhenBefore
		}
		fmt.Fprintf(&b, "trigger:    crash %s right %s W (occurrence %d of %s)\n",
			r.Report.CrashTargetRole, when, r.Report.W.Occurrence, r.Report.W.Site)
		if wid := r.Report.WindowID; wid > 0 && wid < len(r.Windows) {
			fmt.Fprintf(&b, "window:     %s\n", &r.Windows[wid])
		}
	}
	if r.Scenario != "" {
		fmt.Fprintf(&b, "scenario:   %q\n", r.Scenario)
	}
	fmt.Fprintf(&b, "verdict:    %s", r.Outcome.Class)
	if r.Outcome.FailureKind != "" {
		fmt.Fprintf(&b, " (%s)", r.Outcome.FailureKind)
	}
	b.WriteString("\n")
	if r.Outcome.Detail != "" {
		fmt.Fprintf(&b, "failure:    %s\n", r.Outcome.Detail)
	}
	if r.Report.Type == CrashRegularBug {
		fmt.Fprintf(&b, "fault types: %s=%v %s=%v %s=%v\n",
			ActionNodeCrash, r.Outcome.ByAction[ActionNodeCrash],
			ActionKernelDrop, r.Outcome.ByAction[ActionKernelDrop],
			ActionAppDrop, r.Outcome.ByAction[ActionAppDrop])
	}
	return b.String()
}
