package fcatch_test

import (
	"strings"
	"testing"

	"fcatch"
)

func TestRenderTable1Contents(t *testing.T) {
	s := fcatch.RenderTable1()
	for _, want := range []string{"CA", "1.1.12", "HB", "0.96.0", "0.90.1", "MR", "0.23.1", "2.1.1", "ZK", "3.4.5", "AntiEntropy", "WordCount"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 render missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 9 { // title + header + separator + 6 rows
		t.Errorf("Table 1 has %d lines, want 9", len(lines))
	}
}

func TestRenderRandom(t *testing.T) {
	res := &fcatch.RandomResult{
		Workload: "XX", Runs: 100, FailureRuns: 3,
		Failures: map[string]int{"hang:a/main": 2, "fatal:boom": 1},
	}
	s := fcatch.RenderRandom([]*fcatch.RandomResult{res})
	for _, want := range []string{"XX", "3/100", "2 distinct", "2x hang:a/main", "1x fatal:boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("random render missing %q in:\n%s", want, s)
		}
	}
}

func TestRenderSensitivity(t *testing.T) {
	s := fcatch.RenderSensitivity(&fcatch.SensitivityResult{BugsByPhase: map[string][]string{
		"begin": {"A", "B"}, "middle": {"A", "B"}, "end": {"A"},
	}})
	if !strings.Contains(s, "begin  ( 2): A, B") || !strings.Contains(s, "end    ( 1): A") {
		t.Fatalf("sensitivity render:\n%s", s)
	}
}

func TestRenderPruningAblation(t *testing.T) {
	s := fcatch.RenderPruningAblation([]fcatch.PruningAblationRow{
		{Workload: "W1", Full: 2, NoTimeout: 3, NoDependence: 2, NoImpact: 5, NoneAtAll: 8},
		{Workload: "W2", Full: 1, NoTimeout: 1, NoDependence: 2, NoImpact: 3, NoneAtAll: 4},
	})
	for _, want := range []string{"W1", "W2", "Total", "4.0x"} {
		if !strings.Contains(s, want) {
			t.Errorf("pruning ablation render missing %q in:\n%s", want, s)
		}
	}
}

func TestRenderAblationMarksFailures(t *testing.T) {
	s := fcatch.RenderAblation([]fcatch.AblationRow{
		{Workload: "CA1&2", SelectiveSteps: 10, ExhaustiveSteps: 40, SelectiveOK: true, ExhaustiveOK: false, ExhaustiveNote: "conviction"},
		{Workload: "ZK", SelectiveSteps: 5, ExhaustiveSteps: 12, SelectiveOK: true, ExhaustiveOK: true},
	})
	if !strings.Contains(s, "FAIL: conviction") || !strings.Contains(s, "ok") {
		t.Fatalf("ablation render:\n%s", s)
	}
}
