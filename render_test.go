package fcatch_test

import (
	"fmt"
	"strings"
	"testing"

	"fcatch"
)

func TestRenderTable1Contents(t *testing.T) {
	s := fcatch.RenderTable1()
	for _, want := range []string{"CA", "1.1.12", "HB", "0.96.0", "0.90.1", "MR", "0.23.1", "2.1.1", "ZK", "3.4.5", "AntiEntropy", "WordCount"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 render missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 9 { // title + header + separator + 6 rows
		t.Errorf("Table 1 has %d lines, want 9", len(lines))
	}
}

func TestRenderRandom(t *testing.T) {
	res := &fcatch.RandomResult{
		Workload: "XX", Runs: 100, FailureRuns: 3,
		Failures: map[string]int{"hang:a/main": 2, "fatal:boom": 1},
	}
	s := fcatch.RenderRandom([]*fcatch.RandomResult{res})
	for _, want := range []string{"XX", "3/100", "2 distinct", "2x hang:a/main", "1x fatal:boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("random render missing %q in:\n%s", want, s)
		}
	}
}

func TestRenderSensitivity(t *testing.T) {
	s := fcatch.RenderSensitivity(&fcatch.SensitivityResult{BugsByPhase: map[string][]string{
		"begin": {"A", "B"}, "middle": {"A", "B"}, "end": {"A"},
	}})
	if !strings.Contains(s, "begin  ( 2): A, B") || !strings.Contains(s, "end    ( 1): A") {
		t.Fatalf("sensitivity render:\n%s", s)
	}
}

func TestRenderPruningAblation(t *testing.T) {
	s := fcatch.RenderPruningAblation([]fcatch.PruningAblationRow{
		{Workload: "W1", Full: 2, NoTimeout: 3, NoDependence: 2, NoImpact: 5, NoneAtAll: 8},
		{Workload: "W2", Full: 1, NoTimeout: 1, NoDependence: 2, NoImpact: 3, NoneAtAll: 4},
	})
	for _, want := range []string{"W1", "W2", "Total", "4.0x"} {
		if !strings.Contains(s, want) {
			t.Errorf("pruning ablation render missing %q in:\n%s", want, s)
		}
	}
}

// composite observation for the window/compound rendering tests: two fault
// firings, so the result has multiple hazard windows and a compound finding
// (the same MR1 scenario the compound detection tests pin).
func detectComposite(t *testing.T) *fcatch.Result {
	t.Helper()
	w := fcatch.MustWorkload("MR1")
	opts := fcatch.DefaultOptions()
	sc, err := fcatch.ParseScenario(compositeScenarios["MR1"])
	if err != nil {
		t.Fatal(err)
	}
	opts.Scenario = sc
	res, err := fcatch.Detect(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWindowsTableRows(t *testing.T) {
	res := detectComposite(t)
	rows := fcatch.WindowsTable(res)
	if len(rows) != len(res.Windows) {
		t.Fatalf("WindowsTable has %d rows, want one per window (%d)", len(rows), len(res.Windows))
	}
	recovery := 0
	for _, r := range res.Reports {
		if r.Type == fcatch.CrashRecoveryBug {
			recovery++
		}
	}
	total := 0
	for i, row := range rows {
		w := &res.Windows[i]
		if want := fmt.Sprintf("w%d", w.ID); row.Window != want {
			t.Errorf("row %d window = %q, want %q", i, row.Window, want)
		}
		if row.Victim != w.Victim || row.Open != w.OpenStep || row.Close != w.CloseStep {
			t.Errorf("row %d anchors %+v diverge from window %+v", i, row, w)
		}
		if row.Kind != w.Kind.String() || row.Recovery != w.Incarnation {
			t.Errorf("row %d kind/recovery %q/%q diverge from window %q/%q",
				i, row.Kind, row.Recovery, w.Kind.String(), w.Incarnation)
		}
		total += row.Reports
	}
	if total != recovery {
		t.Errorf("window rows account for %d reports, want the %d crash-recovery reports", total, recovery)
	}
}

func TestRenderWindows(t *testing.T) {
	res := detectComposite(t)
	s := fcatch.RenderWindows(res)
	if !strings.Contains(s, "Hazard windows") {
		t.Errorf("window render missing title:\n%s", s)
	}
	for _, row := range fcatch.WindowsTable(res) {
		for _, want := range []string{row.Window, row.Kind, row.Victim} {
			if !strings.Contains(s, want) {
				t.Errorf("window render missing %q in:\n%s", want, s)
			}
		}
		if row.Recovery == "" && !strings.Contains(s, "-") {
			t.Errorf("window render should show %q's empty recovery as a dash:\n%s", row.Window, s)
		}
	}
}

func TestRenderCompound(t *testing.T) {
	res := detectComposite(t)
	if len(res.Compound) == 0 {
		t.Fatal("composite MR1 observation produced no compound findings")
	}
	s := fcatch.RenderCompound(res)
	if got := strings.Count(s, "compound:"); got != len(res.Compound) {
		t.Errorf("compound render has %d entries, want %d", got, len(res.Compound))
	}
	for _, c := range res.Compound {
		scenario := fcatch.FormatScenario(fcatch.CompoundScenario(c))
		if !strings.Contains(s, fmt.Sprintf("%q", scenario)) {
			t.Errorf("compound render missing replay scenario %q in:\n%s", scenario, s)
		}
	}
	// An ordinary single-fault result renders nothing — the section must not
	// print an empty header.
	plain, err := fcatch.Detect(fcatch.MustWorkload("TOY"), fcatch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Compound) == 0 {
		if out := fcatch.RenderCompound(plain); out != "" {
			t.Errorf("compound render of a compound-free result = %q, want empty", out)
		}
	}
}

func TestRenderExplain(t *testing.T) {
	opts := fcatch.DefaultOptions()
	opts.Detect.Explain = true
	res, err := fcatch.Detect(fcatch.MustWorkload("MR1"), opts)
	if err != nil {
		t.Fatal(err)
	}
	ds := fcatch.ExplainDecisions(res)
	kt := fcatch.KillTable(ds)
	s := fcatch.RenderExplain(res)
	if want := fmt.Sprintf("%d candidate(s), %d kept, %d killed",
		len(ds), kt[fcatch.RuleKept], len(ds)-kt[fcatch.RuleKept]); !strings.Contains(s, want) {
		t.Errorf("explain render missing summary %q in:\n%s", want, s)
	}
	for _, rule := range fcatch.PruneRuleNames() {
		if !strings.Contains(s, rule) {
			t.Errorf("explain render missing rule row %q in:\n%s", rule, s)
		}
	}
	if got := strings.Count(s, "\n  "); got < len(ds) {
		t.Errorf("explain decision trail has %d lines, want %d (one per candidate)", got, len(ds))
	}
}

func TestRenderAblationMarksFailures(t *testing.T) {
	s := fcatch.RenderAblation([]fcatch.AblationRow{
		{Workload: "CA1&2", SelectiveSteps: 10, ExhaustiveSteps: 40, SelectiveOK: true, ExhaustiveOK: false, ExhaustiveNote: "conviction"},
		{Workload: "ZK", SelectiveSteps: 5, ExhaustiveSteps: 12, SelectiveOK: true, ExhaustiveOK: true},
	})
	if !strings.Contains(s, "FAIL: conviction") || !strings.Contains(s, "ok") {
		t.Fatalf("ablation render:\n%s", s)
	}
}
