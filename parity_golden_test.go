package fcatch_test

// Golden pinning for the interning refactor: the detection reports and the
// campaign corpora of all six benchmark workloads are rendered to
// testdata/golden/ and must stay byte-identical across internal trace-model
// changes. The goldens were generated with the pre-refactor (string-keyed)
// pipeline; regenerate deliberately with `go test -run TestGolden -update`
// only when an intentional behavior change is being made.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fcatch"
	"fcatch/internal/core"
	"fcatch/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenName sanitizes a workload name for use as a file name ("CA1&2" -> "CA1_2").
func goldenName(wl string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, wl)
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (len got=%d want=%d)\n--- got ---\n%s\n--- want ---\n%s",
			path, len(got), len(want), truncate(string(got)), truncate(string(want)))
	}
}

func truncate(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n...[truncated]"
	}
	return s
}

// TestGoldenDetectionReports pins every workload's full detection output —
// report lines, summaries, prune counters, crash metadata — against goldens
// generated before the symbol-interning refactor.
func TestGoldenDetectionReports(t *testing.T) {
	for _, w := range fcatch.Workloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			opts := core.Options{Seed: 1, Phase: fcatch.PhaseBegin, Tracing: sim.TraceSelective, Parallelism: 1}
			res, err := fcatch.Detect(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "workload=%s crash=%s step=%d records=%d+%d\n",
				w.Name(), res.Observation.Faulty.CrashedPID, res.Observation.CrashStep,
				res.Observation.FaultFree.Len(), res.Observation.Faulty.Len())
			fmt.Fprintf(&b, "pruned regular=%+v recovery=%+v\n", res.Regular.Pruned, res.Recovery.Pruned)
			for i, r := range res.Reports {
				wp := "-"
				if r.WPrime != nil {
					wp = fmt.Sprintf("%+v", *r.WPrime)
				}
				fmt.Fprintf(&b, "%2d. %s\n    W=%+v\n    R=%+v\n    W'=%s inFaulty=%v target=%s/%s res=%s class=%s\n",
					i+1, r, r.W, r.R, wp, r.WInFaultyRun, r.CrashTargetPID, r.CrashTargetRole, r.Resource, r.ResClass)
			}
			checkGolden(t, filepath.Join("testdata", "golden", goldenName(w.Name())+".reports.txt"), []byte(b.String()))
		})
	}
}

// TestGoldenCampaignCorpora pins the coverage-guided campaign corpus —
// including every plan, signature (outcome, symptom, coverage hash), verdict,
// and novelty stamp — for each workload against pre-refactor goldens. The
// corpus JSON is exactly what Corpus.Save writes.
func TestGoldenCampaignCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign goldens are slow")
	}
	for _, w := range fcatch.Workloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			cfg := fcatch.CampaignConfig{Strategy: fcatch.StrategyCoverage, Seed: 1, Budget: 40, Parallelism: 1}
			res, err := fcatch.Campaign(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.MarshalIndent(res.Corpus, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, '\n')
			checkGolden(t, filepath.Join("testdata", "golden", goldenName(w.Name())+".corpus.json"), data)
		})
	}
}
