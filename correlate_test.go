package fcatch_test

import (
	"strings"
	"testing"

	"fcatch"
)

// TestCorrelateRecoveryGroupsServerShutdownReads: HB2's log split and queue
// adoption run in one recovery worker; their reports (HB2, HB5, HB6 and the
// benign cursor pairs) must land in a single correlated group.
func TestCorrelateRecoveryGroupsServerShutdownReads(t *testing.T) {
	res, err := fcatch.Detect(fcatch.MustWorkload("HB2"), fcatch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	groups := fcatch.CorrelateRecovery(res)
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	var shutdown *fcatch.ReportGroup
	for i := range groups {
		for _, r := range groups[i].Reports {
			if strings.Contains(r.ResClass, "splitlog") {
				shutdown = &groups[i]
			}
		}
	}
	if shutdown == nil {
		t.Fatal("no group contains the split-lock report")
	}
	classes := map[string]bool{}
	for _, r := range shutdown.Reports {
		classes[r.ResClass] = true
	}
	wantSome := 0
	for c := range classes {
		if strings.Contains(c, "splitlog") || strings.Contains(c, "replication") {
			wantSome++
		}
	}
	if wantSome < 2 {
		t.Fatalf("shutdown group should correlate the lock and queue reports; got classes %v", classes)
	}
	if shutdown.WindowStart <= 0 || shutdown.WindowEnd < shutdown.WindowStart {
		t.Fatalf("bad window: [%d, %d]", shutdown.WindowStart, shutdown.WindowEnd)
	}
	total := 0
	for _, g := range groups {
		total += len(g.Reports)
	}
	recCount := 0
	for _, r := range res.Reports {
		if r.Type == fcatch.CrashRecoveryBug {
			recCount++
		}
	}
	if total != recCount {
		t.Fatalf("groups cover %d reports, want all %d crash-recovery reports", total, recCount)
	}
}

// TestCorrelateRecoverySeparatesIndependentDecisions: MR2's restarted AM
// reads everything in its main activation — one group — while an unrelated
// workload's reports never co-group with it.
func TestCorrelateRecoveryMR2(t *testing.T) {
	res, err := fcatch.Detect(fcatch.MustWorkload("MR2"), fcatch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	groups := fcatch.CorrelateRecovery(res)
	for _, g := range groups {
		if len(g.Reports) >= 3 {
			// job.xml + splits + commit markers consumed by one restart.
			return
		}
	}
	t.Fatalf("expected one AM-restart group with >=3 reports; groups=%d", len(groups))
}
