package fcatch

import (
	"context"

	"fcatch/internal/dist"
)

// Re-exported distributed-campaign types, so downstream users only import
// this package.
type (
	// DistOptions parameterizes a distributed campaign's coordinator: listen
	// address, in-process worker count, lease sizing, and failure handling.
	DistOptions = dist.Options
	// CampaignWorkerConfig parameterizes one campaign worker process.
	CampaignWorkerConfig = dist.WorkerConfig
)

// DistributedCampaign runs a fault-injection campaign sharded across worker
// processes over TCP. The coordinator enumerates the fault space, streams
// leases of plans to whichever workers connect (opts.Workers spawns
// in-process ones), and merges results deterministically: the corpus is
// byte-identical to Campaign with Parallelism=1 at any worker count, join
// order, or lease interleaving — including workers crashing or hanging
// mid-lease, whose leases are reassigned.
//
// On context cancellation it returns the partial result of the complete
// batches alongside the context error; the partial corpus is a valid resume
// point for ResumeDistributedCampaign or ResumeCampaign.
func DistributedCampaign(ctx context.Context, w Workload, cfg CampaignConfig, opts DistOptions) (*CampaignResult, error) {
	return dist.Serve(ctx, w, cfg, nil, opts)
}

// ResumeDistributedCampaign continues a campaign from a saved corpus with
// distributed execution: the cached prefix replays from the corpus and only
// the remaining budget is leased out. Local and distributed runs share one
// resume path — a corpus saved by either resumes under either.
func ResumeDistributedCampaign(ctx context.Context, w Workload, cfg CampaignConfig, prior *CampaignCorpus, opts DistOptions) (*CampaignResult, error) {
	return dist.Serve(ctx, w, cfg, prior, opts)
}

// RunCampaignWorker connects to a coordinator and executes leases until the
// campaign drains or ctx is cancelled. When cfg.Resolve is nil the worker
// resolves workload names through the built-in registry (ByName).
func RunCampaignWorker(ctx context.Context, cfg CampaignWorkerConfig) error {
	if cfg.Resolve == nil {
		cfg.Resolve = ByName
	}
	return dist.RunWorker(ctx, cfg)
}
