package fcatch_test

import (
	"testing"

	"fcatch"
)

func TestPruningAblationMonotone(t *testing.T) {
	rows, err := fcatch.PruningAblation(fcatch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + fcatch.RenderPruningAblation(rows))
	totalFull, totalNone := 0, 0
	for _, r := range rows {
		// DESIGN.md invariant: disabling a pruning stage never removes a report.
		for name, n := range map[string]int{
			"no-timeout": r.NoTimeout, "no-dependence": r.NoDependence,
			"no-impact": r.NoImpact, "none": r.NoneAtAll,
		} {
			if n < r.Full {
				t.Errorf("%s/%s: %d reports < full %d (pruning removal lost reports)", r.Workload, name, n, r.Full)
			}
		}
		if r.NoneAtAll < r.NoImpact || r.NoneAtAll < r.NoDependence || r.NoneAtAll < r.NoTimeout {
			t.Errorf("%s: disabling everything must dominate single-stage ablations", r.Workload)
		}
		totalFull += r.Full
		totalNone += r.NoneAtAll
	}
	// Section 8.4: without the analyses, false positives explode. (The
	// paper's 5x/40x counts raw pairs; after deduplication the growth in
	// distinct reports is smaller but still severalfold.)
	if totalNone < totalFull*5/2 {
		t.Errorf("unpruned reports %d vs %d pruned: expected several-fold growth", totalNone, totalFull)
	}
}
